// Command rrs-sim runs one workload on the simulated memory system with a
// chosen Row Hammer mitigation and prints performance and mitigation
// statistics.
//
// Usage:
//
//	rrs-sim -workload bzip2 -mitigation rrs -scale 16 -epochs 2
//	rrs-sim -workload hmmer -mitigation blockhammer -blacklist 512
//	rrs-sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "bzip2", "workload name from the catalog")
		mit       = flag.String("mitigation", "rrs", "none | rrs | rrs-cam | para | graphene | ideal | blockhammer")
		scale     = flag.Int("scale", 16, "epoch shrink factor (1 = full 64 ms epochs)")
		epochs    = flag.Int("epochs", 2, "simulated epochs")
		seed      = flag.Uint64("seed", 1, "trace seed")
		blacklist = flag.Uint("blacklist", 512, "BlockHammer blacklist threshold (at full scale)")
		list      = flag.Bool("list", false, "list catalog workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range trace.AllWorkloads() {
			fmt.Println(w)
		}
		return
	}

	w, ok := trace.ByName(*workload)
	if !ok {
		fatalf("unknown workload %q (use -list)", *workload)
	}
	cfg := config.Default().Scaled(*scale)

	factory, err := mitigationFactory(*mit, *scale, uint32(*blacklist))
	if err != nil {
		fatalf("%v", err)
	}

	res, err := sim.Run(sim.Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		Mitigation:          factory,
		InstructionsPerCore: 1 << 62,
		CycleLimit:          int64(*epochs) * cfg.EpochCycles,
		Seed:                *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("workload:   %s\n", w)
	fmt.Printf("config:     %s (scale 1/%d)\n", cfg, *scale)
	fmt.Printf("mitigation: %s\n\n", *mit)
	fmt.Printf("IPC (per core):        %.4f\n", res.IPC)
	fmt.Printf("instructions:          %d\n", res.Instructions)
	fmt.Printf("bus cycles:            %d (%d epochs)\n", res.Cycles, res.Epochs)
	fmt.Printf("memory accesses:       %d (MPKI %.2f)\n", res.Accesses, res.MPKI)
	fmt.Printf("row hits/misses/conf:  %d / %d / %d\n",
		res.MemStats.RowHits, res.MemStats.RowMisses, res.MemStats.RowConflicts)
	fmt.Printf("hot rows per epoch:    %.1f\n", res.HotRowsPerEpoch)
	fmt.Printf("DRAM avg power:        %.0f mW\n", res.Energy.AvgPowerMW)

	if r, ok := res.Mitigation.(*core.RRS); ok {
		st := r.Stats()
		fmt.Printf("\nRRS: swaps/epoch %.1f, reswaps %d, eviction un-swaps %d, "+
			"dest re-rolls %d, skipped %d, channel-block cycles %d\n",
			res.SwapsPerEpoch, st.Reswaps, st.EvictionUnswaps, st.DestRerolls,
			st.SkippedSwaps, st.BlockCycles)
	}
	if b, ok := res.Mitigation.(*mitigation.BlockHammer); ok {
		st := b.Stats()
		fmt.Printf("\nBlockHammer: blacklisted ACTs %d, delay cycles %d (tDelay %d)\n",
			st.BlacklistedActs, st.DelayCycles, b.TDelay())
	}
}

func mitigationFactory(name string, scale int, blacklist uint32) (func(*dram.System) memctrl.Mitigation, error) {
	switch name {
	case "none":
		return nil, nil
	case "rrs", "rrs-cam":
		return func(sys *dram.System) memctrl.Mitigation {
			p := core.ScaledParams(sys.Config())
			p.UseCAMTracker = name == "rrs-cam"
			r, err := core.New(sys, p)
			if err != nil {
				panic(err)
			}
			return r
		}, nil
	case "para":
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewPARA(sys,
				mitigation.DefaultPARAProbability(sys.Config().RowHammerThreshold), 7)
		}, nil
	case "graphene":
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewGraphene(sys,
				mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold), 1, 7)
		}, nil
	case "ideal":
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewIdeal(sys,
				mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold))
		}, nil
	case "blockhammer":
		return func(sys *dram.System) memctrl.Mitigation {
			p := mitigation.DefaultBlockHammerParams()
			p.BlacklistThreshold = max(1, blacklist/uint32(max(1, scale)))
			return mitigation.NewBlockHammer(sys, p)
		}, nil
	default:
		return nil, fmt.Errorf("unknown mitigation %q", name)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rrs-sim: "+format+"\n", args...)
	os.Exit(1)
}
