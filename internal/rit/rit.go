// Package rit implements the Row Indirection Table of RRS (Section 4.3):
// a per-bank table of swapped row tuples <X,Y>, stored as two entries (one
// indexed by X returning Y, one by Y returning X) so that either row's
// access finds its current physical location in one lookup.
//
// Entries installed in the current epoch carry a lock bit and can never be
// evicted before the epoch ends (the security of RRS depends on swapped
// rows staying swapped for the remainder of their tracking window). At the
// epoch boundary all lock bits clear, and stale tuples drain lazily:
// installs beyond the tuple capacity evict a random unlocked tuple, whose
// rows are then un-swapped by the caller.
package rit

import (
	"fmt"

	"repro/internal/cat"
	"repro/internal/prince"
)

type entry struct {
	partner uint64
	locked  bool
}

// RIT is one bank's row indirection table. The mapping it maintains is an
// involution: row X maps to Y exactly when Y maps to X.
//
// RIT is not safe for concurrent use.
type RIT struct {
	tab      *cat.Table[entry]
	capacity int // in tuples (each tuple occupies two entries)
	tuples   int
	rng      *prince.CTR

	// present is an exact membership bitset over small row ids: bit row
	// is set iff row has an entry in tab. Almost every access misses the
	// RIT (a few thousand tuples against millions of rows), so the remap
	// fast path answers "not swapped" from one bit probe instead of two
	// keyed-hash set scans. Rows >= maxBitsetRows are only counted in
	// bigRows and always take the table lookup.
	present []uint64
	bigRows int
}

// maxBitsetRows bounds the presence bitset at 512 KiB so adversarial
// 64-bit row ids (fuzzers, tests) cannot balloon it.
const maxBitsetRows = 1 << 22

// New creates a RIT with the given CAT geometry and tuple capacity. The
// paper's configuration stores 3400 tuples (6800 entries) in 2 tables x
// 256 sets x 20 ways.
func New(spec cat.Spec, capacityTuples int, seed uint64) *RIT {
	if capacityTuples <= 0 {
		panic("rit: capacity must be positive")
	}
	if spec.Slots() < 2*capacityTuples {
		panic(fmt.Sprintf("rit: geometry %d slots cannot hold %d tuples", spec.Slots(), capacityTuples))
	}
	return &RIT{
		tab:      cat.New[entry](spec, seed),
		capacity: capacityTuples,
		rng:      prince.Seeded(seed ^ 0xA5A5A5A5),
	}
}

// mightContain is the bit-probe fast path: false means row is certainly
// absent; true means the table must be consulted (and, for rows under
// the bitset bound, is in fact a guaranteed hit).
func (r *RIT) mightContain(row uint64) bool {
	if row < maxBitsetRows {
		w := row >> 6
		return w < uint64(len(r.present)) && r.present[w]&(1<<(row&63)) != 0
	}
	return r.bigRows > 0
}

func (r *RIT) addPresent(row uint64) {
	if row >= maxBitsetRows {
		r.bigRows++
		return
	}
	w := row >> 6
	if w >= uint64(len(r.present)) {
		grown := make([]uint64, 2*(w+1))
		copy(grown, r.present)
		r.present = grown
	}
	r.present[w] |= 1 << (row & 63)
}

func (r *RIT) removePresent(row uint64) {
	if row >= maxBitsetRows {
		r.bigRows--
		return
	}
	if w := row >> 6; w < uint64(len(r.present)) {
		r.present[w] &^= 1 << (row & 63)
	}
}

// Remap returns the physical row currently holding row's data: its swap
// partner if swapped, otherwise row itself.
func (r *RIT) Remap(row uint64) uint64 {
	if !r.mightContain(row) {
		return row
	}
	if e := r.tab.Lookup(row); e != nil {
		return e.partner
	}
	return row
}

// Lookup returns row's swap partner and whether row is swapped.
func (r *RIT) Lookup(row uint64) (partner uint64, ok bool) {
	if !r.mightContain(row) {
		return 0, false
	}
	if e := r.tab.Lookup(row); e != nil {
		return e.partner, true
	}
	return 0, false
}

// Contains reports whether row is part of any tuple. Rows in the RIT are
// excluded from being random swap destinations.
func (r *RIT) Contains(row uint64) bool {
	return r.mightContain(row) && r.tab.Contains(row)
}

// Tuples returns the number of installed tuples.
func (r *RIT) Tuples() int { return r.tuples }

// Capacity returns the tuple capacity.
func (r *RIT) Capacity() int { return r.capacity }

// Install records the swap <x,y> with the lock bit set. If the table is at
// capacity, a random unlocked tuple is evicted first and returned so the
// caller can un-swap its rows. ok is false only if the table is full of
// locked tuples — a state the paper's sizing argument excludes (the tuple
// capacity is twice the per-epoch swap bound).
func (r *RIT) Install(x, y uint64) (evictedX, evictedY uint64, evicted, ok bool) {
	if x == y {
		panic("rit: cannot swap a row with itself")
	}
	if r.tab.Contains(x) || r.tab.Contains(y) {
		panic("rit: installing tuple over an existing entry")
	}
	if r.tuples >= r.capacity {
		ex, ey, did := r.EvictRandomUnlocked()
		if !did {
			return 0, 0, false, false
		}
		evictedX, evictedY, evicted = ex, ey, true
	}
	if r.tab.Install(x, entry{partner: y, locked: true}) == nil {
		// CAT conflict (astronomically rare at 6 extra ways): fail the
		// install; the caller skips the swap.
		return evictedX, evictedY, evicted, false
	}
	r.addPresent(x)
	if r.tab.Install(y, entry{partner: x, locked: true}) == nil {
		r.tab.Delete(x)
		r.removePresent(x)
		return evictedX, evictedY, evicted, false
	}
	r.addPresent(y)
	r.tuples++
	return evictedX, evictedY, evicted, true
}

// Remove deletes the tuple containing row (both entries) and returns the
// partner. ok is false if row is not swapped.
func (r *RIT) Remove(row uint64) (partner uint64, ok bool) {
	e := r.tab.Lookup(row)
	if e == nil {
		return 0, false
	}
	partner = e.partner
	r.tab.Delete(row)
	r.tab.Delete(partner)
	r.removePresent(row)
	r.removePresent(partner)
	r.tuples--
	return partner, true
}

// EvictRandomUnlocked removes one uniformly random unlocked tuple and
// returns its rows. ok is false when every tuple is locked (or the table
// is empty).
func (r *RIT) EvictRandomUnlocked() (x, y uint64, ok bool) {
	key, e, found := r.tab.RandomEntry(r.rng, func(_ uint64, e *entry) bool {
		return !e.locked
	})
	if !found {
		return 0, 0, false
	}
	x, y = key, e.partner
	r.tab.Delete(x)
	r.tab.Delete(y)
	r.removePresent(x)
	r.removePresent(y)
	r.tuples--
	return x, y, true
}

// ClearLocks unlocks every entry; called at each epoch boundary so tuples
// from finished epochs become eligible for lazy eviction.
func (r *RIT) ClearLocks() {
	r.tab.ForEach(func(_ uint64, e *entry) bool {
		e.locked = false
		return true
	})
}

// LockedTuples counts tuples installed in the current epoch.
func (r *RIT) LockedTuples() int {
	locked := 0
	r.tab.ForEach(func(_ uint64, e *entry) bool {
		if e.locked {
			locked++
		}
		return true
	})
	return locked / 2
}

// ForEachTuple visits each tuple once (with x < y order normalized).
func (r *RIT) ForEachTuple(fn func(x, y uint64, locked bool) bool) {
	r.tab.ForEach(func(k uint64, e *entry) bool {
		if k < e.partner {
			return fn(k, e.partner, e.locked)
		}
		return true
	})
}

// CheckInvariants verifies the involution property; tests call this after
// mutation sequences. It returns an error describing the first violation.
func (r *RIT) CheckInvariants() error {
	var err error
	count := 0
	r.tab.ForEach(func(k uint64, e *entry) bool {
		count++
		back := r.tab.Lookup(e.partner)
		if back == nil {
			err = fmt.Errorf("rit: entry %d -> %d has no reverse entry", k, e.partner)
			return false
		}
		if back.partner != k {
			err = fmt.Errorf("rit: entry %d -> %d reversed to %d", k, e.partner, back.partner)
			return false
		}
		if back.locked != e.locked {
			err = fmt.Errorf("rit: tuple <%d,%d> has mismatched lock bits", k, e.partner)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if count != 2*r.tuples {
		return fmt.Errorf("rit: %d entries but %d tuples", count, r.tuples)
	}
	return nil
}
