package attack

import (
	"testing"

	"repro/internal/dram"
)

func TestNearMissCounters(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	fm := NewFaultModel(sys, 100, -1) // flip at 100, no distance-2 coupling
	id := dram.BankID{}

	// 24 double-sided rounds: the victim (row 100) sits at 48 — below
	// the near-miss line (50); the outer rows 98/102 sit at 24.
	for i := 0; i < 24; i++ {
		sys.Activate(id, 99, int64(i))
		sys.Activate(id, 101, int64(i))
	}
	if fm.NearMisses() != 0 {
		t.Fatalf("near misses = %d before crossing half", fm.NearMisses())
	}
	// One more round takes the victim to 50: exactly one near miss, no
	// flip yet.
	sys.Activate(id, 99, 25)
	sys.Activate(id, 101, 25)
	if fm.NearMisses() != 1 {
		t.Fatalf("near misses = %d, want 1", fm.NearMisses())
	}
	if fm.FlipCount() != 0 {
		t.Fatal("flip before the threshold")
	}
	if p := fm.PeakDisturbance(); p < 0.5 || p >= 1 {
		t.Fatalf("peak disturbance = %v, want in [0.5, 1)", p)
	}
	// 60 more rounds: the victim flips at +25 rounds (100 summed), then
	// climbs past 50 again (+70 by the end) for a second crossing; the
	// outer rows 98/102 reach 85 each, crossing 50 once apiece. Total:
	// one flip, four near misses.
	for i := 0; i < 60; i++ {
		sys.Activate(id, 99, int64(100+i))
		sys.Activate(id, 101, int64(100+i))
	}
	if fm.FlipCount() != 1 {
		t.Fatalf("flips = %d, want 1", fm.FlipCount())
	}
	if fm.PeakDisturbance() < 1 {
		t.Fatalf("peak disturbance = %v after a flip", fm.PeakDisturbance())
	}
	if fm.NearMisses() != 4 {
		t.Fatalf("near misses = %d after flip, want 4", fm.NearMisses())
	}
}

func TestJugglingAlternatesOccupants(t *testing.T) {
	// A synthetic occupant map: slot p hosts logical row p+1000.
	p := NewJuggling(100, func(phys int) int { return phys + 1000 })
	if r := p.NextRow(); r != 1099 {
		t.Fatalf("first access = %d, want occupant of slot 99", r)
	}
	if r := p.NextRow(); r != 1101 {
		t.Fatalf("second access = %d, want occupant of slot 101", r)
	}
	if p.Name() != "juggling" {
		t.Fatalf("name %q", p.Name())
	}
}

// TestOccupantOracleFallsBackToRemap pins the involution property the
// fallback relies on: for RRS, Remap IS the occupant map (swapped pairs
// map to each other), and for identity defenses it is trivially so.
func TestOccupantOracleFallsBackToRemap(t *testing.T) {
	cfg := testConfig()
	ctl, _ := NewSystem(cfg, 0, -1, nil) // no mitigation: identity remap
	occ := OccupantOracle(ctl, dram.BankID{})
	if occ(123) != 123 {
		t.Fatalf("identity occupant(123) = %d", occ(123))
	}
}
