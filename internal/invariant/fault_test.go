// Fault-injection suite: every corruption class the structure packages
// expose a test hook for must be detected by the corresponding
// CheckInvariants/Verify sweep (or by the hot-path shadow oracle) as a
// typed *invariant.Violation naming the broken catalog invariant. A
// single undetected injection fails the suite — this is the evidence
// behind the "paranoid mode detects silent state corruption" claim.
package invariant_test

import (
	"testing"

	"repro/internal/cat"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/rit"
	"repro/internal/tracker"
)

// wantViolation asserts that err is a *invariant.Violation for the named
// catalog invariant.
func wantViolation(t *testing.T, err error, name string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corruption went undetected (want a %s violation)", name)
	}
	v := invariant.AsViolation(err)
	if v == nil {
		t.Fatalf("err = %v (%T), want *invariant.Violation", err, err)
	}
	if v.Invariant != name {
		t.Fatalf("violation names %q, want %q (detail: %s)", v.Invariant, name, v.Detail)
	}
}

// faultRIT builds a RIT holding 12 tuples <2i, 1000+2i>, checked clean.
func faultRIT(t *testing.T) *rit.RIT {
	t.Helper()
	r, err := rit.New(cat.Spec{Sets: 16, Ways: 10}, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 12; i++ {
		if _, ok, err := r.Install(2*i, 1000+2*i); err != nil || !ok {
			t.Fatalf("install %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("pre-injection state not clean: %v", err)
	}
	return r
}

func TestFaultRIT(t *testing.T) {
	cases := []struct {
		name string
		want string
		hurt func(r *rit.RIT)
	}{
		{"partner-rewrite", "rit/involution", func(r *rit.RIT) { r.CorruptPartnerForTest(0, 777) }},
		{"lock-flip", "rit/locks", func(r *rit.RIT) { r.CorruptLockForTest(0) }},
		{"tuple-counter", "rit/count", func(r *rit.RIT) { r.CorruptTuplesForTest(1) }},
		{"presence-cleared", "rit/presence", func(r *rit.RIT) { r.CorruptPresenceForTest(0) }},
		{"presence-stale", "rit/presence", func(r *rit.RIT) { r.CorruptPresenceForTest(999) }},
		{"bigrows-counter", "rit/presence", func(r *rit.RIT) { r.CorruptBigRowsForTest(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := faultRIT(t)
			tc.hurt(r)
			wantViolation(t, r.CheckInvariants(), tc.want)
		})
	}
}

func TestFaultRITShadowSweep(t *testing.T) {
	eng := invariant.NewEngine()
	r := faultRIT(t)
	r.EnableShadow(eng)
	if err := r.VerifyShadow(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	r.CorruptPartnerForTest(0, 777)
	wantViolation(t, r.VerifyShadow(), "rit/shadow")
}

func TestFaultRITShadowRemap(t *testing.T) {
	eng := invariant.NewEngine()
	r := faultRIT(t)
	r.EnableShadow(eng)
	r.CorruptPartnerForTest(0, 777)
	// The hot-path differential oracle flags the very next remap of the
	// corrupted row, without waiting for a structural sweep.
	if got := r.Remap(0); got != 777 {
		t.Fatalf("Remap(0) = %d, corrupted table should answer 777", got)
	}
	wantViolation(t, eng.Err(), "rit/shadow")
}

// faultCAM builds a warmed CAM (8 entries, T = 5) with live spill and a
// populated minimum cache, checked clean.
func faultCAM(t *testing.T) *tracker.CAM {
	t.Helper()
	c, err := tracker.NewCAM(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		c.Observe(uint64(i % 13))
	}
	if c.Spill() == 0 || c.Len() != c.Capacity() {
		t.Fatalf("warmup left spill %d, len %d", c.Spill(), c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("pre-injection state not clean: %v", err)
	}
	return c
}

// trackedRow returns some row the tracker currently holds.
func trackedRow(t *testing.T, tr tracker.Tracker) uint64 {
	t.Helper()
	for row := uint64(0); row < 1000; row++ {
		if tr.Contains(row) {
			return row
		}
	}
	t.Fatal("no tracked row found")
	return 0
}

func TestFaultCAM(t *testing.T) {
	cases := []struct {
		name string
		want string
		hurt func(tt *testing.T, c *tracker.CAM)
	}{
		{"minval-cache", "tracker/min", func(_ *testing.T, c *tracker.CAM) { c.CorruptMinValForTest(1) }},
		{"mincount-cache", "tracker/min", func(_ *testing.T, c *tracker.CAM) { c.CorruptMinCountForTest(1) }},
		{"count-skew", "tracker/min", func(tt *testing.T, c *tracker.CAM) {
			// Lowering one live counter below the cached minimum makes the
			// exact rescan diverge from the cache.
			c.CorruptCountForTest(trackedRow(tt, c), -1)
		}},
		{"row-rewrite", "tracker/index", func(tt *testing.T, c *tracker.CAM) {
			c.CorruptRowForTest(trackedRow(tt, c), 987654)
		}},
		{"spill-skew", "tracker/spill", func(_ *testing.T, c *tracker.CAM) { c.CorruptSpillForTest(1 << 20) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := faultCAM(t)
			tc.hurt(t, c)
			wantViolation(t, c.CheckInvariants(), tc.want)
		})
	}
}

// faultCAT builds a warmed CAT tracker (16 entries over a 2x8x8 table,
// T = 5), checked clean.
func faultCAT(t *testing.T) *tracker.CAT {
	t.Helper()
	c, err := tracker.NewCAT(cat.Spec{Sets: 8, Ways: 8}, 16, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		c.Observe(uint64(i % 25))
	}
	if c.Len() == 0 {
		t.Fatal("warmup tracked nothing")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("pre-injection state not clean: %v", err)
	}
	return c
}

func TestFaultCAT(t *testing.T) {
	cases := []struct {
		name string
		want string
		hurt func(tt *testing.T, c *tracker.CAT)
	}{
		{"setmin-skew", "tracker/setmin", func(tt *testing.T, c *tracker.CAT) {
			// Skewing every set's counter guarantees at least one holds an
			// entry whose exact minimum no longer matches.
			for s := 0; s < 8; s++ {
				c.CorruptSetMinForTest(0, s, 1)
				c.CorruptSetMinForTest(1, s, 1)
			}
		}},
		{"gmin-cache", "tracker/setmin", func(_ *testing.T, c *tracker.CAT) { c.CorruptGminForTest(42) }},
		{"relocs-counter", "tracker/relocs", func(_ *testing.T, c *tracker.CAT) { c.CorruptRelocsForTest(1) }},
		{"spill-skew", "tracker/spill", func(_ *testing.T, c *tracker.CAT) { c.CorruptSpillForTest(1 << 20) }},
		{"presence-cleared", "tracker/presence", func(tt *testing.T, c *tracker.CAT) {
			c.CorruptPresenceForTest(trackedRow(tt, c))
		}},
		{"presence-stale", "tracker/presence", func(tt *testing.T, c *tracker.CAT) {
			for row := uint64(0); ; row++ {
				if !c.Contains(row) {
					c.CorruptPresenceForTest(row)
					return
				}
			}
		}},
		{"bigrows-counter", "tracker/presence", func(_ *testing.T, c *tracker.CAT) { c.CorruptBigRowsForTest(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := faultCAT(t)
			tc.hurt(t, c)
			wantViolation(t, c.CheckInvariants(), tc.want)
		})
	}
}

// TestFaultCATTable injects corruption into the underlying two-table
// structure through its owner; CAT.CheckInvariants delegates to the
// table's own checks, so these violations surface through the tracker.
func TestFaultCATTable(t *testing.T) {
	cases := []struct {
		name string
		want string
		hurt func(tt *testing.T, c *tracker.CAT)
	}{
		{"invalid-counter", "cat/occupancy", func(_ *testing.T, c *tracker.CAT) {
			c.TableForTest().CorruptInvalidCountForTest(0, 0, 1)
		}},
		{"size-counter", "cat/size", func(_ *testing.T, c *tracker.CAT) {
			c.TableForTest().CorruptSizeForTest(1)
		}},
		{"dropped-entry", "cat/occupancy", func(tt *testing.T, c *tracker.CAT) {
			if !c.TableForTest().DropEntryForTest(trackedRow(tt, c)) {
				tt.Fatal("drop hook missed")
			}
		}},
		{"memo-rewrite", "cat/memo", func(tt *testing.T, c *tracker.CAT) {
			// Find any row whose set-index memo entry is live; 31 cannot be
			// a real set index with 8 sets.
			for row := uint64(0); row < 1000; row++ {
				if c.TableForTest().CorruptMemoForTest(row, 31, 31) {
					return
				}
			}
			tt.Fatal("no memoized key found")
		}},
		{"key-rewrite", "cat/placement", func(tt *testing.T, c *tracker.CAT) {
			// Rewrite a stored key until the replacement hashes to a
			// different set (1/8 odds of a silent miss per candidate, so
			// try a few; revert the misses to keep the state clean).
			old := trackedRow(tt, c)
			for cand := uint64(1 << 30); cand < 1<<30+64; cand++ {
				if !c.TableForTest().CorruptKeyForTest(old, cand) {
					tt.Fatal("key hook missed")
				}
				if c.CheckInvariants() != nil {
					return
				}
				c.TableForTest().CorruptKeyForTest(cand, old)
			}
			tt.Fatal("no candidate key broke placement")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := faultCAT(t)
			tc.hurt(t, c)
			wantViolation(t, c.CheckInvariants(), tc.want)
		})
	}
}

// TestFaultTrackerShadow corrupts the wrapped tracker behind the shadow
// model's back; the differential sweep must flag the divergence.
func TestFaultTrackerShadow(t *testing.T) {
	eng := invariant.NewEngine()
	inner, err := tracker.NewCAM(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh := tracker.NewShadow(inner, eng)
	for i := 0; i < 120; i++ {
		sh.Observe(uint64(i % 13))
	}
	if err := eng.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if err := sh.Verify(); err != nil {
		t.Fatalf("clean sweep flagged: %v", err)
	}
	inner.CorruptCountForTest(trackedRow(t, inner), 3)
	wantViolation(t, sh.Verify(), "tracker/shadow")
}

// TestFaultTrackerShadowLyingEvictionLog makes the wrapped tracker's
// eviction log misreport the victim of a real eviction; the oracle's
// eviction protocol must reject the reported row.
func TestFaultTrackerShadowLyingEvictionLog(t *testing.T) {
	eng := invariant.NewEngine()
	inner, err := tracker.NewCAM(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh := tracker.NewShadow(inner, eng)
	// Fill to capacity (counts 1, spill 0), then one spill advance pulls
	// the spill counter up to the minimum: the following miss evicts.
	for i := uint64(1); i <= 4; i++ {
		sh.Observe(i)
	}
	sh.Observe(10)
	if err := eng.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	inner.CorruptEvictionLogForTest(99)
	sh.Observe(11)
	wantViolation(t, eng.Err(), "tracker/shadow")
}

// faultDRAM builds a small DRAM system with a few activated rows and
// written content tags, checked clean, returning a bank to corrupt.
func faultDRAM(t *testing.T) (*dram.System, dram.BankID) {
	t.Helper()
	cfg := config.Default()
	cfg.RowsPerBank = 1 << 10
	sys, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var id dram.BankID
	first := true
	sys.EachBank(func(b dram.BankID, _ *dram.Bank) {
		if first {
			id, first = b, false
		}
	})
	for row := 0; row < 8; row++ {
		sys.Activate(id, row, int64(row))
		sys.SetRowContent(id, row, uint64(100+row))
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("pre-injection state not clean: %v", err)
	}
	return sys, id
}

func TestFaultDRAMStructure(t *testing.T) {
	cases := []struct {
		name string
		hurt func(sys *dram.System, id dram.BankID)
	}{
		{"dirty-zero-acts", func(sys *dram.System, id dram.BankID) {
			sys.CorruptDirtyForTest(id, 900) // never activated
		}},
		{"dirty-duplicate", func(sys *dram.System, id dram.BankID) {
			sys.CorruptDirtyForTest(id, 3) // already dirty from warmup
		}},
		{"overflow-in-dense-tier", func(sys *dram.System, id dram.BankID) {
			sys.CorruptOverflowForTest(id, 5, 42)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, id := faultDRAM(t)
			tc.hurt(sys, id)
			wantViolation(t, sys.CheckInvariants(), "dram/structure")
		})
	}
}

// TestFaultDRAMTornSwap loses one row's content mid-swap; the
// conservation check re-reads both rows and must catch the loss.
func TestFaultDRAMTornSwap(t *testing.T) {
	sys, id := faultDRAM(t)
	eng := invariant.NewEngine()
	sys.EnableParanoid(eng)
	sys.TearNextSwapForTest()
	sys.SwapRows(id, 2, 3, 0)
	wantViolation(t, eng.Err(), "dram/swap-conservation")
}
