package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// fastRetry keeps failover walks and pollers snappy under test.
var fastRetry = resilience.Policy{
	MaxAttempts: 2,
	BaseDelay:   time.Millisecond,
	MaxDelay:    5 * time.Millisecond,
}

// swapHandler lets a server exist before the node that serves it: the
// roster needs every URL up front, the node needs the roster, and the
// handler needs the node. Tests also re-Store it to wrap a live node's
// handler (e.g. with injected latency).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) Store(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) Load() http.Handler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.h
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.Load(); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}

// tfNode is one fleet member under test.
type tfNode struct {
	node *Node
	srv  *httptest.Server
	swap *swapHandler  // the server's live handler slot, re-Store to wrap
	runs *atomic.Int64 // how many times this node's engine stub ran
}

// startFleet brings up n in-process fleet nodes named n1..nN, each with
// a 1-worker manager and a counting engine stub that returns
// Result{IPC: seed}. mod tweaks each node's Options before New.
// Background loops are NOT started — tests drive ProbeOnce/StealOnce
// deterministically.
func startFleet(t *testing.T, n int, mod func(i int, o *Options)) []*tfNode {
	t.Helper()
	swaps := make([]*swapHandler, n)
	roster := make([]Peer, n)
	nodes := make([]*tfNode, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		srv := httptest.NewServer(swaps[i])
		t.Cleanup(srv.Close)
		roster[i] = Peer{ID: fmt.Sprintf("n%d", i+1), URL: srv.URL}
		nodes[i] = &tfNode{srv: srv, swap: swaps[i], runs: &atomic.Int64{}}
	}
	for i := range nodes {
		runs := nodes[i].runs
		opts := Options{
			Self:  roster[i],
			Peers: roster,
			Service: service.Options{
				Workers:    1,
				QueueDepth: 16,
				Run: func(_ context.Context, spec service.Spec, progress func(int64, int64)) (sim.Result, error) {
					runs.Add(1)
					if progress != nil {
						progress(1, 1)
					}
					return sim.Result{IPC: float64(spec.Seed)}, nil
				},
			},
			HTTPClient:    &http.Client{Timeout: 5 * time.Second},
			Retry:         fastRetry,
			FanoutTimeout: time.Second,
			StealInterval: -1, // tests call StealOnce themselves
		}
		if mod != nil {
			mod(i, &opts)
		}
		node, err := New(opts)
		if err != nil {
			t.Fatalf("New(%s): %v", roster[i].ID, err)
		}
		nodes[i].node = node
		swaps[i].Store(node.Handler())
		t.Cleanup(func() {
			node.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			node.Manager().Shutdown(ctx)
		})
	}
	return nodes
}

// uniqueSpec returns a cheap valid spec whose seed controls its hash
// and its stubbed result.
func uniqueSpec(seed uint64) service.Spec {
	return service.Spec{Workloads: []string{"bzip2"}, Mitigation: service.MitRRS,
		Scale: 16, Epochs: 1, Seed: seed}
}

// fleetClient talks to one node's public fleet API.
func fleetClient(n *tfNode) *service.Client {
	c := service.NewClient(n.srv.URL, service.WithRetryPolicy(fastRetry))
	c.PollInterval = 5 * time.Millisecond
	return c
}

// localClient bypasses ring routing via the node's internal surface,
// forcing local acceptance.
func localClient(n *tfNode) *service.Client {
	c := service.NewClient(n.srv.URL+internalPrefix, service.WithRetryPolicy(fastRetry))
	c.PollInterval = 5 * time.Millisecond
	return c
}

// ownerIndex resolves which roster index owns spec.
func ownerIndex(t *testing.T, nodes []*tfNode, spec service.Spec) int {
	t.Helper()
	roster := make([]Peer, len(nodes))
	for i, n := range nodes {
		roster[i] = n.node.self
	}
	owner := rank(spec.Hash(), roster)[0]
	for i, n := range nodes {
		if n.node.self.ID == owner.ID {
			return i
		}
	}
	t.Fatalf("owner %s not in fleet", owner.ID)
	return -1
}

// specOwnedBy finds a seed whose spec the given roster index owns.
func specOwnedBy(t *testing.T, nodes []*tfNode, idx int, from uint64) service.Spec {
	t.Helper()
	for seed := from; seed < from+1000; seed++ {
		spec := uniqueSpec(seed)
		if ownerIndex(t, nodes, spec) == idx {
			return spec
		}
	}
	t.Fatalf("no seed in [%d,%d) owned by node %d", from, from+1000, idx)
	return service.Spec{}
}

func counter(n *tfNode, name string) int64 {
	return n.node.met.JSON().Counters[name]
}

func TestFleetSubmitAnywhereRunsOnOwner(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	spec := uniqueSpec(42)
	owner := ownerIndex(t, nodes, spec)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i, n := range nodes {
		v, err := fleetClient(n).Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit via node %d: %v", i, err)
		}
		if want := nodes[owner].node.self.ID + "."; !strings.HasPrefix(v.ID, want) {
			t.Fatalf("submit via node %d: job id %q not homed on owner %q", i, v.ID, want)
		}
		res, err := fleetClient(n).Result(ctx, v.ID)
		if err != nil {
			t.Fatalf("result via node %d: %v", i, err)
		}
		if res.IPC != 42 {
			t.Fatalf("result via node %d: IPC = %v, want 42", i, res.IPC)
		}
	}
	// Exactly one execution fleet-wide: the owner's, and the identical
	// resubmissions coalesced on its content hash.
	for i, n := range nodes {
		want := int64(0)
		if i == owner {
			want = 1
		}
		if got := n.runs.Load(); got != want {
			t.Fatalf("node %d ran %d times, want %d", i, got, want)
		}
	}
	for i, n := range nodes {
		if i != owner && counter(n, "rrs_fleet_forwards_total") == 0 {
			t.Fatalf("node %d forwarded nothing", i)
		}
	}
}

func TestFleetFailoverWhenOwnerDies(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	spec := uniqueSpec(7)
	owner := ownerIndex(t, nodes, spec)
	// Kill the owner before anyone probes it: the optimistic detector
	// still routes to it, so the submit path must discover the death
	// itself and walk the failover order.
	nodes[owner].srv.Close()

	submitter := (owner + 1) % len(nodes)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := fleetClient(nodes[submitter]).Run(ctx, spec)
	if err != nil {
		t.Fatalf("run with dead owner: %v", err)
	}
	if res.IPC != 7 {
		t.Fatalf("IPC = %v, want 7", res.IPC)
	}
	if nodes[owner].runs.Load() != 0 {
		t.Fatalf("dead owner ran the job")
	}
	var total int64
	for _, n := range nodes {
		total += n.runs.Load()
	}
	if total != 1 {
		t.Fatalf("fleet ran the job %d times, want exactly 1", total)
	}
	if counter(nodes[submitter], "rrs_fleet_forward_failovers_total") == 0 {
		t.Fatalf("no failover counted on the submitter")
	}
}

func TestFleetRoutedPollProxyAndDelete(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	// A spec NOT owned by n1, submitted via n1: every poll must proxy.
	spec := specOwnedBy(t, nodes, 1, 100)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c := fleetClient(nodes[0])
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !strings.HasPrefix(v.ID, "n2.") {
		t.Fatalf("job id %q not homed on n2", v.ID)
	}
	if _, err := c.Result(ctx, v.ID); err != nil {
		t.Fatalf("proxied result: %v", err)
	}
	got, err := c.Job(ctx, v.ID)
	if err != nil {
		t.Fatalf("proxied status: %v", err)
	}
	if got.State != service.StateDone {
		t.Fatalf("proxied job state = %s, want done", got.State)
	}
	if err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatalf("proxied delete: %v", err)
	}
	if _, err := c.Job(ctx, v.ID); err == nil {
		t.Fatalf("job still resolvable after proxied delete")
	}
	if counter(nodes[0], "rrs_fleet_proxied_total") == 0 {
		t.Fatalf("nothing proxied")
	}

	// Home node gone: a proxied poll answers 404 so the client's
	// resubmit recovery can re-route the spec.
	spec2 := specOwnedBy(t, nodes, 1, 200)
	v2, err := c.Submit(ctx, spec2)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	nodes[1].srv.Close()
	_, err = c.Job(ctx, v2.ID)
	apiErr, ok := asAPIError(err)
	if !ok || apiErr.Status != http.StatusNotFound {
		t.Fatalf("poll with dead home = %v, want 404", err)
	}
	if counter(nodes[0], "rrs_fleet_proxy_misses_total") == 0 {
		t.Fatalf("proxy miss not counted")
	}
}

func asAPIError(err error) (*service.APIError, bool) {
	var apiErr *service.APIError
	ok := errors.As(err, &apiErr)
	return apiErr, ok
}

func TestFleetWideCacheHit(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	spec := uniqueSpec(9)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Run to completion on n1, bypassing the ring so the cache entry is
	// guaranteed to live there.
	if _, err := localClient(nodes[0]).Run(ctx, spec); err != nil {
		t.Fatalf("priming run on n1: %v", err)
	}
	if nodes[0].runs.Load() != 1 {
		t.Fatalf("n1 ran %d times priming, want 1", nodes[0].runs.Load())
	}

	// The same spec submitted to n2 (again forced local) must be
	// answered by n1's cache through the fan-out — n2's engine must not
	// run.
	res, err := localClient(nodes[1]).Run(ctx, spec)
	if err != nil {
		t.Fatalf("run on n2: %v", err)
	}
	if res.IPC != 9 {
		t.Fatalf("IPC = %v, want 9", res.IPC)
	}
	if got := nodes[1].runs.Load(); got != 0 {
		t.Fatalf("n2 ran %d times, want 0 (fleet cache hit)", got)
	}
	if counter(nodes[1], "rrs_fleet_cache_fanout_hits_total") == 0 {
		t.Fatalf("fan-out hit not counted")
	}
}

func TestFleetDrainGatesReadyzAndRouting(t *testing.T) {
	nodes := startFleet(t, 2, func(i int, o *Options) {
		o.Fall, o.Rise = 1, 1
	})
	// A spec n1 owns, so routing away from it is observable.
	spec := specOwnedBy(t, nodes, 0, 300)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	nodes[0].node.StartDrain()

	// /readyz flips immediately; /healthz stays green (the node is
	// alive, finishing its backlog).
	resp, err := http.Get(nodes[0].srv.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining /readyz missing Retry-After")
	}
	if err := localClient(nodes[0]).Health(ctx); err != nil {
		t.Fatalf("draining /healthz: %v", err)
	}

	// One probe round is enough at fall=1 for n2 to evict n1.
	nodes[1].node.ProbeOnce(ctx)
	if len(nodes[1].node.det.Routable()) != 0 {
		t.Fatalf("n2 still routes to draining n1")
	}

	// Submitting n1's spec via n2 must run on n2 now.
	if _, err := fleetClient(nodes[1]).Run(ctx, spec); err != nil {
		t.Fatalf("run via n2: %v", err)
	}
	if nodes[0].runs.Load() != 0 || nodes[1].runs.Load() != 1 {
		t.Fatalf("runs = [%d %d], want [0 1]", nodes[0].runs.Load(), nodes[1].runs.Load())
	}

	// Submitting via the draining n1 itself still succeeds: n1 excludes
	// itself from its ring and forwards to n2.
	spec2 := specOwnedBy(t, nodes, 0, 400)
	if _, err := fleetClient(nodes[0]).Run(ctx, spec2); err != nil {
		t.Fatalf("run via draining n1: %v", err)
	}
	if nodes[0].runs.Load() != 0 {
		t.Fatalf("draining n1 ran a job")
	}
}

func TestFleetAdmissionShedding(t *testing.T) {
	gate := make(chan struct{})
	nodes := startFleet(t, 1, func(i int, o *Options) {
		o.Service.AdmissionWatermark = 1
		o.Service.Run = func(_ context.Context, spec service.Spec, _ func(int64, int64)) (sim.Result, error) {
			<-gate
			return sim.Result{IPC: float64(spec.Seed)}, nil
		}
	})
	defer close(gate)
	n := nodes[0]

	post := func(seed uint64) *http.Response {
		body, _ := json.Marshal(uniqueSpec(seed))
		resp, err := http.Post(n.srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post seed %d: %v", seed, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// First job occupies the single worker...
	if resp := post(1); resp.StatusCode != http.StatusCreated {
		t.Fatalf("job 1 status = %d, want 201", resp.StatusCode)
	}
	waitFor(t, func() bool { _, busy, _ := n.node.mgr.Load(); return busy == 1 })
	// ...second fills the queue to the watermark...
	if resp := post(2); resp.StatusCode != http.StatusCreated {
		t.Fatalf("job 2 status = %d, want 201", resp.StatusCode)
	}
	// ...third sheds with a backoff hint instead of deepening the queue.
	resp := post(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing Retry-After")
	}
	if counter(n, "rrs_jobs_shed_total") != 1 {
		t.Fatalf("rrs_jobs_shed_total = %d, want 1", counter(n, "rrs_jobs_shed_total"))
	}

	// The overload also shows on /readyz, so peers stop routing here.
	r2, err := http.Get(n.srv.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded /readyz = %d, want 503", r2.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached in 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
