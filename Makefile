# Convenience targets for the randrowswap-go reproduction.

GO ?= go

.PHONY: all build test test-short bench bench-figures bench-quick bench-guard bench-parallel paranoid vet lint race chaos chaos-fleet chaos-replica loadgen-smoke fuzz serve experiments examples alloc-check profile shootout-smoke sweep-smoke clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is what CI runs: vet plus a gofmt cleanliness check.
lint: vet
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# race runs the full suite under the race detector (the service layer
# is concurrency-heavy; CI runs this on every PR).
race:
	$(GO) test -race ./...

# paranoid is the full self-verification battery: the whole test suite
# under the race detector with the runtime invariant checks forced on
# (RRS_PARANOID=1 routes every sim.Run through the structural sweeps and
# shadow-model oracles), then the fault-injection suite, which proves
# each corruption class the structure packages can express is detected
# as a typed invariant violation.
paranoid:
	RRS_PARANOID=1 $(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/invariant/

# chaos soaks the serving layer's failure handling under the race
# detector: fault-injected sweeps, journal crash/replay, panic
# isolation. Repeated (-count=2) to shake out ordering luck.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Journal' ./internal/service/... ./internal/chaos/...

# chaos-fleet is the multi-node soak: a 3-node fleet runs a sweep of
# real simulations while one member is kill -9'd mid-sweep and
# restarted from its journal on the same roster name. Every result must
# arrive exactly once, bit-identical to a plain-engine reference, and
# the survivors must visibly shrink the ring around the dead node. Runs
# under the race detector (the soak shortens its sweep accordingly).
chaos-fleet:
	$(GO) test -race -count=1 -run 'TestFleetSoak' -v ./internal/chaos/

# chaos-replica is the durable-fleet soak: a 3-node fleet with result
# replication completes a sweep, then the node that owns a completed
# result is kill -9'd. Resubmitting that spec must be answered from the
# successor's replica — a cache hit with zero re-executions anywhere,
# bit-identical to a plain-engine reference — and a replacement node
# then joins via gossip (-join semantics) and is routed work without
# any survivor restarting.
chaos-replica:
	$(GO) test -race -count=1 -run 'TestFleetReplica' -v ./internal/chaos/

# loadgen-smoke measures fleet capacity on an in-process 3-node fleet
# (real engine, loopback HTTP) and regenerates the committed
# BENCH_PR8.fleet.json artifact: closed-loop clients ramped 1→2→4, a
# quarter of the jobs re-using one hot spec to show the fleet-wide
# cache path.
loadgen-smoke:
	$(GO) run ./cmd/rrs-loadgen -local 3 -levels 1,2,4 -jobs-per-client 4 \
		-cache-fraction 0.25 -out BENCH_PR8.fleet.json

# fuzz hammers the spec decode/normalize/hash pipeline briefly.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSpecDecode -fuzztime 30s ./internal/service/

# serve starts the simulation job service on :8080.
serve:
	$(GO) run ./cmd/rrs-serve

# bench runs the pinned performance-trajectory set (cmd/rrs-bench):
# representative sims plus hot-path microbenchmarks, drift-checked
# against cmd/rrs-bench/pins.json and written to BENCH_PR7.json (the
# committed baseline bench-guard compares against; re-run and commit it
# when the benchmark machine changes).
bench:
	$(GO) run ./cmd/rrs-bench -pins cmd/rrs-bench/pins.json -out BENCH_PR7.json

# bench-quick is the CI smoke subset (fails on any stat drift).
bench-quick:
	$(GO) run ./cmd/rrs-bench -quick -pins cmd/rrs-bench/pins.json -out bench-quick.json

# bench-guard is bench-quick plus a throughput floor: with the paranoid
# checks off (the default), the geomean sim rate must stay within 2% of
# the BENCH_PR7.json baseline — the self-verification layer must cost
# nothing when disabled. The quick sims are sub-second, so the guard
# takes the fastest of 7 repetitions to keep scheduler noise from
# tripping a floor meant to catch code regressions.
bench-guard:
	$(GO) run ./cmd/rrs-bench -quick -reps 7 -pins cmd/rrs-bench/pins.json \
		-baseline BENCH_PR7.json -min-speedup 0.98 -out bench-quick.json

# bench-parallel drift-checks the bank-sharded parallel mode (pins under
# name+"+par") and reports its throughput; the stats are identical for
# every positive -workers count, so any drift here is a real behavioral
# change in the shard decomposition or the merge.
bench-parallel:
	$(GO) run ./cmd/rrs-bench -quick -workers 8 -pins cmd/rrs-bench/pins.json \
		-out bench-parallel.json

# alloc-check runs the per-access allocation pins: the hot path — and
# every hook layered onto it (paranoid checks, event recording) — must
# stay at 0 allocs/op when its feature is off. CI runs this next to
# bench-guard so an accidental allocation (closure capture, interface
# boxing) fails loudly instead of surfacing as throughput drift.
alloc-check:
	$(GO) test -run 'AllocFree' -count=1 ./internal/rit ./internal/tracker \
		./internal/dram ./internal/cat ./internal/obs ./internal/mitigation

# shootout-smoke runs the cross-defense comparison at quick scale with
# the invariant engine on: every mitigation in the zoo (RRS, the paper
# baselines, and the successors SRS/Rubix/MINT/PrIDE/DAPPER) must
# produce a perf + security + SRAM row and pass its structural checks.
shootout-smoke:
	$(GO) run ./cmd/rrs-experiments -shootout -scale 64 -epochs 1 \
		-workloads hmmer -paranoid

# sweep-smoke drives the server-side sweep API end to end with the real
# engine: a small sweep over HTTP, submitted twice — the second pass
# must be answered entirely from the result cache
# (rrs_sweep_children_cached_total proves it).
sweep-smoke:
	$(GO) test -run 'TestSweepSmoke' -count=1 -v ./internal/service/

# profile captures CPU and heap pprof profiles of the quick benchmark
# set. Inspect with `go tool pprof cpu.pprof` (web: add -http=:0).
profile:
	$(GO) run ./cmd/rrs-bench -quick -pins cmd/rrs-bench/pins.json \
		-out bench-profile.json -cpuprofile cpu.pprof -memprofile mem.pprof

# One benchmark per table/figure of the paper.
bench-figures:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every table and figure (writes to stdout; ~20 min single-core).
experiments:
	$(GO) run ./cmd/rrs-experiments -exp all -scale 16 -epochs 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/halfdouble
	$(GO) run ./examples/secanalysis
	$(GO) run ./examples/blockhammer

clean:
	$(GO) clean ./...
