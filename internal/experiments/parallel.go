package experiments

import (
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
)

// runAll executes fn for every workload concurrently (each simulation is
// independent and single-threaded) and returns results in workload order.
// The first error wins.
func runAll[T any](ws []trace.Workload, fn func(trace.Workload) (T, error)) ([]T, error) {
	out := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w trace.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// normPair holds the two runs a normalized-performance measurement needs.
type normPair struct {
	norm float64
	base sim.Result
	mit  sim.Result
}
