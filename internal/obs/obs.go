// Package obs is the simulation core's observability layer: a
// ring-buffered, allocation-free event recorder plus per-component
// histograms, capturing *when* things happen inside a run — swaps,
// un-swaps, RIT and HRT churn, epoch resets, channel-blocked intervals —
// where the engine's Result reports only end-of-run aggregates.
//
// The paper's headline numbers are time-series claims (swap stalls
// clustering, ~1.46 µs per swap, RIT occupancy across a 64 ms epoch);
// this package makes them visible: rrs-sim can dump the timeline as
// JSONL or as a Chrome trace-event file loadable in Perfetto, and the
// job service folds the histograms into its Prometheus registry.
//
// The discipline matches the paranoid layer (DESIGN.md §9): every hook
// in core, rit, tracker and memctrl sits behind one nil test, so a run
// without a Recorder is bit-identical and allocation-free — the alloc
// tests and the bench-guard throughput floor hold with the hooks
// compiled in. With a Recorder attached, statistics are still
// bit-identical (the recorder only observes); only Result.Timeline is
// added.
package obs

import (
	"fmt"
	"math/bits"
)

// Kind identifies an event class. The taxonomy is documented in
// DESIGN.md §10.
type Kind uint8

// Event kinds.
const (
	// KindSwap is a first-time swap: logical row A relocates to random
	// destination B (one swap operation, ~1.46 µs of channel time).
	KindSwap Kind = iota + 1
	// KindReswap is a swap of an already-swapped row: tuple <A,B>
	// dissolves and both rows move to fresh destinations (the fused
	// 4-row cycle, ~2.9 µs).
	KindReswap
	// KindUnswap is a lazy un-swap: RIT eviction restored stale tuple
	// <A,B> to its home locations.
	KindUnswap
	// KindRITInstall is a new RIT tuple <A,B>.
	KindRITInstall
	// KindRITEvict is a random unlocked tuple <A,B> leaving the RIT.
	KindRITEvict
	// KindHRTInsert is row A entering the hot-row tracker at estimated
	// count B.
	KindHRTInsert
	// KindHRTEvict is row A (estimated count B) displaced from the
	// tracker by a minimum-count replacement.
	KindHRTEvict
	// KindHRTCross is row A's estimated count reaching B, crossing a
	// multiple of the swap threshold — the trigger for a swap.
	KindHRTCross
	// KindEpoch is an epoch boundary: trackers reset, RIT locks clear,
	// DRAM activation counters zero. A is the completed epoch index.
	KindEpoch
	// KindChannelBlocked is the channel being busy with mitigation data
	// transfers for Dur cycles after a swap trigger on row A.
	KindChannelBlocked
	// KindAttack is the footnote-2 detector firing: physical location A
	// absorbed enough swap events to flag an attack.
	KindAttack
	// KindVictimRefresh is a victim-focused mitigation refreshing the
	// neighbours of physical row A (B is the number of refresh
	// activations issued) — the zoo defenses' firing events.
	KindVictimRefresh

	numKinds
)

var kindNames = [numKinds]string{
	KindSwap:           "swap",
	KindReswap:         "reswap",
	KindUnswap:         "unswap",
	KindRITInstall:     "rit-install",
	KindRITEvict:       "rit-evict",
	KindHRTInsert:      "hrt-insert",
	KindHRTEvict:       "hrt-evict",
	KindHRTCross:       "hrt-cross",
	KindEpoch:          "epoch",
	KindChannelBlocked: "channel-blocked",
	KindAttack:         "attack-detected",
	KindVictimRefresh:  "victim-refresh",
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// MarshalText implements encoding.TextMarshaler; events serialize kinds
// by name so JSONL streams stay readable and stable across reorderings
// of the enum.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i := 1; i < len(kindNames); i++ {
		if kindNames[i] == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one timeline entry. It is a fixed-size value with no
// pointers, so the ring buffer is a single flat allocation.
type Event struct {
	// At is the event time in bus cycles.
	At int64 `json:"at"`
	// Dur is the event's extent in bus cycles (0 for instantaneous
	// events; the channel-block length for KindChannelBlocked).
	Dur int64 `json:"dur,omitempty"`
	// Kind is the event class (serialized by name).
	Kind Kind `json:"kind"`
	// Bank is the flat bank index ((channel*ranks+rank)*banks+bank), or
	// -1 for system-wide events (epoch boundaries).
	Bank int32 `json:"bank"`
	// A and B are the kind-specific operands (rows, counts, epoch
	// indices — see the Kind doc comments).
	A uint64 `json:"a,omitempty"`
	B uint64 `json:"b,omitempty"`
}

// HistID names one of the recorder's fixed per-component histograms.
type HistID uint8

// Histogram identities.
const (
	// HistSwapBlock is channel-block cycles per swap trigger (the swap
	// latency the paper prices at ~1.46 µs, ~2.9 µs for re-swaps).
	HistSwapBlock HistID = iota
	// HistStall is the cycles an access waited between arrival and its
	// first DRAM command (channel blocked by swap transfers, refresh
	// windows) — the memctrl queue/stall distribution.
	HistStall
	// HistAccess is total access latency in bus cycles (arrival to
	// completion).
	HistAccess
	// HistRITOcc is RIT occupancy in tuples, sampled per bank at every
	// epoch boundary.
	HistRITOcc
	// HistHRTOcc is hot-row tracker occupancy in entries, sampled per
	// bank at every epoch boundary.
	HistHRTOcc

	numHists
)

var histNames = [numHists]string{
	HistSwapBlock: "swap_block_cycles",
	HistStall:     "stall_cycles",
	HistAccess:    "access_cycles",
	HistRITOcc:    "rit_occupancy",
	HistHRTOcc:    "hrt_occupancy",
}

// String returns the histogram's stable export name.
func (id HistID) String() string { return histNames[id] }

// Hist is a fixed-geometry power-of-two histogram over non-negative
// int64 samples: bucket i counts values whose bit length is i, i.e.
// values in [2^(i-1), 2^i - 1] (bucket 0 holds exactly the zeros).
// Observing is one array increment — no allocation, no search.
type Hist struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [65]int64
}

// Observe records one sample; negative values clamp to 0 (they cannot
// occur from cycle arithmetic, but a histogram must not corrupt its
// geometry on a caller bug).
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
}

// BucketCount is one exported histogram bucket: Count samples were
// ≤ LE (and above the previous bucket's LE).
type BucketCount struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistView is the JSON projection of a histogram; empty buckets are
// omitted.
type HistView struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Mean    float64       `json:"mean"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// View exports the histogram.
func (h *Hist) View() HistView {
	v := HistView{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		v.Mean = float64(h.sum) / float64(h.count)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		le := int64(1)<<uint(i) - 1 // bucket i spans [2^(i-1), 2^i - 1]
		v.Buckets = append(v.Buckets, BucketCount{LE: le, Count: c})
	}
	return v
}

// EpochSample is one point of the per-epoch time series the recorder
// accumulates: the state of the mitigation at an epoch boundary, before
// trackers reset.
type EpochSample struct {
	// Epoch is the completed epoch's index (0-based).
	Epoch int64 `json:"epoch"`
	// At is the boundary time in bus cycles.
	At int64 `json:"at"`
	// Swaps is the number of swap events in the completed epoch.
	Swaps int64 `json:"swaps"`
	// RITTuples and HRTRows are total occupancy across all banks at the
	// boundary (per-bank distributions live in the rit_occupancy and
	// hrt_occupancy histograms).
	RITTuples int64 `json:"rit_tuples"`
	HRTRows   int64 `json:"hrt_rows"`
	// BlockCycles is the cumulative channel-block time spent on swap
	// transfers through the end of this epoch.
	BlockCycles int64 `json:"block_cycles"`
}

// DefaultRingSize is the event-ring capacity when Config leaves it 0
// (64 Ki events ≈ 3 MiB).
const DefaultRingSize = 1 << 16

// Config sizes a Recorder.
type Config struct {
	// RingSize caps the event ring: 0 picks DefaultRingSize, a negative
	// value disables event recording entirely (histograms and epoch
	// samples are still collected — the shape the job service uses,
	// where per-event timelines would outlive their usefulness).
	RingSize int
}

// Recorder collects events, histograms and epoch samples for one run.
// It is single-goroutine, like the simulation loop that feeds it; all
// record paths are allocation-free (the ring is preallocated, histogram
// buckets are fixed arrays).
//
// The ring keeps the newest events: once full, each Record overwrites
// the oldest entry and Dropped grows. Timeline unrolls the ring into
// chronological order.
type Recorder struct {
	ring  []Event
	pos   int   // next write index
	total int64 // events ever recorded
	now   int64 // timestamp for RecordNow (set by the memory controller)

	hists   [numHists]Hist
	samples []EpochSample
}

// NewRecorder builds a recorder for one run.
func NewRecorder(cfg Config) *Recorder {
	n := cfg.RingSize
	if n == 0 {
		n = DefaultRingSize
	}
	if n < 0 {
		n = 0
	}
	return &Recorder{
		ring:    make([]Event, n),
		samples: make([]EpochSample, 0, 64),
	}
}

// SetNow updates the recorder's clock; the memory controller calls it
// as simulated time advances so components without a time argument
// (RIT installs, tracker churn) can stamp events via RecordNow.
func (r *Recorder) SetNow(t int64) { r.now = t }

// Now returns the recorder's current clock.
func (r *Recorder) Now() int64 { return r.now }

// Record appends an event with an explicit timestamp and duration.
func (r *Recorder) Record(k Kind, bank int32, a, b uint64, at, dur int64) {
	r.total++
	if len(r.ring) == 0 {
		return
	}
	r.ring[r.pos] = Event{At: at, Dur: dur, Kind: k, Bank: bank, A: a, B: b}
	r.pos++
	if r.pos == len(r.ring) {
		r.pos = 0
	}
}

// RecordNow appends an instantaneous event stamped with the recorder's
// clock.
func (r *Recorder) RecordNow(k Kind, bank int32, a, b uint64) {
	r.Record(k, bank, a, b, r.now, 0)
}

// Observe adds one sample to a named histogram.
func (r *Recorder) Observe(id HistID, v int64) { r.hists[id].Observe(v) }

// Sample appends one epoch sample.
func (r *Recorder) Sample(s EpochSample) { r.samples = append(r.samples, s) }

// Events returns how many events were recorded (kept or dropped).
func (r *Recorder) Events() int64 { return r.total }

// Timeline is the exported form of a run's recording — the value
// sim.Result carries and the JSONL / Chrome-trace writers consume.
type Timeline struct {
	// Events is the kept event stream in chronological order. When
	// TotalEvents exceeds len(Events), the ring dropped the oldest
	// DroppedEvents entries.
	Events        []Event `json:"events,omitempty"`
	TotalEvents   int64   `json:"total_events"`
	DroppedEvents int64   `json:"dropped_events,omitempty"`
	// Histograms maps HistID names (swap_block_cycles, stall_cycles,
	// access_cycles, rit_occupancy, hrt_occupancy) to their views;
	// histograms that saw no samples are omitted.
	Histograms map[string]HistView `json:"histograms,omitempty"`
	// Samples is the per-epoch time series.
	Samples []EpochSample `json:"epoch_samples,omitempty"`
}

// Timeline exports the recorder's state. The returned value owns fresh
// slices; the recorder may keep recording afterwards.
func (r *Recorder) Timeline() *Timeline {
	tl := &Timeline{
		TotalEvents: r.total,
		Samples:     append([]EpochSample(nil), r.samples...),
	}
	kept := r.total
	if kept > int64(len(r.ring)) {
		kept = int64(len(r.ring))
	}
	tl.DroppedEvents = r.total - kept
	if kept > 0 {
		tl.Events = make([]Event, 0, kept)
		if r.total >= int64(len(r.ring)) {
			// Full ring: the oldest kept event sits at the write position.
			tl.Events = append(tl.Events, r.ring[r.pos:]...)
			tl.Events = append(tl.Events, r.ring[:r.pos]...)
		} else {
			tl.Events = append(tl.Events, r.ring[:r.pos]...)
		}
	}
	for id := HistID(0); id < numHists; id++ {
		if r.hists[id].count == 0 {
			continue
		}
		if tl.Histograms == nil {
			tl.Histograms = make(map[string]HistView, int(numHists))
		}
		tl.Histograms[id.String()] = r.hists[id].View()
	}
	return tl
}
