package fleet

import (
	"sort"
	"sync"
)

// Member is one row of the fleet's membership table: who a node is,
// where to reach it, and a per-member epoch that totally orders updates
// about it. A row with Left set is a tombstone — the member announced a
// permanent departure (drain), as opposed to merely failing probes.
//
// Merge rule (both sides of every gossip exchange apply it, so the
// table is a CRDT and converges regardless of delivery order):
//
//	higher Epoch wins; at equal Epoch a tombstone beats an alive row;
//	at equal everything the larger URL string wins (a deterministic
//	tie-break so two nodes never disagree forever).
//
// A member re-announces itself with Epoch = seen+1 whenever gossip
// shows it superseded — tombstoned or listed under a stale URL — which
// is exactly how a node restarted after a drain, or rebooted on a new
// address under the same ID, rejoins without anyone restarting.
type Member struct {
	Peer  Peer   `json:"peer"`
	Epoch uint64 `json:"epoch"`
	Left  bool   `json:"left,omitempty"`
}

// supersedes reports whether row a should replace row b in the table.
func supersedes(a, b Member) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	if a.Left != b.Left {
		return a.Left
	}
	return a.Peer.URL > b.Peer.URL
}

// membership is the versioned table. version counts local mutations
// (merges that changed something, announces, leaves) and is exported as
// a gauge — it is a per-node change counter, not a fleet-wide clock.
type membership struct {
	mu      sync.Mutex
	self    string
	rows    map[string]Member
	version uint64
}

// newMembership seeds the table from the static boot roster, every row
// alive at epoch 1. A join-mode node boots with a roster of just itself
// and learns the rest through its first gossip exchange.
func newMembership(self string, roster []Peer) *membership {
	m := &membership{
		self:    self,
		rows:    make(map[string]Member, len(roster)),
		version: 1,
	}
	for _, p := range roster {
		m.rows[p.ID] = Member{Peer: p, Epoch: 1}
	}
	return m
}

// merge folds a gossiped table in, row by row, under the supersedes
// rule. Returns whether anything changed.
func (m *membership) merge(rows []Member) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, in := range rows {
		if in.Peer.ID == "" || in.Epoch == 0 {
			continue // malformed or zero-value row; never merge those
		}
		cur, ok := m.rows[in.Peer.ID]
		if !ok || supersedes(in, cur) {
			m.rows[in.Peer.ID] = in
			changed = true
		}
	}
	if changed {
		m.version++
	}
	return changed
}

// announce (re)asserts self as alive at p, bumping the epoch past any
// row that currently supersedes it. Returns whether the table changed —
// false when the table already shows self alive at this URL.
func (m *membership) announce(p Peer) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.rows[p.ID]
	if ok && !cur.Left && cur.Peer.URL == p.URL {
		return false
	}
	epoch := uint64(1)
	if ok {
		epoch = cur.Epoch + 1
	}
	m.rows[p.ID] = Member{Peer: p, Epoch: epoch}
	m.version++
	return true
}

// leave tombstones self — a permanent, gossiped departure. Idempotent.
func (m *membership) leave() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.rows[m.self]
	if !ok || cur.Left {
		return false
	}
	m.rows[m.self] = Member{Peer: cur.Peer, Epoch: cur.Epoch + 1, Left: true}
	m.version++
	return true
}

// member returns the row for id.
func (m *membership) member(id string) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	row, ok := m.rows[id]
	return row, ok
}

// remotes lists the alive members other than self, sorted by ID — the
// peer set the failure detector probes and the ring routes over.
func (m *membership) remotes() []Peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Peer, 0, len(m.rows))
	for id, row := range m.rows {
		if id == m.self || row.Left {
			continue
		}
		out = append(out, row.Peer)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// alive counts non-tombstoned rows, self included.
func (m *membership) alive() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, row := range m.rows {
		if !row.Left {
			n++
		}
	}
	return n
}

// snapshot returns every row (tombstones included — they are the whole
// point of gossiping the table), sorted by ID.
func (m *membership) snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.rows))
	for _, row := range m.rows {
		out = append(out, row)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Peer.ID < out[b].Peer.ID })
	return out
}

// currentVersion reports the local mutation counter.
func (m *membership) currentVersion() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}
