package tracker_test

import (
	"fmt"

	"repro/internal/tracker"
)

// ExampleCAM walks the paper's Figure 3: a 3-entry Misra-Gries tracker
// holding {A:6, X:3, Z:9} with spill = 2 processes accesses to A (hit),
// B (miss, min > spill: spill increments) and C (miss, min == spill: the
// minimum entry X is replaced).
func ExampleCAM() {
	const rowA, rowX, rowZ, rowB, rowC = 1, 2, 3, 4, 5
	tr, err := tracker.NewCAM(3, 1000)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 6; i++ {
		tr.Observe(rowA)
	}
	for i := 0; i < 3; i++ {
		tr.Observe(rowX)
	}
	for i := 0; i < 9; i++ {
		tr.Observe(rowZ)
	}
	tr.Observe(100) // two misses raise the spill counter to 2
	tr.Observe(101)

	tr.Observe(rowA) // hit: 6 -> 7
	cnt, _ := tr.Count(rowA)
	fmt.Printf("A: count %d\n", cnt)

	tr.Observe(rowB) // miss, min(3) > spill(2): spill++
	fmt.Printf("B tracked: %v, spill %d\n", tr.Contains(rowB), tr.Spill())

	tr.Observe(rowC) // miss, min(3) == spill(3): replace X with C
	cnt, _ = tr.Count(rowC)
	fmt.Printf("C: count %d, X tracked: %v\n", cnt, tr.Contains(rowX))
	// Output:
	// A: count 7
	// B tracked: false, spill 3
	// C: count 4, X tracked: false
}

// ExampleEntriesFor shows the paper's structure sizing: tracking a 1.36M
// activation window at T_RRS = 800 takes 1700 entries.
func ExampleEntriesFor() {
	fmt.Println(tracker.EntriesFor(1360000, 800))
	// Output:
	// 1700
}
