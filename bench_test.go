package repro

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment at a reduced scale and reports
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// walks the entire evaluation. Use cmd/rrs-experiments for full-size runs
// and readable tables. Simulation-backed benchmarks default to two
// contrasting workloads (hot hmmer, cold mcf) at 1 ms epochs; analytic
// benchmarks run the paper's exact parameters.

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/cat"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/security"
	"repro/internal/trace"
)

// benchScale is the reduced experiment scale used by the benchmarks.
func benchScale(names ...string) experiments.Scale {
	if len(names) == 0 {
		names = []string{"hmmer", "mcf"}
	}
	var ws []trace.Workload
	for _, n := range names {
		w, ok := trace.ByName(n)
		if !ok {
			panic("unknown workload " + n)
		}
		ws = append(ws, w)
	}
	return experiments.Scale{Factor: 64, Epochs: 1, Seed: 0xBE, Workloads: ws}
}

// BenchmarkTable1RHThresholds renders the threshold history table.
func BenchmarkTable1RHThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Rows() != 6 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2Config renders the baseline configuration.
func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table2().String()
	}
}

// BenchmarkTable3Workloads measures the workload characterization run
// (footprint / MPKI / hot rows).
func BenchmarkTable3Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MeasuredHotRows, "hmmer-hot-rows")
		b.ReportMetric(rows[0].MeasuredMPKI, "hmmer-mpki")
	}
}

// BenchmarkTable4AttackTime evaluates the security model at the paper's
// design points.
func BenchmarkTable4AttackTime(b *testing.B) {
	var years float64
	for i := 0; i < b.N; i++ {
		m := security.PaperModel(800)
		years = m.AttackSeconds() / (365.25 * 86400)
	}
	b.ReportMetric(years, "attack-years-T800")
}

// BenchmarkTable5Storage computes the storage accounting.
func BenchmarkTable5Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table5().String()
	}
}

// BenchmarkTable6Power measures DRAM power overhead and SRAM power.
func BenchmarkTable6Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table6(benchScale("bzip2"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DRAMOverheadPercent, "dram-overhead-%")
		b.ReportMetric(res.SRAMPowerMW, "sram-mW")
	}
}

// BenchmarkTable7DefenseMatrix runs the attack matrix: victim-focused
// mitigation vs RRS under double-sided and Half-Double attacks.
func BenchmarkTable7DefenseMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table7()
		defendedByRRS := 0
		for _, r := range rows {
			if r.Defense == "RRS" && r.Defended {
				defendedByRRS++
			}
		}
		b.ReportMetric(float64(defendedByRRS), "rrs-defenses")
	}
}

// BenchmarkFigure5Swaps measures row-swaps per epoch for a hot and a cold
// workload.
func BenchmarkFigure5Swaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Figure5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SwapsPerEpoch, "hmmer-swaps/epoch")
		b.ReportMetric(rows[1].SwapsPerEpoch, "mcf-swaps/epoch")
	}
}

// BenchmarkFigure6Slowdown measures RRS performance normalized to the
// unprotected baseline.
func BenchmarkFigure6Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Figure6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Normalized, r.Workload+"-norm")
		}
	}
}

// BenchmarkFigure7Chase runs the optimal anti-RRS attacker.
func BenchmarkFigure7Chase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Figure7(2)
		if !res.Defended() {
			b.Fatal("chase attack broke RRS")
		}
		b.ReportMetric(float64(res.Accesses), "attacker-accesses")
	}
}

// BenchmarkFigure9CATConflicts runs the buckets-and-balls conflict
// experiment with Monte Carlo + extrapolation.
func BenchmarkFigure9CATConflicts(b *testing.B) {
	o := experiments.DefaultFigure9Options()
	o.Sets = 16
	o.DemandWays = 6
	o.MaxInstalls = 200000
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Figure9(o)
		if len(pts) > 0 {
			b.ReportMetric(pts[len(pts)-1].Log10Installs, "log10-installs-6ways")
		}
	}
}

// BenchmarkFigure10ThresholdSweep sweeps T_RH from 0.25x to 4x.
func BenchmarkFigure10ThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Figure10(benchScale("bzip2"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].GeoMean, "norm-0.25x")
		b.ReportMetric(pts[2].GeoMean, "norm-1x")
		b.ReportMetric(pts[4].GeoMean, "norm-4x")
	}
}

// BenchmarkFigure11SCurve compares RRS against BlockHammer (512 and 1K
// blacklist thresholds).
func BenchmarkFigure11SCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.Figure11(benchScale("hmmer", "bzip2"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].Norms[0], "rrs-worst")
		b.ReportMetric(series[1].Norms[0], "bh512-worst")
	}
}

// BenchmarkDoSThrottling measures attacker throughput under each defense
// (the Section 8.1 comparison).
func BenchmarkDoSThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.DoS(1)
		for _, r := range rows {
			if r.Defense != "None" {
				b.ReportMetric(r.Slowdown, r.Defense+"-slowdown-x")
			}
		}
	}
}

// BenchmarkAblationTracker compares the CAM and CAT tracker variants
// inside RRS.
func BenchmarkAblationTracker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TrackerAblation(benchScale(), "hmmer")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Normalized, "cat-norm")
		b.ReportMetric(rows[1].Normalized, "cam-norm")
	}
}

// BenchmarkHalfDoubleVsVFM verifies the Figure 1 motivation as a bench:
// Half-Double defeats idealized victim-focused mitigation.
func BenchmarkHalfDoubleVsVFM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table7()
		flips := 0
		for _, r := range rows {
			if r.Defense == "Victim-Focused (ideal)" && r.Attack == "half-double" {
				flips = r.Flips
			}
		}
		if flips == 0 {
			b.Fatal("Half-Double failed to defeat VFM")
		}
		b.ReportMetric(float64(flips), "vfm-halfdouble-flips")
	}
}

// BenchmarkMonteCarloCrossCheck validates the analytic attack model
// against simulation at an observable scale.
func BenchmarkMonteCarloCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := security.MonteCarloProbK(256, 512, 5, 50, 42)
		b.ReportMetric(p, "mc-prob")
	}
}

// BenchmarkCATConflictSingle runs one Monte Carlo conflict trial (the raw
// substrate of Figure 9).
func BenchmarkCATConflictSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := cat.ConflictExperiment{
			Sets: 16, DemandWays: 6, ExtraWays: 1,
			MaxInstalls: 100000, Trials: 1, Seed: uint64(i),
		}.Run()
		_ = r
	}
}

// BenchmarkAttackThroughput measures raw attack-harness speed (accesses
// per second through the full controller + RRS stack).
func BenchmarkAttackThroughput(b *testing.B) {
	cfg := attackConfigForBench()
	ctl, fm := attack.NewSystem(cfg, 0, attack.Alpha2For(cfg), nil)
	p := attack.NewDoubleSided(100)
	b.ResetTimer()
	var acc int64
	for i := 0; i < b.N; i++ {
		res := attack.Run(ctl, fm, p, attack.Options{Epochs: 1, MaxAccesses: 1000})
		acc += res.Accesses
	}
	b.ReportMetric(float64(acc)/float64(b.N), "accesses/op")
}

func attackConfigForBench() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240
	return cfg
}

// BenchmarkProbabilisticVariant runs the footnote-1 ablation: tracked vs
// state-less RRS swap rates.
func BenchmarkProbabilisticVariant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TrackerVsProbabilistic(benchScale("mcf"), "mcf")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SwapsPerEpoch, "tracked-swaps")
		b.ReportMetric(rows[1].SwapsPerEpoch, "stateless-swaps")
	}
}

// BenchmarkAttackDetection runs the footnote-2 detector experiment.
func BenchmarkAttackDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AttackDetection(4)
		b.ReportMetric(float64(res.AttackDetections), "attack-detections")
		b.ReportMetric(float64(res.AttackFlips), "flips")
	}
}
