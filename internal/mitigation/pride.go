package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// PrIDE models probabilistic tracker management (arXiv 2404.16256, and
// its DAPPER refinement arXiv 2501.18857): per bank, a tiny FIFO of
// sampled aggressor rows. Each activation is enqueued with probability p
// (default 4/W, W activations per tREFI); at every tREFI boundary the
// head entry is popped and its neighbours refreshed, hiding the refresh
// in the slack of the regular refresh operation. The queue bounds SRAM
// at a handful of row addresses per bank, and sampling bounds the rate
// at which refreshes are generated.
//
// The two papers differ in overflow policy, which is exactly where
// their security analyses diverge:
//
//   - PrIDE drops the new sample when the queue is full (simple, but an
//     attacker who keeps the queue saturated suppresses new captures).
//   - DAPPER replaces a uniformly random resident entry instead, so a
//     saturating attacker cannot keep any specific sample out.
//
// NewPrIDE and NewDAPPER share this implementation via the replace flag.
type PrIDE struct {
	verifier
	observer
	sys *dram.System
	cfg config.Config
	// p is the per-activation enqueue probability.
	p float64
	// replace selects DAPPER's random-replacement overflow policy.
	replace bool
	trefi   int64
	units   []prideUnit
	stat    PrIDEStats
}

// prideQueueCap is the per-bank FIFO depth (the papers evaluate 4-16
// entries; 8 is DAPPER's default configuration).
const prideQueueCap = 8

// prideUnit is one bank's tracker: the FIFO is a fixed ring so the hot
// path never allocates.
type prideUnit struct {
	rng    *prince.CTR
	ring   [prideQueueCap]int32
	head   int32
	n      int32
	window int64
}

// PrIDEStats counts tracker activity.
type PrIDEStats struct {
	// Enqueued is the number of sampled aggressors admitted to a queue.
	Enqueued int64
	// Serviced is the number of entries popped and refreshed.
	Serviced int64
	// Dropped counts samples lost to a full queue (PrIDE policy).
	Dropped int64
	// Replaced counts random replacements on overflow (DAPPER policy).
	Replaced int64
	// Refreshes is the number of neighbour refresh activations issued.
	Refreshes int64
}

// DefaultPrIDEProbability returns the papers' sampling rate for the
// configuration: 4 expected enqueues per tREFI window, clamped to 1.
func DefaultPrIDEProbability(cfg config.Config) float64 {
	w := int64(cfg.TREFI) / int64(cfg.TRC)
	if w < 1 {
		w = 1
	}
	p := 4 / float64(w)
	if p > 1 {
		p = 1
	}
	return p
}

// NewPrIDE creates the drop-on-overflow variant.
func NewPrIDE(sys *dram.System, p float64, seed uint64) *PrIDE {
	return newPrIDE(sys, p, seed, false)
}

// NewDAPPER creates the random-replacement variant.
func NewDAPPER(sys *dram.System, p float64, seed uint64) *PrIDE {
	return newPrIDE(sys, p, seed, true)
}

func newPrIDE(sys *dram.System, p float64, seed uint64, replace bool) *PrIDE {
	if p < 0 || p > 1 {
		panic("mitigation: PrIDE probability out of range")
	}
	cfg := sys.Config()
	trefi := int64(cfg.TREFI)
	if trefi <= 0 {
		panic("mitigation: PrIDE requires a positive tREFI")
	}
	nBanks := cfg.Channels * cfg.Ranks * cfg.Banks
	q := &PrIDE{
		sys:     sys,
		cfg:     cfg,
		p:       p,
		replace: replace,
		trefi:   trefi,
		units:   make([]prideUnit, nBanks),
	}
	seeds := prince.Seeded(seed)
	for i := range q.units {
		u := &q.units[i]
		u.rng = prince.NewCTR(seeds.Next(), seeds.Next())
		u.window = -1
	}
	return q
}

// Stats returns tracker activity counts.
func (q *PrIDE) Stats() PrIDEStats { return q.stat }

// Replaces reports whether this instance uses DAPPER's overflow policy.
func (q *PrIDE) Replaces() bool { return q.replace }

// Remap implements memctrl.Mitigation; the tracker does not move rows.
func (q *PrIDE) Remap(_ dram.BankID, row int) int { return row }

// ActivateDelay implements memctrl.Mitigation; no throttling.
func (q *PrIDE) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation; queue lookups are off the
// access critical path.
func (q *PrIDE) AccessPenalty() int64 { return 0 }

// OnEpoch implements memctrl.Mitigation: the epoch's full refresh clears
// any disturbance the queued samples were covering.
func (q *PrIDE) OnEpoch(int64) {
	for i := range q.units {
		u := &q.units[i]
		u.head = 0
		u.n = 0
		u.window = -1
	}
}

// OnActivate implements memctrl.Mitigation: at a tREFI boundary, service
// the queue head; then sample this activation into the queue with
// probability p.
func (q *PrIDE) OnActivate(id dram.BankID, _, physRow int, now int64) memctrl.ActResult {
	bi := bankIndex(q.cfg, id)
	u := &q.units[bi]
	var res memctrl.ActResult
	if w := now / q.trefi; w != u.window {
		u.window = w
		if u.n > 0 {
			victim := int(u.ring[u.head])
			u.head = (u.head + 1) % prideQueueCap
			u.n--
			n := refreshPair(q.sys, id, victim, now)
			q.stat.Serviced++
			q.stat.Refreshes += int64(n)
			q.recordRefresh(int32(bi), victim, n, now)
			res.BankBlock = victimRefreshCost(q.cfg, n)
		}
	}
	if u.rng.Float64() < q.p {
		if u.n < prideQueueCap {
			u.ring[(u.head+u.n)%prideQueueCap] = int32(physRow)
			u.n++
			q.stat.Enqueued++
		} else if q.replace {
			slot := (u.head + int32(u.rng.Intn(prideQueueCap))) % prideQueueCap
			u.ring[slot] = int32(physRow)
			q.stat.Replaced++
		} else {
			q.stat.Dropped++
		}
	}
	return res
}

// EnableParanoid attaches the shared DRAM checks plus the queue's
// structural catalog.
func (q *PrIDE) EnableParanoid(eng *invariant.Engine) {
	q.attach(eng, q.sys)
	eng.Register("pride/queue", q.CheckInvariants)
}

// CheckInvariants verifies every bank's ring indices are inside the
// fixed queue and every resident entry names a row in the bank.
func (q *PrIDE) CheckInvariants() error {
	for i := range q.units {
		u := &q.units[i]
		if u.head < 0 || u.head >= prideQueueCap {
			return invariant.Violatedf("pride/queue",
				"bank %d: head %d outside ring", i, u.head)
		}
		if u.n < 0 || u.n > prideQueueCap {
			return invariant.Violatedf("pride/queue",
				"bank %d: occupancy %d outside [0, %d]", i, u.n, prideQueueCap)
		}
		for k := int32(0); k < u.n; k++ {
			r := u.ring[(u.head+k)%prideQueueCap]
			if r < 0 || int(r) >= q.cfg.RowsPerBank {
				return invariant.Violatedf("pride/queue",
					"bank %d: queued row %d outside bank", i, r)
			}
		}
	}
	return nil
}
