package tracker

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cat"
	"repro/internal/invariant"
	"repro/internal/prince"
)

// mustCAM and mustCAT are constructor shims for tests whose parameters
// are valid by construction.
func mustCAM(capacity int, threshold int64) *CAM {
	c, err := NewCAM(capacity, threshold)
	if err != nil {
		panic(err)
	}
	return c
}

func mustCAT(spec cat.Spec, capacity int, threshold int64, seed uint64) *CAT {
	c, err := NewCAT(spec, capacity, threshold, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// both returns one instance of each implementation with identical
// parameters, for running the same scenario against both.
func both(capacity int, threshold int64) map[string]Tracker {
	spec := cat.Spec{Sets: 8, Ways: (capacity+15)/16 + 6}
	if spec.Slots() < capacity {
		spec.Ways = capacity/(2*spec.Sets) + 7
	}
	return map[string]Tracker{
		"cam": mustCAM(capacity, threshold),
		"cat": mustCAT(spec, capacity, threshold, 42),
	}
}

func TestEntriesFor(t *testing.T) {
	cases := []struct{ act, thr, want int }{
		{1360000, 800, 1700}, // the paper's sizing
		{1360000, 960, 1417},
		{1360000, 685, 1986},
		{100, 10, 10},
		{101, 10, 11},
		{5, 10, 1},
	}
	for _, c := range cases {
		if got := EntriesFor(c.act, c.thr); got != c.want {
			t.Errorf("EntriesFor(%d, %d) = %d, want %d", c.act, c.thr, got, c.want)
		}
	}
}

func TestEntriesForPanicsOnZeroThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EntriesFor(100, 0)
}

// TestMisraGriesPaperFigure3 replays the worked example from Figure 3 of
// the paper: a 3-entry tracker holding {A:6, X:3, Z:9} with spill = 2.
func TestMisraGriesPaperFigure3(t *testing.T) {
	for name, tr := range both(3, 1000) {
		t.Run(name, func(t *testing.T) {
			const a, x, z, bRow, cRow = 1, 2, 3, 4, 5
			// Build the initial state: counts A=6, X=3, Z=9, spill=2.
			// Fill the table (counts start at spill+1 = 1).
			for i := 0; i < 6; i++ {
				tr.Observe(a)
			}
			for i := 0; i < 3; i++ {
				tr.Observe(x)
			}
			for i := 0; i < 9; i++ {
				tr.Observe(z)
			}
			// Two misses on rows that won't be installed (min=3 > spill=0,1).
			tr.Observe(100)
			tr.Observe(101)
			if got := tr.Spill(); got != 2 {
				t.Fatalf("setup: spill = %d, want 2", got)
			}
			if cnt, _ := tr.Count(a); cnt != 6 {
				t.Fatalf("setup: count(A) = %d, want 6", cnt)
			}

			// Step 1: Row-A arrives (hit) -> count 6 -> 7.
			tr.Observe(a)
			if cnt, _ := tr.Count(a); cnt != 7 {
				t.Fatalf("after A: count = %d, want 7", cnt)
			}

			// Step 2: Row-B arrives (miss). min count (3) > spill (2):
			// only the spill counter increments; B is not installed.
			tr.Observe(bRow)
			if tr.Contains(bRow) {
				t.Fatal("B must not be installed while min > spill")
			}
			if got := tr.Spill(); got != 3 {
				t.Fatalf("after B: spill = %d, want 3", got)
			}

			// Step 3: Row-C arrives (miss). min count (3) == spill (3):
			// the min entry (X) is replaced by C with count spill+1 = 4.
			tr.Observe(cRow)
			if !tr.Contains(cRow) {
				t.Fatal("C must be installed when min == spill")
			}
			if tr.Contains(x) {
				t.Fatal("X (the minimum entry) must be evicted")
			}
			if cnt, _ := tr.Count(cRow); cnt != 4 {
				t.Fatalf("count(C) = %d, want spill+1 = 4", cnt)
			}
			if cnt, _ := tr.Count(z); cnt != 9 {
				t.Fatalf("count(Z) = %d, want 9 (untouched)", cnt)
			}
		})
	}
}

func TestThresholdTriggerOnExactMultiple(t *testing.T) {
	for name, tr := range both(8, 5) {
		t.Run(name, func(t *testing.T) {
			fired := 0
			for i := 1; i <= 15; i++ {
				if tr.Observe(7) {
					fired++
					if cnt, _ := tr.Count(7); cnt%5 != 0 {
						t.Fatalf("fired at count %d, not a multiple of 5", cnt)
					}
				}
			}
			if fired != 3 {
				t.Fatalf("fired %d times over 15 ACTs at T=5, want 3", fired)
			}
		})
	}
}

// TestMisraGriesGuarantee is the paper's Invariant 1: with N = ceil(W/T)
// entries, no row reaches a multiple of T true activations without the
// tracker having fired for it at or before that activation.
func TestMisraGriesGuarantee(t *testing.T) {
	const threshold = 8
	const window = 512
	capacity := EntriesFor(window, threshold)
	for name, tr := range both(capacity, threshold) {
		t.Run(name, func(t *testing.T) {
			rng := prince.Seeded(7)
			truth := map[uint64]int64{}
			fired := map[uint64]int64{} // row -> number of trigger events
			for i := 0; i < window; i++ {
				// Skewed stream: a few hot rows within a larger pool.
				var row uint64
				if rng.Intn(2) == 0 {
					row = uint64(rng.Intn(4))
				} else {
					row = uint64(4 + rng.Intn(60))
				}
				truth[row]++
				if tr.Observe(row) {
					fired[row]++
				}
				if truth[row]%threshold == 0 {
					if fired[row] < truth[row]/threshold {
						t.Fatalf("row %d reached %d true ACTs with only %d trigger(s)",
							row, truth[row], fired[row])
					}
				}
			}
		})
	}
}

// TestCountOverestimates checks the Misra-Gries bound: the estimated count
// never underestimates the true count of a tracked row.
func TestCountOverestimates(t *testing.T) {
	const threshold = 10
	const window = 400
	capacity := EntriesFor(window, threshold)
	for name, tr := range both(capacity, threshold) {
		t.Run(name, func(t *testing.T) {
			rng := prince.Seeded(99)
			truth := map[uint64]int64{}
			for i := 0; i < window; i++ {
				row := uint64(rng.Intn(50))
				truth[row]++
				tr.Observe(row)
				if est, ok := tr.Count(row); ok && est < truth[row] {
					t.Fatalf("row %d: estimate %d < true %d", row, est, truth[row])
				}
			}
		})
	}
}

func TestResetClearsState(t *testing.T) {
	for name, tr := range both(4, 3) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 20; i++ {
				tr.Observe(uint64(i % 6))
			}
			tr.Reset()
			if tr.Len() != 0 {
				t.Fatalf("Len after reset = %d", tr.Len())
			}
			if tr.Spill() != 0 {
				t.Fatalf("Spill after reset = %d", tr.Spill())
			}
			if tr.Contains(0) {
				t.Fatal("row still tracked after reset")
			}
			// Tracker must work normally after reset.
			for i := int64(1); i <= 3; i++ {
				got := tr.Observe(42)
				if want := i == 3; got != want {
					t.Fatalf("obs %d after reset: fired=%v want %v", i, got, want)
				}
			}
		})
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for name, tr := range both(8, 100) {
		t.Run(name, func(t *testing.T) {
			rng := prince.Seeded(3)
			for i := 0; i < 2000; i++ {
				tr.Observe(uint64(rng.Intn(500)))
				if tr.Len() > tr.Capacity() {
					t.Fatalf("Len %d exceeds capacity %d", tr.Len(), tr.Capacity())
				}
			}
		})
	}
}

func TestContainsMatchesCount(t *testing.T) {
	for name, tr := range both(8, 100) {
		t.Run(name, func(t *testing.T) {
			rng := prince.Seeded(5)
			for i := 0; i < 500; i++ {
				row := uint64(rng.Intn(40))
				tr.Observe(row)
				_, ok := tr.Count(row)
				if ok != tr.Contains(row) {
					t.Fatalf("Contains and Count disagree for row %d", row)
				}
			}
		})
	}
}

// TestPropertyBothImplementationsSameSpill: both implementations follow
// the same Misra-Gries counter discipline, so the spill counter — which
// depends only on the multiset of counts, not on which minimum entry gets
// replaced — must evolve identically for any stream.
func TestPropertyBothImplementationsSameSpill(t *testing.T) {
	f := func(stream []byte) bool {
		cam := mustCAM(6, 50)
		cct := mustCAT(cat.Spec{Sets: 4, Ways: 8}, 6, 50, 9)
		for _, b := range stream {
			row := uint64(b % 23)
			cam.Observe(row)
			cct.Observe(row)
			if cam.Spill() != cct.Spill() || cam.Len() != cct.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCAMDeterministicEviction: two CAM instances fed the same
// eviction-heavy stream must hold identical state — same tracked set,
// same counts, same spill. The previous map-backed implementation chose
// eviction victims by Go map iteration order, which is randomized per
// map instance, so two replays of one stream could diverge.
func TestCAMDeterministicEviction(t *testing.T) {
	a := mustCAM(8, 50)
	b := mustCAM(8, 50)
	rng := prince.Seeded(17)
	// Many ties at the minimum count: small row pool, capacity 8, so
	// evictions constantly choose among several minimum entries.
	for i := 0; i < 5000; i++ {
		row := uint64(rng.Intn(64))
		fa := a.Observe(row)
		fb := b.Observe(row)
		if fa != fb {
			t.Fatalf("obs %d row %d: trigger mismatch (%v vs %v)", i, row, fa, fb)
		}
	}
	if a.Spill() != b.Spill() || a.Len() != b.Len() {
		t.Fatalf("state diverged: spill %d/%d len %d/%d",
			a.Spill(), b.Spill(), a.Len(), b.Len())
	}
	for row := uint64(0); row < 64; row++ {
		ca, oka := a.Count(row)
		cb, okb := b.Count(row)
		if oka != okb || ca != cb {
			t.Fatalf("row %d: count (%d,%v) vs (%d,%v)", row, ca, oka, cb, okb)
		}
	}
}

// TestCAMMatchesReferenceModel drives the CAM against a brute-force
// Misra-Gries model (linear scans, lowest-install-order victim among
// minimum entries is not required — only count/spill/membership-size
// equivalence, which is victim-independent) and additionally checks the
// cached-minimum bookkeeping via the exported observers.
func TestCAMMatchesReferenceModel(t *testing.T) {
	const capacity, threshold = 6, 9
	c := mustCAM(capacity, threshold)
	model := map[uint64]int64{}
	var spill int64
	rng := prince.Seeded(23)
	for i := 0; i < 4000; i++ {
		row := uint64(rng.Intn(40))
		fired := c.Observe(row)
		if cnt, ok := model[row]; ok {
			model[row] = cnt + 1
			if want := crossedMultiple(cnt, cnt+1, threshold); fired != want {
				t.Fatalf("obs %d row %d: fired=%v want %v", i, row, fired, want)
			}
		} else if len(model) < capacity {
			model[row] = spill + 1
		} else {
			min := int64(math.MaxInt64)
			for _, v := range model {
				if v < min {
					min = v
				}
			}
			if min > spill {
				spill++
			} else {
				// Evict one minimum entry; which one is
				// implementation-defined, so mirror the CAM's choice.
				var victim uint64
				found := false
				for r, v := range model {
					if v == min && !c.Contains(r) {
						victim, found = r, true
						break
					}
				}
				if !found {
					t.Fatalf("obs %d: CAM evicted no minimum entry", i)
				}
				delete(model, victim)
				model[row] = spill + 1
			}
		}
		if c.Spill() != spill || c.Len() != len(model) {
			t.Fatalf("obs %d: spill %d want %d, len %d want %d",
				i, c.Spill(), spill, c.Len(), len(model))
		}
		for r, v := range model {
			if got, ok := c.Count(r); !ok || got != v {
				t.Fatalf("obs %d row %d: count (%d,%v) want %d", i, r, got, ok, v)
			}
		}
	}
}

func TestNewCATRejectsTooSmallGeometry(t *testing.T) {
	if _, err := NewCAT(cat.Spec{Sets: 1, Ways: 2}, 100, 10, 1); !errors.Is(err, invariant.ErrBadGeometry) {
		t.Fatalf("err = %v, want ErrBadGeometry", err)
	}
}

func TestNewCAMRejectsBadParams(t *testing.T) {
	if _, err := NewCAM(0, 10); !errors.Is(err, invariant.ErrBadGeometry) {
		t.Fatalf("capacity 0: err = %v, want ErrBadGeometry", err)
	}
	if _, err := NewCAM(4, 0); !errors.Is(err, invariant.ErrBadGeometry) {
		t.Fatalf("threshold 0: err = %v, want ErrBadGeometry", err)
	}
}

func TestPaperScaleTrackerHandlesFullEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("full-epoch tracker stress skipped in -short")
	}
	// The paper's geometry: 1700 entries, T = 800, 2x64 sets x 20 ways.
	tr := mustCAT(cat.Spec{Sets: 64, Ways: 20}, 1700, 800, 11)
	rng := prince.Seeded(1)
	swaps := 0
	// 200K activations: 100 hot rows get ~50% of traffic.
	truth := map[uint64]int64{}
	for i := 0; i < 200000; i++ {
		var row uint64
		if rng.Intn(2) == 0 {
			row = uint64(rng.Intn(100))
		} else {
			row = uint64(rng.Intn(128 << 10))
		}
		truth[row]++
		if tr.Observe(row) {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("no swaps triggered by hot rows")
	}
	// Every row with >= 800 true activations must have triggered.
	for row, cnt := range truth {
		if cnt >= 800 {
			if est, ok := tr.Count(row); !ok || est < cnt {
				t.Fatalf("hot row %d (true %d) untracked or underestimated (%d, %v)",
					row, cnt, est, ok)
			}
		}
	}
}

func BenchmarkCAMObserve(b *testing.B) {
	tr := mustCAM(1700, 800)
	rng := prince.Seeded(1)
	rows := make([]uint64, 4096)
	for i := range rows {
		rows[i] = uint64(rng.Intn(128 << 10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(rows[i%len(rows)])
	}
}

func BenchmarkCATObserve(b *testing.B) {
	tr := mustCAT(cat.Spec{Sets: 64, Ways: 20}, 1700, 800, 1)
	rng := prince.Seeded(1)
	rows := make([]uint64, 4096)
	for i := range rows {
		rows[i] = uint64(rng.Intn(128 << 10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(rows[i%len(rows)])
	}
}
