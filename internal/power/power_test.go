package power

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dram"
)

// TestTable5PaperValues checks the storage accounting against the paper:
// RIT 28-bit entries, 2x256x20 -> 35KB; tracker 22-bit entries, 2x64x20 ->
// 6.9KB; swap buffers 1KB amortized; 42.9KB per bank, ~686KB per rank.
func TestTable5PaperValues(t *testing.T) {
	cfg := config.Default()
	rows := StorageTable(cfg, PaperStorageParams())

	byName := map[string]StorageRow{}
	for _, r := range rows {
		byName[r.Structure] = r
	}

	rit := byName["RIT"]
	if rit.EntryBits != 28 {
		t.Errorf("RIT entry bits = %d, want 28", rit.EntryBits)
	}
	if rit.Entries != 2*256*20 {
		t.Errorf("RIT entries = %d", rit.Entries)
	}
	if rit.KB < 34 || rit.KB > 36 {
		t.Errorf("RIT KB = %.1f, want ~35", rit.KB)
	}

	tr := byName["Tracker"]
	if tr.EntryBits != 22 {
		t.Errorf("tracker entry bits = %d, want 22", tr.EntryBits)
	}
	if tr.KB < 6.5 || tr.KB > 7.2 {
		t.Errorf("tracker KB = %.1f, want ~6.9", tr.KB)
	}

	sw := byName["Swap-Buffers"]
	if sw.KB != 1 {
		t.Errorf("swap buffer KB = %.1f, want 1", sw.KB)
	}

	total := byName["Total"]
	if total.KB < 42 || total.KB > 44 {
		t.Errorf("total = %.1f KB per bank, want ~42.9", total.KB)
	}

	perRank := PerRankKB(cfg, PaperStorageParams())
	if perRank < 670 || perRank > 700 {
		t.Errorf("per-rank = %.0f KB, want ~686", perRank)
	}
}

// TestSRAMPowerNearPaper checks the Cacti-stand-in calibration: ~686 KB of
// structures looked up on every access lands near the paper's 903 mW.
func TestSRAMPowerNearPaper(t *testing.T) {
	cfg := config.Default()
	kb := PerRankKB(cfg, PaperStorageParams())
	// Per-rank access rate: every memory access looks up RIT (and HRT on
	// activates); order 1e8-1e9 accesses/s across 16 banks.
	mw := DefaultSRAMModel().PowerMW(kb, 4e8)
	if mw < 700 || mw > 1100 {
		t.Errorf("SRAM power = %.0f mW, paper reports 903", mw)
	}
}

func TestSRAMPowerGrowsWithSizeAndRate(t *testing.T) {
	m := DefaultSRAMModel()
	if m.PowerMW(100, 1e8) >= m.PowerMW(200, 1e8) {
		t.Error("power must grow with size")
	}
	if m.PowerMW(100, 1e8) >= m.PowerMW(100, 1e9) {
		t.Error("power must grow with access rate")
	}
}

func TestDRAMEnergyMeasure(t *testing.T) {
	cfg := config.Default()
	cfg.RowsPerBank = 1 << 10
	sys := dram.MustNew(cfg)
	id := dram.BankID{}
	for i := 0; i < 1000; i++ {
		sys.Activate(id, i%100, int64(i))
	}
	b := sys.BankState(id)
	b.StatReads = 5000
	b.StatWrites = 2000

	elapsed := int64(1e7)
	e := DefaultDRAMEnergy().Measure(sys, elapsed)
	if e.ActMJ <= 0 || e.ReadMJ <= 0 || e.WriteMJ <= 0 {
		t.Fatalf("zero event energy: %+v", e)
	}
	if e.RefreshMJ <= 0 || e.BackgroundMJ <= 0 {
		t.Fatalf("zero standing energy: %+v", e)
	}
	if e.AvgPowerMW <= 0 {
		t.Fatal("no average power")
	}
	sum := e.ActMJ + e.ReadMJ + e.WriteMJ + e.RefreshMJ + e.BackgroundMJ
	if e.TotalMJ() != sum {
		t.Fatal("TotalMJ inconsistent")
	}
}

func TestOverheadPercent(t *testing.T) {
	base := Breakdown{ActMJ: 100}
	rrs := Breakdown{ActMJ: 100.5}
	if got := OverheadPercent(base, rrs); got < 0.49 || got > 0.51 {
		t.Fatalf("overhead = %v, want 0.5", got)
	}
	if OverheadPercent(Breakdown{}, rrs) != 0 {
		t.Fatal("zero baseline must not divide by zero")
	}
}

func TestBitsHelper(t *testing.T) {
	cases := []struct{ n, want int }{
		{128 << 10, 17},
		{256, 8},
		{64, 6},
		{800, 10},
		{2, 1},
		{1, 0},
	}
	for _, c := range cases {
		if got := bits(c.n); got != c.want {
			t.Errorf("bits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestStorageScalesWithThreshold(t *testing.T) {
	cfg := config.Default()
	small := PaperStorageParams()
	big := small
	big.TrackerSets *= 4 // lower threshold needs a bigger tracker
	a := StorageTable(cfg, small)
	b := StorageTable(cfg, big)
	if b[1].KB <= a[1].KB {
		t.Fatal("bigger tracker geometry must cost more")
	}
}
