package experiments

import (
	"sync/atomic"
	"testing"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tinyScale keeps runner tests to a fraction of a second: 1/256 epochs
// on one small workload.
func tinyScale() Scale {
	w, _ := trace.ByName("bzip2")
	return Scale{Factor: 256, Epochs: 1, Seed: 3, Workloads: []trace.Workload{w}}
}

// TestRunnerReceivesSweepSpecs proves the figure sweeps route through
// Scale.Runner when set — the hook cmd/rrs-experiments --server uses to
// offload work to rrs-serve.
func TestRunnerReceivesSweepSpecs(t *testing.T) {
	s := tinyScale()
	var calls atomic.Int64
	var sawMits atomic.Value
	s.Runner = func(spec service.Spec) (sim.Result, error) {
		calls.Add(1)
		if len(spec.Workloads) != 1 || spec.Workloads[0] != "bzip2" {
			t.Errorf("spec workloads = %v", spec.Workloads)
		}
		if spec.Scale != 256 || spec.Epochs != 1 || spec.Seed != 3 {
			t.Errorf("spec knobs = scale %d epochs %d seed %d", spec.Scale, spec.Epochs, spec.Seed)
		}
		sawMits.Store(spec.Mitigation)
		opts, err := spec.Options()
		if err != nil {
			return sim.Result{}, err
		}
		return sim.Run(opts)
	}
	rows, _, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner called %d times, want 1", got)
	}
	if sawMits.Load() != service.MitRRS {
		t.Errorf("mitigation = %v, want %q", sawMits.Load(), service.MitRRS)
	}
	if len(rows) != 1 || rows[0].Workload != "bzip2" {
		t.Fatalf("rows = %+v", rows)
	}
}

// TestSpecPathMatchesLocalRun checks that a sweep point built as a
// service spec reproduces the direct sim.Options run bit-for-bit — the
// property that makes served and local sweeps interchangeable.
func TestSpecPathMatchesLocalRun(t *testing.T) {
	s := tinyScale()
	w := s.Workloads[0]

	viaSpec, err := s.runSpec(s.spec(service.MitRRS, 0, w))
	if err != nil {
		t.Fatal(err)
	}
	opts := s.options(w)
	opts.Mitigation = s.RRSFactory()
	direct, err := sim.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if viaSpec.IPC != direct.IPC || viaSpec.Instructions != direct.Instructions ||
		viaSpec.Accesses != direct.Accesses || viaSpec.Cycles != direct.Cycles ||
		viaSpec.SwapsPerEpoch != direct.SwapsPerEpoch {
		t.Errorf("spec path diverges from direct run:\nspec:   %+v\ndirect: %+v",
			viaSpec, direct)
	}
}
