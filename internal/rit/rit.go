// Package rit implements the Row Indirection Table of RRS (Section 4.3):
// a per-bank table of swapped row tuples <X,Y>, stored as two entries (one
// indexed by X returning Y, one by Y returning X) so that either row's
// access finds its current physical location in one lookup.
//
// Entries installed in the current epoch carry a lock bit and can never be
// evicted before the epoch ends (the security of RRS depends on swapped
// rows staying swapped for the remainder of their tracking window). At the
// epoch boundary all lock bits clear, and stale tuples drain lazily:
// installs beyond the tuple capacity evict a random unlocked tuple, whose
// rows are then un-swapped by the caller.
package rit

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/cat"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/prince"
)

// ErrSelfSwap reports an Install of a row with itself.
var ErrSelfSwap = errors.New("rit: cannot swap a row with itself")

// ErrOccupied reports an Install over a row that is already swapped.
var ErrOccupied = errors.New("rit: installing tuple over an existing entry")

type entry struct {
	partner uint64
	locked  bool
}

// Eviction describes the tuple Install had to evict to make room.
// Happened is false when no eviction was needed; X and Y are then zero.
type Eviction struct {
	X, Y     uint64
	Happened bool
}

// RIT is one bank's row indirection table. The mapping it maintains is an
// involution: row X maps to Y exactly when Y maps to X.
//
// RIT is not safe for concurrent use.
type RIT struct {
	tab      *cat.Table[entry]
	capacity int // in tuples (each tuple occupies two entries)
	tuples   int
	rng      *prince.CTR

	// present is an exact membership bitset over small row ids: bit row
	// is set iff row has an entry in tab. Almost every access misses the
	// RIT (a few thousand tuples against millions of rows), so the remap
	// fast path answers "not swapped" from one bit probe instead of two
	// keyed-hash set scans. Rows >= maxBitsetRows are only counted in
	// bigRows and always take the table lookup.
	present []uint64
	bigRows int

	// shadow, when non-nil, is the map-based reference model the paranoid
	// mode replays every mutation into; Remap answers are cross-checked
	// against it. The hot path pays exactly one nil test when disabled.
	shadow *shadow

	// rec, when non-nil, receives install/evict events (same one-nil-test
	// discipline as shadow); bank is the flat bank index stamped on them.
	rec     *obs.Recorder
	obsBank int32
}

// SetObs attaches an event recorder; install and eviction events are
// stamped with the recorder's clock and the given flat bank index.
func (r *RIT) SetObs(rec *obs.Recorder, bank int32) {
	r.rec = rec
	r.obsBank = bank
}

// maxBitsetRows bounds the presence bitset at 512 KiB so adversarial
// 64-bit row ids (fuzzers, tests) cannot balloon it.
const maxBitsetRows = 1 << 22

// New creates a RIT with the given CAT geometry and tuple capacity. The
// paper's configuration stores 3400 tuples (6800 entries) in 2 tables x
// 256 sets x 20 ways. The error wraps invariant.ErrBadGeometry when the
// geometry is invalid or cannot hold the requested tuples.
func New(spec cat.Spec, capacityTuples int, seed uint64) (*RIT, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("rit: %w: %v", invariant.ErrBadGeometry, err)
	}
	if capacityTuples <= 0 {
		return nil, fmt.Errorf("rit: %w: capacity %d must be positive", invariant.ErrBadGeometry, capacityTuples)
	}
	if spec.Slots() < 2*capacityTuples {
		return nil, fmt.Errorf("rit: %w: geometry %d slots cannot hold %d tuples",
			invariant.ErrBadGeometry, spec.Slots(), capacityTuples)
	}
	return &RIT{
		tab:      cat.New[entry](spec, seed),
		capacity: capacityTuples,
		rng:      prince.Seeded(seed ^ 0xA5A5A5A5),
	}, nil
}

// mightContain is the bit-probe fast path: false means row is certainly
// absent; true means the table must be consulted (and, for rows under
// the bitset bound, is in fact a guaranteed hit).
func (r *RIT) mightContain(row uint64) bool {
	if row < maxBitsetRows {
		w := row >> 6
		return w < uint64(len(r.present)) && r.present[w]&(1<<(row&63)) != 0
	}
	return r.bigRows > 0
}

func (r *RIT) addPresent(row uint64) {
	if row >= maxBitsetRows {
		r.bigRows++
		return
	}
	w := row >> 6
	if w >= uint64(len(r.present)) {
		grown := make([]uint64, 2*(w+1))
		copy(grown, r.present)
		r.present = grown
	}
	r.present[w] |= 1 << (row & 63)
}

func (r *RIT) removePresent(row uint64) {
	if row >= maxBitsetRows {
		r.bigRows--
		return
	}
	if w := row >> 6; w < uint64(len(r.present)) {
		r.present[w] &^= 1 << (row & 63)
	}
}

// Remap returns the physical row currently holding row's data: its swap
// partner if swapped, otherwise row itself.
func (r *RIT) Remap(row uint64) uint64 {
	if r.shadow != nil {
		return r.remapChecked(row)
	}
	if !r.mightContain(row) {
		return row
	}
	if e := r.tab.Lookup(row); e != nil {
		return e.partner
	}
	return row
}

// Lookup returns row's swap partner and whether row is swapped.
func (r *RIT) Lookup(row uint64) (partner uint64, ok bool) {
	if !r.mightContain(row) {
		return 0, false
	}
	if e := r.tab.Lookup(row); e != nil {
		return e.partner, true
	}
	return 0, false
}

// Contains reports whether row is part of any tuple. Rows in the RIT are
// excluded from being random swap destinations.
func (r *RIT) Contains(row uint64) bool {
	return r.mightContain(row) && r.tab.Contains(row)
}

// Tuples returns the number of installed tuples.
func (r *RIT) Tuples() int { return r.tuples }

// Capacity returns the tuple capacity.
func (r *RIT) Capacity() int { return r.capacity }

// Install records the swap <x,y> with the lock bit set. If the table is at
// capacity, a random unlocked tuple is evicted first and returned so the
// caller can un-swap its rows. ok is false without error only on a CAT
// conflict or when the table is full of locked tuples — states the paper's
// sizing argument makes (astronomically) rare; the caller then skips the
// swap. A non-nil error (ErrSelfSwap, ErrOccupied) is a caller bug.
func (r *RIT) Install(x, y uint64) (ev Eviction, ok bool, err error) {
	if x == y {
		return Eviction{}, false, fmt.Errorf("%w: row %d", ErrSelfSwap, x)
	}
	if r.tab.Contains(x) || r.tab.Contains(y) {
		return Eviction{}, false, fmt.Errorf("%w: <%d,%d>", ErrOccupied, x, y)
	}
	if r.tuples >= r.capacity {
		ex, ey, did := r.EvictRandomUnlocked()
		if !did {
			return Eviction{}, false, nil
		}
		ev = Eviction{X: ex, Y: ey, Happened: true}
	}
	if r.tab.Install(x, entry{partner: y, locked: true}) == nil {
		// CAT conflict (astronomically rare at 6 extra ways): fail the
		// install; the caller skips the swap.
		return ev, false, nil
	}
	r.addPresent(x)
	if r.tab.Install(y, entry{partner: x, locked: true}) == nil {
		r.tab.Delete(x)
		r.removePresent(x)
		return ev, false, nil
	}
	r.addPresent(y)
	r.tuples++
	if sh := r.shadow; sh != nil {
		sh.install(x, y)
	}
	if rec := r.rec; rec != nil {
		rec.RecordNow(obs.KindRITInstall, r.obsBank, x, y)
	}
	return ev, true, nil
}

// Remove deletes the tuple containing row (both entries) and returns the
// partner. ok is false if row is not swapped.
func (r *RIT) Remove(row uint64) (partner uint64, ok bool) {
	e := r.tab.Lookup(row)
	if e == nil {
		return 0, false
	}
	partner = e.partner
	r.tab.Delete(row)
	r.tab.Delete(partner)
	r.removePresent(row)
	r.removePresent(partner)
	r.tuples--
	if sh := r.shadow; sh != nil {
		sh.remove(row, partner)
	}
	return partner, true
}

// EvictRandomUnlocked removes one uniformly random unlocked tuple and
// returns its rows. ok is false when every tuple is locked (or the table
// is empty).
func (r *RIT) EvictRandomUnlocked() (x, y uint64, ok bool) {
	key, e, found := r.tab.RandomEntry(r.rng, func(_ uint64, e *entry) bool {
		return !e.locked
	})
	if !found {
		return 0, 0, false
	}
	x, y = key, e.partner
	r.tab.Delete(x)
	r.tab.Delete(y)
	r.removePresent(x)
	r.removePresent(y)
	r.tuples--
	if sh := r.shadow; sh != nil {
		sh.evict(x, y)
	}
	if rec := r.rec; rec != nil {
		rec.RecordNow(obs.KindRITEvict, r.obsBank, x, y)
	}
	return x, y, true
}

// ClearLocks unlocks every entry; called at each epoch boundary so tuples
// from finished epochs become eligible for lazy eviction.
func (r *RIT) ClearLocks() {
	r.tab.ForEach(func(_ uint64, e *entry) bool {
		e.locked = false
		return true
	})
	if sh := r.shadow; sh != nil {
		sh.clearLocks()
	}
}

// LockedTuples counts tuples installed in the current epoch.
func (r *RIT) LockedTuples() int {
	locked := 0
	r.tab.ForEach(func(_ uint64, e *entry) bool {
		if e.locked {
			locked++
		}
		return true
	})
	return locked / 2
}

// ForEachTuple visits each tuple once (with x < y order normalized).
func (r *RIT) ForEachTuple(fn func(x, y uint64, locked bool) bool) {
	r.tab.ForEach(func(k uint64, e *entry) bool {
		if k < e.partner {
			return fn(k, e.partner, e.locked)
		}
		return true
	})
}

// CheckInvariants verifies the structural invariants of the table and
// returns a typed *invariant.Violation describing the first breach:
//
//   - rit/involution: every entry X -> Y has a reverse entry Y -> X.
//   - rit/locks: both entries of a tuple carry the same lock bit.
//   - rit/count: entry count equals 2x the tuple counter, which never
//     exceeds capacity.
//   - rit/presence: the fast-path bitset (and bigRows counter) agree
//     exactly with table membership.
//
// Cost is O(entries + bitset words); the paranoid engine runs it on a
// cadence and tests call it after mutation sequences.
func (r *RIT) CheckInvariants() error {
	var verr error
	count := 0
	bigSeen := 0
	r.tab.ForEach(func(k uint64, e *entry) bool {
		count++
		if k >= maxBitsetRows {
			bigSeen++
		} else if w := k >> 6; w >= uint64(len(r.present)) || r.present[w]&(1<<(k&63)) == 0 {
			verr = invariant.Violatedf("rit/presence", "row %d is in the table but its presence bit is clear", k)
			return false
		}
		back := r.tab.Lookup(e.partner)
		if back == nil {
			verr = invariant.Violatedf("rit/involution", "entry %d -> %d has no reverse entry", k, e.partner)
			return false
		}
		if back.partner != k {
			verr = invariant.Violatedf("rit/involution", "entry %d -> %d reversed to %d", k, e.partner, back.partner)
			return false
		}
		if back.locked != e.locked {
			verr = invariant.Violatedf("rit/locks", "tuple <%d,%d> has mismatched lock bits", k, e.partner)
			return false
		}
		return true
	})
	if verr != nil {
		return verr
	}
	if count != 2*r.tuples {
		return invariant.Violatedf("rit/count", "%d entries but tuple counter says %d", count, r.tuples)
	}
	if r.tuples > r.capacity {
		return invariant.Violatedf("rit/count", "%d tuples exceed capacity %d", r.tuples, r.capacity)
	}
	if bigSeen != r.bigRows {
		return invariant.Violatedf("rit/presence", "bigRows counter %d, actual large-id entries %d", r.bigRows, bigSeen)
	}
	for w, word := range r.present {
		for word != 0 {
			row := uint64(w)<<6 | uint64(bits.TrailingZeros64(word))
			if !r.tab.Contains(row) {
				return invariant.Violatedf("rit/presence", "presence bit set for row %d, which is not in the table", row)
			}
			word &= word - 1
		}
	}
	return nil
}

// --- Shadow reference model (paranoid mode) ---

// shadow is the map-based reference RIT of the differential oracle: a
// plain pairs map mirrored through every mutation, against which each
// Remap answer is cross-checked. Divergence is reported to the engine at
// the first mismatch, naming the row and both answers.
type shadow struct {
	eng    *invariant.Engine
	pairs  map[uint64]uint64
	locked map[uint64]bool
	checks int64
}

// EnableShadow attaches the reference model, seeded from the current
// table contents, and registers its per-remap check tally with eng.
// Violations the shadow detects are latched into eng.
func (r *RIT) EnableShadow(eng *invariant.Engine) {
	sh := &shadow{
		eng:    eng,
		pairs:  make(map[uint64]uint64),
		locked: make(map[uint64]bool),
	}
	r.tab.ForEach(func(k uint64, e *entry) bool {
		sh.pairs[k] = e.partner
		sh.locked[k] = e.locked
		return true
	})
	r.shadow = sh
	eng.RegisterCounter("rit/shadow", func() int64 { return sh.checks })
}

func (sh *shadow) install(x, y uint64) {
	sh.pairs[x], sh.pairs[y] = y, x
	sh.locked[x], sh.locked[y] = true, true
}

func (sh *shadow) remove(row, partner uint64) {
	if p, ok := sh.pairs[row]; !ok || p != partner {
		sh.eng.Report(invariant.Violatedf("rit/shadow",
			"Remove(%d) deleted partner %d; reference model has %d (present=%v)", row, partner, p, ok))
	}
	delete(sh.pairs, row)
	delete(sh.pairs, partner)
	delete(sh.locked, row)
	delete(sh.locked, partner)
}

func (sh *shadow) evict(x, y uint64) {
	if sh.locked[x] || sh.locked[y] {
		sh.eng.Report(invariant.Violatedf("rit/shadow",
			"evicted tuple <%d,%d> is locked in the reference model", x, y))
	}
	sh.remove(x, y)
}

func (sh *shadow) clearLocks() {
	for k := range sh.locked {
		sh.locked[k] = false
	}
}

// remapChecked answers Remap through the real lookup path and cross-checks
// the answer against the reference model.
func (r *RIT) remapChecked(row uint64) uint64 {
	got := row
	if r.mightContain(row) {
		if e := r.tab.Lookup(row); e != nil {
			got = e.partner
		}
	}
	sh := r.shadow
	sh.checks++
	want := row
	if p, ok := sh.pairs[row]; ok {
		want = p
	}
	if got != want {
		sh.eng.Report(invariant.Violatedf("rit/shadow",
			"Remap(%d) = %d, reference model says %d", row, got, want))
	}
	return got
}

// VerifyShadow sweeps the reference model against the table: every
// reference pair must be stored with a matching lock bit, and the entry
// counts must agree. It returns nil when no shadow is attached.
func (r *RIT) VerifyShadow() error {
	sh := r.shadow
	if sh == nil {
		return nil
	}
	for k, want := range sh.pairs {
		e := r.tab.Lookup(k)
		if e == nil {
			return invariant.Violatedf("rit/shadow", "reference pair %d -> %d missing from the table", k, want)
		}
		if e.partner != want {
			return invariant.Violatedf("rit/shadow", "table maps %d -> %d, reference model says %d", k, e.partner, want)
		}
		if e.locked != sh.locked[k] {
			return invariant.Violatedf("rit/shadow", "lock bit of %d is %v in the table, %v in the reference model", k, e.locked, sh.locked[k])
		}
	}
	if got := 2 * r.tuples; got != len(sh.pairs) {
		return invariant.Violatedf("rit/shadow", "table holds %d entries, reference model %d", got, len(sh.pairs))
	}
	return nil
}

// --- Test-only state corruption hooks ---
//
// The fault-injection suite flips bits in the RIT's redundant state
// through these narrow mutators to prove CheckInvariants/VerifyShadow
// detect every corruption class. Never call them from production code.

// CorruptPartnerForTest rewrites row's stored partner pointer (one
// direction only, breaking the involution), reporting whether row was
// present.
func (r *RIT) CorruptPartnerForTest(row, newPartner uint64) bool {
	e := r.tab.Lookup(row)
	if e == nil {
		return false
	}
	e.partner = newPartner
	return true
}

// CorruptLockForTest flips row's lock bit (one direction only, breaking
// lock parity), reporting whether row was present.
func (r *RIT) CorruptLockForTest(row uint64) bool {
	e := r.tab.Lookup(row)
	if e == nil {
		return false
	}
	e.locked = !e.locked
	return true
}

// CorruptTuplesForTest skews the tuple counter.
func (r *RIT) CorruptTuplesForTest(delta int) { r.tuples += delta }

// CorruptPresenceForTest flips row's presence bit (growing the bitset if
// needed). It only handles rows under the bitset bound.
func (r *RIT) CorruptPresenceForTest(row uint64) {
	if row >= maxBitsetRows {
		return
	}
	w := row >> 6
	if w >= uint64(len(r.present)) {
		grown := make([]uint64, 2*(w+1))
		copy(grown, r.present)
		r.present = grown
	}
	r.present[w] ^= 1 << (row & 63)
}

// CorruptBigRowsForTest skews the large-id entry counter.
func (r *RIT) CorruptBigRowsForTest(delta int) { r.bigRows += delta }
