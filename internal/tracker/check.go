package tracker

import (
	"math"

	"repro/internal/invariant"
)

// SelfChecker is implemented by trackers that can verify their own
// structural invariants (both CAM and CAT do). The paranoid engine
// type-asserts Tracker values against it.
type SelfChecker interface {
	CheckInvariants() error
}

var (
	_ SelfChecker = (*CAM)(nil)
	_ SelfChecker = (*CAT)(nil)
)

// CheckInvariants verifies the CAT tracker's redundant state against the
// table and returns a typed *invariant.Violation for the first breach:
//
//   - tracker/setmin: every SetMin counter equals the exact minimum of
//     its set (MaxInt64 when empty), and the cached global minimum
//     agrees when its dirty flag is clear.
//   - tracker/relocs: the memoized relocation counter matches the table's.
//   - tracker/presence: the fast-path bitset (and bigRows counter) agree
//     exactly with table membership.
//   - tracker/spill: no tracked count is below the spill counter (the
//     Misra-Gries lower bound: estimates start at spill+1 and the spill
//     counter only advances past the minimum).
//   - tracker/count: entry count within capacity.
//
// It also runs the underlying cat.Table's own structural checks, so a
// paranoid run covers CAT occupancy/placement/memo through the tracker.
func (t *CAT) CheckInvariants() error {
	if err := t.tab.CheckInvariants(); err != nil {
		return err
	}
	gmin := int64(math.MaxInt64)
	for ti := 0; ti < 2; ti++ {
		for s := range t.setMin[ti] {
			min := int64(math.MaxInt64)
			t.tab.ForEachInSet(ti, s, func(_ uint64, v *int64) bool {
				if *v < min {
					min = *v
				}
				return true
			})
			if t.setMin[ti][s] != min {
				return invariant.Violatedf("tracker/setmin",
					"SetMin[%d][%d] = %d, exact set minimum is %d", ti, s, t.setMin[ti][s], min)
			}
			if min < gmin {
				gmin = min
			}
		}
	}
	if !t.gminDirty && t.gmin != gmin {
		return invariant.Violatedf("tracker/setmin",
			"cached global minimum %d marked clean, exact minimum is %d", t.gmin, gmin)
	}
	if t.relocs != t.tab.Relocations() {
		return invariant.Violatedf("tracker/relocs",
			"memoized relocation counter %d, table reports %d", t.relocs, t.tab.Relocations())
	}
	if t.tab.Len() > 0 && gmin < t.spill {
		return invariant.Violatedf("tracker/spill",
			"minimum tracked count %d is below the spill counter %d", gmin, t.spill)
	}
	if t.tab.Len() > t.capacity {
		return invariant.Violatedf("tracker/count",
			"%d entries exceed capacity %d", t.tab.Len(), t.capacity)
	}
	bigSeen := 0
	var verr error
	t.tab.ForEach(func(k uint64, _ *int64) bool {
		if k >= maxBitsetRows {
			bigSeen++
			return true
		}
		if w := k >> 6; w >= uint64(len(t.present)) || t.present[w]&(1<<(k&63)) == 0 {
			verr = invariant.Violatedf("tracker/presence",
				"row %d is tracked but its presence bit is clear", k)
			return false
		}
		return true
	})
	if verr != nil {
		return verr
	}
	if bigSeen != t.bigRows {
		return invariant.Violatedf("tracker/presence",
			"bigRows counter %d, actual large-id entries %d", t.bigRows, bigSeen)
	}
	set := 0
	for _, w := range t.present {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	if set+bigSeen != t.tab.Len() {
		return invariant.Violatedf("tracker/presence",
			"%d presence bits + %d large ids, but table holds %d entries", set, bigSeen, t.tab.Len())
	}
	return nil
}

// CheckInvariants verifies the CAM tracker's redundant state and returns
// a typed *invariant.Violation for the first breach:
//
//   - tracker/index: every live slot is reachable through the
//     open-addressed index, no row appears twice, and the index holds
//     exactly size live pointers (none to dead slots or stale rows).
//   - tracker/min: the cached minimum value and its population count
//     match an exact scan of the live counters.
//   - tracker/spill: no live count is below the spill counter.
//   - tracker/count: size within capacity.
func (c *CAM) CheckInvariants() error {
	if c.size < 0 || c.size > c.capacity {
		return invariant.Violatedf("tracker/count",
			"size %d outside [0, %d]", c.size, c.capacity)
	}
	seen := make(map[uint64]int, c.size)
	for s := 0; s < c.size; s++ {
		row := c.rows[s]
		if prev, dup := seen[row]; dup {
			return invariant.Violatedf("tracker/index",
				"row %d stored in slots %d and %d", row, prev, s)
		}
		seen[row] = s
		if got := c.lookup(row); got != s {
			return invariant.Violatedf("tracker/index",
				"slot %d holds row %d but the index resolves it to slot %d", s, row, got)
		}
	}
	live := 0
	for _, s := range c.idx {
		if s == 0 {
			continue
		}
		live++
		if int(s-1) >= c.size {
			return invariant.Violatedf("tracker/index",
				"index points at dead slot %d (size %d)", s-1, c.size)
		}
	}
	if live != c.size {
		return invariant.Violatedf("tracker/index",
			"index holds %d pointers for %d live slots", live, c.size)
	}
	if c.size > 0 {
		min := c.cnts[0]
		n := 1
		for i := 1; i < c.size; i++ {
			switch v := c.cnts[i]; {
			case v < min:
				min, n = v, 1
			case v == min:
				n++
			}
		}
		if c.minVal != min || c.minCount != n {
			return invariant.Violatedf("tracker/min",
				"cached minimum %d (x%d), exact scan gives %d (x%d)", c.minVal, c.minCount, min, n)
		}
		if min < c.spill {
			return invariant.Violatedf("tracker/spill",
				"minimum tracked count %d is below the spill counter %d", min, c.spill)
		}
	}
	return nil
}

// --- Test-only state corruption hooks ---
//
// Narrow mutators for the fault-injection suite; never called by
// production code.

// CorruptCountForTest adds delta to row's counter without maintaining the
// SetMin counters, reporting whether row is tracked.
func (t *CAT) CorruptCountForTest(row uint64, delta int64) bool {
	p := t.tab.Lookup(row)
	if p == nil {
		return false
	}
	*p += delta
	return true
}

// CorruptSetMinForTest skews one SetMin counter.
func (t *CAT) CorruptSetMinForTest(ti, s int, delta int64) { t.setMin[ti][s] += delta }

// CorruptGminForTest overwrites the cached global minimum and clears its
// dirty flag, so the staleness is invisible to the hot path.
func (t *CAT) CorruptGminForTest(v int64) {
	t.gmin = v
	t.gminDirty = false
}

// CorruptRelocsForTest skews the memoized relocation counter.
func (t *CAT) CorruptRelocsForTest(delta int) { t.relocs += delta }

// CorruptSpillForTest skews the spill counter.
func (t *CAT) CorruptSpillForTest(delta int64) { t.spill += delta }

// CorruptPresenceForTest flips row's presence bit (rows under the bitset
// bound only).
func (t *CAT) CorruptPresenceForTest(row uint64) {
	if row >= maxBitsetRows {
		return
	}
	w := row >> 6
	if w >= uint64(len(t.present)) {
		grown := make([]uint64, 2*(w+1))
		copy(grown, t.present)
		t.present = grown
	}
	t.present[w] ^= 1 << (row & 63)
}

// CorruptBigRowsForTest skews the large-id entry counter.
func (t *CAT) CorruptBigRowsForTest(delta int) { t.bigRows += delta }

// TableForTest exposes the underlying CAT so the fault-injection suite
// can corrupt table-level state (memo, invalid-way counters) through a
// realistic owner.
func (t *CAT) TableForTest() interface {
	CorruptMemoForTest(key uint64, s0, s1 int32) bool
	CorruptInvalidCountForTest(ti, s, delta int)
	CorruptSizeForTest(delta int)
	CorruptKeyForTest(oldKey, newKey uint64) bool
	DropEntryForTest(key uint64) bool
} {
	return t.tab
}

// CorruptCountForTest adds delta to row's counter without maintaining the
// cached minimum, reporting whether row is tracked.
func (c *CAM) CorruptCountForTest(row uint64, delta int64) bool {
	s := c.lookup(row)
	if s < 0 {
		return false
	}
	c.cnts[s] += delta
	return true
}

// CorruptEvictionLogForTest makes the eviction log report row as the
// victim of every subsequent eviction regardless of the entry actually
// displaced, for fault-injection tests of the differential oracle's
// eviction protocol.
func (c *CAM) CorruptEvictionLogForTest(row uint64) {
	c.evictLie = true
	c.evictLieRow = row
}

// CorruptRowForTest rewrites the row id stored in oldRow's slot without
// fixing the index, reporting whether oldRow was tracked.
func (c *CAM) CorruptRowForTest(oldRow, newRow uint64) bool {
	s := c.lookup(oldRow)
	if s < 0 {
		return false
	}
	c.rows[s] = newRow
	return true
}

// CorruptMinValForTest skews the cached minimum value.
func (c *CAM) CorruptMinValForTest(delta int64) { c.minVal += delta }

// CorruptMinCountForTest skews the cached minimum population count.
func (c *CAM) CorruptMinCountForTest(delta int) { c.minCount += delta }

// CorruptSpillForTest skews the spill counter.
func (c *CAM) CorruptSpillForTest(delta int64) { c.spill += delta }
