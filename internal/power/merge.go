package power

import "repro/internal/config"

// MergeShards combines per-shard DRAM energy breakdowns into a breakdown
// for the whole system. Event energies (activate, read, write) come from
// counters each shard owns exclusively, so they sum. Refresh and
// background energy are functions of topology and elapsed time, which
// every single-rank shard undercounts by the rank fan-out, so both are
// recomputed from the full configuration and the merged elapsed cycles
// instead of summed.
func (e DRAMEnergy) MergeShards(parts []Breakdown, cfg config.Config, elapsedCycles int64) Breakdown {
	var b Breakdown
	for _, p := range parts {
		b.ActMJ += p.ActMJ
		b.ReadMJ += p.ReadMJ
		b.WriteMJ += p.WriteMJ
	}
	seconds := float64(elapsedCycles) / (config.BusGHz * 1e9)
	refreshes := float64(elapsedCycles/int64(cfg.TREFI)) * float64(cfg.Channels*cfg.Ranks)
	b.RefreshMJ = refreshes * e.RefreshNJ * 1e-6
	b.BackgroundMJ = e.BackgroundMW * seconds * float64(cfg.Channels*cfg.Ranks)
	if seconds > 0 {
		b.AvgPowerMW = b.TotalMJ() / seconds
	}
	return b
}
