package experiments

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/service"
)

// TestJugglingDistinguishesSRSFromRRS is the regression the SRS paper
// demands (mirrors TestTable7DefenseMatrix): the occupant-chasing attack
// produces bit flips against RRS's logical-row tracker but is bounded by
// SRS's physical-slot tracker. It also pins that classic double-sided
// stays mitigated by both, so SRS's fix costs nothing on the original
// threat model.
func TestJugglingDistinguishesSRSFromRRS(t *testing.T) {
	res, _, err := runShootoutAttack(service.MitRRS, "juggling", false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Defended() {
		t.Error("juggling must produce flips against RRS (logical-row tracking)")
	}
	res, _, err = runShootoutAttack(service.MitSRS, "juggling", true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Defended() {
		t.Errorf("SRS must bound the juggling attack, got %d flips", res.Flips)
	}
	for _, mit := range []string{service.MitRRS, service.MitSRS} {
		res, _, err := runShootoutAttack(mit, "double-sided", false)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Defended() {
			t.Errorf("%s must stop double-sided, got %d flips", mit, res.Flips)
		}
	}
}

// TestZooDoubleSidedAtDesignThreshold asserts each successor defense
// drives bit flips to zero under classic double-sided hammering at its
// design threshold. The deterministic defenses (SRS) hold at the attack
// scale's TRH; the sampling defenses (Rubix, MINT, PrIDE, DAPPER) are
// probabilistic, so their design threshold leaves several mitigation
// opportunities inside one flip budget — MINT's budget must span multiple
// tREFI windows, which the attack scale's TRH is too small for.
func TestZooDoubleSidedAtDesignThreshold(t *testing.T) {
	cases := []struct {
		mit string
		trh int
	}{
		{service.MitSRS, 0},   // attack-scale default (240)
		{service.MitRubix, 0}, // PARA-grade refresh at scaled p
		{service.MitPrIDE, 0}, // 4 samples/window vs 528 flip budget
		{service.MitDAPPER, 0},
		{service.MitMINT, 960}, // flip budget 2112 ≈ 12 tREFI windows
	}
	for _, c := range cases {
		t.Run(c.mit, func(t *testing.T) {
			cfg := attackScaleConfig()
			if c.trh > 0 {
				cfg.RowHammerThreshold = c.trh
			}
			ctl, fm := attack.NewSystem(cfg, 0, attack.Alpha2For(cfg), attackFactoryFor(c.mit))
			res := attack.Run(ctl, fm, attack.NewDoubleSided(100), attack.Options{Epochs: 3})
			if !res.Defended() {
				t.Errorf("%s: %d flips under double-sided at design threshold",
					c.mit, res.Flips)
			}
		})
	}
}

// TestShootoutQuickScale runs the full zoo through the shootout at quick
// scale under paranoid mode: the acceptance gate for the cross-defense
// subsystem — one combined table, >= 8 mitigations, perf + security +
// SRAM columns, every defense clean under the invariant engine.
func TestShootoutQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo shootout in -short mode")
	}
	rows, tab, err := Shootout(quickScale("hmmer"), nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("%d mitigations in the shootout, want >= 8", len(rows))
	}
	byName := map[string]ShootoutRow{}
	for _, r := range rows {
		byName[r.Mitigation] = r
		if r.NormPerf <= 0 || r.NormPerf > 1.2 {
			t.Errorf("%s: normalized perf %v out of range", r.Mitigation, r.NormPerf)
		}
		if len(r.Flips) != len(shootoutAttacks) {
			t.Errorf("%s: %d attack cells", r.Mitigation, len(r.Flips))
		}
	}
	// The headline security results: RRS falls to juggling, SRS does not;
	// the victim-focused trackers fall to Half-Double.
	if byName[service.MitRRS].Flips["juggling"] == 0 {
		t.Error("RRS must show juggling flips in the shootout")
	}
	if byName[service.MitSRS].Flips["juggling"] != 0 {
		t.Error("SRS must survive juggling in the shootout")
	}
	if byName[service.MitGraphene].Flips["half-double"] == 0 {
		t.Error("Graphene must fall to Half-Double in the shootout")
	}
	// SRS's unified structure must undercut RRS's three structures.
	if byName[service.MitSRS].SRAMKBPerBank >= byName[service.MitRRS].SRAMKBPerBank {
		t.Errorf("SRS SRAM (%v KB) not below RRS (%v KB)",
			byName[service.MitSRS].SRAMKBPerBank, byName[service.MitRRS].SRAMKBPerBank)
	}
	out := tab.String()
	for _, want := range []string{"Norm. perf", "Juggling", "SRAM KB/bank",
		"Near-misses", "mitigated", "BIT FLIPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("shootout table missing %q:\n%s", want, out)
		}
	}
}

// TestShootoutRejectsUnknownMitigation pins the -mitigations flag's error
// path: a typo fails fast, before any simulation runs.
func TestShootoutRejectsUnknownMitigation(t *testing.T) {
	_, _, err := Shootout(quickScale("hmmer"), []string{"rsr"}, false)
	if err == nil {
		t.Fatal("unknown mitigation accepted")
	}
}

func TestSRAMModelOrdering(t *testing.T) {
	// The analytic storage model must reproduce the zoo's cost hierarchy:
	// per-row counters > RRS's three structures > SRS's unified table >
	// Graphene's CAM > the minimalist trackers > stateless PARA.
	ideal := sramKBPerBank(service.MitIdeal)
	rrs := sramKBPerBank(service.MitRRS)
	srs := sramKBPerBank(service.MitSRS)
	graphene := sramKBPerBank(service.MitGraphene)
	mint := sramKBPerBank(service.MitMINT)
	pride := sramKBPerBank(service.MitPrIDE)
	para := sramKBPerBank(service.MitPARA)
	if !(ideal > rrs && rrs > srs && srs > graphene && graphene > pride &&
		pride > mint && mint > para) {
		t.Errorf("cost hierarchy violated: ideal=%v rrs=%v srs=%v graphene=%v pride=%v mint=%v para=%v",
			ideal, rrs, srs, graphene, pride, mint, para)
	}
	if para != 0 {
		t.Errorf("PARA SRAM = %v, want 0", para)
	}
}
