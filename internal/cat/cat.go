// Package cat implements the Collision Avoidance Table (CAT) from the RRS
// paper (Section 6): a two-table skewed-associative structure, indexed by
// two independent keyed hashes, with over-provisioned ways so that installs
// (almost) always find an invalid way in one of the two candidate sets.
//
// CAT is the storage substrate for both the scalable Misra-Gries tracker
// (HRT) and the Row Indirection Table (RIT). It offers set-associative
// lookup latency with conflict-free storage for a bounded number of items,
// avoiding the CAM used by Graphene's original tracker.
//
// The structure is inspired by MIRAGE (USENIX Security 2021): installs pick
// the candidate set with more invalid ways (power-of-two-choices load
// balancing), and if ever both sets are full a one-level cuckoo relocation
// is attempted, mirroring MIRAGE-Lite.
package cat

import (
	"fmt"

	"repro/internal/prince"
)

// Spec describes a CAT geometry. The paper's RIT uses 2 tables x 256 sets
// x 20 ways; the tracker uses 2 tables x 64 sets x 20 ways, in both cases
// 14 demand ways and 6 extra ways.
type Spec struct {
	// Sets is the number of sets per table (the structure has 2 tables).
	Sets int
	// Ways is the total ways per set (demand + extra).
	Ways int
}

// Slots returns the total number of storage slots.
func (s Spec) Slots() int { return 2 * s.Sets * s.Ways }

// Validate reports an invalid geometry.
func (s Spec) Validate() error {
	if s.Sets <= 0 || s.Ways <= 0 {
		return fmt.Errorf("cat: invalid geometry %d sets x %d ways", s.Sets, s.Ways)
	}
	return nil
}

type slot[V any] struct {
	key   uint64
	val   V
	valid bool
}

// idxCacheBits sizes the per-table set-index memo (2^bits entries,
// 16 bytes each, 128 KiB). Keys are in-bank row ids, so the memo is
// indexed by the key's low bits: for banks with up to 2^idxCacheBits
// rows every key gets its own slot and the memo is collision-free;
// larger banks alias 2^(bits) apart, which row locality makes rare.
const idxCacheBits = 13

// setPair memoizes the two candidate set indices of one key. s0 == -1
// marks an empty entry (valid indices are non-negative).
type setPair struct {
	key    uint64
	s0, s1 int32
}

// Table is a CAT holding values of type V keyed by 64-bit keys (row ids).
// The zero value is not usable; construct with New.
//
// Table is not safe for concurrent use.
type Table[V any] struct {
	spec    Spec
	slots   [2][]slot[V] // per table, sets*ways slots, set-major
	invalid [2][]int     // per table, per set: count of invalid ways
	hash    [2]*prince.Hash64
	size    int
	// idxCache is a direct-mapped memo of setIndex results. Set indices
	// are a pure function of the key and the boot-time hash keys, so the
	// memo never needs invalidation (Clear keeps the hash keys) and is
	// exactness-preserving; it exists because the two PRINCE evaluations
	// dominate the lookup cost and row accesses are heavily repetitive.
	idxCache []setPair
	// conflicts counts installs that found both candidate sets full
	// (before cuckoo relocation).
	conflicts int
	// relocations counts successful cuckoo moves.
	relocations int
}

// New creates an empty CAT with the given geometry. The two set-index
// hashes are keyed low-latency ciphers derived from seed, so different
// seeds give independent skews.
func New[V any](spec Spec, seed uint64) *Table[V] {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	t := &Table[V]{spec: spec}
	for i := 0; i < 2; i++ {
		t.slots[i] = make([]slot[V], spec.Sets*spec.Ways)
		t.invalid[i] = make([]int, spec.Sets)
		for s := range t.invalid[i] {
			t.invalid[i][s] = spec.Ways
		}
	}
	// Two independent keys derived from the seed.
	kg := prince.Seeded(seed)
	t.hash[0] = prince.NewHash64(kg.Next(), kg.Next())
	t.hash[1] = prince.NewHash64(kg.Next(), kg.Next())
	t.idxCache = make([]setPair, 1<<idxCacheBits)
	for i := range t.idxCache {
		t.idxCache[i].s0 = -1
	}
	return t
}

// Spec returns the geometry.
func (t *Table[V]) Spec() Spec { return t.spec }

// Len returns the number of valid entries.
func (t *Table[V]) Len() int { return t.size }

// Conflicts returns how many installs found both candidate sets full.
func (t *Table[V]) Conflicts() int { return t.conflicts }

// Relocations returns how many installs were saved by cuckoo relocation.
func (t *Table[V]) Relocations() int { return t.relocations }

// setIndex returns the candidate set for key in table ti.
func (t *Table[V]) setIndex(ti int, key uint64) int {
	return int(t.hash[ti].Sum(key) % uint64(t.spec.Sets))
}

// setsOf returns both candidate set indices through the memo cache.
func (t *Table[V]) setsOf(key uint64) (int, int) {
	e := &t.idxCache[key&(1<<idxCacheBits-1)]
	if e.s0 >= 0 && e.key == key {
		return int(e.s0), int(e.s1)
	}
	s0 := int(t.hash[0].Sum(key) % uint64(t.spec.Sets))
	s1 := int(t.hash[1].Sum(key) % uint64(t.spec.Sets))
	*e = setPair{key: key, s0: int32(s0), s1: int32(s1)}
	return s0, s1
}

// setSlots returns the slot slice for set s of table ti.
func (t *Table[V]) setSlots(ti, s int) []slot[V] {
	w := t.spec.Ways
	return t.slots[ti][s*w : (s+1)*w]
}

// Lookup returns a pointer to the value stored for key, or nil if absent.
// The pointer stays valid until the entry is deleted or relocated; callers
// must not retain it across Install or Delete calls.
func (t *Table[V]) Lookup(key uint64) *V {
	_, _, v := t.LookupPos(key)
	return v
}

// LookupPos is Lookup returning also the table index and set that hold
// the entry, so callers maintaining per-set metadata (the tracker's
// SetMin counters) can update exactly the affected set. val is nil when
// key is absent; ti and s are then meaningless.
func (t *Table[V]) LookupPos(key uint64) (ti, s int, val *V) {
	s0, s1 := t.setsOf(key)
	ss := t.setSlots(0, s0)
	for i := range ss {
		if ss[i].valid && ss[i].key == key {
			return 0, s0, &ss[i].val
		}
	}
	ss = t.setSlots(1, s1)
	for i := range ss {
		if ss[i].valid && ss[i].key == key {
			return 1, s1, &ss[i].val
		}
	}
	return 0, 0, nil
}

// Contains reports whether key is present.
func (t *Table[V]) Contains(key uint64) bool { return t.Lookup(key) != nil }

// Install inserts key with value val and returns a pointer to the stored
// value. It returns nil if both candidate sets are full and cuckoo
// relocation cannot free a way (a CAT conflict — with 6 extra ways the
// paper shows this takes ~1e30 installs). Installing a key that is already
// present is a caller bug and panics.
func (t *Table[V]) Install(key uint64, val V) *V {
	_, _, vp := t.InstallPos(key, val)
	return vp
}

// InstallPos is Install returning also the table index and set the entry
// landed in (meaningless when val is nil, i.e. on a CAT conflict).
func (t *Table[V]) InstallPos(key uint64, val V) (ti, s int, vp *V) {
	if t.Lookup(key) != nil {
		panic(fmt.Sprintf("cat: duplicate install of key %#x", key))
	}
	s0, s1 := t.setsOf(key)
	inv0, inv1 := t.invalid[0][s0], t.invalid[1][s1]
	// Power-of-two-choices: prefer the set with more invalid ways.
	ti, s = 0, s0
	if inv1 > inv0 {
		ti, s = 1, s1
	}
	if t.invalid[ti][s] == 0 {
		t.conflicts++
		if !t.relocate(s0, s1) {
			return 0, 0, nil
		}
		t.relocations++
		// After relocation at least one candidate set has a free way.
		ti, s = 0, s0
		if t.invalid[1][s1] > t.invalid[0][s0] {
			ti, s = 1, s1
		}
	}
	ss := t.setSlots(ti, s)
	for i := range ss {
		if !ss[i].valid {
			ss[i] = slot[V]{key: key, val: val, valid: true}
			t.invalid[ti][s]--
			t.size++
			return ti, s, &ss[i].val
		}
	}
	panic("cat: invalid-way accounting corrupted")
}

// relocate attempts a one-level cuckoo move: find any entry in either
// candidate set whose alternate set (in the other table) has an invalid
// way, and move it there. Reports whether a way was freed.
func (t *Table[V]) relocate(s0, s1 int) bool {
	for ti, s := range [2]int{s0, s1} {
		ss := t.setSlots(ti, s)
		alt := 1 - ti
		for i := range ss {
			if !ss[i].valid {
				continue
			}
			as := t.setIndex(alt, ss[i].key)
			if t.invalid[alt][as] == 0 {
				continue
			}
			dst := t.setSlots(alt, as)
			for j := range dst {
				if !dst[j].valid {
					dst[j] = ss[i]
					t.invalid[alt][as]--
					ss[i].valid = false
					t.invalid[ti][s]++
					return true
				}
			}
		}
	}
	return false
}

// Delete removes key and reports whether it was present.
func (t *Table[V]) Delete(key uint64) bool {
	_, _, ok := t.DeletePos(key)
	return ok
}

// DeletePos is Delete returning also the table index and set the entry
// was removed from (meaningless when ok is false).
func (t *Table[V]) DeletePos(key uint64) (ti, s int, ok bool) {
	s0, s1 := t.setsOf(key)
	for ti, s := range [2]int{s0, s1} {
		ss := t.setSlots(ti, s)
		for i := range ss {
			if ss[i].valid && ss[i].key == key {
				var zero slot[V]
				ss[i] = zero
				t.invalid[ti][s]++
				t.size--
				return ti, s, true
			}
		}
	}
	return 0, 0, false
}

// ForEach calls fn for every valid entry until fn returns false. The value
// pointer may be mutated in place; keys must not be changed.
func (t *Table[V]) ForEach(fn func(key uint64, val *V) bool) {
	for ti := 0; ti < 2; ti++ {
		for i := range t.slots[ti] {
			if t.slots[ti][i].valid {
				if !fn(t.slots[ti][i].key, &t.slots[ti][i].val) {
					return
				}
			}
		}
	}
}

// RandomEntry returns a uniformly random valid entry satisfying pred
// (pred == nil accepts all). It returns ok == false if no entry qualifies.
// Selection first tries random probing, then falls back to a scan with
// reservoir sampling so it stays correct when few entries qualify.
func (t *Table[V]) RandomEntry(rng *prince.CTR, pred func(key uint64, val *V) bool) (key uint64, val *V, ok bool) {
	if t.size > 0 {
		total := t.spec.Slots()
		// Random probing succeeds quickly when the table is mostly full of
		// qualifying entries (the common case: unlocked RIT entries).
		for tries := 0; tries < 16; tries++ {
			idx := rng.Intn(total)
			ti := idx / (t.spec.Sets * t.spec.Ways)
			sl := &t.slots[ti][idx%(t.spec.Sets*t.spec.Ways)]
			if sl.valid && (pred == nil || pred(sl.key, &sl.val)) {
				return sl.key, &sl.val, true
			}
		}
	}
	// Reservoir sample over qualifying entries.
	n := 0
	for ti := 0; ti < 2; ti++ {
		for i := range t.slots[ti] {
			sl := &t.slots[ti][i]
			if sl.valid && (pred == nil || pred(sl.key, &sl.val)) {
				n++
				if rng.Intn(n) == 0 {
					key, val = sl.key, &sl.val
				}
			}
		}
	}
	return key, val, n > 0
}

// SetLoad returns, for diagnostics and the Figure 9 experiment, the number
// of valid entries in set s of table ti.
func (t *Table[V]) SetLoad(ti, s int) int {
	return t.spec.Ways - t.invalid[ti][s]
}

// Clear invalidates every entry while keeping the hash keys (a hardware
// bulk-reset of valid bits).
func (t *Table[V]) Clear() {
	var zero slot[V]
	for ti := 0; ti < 2; ti++ {
		for i := range t.slots[ti] {
			t.slots[ti][i] = zero
		}
		for s := range t.invalid[ti] {
			t.invalid[ti][s] = t.spec.Ways
		}
	}
	t.size = 0
}

// SetsOf returns the two candidate set indices (in table 0 and table 1)
// that key hashes to. The scalable Misra-Gries tracker uses this to
// maintain its per-set minimum counters.
func (t *Table[V]) SetsOf(key uint64) (s0, s1 int) {
	return t.setsOf(key)
}

// ForEachInSet calls fn for every valid entry in set s of table ti until
// fn returns false.
func (t *Table[V]) ForEachInSet(ti, s int, fn func(key uint64, val *V) bool) {
	ss := t.setSlots(ti, s)
	for i := range ss {
		if ss[i].valid {
			if !fn(ss[i].key, &ss[i].val) {
				return
			}
		}
	}
}
