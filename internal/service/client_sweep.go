package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/resilience"
	"repro/internal/sim"
)

// SubmitSweep POSTs a sweep spec and returns the accepted (or
// coalesced-onto) sweep's view. Safe to retry: the server coalesces
// sweep submissions by content hash, so a retried POST after a dropped
// response lands on the same running sweep.
func (c *Client) SubmitSweep(ctx context.Context, ss SweepSpec) (SweepView, error) {
	body, err := json.Marshal(ss)
	if err != nil {
		return SweepView{}, err
	}
	var v SweepView
	err = resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, raw, _, err := c.roundTrip(ctx, http.MethodPost, sweepPrefix, body)
		if err != nil {
			return err
		}
		return json.Unmarshal(raw, &v)
	})
	if err != nil {
		return SweepView{}, err
	}
	return v, nil
}

// Sweep fetches one sweep's aggregated progress, including the
// per-child lines.
func (c *Client) Sweep(ctx context.Context, id string) (SweepView, error) {
	var v SweepView
	err := resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, raw, _, err := c.roundTrip(ctx, http.MethodGet, sweepPrefix+"/"+id, nil)
		if err != nil {
			return err
		}
		return json.Unmarshal(raw, &v)
	})
	if err != nil {
		return SweepView{}, err
	}
	return v, nil
}

// CancelSweep DELETEs a sweep (cancelling it if still active).
func (c *Client) CancelSweep(ctx context.Context, id string) error {
	return resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, _, _, err := c.roundTrip(ctx, http.MethodDelete, sweepPrefix+"/"+id, nil)
		return err
	})
}

// SweepResults polls GET /v1/sweeps/{id}/results until the sweep
// reaches a terminal state, with the same jittered, hint-honoring
// backoff as Result. The returned envelope carries every child result
// keyed by child content hash.
func (c *Client) SweepResults(ctx context.Context, id string) (SweepResultsEnvelope, error) {
	base := c.PollInterval
	useHint := base <= 0
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	wait := base
	for {
		var env SweepResultsEnvelope
		var hint time.Duration
		pending := false
		err := resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
			status, raw, after, err := c.roundTrip(ctx, http.MethodGet,
				sweepPrefix+"/"+id+"/results", nil)
			if err != nil {
				return err
			}
			if status == http.StatusAccepted {
				pending, hint = true, after
				return nil
			}
			pending = false
			if uerr := json.Unmarshal(raw, &env); uerr != nil {
				return fmt.Errorf("service client: decoding sweep results: %w", uerr)
			}
			return nil
		})
		if err != nil {
			return SweepResultsEnvelope{}, err
		}
		if !pending {
			return env, nil
		}
		d := wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		if useHint && hint > d {
			d = hint
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return SweepResultsEnvelope{}, ctx.Err()
		case <-t.C:
		}
		if wait < maxPollBackoff*base {
			wait = wait * 3 / 2
		}
	}
}

// RunSweep submits a sweep and waits for every child: the remote
// equivalent of a whole experiment loop in one call. The result map is
// keyed by child spec content hash — look a point up with
// Spec.Hash() of the spec you would have run locally. A sweep record
// lost mid-poll (a restart whose journal missed it) is resubmitted,
// like Run does for jobs; the children are content-addressed, so the
// replacement sweep is served from cache.
func (c *Client) RunSweep(ctx context.Context, ss SweepSpec) (map[string]sim.Result, error) {
	var lastErr error
	for attempt := 0; attempt <= maxResubmits; attempt++ {
		v, err := c.SubmitSweep(ctx, ss)
		if err != nil {
			return nil, err
		}
		env, err := c.SweepResults(ctx, v.ID)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			lastErr = err
			continue // the sweep record is gone; resubmit the spec
		}
		if err != nil {
			return nil, err
		}
		if env.State != StateDone {
			return env.Results, fmt.Errorf("service client: sweep %s %s: %s",
				env.ID, env.State, env.Error)
		}
		return env.Results, nil
	}
	return nil, fmt.Errorf("service client: sweep lost %d times: %w",
		maxResubmits+1, lastErr)
}
