package mitigation

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/invariant"
)

// srsTestParams gives a small deterministic SRS for unit tests.
func srsTestParams() SRSParams {
	p := DefaultSRSParams(testConfig())
	p.SwapThreshold = 8
	return p
}

func TestSRSSwapAtThreshold(t *testing.T) {
	sys := dram.MustNew(testConfig())
	s := NewSRS(sys, srsTestParams())
	id := dram.BankID{}

	now := int64(0)
	for i := 0; i < 7; i++ {
		res := s.OnActivate(id, 100, s.Remap(id, 100), now)
		if res.ChannelBlock != 0 {
			t.Fatalf("swapped before the threshold (act %d)", i)
		}
		now += 72
	}
	res := s.OnActivate(id, 100, s.Remap(id, 100), now)
	if res.ChannelBlock == 0 {
		t.Fatal("no swap at the threshold")
	}
	if res.BankBlock == 0 {
		t.Fatal("no neighbour-refresh cost charged")
	}
	st := s.Stats()
	if st.Swaps != 1 || st.Refreshes != 2 {
		t.Fatalf("stats %+v", st)
	}
	// The trigger refreshed the physical slot's neighbours.
	if sys.ActCount(id, 99) != 1 || sys.ActCount(id, 101) != 1 {
		t.Fatalf("neighbours not refreshed: %d/%d",
			sys.ActCount(id, 99), sys.ActCount(id, 101))
	}
	// The occupant moved: logical 100 now lives elsewhere, and slot 100
	// hosts a different logical row.
	if s.Remap(id, 100) == 100 {
		t.Fatal("logical row 100 still maps to slot 100 after swap")
	}
	if s.Occupant(id, 100) == 100 {
		t.Fatal("slot 100 still hosts logical row 100 after swap")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSRSTracksPhysicalSlot pins the defining difference from RRS: the
// tracker counts the physical slot, so chasing occupants (the juggling
// attack) keeps triggering mitigations instead of resetting the count.
func TestSRSTracksPhysicalSlot(t *testing.T) {
	sys := dram.MustNew(testConfig())
	s := NewSRS(sys, srsTestParams())
	id := dram.BankID{}

	now := int64(0)
	hammerSlot := func(slot, times int) {
		for i := 0; i < times; i++ {
			occ := s.Occupant(id, slot)
			s.OnActivate(id, occ, s.Remap(id, occ), now)
			now += 72
		}
	}
	hammerSlot(100, 8)
	if s.Stats().Swaps != 1 {
		t.Fatalf("swaps = %d after first burst", s.Stats().Swaps)
	}
	// Juggle: hammer whatever now occupies slot 100. A logical-row
	// tracker would start from zero; the slot-keyed tracker fires again
	// after another SwapThreshold activations.
	hammerSlot(100, 8)
	if s.Stats().Swaps != 2 {
		t.Fatalf("swaps = %d after juggling burst, want 2", s.Stats().Swaps)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSRSEpochResetsCountersNotPermutation(t *testing.T) {
	sys := dram.MustNew(testConfig())
	s := NewSRS(sys, srsTestParams())
	id := dram.BankID{}
	for i := 0; i < 8; i++ {
		s.OnActivate(id, 100, s.Remap(id, 100), int64(i*72))
	}
	moved := s.Remap(id, 100)
	if moved == 100 {
		t.Fatal("no swap before epoch")
	}
	s.OnEpoch(1000)
	if s.Remap(id, 100) != moved {
		t.Fatal("epoch reset undid the permutation")
	}
	// Counters restart: seven activations of the new slot must not fire.
	for i := 0; i < 7; i++ {
		if res := s.OnActivate(id, 100, s.Remap(id, 100), int64(2000+i*72)); res.ChannelBlock != 0 {
			t.Fatal("swap fired from stale counters after epoch")
		}
	}
}

func TestSRSHeadroomGrant(t *testing.T) {
	sys := dram.MustNew(testConfig())
	s := NewSRS(sys, srsTestParams())
	id := dram.BankID{}
	res := s.OnActivate(id, 100, 100, 0)
	// After one activation of the slot, T-1-(1 mod T) = 6 more are inert.
	if res.Headroom != 6 {
		t.Fatalf("headroom = %d, want 6", res.Headroom)
	}
}

func TestSRSParanoidCatalog(t *testing.T) {
	sys := dram.MustNew(testConfig())
	s := NewSRS(sys, srsTestParams())
	eng := invariant.NewEngine()
	s.EnableParanoid(eng)
	id := dram.BankID{}
	for i := 0; i < 64; i++ {
		s.OnActivate(id, 100+i%3, s.Remap(id, 100+i%3), int64(i*72))
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the permutation: the catalog must latch a violation.
	s.units[0].inv[100] = 7
	if err := eng.RunAll(); err == nil {
		t.Fatal("corrupted permutation not detected")
	}
}

func TestRubixBijectionAndDeterminism(t *testing.T) {
	cfg := testConfig()
	a := NewRubix(dram.MustNew(cfg), 0, 42)
	b := NewRubix(dram.MustNew(cfg), 0, 42)
	c := NewRubix(dram.MustNew(cfg), 0, 43)
	id := dram.BankID{}

	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	same, diff := true, false
	for r := 0; r < cfg.RowsPerBank; r++ {
		p := a.Remap(id, r)
		if a.Occupant(id, p) != r {
			t.Fatalf("Occupant(Remap(%d)=%d) = %d", r, p, a.Occupant(id, p))
		}
		if b.Remap(id, r) != p {
			same = false
		}
		if c.Remap(id, r) != p {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different mappings")
	}
	if !diff {
		t.Fatal("different seeds produced identical mappings")
	}
}

func TestRubixScramblesAdjacency(t *testing.T) {
	cfg := testConfig()
	r := NewRubix(dram.MustNew(cfg), 0, 1)
	id := dram.BankID{}
	// Count logically adjacent pairs that stay physically adjacent; a
	// uniform permutation leaves ~2 expected such pairs in a 4K-row bank.
	adjacent := 0
	for row := 0; row+1 < cfg.RowsPerBank; row++ {
		d := r.Remap(id, row) - r.Remap(id, row+1)
		if d == 1 || d == -1 {
			adjacent++
		}
	}
	if adjacent > 16 {
		t.Fatalf("%d adjacent pairs survived the scramble", adjacent)
	}
}

func TestRubixRefreshesPhysicalNeighbors(t *testing.T) {
	sys := dram.MustNew(testConfig())
	r := NewRubix(sys, 1.0, 1) // always refresh
	id := dram.BankID{}
	phys := r.Remap(id, 100)
	res := r.OnActivate(id, 100, phys, 0)
	if res.BankBlock == 0 {
		t.Fatal("no refresh cost charged at p=1")
	}
	want := 0
	for _, v := range []int{phys - 1, phys + 1} {
		if v >= 0 && v < sys.Config().RowsPerBank {
			want++
			if sys.ActCount(id, v) != 1 {
				t.Fatalf("physical neighbour %d not refreshed", v)
			}
		}
	}
	if r.Stats().Refreshes != int64(want) {
		t.Fatalf("refreshes = %d, want %d", r.Stats().Refreshes, want)
	}
}

func TestMINTLatchesAndRefreshesAtBoundary(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	m := NewMINT(sys, 1)
	id := dram.BankID{}

	// Hammer row 100 through one full tREFI window: whatever index the
	// sampler picked, it captures row 100.
	trefi := int64(cfg.TREFI)
	now := int64(0)
	for now < trefi {
		m.OnActivate(id, 100, 100, now)
		now += int64(cfg.TRC)
	}
	// First activation of the next window services the latch.
	res := m.OnActivate(id, 200, 200, trefi)
	if res.BankBlock == 0 {
		t.Fatal("no refresh at the window boundary")
	}
	if sys.ActCount(id, 99) != 1 || sys.ActCount(id, 101) != 1 {
		t.Fatalf("sampled row's neighbours not refreshed: %d/%d",
			sys.ActCount(id, 99), sys.ActCount(id, 101))
	}
	if st := m.Stats(); st.Mitigations != 1 || st.Refreshes != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMINTEpochDropsPendingSample(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	m := NewMINT(sys, 1)
	id := dram.BankID{}
	for now := int64(0); now < int64(cfg.TREFI); now += int64(cfg.TRC) {
		m.OnActivate(id, 100, 100, now)
	}
	m.OnEpoch(int64(cfg.TREFI))
	if res := m.OnActivate(id, 200, 200, int64(cfg.TREFI)); res.BankBlock != 0 {
		t.Fatal("epoch-cleared latch still serviced")
	}
	if m.Stats().Mitigations != 0 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestPrIDEServicesHeadPerWindow(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	q := NewPrIDE(sys, 1.0, 1) // enqueue every activation
	id := dram.BankID{}

	// Two activations in window 0: both enqueue, none serviced yet.
	q.OnActivate(id, 100, 100, 0)
	q.OnActivate(id, 200, 200, int64(cfg.TRC))
	if st := q.Stats(); st.Enqueued != 2 || st.Serviced != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Window 1: the head (row 100) is serviced.
	res := q.OnActivate(id, 300, 300, int64(cfg.TREFI))
	if res.BankBlock == 0 {
		t.Fatal("no service at window boundary")
	}
	if sys.ActCount(id, 99) != 1 || sys.ActCount(id, 101) != 1 {
		t.Fatal("head entry's neighbours not refreshed")
	}
	if sys.ActCount(id, 199) != 0 {
		t.Fatal("serviced more than the head")
	}
	if st := q.Stats(); st.Serviced != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrIDEOverflowPolicies(t *testing.T) {
	cfg := testConfig()
	fill := func(q *PrIDE) {
		id := dram.BankID{}
		// Same window throughout: no servicing, queue fills then overflows.
		for i := 0; i < prideQueueCap+5; i++ {
			q.OnActivate(id, 100+i, 100+i, int64(i))
		}
	}
	p := NewPrIDE(dram.MustNew(cfg), 1.0, 1)
	fill(p)
	if st := p.Stats(); st.Dropped != 5 || st.Replaced != 0 {
		t.Fatalf("PrIDE stats %+v, want 5 drops", st)
	}
	d := NewDAPPER(dram.MustNew(cfg), 1.0, 1)
	fill(d)
	if st := d.Stats(); st.Replaced != 5 || st.Dropped != 0 {
		t.Fatalf("DAPPER stats %+v, want 5 replacements", st)
	}
	if !d.Replaces() || p.Replaces() {
		t.Fatal("Replaces flags wrong")
	}
}

func TestPrIDEEpochClearsQueue(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	q := NewPrIDE(sys, 1.0, 1)
	id := dram.BankID{}
	q.OnActivate(id, 100, 100, 0)
	q.OnEpoch(100)
	if res := q.OnActivate(id, 300, 300, int64(cfg.TREFI)); res.BankBlock != 0 {
		t.Fatal("epoch-cleared queue still serviced")
	}
}

// TestZooRemapIdentity pins which defenses move rows: only the swap /
// scramble defenses remap, and the trackers are strictly identity.
func TestZooRemapIdentity(t *testing.T) {
	cfg := testConfig()
	id := dram.BankID{}
	m := NewMINT(dram.MustNew(cfg), 1)
	q := NewPrIDE(dram.MustNew(cfg), 0.5, 1)
	for _, row := range []int{0, 100, cfg.RowsPerBank - 1} {
		if m.Remap(id, row) != row || q.Remap(id, row) != row {
			t.Fatalf("tracker defense remapped row %d", row)
		}
	}
}
