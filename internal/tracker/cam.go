package tracker

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/obs"
)

// CAM is the reference Misra-Gries tracker: a fully associative
// (content-addressable) table as used by Graphene. Entries live in flat
// preallocated slot arrays (row, count) reached through a private
// open-addressed index, so the per-activation Observe path performs no
// map operations and no allocations. A cached minimum (value + population
// count + a candidate queue in ascending slot order) keeps the "is the
// minimum counter equal to the spill counter" test O(1) and minimum-entry
// replacement O(1) amortized.
//
// Eviction is deterministic: among entries at the minimum count, the one
// in the lowest slot index (ties broken by queue rebuild order, itself a
// pure function of the observation sequence) is replaced. The previous
// implementation picked a victim via Go map iteration, whose order is
// randomized per process — two runs of the same trace could evolve
// different tracker states, breaking the engine's determinism guarantee
// (and with it the service's content-addressed result cache) for any
// configuration using the CAM tracker.
type CAM struct {
	threshold int64
	capacity  int
	spill     int64

	// Slot arrays; slots [0, size) are live. Eviction replaces a victim
	// slot in place, so live slots stay compact.
	rows []uint64
	cnts []int64
	size int

	// idx maps row -> slot+1 by linear probing (0 = empty). Its length is
	// a power of two at least 4x capacity, keeping the load factor <= 1/4.
	idx     []int32
	idxMask uint64

	minVal   int64 // minimum count over live slots (valid if size > 0)
	minCount int   // live slots with count == minVal

	// minQueue holds candidate victim slots for the current minVal in
	// ascending order, consumed from the head; entries are validated
	// against the live count on pop (a queued slot may have been bumped).
	minQueue []int32
	minHead  int

	// Eviction log for the differential oracle (EvictionReporter);
	// recording is off until logEvictions is armed.
	logEvictions bool
	evictions    uint64
	lastEvicted  uint64
	evictLie     bool   // test hook: LastEvicted lies
	evictLieRow  uint64 // the row it lies about

	// rec, when non-nil, receives insert/evict/crossing events (ObsTarget).
	rec     *obs.Recorder
	obsBank int32
}

// SetObs implements ObsTarget.
func (c *CAM) SetObs(rec *obs.Recorder, bank int32) {
	c.rec = rec
	c.obsBank = bank
}

var (
	_ Tracker          = (*CAM)(nil)
	_ EvictionReporter = (*CAM)(nil)
)

// NewCAM creates a reference tracker with the given entry capacity and
// swap threshold. The error wraps invariant.ErrBadGeometry.
func NewCAM(capacity int, threshold int64) (*CAM, error) {
	if capacity <= 0 || threshold <= 0 {
		return nil, fmt.Errorf("tracker: %w: capacity %d and threshold %d must be positive",
			invariant.ErrBadGeometry, capacity, threshold)
	}
	idxLen := 4
	for idxLen < 4*capacity {
		idxLen *= 2
	}
	return &CAM{
		threshold: threshold,
		capacity:  capacity,
		rows:      make([]uint64, capacity),
		cnts:      make([]int64, capacity),
		idx:       make([]int32, idxLen),
		idxMask:   uint64(idxLen - 1),
		minQueue:  make([]int32, 0, capacity),
	}, nil
}

// camHash is the splitmix64 finalizer — an invertible mixer, so distinct
// rows probe from well-spread origins.
func camHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// lookup returns the slot holding row, or -1.
func (c *CAM) lookup(row uint64) int {
	i := camHash(row) & c.idxMask
	for {
		s := c.idx[i]
		if s == 0 {
			return -1
		}
		if c.rows[s-1] == row {
			return int(s - 1)
		}
		i = (i + 1) & c.idxMask
	}
}

// idxInsert maps row to slot. The caller guarantees row is absent.
func (c *CAM) idxInsert(row uint64, slot int) {
	i := camHash(row) & c.idxMask
	for c.idx[i] != 0 {
		i = (i + 1) & c.idxMask
	}
	c.idx[i] = int32(slot + 1)
}

// idxDelete unmaps row using backward-shift deletion, which keeps probe
// chains tombstone-free.
func (c *CAM) idxDelete(row uint64) {
	i := camHash(row) & c.idxMask
	for {
		s := c.idx[i]
		if s == 0 {
			return
		}
		if c.rows[s-1] == row {
			break
		}
		i = (i + 1) & c.idxMask
	}
	j := i
	for {
		j = (j + 1) & c.idxMask
		s := c.idx[j]
		if s == 0 {
			break
		}
		home := camHash(c.rows[s-1]) & c.idxMask
		// Shift s into the hole unless its home lies inside (i, j].
		if (j-home)&c.idxMask >= (j-i)&c.idxMask {
			c.idx[i] = s
			i = j
		}
	}
	c.idx[i] = 0
}

// Observe implements Tracker.
func (c *CAM) Observe(row uint64) bool {
	if s := c.lookup(row); s >= 0 {
		cnt := c.cnts[s]
		c.cnts[s] = cnt + 1
		if cnt == c.minVal {
			c.minCount--
			if c.minCount == 0 {
				c.advanceMin()
			}
		}
		crossed := crossedMultiple(cnt, cnt+1, c.threshold)
		if crossed && c.rec != nil {
			c.rec.RecordNow(obs.KindHRTCross, c.obsBank, row, uint64(cnt+1))
		}
		return crossed
	}
	// Installs never trigger: a row not in the table has a true count of
	// at most the spill counter, which the Misra-Gries sizing bounds by
	// W/(N+1) < T — so a freshly installed row cannot already have T true
	// activations. (Its estimate may start at spill+1 and cross a
	// multiple late by up to spill; the security analysis absorbs that
	// slack, and triggering on installs instead would cause swap storms
	// on flat access patterns once the spill counter saturates.)
	if c.size < c.capacity {
		c.installAt(c.size, row, c.spill+1)
		c.size++
		if c.rec != nil {
			c.rec.RecordNow(obs.KindHRTInsert, c.obsBank, row, uint64(c.spill+1))
		}
		return false
	}
	if c.minVal > c.spill {
		c.spill++
		return false
	}
	// minVal == spill (minVal < spill is impossible; the spill counter
	// only advances past the minimum): replace one minimum entry with the
	// new row at count spill+1.
	victim := c.findMinSlot()
	if c.logEvictions {
		c.lastEvicted = c.rows[victim]
		c.evictions++
	}
	if c.rec != nil {
		c.rec.RecordNow(obs.KindHRTEvict, c.obsBank, c.rows[victim], uint64(c.cnts[victim]))
	}
	c.idxDelete(c.rows[victim])
	c.minCount--
	c.installAt(victim, row, c.spill+1)
	if c.minCount == 0 {
		c.advanceMin()
	}
	if c.rec != nil {
		c.rec.RecordNow(obs.KindHRTInsert, c.obsBank, row, uint64(c.spill+1))
	}
	return false
}

// ObserveN implements Tracker. For a tracked row the n counter bumps
// collapse into one addition; the cached-minimum bookkeeping is the same
// as for a single bump because the entry leaves the minimum either way
// (advanceMin recomputes the exact new minimum). Untracked rows fall
// back to n single observations, since installs, spill advances and
// evictions can interleave.
func (c *CAM) ObserveN(row uint64, n int64) int {
	if n <= 0 {
		return 0
	}
	if s := c.lookup(row); s >= 0 {
		cnt := c.cnts[s]
		c.cnts[s] = cnt + n
		if cnt == c.minVal {
			c.minCount--
			if c.minCount == 0 {
				c.advanceMin()
			}
		}
		fired := int((cnt+n)/c.threshold - cnt/c.threshold)
		if fired > 0 && c.rec != nil {
			// The burst collapses into one event at the final count.
			c.rec.RecordNow(obs.KindHRTCross, c.obsBank, row, uint64(cnt+n))
		}
		return fired
	}
	fired := 0
	for i := int64(0); i < n; i++ {
		if c.Observe(row) {
			fired++
		}
	}
	return fired
}

// installAt writes (row, cnt) into slot and maintains the index and the
// cached minimum.
func (c *CAM) installAt(slot int, row uint64, cnt int64) {
	c.rows[slot] = row
	c.cnts[slot] = cnt
	c.idxInsert(row, slot)
	switch {
	case c.size == 0 && slot == 0, cnt < c.minVal:
		c.minVal = cnt
		c.minCount = 1
		c.resetMinQueue()
	case cnt == c.minVal:
		c.minCount++
	}
}

// advanceMin rescans the slots for the new minimum after the last entry
// at the old one was bumped or evicted. The scan is O(capacity), but a
// full sweep of entries must be bumped between scans, so the amortized
// cost per observation is O(1).
func (c *CAM) advanceMin() {
	c.resetMinQueue()
	if c.size == 0 {
		c.minVal = 0
		return
	}
	min := c.cnts[0]
	n := 1
	for i := 1; i < c.size; i++ {
		switch v := c.cnts[i]; {
		case v < min:
			min, n = v, 1
		case v == min:
			n++
		}
	}
	c.minVal, c.minCount = min, n
}

// findMinSlot returns the next victim: the lowest-index slot at the
// minimum count not yet consumed from the candidate queue. The queue is
// rebuilt by one ascending scan per minimum regime, so consecutive
// replacements at the same minimum are O(1).
func (c *CAM) findMinSlot() int {
	for {
		for c.minHead < len(c.minQueue) {
			s := c.minQueue[c.minHead]
			c.minHead++
			if c.cnts[s] == c.minVal {
				return int(s)
			}
		}
		c.resetMinQueue()
		for i := 0; i < c.size; i++ {
			if c.cnts[i] == c.minVal {
				c.minQueue = append(c.minQueue, int32(i))
			}
		}
		if len(c.minQueue) == 0 {
			panic("tracker: cached minimum out of sync with entries")
		}
	}
}

func (c *CAM) resetMinQueue() {
	c.minQueue = c.minQueue[:0]
	c.minHead = 0
}

// Contains implements Tracker.
func (c *CAM) Contains(row uint64) bool { return c.lookup(row) >= 0 }

// EnableEvictionLog implements EvictionReporter.
func (c *CAM) EnableEvictionLog() { c.logEvictions = true }

// Evictions implements EvictionReporter (monotonic across Reset).
func (c *CAM) Evictions() uint64 { return c.evictions }

// LastEvicted implements EvictionReporter.
func (c *CAM) LastEvicted() uint64 {
	if c.evictLie {
		return c.evictLieRow
	}
	return c.lastEvicted
}

// Count implements Tracker.
func (c *CAM) Count(row uint64) (int64, bool) {
	if s := c.lookup(row); s >= 0 {
		return c.cnts[s], true
	}
	return 0, false
}

// Spill implements Tracker.
func (c *CAM) Spill() int64 { return c.spill }

// Len implements Tracker.
func (c *CAM) Len() int { return c.size }

// Capacity implements Tracker.
func (c *CAM) Capacity() int { return c.capacity }

// Threshold implements Tracker.
func (c *CAM) Threshold() int64 { return c.threshold }

// Reset implements Tracker.
func (c *CAM) Reset() {
	c.spill = 0
	c.size = 0
	c.minVal = 0
	c.minCount = 0
	c.resetMinQueue()
	clear(c.idx)
}
