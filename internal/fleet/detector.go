package fleet

import (
	"context"
	"sync"
	"time"
)

// PeerHealth is one peer's probe state, as reported by the status
// endpoint and the detector's snapshot.
type PeerHealth struct {
	Peer     Peer `json:"peer"`
	Routable bool `json:"routable"`
	// Streak counts consecutive probe results in the current direction:
	// successes while routable is pending/true, failures while pending
	// a fall. Exposed for operators watching a flapping peer.
	Streak int `json:"streak"`
}

// detector tracks remote-peer routability with rise/fall hysteresis: a
// peer must answer `fall` consecutive probes wrong to leave the ring
// and `rise` consecutive probes right to rejoin it, so one dropped
// packet does not reshuffle job ownership. A probe passes only if both
// /healthz (liveness) and /readyz (readiness) do — a draining or
// overloaded peer is alive but must stop receiving forwards.
type detector struct {
	peers   []Peer // remotes only; the node accounts for itself
	probe   func(ctx context.Context, p Peer) error
	rise    int
	fall    int
	timeout time.Duration
	onFlap  func(p Peer, routable bool)

	mu    sync.Mutex
	state map[string]*probeState
}

type probeState struct {
	routable  bool
	successes int // consecutive
	failures  int // consecutive
}

func newDetector(peers []Peer, rise, fall int, timeout time.Duration,
	probe func(ctx context.Context, p Peer) error,
	onFlap func(p Peer, routable bool)) *detector {
	d := &detector{
		peers: peers, probe: probe,
		rise: rise, fall: fall, timeout: timeout, onFlap: onFlap,
		state: make(map[string]*probeState, len(peers)),
	}
	for _, p := range peers {
		// Start optimistic: at boot the roster is assumed up, so the
		// very first submissions route normally instead of all landing
		// on the local node while probes warm up. A dead peer costs
		// `fall` probe rounds of failovers, which the forwarding path
		// absorbs.
		d.state[p.ID] = &probeState{routable: true}
	}
	return d
}

// SetPeers swaps the probed peer set — the seam dynamic membership
// drives on every table change. Known peers keep their hysteresis
// state as long as their URL is unchanged; a new peer (or a known ID
// reappearing at a new address) starts optimistic, exactly like the
// boot roster, so a freshly joined node is routable immediately and a
// dead one costs the usual `fall` rounds. Removed peers drop their
// state entirely — a tombstoned member cannot linger as "routable".
func (d *detector) SetPeers(peers []Peer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := make(map[string]Peer, len(d.peers))
	for _, p := range d.peers {
		old[p.ID] = p
	}
	next := make(map[string]*probeState, len(peers))
	for _, p := range peers {
		if s, ok := d.state[p.ID]; ok && old[p.ID].URL == p.URL {
			next[p.ID] = s
			continue
		}
		next[p.ID] = &probeState{routable: true}
	}
	d.peers = append([]Peer(nil), peers...)
	d.state = next
}

// ProbeOnce probes every peer concurrently and folds the verdicts into
// the hysteresis state. Exposed (via the Node) so tests can drive the
// detector deterministically instead of racing a ticker.
func (d *detector) ProbeOnce(ctx context.Context) {
	d.mu.Lock()
	peers := append([]Peer(nil), d.peers...)
	d.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, d.timeout)
			defer cancel()
			d.observe(p, d.probe(pctx, p) == nil)
		}(p)
	}
	wg.Wait()
}

// observe applies one probe verdict with rise/fall hysteresis. A peer
// removed by SetPeers mid-probe is silently dropped.
func (d *detector) observe(p Peer, ok bool) {
	d.mu.Lock()
	s := d.state[p.ID]
	if s == nil {
		d.mu.Unlock()
		return
	}
	var flipped bool
	if ok {
		s.failures = 0
		s.successes++
		if !s.routable && s.successes >= d.rise {
			s.routable = true
			flipped = true
		}
	} else {
		s.successes = 0
		s.failures++
		if s.routable && s.failures >= d.fall {
			s.routable = false
			flipped = true
		}
	}
	routable := s.routable
	d.mu.Unlock()
	if flipped && d.onFlap != nil {
		d.onFlap(p, routable)
	}
}

// Routable returns the remote peers currently in the ring, in roster
// order.
func (d *detector) Routable() []Peer {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Peer, 0, len(d.peers))
	for _, p := range d.peers {
		if d.state[p.ID].routable {
			out = append(out, p)
		}
	}
	return out
}

// Snapshot reports every remote peer's probe state.
func (d *detector) Snapshot() []PeerHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PeerHealth, 0, len(d.peers))
	for _, p := range d.peers {
		s := d.state[p.ID]
		streak := s.successes
		if s.failures > 0 {
			streak = s.failures
		}
		out = append(out, PeerHealth{Peer: p, Routable: s.routable, Streak: streak})
	}
	return out
}
