package obs

import (
	"reflect"
	"testing"
)

func TestOffsetBanks(t *testing.T) {
	tl := &Timeline{Events: []Event{
		{At: 1, Kind: KindSwap, Bank: 0},
		{At: 2, Kind: KindEpoch, Bank: -1},
		{At: 3, Kind: KindRITInstall, Bank: 3},
	}}
	tl.OffsetBanks(16)
	want := []int32{16, -1, 19}
	for i, e := range tl.Events {
		if e.Bank != want[i] {
			t.Fatalf("event %d: bank = %d, want %d", i, e.Bank, want[i])
		}
	}
	// Nil receiver and zero delta are no-ops, not panics.
	var nilTL *Timeline
	nilTL.OffsetBanks(4)
	tl.OffsetBanks(0)
}

func TestMergeTimelinesEvents(t *testing.T) {
	a := &Timeline{
		Events:      []Event{{At: 10, Bank: 0}, {At: 30, Bank: 0}},
		TotalEvents: 2,
	}
	b := &Timeline{
		Events:        []Event{{At: 10, Bank: 1}, {At: 20, Bank: 1}},
		TotalEvents:   3,
		DroppedEvents: 1,
	}
	m := MergeTimelines([]*Timeline{a, nil, b})
	if m.TotalEvents != 5 || m.DroppedEvents != 1 {
		t.Fatalf("totals = %d/%d, want 5/1", m.TotalEvents, m.DroppedEvents)
	}
	// Chronological, with the At=10 tie broken by input (shard) order.
	wantBanks := []int32{0, 1, 1, 0}
	wantAts := []int64{10, 10, 20, 30}
	for i, e := range m.Events {
		if e.At != wantAts[i] || e.Bank != wantBanks[i] {
			t.Fatalf("event %d = {At:%d Bank:%d}, want {At:%d Bank:%d}",
				i, e.At, e.Bank, wantAts[i], wantBanks[i])
		}
	}

	if MergeTimelines([]*Timeline{nil, nil}) != nil {
		t.Fatal("merge of all-nil parts should be nil")
	}
}

// TestMergeTimelinesHistograms merges real recorder-built views so bucket
// geometry matches production, then checks against one recorder fed the
// union of the observations.
func TestMergeTimelinesHistograms(t *testing.T) {
	obsA := []int64{1, 5, 130}
	obsB := []int64{2, 70, 4000}

	rec := func(vals ...[]int64) *Timeline {
		r := NewRecorder(Config{RingSize: -1})
		for _, vs := range vals {
			for _, v := range vs {
				r.Observe(HistStall, v)
			}
		}
		return r.Timeline()
	}
	merged := MergeTimelines([]*Timeline{rec(obsA), rec(obsB)})
	direct := rec(obsA, obsB)

	name := HistStall.String()
	got, want := merged.Histograms[name], direct.Histograms[name]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged hist = %+v, want %+v", got, want)
	}
	// A histogram present in only one part passes through intact.
	one := rec(obsA)
	solo := MergeTimelines([]*Timeline{one, rec()})
	if !reflect.DeepEqual(solo.Histograms[name], one.Histograms[name]) {
		t.Fatalf("one-sided hist changed by merge: %+v", solo.Histograms[name])
	}
}

func TestMergeTimelinesSamples(t *testing.T) {
	a := &Timeline{Samples: []EpochSample{
		{Epoch: 0, At: 100, Swaps: 2, RITTuples: 4, HRTRows: 6, BlockCycles: 10},
		{Epoch: 1, At: 200, Swaps: 1, RITTuples: 2, HRTRows: 3, BlockCycles: 5},
	}}
	// Shard b finished after fewer epochs; its epoch 0 sample still folds in.
	b := &Timeline{Samples: []EpochSample{
		{Epoch: 0, At: 110, Swaps: 3, RITTuples: 1, HRTRows: 1, BlockCycles: 7},
	}}
	m := MergeTimelines([]*Timeline{a, b})
	want := []EpochSample{
		{Epoch: 0, At: 110, Swaps: 5, RITTuples: 5, HRTRows: 7, BlockCycles: 17},
		{Epoch: 1, At: 200, Swaps: 1, RITTuples: 2, HRTRows: 3, BlockCycles: 5},
	}
	if !reflect.DeepEqual(m.Samples, want) {
		t.Fatalf("samples = %+v, want %+v", m.Samples, want)
	}
}
