package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// The job journal is an append-only JSONL write-ahead log that makes
// accepted work durable: one record per line, appended (and synced) when
// a job is accepted, when it reaches a terminal state, and when its
// record is removed. A spec is durable once POST /v1/jobs has returned
// 201 — a crash after that point (kill -9 included) loses neither the
// job nor any result the process had already computed.
//
// On startup, OpenJournal replays the log into a Replayed summary and
// compacts the file: terminal jobs keep their accepted+terminal pair
// (their results double as the durable result-cache snapshot), removed
// jobs are dropped, and jobs with no terminal record come back as
// pending. Manager.Restore then re-populates the job table and cache and
// re-enqueues the pending jobs under their original ids, so clients
// polling across a restart resume against the same job URLs.
//
// Torn final lines (a crash mid-append) are tolerated and dropped during
// replay; every earlier record is intact because appends are
// line-buffered in one write and fsynced.

// journalRecord is one JSONL line. Type decides which fields matter.
type journalRecord struct {
	Type journalRecordType `json:"type"`
	ID   string            `json:"id,omitempty"`
	Seq  uint64            `json:"seq,omitempty"`
	Hash string            `json:"hash,omitempty"`
	Spec *Spec             `json:"spec,omitempty"`
	// SweepSpec rides on sweep-accepted records; sweeps journal only the
	// compact spec — the expansion is deterministic, so replay re-derives
	// the children instead of logging thousands of hashes.
	SweepSpec *SweepSpec `json:"sweep_spec,omitempty"`
	// Terminal-state fields.
	State    State       `json:"state,omitempty"`
	Error    string      `json:"error,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	Result   *sim.Result `json:"result,omitempty"`
	// Timestamps, RFC3339Nano.
	Submitted string `json:"submitted_at,omitempty"`
	Finished  string `json:"finished_at,omitempty"`
}

type journalRecordType string

const (
	recAccepted journalRecordType = "accepted"
	recTerminal journalRecordType = "terminal"
	recRemoved  journalRecordType = "removed"
	// Sweep records mirror the job lifecycle for the parent of a
	// server-side sweep. Child jobs journal as ordinary jobs.
	recSweepAccepted journalRecordType = "sweep_accepted"
	recSweepTerminal journalRecordType = "sweep_terminal"
	recSweepRemoved  journalRecordType = "sweep_removed"
)

// acceptedRecord snapshots j for the accept line.
func acceptedRecord(j *Job) journalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	spec := j.spec
	return journalRecord{
		Type:      recAccepted,
		ID:        j.id,
		Seq:       j.seq,
		Hash:      j.hash,
		Spec:      &spec,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
	}
}

// terminalRecord snapshots j for the terminal line. Results ride along
// for done jobs — replaying them is what reconstitutes the result cache.
func terminalRecord(j *Job) journalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := journalRecord{
		Type:     recTerminal,
		ID:       j.id,
		Hash:     j.hash,
		State:    j.state,
		Error:    j.err,
		Attempts: j.attempts,
		Finished: j.finished.UTC().Format(time.RFC3339Nano),
	}
	if j.state == StateDone && j.result != nil {
		res := *j.result
		rec.Result = &res
	}
	return rec
}

// sweepAcceptedRecord snapshots sw for the sweep-accept line.
func sweepAcceptedRecord(sw *Sweep) journalRecord {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	spec := sw.spec
	return journalRecord{
		Type:      recSweepAccepted,
		ID:        sw.id,
		Seq:       sw.seq,
		Hash:      sw.hash,
		SweepSpec: &spec,
		Submitted: sw.submitted.UTC().Format(time.RFC3339Nano),
	}
}

// sweepTerminalRecord snapshots sw for the sweep-terminal line. No
// results ride along: the children's own terminal records are the
// durable result store, and SweepResults re-joins them by hash.
func sweepTerminalRecord(sw *Sweep) journalRecord {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return journalRecord{
		Type:     recSweepTerminal,
		ID:       sw.id,
		Hash:     sw.hash,
		State:    sw.state,
		Error:    sw.err,
		Finished: sw.finished.UTC().Format(time.RFC3339Nano),
	}
}

// Journal is the append handle. Appends are serialized and synced; after
// Close they become silent no-ops (which is how tests simulate the
// process dying while the manager's workers are still winding down).
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
}

// ReplayedJob is one job reconstructed from the log, in submission
// order. State is StateQueued for jobs that never reached a terminal
// record — the ones Restore re-enqueues.
type ReplayedJob struct {
	ID        string
	Seq       uint64
	Hash      string
	Spec      Spec
	State     State
	Error     string
	Attempts  int
	Result    *sim.Result
	Submitted time.Time
	Finished  time.Time
}

// ReplayedSweep is one sweep parent reconstructed from the log. State
// is StateQueued for sweeps with no terminal record — Restore re-expands
// and resumes those, answering already-finished children from the
// replayed result cache.
type ReplayedSweep struct {
	ID        string
	Seq       uint64
	Hash      string
	Spec      SweepSpec
	State     State
	Error     string
	Submitted time.Time
	Finished  time.Time
}

// Replayed summarizes a journal's reconstruction.
type Replayed struct {
	// Jobs holds every non-removed job in submission order.
	Jobs []ReplayedJob
	// Sweeps holds every non-removed sweep parent in submission order.
	Sweeps []ReplayedSweep
	// Pending counts jobs that will be re-enqueued (no terminal state).
	Pending int
	// PendingSweeps counts sweeps that will be resumed.
	PendingSweeps int
	// Results counts durable done-results (the cache snapshot).
	Results int
	// Dropped counts unparseable lines (at most the torn final line of a
	// crashed process, but any corruption is skipped, not fatal).
	Dropped int
}

// OpenJournal opens (creating if needed) the journal at path, replays
// its records, compacts the file, and returns the append handle plus the
// replay summary for Manager.Restore.
func OpenJournal(path string) (*Journal, *Replayed, error) {
	rep, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if err := compactJournal(path, rep); err != nil {
		return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	return &Journal{f: f, path: path}, rep, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close stops all future appends and releases the file. Safe to call
// more than once.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// append writes one record as a JSONL line and syncs it to disk.
func (j *Journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// replayJournal folds the log into per-job and per-sweep end states.
func replayJournal(path string) (*Replayed, error) {
	rep := &Replayed{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*ReplayedJob)
	order := []string{}
	sweepByID := make(map[string]*ReplayedSweep)
	sweepOrder := []string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // results are large-ish lines
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			rep.Dropped++ // torn or corrupt line; later records still apply
			continue
		}
		switch rec.Type {
		case recAccepted:
			if rec.ID == "" || rec.Spec == nil {
				rep.Dropped++
				continue
			}
			rj := &ReplayedJob{
				ID:    rec.ID,
				Seq:   rec.Seq,
				Hash:  rec.Hash,
				Spec:  *rec.Spec,
				State: StateQueued,
			}
			rj.Submitted, _ = time.Parse(time.RFC3339Nano, rec.Submitted)
			if _, dup := byID[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			byID[rec.ID] = rj
		case recTerminal:
			rj, ok := byID[rec.ID]
			if !ok {
				continue // e.g. a queue-full rejection; nothing was accepted
			}
			rj.State = rec.State
			rj.Error = rec.Error
			rj.Attempts = rec.Attempts
			rj.Result = rec.Result
			rj.Finished, _ = time.Parse(time.RFC3339Nano, rec.Finished)
		case recRemoved:
			if _, ok := byID[rec.ID]; ok {
				delete(byID, rec.ID)
			}
		case recSweepAccepted:
			if rec.ID == "" || rec.SweepSpec == nil {
				rep.Dropped++
				continue
			}
			rs := &ReplayedSweep{
				ID:    rec.ID,
				Seq:   rec.Seq,
				Hash:  rec.Hash,
				Spec:  *rec.SweepSpec,
				State: StateQueued,
			}
			rs.Submitted, _ = time.Parse(time.RFC3339Nano, rec.Submitted)
			if _, dup := sweepByID[rec.ID]; !dup {
				sweepOrder = append(sweepOrder, rec.ID)
			}
			sweepByID[rec.ID] = rs
		case recSweepTerminal:
			rs, ok := sweepByID[rec.ID]
			if !ok {
				continue
			}
			rs.State = rec.State
			rs.Error = rec.Error
			rs.Finished, _ = time.Parse(time.RFC3339Nano, rec.Finished)
		case recSweepRemoved:
			delete(sweepByID, rec.ID)
		default:
			rep.Dropped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: reading journal: %w", err)
	}

	jobs := make([]ReplayedJob, 0, len(byID))
	for _, id := range order {
		if rj, ok := byID[id]; ok {
			jobs = append(jobs, *rj)
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	for i := range jobs {
		switch jobs[i].State {
		case StateDone:
			if jobs[i].Result != nil {
				rep.Results++
			}
		case StateQueued:
			rep.Pending++
		}
	}
	rep.Jobs = jobs

	sweeps := make([]ReplayedSweep, 0, len(sweepByID))
	for _, id := range sweepOrder {
		if rs, ok := sweepByID[id]; ok {
			sweeps = append(sweeps, *rs)
		}
	}
	sort.SliceStable(sweeps, func(a, b int) bool { return sweeps[a].Seq < sweeps[b].Seq })
	for i := range sweeps {
		if sweeps[i].State == StateQueued {
			rep.PendingSweeps++
		}
	}
	rep.Sweeps = sweeps
	return rep, nil
}

// compactJournal rewrites the log to exactly the live records, via a
// temp file and an atomic rename so a crash mid-compaction leaves either
// the old or the new journal, never a torn one.
func compactJournal(path string, rep *Replayed) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for i := range rep.Jobs {
		rj := &rep.Jobs[i]
		spec := rj.Spec
		if err := enc.Encode(journalRecord{
			Type: recAccepted, ID: rj.ID, Seq: rj.Seq, Hash: rj.Hash, Spec: &spec,
			Submitted: rj.Submitted.UTC().Format(time.RFC3339Nano),
		}); err != nil {
			return err
		}
		if rj.State.terminal() {
			if err := enc.Encode(journalRecord{
				Type: recTerminal, ID: rj.ID, Hash: rj.Hash, State: rj.State,
				Error: rj.Error, Attempts: rj.Attempts, Result: rj.Result,
				Finished: rj.Finished.UTC().Format(time.RFC3339Nano),
			}); err != nil {
				return err
			}
		}
	}
	for i := range rep.Sweeps {
		rs := &rep.Sweeps[i]
		spec := rs.Spec
		if err := enc.Encode(journalRecord{
			Type: recSweepAccepted, ID: rs.ID, Seq: rs.Seq, Hash: rs.Hash,
			SweepSpec: &spec,
			Submitted: rs.Submitted.UTC().Format(time.RFC3339Nano),
		}); err != nil {
			return err
		}
		if rs.State.terminal() {
			if err := enc.Encode(journalRecord{
				Type: recSweepTerminal, ID: rs.ID, Hash: rs.Hash, State: rs.State,
				Error:    rs.Error,
				Finished: rs.Finished.UTC().Format(time.RFC3339Nano),
			}); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Restore loads a journal replay into the manager: terminal jobs come
// back as inspectable records, done results warm the cache, and pending
// jobs are re-enqueued under their original ids. Call it once, before
// exposing the manager over HTTP, on a manager built with the matching
// Options.Journal. Jobs whose spec no longer validates (a journal from
// an older build, hand edits) are marked failed rather than replayed
// forever.
func (m *Manager) Restore(rep *Replayed) error {
	if rep == nil {
		return nil
	}
	// Surface the replay in the metrics even when nothing (or only
	// garbage) was in the log: torn-line and compaction counts are how
	// an operator audits what a crash cost.
	m.met.Inc("rrs_journal_compactions_total", 1)
	m.met.Inc("rrs_journal_torn_lines_total", int64(rep.Dropped))
	m.met.Inc("rrs_journal_replayed_jobs_total", int64(len(rep.Jobs)))
	if len(rep.Jobs) == 0 && len(rep.Sweeps) == 0 {
		return nil
	}
	var errs []error
	for i := range rep.Jobs {
		rj := &rep.Jobs[i]
		j := &Job{
			id:        rj.ID,
			seq:       rj.Seq,
			spec:      rj.Spec.Normalize(),
			hash:      rj.Hash,
			state:     rj.State,
			attempts:  rj.Attempts,
			err:       rj.Error,
			submitted: rj.Submitted,
			finished:  rj.Finished,
			done:      make(chan struct{}),
		}
		if j.hash == "" {
			j.hash = j.spec.Hash()
		}

		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return ErrClosed
		}
		if _, exists := m.jobs[j.id]; exists {
			m.mu.Unlock()
			errs = append(errs, fmt.Errorf("service: journal job %s collides with a live job", j.id))
			continue
		}
		m.jobs[j.id] = j
		if j.seq > m.seq {
			m.seq = j.seq
		}
		m.mu.Unlock()
		m.met.Inc("rrs_jobs_restored_total", 1)

		if rj.State.terminal() {
			if rj.State == StateDone && rj.Result != nil {
				res := *rj.Result
				j.result = &res
				j.progress = 1
				m.cache.Put(j.hash, res)
				m.mu.Lock()
				m.doneByHash[j.hash] = j
				m.mu.Unlock()
			}
			close(j.done)
			continue
		}

		// Pending: validate against the current build, then re-enqueue.
		if err := j.spec.Validate(); err != nil {
			m.finish(j, StateFailed, fmt.Sprintf("journal replay: %v", err))
			m.met.Inc("rrs_jobs_failed_total", 1)
			continue
		}
		m.mu.Lock()
		if _, dup := m.inflight[j.hash]; !dup {
			m.inflight[j.hash] = j
		}
		m.mu.Unlock()
		if err := m.queue.forcePush(j); err != nil {
			m.finish(j, StateFailed, fmt.Sprintf("journal replay: %v", err))
			m.met.Inc("rrs_jobs_failed_total", 1)
			errs = append(errs, fmt.Errorf("service: re-enqueueing %s: %w", j.id, err))
		}
	}
	// Sweeps restore after jobs so the replayed result cache and the
	// re-enqueued pending children are in place: a resumed sweep's feeder
	// then coalesces onto the replayed jobs instead of duplicating them,
	// and completed children come back as cache hits.
	for i := range rep.Sweeps {
		if err := m.restoreSweep(&rep.Sweeps[i]); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
