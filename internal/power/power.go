// Package power models DRAM energy (USIMM-style event energies plus
// background power) and SRAM power/area for the RRS structures
// (Cacti-like parametric fit), reproducing the paper's storage analysis
// (Table 5) and power analysis (Table 6).
package power

import (
	"math"

	"repro/internal/config"
	"repro/internal/dram"
)

// DRAMEnergy holds per-event energies and background power for one rank.
// Defaults approximate a DDR4-3200 x8 DIMM; only relative overheads enter
// the paper's Table 6, so absolute calibration is secondary.
type DRAMEnergy struct {
	// ActNJ is energy per activate+precharge pair (whole row).
	ActNJ float64
	// ReadNJ / WriteNJ are per 64-byte burst, including I/O.
	ReadNJ  float64
	WriteNJ float64
	// RefreshNJ is per refresh command (per rank, tRFC window).
	RefreshNJ float64
	// BackgroundMW is static power per rank.
	BackgroundMW float64
}

// DefaultDRAMEnergy returns DDR4-class constants.
func DefaultDRAMEnergy() DRAMEnergy {
	return DRAMEnergy{
		ActNJ:        2.5,
		ReadNJ:       5.2,
		WriteNJ:      5.5,
		RefreshNJ:    340,
		BackgroundMW: 160,
	}
}

// Breakdown is a DRAM energy tally in millijoules plus average power.
type Breakdown struct {
	ActMJ        float64
	ReadMJ       float64
	WriteMJ      float64
	RefreshMJ    float64
	BackgroundMJ float64
	// AvgPowerMW is total energy over elapsed time.
	AvgPowerMW float64
}

// TotalMJ sums all components.
func (b Breakdown) TotalMJ() float64 {
	return b.ActMJ + b.ReadMJ + b.WriteMJ + b.RefreshMJ + b.BackgroundMJ
}

// Measure tallies DRAM energy from the system's cumulative counters over
// elapsedCycles memory-bus cycles.
func (e DRAMEnergy) Measure(sys *dram.System, elapsedCycles int64) Breakdown {
	cfg := sys.Config()
	var acts, reads, writes int64
	sys.EachBank(func(_ dram.BankID, b *dram.Bank) {
		acts += b.StatActs
		reads += b.StatReads
		writes += b.StatWrites
	})
	seconds := float64(elapsedCycles) / (config.BusGHz * 1e9)
	refreshes := float64(elapsedCycles/int64(cfg.TREFI)) * float64(cfg.Channels*cfg.Ranks)

	var b Breakdown
	b.ActMJ = float64(acts) * e.ActNJ * 1e-6
	b.ReadMJ = float64(reads) * e.ReadNJ * 1e-6
	b.WriteMJ = float64(writes) * e.WriteNJ * 1e-6
	b.RefreshMJ = refreshes * e.RefreshNJ * 1e-6
	b.BackgroundMJ = e.BackgroundMW * seconds * float64(cfg.Channels*cfg.Ranks)
	if seconds > 0 {
		b.AvgPowerMW = b.TotalMJ() / seconds
	}
	return b
}

// OverheadPercent returns how much more energy rrs consumed than base.
func OverheadPercent(base, rrs Breakdown) float64 {
	if base.TotalMJ() == 0 {
		return 0
	}
	return (rrs.TotalMJ()/base.TotalMJ() - 1) * 100
}

// SRAMModel is a Cacti-like parametric SRAM power/area model, calibrated
// so the paper's RRS configuration (686 KB per rank at 32 nm) lands at the
// reported 903 mW.
type SRAMModel struct {
	// LeakageMWPerKB is static power per kilobyte.
	LeakageMWPerKB float64
	// DynamicNJPerAccessPerKB scales access energy with the square root
	// of structure size (wordline/bitline growth).
	DynamicNJPerAccess float64
}

// DefaultSRAMModel returns the 32 nm calibration.
func DefaultSRAMModel() SRAMModel {
	return SRAMModel{LeakageMWPerKB: 1.2, DynamicNJPerAccess: 0.08}
}

// PowerMW estimates SRAM power for a structure of sizeKB accessed
// accessesPerSecond times.
func (m SRAMModel) PowerMW(sizeKB, accessesPerSecond float64) float64 {
	leak := m.LeakageMWPerKB * sizeKB
	dyn := m.DynamicNJPerAccess * math.Sqrt(sizeKB/32+1) * accessesPerSecond * 1e-6 // nJ/s -> mW
	return leak + dyn
}

// StorageRow is one line of the paper's Table 5.
type StorageRow struct {
	Structure string
	EntryBits int
	Entries   int
	KB        float64
}

// StorageParams describe the RRS structures being costed.
type StorageParams struct {
	// TrackerSets/TrackerWays and RITSets/RITWays are per-table CAT
	// geometry (two tables each).
	TrackerSets, TrackerWays int
	RITSets, RITWays         int
	// SwapThreshold sizes the tracker's counter field.
	SwapThreshold int
}

// PaperStorageParams returns the paper's geometries (64x20 tracker,
// 256x20 RIT, T = 800).
func PaperStorageParams() StorageParams {
	return StorageParams{
		TrackerSets: 64, TrackerWays: 20,
		RITSets: 256, RITWays: 20,
		SwapThreshold: 800,
	}
}

func bits(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// StorageTable computes Table 5 for a configuration: per-bank costs of the
// RIT, tracker and amortized swap buffers.
func StorageTable(cfg config.Config, p StorageParams) []StorageRow {
	rowBits := bits(cfg.RowsPerBank) // 17 for 128K rows

	// RIT entry: valid + lock + source tag (rowid minus set index) +
	// destination rowid.
	ritTag := rowBits - bits(p.RITSets)
	ritEntryBits := 1 + 1 + ritTag + rowBits
	ritEntries := 2 * p.RITSets * p.RITWays

	// Tracker entry: valid + row tag + activation counter (10 bits count
	// to the swap threshold; the counter wraps into the next multiple).
	counterBits := bits(p.SwapThreshold)
	trackerTag := rowBits - bits(p.TrackerSets)
	trackerEntryBits := 1 + trackerTag + counterBits
	trackerEntries := 2 * p.TrackerSets * p.TrackerWays

	// Two row-sized swap buffers per channel, amortized over the banks.
	swapKB := float64(2*cfg.RowBytes) / 1024 / float64(cfg.Banks)

	rows := []StorageRow{
		{"RIT", ritEntryBits, ritEntries, float64(ritEntryBits*ritEntries) / 8 / 1024},
		{"Tracker", trackerEntryBits, trackerEntries, float64(trackerEntryBits*trackerEntries) / 8 / 1024},
		{"Swap-Buffers", 0, 0, swapKB},
	}
	total := 0.0
	for _, r := range rows {
		total += r.KB
	}
	rows = append(rows, StorageRow{Structure: "Total", KB: total})
	return rows
}

// PerRankKB returns the total RRS SRAM per rank (per-bank total times the
// number of banks).
func PerRankKB(cfg config.Config, p StorageParams) float64 {
	t := StorageTable(cfg, p)
	return t[len(t)-1].KB * float64(cfg.Banks)
}
