package tracker

import (
	"math"

	"repro/internal/invariant"
)

// Shadow is the differential oracle of the paranoid mode: it wraps any
// Tracker behind the same interface and replays every observation into a
// plain map-based Misra-Gries reference model, cross-checking counts,
// trigger decisions, installs, spill advances and evictions at the first
// mismatch. Divergence is reported to the invariant engine as a
// "tracker/shadow" Violation naming the row and both answers.
//
// Because core holds trackers through the Tracker interface, wrapping
// costs the unwrapped configuration nothing. The wrapped path stays
// O(1) amortized per observation: the reference minimum is maintained
// incrementally through a count histogram, and when the wrapped tracker
// implements EvictionReporter (both built-ins do) the evicted row is
// identified directly instead of probing every minimum-count candidate.
type Shadow struct {
	inner Tracker
	eng   *invariant.Engine
	rec   EvictionReporter // non-nil when inner reports evictions

	counts map[uint64]int64
	// hist is the multiplicity of each live count value in counts, and
	// min the smallest of them (valid while counts is non-empty). Counts
	// only grow between evictions, so maintaining them incrementally
	// keeps the minimum query O(1) where a map scan per miss would make
	// the oracle O(capacity) per observation.
	hist  map[int64]int64
	min   int64
	spill int64

	checks int64
}

var _ Tracker = (*Shadow)(nil)

// NewShadow wraps inner (which must be freshly constructed — the
// reference model starts empty) and registers its per-observation check
// tally with eng.
func NewShadow(inner Tracker, eng *invariant.Engine) *Shadow {
	s := &Shadow{
		inner:  inner,
		eng:    eng,
		counts: make(map[uint64]int64, inner.Capacity()),
		hist:   make(map[int64]int64),
	}
	if rec, ok := inner.(EvictionReporter); ok {
		rec.EnableEvictionLog()
		s.rec = rec
	}
	if inner.Len() != 0 {
		eng.Report(invariant.Violatedf("tracker/shadow",
			"wrapped tracker already holds %d entries; the reference model starts empty", inner.Len()))
	}
	eng.RegisterCounter("tracker/shadow", func() int64 { return s.checks })
	return s
}

// Inner returns the wrapped tracker.
func (s *Shadow) Inner() Tracker { return s.inner }

func (s *Shadow) report(format string, args ...any) {
	s.eng.Report(invariant.Violatedf("tracker/shadow", format, args...))
}

func (s *Shadow) minCount() int64 {
	if len(s.counts) == 0 {
		return math.MaxInt64
	}
	return s.min
}

// recomputeMin rescans the count histogram after the last entry at the
// cached minimum disappeared. O(distinct count values), and a full
// sweep of entries must be bumped between rescans, so amortized O(1).
func (s *Shadow) recomputeMin() {
	min := int64(math.MaxInt64)
	for c := range s.hist {
		if c < min {
			min = c
		}
	}
	s.min = min
}

// addRef installs row into the reference model at cnt.
func (s *Shadow) addRef(row uint64, cnt int64) {
	s.counts[row] = cnt
	s.hist[cnt]++
	if len(s.counts) == 1 || cnt < s.min {
		s.min = cnt
	}
}

// bumpRef raises row's reference count from prev to cur.
func (s *Shadow) bumpRef(row uint64, prev, cur int64) {
	s.counts[row] = cur
	s.hist[cur]++
	if s.hist[prev]--; s.hist[prev] == 0 {
		delete(s.hist, prev)
		if prev == s.min {
			s.recomputeMin()
		}
	}
}

// removeRef evicts row from the reference model.
func (s *Shadow) removeRef(row uint64) {
	cnt := s.counts[row]
	delete(s.counts, row)
	if s.hist[cnt]--; s.hist[cnt] == 0 {
		delete(s.hist, cnt)
		if cnt == s.min && len(s.counts) > 0 {
			s.recomputeMin()
		}
	}
}

// Observe implements Tracker: the observation runs on the wrapped
// tracker, then the reference model mirrors it and every externally
// visible consequence is cross-checked.
func (s *Shadow) Observe(row uint64) bool {
	var preEv uint64
	if s.rec != nil {
		preEv = s.rec.Evictions()
	}
	preLen := s.inner.Len()
	fired := s.inner.Observe(row)
	s.checks++
	if prev, tracked := s.counts[row]; tracked {
		cur := prev + 1
		s.bumpRef(row, prev, cur)
		if got, ok := s.inner.Count(row); !ok || got != cur {
			s.report("after Observe(%d): count %d (tracked=%v), reference model says %d", row, got, ok, cur)
		}
		if want := crossedMultiple(prev, cur, s.inner.Threshold()); fired != want {
			s.report("Observe(%d) fired=%v at count %d -> %d, reference model says %v", row, fired, prev, cur, want)
		}
	} else {
		if fired {
			s.report("Observe(%d) fired on an untracked row (installs never trigger)", row)
		}
		if s.rec != nil {
			s.afterMissReported(row, preLen, s.rec.Evictions()-preEv)
		} else {
			s.afterMiss(row)
		}
	}
	if got := s.inner.Spill(); got != s.spill {
		s.report("spill counter %d, reference model says %d", got, s.spill)
	}
	if got := s.inner.Len(); got != len(s.counts) {
		s.report("tracker holds %d entries, reference model %d", got, len(s.counts))
	}
	return fired
}

// afterMissReported mirrors an observation of an untracked row using the
// wrapped tracker's eviction log: the entry-count delta and eviction
// count pin down which of install, eviction+install, spill advance or
// dropped CAT conflict happened, without probing candidates.
func (s *Shadow) afterMissReported(row uint64, preLen int, evs uint64) {
	if evs > 1 {
		s.report("Observe(%d) evicted %d entries in one observation", row, evs)
	}
	if evs == 1 {
		s.evictReported(s.rec.LastEvicted())
	}
	switch got := s.inner.Len(); {
	case got == preLen+1 && evs == 0, got == preLen && evs == 1:
		// Install (displacing a minimum entry when the table was full).
		want := s.spill + 1
		if gotCnt, _ := s.inner.Count(row); gotCnt != want {
			s.report("installed row %d at count %d, reference model says %d", row, gotCnt, want)
		}
		s.addRef(row, want)
	case got == preLen && evs == 0:
		// No install: a spill advance (minimum above spill) — or, below
		// capacity, a dropped CAT placement conflict, which changes
		// nothing.
		if len(s.counts) >= s.inner.Capacity() && s.minCount() > s.spill {
			s.spill++
			return
		}
		if len(s.counts) < s.inner.Capacity() {
			return
		}
		s.report("Observe(%d) neither installed nor advanced the spill counter (min %d, spill %d)",
			row, s.minCount(), s.spill)
	case got == preLen-1 && evs == 1:
		// Astronomically rare: the eviction went through, then the CAT
		// dropped the install on a placement conflict.
		return
	default:
		s.report("Observe(%d) moved the entry count %d -> %d with %d evictions", row, preLen, got, evs)
	}
}

// evictReported checks a reported eviction against the reference model
// and mirrors it: the victim must be tracked at the minimum count, the
// minimum must equal the spill counter, and the entry must really be
// gone from the wrapped tracker.
func (s *Shadow) evictReported(victim uint64) {
	cnt, ok := s.counts[victim]
	if !ok {
		s.report("tracker evicted row %d, which the reference model does not track", victim)
		return
	}
	if cnt != s.minCount() {
		s.report("evicted row %d at count %d, reference minimum is %d", victim, cnt, s.minCount())
	}
	if cnt != s.spill {
		s.report("eviction with minimum count %d != spill counter %d", cnt, s.spill)
	}
	if s.inner.Contains(victim) {
		s.report("evicted row %d is still tracked", victim)
	}
	s.removeRef(victim)
}

// afterMiss mirrors an observation of a row the reference model does not
// track when the wrapped tracker has no eviction log: an install
// (evicting a minimum-count entry when full) or a spill advance,
// whichever probing the wrapped tracker reveals.
func (s *Shadow) afterMiss(row uint64) {
	if s.inner.Contains(row) {
		// Install. When the model was full, some minimum-count entry must
		// have been evicted to make room.
		if len(s.counts) >= s.inner.Capacity() {
			s.evictVictim()
		}
		want := s.spill + 1
		if got, _ := s.inner.Count(row); got != want {
			s.report("installed row %d at count %d, reference model says %d", row, got, want)
		}
		s.addRef(row, want)
		return
	}
	// No install. Either the spill counter advanced (minimum above spill)
	// or — astronomically rarely — a CAT conflict dropped the install
	// after an eviction already happened; mirror whichever the entry
	// count reveals.
	if len(s.counts) >= s.inner.Capacity() && s.minCount() > s.spill {
		s.spill++
		return
	}
	if s.inner.Len() < len(s.counts) {
		s.evictVictim()
		return
	}
	if len(s.counts) < s.inner.Capacity() && s.inner.Len() == len(s.counts) {
		// Below capacity the only non-install outcome is a dropped CAT
		// conflict, which keeps the entry counts equal; nothing to mirror.
		return
	}
	s.report("Observe(%d) neither installed nor advanced the spill counter (min %d, spill %d)",
		row, s.minCount(), s.spill)
}

// evictVictim removes from the reference model the entry the wrapped
// tracker evicted: a minimum-count row no longer present in the tracker.
// Eviction is only legal when the minimum equals the spill counter.
// Fallback path for trackers without an eviction log — O(capacity).
func (s *Shadow) evictVictim() {
	min := s.minCount()
	if min != s.spill {
		s.report("eviction with minimum count %d != spill counter %d", min, s.spill)
	}
	victim := uint64(0)
	found := 0
	for r, c := range s.counts {
		if c == min && !s.inner.Contains(r) {
			victim = r
			found++
		}
	}
	switch found {
	case 1:
		s.removeRef(victim)
	case 0:
		s.report("tracker evicted an entry but every minimum-count reference row is still tracked")
	default:
		s.report("%d minimum-count reference rows vanished in one eviction", found)
	}
}

// ObserveN implements Tracker. A tracked row's bulk update is mirrored
// as one addition. An untracked row replays as single observations (the
// Tracker contract makes that state-identical) only until one of them
// installs the row — at most a handful of spill advances — after which
// the remainder of the burst takes the tracked bulk path, keeping every
// install, spill advance and eviction individually checked without
// losing the burst batching the hot path relies on.
func (s *Shadow) ObserveN(row uint64, n int64) int {
	if n <= 0 {
		return s.inner.ObserveN(row, n)
	}
	if _, tracked := s.counts[row]; tracked {
		return s.observeTrackedN(row, n)
	}
	fired := 0
	for i := int64(0); i < n; i++ {
		if s.Observe(row) {
			fired++
		}
		if _, tracked := s.counts[row]; tracked {
			if rem := n - i - 1; rem > 0 {
				fired += s.observeTrackedN(row, rem)
			}
			break
		}
	}
	return fired
}

// observeTrackedN mirrors a bulk update of a row the reference model
// tracks as one addition, cross-checking the final count and the number
// of threshold crossings.
func (s *Shadow) observeTrackedN(row uint64, n int64) int {
	prev := s.counts[row]
	fired := s.inner.ObserveN(row, n)
	s.checks++
	cur := prev + n
	s.bumpRef(row, prev, cur)
	if got, ok := s.inner.Count(row); !ok || got != cur {
		s.report("after ObserveN(%d, %d): count %d (tracked=%v), reference model says %d", row, n, got, ok, cur)
	}
	t := s.inner.Threshold()
	if want := int(cur/t - prev/t); fired != want {
		s.report("ObserveN(%d, %d) fired %d times at count %d -> %d, reference model says %d", row, n, fired, prev, cur, want)
	}
	return fired
}

// Verify sweeps the reference model against the wrapped tracker: every
// reference entry must be tracked at the same count, and the entry and
// spill counters must agree. Registered by the paranoid engine as the
// "tracker/shadow" structural check.
func (s *Shadow) Verify() error {
	for r, want := range s.counts {
		got, ok := s.inner.Count(r)
		if !ok {
			return invariant.Violatedf("tracker/shadow", "reference row %d is not tracked", r)
		}
		if got != want {
			return invariant.Violatedf("tracker/shadow", "row %d tracked at %d, reference model says %d", r, got, want)
		}
	}
	if got := s.inner.Len(); got != len(s.counts) {
		return invariant.Violatedf("tracker/shadow", "tracker holds %d entries, reference model %d", got, len(s.counts))
	}
	if got := s.inner.Spill(); got != s.spill {
		return invariant.Violatedf("tracker/shadow", "spill counter %d, reference model says %d", got, s.spill)
	}
	return nil
}

// CheckInvariants forwards to the wrapped tracker's structural checks.
func (s *Shadow) CheckInvariants() error {
	if sc, ok := s.inner.(SelfChecker); ok {
		return sc.CheckInvariants()
	}
	return nil
}

// Contains implements Tracker, cross-checking against the reference set.
func (s *Shadow) Contains(row uint64) bool {
	got := s.inner.Contains(row)
	if _, want := s.counts[row]; got != want {
		s.report("Contains(%d) = %v, reference model says %v", row, got, want)
	}
	return got
}

// Count implements Tracker.
func (s *Shadow) Count(row uint64) (int64, bool) { return s.inner.Count(row) }

// Spill implements Tracker.
func (s *Shadow) Spill() int64 { return s.inner.Spill() }

// Len implements Tracker.
func (s *Shadow) Len() int { return s.inner.Len() }

// Capacity implements Tracker.
func (s *Shadow) Capacity() int { return s.inner.Capacity() }

// Threshold implements Tracker.
func (s *Shadow) Threshold() int64 { return s.inner.Threshold() }

// Reset implements Tracker.
func (s *Shadow) Reset() {
	s.inner.Reset()
	clear(s.counts)
	clear(s.hist)
	s.spill = 0
}
