// Package service turns the one-shot simulation engine into a serving
// subsystem: a job manager with a bounded FIFO queue and a worker pool, a
// content-addressed result cache keyed by a canonical hash of the job
// spec, per-job lifecycle state with progress and cancellation, and an
// in-process metrics registry exported as JSON and Prometheus text. The
// cmd/rrs-serve binary exposes it over HTTP; cmd/rrs-experiments can
// route its figure sweeps through a running server with --server.
//
// The unit of work is a Spec: a declarative, JSON-serializable
// description of one sim.Run (configuration knobs, workloads, a named
// mitigation, seed and budget). Identical specs hash identically, so a
// re-submitted sweep point is answered from the cache without touching a
// worker — the property that makes threshold/tracker sweeps à la
// Scalable-Secure Row-Swap or DAPPER cheap to iterate on.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mitigation names accepted by Spec.Mitigation.
const (
	MitNone        = "none"
	MitRRS         = "rrs"
	MitRRSCAM      = "rrs-cam"
	MitPARA        = "para"
	MitGraphene    = "graphene"
	MitIdeal       = "ideal"
	MitBlockHammer = "blockhammer"
	MitSRS         = "srs"
	MitRubix       = "rubix"
	MitMINT        = "mint"
	MitPrIDE       = "pride"
	MitDAPPER      = "dapper"
)

// MitigationNames lists the accepted Spec.Mitigation values.
func MitigationNames() []string {
	return []string{MitNone, MitRRS, MitRRSCAM, MitPARA, MitGraphene,
		MitIdeal, MitBlockHammer, MitSRS, MitRubix, MitMINT, MitPrIDE,
		MitDAPPER}
}

// Spec declares one simulation job. The zero value of every field means
// "use the default"; Normalize makes those defaults explicit so that two
// specs describing the same run hash identically.
type Spec struct {
	// Workloads names catalog workloads (trace.ByName), one per core in
	// rate mode; a single entry is replicated across all cores, and a
	// multi-entry list runs as a mix.
	Workloads []string `json:"workloads"`
	// Mitigation is one of MitigationNames (default "none").
	Mitigation string `json:"mitigation,omitempty"`
	// Blacklist is BlockHammer's blacklist threshold at full scale
	// (default 512); it is divided by Scale like T_RH.
	Blacklist uint32 `json:"blacklist,omitempty"`
	// Scale is the epoch shrink factor (config.Config.Scaled; default 1,
	// the full 64 ms epoch).
	Scale int `json:"scale,omitempty"`
	// Epochs, when positive, time-bounds the run to that many (scaled)
	// epochs; the instruction budget becomes effectively unlimited
	// unless InstructionsPerCore is also set.
	Epochs int `json:"epochs,omitempty"`
	// InstructionsPerCore bounds each core's retired instructions
	// (default: unlimited for epoch-bounded runs, 1 M otherwise).
	InstructionsPerCore int64 `json:"instructions_per_core,omitempty"`
	// Seed drives the synthetic traces (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`
	// Cores overrides the Table 2 core count (0 = default 8).
	Cores int `json:"cores,omitempty"`
	// RowHammerThreshold overrides the scaled T_RH (0 = keep Table 2's
	// 4800/Scale) — the Figure 10 sweep knob.
	RowHammerThreshold int `json:"row_hammer_threshold,omitempty"`
	// HotRowThreshold is the per-epoch activation count defining a "hot"
	// row for statistics (0 derives T_RH/6).
	HotRowThreshold int `json:"hot_row_threshold,omitempty"`
	// HotShare overrides the generator's hot-access share (0 = derive).
	HotShare float64 `json:"hot_share,omitempty"`
	// TimeoutSeconds bounds the job's wall-clock runtime (0 = the
	// server's default). It does not contribute to the content hash —
	// it cannot change a result, only whether one is produced.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Paranoid turns on the run's self-verification layer: structural
	// invariant sweeps and shadow-model differential oracles over the
	// RIT, trackers and DRAM state. Statistics are bit-identical either
	// way, but the result gains an invariant summary, so Paranoid
	// participates in the content hash (omitempty keeps pre-existing
	// spec hashes unchanged).
	Paranoid bool `json:"paranoid,omitempty"`
	// MaxSteps aborts the run with sim.ErrStepBudget after that many
	// memory accesses (0 = unlimited). A tripped budget changes the
	// outcome, so MaxSteps participates in the content hash.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Workers selects sim's execution mode: 0 is the sequential
	// reference path, any positive value the bank-sharded parallel mode
	// (see sim.Options.Workers). The two modes compute different
	// statistics by design, so the mode participates in the content hash
	// — but clamped to 0 or 1, because every positive worker count is
	// bit-identical: {workers: 2} and {workers: 8} are the same job and
	// share a cache entry (omitempty keeps pre-existing sequential spec
	// hashes unchanged).
	Workers int `json:"workers,omitempty"`
}

// Normalize returns a copy with every defaulted field made explicit, so
// that Hash is canonical: {"workloads":["bzip2"]} and the same spec with
// mitigation "none", scale 1 and seed 1 spelled out are the same job.
func (s Spec) Normalize() Spec {
	out := s
	if out.Mitigation == "" {
		out.Mitigation = MitNone
	}
	if out.Mitigation != MitBlockHammer {
		out.Blacklist = 0
	} else if out.Blacklist == 0 {
		out.Blacklist = 512
	}
	if out.Scale < 1 {
		out.Scale = 1
	}
	if out.Epochs < 0 {
		out.Epochs = 0
	}
	if out.Workers < 0 {
		out.Workers = 0
	}
	if out.InstructionsPerCore <= 0 {
		if out.Epochs > 0 {
			out.InstructionsPerCore = 1 << 62
		} else {
			out.InstructionsPerCore = 1_000_000
		}
	}
	out.Workloads = append([]string(nil), s.Workloads...)
	return out
}

// Validate reports why the spec cannot run: unknown workloads or
// mitigation, or a system configuration internal/config rejects.
func (s Spec) Validate() error {
	n := s.Normalize()
	if len(n.Workloads) == 0 {
		return fmt.Errorf("service: spec needs at least one workload")
	}
	for _, name := range n.Workloads {
		if _, ok := trace.ByName(name); !ok {
			return fmt.Errorf("service: unknown workload %q", name)
		}
	}
	if _, err := MitigationFactory(n.Mitigation, n.Scale, n.Blacklist); err != nil {
		return err
	}
	if n.Cores < 0 {
		return fmt.Errorf("service: Cores must be non-negative, got %d", n.Cores)
	}
	if n.MaxSteps < 0 {
		return fmt.Errorf("service: MaxSteps must be non-negative, got %d", n.MaxSteps)
	}
	cfg, err := n.configFor()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// Hash returns the canonical content address of the job: a hex SHA-256
// of the normalized spec's JSON, with the result-neutral TimeoutSeconds
// masked out. Two submissions with equal hashes produce byte-identical
// results (the engine is deterministic), which is what lets the result
// cache answer re-submissions without simulating.
func (s Spec) Hash() string {
	n := s.Normalize()
	n.TimeoutSeconds = 0
	// Only the execution mode is content: any positive worker count
	// yields bit-identical results, so all parallel submissions share
	// one cache entry.
	if n.Workers > 1 {
		n.Workers = 1
	}
	b, err := json.Marshal(n)
	if err != nil {
		// Spec is a closed struct of scalars and strings; Marshal cannot
		// fail on it.
		panic(fmt.Sprintf("service: hashing spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// configFor builds the scaled, overridden system configuration.
func (s Spec) configFor() (config.Config, error) {
	n := s.Normalize()
	cfg := config.Default().Scaled(n.Scale)
	if n.Cores > 0 {
		cfg.Cores = n.Cores
	}
	if n.RowHammerThreshold > 0 {
		cfg.RowHammerThreshold = n.RowHammerThreshold
	}
	return cfg, cfg.Validate()
}

// Options compiles the spec into sim.Options. The caller owns Context
// and Progress; everything else — including the mitigation factory — is
// derived from the spec.
func (s Spec) Options() (sim.Options, error) {
	n := s.Normalize()
	if err := n.Validate(); err != nil {
		return sim.Options{}, err
	}
	cfg, err := n.configFor()
	if err != nil {
		return sim.Options{}, err
	}
	ws := make([]trace.Workload, len(n.Workloads))
	for i, name := range n.Workloads {
		ws[i], _ = trace.ByName(name)
	}
	factory, err := MitigationFactory(n.Mitigation, n.Scale, n.Blacklist)
	if err != nil {
		return sim.Options{}, err
	}
	opts := sim.Options{
		Config:              cfg,
		Workloads:           ws,
		Mitigation:          factory,
		InstructionsPerCore: n.InstructionsPerCore,
		Seed:                n.Seed,
		HotRowThreshold:     n.HotRowThreshold,
		HotShare:            n.HotShare,
		Paranoid:            n.Paranoid,
		MaxSteps:            n.MaxSteps,
		Workers:             n.Workers,
	}
	if n.Epochs > 0 {
		opts.CycleLimit = int64(n.Epochs) * cfg.EpochCycles
	}
	return opts, nil
}

// MitigationFactory maps a symbolic mitigation name to a constructor
// over a fresh DRAM system. The same table serves rrs-sim's -mitigation
// flag and the job service, so a served job and a local CLI run with the
// same knobs build byte-identical defenses. The BlockHammer blacklist
// threshold is given at full scale and divided by the epoch scale, like
// T_RH.
func MitigationFactory(name string, scale int, blacklist uint32) (func(*dram.System) memctrl.Mitigation, error) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "", MitNone:
		return nil, nil
	case MitRRS, MitRRSCAM:
		cam := name == MitRRSCAM
		return func(sys *dram.System) memctrl.Mitigation {
			p := core.ScaledParams(sys.Config())
			p.UseCAMTracker = cam
			r, err := core.New(sys, p)
			if err != nil {
				panic(err)
			}
			return r
		}, nil
	case MitPARA:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewPARA(sys,
				mitigation.DefaultPARAProbability(sys.Config().RowHammerThreshold), 7)
		}, nil
	case MitGraphene:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewGraphene(sys,
				mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold), 1, 7)
		}, nil
	case MitIdeal:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewIdeal(sys,
				mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold))
		}, nil
	case MitBlockHammer:
		if blacklist == 0 {
			blacklist = 512
		}
		return func(sys *dram.System) memctrl.Mitigation {
			p := mitigation.DefaultBlockHammerParams()
			p.BlacklistThreshold = max(1, blacklist/uint32(scale))
			return mitigation.NewBlockHammer(sys, p)
		}, nil
	case MitSRS:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewSRS(sys, mitigation.ScaledSRSParams(sys.Config()))
		}, nil
	case MitRubix:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewRubix(sys,
				mitigation.DefaultPARAProbability(sys.Config().RowHammerThreshold), 11)
		}, nil
	case MitMINT:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewMINT(sys, 13)
		}, nil
	case MitPrIDE:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewPrIDE(sys,
				mitigation.DefaultPrIDEProbability(sys.Config()), 17)
		}, nil
	case MitDAPPER:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewDAPPER(sys,
				mitigation.DefaultPrIDEProbability(sys.Config()), 19)
		}, nil
	default:
		return nil, fmt.Errorf("service: unknown mitigation %q (want one of %v)",
			name, MitigationNames())
	}
}
