package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// Options configures one fleet node. Self must appear in Peers; every
// node of a fleet is started with the same roster (order irrelevant)
// and decides ownership locally from it.
type Options struct {
	// Self is this node's roster entry. Its ID becomes the job-id
	// prefix (service.Options.NodeID).
	Self Peer
	// Peers is the full fleet roster, Self included.
	Peers []Peer
	// Service configures the node's local manager. Run is wrapped with
	// the fleet-wide cache fan-out (nil falls through to the built-in
	// engine), NodeID is forced to Self.ID, and a nil Metrics gets a
	// fresh registry shared with the fleet counters.
	Service service.Options
	// HTTPClient carries all peer traffic — forwards, probes, proxies,
	// steals. Tests inject fault-injecting or retargeting transports
	// here. nil uses a 30 s-timeout default client.
	HTTPClient *http.Client
	// Retry shapes forward/donate retry loops (resilience defaults
	// apply to the zero value).
	Retry resilience.Policy

	// ProbeInterval is the failure-detector cadence (default 500 ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2 s).
	ProbeTimeout time.Duration
	// Rise and Fall are the hysteresis thresholds: consecutive probe
	// successes to rejoin the ring and failures to leave it (defaults
	// 2 and 3).
	Rise, Fall int

	// FanoutTimeout bounds the fleet-wide cache lookup before a run
	// (default 1 s). The lookup is best-effort: a miss or timeout just
	// runs the simulation.
	FanoutTimeout time.Duration

	// StealInterval is the idle-node work-stealing cadence (default
	// 250 ms; negative disables stealing).
	StealInterval time.Duration
	// StealThreshold is the minimum backlog a victim must have before
	// it lends work (default 2 — stealing a lone queued job usually
	// loses the race with the victim's own workers).
	StealThreshold int
	// LeaseTimeout is how long a stolen job may stay out before the
	// victim reclaims and requeues it (default 30 s). It bounds the
	// damage of a thief dying mid-run.
	LeaseTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.Rise <= 0 {
		o.Rise = 2
	}
	if o.Fall <= 0 {
		o.Fall = 3
	}
	if o.FanoutTimeout <= 0 {
		o.FanoutTimeout = time.Second
	}
	if o.StealInterval == 0 {
		o.StealInterval = 250 * time.Millisecond
	}
	if o.StealThreshold <= 0 {
		o.StealThreshold = 2
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	return o
}

// internalPrefix mounts the unrouted local service API. Peer traffic
// (forwarded submits, proxied polls, probes) targets it so a forwarded
// request is handled by the receiving node, never re-forwarded — loop
// prevention is structural, not a header convention.
const internalPrefix = "/v1/fleet/local"

// lease tracks one job lent to a thief.
type lease struct {
	job     *service.Job
	thief   string
	expires time.Time
}

// Node is one fleet member: a local manager plus the peer layer —
// ring routing, failure detection, forwarding, stealing, cache fan-out.
type Node struct {
	opts    Options
	self    Peer
	remotes []Peer
	mgr     *service.Manager
	local   http.Handler // the plain single-node API over mgr
	met     *service.Metrics
	det     *detector
	hc      *http.Client

	// clients are retrying service.Clients per remote peer, targeting
	// the peer's internal (unrouted) API surface.
	clients map[string]*service.Client

	mu       sync.Mutex
	lent     map[string]*lease
	stealIdx int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a node and its manager. The caller owns journal replay
// (node.Manager().Restore) and must Start the background loops once
// the node's listener is up.
func New(opts Options) (*Node, error) {
	opts = opts.withDefaults()
	if opts.Self.ID == "" || opts.Self.URL == "" {
		return nil, fmt.Errorf("fleet: Self needs an ID and a URL")
	}
	var remotes []Peer
	seen := make(map[string]bool, len(opts.Peers))
	selfInRoster := false
	for _, p := range opts.Peers {
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("fleet: peer %+v needs an ID and a URL", p)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("fleet: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		if p.ID == opts.Self.ID {
			selfInRoster = true
			continue
		}
		remotes = append(remotes, p)
	}
	if !selfInRoster {
		return nil, fmt.Errorf("fleet: Self %q not in the peer roster", opts.Self.ID)
	}

	n := &Node{
		opts:    opts,
		self:    opts.Self,
		remotes: remotes,
		hc:      opts.HTTPClient,
		clients: make(map[string]*service.Client, len(remotes)),
		lent:    make(map[string]*lease),
		stop:    make(chan struct{}),
	}
	for _, p := range remotes {
		n.clients[p.ID] = service.NewClient(p.URL+internalPrefix,
			service.WithHTTPClient(n.hc),
			service.WithRetryPolicy(opts.Retry))
	}

	so := opts.Service
	so.NodeID = opts.Self.ID
	if so.Metrics == nil {
		so.Metrics = service.NewMetrics()
	}
	n.met = so.Metrics
	inner := so.Run
	if inner == nil {
		inner = service.RunSpec
	}
	so.Run = n.fanoutRun(inner)
	n.registerMetrics()
	n.mgr = service.NewManager(so)
	n.local = service.Handler(n.mgr)

	n.det = newDetector(remotes, opts.Rise, opts.Fall, opts.ProbeTimeout,
		n.probePeer, func(p Peer, routable bool) {
			n.met.Inc("rrs_fleet_peer_flaps_total", 1)
		})
	return n, nil
}

func (n *Node) registerMetrics() {
	for name, help := range map[string]string{
		"rrs_fleet_forwards_total":            "Submissions forwarded to their ring owner.",
		"rrs_fleet_forward_failovers_total":   "Forward attempts moved to the next-ranked peer after the preferred owner failed.",
		"rrs_fleet_local_fallbacks_total":     "Submissions run locally because every remote candidate failed.",
		"rrs_fleet_proxied_total":             "Job status/result/cancel requests proxied to the job's home node.",
		"rrs_fleet_proxy_misses_total":        "Proxied requests whose home node was unreachable (answered 404 so the client resubmits).",
		"rrs_fleet_cache_fanout_checks_total": "Runs that asked the fleet's caches before simulating.",
		"rrs_fleet_cache_fanout_hits_total":   "Runs answered by a peer's result cache instead of simulating.",
		"rrs_fleet_steals_total":              "Jobs this node stole from a peer and completed.",
		"rrs_fleet_steal_failures_total":      "Stolen runs that failed locally (the victim's lease reclaims the job).",
		"rrs_fleet_lent_total":                "Queued jobs lent to a thief peer.",
		"rrs_fleet_donations_accepted_total":  "Stolen results donated back and accepted.",
		"rrs_fleet_donations_stale_total":     "Donations dropped because the job already had a terminal state or was re-running.",
		"rrs_fleet_reclaims_total":            "Stolen-job leases that expired and requeued locally.",
		"rrs_fleet_peer_flaps_total":          "Peer routability transitions (either direction) after hysteresis.",
	} {
		n.met.Counter(name, help)
	}
	n.met.Gauge("rrs_fleet_peers", "Fleet roster size, self included.",
		func() float64 { return float64(len(n.remotes) + 1) })
	n.met.Gauge("rrs_fleet_peers_live", "Routable peers, self included unless draining.",
		func() float64 { return float64(len(n.liveSet())) })
	n.met.Gauge("rrs_fleet_lent", "Jobs currently lent to thief peers.",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(len(n.lent))
		})
}

// Manager exposes the node's local manager (journal restore, tests).
func (n *Node) Manager() *service.Manager { return n.mgr }

// Start launches the background loops: failure-detector probes, the
// idle work-stealing loop, and the lease reaper.
func (n *Node) Start() {
	n.loop(n.opts.ProbeInterval, func(ctx context.Context) { n.det.ProbeOnce(ctx) })
	if n.opts.StealInterval > 0 {
		n.loop(n.opts.StealInterval, func(ctx context.Context) { n.StealOnce(ctx) })
	}
	n.loop(reaperInterval(n.opts.LeaseTimeout), func(context.Context) { n.reapLeases() })
}

func reaperInterval(lease time.Duration) time.Duration {
	if iv := lease / 4; iv < time.Second {
		return iv
	}
	return time.Second
}

// loop runs fn every interval until Close.
func (n *Node) loop(interval time.Duration, fn func(ctx context.Context)) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-n.stop
			cancel()
		}()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				fn(ctx)
			}
		}
	}()
}

// Close stops the background loops. It does not touch the manager —
// pair it with Drain or the manager's Shutdown.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// StartDrain flips the node into drain mode: /readyz answers 503 (so
// peers' failure detectors pull this node from their rings within a
// probe round), Submit refuses new work, and the steal loop goes idle.
func (n *Node) StartDrain() { n.mgr.StartDrain() }

// Drain gracefully winds the node down: stop accepting, give accepted
// jobs until ctx to finish, journal-requeue the rest (see
// service.Manager.Drain), and stop the peer loops.
func (n *Node) Drain(ctx context.Context) error {
	n.StartDrain()
	err := n.mgr.Drain(ctx)
	n.Close()
	return err
}

// ProbeOnce drives one synchronous failure-detector round — how tests
// advance the detector deterministically.
func (n *Node) ProbeOnce(ctx context.Context) { n.det.ProbeOnce(ctx) }

// probePeer is one health probe: liveness and readiness must both
// pass for the peer to count as routable.
func (n *Node) probePeer(ctx context.Context, p Peer) error {
	c := service.NewClient(p.URL,
		service.WithHTTPClient(n.hc),
		service.WithRetryPolicy(resilience.Policy{MaxAttempts: 1}))
	if err := c.Health(ctx); err != nil {
		return err
	}
	return c.Ready(ctx)
}

// liveSet is the ring: routable remote peers plus self unless
// draining.
func (n *Node) liveSet() []Peer {
	live := n.det.Routable()
	if !n.mgr.Draining() {
		live = append(live, n.self)
	}
	return live
}

// peerByID resolves a roster entry (self excluded).
func (n *Node) peerByID(id string) (Peer, bool) {
	for _, p := range n.remotes {
		if p.ID == id {
			return p, true
		}
	}
	return Peer{}, false
}

// fanoutRun wraps the manager's executor with the fleet-wide cache
// lookup: before simulating, ask every routable peer's result cache for
// the spec's content hash; any hit is returned as this job's result
// (and enters the local cache through the normal completion path).
func (n *Node) fanoutRun(inner service.RunFunc) service.RunFunc {
	return func(ctx context.Context, spec service.Spec, progress func(done, total int64)) (sim.Result, error) {
		if res, ok := n.peerCached(ctx, spec.Hash()); ok {
			n.met.Inc("rrs_fleet_cache_fanout_hits_total", 1)
			if progress != nil {
				progress(1, 1)
			}
			return res, nil
		}
		return inner(ctx, spec, progress)
	}
}

// cacheEnvelope is the GET /v1/fleet/cache/{hash} payload.
type cacheEnvelope struct {
	Hash   string     `json:"hash"`
	Result sim.Result `json:"result"`
}

// peerCached fans a cache lookup out to all routable peers and returns
// the first hit. Best-effort: errors and timeouts are misses.
func (n *Node) peerCached(ctx context.Context, hash string) (sim.Result, bool) {
	peers := n.det.Routable()
	if len(peers) == 0 {
		return sim.Result{}, false
	}
	n.met.Inc("rrs_fleet_cache_fanout_checks_total", 1)
	fctx, cancel := context.WithTimeout(ctx, n.opts.FanoutTimeout)
	defer cancel()
	type answer struct {
		res sim.Result
		ok  bool
	}
	ch := make(chan answer, len(peers))
	for _, p := range peers {
		go func(p Peer) {
			res, ok := n.fetchCached(fctx, p, hash)
			ch <- answer{res, ok}
		}(p)
	}
	for range peers {
		if a := <-ch; a.ok {
			return a.res, true
		}
	}
	return sim.Result{}, false
}

func (n *Node) fetchCached(ctx context.Context, p Peer, hash string) (sim.Result, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.URL+"/v1/fleet/cache/"+hash, nil)
	if err != nil {
		return sim.Result{}, false
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return sim.Result{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sim.Result{}, false
	}
	var env cacheEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return sim.Result{}, false
	}
	return env.Result, true
}
