package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// gatedFleet builds a 2-node fleet where n1's engine blocks on gate
// (so its queue backs up) and n2's runs instantly.
func gatedFleet(t *testing.T, gate chan struct{}, mod func(i int, o *Options)) []*tfNode {
	t.Helper()
	return startFleet(t, 2, func(i int, o *Options) {
		if i == 0 {
			o.Service.Run = func(ctx context.Context, spec service.Spec, _ func(int64, int64)) (sim.Result, error) {
				select {
				case <-gate:
				case <-ctx.Done():
					return sim.Result{}, ctx.Err()
				}
				return sim.Result{IPC: float64(spec.Seed)}, nil
			}
		}
		if mod != nil {
			mod(i, o)
		}
	})
}

func TestStealRunsRemotelyAndDonatesBack(t *testing.T) {
	gate := make(chan struct{})
	nodes := gatedFleet(t, gate, nil)
	defer close(gate)
	victim, thief := nodes[0], nodes[1]
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Back n1 up: 1 running (blocked on the gate) + 2 queued, which
	// clears the steal threshold of 2.
	c := localClient(victim)
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		v, err := c.Submit(ctx, uniqueSpec(seed))
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		ids = append(ids, v.ID)
	}
	waitFor(t, func() bool {
		backlog, busy, _ := victim.node.mgr.Load()
		return busy == 1 && backlog == 2
	})

	// One steal round on the idle n2: it should borrow n1's oldest
	// queued job (the seed-2 submission), run it, and donate.
	if !thief.node.StealOnce(ctx) {
		t.Fatalf("StealOnce found no work")
	}

	// The stolen job completes on its home node with the thief's result
	// while the gate still blocks n1's own worker.
	j, ok := victim.node.mgr.Get(ids[1])
	if !ok {
		t.Fatalf("stolen job %s vanished from victim", ids[1])
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("stolen job never completed")
	}
	if v := j.Snapshot(); v.State != service.StateDone {
		t.Fatalf("stolen job state = %s (%s), want done", v.State, v.Error)
	}
	res, _ := j.Result()
	if res.IPC != 2 {
		t.Fatalf("stolen job IPC = %v, want 2", res.IPC)
	}
	if thief.runs.Load() != 1 {
		t.Fatalf("thief ran %d jobs, want 1", thief.runs.Load())
	}
	if counter(victim, "rrs_fleet_lent_total") != 1 ||
		counter(victim, "rrs_fleet_donations_accepted_total") != 1 {
		t.Fatalf("victim counters: lent=%d accepted=%d, want 1/1",
			counter(victim, "rrs_fleet_lent_total"),
			counter(victim, "rrs_fleet_donations_accepted_total"))
	}
	if counter(thief, "rrs_fleet_steals_total") != 1 {
		t.Fatalf("thief steals = %d, want 1", counter(thief, "rrs_fleet_steals_total"))
	}
}

func TestStealRespectsIdlenessAndThreshold(t *testing.T) {
	gate := make(chan struct{})
	nodes := gatedFleet(t, gate, nil)
	defer close(gate)
	victim, thief := nodes[0], nodes[1]
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Only 1 queued job on the victim: below the threshold of 2,
	// nothing is lent.
	c := localClient(victim)
	for seed := uint64(10); seed <= 11; seed++ {
		if _, err := c.Submit(ctx, uniqueSpec(seed)); err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
	}
	waitFor(t, func() bool {
		backlog, busy, _ := victim.node.mgr.Load()
		return busy == 1 && backlog == 1
	})
	if thief.node.StealOnce(ctx) {
		t.Fatalf("stole below the victim's threshold")
	}

	// A draining thief must not steal either.
	if _, err := c.Submit(ctx, uniqueSpec(12)); err != nil {
		t.Fatalf("submit 12: %v", err)
	}
	waitFor(t, func() bool { backlog, _, _ := victim.node.mgr.Load(); return backlog == 2 })
	thief.node.StartDrain()
	if thief.node.StealOnce(ctx) {
		t.Fatalf("draining thief stole work")
	}
}

func TestStealLeaseReclaimAndStaleDonation(t *testing.T) {
	gate := make(chan struct{})
	nodes := gatedFleet(t, gate, func(i int, o *Options) {
		o.LeaseTimeout = time.Millisecond
	})
	victim := nodes[0]
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	c := localClient(victim)
	var ids []string
	for seed := uint64(20); seed <= 22; seed++ {
		v, err := c.Submit(ctx, uniqueSpec(seed))
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		ids = append(ids, v.ID)
	}
	waitFor(t, func() bool {
		backlog, busy, _ := victim.node.mgr.Load()
		return busy == 1 && backlog == 2
	})

	// Steal by hand as a thief that will never donate in time.
	grant := postSteal(t, victim, "ghost")
	if grant.ID != ids[1] {
		t.Fatalf("lent %s, want oldest queued %s", grant.ID, ids[1])
	}

	// The lease expires and the reaper hands the job back to the local
	// queue.
	time.Sleep(5 * time.Millisecond)
	victim.node.reapLeases()
	if counter(victim, "rrs_fleet_reclaims_total") != 1 {
		t.Fatalf("reclaims = %d, want 1", counter(victim, "rrs_fleet_reclaims_total"))
	}

	// A donation arriving after the reclaim is stale: dropped, not
	// double-completing the job.
	reply := postDonation(t, victim, donation{ID: grant.ID, OK: true,
		Result: sim.Result{IPC: 999}})
	if reply.Accepted {
		t.Fatalf("stale donation accepted")
	}
	if counter(victim, "rrs_fleet_donations_stale_total") != 1 {
		t.Fatalf("stale donations = %d, want 1",
			counter(victim, "rrs_fleet_donations_stale_total"))
	}

	// With the gate open the reclaimed job runs locally — with its own
	// deterministic result, not the stale donation's.
	close(gate)
	j, ok := victim.node.mgr.Get(grant.ID)
	if !ok {
		t.Fatalf("reclaimed job vanished")
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("reclaimed job never ran")
	}
	res, _ := j.Result()
	if res.IPC != 21 {
		t.Fatalf("reclaimed job IPC = %v, want 21 (local run, not the stale 999)", res.IPC)
	}
}

func postSteal(t *testing.T, n *tfNode, thief string) stealGrant {
	t.Helper()
	body, _ := json.Marshal(stealRequest{Thief: thief})
	resp, err := http.Post(n.srv.URL+"/v1/fleet/steal", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatalf("steal: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steal status = %d, want 200", resp.StatusCode)
	}
	var g stealGrant
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		t.Fatalf("decoding grant: %v", err)
	}
	return g
}

func postDonation(t *testing.T, n *tfNode, d donation) donationReply {
	t.Helper()
	body, _ := json.Marshal(d)
	resp, err := http.Post(n.srv.URL+"/v1/fleet/donate", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatalf("donate: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("donate status = %d, want 200", resp.StatusCode)
	}
	var rep donationReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	return rep
}
