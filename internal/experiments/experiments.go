// Package experiments regenerates every table and figure of the RRS
// paper's evaluation. Each experiment returns a formatted text table whose
// rows match the paper's, plus structured results for tests and the
// benchmark harness. EXPERIMENTS.md records paper-vs-measured values.
//
// Performance experiments run at a reduced scale (Scale, default 16): the
// refresh epoch, Row Hammer threshold and swap-operation cost all shrink
// by the same factor, which preserves the quantities the results are made
// of — tracker capacity (ACT_max/T_RRS), per-epoch hot-row capacity, and
// the fraction of an epoch spent on swaps — while cutting simulation time
// by the same factor.
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scale holds the common knobs for the simulation-backed experiments.
type Scale struct {
	// Factor divides the epoch, T_RH and swap cost (16 => 4 ms epochs).
	Factor int
	// Epochs is the simulated duration per run, in (scaled) epochs.
	Epochs int
	// Seed drives the synthetic traces.
	Seed uint64
	// Workloads optionally restricts the workload set (nil = Table 3's
	// 28 detailed workloads).
	Workloads []trace.Workload
	// Runner, when non-nil, executes the named-mitigation sweep points
	// (the tables and figures built from job specs) instead of an
	// in-process sim.Run — e.g. service.Client.Run to offload a sweep to
	// a running rrs-serve, or Manager.RunSync to share a local result
	// cache. Experiments that build bespoke mitigation parameters (the
	// probabilistic and RowClone ablations) always run locally.
	Runner func(service.Spec) (sim.Result, error)
	// Sweeper, when non-nil, executes a whole axes product server-side in
	// one call (POST /v1/sweeps via service.Client.RunSweep, or
	// Manager.SubmitSweep in-process) and returns the child results keyed
	// by child spec content hash. The figures and the shootout then look
	// their points up instead of submitting one job per point; any point
	// outside the sweep falls back to Runner/in-process. nil keeps the
	// per-point path.
	Sweeper func(service.SweepSpec) (map[string]sim.Result, error)
}

// DefaultScale returns the standard experiment scale: 1/16 epochs
// (4 ms), two epochs per run.
func DefaultScale() Scale {
	return Scale{Factor: 16, Epochs: 2, Seed: 0xEC0}
}

// Config returns the scaled system configuration.
func (s Scale) Config() config.Config {
	f := s.Factor
	if f < 1 {
		f = 1
	}
	return config.Default().Scaled(f)
}

// workloads returns the experiment's workload list.
func (s Scale) workloads() []trace.Workload {
	if len(s.Workloads) > 0 {
		return s.Workloads
	}
	return trace.Table3Workloads()
}

// options builds sim options for one workload at this scale.
func (s Scale) options(w trace.Workload) sim.Options {
	cfg := s.Config()
	epochs := s.Epochs
	if epochs < 1 {
		epochs = 1
	}
	return sim.Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62, // time-bounded, not instruction-bounded
		CycleLimit:          int64(epochs) * cfg.EpochCycles,
		Seed:                s.Seed,
	}
}

// spec builds the service job spec for one sweep point: the given
// workloads at this scale under a named mitigation. It describes the
// same run as options() + a MitigationFactory — the service executes
// specs through the identical code path, so local and served sweeps
// agree bit-for-bit.
func (s Scale) spec(mit string, blacklist uint32, ws ...trace.Workload) service.Spec {
	epochs := s.Epochs
	if epochs < 1 {
		epochs = 1
	}
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return service.Spec{
		Workloads:  names,
		Mitigation: mit,
		Blacklist:  blacklist,
		Scale:      max(1, s.Factor),
		Epochs:     epochs,
		Seed:       s.Seed,
	}
}

// runSpec executes one sweep point through the Runner (a job service)
// or, by default, in-process.
func (s Scale) runSpec(spec service.Spec) (sim.Result, error) {
	if s.Runner != nil {
		return s.Runner(spec)
	}
	opts, err := spec.Options()
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(opts)
}

// normalizedSpec measures spec's mitigated IPC over the unprotected
// baseline for the same spec (the paper's normalized-performance
// metric), routing both runs through runSpec so they hit the Runner's
// cache.
func (s Scale) normalizedSpec(spec service.Spec) (float64, sim.Result, sim.Result, error) {
	return s.normalizedVia(s.runSpec, spec)
}

// normalizedVia is normalizedSpec over an arbitrary point executor —
// how the sweep-backed figures (see sweepRunner) reuse the exact
// baseline/mitigated pairing of the per-point path.
func (s Scale) normalizedVia(run func(service.Spec) (sim.Result, error), spec service.Spec) (float64, sim.Result, sim.Result, error) {
	base := spec
	base.Mitigation = service.MitNone
	base.Blacklist = 0
	baseRes, err := run(base)
	if err != nil {
		return 0, sim.Result{}, sim.Result{}, err
	}
	mitRes, err := run(spec)
	if err != nil {
		return 0, sim.Result{}, sim.Result{}, err
	}
	if baseRes.IPC == 0 {
		return 0, baseRes, mitRes, fmt.Errorf("experiments: baseline IPC is zero")
	}
	return mitRes.IPC / baseRes.IPC, baseRes, mitRes, nil
}

// RRSFactory builds an RRS mitigation with the swap cost scaled to match
// the shrunken epoch.
func (s Scale) RRSFactory() func(*dram.System) memctrl.Mitigation {
	return func(sys *dram.System) memctrl.Mitigation {
		r, err := core.New(sys, core.ScaledParams(sys.Config()))
		if err != nil {
			panic(err)
		}
		return r
	}
}

// BlockHammerFactory builds the BlockHammer baseline with a blacklist
// threshold scaled like T_RH (the paper evaluates N_BL of 512 and 1K at
// T_RH = 4.8K).
func (s Scale) BlockHammerFactory(blacklist uint32) func(*dram.System) memctrl.Mitigation {
	factor := uint32(s.Factor)
	if factor < 1 {
		factor = 1
	}
	return func(sys *dram.System) memctrl.Mitigation {
		p := mitigation.DefaultBlockHammerParams()
		p.BlacklistThreshold = max(1, blacklist/factor)
		return mitigation.NewBlockHammer(sys, p)
	}
}
