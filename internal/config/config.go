// Package config holds the simulated system configuration.
//
// The defaults mirror Table 2 of the RRS paper (ASPLOS 2022): an 8-core
// 3.2 GHz out-of-order CPU with an 8 MB shared LLC in front of a 2-channel
// DDR4-3200 memory system with 16 banks per rank and 128K rows of 8 KB per
// bank. All timing values are kept in memory-bus cycles (1.6 GHz), the
// granularity the memory controller schedules at.
package config

import "fmt"

// Timing and structural constants for the default DDR4-3200 system.
const (
	// BusGHz is the memory bus clock (DDR transfers at 2x this rate).
	BusGHz = 1.6
	// CPUGHz is the core clock.
	CPUGHz = 3.2
	// CPUCyclesPerBusCycle converts bus cycles to CPU cycles.
	CPUCyclesPerBusCycle = CPUGHz / BusGHz
)

// Config describes one simulated system. The zero value is not useful;
// construct with Default and mutate, or use the With* helpers.
type Config struct {
	// Cores is the number of trace-driven cores.
	Cores int
	// ROBSize is the per-core reorder-buffer capacity in instructions.
	ROBSize int
	// FetchWidth is instructions fetched (and retired) per CPU cycle.
	FetchWidth int

	// LLCBytes is the shared last-level cache capacity.
	LLCBytes int
	// LLCWays is the LLC associativity.
	LLCWays int
	// LineBytes is the cache line (and DRAM burst) size.
	LineBytes int

	// Channels, Ranks and Banks describe the DRAM topology. Ranks is per
	// channel, Banks per rank.
	Channels int
	Ranks    int
	Banks    int
	// RowsPerBank is the number of DRAM rows in each bank.
	RowsPerBank int
	// RowBytes is the size of one DRAM row (the unit RRS swaps).
	RowBytes int

	// DRAM timing in memory-bus cycles (1.6 GHz => 1 cycle = 0.625 ns).
	TRCD   int // ACT to column command
	TRP    int // precharge latency
	TCAS   int // column command to data
	TRC    int // ACT to ACT, same bank
	TRFC   int // refresh cycle time
	TREFI  int // refresh interval
	TBurst int // data-bus cycles occupied by one line transfer

	// EpochCycles is the refresh window (64 ms) in bus cycles; this is the
	// tracker reset period for RRS ("Epoch" in the paper).
	EpochCycles int64

	// RowHammerThreshold is T_RH: activations on one row within an epoch
	// that can induce a bit flip in a neighbouring row.
	RowHammerThreshold int

	// RITLatencyCPUCycles is added to every memory access for the RIT
	// lookup (the paper uses 4 CPU cycles).
	RITLatencyCPUCycles int

	// ClosedPage selects a closed-page row-buffer policy: the controller
	// precharges after every column access, trading row-buffer hits for
	// faster conflict handling. The paper's USIMM baseline keeps rows
	// open (the default here).
	ClosedPage bool
}

// nanoseconds -> bus cycles for the default 1.6 GHz bus.
func nsToBusCycles(ns float64) int {
	return int(ns*BusGHz + 0.5)
}

// Default returns the paper's Table 2 configuration.
func Default() Config {
	return Config{
		Cores:      8,
		ROBSize:    192,
		FetchWidth: 4,

		LLCBytes:  8 << 20,
		LLCWays:   16,
		LineBytes: 64,

		Channels:    2,
		Ranks:       1,
		Banks:       16,
		RowsPerBank: 128 << 10,
		RowBytes:    8 << 10,

		TRCD:   nsToBusCycles(14),   // 14 ns
		TRP:    nsToBusCycles(14),   // 14 ns
		TCAS:   nsToBusCycles(14),   // 14 ns
		TRC:    nsToBusCycles(45),   // 45 ns
		TRFC:   nsToBusCycles(350),  // 350 ns
		TREFI:  nsToBusCycles(7800), // 7.8 us
		TBurst: 4,                   // 64 B line in 4 bus cycles (DDR 3200)

		EpochCycles: int64(64e-3 * BusGHz * 1e9), // 64 ms

		RowHammerThreshold: 4800,

		RITLatencyCPUCycles: 4,
	}
}

// Scaled returns a copy of c with the epoch shrunk by factor (> 1 shrinks).
// The Row Hammer threshold scales with the epoch so that the ratio of
// maximum activations to threshold — and hence structure sizes and the
// security argument — is preserved. Scaling only affects experiment
// runtime, not the shape of results.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	c.EpochCycles /= int64(factor)
	c.RowHammerThreshold /= factor
	if c.RowHammerThreshold < 6 {
		c.RowHammerThreshold = 6 // keep k=6 swaps representable
	}
	return c
}

// ACTMax returns the maximum number of activations one bank can perform in
// an epoch, discounting the time spent in refresh (the paper's 1.36 M for
// the default configuration: 64 ms x (1 - tRFC/tREFI) / 45 ns).
func (c Config) ACTMax() int {
	available := c.EpochCycles - c.EpochCycles/int64(c.TREFI)*int64(c.TRFC)
	return int(available / int64(c.TRC))
}

// TotalRows returns rows across the whole memory system.
func (c Config) TotalRows() int {
	return c.Channels * c.Ranks * c.Banks * c.RowsPerBank
}

// MemoryBytes returns the total DRAM capacity.
func (c Config) MemoryBytes() int64 {
	return int64(c.TotalRows()) * int64(c.RowBytes)
}

// Validate reports configuration errors that would make a simulation
// meaningless.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.ROBSize <= 0:
		return fmt.Errorf("config: ROBSize must be positive, got %d", c.ROBSize)
	case c.FetchWidth <= 0:
		return fmt.Errorf("config: FetchWidth must be positive, got %d", c.FetchWidth)
	case c.Channels <= 0 || c.Ranks <= 0 || c.Banks <= 0:
		return fmt.Errorf("config: topology %dx%dx%d invalid", c.Channels, c.Ranks, c.Banks)
	case c.RowsPerBank <= 0:
		return fmt.Errorf("config: RowsPerBank must be positive, got %d", c.RowsPerBank)
	case c.RowBytes <= 0 || c.RowBytes%c.LineBytes != 0:
		return fmt.Errorf("config: RowBytes %d must be a positive multiple of LineBytes %d", c.RowBytes, c.LineBytes)
	case c.LLCBytes <= 0 || c.LLCWays <= 0:
		return fmt.Errorf("config: LLC %dB/%d-way invalid", c.LLCBytes, c.LLCWays)
	case c.TRC <= 0 || c.TRCD <= 0 || c.TRP <= 0 || c.TCAS <= 0:
		return fmt.Errorf("config: DRAM timing must be positive")
	case c.TREFI <= 0 || c.TRFC <= 0 || c.TRFC >= c.TREFI:
		return fmt.Errorf("config: need 0 < TRFC < TREFI, got %d/%d", c.TRFC, c.TREFI)
	case c.EpochCycles <= 0:
		return fmt.Errorf("config: EpochCycles must be positive")
	case c.RowHammerThreshold <= 0:
		return fmt.Errorf("config: RowHammerThreshold must be positive")
	}
	return nil
}

// String summarises the configuration in one line.
func (c Config) String() string {
	return fmt.Sprintf("%d-core, %dMB LLC, %dch x %drank x %dbank x %dK rows, T_RH=%d",
		c.Cores, c.LLCBytes>>20, c.Channels, c.Ranks, c.Banks, c.RowsPerBank>>10,
		c.RowHammerThreshold)
}
