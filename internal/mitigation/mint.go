package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// MINT models the minimalist in-DRAM tracker of arXiv 2407.16038: per
// bank, ONE row register and a sampling counter. At the start of each
// tREFI window the bank draws a uniform index in [0, W) where W is the
// number of activations that fit in the window; the activation at that
// index is latched, and at the window boundary the latched row's
// neighbours are refreshed. Uniform sampling makes every activation
// equally likely to be selected, so a row hammered k times in a window
// is mitigated with probability k/W per window — the paper shows this
// matches Graphene-class security at a tiny fraction of the state.
//
// Simplifications versus the paper, documented in DESIGN.md §11: the
// window boundary is detected lazily on the next activation of the same
// bank (an idle bank's pending refresh fires on its next use or is
// dropped at the epoch boundary, where the global refresh covers it).
type MINT struct {
	verifier
	observer
	sys *dram.System
	cfg config.Config
	// w is the per-window activation budget the sampler draws from.
	w     int64
	trefi int64
	units []mintUnit
	stat  VictimStats
}

// mintUnit is one bank's MINT hardware: one sampled-row register plus
// the sampling counter — the paper's "1 counter" cost.
type mintUnit struct {
	rng *prince.CTR
	// window is the index (now/tREFI) the unit last observed.
	window int64
	// actIdx counts activations within the current window.
	actIdx int64
	// pickIdx is this window's sampled activation index in [0, w).
	pickIdx int64
	// latched is the physical row captured at pickIdx, or -1.
	latched int32
}

// NewMINT creates the mitigation over sys.
func NewMINT(sys *dram.System, seed uint64) *MINT {
	cfg := sys.Config()
	trefi := int64(cfg.TREFI)
	if trefi <= 0 {
		panic("mitigation: MINT requires a positive tREFI")
	}
	w := trefi / int64(cfg.TRC)
	if w < 1 {
		w = 1
	}
	nBanks := cfg.Channels * cfg.Ranks * cfg.Banks
	m := &MINT{
		sys:   sys,
		cfg:   cfg,
		w:     w,
		trefi: trefi,
		units: make([]mintUnit, nBanks),
	}
	seeds := prince.Seeded(seed)
	for i := range m.units {
		u := &m.units[i]
		u.rng = prince.NewCTR(seeds.Next(), seeds.Next())
		u.window = -1
		u.latched = -1
		u.pickIdx = int64(u.rng.Uint64n(uint64(w)))
	}
	return m
}

// Stats returns refresh activity counts.
func (m *MINT) Stats() VictimStats { return m.stat }

// WindowActs returns W, the sampled-from activation budget per tREFI.
func (m *MINT) WindowActs() int64 { return m.w }

// Remap implements memctrl.Mitigation; MINT does not move rows.
func (m *MINT) Remap(_ dram.BankID, row int) int { return row }

// ActivateDelay implements memctrl.Mitigation; MINT never throttles.
func (m *MINT) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation; the tracker lives in DRAM
// and adds no controller-side lookup.
func (m *MINT) AccessPenalty() int64 { return 0 }

// OnEpoch implements memctrl.Mitigation: the epoch's full refresh covers
// any pending sample, so latches are dropped rather than serviced.
func (m *MINT) OnEpoch(int64) {
	for i := range m.units {
		u := &m.units[i]
		u.window = -1
		u.latched = -1
		u.actIdx = 0
		u.pickIdx = int64(u.rng.Uint64n(uint64(m.w)))
	}
}

// OnActivate implements memctrl.Mitigation: roll the window forward if
// now crossed a tREFI boundary (servicing the previous window's sample),
// then latch this activation if it is the sampled one.
func (m *MINT) OnActivate(id dram.BankID, _, physRow int, now int64) memctrl.ActResult {
	bi := bankIndex(m.cfg, id)
	u := &m.units[bi]
	var res memctrl.ActResult
	if w := now / m.trefi; w != u.window {
		if u.latched >= 0 {
			n := refreshPair(m.sys, id, int(u.latched), now)
			m.stat.Mitigations++
			m.stat.Refreshes += int64(n)
			m.recordRefresh(int32(bi), int(u.latched), n, now)
			res.BankBlock = victimRefreshCost(m.cfg, n)
			u.latched = -1
		}
		u.window = w
		u.actIdx = 0
		u.pickIdx = int64(u.rng.Uint64n(uint64(m.w)))
	}
	if u.actIdx == u.pickIdx {
		u.latched = int32(physRow)
	}
	u.actIdx++
	return res
}

// EnableParanoid attaches the shared DRAM checks plus MINT's structural
// catalog.
func (m *MINT) EnableParanoid(eng *invariant.Engine) {
	m.attach(eng, m.sys)
	eng.Register("mint/window", m.CheckInvariants)
}

// CheckInvariants verifies each unit's sampler state is inside its
// design envelope: the pick index within the window budget and the
// latched row within the bank.
func (m *MINT) CheckInvariants() error {
	for i := range m.units {
		u := &m.units[i]
		if u.pickIdx < 0 || u.pickIdx >= m.w {
			return invariant.Violatedf("mint/window",
				"bank %d: pickIdx %d outside [0, %d)", i, u.pickIdx, m.w)
		}
		if u.actIdx < 0 {
			return invariant.Violatedf("mint/window",
				"bank %d: negative actIdx %d", i, u.actIdx)
		}
		if u.latched < -1 || int(u.latched) >= m.cfg.RowsPerBank {
			return invariant.Violatedf("mint/window",
				"bank %d: latched row %d outside bank", i, u.latched)
		}
	}
	return nil
}
