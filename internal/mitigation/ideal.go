package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// Ideal is victim-focused mitigation with idealized tracking (Table 7):
// exact per-row activation counters with no storage limit and no overhead.
// Every threshold-th activation of a row refreshes its immediate
// neighbours. It upper-bounds what any victim-focused tracker can do —
// and still loses to Half-Double, which is the paper's point.
type Ideal struct {
	sys       *dram.System
	cfg       config.Config
	threshold int64
	counts    []map[int]int64 // per bank: row -> activations this epoch
	stat      VictimStats
	// Free models the "no overhead" idealization: when true, victim
	// refreshes cost no bank time.
	Free bool
}

// NewIdeal creates the idealized victim-focused mitigation.
func NewIdeal(sys *dram.System, threshold int64) *Ideal {
	cfg := sys.Config()
	n := cfg.Channels * cfg.Ranks * cfg.Banks
	m := &Ideal{sys: sys, cfg: cfg, threshold: threshold, counts: make([]map[int]int64, n), Free: true}
	for i := range m.counts {
		m.counts[i] = make(map[int]int64)
	}
	return m
}

// Stats returns mitigation counters.
func (m *Ideal) Stats() VictimStats { return m.stat }

// Remap implements memctrl.Mitigation (identity: no indirection).
func (m *Ideal) Remap(_ dram.BankID, row int) int { return row }

// ActivateDelay implements memctrl.Mitigation.
func (m *Ideal) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation.
func (m *Ideal) AccessPenalty() int64 { return 0 }

// OnEpoch implements memctrl.Mitigation.
func (m *Ideal) OnEpoch(int64) {
	for i := range m.counts {
		clear(m.counts[i])
	}
}

// OnActivate implements memctrl.Mitigation.
func (m *Ideal) OnActivate(id dram.BankID, row, physRow int, now int64) memctrl.ActResult {
	c := m.counts[bankIndex(m.cfg, id)]
	c[row]++
	if c[row]%m.threshold != 0 {
		return memctrl.ActResult{}
	}
	m.stat.Mitigations++
	n := refreshNeighbors(m.sys, id, physRow, now, -1, +1)
	m.stat.Refreshes += int64(n)
	if m.Free {
		return memctrl.ActResult{}
	}
	return memctrl.ActResult{BankBlock: victimRefreshCost(m.cfg, n)}
}
