package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// soloNode boots one extra node with a roster of just itself — the
// -join path: everything else it must learn through gossip.
func soloNode(t *testing.T, id string, mod func(o *Options)) *tfNode {
	t.Helper()
	sw := &swapHandler{}
	srv := httptest.NewServer(sw)
	t.Cleanup(srv.Close)
	tn := &tfNode{srv: srv, swap: sw, runs: &atomic.Int64{}}
	runs := tn.runs
	self := Peer{ID: id, URL: srv.URL}
	opts := Options{
		Self:  self,
		Peers: []Peer{self},
		Service: service.Options{
			Workers:    1,
			QueueDepth: 16,
			Run: func(_ context.Context, spec service.Spec, progress func(int64, int64)) (sim.Result, error) {
				runs.Add(1)
				if progress != nil {
					progress(1, 1)
				}
				return sim.Result{IPC: float64(spec.Seed)}, nil
			},
		},
		HTTPClient:    &http.Client{Timeout: 5 * time.Second},
		Retry:         fastRetry,
		FanoutTimeout: time.Second,
		StealInterval: -1,
	}
	if mod != nil {
		mod(&opts)
	}
	node, err := New(opts)
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	tn.node = node
	sw.Store(node.Handler())
	t.Cleanup(func() {
		node.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		node.Manager().Shutdown(ctx)
	})
	return tn
}

// aliveIDs projects a membership snapshot onto its alive member ids.
func aliveIDs(members []Member) map[string]bool {
	out := make(map[string]bool)
	for _, m := range members {
		if !m.Left {
			out[m.Peer.ID] = true
		}
	}
	return out
}

func probeAll(ctx context.Context, nodes ...*tfNode) {
	for _, tn := range nodes {
		tn.node.ProbeOnce(ctx)
	}
}

func TestFleetJoinDynamicMembership(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	n3 := soloNode(t, "n3", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if err := n3.node.Join(ctx, []string{nodes[0].srv.URL}); err != nil {
		t.Fatalf("join: %v", err)
	}
	// The seed peer and the joiner know each other immediately; one or
	// two gossip-carrying probe rounds spread the row to n2.
	all := []*tfNode{nodes[0], nodes[1], n3}
	probeAll(ctx, all...)
	probeAll(ctx, all...)
	for _, tn := range all {
		got := aliveIDs(tn.node.Members())
		if len(got) != 3 || !got["n1"] || !got["n2"] || !got["n3"] {
			t.Fatalf("%s sees alive members %v, want n1 n2 n3", tn.node.self.ID, got)
		}
	}

	// The grown ring routes to the newcomer with no survivor restarted:
	// a spec the 3-node ring assigns to n3, submitted via n1, runs there.
	spec := specOwnedBy(t, all, 2, 500)
	v, err := fleetClient(nodes[0]).Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit via n1: %v", err)
	}
	if !strings.HasPrefix(v.ID, "n3.") {
		t.Fatalf("job id %q not homed on the joined node", v.ID)
	}
	if _, err := fleetClient(nodes[0]).Result(ctx, v.ID); err != nil {
		t.Fatalf("result: %v", err)
	}
	if got := n3.runs.Load(); got != 1 {
		t.Fatalf("joined node ran %d times, want 1", got)
	}
	if counter(n3, "rrs_fleet_joins_total") != 1 {
		t.Fatalf("join not counted")
	}
}

func TestFleetRejoinSameIDNewAddress(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// n3 dies for good at its old address...
	oldURL := nodes[2].srv.URL
	nodes[2].srv.Close()
	nodes[2].node.Close()
	// ...and its replacement claims the same ID somewhere else.
	r3 := soloNode(t, "n3", nil)
	if r3.srv.URL == oldURL {
		t.Fatalf("test needs a distinct address for the replacement")
	}
	if err := r3.node.Join(ctx, []string{nodes[0].srv.URL}); err != nil {
		t.Fatalf("rejoin: %v", err)
	}

	// The seed's table must point at the new address — the epoch bump in
	// Join's re-announce supersedes the stale row regardless of URL
	// ordering — and gossip moves it to the other survivor.
	if row, ok := nodes[0].node.mem.member("n3"); !ok || row.Left || row.Peer.URL != r3.srv.URL {
		t.Fatalf("n1's row for n3 = %+v, want alive at %s", row, r3.srv.URL)
	}
	survivors := []*tfNode{nodes[0], nodes[1], r3}
	probeAll(ctx, survivors...)
	probeAll(ctx, survivors...)
	if row, ok := nodes[1].node.mem.member("n3"); !ok || row.Left || row.Peer.URL != r3.srv.URL {
		t.Fatalf("n2's row for n3 = %+v, want alive at %s", row, r3.srv.URL)
	}

	// Work owned by n3 routes to the replacement without any survivor
	// restart — the whole point of dynamic membership.
	spec := specOwnedBy(t, survivors, 2, 600)
	v, err := fleetClient(nodes[1]).Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit via n2: %v", err)
	}
	if !strings.HasPrefix(v.ID, "n3.") {
		t.Fatalf("job id %q not homed on the replacement", v.ID)
	}
	if _, err := fleetClient(nodes[1]).Result(ctx, v.ID); err != nil {
		t.Fatalf("result: %v", err)
	}
	if got := r3.runs.Load(); got != 1 {
		t.Fatalf("replacement ran %d times, want 1", got)
	}
}

func TestFleetDrainSpreadsTombstoneNoResurrect(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	nodes[0].node.StartDrain()
	// n2's next probe gossips with the draining n1 and learns the leave.
	nodes[1].node.ProbeOnce(ctx)
	row, ok := nodes[1].node.mem.member("n1")
	if !ok || !row.Left {
		t.Fatalf("n2's row for n1 = %+v, want tombstoned", row)
	}
	if len(nodes[1].node.det.Routable()) != 0 {
		t.Fatalf("tombstoned peer still probed/routable")
	}

	// A stale table replaying the pre-drain world must not resurrect it.
	stale, _ := json.Marshal(gossipPayload{From: "ghost", Members: []Member{
		{Peer: nodes[0].node.self, Epoch: 1},
	}})
	resp, err := http.Post(nodes[1].srv.URL+"/v1/fleet/gossip", "application/json",
		bytes.NewReader(stale))
	if err != nil {
		t.Fatalf("stale gossip: %v", err)
	}
	var answer gossipPayload
	if err := json.NewDecoder(resp.Body).Decode(&answer); err != nil {
		t.Fatalf("decode gossip answer: %v", err)
	}
	resp.Body.Close()
	for _, m := range answer.Members {
		if m.Peer.ID == "n1" && !m.Left {
			t.Fatalf("stale gossip resurrected n1: %+v", m)
		}
	}
	if row, _ := nodes[1].node.mem.member("n1"); !row.Left {
		t.Fatalf("n1 alive again after stale gossip: %+v", row)
	}
}

func TestFleetConcurrentJoinAndDrain(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	n4 := soloNode(t, "n4", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Membership churns from both ends at once: a join through n1 races
	// a drain on n3.
	var wg sync.WaitGroup
	wg.Add(2)
	var joinErr error
	go func() {
		defer wg.Done()
		joinErr = n4.node.Join(ctx, []string{nodes[0].srv.URL})
	}()
	go func() {
		defer wg.Done()
		nodes[2].node.StartDrain()
	}()
	wg.Wait()
	if joinErr != nil {
		t.Fatalf("join during drain: %v", joinErr)
	}

	all := []*tfNode{nodes[0], nodes[1], nodes[2], n4}
	probeAll(ctx, all...)
	probeAll(ctx, all...)
	probeAll(ctx, all...)
	for _, tn := range []*tfNode{nodes[0], nodes[1], n4} {
		got := aliveIDs(tn.node.Members())
		if len(got) != 3 || !got["n1"] || !got["n2"] || !got["n4"] {
			t.Fatalf("%s sees alive members %v, want n1 n2 n4", tn.node.self.ID, got)
		}
		if row, ok := tn.node.mem.member("n3"); !ok || !row.Left {
			t.Fatalf("%s's row for n3 = %+v, want tombstoned", tn.node.self.ID, row)
		}
	}

	// The post-churn ring serves: one run somewhere alive, none on the
	// drained node.
	spec := uniqueSpec(650)
	if _, err := fleetClient(nodes[1]).Run(ctx, spec); err != nil {
		t.Fatalf("run after churn: %v", err)
	}
	if nodes[2].runs.Load() != 0 {
		t.Fatalf("drained node ran a job")
	}
	var total int64
	for _, tn := range all {
		total += tn.runs.Load()
	}
	if total != 1 {
		t.Fatalf("fleet ran the job %d times, want exactly 1", total)
	}
}

func TestFleetSubmitEmptyLiveSet(t *testing.T) {
	nodes := startFleet(t, 1, nil)
	nodes[0].node.StartDrain()

	body, _ := json.Marshal(uniqueSpec(42))
	resp, err := http.Post(nodes[0].srv.URL+"/v1/jobs", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 missing Retry-After")
	}
	if counter(nodes[0], "rrs_fleet_no_owner_total") != 1 {
		t.Fatalf("empty live set not counted")
	}
	if nodes[0].runs.Load() != 0 {
		t.Fatalf("unready node ran the job anyway")
	}
}

func TestFleetReplicationToSuccessor(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	spec := uniqueSpec(11)
	owner := ownerIndex(t, nodes, spec)
	succ := 1 - owner
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if _, err := fleetClient(nodes[owner]).Run(ctx, spec); err != nil {
		t.Fatalf("run on owner: %v", err)
	}
	// Background loops are off in unit tests; drain the queue by hand.
	if err := nodes[owner].node.FlushReplicas(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	res, ok := nodes[succ].node.mgr.CachedResult(spec.Hash())
	if !ok {
		t.Fatalf("successor holds no replica")
	}
	if res.IPC != 11 {
		t.Fatalf("replica IPC = %v, want 11", res.IPC)
	}
	if counter(nodes[owner], "rrs_fleet_replicated_total") != 1 {
		t.Fatalf("replication not counted on the owner")
	}
	if counter(nodes[succ], "rrs_fleet_replicas_received_total") != 1 {
		t.Fatalf("replica receipt not counted on the successor")
	}

	// The payoff: the owner dies, and the resubmitted spec is a local
	// cache hit on the successor — zero re-executions fleet-wide.
	nodes[owner].srv.Close()
	res2, err := localClient(nodes[succ]).Run(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit on survivor: %v", err)
	}
	if res2.IPC != 11 {
		t.Fatalf("resubmitted IPC = %v, want 11", res2.IPC)
	}
	if got := nodes[succ].runs.Load(); got != 0 {
		t.Fatalf("survivor re-ran the spec %d times, want 0", got)
	}
}

func TestFleetReplicaQueueBoundedAndRepairBackstop(t *testing.T) {
	nodes := startFleet(t, 2, func(i int, o *Options) {
		o.ReplicationQueue = 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Three sequential completions against a 1-deep queue: the first
	// fills it, the next two drop — counted, never blocking the worker.
	for seed := uint64(21); seed <= 23; seed++ {
		if _, err := localClient(nodes[0]).Run(ctx, uniqueSpec(seed)); err != nil {
			t.Fatalf("run seed %d: %v", seed, err)
		}
	}
	if got := counter(nodes[0], "rrs_fleet_replica_drops_total"); got != 2 {
		t.Fatalf("drops = %d, want 2", got)
	}

	// Anti-entropy is the backstop for exactly those drops: one pass
	// re-establishes every missing replica.
	checked, repaired := nodes[0].node.RepairOnce(ctx)
	if checked != 3 || repaired != 3 {
		t.Fatalf("RepairOnce = (%d checked, %d repaired), want (3, 3)", checked, repaired)
	}
	for seed := uint64(21); seed <= 23; seed++ {
		if _, ok := nodes[1].node.mgr.CachedResult(uniqueSpec(seed).Hash()); !ok {
			t.Fatalf("seed %d has no replica after repair", seed)
		}
	}
	// A second pass verifies and re-pushes nothing.
	checked, repaired = nodes[0].node.RepairOnce(ctx)
	if checked != 3 || repaired != 0 {
		t.Fatalf("second RepairOnce = (%d, %d), want (3, 0)", checked, repaired)
	}
}

func TestFleetRepairAfterOwnershipMoved(t *testing.T) {
	// Replication disabled: the result exists only where it was computed,
	// which is NOT its ring owner — the post-churn shape repair fixes.
	nodes := startFleet(t, 3, func(i int, o *Options) {
		o.ReplicationQueue = -1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	spec := specOwnedBy(t, nodes, 0, 700)
	if _, err := localClient(nodes[1]).Run(ctx, spec); err != nil {
		t.Fatalf("run on non-owner: %v", err)
	}
	checked, repaired := nodes[1].node.RepairOnce(ctx)
	if checked != 1 || repaired != 1 {
		t.Fatalf("RepairOnce = (%d, %d), want (1, 1)", checked, repaired)
	}
	// The copy went to the hash's best other peer — its owner.
	if _, ok := nodes[0].node.mgr.CachedResult(spec.Hash()); !ok {
		t.Fatalf("owner did not receive the repair push")
	}
	if counter(nodes[1], "rrs_fleet_repair_replicated_total") != 1 {
		t.Fatalf("repair push not counted")
	}
}

func TestFleetFanoutBoundedByPerPeerTimeout(t *testing.T) {
	nodes := startFleet(t, 3, func(i int, o *Options) {
		o.FanoutTimeout = 10 * time.Second
		o.FanoutPeerTimeout = 50 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Both peers hang on cache lookups far past the per-peer budget.
	const hang = 3 * time.Second
	for _, tn := range nodes[1:] {
		inner := tn.swap.Load()
		tn.swap.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/fleet/cache/") {
				time.Sleep(hang)
			}
			inner.ServeHTTP(w, r)
		}))
	}

	start := time.Now()
	if _, err := localClient(nodes[0]).Run(ctx, uniqueSpec(31)); err != nil {
		t.Fatalf("run with hung peers: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed >= hang {
		t.Fatalf("cold submit stalled %v behind hung peers; per-peer timeout did not bound it", elapsed)
	}
	if nodes[0].runs.Load() != 1 {
		t.Fatalf("spec did not run locally after the bounded miss")
	}
}

// TestFleetGossipEndpointAnswersWhileDraining pins the property the
// whole leave protocol depends on.
func TestFleetGossipEndpointAnswersWhileDraining(t *testing.T) {
	nodes := startFleet(t, 1, nil)
	nodes[0].node.StartDrain()
	body, _ := json.Marshal(gossipPayload{From: "x", Members: nil})
	resp, err := http.Post(nodes[0].srv.URL+"/v1/fleet/gossip", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatalf("gossip with draining node: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining gossip status = %d, want 200", resp.StatusCode)
	}
	var answer gossipPayload
	if err := json.NewDecoder(resp.Body).Decode(&answer); err != nil {
		t.Fatalf("decode: %v", err)
	}
	found := false
	for _, m := range answer.Members {
		if m.Peer.ID == "n1" && m.Left {
			found = true
		}
	}
	if !found {
		t.Fatalf("draining node's gossip answer %v lacks its own tombstone", answer.Members)
	}
}
