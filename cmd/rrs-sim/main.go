// Command rrs-sim runs one workload on the simulated memory system with a
// chosen Row Hammer mitigation and prints performance and mitigation
// statistics.
//
// Usage:
//
//	rrs-sim -workload bzip2 -mitigation rrs -scale 16 -epochs 2
//	rrs-sim -workload hmmer -mitigation blockhammer -blacklist 512
//	rrs-sim -list
//
// The flags compile to the same service.Spec that cmd/rrs-serve accepts
// over POST /v1/jobs, so a served job with identical knobs reproduces
// this command's numbers exactly. Ctrl-C interrupts a long run cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mitigation"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "bzip2", "workload name from the catalog")
		mit       = flag.String("mitigation", "rrs", "none | rrs | rrs-cam | para | graphene | ideal | blockhammer | srs | rubix | mint | pride | dapper")
		scale     = flag.Int("scale", 16, "epoch shrink factor (1 = full 64 ms epochs)")
		epochs    = flag.Int("epochs", 2, "simulated epochs")
		seed      = flag.Uint64("seed", 1, "trace seed")
		blacklist = flag.Uint("blacklist", 512, "BlockHammer blacklist threshold (at full scale)")
		paranoid  = flag.Bool("paranoid", false, "run with the self-verification layer: invariant sweeps and shadow-model oracles (stats are bit-identical)")
		maxSteps  = flag.Int64("max-steps", 0, "abort after this many memory accesses (0 = unlimited)")
		workers   = flag.Int("workers", 0, "bank-sharded parallel mode with this many goroutines (0 = sequential reference path; any positive count computes identical stats)")
		list      = flag.Bool("list", false, "list catalog workloads and exit")

		eventsOut    = flag.String("events", "", "record the run's event timeline and write it as JSON Lines to this file")
		chromeOut    = flag.String("events-chrome", "", "record the run's event timeline and write it in Chrome trace-event format (open in Perfetto) to this file")
		eventsBuffer = flag.Int("events-buffer", 0, "event ring capacity; keeps the newest events (0 = default 65536)")
	)
	flag.Parse()

	if *list {
		for _, w := range trace.AllWorkloads() {
			fmt.Println(w)
		}
		return
	}

	w, ok := trace.ByName(*workload)
	if !ok {
		fatalf("unknown workload %q (use -list)", *workload)
	}

	spec := service.Spec{
		Workloads:  []string{*workload},
		Mitigation: *mit,
		Blacklist:  uint32(*blacklist),
		Scale:      *scale,
		Epochs:     *epochs,
		Seed:       *seed,
		Paranoid:   *paranoid,
		MaxSteps:   *maxSteps,
		Workers:    *workers,
	}
	opts, err := spec.Options()
	if err != nil {
		fatalf("%v", err)
	}
	cfg := opts.Config

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx

	recordEvents := *eventsOut != "" || *chromeOut != ""
	if recordEvents {
		opts.Events = &obs.Config{RingSize: *eventsBuffer}
	}

	res, err := sim.Run(opts)
	if err != nil {
		fatalf("%v", err)
	}

	if recordEvents {
		if err := writeTimeline(res.Timeline, *eventsOut, *chromeOut); err != nil {
			fatalf("%v", err)
		}
	}

	fmt.Printf("workload:   %s\n", w)
	fmt.Printf("config:     %s (scale 1/%d)\n", cfg, *scale)
	fmt.Printf("mitigation: %s\n\n", *mit)
	fmt.Printf("IPC (per core):        %.4f\n", res.IPC)
	fmt.Printf("instructions:          %d\n", res.Instructions)
	fmt.Printf("bus cycles:            %d (%d epochs)\n", res.Cycles, res.Epochs)
	fmt.Printf("memory accesses:       %d (MPKI %.2f)\n", res.Accesses, res.MPKI)
	fmt.Printf("row hits/misses/conf:  %d / %d / %d\n",
		res.MemStats.RowHits, res.MemStats.RowMisses, res.MemStats.RowConflicts)
	fmt.Printf("hot rows per epoch:    %.1f\n", res.HotRowsPerEpoch)
	fmt.Printf("DRAM avg power:        %.0f mW\n", res.Energy.AvgPowerMW)

	if r, ok := res.Mitigation.(*core.RRS); ok {
		st := r.Stats()
		fmt.Printf("\nRRS: swaps/epoch %.1f, reswaps %d, eviction un-swaps %d, "+
			"dest re-rolls %d, skipped %d, channel-block cycles %d\n",
			res.SwapsPerEpoch, st.Reswaps, st.EvictionUnswaps, st.DestRerolls,
			st.SkippedSwaps, st.BlockCycles)
	}
	if b, ok := res.Mitigation.(*mitigation.BlockHammer); ok {
		st := b.Stats()
		fmt.Printf("\nBlockHammer: blacklisted ACTs %d, delay cycles %d (tDelay %d)\n",
			st.BlacklistedActs, st.DelayCycles, b.TDelay())
	}
	if s, ok := res.Mitigation.(*mitigation.SRS); ok {
		st := s.Stats()
		fmt.Printf("\nSRS: swaps %d, refreshes %d, dest re-rolls %d, skipped %d, "+
			"channel-block cycles %d\n",
			st.Swaps, st.Refreshes, st.DestRerolls, st.SkippedSwaps, st.BlockCycles)
	}
	if r, ok := res.Mitigation.(*mitigation.Rubix); ok {
		st := r.Stats()
		fmt.Printf("\nRubix: refresh triggers %d, refresh ACTs %d\n",
			st.Mitigations, st.Refreshes)
	}
	if m, ok := res.Mitigation.(*mitigation.MINT); ok {
		st := m.Stats()
		fmt.Printf("\nMINT: window refreshes %d, refresh ACTs %d (W=%d)\n",
			st.Mitigations, st.Refreshes, m.WindowActs())
	}
	if q, ok := res.Mitigation.(*mitigation.PrIDE); ok {
		st := q.Stats()
		name := "PrIDE"
		if q.Replaces() {
			name = "DAPPER"
		}
		fmt.Printf("\n%s: enqueued %d, serviced %d, dropped %d, replaced %d, refresh ACTs %d\n",
			name, st.Enqueued, st.Serviced, st.Dropped, st.Replaced, st.Refreshes)
	}
	if res.Mitigation == nil && *workers > 0 && res.SwapsPerEpoch > 0 {
		// Parallel mode merges per-shard mitigation state into the
		// numeric fields and exposes no live instance.
		fmt.Printf("\nRRS (parallel mode): swaps/epoch %.1f\n", res.SwapsPerEpoch)
	}
	if inv := res.Invariants; inv != nil {
		fmt.Printf("\nself-verification: %d invariant checks across %d catalog entries, %d violation(s)\n",
			inv.Checks, len(inv.PerCheck), inv.Violations)
		if inv.FirstViolation != "" {
			fmt.Printf("first violation: %s\n", inv.FirstViolation)
		}
	}
	if tl := res.Timeline; tl != nil {
		fmt.Printf("\nevents: %d recorded (%d kept, %d dropped), %d epoch samples\n",
			tl.TotalEvents, int64(len(tl.Events)), tl.DroppedEvents, len(tl.Samples))
	}
}

// writeTimeline dumps the recorded timeline to the requested files.
func writeTimeline(tl *obs.Timeline, jsonlPath, chromePath string) error {
	if tl == nil {
		return fmt.Errorf("run produced no timeline")
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		if err := obs.WriteJSONL(f, tl); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", len(tl.Events), jsonlPath)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		// Timestamps are bus cycles; Chrome traces want microseconds.
		if err := obs.WriteChromeTrace(f, tl, config.BusGHz*1000); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", chromePath)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rrs-sim: "+format+"\n", args...)
	os.Exit(1)
}
