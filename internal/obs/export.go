package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes the timeline's event stream as JSON Lines: one
// event object per line, in chronological order. The format round-trips
// through ReadJSONL, and each line is independently greppable/jq-able —
// the shape `rrs-sim -events out.jsonl` produces.
func WriteJSONL(w io.Writer, tl *Timeline) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range tl.Events {
		if err := enc.Encode(&tl.Events[i]); err != nil {
			return fmt.Errorf("obs: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes an event stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return events, fmt.Errorf("obs: decoding event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON
// Array Format"), loadable in Perfetto or chrome://tracing. Timestamps
// and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DisplayTimeUnit is advisory for the viewer.
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the timeline in the Chrome trace-event format
// so Perfetto can render the run: one track (tid) per bank, duration
// slices ("X") for channel-blocked intervals, instants ("i") for the
// rest, and counter tracks ("C") for the per-epoch occupancy series.
// cyclesPerMicrosecond converts bus cycles to the format's microsecond
// timebase (1600 for the default 1.6 GHz bus; values <= 0 fall back to
// 1 cycle = 1 µs, which preserves shape but not absolute time).
func WriteChromeTrace(w io.Writer, tl *Timeline, cyclesPerMicrosecond float64) error {
	if cyclesPerMicrosecond <= 0 {
		cyclesPerMicrosecond = 1
	}
	us := func(cycles int64) float64 { return float64(cycles) / cyclesPerMicrosecond }

	trace := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"total_events":   tl.TotalEvents,
			"dropped_events": tl.DroppedEvents,
		},
	}
	for i := range tl.Events {
		e := &tl.Events[i]
		ce := chromeEvent{
			Name: e.Kind.String(),
			Ph:   "i",
			Ts:   us(e.At),
			TID:  int64(e.Bank),
			Args: map[string]any{"a": e.A, "b": e.B},
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = us(e.Dur)
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}
	for _, s := range tl.Samples {
		trace.TraceEvents = append(trace.TraceEvents,
			chromeEvent{Name: "rit_tuples", Ph: "C", Ts: us(s.At), TID: -1,
				Args: map[string]any{"tuples": s.RITTuples}},
			chromeEvent{Name: "hrt_rows", Ph: "C", Ts: us(s.At), TID: -1,
				Args: map[string]any{"rows": s.HRTRows}},
			chromeEvent{Name: "epoch_swaps", Ph: "C", Ts: us(s.At), TID: -1,
				Args: map[string]any{"swaps": s.Swaps}})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
