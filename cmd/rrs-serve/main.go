// Command rrs-serve exposes the simulation engine as an HTTP job
// service: submitted specs are queued FIFO, executed by a worker pool,
// answered from a content-addressed result cache on re-submission, and
// observable through per-job status and a Prometheus/JSON metrics
// endpoint.
//
// Usage:
//
//	rrs-serve -addr :8080 -workers 8 -queue-depth 128 -cache-entries 512 -journal jobs.journal
//
// With -journal, accepted specs and terminal states are written to an
// append-only JSONL write-ahead log. On startup the journal is replayed:
// finished results repopulate the cache, and jobs that never reached a
// terminal state are re-enqueued under their original ids — a kill -9
// mid-sweep loses no accepted work. Transiently failed runs are retried
// automatically up to -job-retries times, and a panic inside a
// simulation marks only that job failed (rrs_worker_panics_total); the
// process keeps serving.
//
// Walkthrough:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workloads":["bzip2"],"mitigation":"rrs","scale":16,"epochs":2}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM starts a graceful shutdown: intake stops, queued jobs
// are cancelled, running jobs drain within -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 64, "max queued jobs before 429s")
		cacheEntries = flag.Int("cache-entries", 256, "result cache capacity (-1 disables)")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job run limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for running jobs")
		jobRetries   = flag.Int("job-retries", 2, "automatic retries for transiently failed runs (-1 disables)")
		journalPath  = flag.String("journal", "", "durable job journal path (JSONL WAL; empty disables durability)")
		paranoid     = flag.Bool("paranoid", false, "force every job to run with the self-verification layer (stats unchanged; results gain an invariant summary)")
	)
	flag.Parse()

	var journal *service.Journal
	var replayed *service.Replayed
	if *journalPath != "" {
		var err error
		journal, replayed, err = service.OpenJournal(*journalPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer journal.Close()
	}

	mgr := service.NewManager(service.Options{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *jobTimeout,
		JobRetries:     *jobRetries,
		Journal:        journal,
		ForceParanoid:  *paranoid,
	})
	if replayed != nil {
		if err := mgr.Restore(replayed); err != nil {
			fmt.Fprintf(os.Stderr, "rrs-serve: journal replay: %v\n", err)
		}
		fmt.Fprintf(os.Stderr,
			"rrs-serve: journal %s replayed: %d jobs (%d re-enqueued, %d cached results, %d corrupt lines dropped)\n",
			*journalPath, len(replayed.Jobs), replayed.Pending, replayed.Results, replayed.Dropped)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.Handler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rrs-serve: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rrs-serve: shutting down, draining running jobs...")
	case err := <-errc:
		fatalf("%v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-serve: http shutdown: %v\n", err)
	}
	if err := mgr.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-serve: job drain incomplete: %v\n", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rrs-serve: "+format+"\n", args...)
	os.Exit(1)
}
