package service

import (
	"context"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestOnResultHookFiresOncePerComputation pins the replication seam's
// contract: OnResult fires for a computed result (stripped, post-cache)
// but not for cache hits or InsertCached — the paths that would make a
// replica fan back out.
func TestOnResultHookFiresOncePerComputation(t *testing.T) {
	var mu sync.Mutex
	got := make(map[string]int)
	m := stubManager(t, Options{
		Workers:      1,
		CacheEntries: 8,
		OnResult: func(hash string, res sim.Result) {
			if res.Timeline != nil || res.Mitigation != nil {
				t.Errorf("OnResult saw an unstripped result for %s", hash)
			}
			mu.Lock()
			got[hash]++
			mu.Unlock()
		},
	}, func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
		return sim.Result{IPC: float64(spec.Seed)}, nil
	})

	spec := uniqueSpec(1)
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	// Identical resubmission: a cache hit, no second OnResult.
	j2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, j2)
	if !v.CacheHit {
		t.Fatalf("resubmission was not a cache hit")
	}

	// A received replica: cached, but no OnResult either.
	m.InsertCached("replica-hash", sim.Result{IPC: 7})

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[spec.Hash()] != 1 {
		t.Fatalf("OnResult calls = %v, want exactly one for %s", got, spec.Hash())
	}
}

// TestInsertCachedStripsAndServes verifies a pushed replica is stripped
// like a local completion and answers CachedResult.
func TestInsertCachedStripsAndServes(t *testing.T) {
	m := stubManager(t, Options{Workers: 1, CacheEntries: 8},
		func(_ context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			return sim.Result{}, nil
		})
	m.InsertCached("h1", sim.Result{IPC: 3, Timeline: &obs.Timeline{}})
	res, ok := m.CachedResult("h1")
	if !ok {
		t.Fatalf("replica not cached")
	}
	if res.Timeline != nil || res.Mitigation != nil {
		t.Fatalf("replica cached unstripped")
	}
	if res.IPC != 3 {
		t.Fatalf("IPC = %v, want 3", res.IPC)
	}
}

// TestDoneHashesAndResultByHash covers the repair loop's data source:
// done jobs and cache-only entries, deduplicated, each resolvable.
func TestDoneHashesAndResultByHash(t *testing.T) {
	m := stubManager(t, Options{Workers: 1, CacheEntries: 8},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	s1, s2 := uniqueSpec(1), uniqueSpec(2)
	for _, s := range []Spec{s1, s2} {
		j, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	m.InsertCached("replica-only", sim.Result{IPC: 9})

	hashes := m.DoneHashes()
	want := map[string]bool{s1.Hash(): true, s2.Hash(): true, "replica-only": true}
	if len(hashes) != len(want) {
		t.Fatalf("DoneHashes = %v, want the 3 of %v", hashes, want)
	}
	for _, h := range hashes {
		if !want[h] {
			t.Fatalf("unexpected hash %s in %v", h, hashes)
		}
		if _, ok := m.ResultByHash(h); !ok {
			t.Fatalf("ResultByHash(%s) missed", h)
		}
	}
	if _, ok := m.ResultByHash("absent"); ok {
		t.Fatalf("ResultByHash invented a result")
	}
}

// TestResultByHashSurvivesCacheEviction: a done job's result must stay
// reachable for repair even after LRU pressure evicts its cache entry.
func TestResultByHashSurvivesCacheEviction(t *testing.T) {
	m := stubManager(t, Options{Workers: 1, CacheEntries: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	s1, s2 := uniqueSpec(1), uniqueSpec(2)
	for _, s := range []Spec{s1, s2} {
		j, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	if _, ok := m.CachedResult(s1.Hash()); ok {
		t.Fatalf("s1 still cached; eviction did not happen")
	}
	res, ok := m.ResultByHash(s1.Hash())
	if !ok {
		t.Fatalf("evicted done job unreachable by hash")
	}
	if res.IPC != 1 {
		t.Fatalf("IPC = %v, want 1", res.IPC)
	}
}

// TestResultByHashSurvivesRemovalOfDuplicate: a cache-hit job shares
// the computing job's hash; removing one of the duplicates must leave
// the result reachable through the survivor even with the cache entry
// evicted.
func TestResultByHashSurvivesRemovalOfDuplicate(t *testing.T) {
	m := stubManager(t, Options{Workers: 1, CacheEntries: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	s1 := uniqueSpec(1)
	j1, err := m.Submit(s1)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	// Resubmission: a second done job with the same hash (cache hit).
	j2, err := m.Submit(s1)
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, j2); !v.CacheHit {
		t.Fatalf("resubmission was not a cache hit: %+v", v)
	}
	// Evict s1's cache entry, then remove the duplicate job.
	j3, err := m.Submit(uniqueSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	if err := m.Remove(j2.ID()); err != nil {
		t.Fatal(err)
	}
	res, ok := m.ResultByHash(s1.Hash())
	if !ok {
		t.Fatalf("result lost after removing the duplicate job")
	}
	if res.IPC != 1 {
		t.Fatalf("IPC = %v, want 1", res.IPC)
	}
}
