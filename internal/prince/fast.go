package prince

// Table-driven fast path. The round function factors into per-16-bit-chunk
// table lookups (S-box and M' act within chunks) plus a byte-indexed
// scatter for the ShiftRows nibble permutation. The reference nibble-loop
// implementation in prince.go remains the specification; TestFastMatchesReference
// cross-checks them and the official vectors pin both down.
var (
	// smTab[w][c] = M'_w(S(c)) — forward round chunk transform.
	smTab [2][1 << 16]uint16
	// misTab[w][c] = S^-1(M'_w(c)) — inverse round chunk transform.
	misTab [2][1 << 16]uint16
	// midTab[w][c] = S^-1(M'_w(S(c))) — the middle layer.
	midTab [2][1 << 16]uint16
	// srTab/srInvTab scatter the i-th most significant byte to its
	// ShiftRows (inverse) destinations.
	srTab    [8][256]uint64
	srInvTab [8][256]uint64
)

func sbox16(c uint16, box *[16]uint64) uint16 {
	return uint16(box[c>>12]<<12 | box[c>>8&0xF]<<8 | box[c>>4&0xF]<<4 | box[c&0xF])
}

func initFast() {
	for w := 0; w < 2; w++ {
		for c := 0; c < 1<<16; c++ {
			s := sbox16(uint16(c), &sbox)
			m := mTab[w][s]
			smTab[w][c] = m
			midTab[w][c] = sbox16(m, &sboxInv)
			misTab[w][c] = sbox16(mTab[w][c], &sboxInv)
		}
	}
	for bi := 0; bi < 8; bi++ {
		j0, j1 := 2*bi, 2*bi+1
		for v := 0; v < 256; v++ {
			n0, n1 := uint64(v>>4), uint64(v&0xF)
			srTab[bi][v] = n0<<(60-4*srInv[j0]) | n1<<(60-4*srInv[j1])
			srInvTab[bi][v] = n0<<(60-4*srPerm[j0]) | n1<<(60-4*srPerm[j1])
		}
	}
}

func scatter(x uint64, tab *[8][256]uint64) uint64 {
	return tab[0][x>>56] | tab[1][x>>48&0xFF] | tab[2][x>>40&0xFF] |
		tab[3][x>>32&0xFF] | tab[4][x>>24&0xFF] | tab[5][x>>16&0xFF] |
		tab[6][x>>8&0xFF] | tab[7][x&0xFF]
}

func chunks(x uint64, t *[2][1 << 16]uint16) uint64 {
	return uint64(t[0][uint16(x>>48)])<<48 | uint64(t[1][uint16(x>>32)])<<32 |
		uint64(t[1][uint16(x>>16)])<<16 | uint64(t[0][uint16(x)])
}

// fastCore is the table-driven PRINCE-core.
func fastCore(s, k1 uint64) uint64 {
	s ^= k1 ^ rc[0]
	for i := 1; i <= 5; i++ {
		s = scatter(chunks(s, &smTab), &srTab)
		s ^= rc[i] ^ k1
	}
	s = chunks(s, &midTab)
	for i := 6; i <= 10; i++ {
		s ^= rc[i] ^ k1
		s = chunks(scatter(s, &srInvTab), &misTab)
	}
	return s ^ rc[11] ^ k1
}
