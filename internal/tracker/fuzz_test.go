package tracker

import (
	"testing"

	"repro/internal/cat"
)

// FuzzMisraGriesGuarantee feeds arbitrary activation streams to both
// tracker implementations and checks the two safety properties the RRS
// design rests on: the estimate never undercounts a tracked row, and the
// spill counter respects the W/(N+1) bound. The seed corpus runs as part
// of the normal suite; use `go test -fuzz=FuzzMisraGriesGuarantee` for
// continuous fuzzing.
func FuzzMisraGriesGuarantee(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1, 2, 3, 4, 5, 1, 1}, uint64(1))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 9, 8, 7}, uint64(3))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint64(9))

	f.Fuzz(func(t *testing.T, stream []byte, seed uint64) {
		if len(stream) > 4096 {
			stream = stream[:4096]
		}
		const capacity, threshold = 8, 5
		trackers := map[string]Tracker{
			"cam": mustCAM(capacity, threshold),
			"cat": mustCAT(cat.Spec{Sets: 4, Ways: 10}, capacity, threshold, seed),
		}
		for name, tr := range trackers {
			truth := map[uint64]int64{}
			var acts int64
			for _, b := range stream {
				row := uint64(b % 31)
				truth[row]++
				acts++
				tr.Observe(row)

				if est, ok := tr.Count(row); ok && est < truth[row] {
					t.Fatalf("%s: row %d estimate %d < true %d", name, row, est, truth[row])
				}
				// Spill bound: spill <= W/(N+1).
				if bound := acts / int64(capacity+1); tr.Spill() > bound {
					t.Fatalf("%s: spill %d exceeds bound %d after %d acts",
						name, tr.Spill(), bound, acts)
				}
				if tr.Len() > tr.Capacity() {
					t.Fatalf("%s: %d entries over capacity", name, tr.Len())
				}
			}
		}
	})
}
