package config

import (
	"strings"
	"testing"
)

func TestDefaultMatchesTable2(t *testing.T) {
	cfg := Default()
	if cfg.Cores != 8 || cfg.ROBSize != 192 || cfg.FetchWidth != 4 {
		t.Fatalf("CPU config %+v", cfg)
	}
	if cfg.LLCBytes != 8<<20 || cfg.LLCWays != 16 || cfg.LineBytes != 64 {
		t.Fatalf("LLC config %+v", cfg)
	}
	if cfg.Channels != 2 || cfg.Ranks != 1 || cfg.Banks != 16 {
		t.Fatalf("topology %+v", cfg)
	}
	if cfg.RowsPerBank != 128<<10 || cfg.RowBytes != 8<<10 {
		t.Fatalf("bank geometry %+v", cfg)
	}
	if cfg.RowHammerThreshold != 4800 {
		t.Fatalf("T_RH = %d", cfg.RowHammerThreshold)
	}
	// 32 GB of DRAM.
	if cfg.MemoryBytes() != 32<<30 {
		t.Fatalf("memory = %d GB", cfg.MemoryBytes()>>30)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimingInBusCycles(t *testing.T) {
	cfg := Default()
	// 45 ns at 1.6 GHz = 72 cycles; 14 ns = 22 cycles (rounded).
	if cfg.TRC != 72 {
		t.Fatalf("TRC = %d, want 72", cfg.TRC)
	}
	if cfg.TRCD != 22 || cfg.TRP != 22 || cfg.TCAS != 22 {
		t.Fatalf("tRCD/tRP/tCAS = %d/%d/%d", cfg.TRCD, cfg.TRP, cfg.TCAS)
	}
	// 64 ms epoch.
	if cfg.EpochCycles != int64(64e-3*1.6e9) {
		t.Fatalf("EpochCycles = %d", cfg.EpochCycles)
	}
}

func TestACTMaxNearPaper(t *testing.T) {
	// The paper quotes 1.36M activations per bank per 64 ms; exact cycle
	// arithmetic gives ~1.42M before refresh overhead.
	got := Default().ACTMax()
	if got < 1_300_000 || got > 1_450_000 {
		t.Fatalf("ACTMax = %d", got)
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	cfg := Default()
	s := cfg.Scaled(16)
	if s.EpochCycles != cfg.EpochCycles/16 {
		t.Fatalf("epoch %d", s.EpochCycles)
	}
	if s.RowHammerThreshold != cfg.RowHammerThreshold/16 {
		t.Fatalf("T_RH %d", s.RowHammerThreshold)
	}
	// ACT_max / T_RH is scale-invariant (structure sizing preserved).
	a := float64(cfg.ACTMax()) / float64(cfg.RowHammerThreshold)
	b := float64(s.ACTMax()) / float64(s.RowHammerThreshold)
	if b < a*0.95 || b > a*1.05 {
		t.Fatalf("sizing ratio drifted: %.1f vs %.1f", a, b)
	}
}

func TestScaledClampsThreshold(t *testing.T) {
	s := Default().Scaled(10000)
	if s.RowHammerThreshold < 6 {
		t.Fatalf("T_RH = %d below clamp", s.RowHammerThreshold)
	}
}

func TestScaledFactorOneIsIdentity(t *testing.T) {
	if Default().Scaled(1) != Default() {
		t.Fatal("Scaled(1) changed the config")
	}
	if Default().Scaled(0) != Default() {
		t.Fatal("Scaled(0) changed the config")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ROBSize = -1 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.RowsPerBank = 0 },
		func(c *Config) { c.RowBytes = 100 }, // not a line multiple
		func(c *Config) { c.LLCBytes = 0 },
		func(c *Config) { c.TRC = 0 },
		func(c *Config) { c.TRFC = c.TREFI + 1 },
		func(c *Config) { c.EpochCycles = 0 },
		func(c *Config) { c.RowHammerThreshold = 0 },
	}
	for i, m := range mutations {
		cfg := Default()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestStringMentionsKeyFacts(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"8-core", "8MB", "T_RH=4800"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestTotalRows(t *testing.T) {
	if got := Default().TotalRows(); got != 2*1*16*(128<<10) {
		t.Fatalf("TotalRows = %d", got)
	}
}
