package prince

import (
	"testing"
	"testing/quick"
)

// Official test vectors from the PRINCE paper (Appendix A).
var vectors = []struct {
	pt, k0, k1, ct uint64
}{
	{0x0000000000000000, 0x0000000000000000, 0x0000000000000000, 0x818665aa0d02dfda},
	{0xffffffffffffffff, 0x0000000000000000, 0x0000000000000000, 0x604ae6ca03c20ada},
	{0x0000000000000000, 0xffffffffffffffff, 0x0000000000000000, 0x9fb51935fc3df524},
	{0x0000000000000000, 0x0000000000000000, 0xffffffffffffffff, 0x78a54cbe737bb7ef},
	{0x0123456789abcdef, 0x0000000000000000, 0xfedcba9876543210, 0xae25ad3ca8fa9ccf},
}

func TestEncryptVectors(t *testing.T) {
	for i, v := range vectors {
		c := New(v.k0, v.k1)
		if got := c.Encrypt(v.pt); got != v.ct {
			t.Errorf("vector %d: Encrypt(%016x) = %016x, want %016x", i, v.pt, got, v.ct)
		}
	}
}

func TestDecryptVectors(t *testing.T) {
	for i, v := range vectors {
		c := New(v.k0, v.k1)
		if got := c.Decrypt(v.ct); got != v.pt {
			t.Errorf("vector %d: Decrypt(%016x) = %016x, want %016x", i, v.ct, got, v.pt)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c := New(0xdeadbeefcafebabe, 0x0123456789abcdef)
	f := func(m uint64) bool { return c.Decrypt(c.Encrypt(m)) == m }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptIsPermutation(t *testing.T) {
	// Distinct plaintexts must produce distinct ciphertexts.
	c := New(1, 2)
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 4096; i++ {
		ct := c.Encrypt(i)
		if prev, ok := seen[ct]; ok {
			t.Fatalf("collision: Encrypt(%d) == Encrypt(%d) == %016x", i, prev, ct)
		}
		seen[ct] = i
	}
}

func TestMPrimeInvolution(t *testing.T) {
	f := func(x uint64) bool { return mPrime(mPrime(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftRowsInverse(t *testing.T) {
	f := func(x uint64) bool {
		return permuteNibbles(permuteNibbles(x, &srPerm), &srInv) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSboxInverse(t *testing.T) {
	for i := uint64(0); i < 16; i++ {
		if sboxInv[sbox[i]] != i {
			t.Fatalf("sboxInv[sbox[%d]] = %d", i, sboxInv[sbox[i]])
		}
	}
}

func TestCTRDeterminism(t *testing.T) {
	a, b := NewCTR(7, 9), NewCTR(7, 9)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("step %d: %016x != %016x", i, x, y)
		}
	}
}

func TestCTRDistinctKeysDiffer(t *testing.T) {
	a, b := NewCTR(7, 9), NewCTR(7, 10)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d/100 outputs matched across distinct keys", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	g := Seeded(42)
	for _, n := range []uint64{1, 2, 3, 7, 128, 128 << 10, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := g.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Seeded(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Seeded(1).Intn(0)
}

func TestUint64nRoughlyUniform(t *testing.T) {
	g := Seeded(99)
	const n, draws = 8, 8000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[g.Uint64n(n)]++
	}
	for i, c := range counts {
		if c < draws/n/2 || c > draws/n*2 {
			t.Errorf("bucket %d: count %d far from expected %d", i, c, draws/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := Seeded(5)
	for i := 0; i < 1000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestHash64IndependentKeys(t *testing.T) {
	h1 := NewHash64(0x1111, 0x2222)
	h2 := NewHash64(0x3333, 0x4444)
	matches := 0
	for x := uint64(0); x < 256; x++ {
		if h1.Sum(x)%64 == h2.Sum(x)%64 {
			matches++
		}
	}
	// Two independent hashes into 64 sets agree ~1/64 of the time; 256/64=4
	// expected. Flag only gross correlation.
	if matches > 30 {
		t.Fatalf("hashes agree on %d/256 inputs — not independent", matches)
	}
}

func TestSeededDistinctSeedsDiffer(t *testing.T) {
	if Seeded(1).Next() == Seeded(2).Next() {
		t.Fatal("distinct seeds produced identical first output")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := New(0x0123456789abcdef, 0xfedcba9876543210)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.Encrypt(uint64(i))
	}
	_ = sink
}

func BenchmarkCTRNext(b *testing.B) {
	g := NewCTR(1, 2)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= g.Next()
	}
	_ = sink
}

func TestFastMatchesReference(t *testing.T) {
	c := New(0xdeadbeefcafebabe, 0x0123456789abcdef)
	f := func(m, k1 uint64) bool {
		return fastCore(m, k1) == c.core(m, k1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
