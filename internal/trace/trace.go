// Package trace defines the memory-access trace format the cores consume
// and synthetic workload generators calibrated to the paper's Table 3
// characteristics (footprint, MPKI, and the number of rows receiving 800+
// activations per 64 ms window).
//
// The paper drives USIMM with Pin-captured SPEC/GAP/BIOBENCH/PARSEC/
// COMMERCIAL traces; those traces are proprietary-ish and enormous, so
// this package substitutes parameterized generators that reproduce the
// three statistics the RRS results actually depend on: how often the
// workload misses the LLC (MPKI), how large its footprint is, and how
// concentrated its row activations are (hot rows). DESIGN.md documents the
// substitution.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Record is one entry of a core's trace: the number of non-memory
// instructions preceding a memory operation, the memory line address, and
// whether it is a store. Addresses are cache-line indices in the paper's
// physical address space.
type Record struct {
	Gap   uint32
	Line  uint64
	Write bool
}

// Reader produces a stream of records. Synthetic generators are endless;
// file readers report io.EOF via ok == false.
type Reader interface {
	Next() (Record, bool)
}

// --- Binary trace file format ---

// Writer serializes records to a stream (13 bytes each, little endian).
type Writer struct {
	w io.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write appends one record.
func (t *Writer) Write(r Record) error {
	var buf [13]byte
	binary.LittleEndian.PutUint32(buf[0:4], r.Gap)
	binary.LittleEndian.PutUint64(buf[4:12], r.Line)
	if r.Write {
		buf[12] = 1
	}
	_, err := t.w.Write(buf[:])
	return err
}

// ErrTornTrace reports a trace file whose final record is truncated:
// the stream ended mid-record (fewer than 13 bytes), so data was lost —
// typically a writer killed mid-flush. A clean end falls exactly on a
// record boundary and surfaces as io.EOF instead.
var ErrTornTrace = errors.New("trace: torn trailing record")

// FileReader deserializes records written by Writer.
type FileReader struct {
	r   io.Reader
	err error
}

// NewFileReader wraps r.
func NewFileReader(r io.Reader) *FileReader { return &FileReader{r: r} }

// Next implements Reader.
func (f *FileReader) Next() (Record, bool) {
	if f.err != nil {
		return Record{}, false
	}
	var buf [13]byte
	if n, err := io.ReadFull(f.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			// A partial record: distinguish torn data from a clean end.
			err = fmt.Errorf("%w: %d trailing bytes", ErrTornTrace, n)
		}
		f.err = err
		return Record{}, false
	}
	return Record{
		Gap:   binary.LittleEndian.Uint32(buf[0:4]),
		Line:  binary.LittleEndian.Uint64(buf[4:12]),
		Write: buf[12] != 0,
	}, true
}

// Err returns the terminal error: io.EOF after a clean end, ErrTornTrace
// (wrapped) after a truncated trailing record.
func (f *FileReader) Err() error { return f.err }

// --- Synthetic workloads ---

// Workload describes a benchmark's memory behaviour, with the Table 3
// figures it is calibrated against.
type Workload struct {
	// Name and Suite identify the benchmark ("hmmer", "SPEC2006").
	Name  string
	Suite string
	// FootprintBytes is the resident memory size the paper reports.
	FootprintBytes int64
	// MPKI is LLC misses per 1000 instructions (Table 3).
	MPKI float64
	// HotRows is the paper's count of rows with 800+ activations per
	// 64 ms (Table 3's "Rows ACT-800+" column); it calibrates how
	// concentrated the generated stream is.
	HotRows int
	// WriteFraction of memory accesses that are stores.
	WriteFraction float64
}

// String implements fmt.Stringer.
func (w Workload) String() string {
	return fmt.Sprintf("%s(%s) fp=%.2fGB mpki=%.2f hot=%d",
		w.Name, w.Suite, float64(w.FootprintBytes)/(1<<30), w.MPKI, w.HotRows)
}

// Generator synthesizes an endless post-LLC access stream with the
// workload's characteristics. The stream has three components:
//
//   - a hot component touching HotRows distinct rows, giving each enough
//     activations per epoch to cross the 800-ACT line,
//   - a streaming component walking the footprint sequentially (row
//     buffer friendly),
//   - a random component spread over the footprint (row buffer hostile).
type Generator struct {
	w        Workload
	lineSpan uint64 // footprint in lines
	rowLines uint64 // lines per DRAM row
	gapMean  float64

	hotShare    float64
	streamShare float64
	stride      uint64
	hotRowBase  []uint64 // first line of each hot row

	rng    splitmix
	cursor uint64
	hotIdx int
}

// splitmix is a fast 64-bit PRNG (splitmix64). Trace synthesis does not
// need the cryptographic PRINCE generator the RRS hardware uses — that
// stays confined to swap destinations and CAT hashing.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *splitmix) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *splitmix) uint64n(n uint64) uint64 {
	if n&(n-1) == 0 {
		return r.next() & (n - 1)
	}
	return r.next() % n // bias < 2^-40 for n < 2^24; fine for synthesis
}

func (r *splitmix) intn(n int) int { return int(r.uint64n(uint64(n))) }

// GeneratorParams tie the generator to the memory geometry.
type GeneratorParams struct {
	// LineBytes is the cache line size (64).
	LineBytes int
	// RowBytes is the DRAM row size (8 KB); hot rows are aligned to it.
	RowBytes int
	// HotShare is the fraction of accesses aimed at hot rows; 0 derives
	// a share that gives each hot row ~1000 accesses per million
	// instructions per core at the workload's MPKI.
	HotShare float64
	// StreamShare is the fraction of accesses that walk sequentially
	// (default 0.3).
	StreamShare float64
	// StreamStride is the line step of the streaming walk; the default
	// (1/8 of a row, 8 touches per row) keeps any single row's burst
	// well below the swap threshold at every experiment scale — at full
	// scale even a dense walk (128 lines/row) sits far below T_RRS =
	// 800, so the stride only matters for scaled runs.
	StreamStride uint64
	// Seed drives the random components.
	Seed uint64
}

// NewGenerator builds a generator for w.
func NewGenerator(w Workload, p GeneratorParams) *Generator {
	if p.LineBytes == 0 {
		p.LineBytes = 64
	}
	if p.RowBytes == 0 {
		p.RowBytes = 8 << 10
	}
	if p.StreamShare == 0 {
		p.StreamShare = 0.3
	}
	lineSpan := uint64(w.FootprintBytes) / uint64(p.LineBytes)
	if lineSpan < 1024 {
		lineSpan = 1024
	}
	rowLines := uint64(p.RowBytes / p.LineBytes)

	stride := p.StreamStride
	if stride == 0 {
		stride = rowLines / 8
		if stride < 1 {
			stride = 1
		}
	}
	g := &Generator{
		w:           w,
		lineSpan:    lineSpan,
		rowLines:    rowLines,
		gapMean:     1000 / maxf(w.MPKI, 0.01),
		streamShare: p.StreamShare,
		stride:      stride,
		rng:         splitmix{s: p.Seed ^ hashName(w.Name)},
	}

	if w.HotRows > 0 {
		// Spread hot rows over distinct (bank, row) combinations by
		// spacing them a prime number of rows apart in the address space.
		g.hotRowBase = make([]uint64, w.HotRows)
		span := lineSpan / rowLines // rows in footprint
		if span == 0 {
			span = 1
		}
		for i := range g.hotRowBase {
			g.hotRowBase[i] = (uint64(i) * 2654435761 % span) * rowLines
		}
		hs := p.HotShare
		if hs == 0 {
			// Calibrate so each hot row receives activations at ~1.25x
			// the 800-per-64ms line. The per-core instruction rate uses
			// an MPKI-aware IPC estimate (memory-bound workloads run far
			// below the 4-wide peak). The Workload's HotRows here is the
			// per-core share; sim splits the system-wide Table 3 count
			// across cores.
			const rowActRate = 800 * 1.25 / 0.064 // target ACT/s per hot row
			ipc := 4 / (1 + 0.4*g.w.MPKI)
			if ipc < 0.25 {
				ipc = 0.25
			}
			missRate := g.w.MPKI / 1000 * ipc * 3.2e9
			hs = float64(g.w.HotRows) * rowActRate / missRate
			if hs > 0.95 {
				hs = 0.95
			}
		}
		g.hotShare = hs
	}
	return g
}

// PerCoreSeed derives the generator seed for one core of a rate-mode run
// from the run seed. Distinct cores must draw from distinct random streams:
// replicating one workload across cores with identical seeds would simulate
// perfectly correlated cores, whose accesses march through the same rows in
// lockstep and overstate both row-buffer locality and hot-row pressure.
//
// The derivation feeds a distinct input per (base, core) pair through the
// splitmix64 output permutation: input = base + (core+1)*gamma with the
// odd constant gamma = 0x9e3779b97f4a7c15. The +1 keeps core 0's stream
// distinct from a bare splitmix chain seeded with base, and since the
// finalizer is a bijection, all cores of a run are guaranteed distinct
// seeds. (The previous scheme offset the raw generator state by the 32-bit
// constant 0x9e3779b9 per core, which made adjacent cores' streams phase
// offsets of a single splitmix orbit and relied entirely on the output
// finalizer for decorrelation.)
func PerCoreSeed(base uint64, core int) uint64 {
	x := base + (uint64(core)+1)*0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Next implements Reader. The gap is exponentially distributed around the
// MPKI-derived mean, making miss bursts and lulls realistic.
func (g *Generator) Next() (Record, bool) {
	gap := g.expGap()
	r := g.rng.float64()
	var line uint64
	switch {
	case r < g.hotShare && len(g.hotRowBase) > 0:
		// Hot-row access: random column within one hot row. Round-robin
		// rotation gives each row the regular inter-access spacing of a
		// loop-driven working set (important for the BlockHammer
		// comparison: regular spacing above tDelay is not throttled).
		row := g.hotRowBase[g.hotIdx]
		g.hotIdx = (g.hotIdx + 1) % len(g.hotRowBase)
		line = row + g.rng.uint64n(g.rowLines)
	case r < g.hotShare+g.streamShare:
		g.cursor = (g.cursor + g.stride) % g.lineSpan
		line = g.cursor
	default:
		line = g.rng.uint64n(g.lineSpan)
	}
	return Record{
		Gap:   gap,
		Line:  line,
		Write: g.rng.float64() < g.w.WriteFraction,
	}, true
}

// expGap draws an exponentially distributed instruction gap.
func (g *Generator) expGap() uint32 {
	u := g.rng.float64()
	if u >= 1 {
		u = 0.999999
	}
	// Inverse CDF of Exp(1/gapMean).
	v := -g.gapMean * math.Log1p(-u)
	if v > 1e9 {
		v = 1e9
	}
	return uint32(v)
}
