// Package stats provides small statistics and table-formatting helpers used
// by the simulator and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries make the result 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; it panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	pos := p / 100 * float64(len(ys)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(ys) {
		return ys[lo]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Histogram is a fixed-bucket counting histogram over int64 values.
type Histogram struct {
	bounds []int64 // ascending upper bounds; last bucket is overflow
	counts []int64
	total  int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. Values above the last bound land in an overflow bucket.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Add records one observation.
func (h *Histogram) Add(v int64) {
	h.total++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the count in bucket i (len(bounds) is the overflow bucket).
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets including overflow.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Table renders an aligned text table: one header row plus data rows.
// It is deliberately minimal — experiments print tables that match the
// paper's rows, so plain text is enough.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.3f", v)
	case av >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Counter is a named monotonic counter set, used for simulator statistics.
type Counter struct {
	m     map[string]int64
	order []string
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter {
	return &Counter{m: make(map[string]int64)}
}

// Add increments name by delta, registering it on first use.
func (c *Counter) Add(name string, delta int64) {
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] += delta
}

// Get returns the value of name (0 if never added).
func (c *Counter) Get(name string) int64 { return c.m[name] }

// Names returns counter names in first-use order.
func (c *Counter) Names() []string { return append([]string(nil), c.order...) }

// CSV renders the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
