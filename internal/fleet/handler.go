package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/service"
)

// Fleet API, layered over the single-node service API.
//
//	POST /v1/jobs                 fleet submit: ring-routed, forwarded to the owner
//	GET/DELETE /v1/jobs/{id}...   proxied to the job's home node (by id prefix)
//	POST /v1/sweeps               accepted locally; children ring-route by their own hash
//	GET  /v1/results/{hash}       result by content hash, fleet-wide (local store, then peers)
//	GET  /v1/fleet/cache/{hash}   local result-cache lookup (the fan-out target)
//	POST /v1/fleet/replica        accept a result copy into the local cache
//	POST /v1/fleet/gossip         membership-table exchange (probe piggyback)
//	GET  /v1/fleet/members        the local membership table
//	POST /v1/fleet/steal          lend one queued job to a thief peer
//	POST /v1/fleet/donate         accept a stolen job's result back
//	GET  /v1/fleet/status         ring membership, load and lease state
//	/v1/fleet/local/*             the unrouted single-node API (peer traffic)
//
// Everything else (list, healthz, readyz, metrics) falls through to the
// local service handler.

// Handler serves the fleet API over the node.
func (n *Node) Handler() http.Handler {
	local := n.local
	mux := http.NewServeMux()

	// The internal surface: the plain single-node API with no fleet
	// routing on top. Forwarded submissions and proxied polls land here,
	// so a peer-to-peer request is always handled by the node that
	// receives it — a forward cannot cascade into a forwarding loop.
	mux.Handle(internalPrefix+"/", http.StripPrefix(internalPrefix, local))

	mux.HandleFunc("POST /v1/jobs", n.handleFleetSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", n.handleRouted)
	mux.HandleFunc("GET /v1/jobs/{id}/result", n.handleRouted)
	mux.HandleFunc("DELETE /v1/jobs/{id}", n.handleRouted)

	mux.HandleFunc("GET /v1/results/{hash}", n.handleResultByHash)

	mux.HandleFunc("GET /v1/fleet/cache/{hash}", n.handleCache)
	mux.HandleFunc("POST /v1/fleet/replica", n.handleReplica)
	mux.HandleFunc("POST /v1/fleet/gossip", n.handleGossip)
	mux.HandleFunc("GET /v1/fleet/members", n.handleMembers)
	mux.HandleFunc("POST /v1/fleet/steal", n.handleSteal)
	mux.HandleFunc("POST /v1/fleet/donate", n.handleDonate)
	mux.HandleFunc("GET /v1/fleet/status", n.handleStatus)

	mux.Handle("/", local)
	return service.RecoverMiddleware(n.met, mux)
}

// handleFleetSubmit routes a submission to its ring owner. The owner is
// rank(...)[0] over the live set; if it is unreachable the walk
// continues down the failover order, and if every remote candidate
// fails the spec runs locally — a lone survivor still serves.
func (n *Node) handleFleetSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := service.ReadSpec(w, r)
	if !ok {
		return
	}
	// Validate before routing: a malformed spec should fail here with a
	// 400, not burn a forward round trip to fail identically remotely.
	if err := spec.Validate(); err != nil {
		service.WriteError(w, http.StatusBadRequest, err)
		return
	}
	order := rank(spec.Hash(), n.liveSet())
	if len(order) == 0 {
		// The live set is empty: this node is draining and sees no
		// routable peer. Refusing with a retry hint is strictly better
		// than the old behavior (running locally while unready) — the
		// client backs off and resubmits once the detector readmits a
		// peer or a replacement joins.
		n.met.Inc("rrs_fleet_no_owner_total", 1)
		w.Header().Set("Retry-After", "1")
		service.WriteError(w, http.StatusServiceUnavailable,
			errors.New("no live fleet members to route to; retry shortly"))
		return
	}
	first := true
	for _, p := range order {
		if p.ID == n.self.ID {
			// We are the best live candidate; run it here.
			service.RespondSubmit(n.mgr, w, spec)
			return
		}
		if !first {
			n.met.Inc("rrs_fleet_forward_failovers_total", 1)
		}
		first = false
		v, err := n.clientFor(p).Submit(r.Context(), spec)
		if err == nil {
			n.met.Inc("rrs_fleet_forwards_total", 1)
			status := http.StatusCreated
			if v.CacheHit {
				status = http.StatusOK
			}
			service.WriteJSON(w, status, v)
			return
		}
		var apiErr *service.APIError
		if errors.As(err, &apiErr) && !apiErr.Transient() {
			// The owner answered with a permanent verdict (a 4xx) —
			// relay it; trying another peer would only repeat it.
			n.met.Inc("rrs_fleet_forwards_total", 1)
			service.WriteError(w, apiErr.Status, errors.New(apiErr.Message))
			return
		}
		// Transient failure after retries: the failure detector will
		// catch up in a few probe rounds; meanwhile, fail over now.
	}
	// Every remote candidate failed (or the ring is empty because this
	// node is draining). Local execution is the degraded-mode answer —
	// RespondSubmit turns a draining manager into the proper 503.
	n.met.Inc("rrs_fleet_local_fallbacks_total", 1)
	service.RespondSubmit(n.mgr, w, spec)
}

// homeOf extracts the home node from a fleet job id ("n1.job-000042" →
// "n1"). ok is false for unprefixed or self-owned ids, which are served
// locally.
func (n *Node) homeOf(id string) (Peer, bool) {
	prefix, _, found := strings.Cut(id, ".")
	if !found || prefix == n.self.ID {
		return Peer{}, false
	}
	return n.peerByID(prefix)
}

// handleRouted serves job status/result/cancel for any node's jobs: the
// job id carries its home node's prefix, and requests for a remote
// node's job proxy to that node's internal surface. An unreachable home
// answers 404 — deliberately, because the client's recovery for a lost
// job is to resubmit the spec, which re-routes over the shrunken ring.
func (n *Node) handleRouted(w http.ResponseWriter, r *http.Request) {
	p, remote := n.homeOf(r.PathValue("id"))
	if !remote {
		// Local job (or an id from before fleet mode); strip nothing —
		// the local handler resolves the same path.
		n.local.ServeHTTP(w, r)
		return
	}
	n.met.Inc("rrs_fleet_proxied_total", 1)
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.URL+internalPrefix+r.URL.Path, nil)
	if err != nil {
		service.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		n.met.Inc("rrs_fleet_proxy_misses_total", 1)
		service.WriteError(w, http.StatusNotFound,
			fmt.Errorf("job's home node %s is unreachable: resubmit the spec", p.ID))
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleCache answers a peer's fan-out lookup from the local result
// cache only — it must never trigger a run or a further fan-out.
func (n *Node) handleCache(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if res, ok := n.mgr.CachedResult(hash); ok {
		service.WriteJSON(w, http.StatusOK, cacheEnvelope{Hash: hash, Result: res})
		return
	}
	service.WriteError(w, http.StatusNotFound,
		fmt.Errorf("hash %s not cached on %s", hash, n.self.ID))
}

// handleGossip is the receiving half of the probe-piggybacked
// membership exchange: absorb the caller's table, answer with ours. It
// deliberately answers while draining — that is how this node's own
// tombstone spreads — and doubles as the liveness half of a probe.
func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	var in gossipPayload
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&in); err != nil {
		http.Error(w, "bad gossip payload: "+err.Error(), http.StatusBadRequest)
		return
	}
	n.absorb(in.Members)
	service.WriteJSON(w, http.StatusOK,
		gossipPayload{From: n.self.ID, Members: n.Members()})
}

// handleMembers exposes the membership table read-only (operators,
// join scripts, tests).
func (n *Node) handleMembers(w http.ResponseWriter, r *http.Request) {
	service.WriteJSON(w, http.StatusOK,
		gossipPayload{From: n.self.ID, Members: n.Members()})
}

// handleStatus reports ring membership and load — the operator's view
// of one node's opinion of the fleet.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	backlog, busy, workers := n.mgr.Load()
	n.mu.Lock()
	lent := len(n.lent)
	n.mu.Unlock()
	service.WriteJSON(w, http.StatusOK, map[string]any{
		"self":               n.self,
		"draining":           n.mgr.Draining(),
		"backlog":            backlog,
		"busy":               busy,
		"workers":            workers,
		"lent":               lent,
		"peers":              n.det.Snapshot(),
		"members":            n.Members(),
		"membership_version": n.mem.currentVersion(),
		"replica_lag":        len(n.repq),
	})
}
