package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/security"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table1 renders the paper's Table 1 (Row Hammer threshold over DRAM
// generations).
func Table1() *stats.Table {
	t := stats.NewTable("DRAM Generation", "RH-Threshold")
	for _, r := range security.Table1() {
		t.AddRow(r.Generation, r.Threshold)
	}
	return t
}

// Table2 renders the baseline system configuration (the paper's Table 2).
func Table2() *stats.Table {
	cfg := config.Default()
	t := stats.NewTable("Parameter", "Value")
	t.AddRow("Cores (OoO)", cfg.Cores)
	t.AddRow("Processor clock speed", "3.2 GHz")
	t.AddRow("ROB size", cfg.ROBSize)
	t.AddRow("Fetch and Retire width", cfg.FetchWidth)
	t.AddRow("Last Level Cache (Shared)", fmt.Sprintf("%d MB, %d-way, %d B lines",
		cfg.LLCBytes>>20, cfg.LLCWays, cfg.LineBytes))
	t.AddRow("Memory size", fmt.Sprintf("%d GB - DDR4", cfg.MemoryBytes()>>30))
	t.AddRow("Memory bus speed", "1.6 GHz (3.2 GHz DDR)")
	t.AddRow("tRCD-tRP-tCAS", "14-14-14 ns")
	t.AddRow("tRC, tRFC, tREFI", "45 ns, 350 ns, 7.8 us")
	t.AddRow("Banks x Ranks x Channels", fmt.Sprintf("%d x %d x %d",
		cfg.Banks, cfg.Ranks, cfg.Channels))
	t.AddRow("Rows per bank", fmt.Sprintf("%dK", cfg.RowsPerBank>>10))
	t.AddRow("Size of row", fmt.Sprintf("%d KB", cfg.RowBytes>>10))
	return t
}

// Table3Row is one measured row of the Table 3 reproduction.
type Table3Row struct {
	Workload     trace.Workload
	MeasuredMPKI float64
	// MeasuredHotRows is rows with >= (scaled) 800 activations per epoch,
	// averaged over epochs.
	MeasuredHotRows float64
}

// Table3 reruns the workload characterization: footprint and MPKI come
// from the catalog; hot rows are measured on the simulated baseline.
func Table3(s Scale) ([]Table3Row, *stats.Table, error) {
	ws := s.workloads()
	results, err := runAll(ws, func(w trace.Workload) (sim.Result, error) {
		return s.runSpec(s.spec(service.MitNone, 0, w))
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []Table3Row
	t := stats.NewTable("Workload", "Footprint(GB)", "MPKI(paper)", "MPKI(meas)",
		"ACT-hot(paper)", "ACT-hot(meas)")
	for i, w := range ws {
		res := results[i]
		rows = append(rows, Table3Row{Workload: w, MeasuredMPKI: res.MPKI,
			MeasuredHotRows: res.HotRowsPerEpoch})
		t.AddRow(w.Name, float64(w.FootprintBytes)/(1<<30), w.MPKI, res.MPKI,
			w.HotRows, res.HotRowsPerEpoch)
	}
	return rows, t, nil
}

// Table4 reproduces the security analysis table: attack iterations and
// time for the candidate swap thresholds (and the all-bank variant for
// T = 800).
func Table4() *stats.Table {
	t := stats.NewTable("RRS Threshold (T)", "k", "Attack Iterations", "Attack Time")
	for _, T := range []int{960, 800, 685} {
		m := security.PaperModel(T)
		t.AddRow(T, m.K(), fmt.Sprintf("%.2g", m.AttackIterations()),
			security.FormatDuration(m.AttackSeconds()))
	}
	all := security.AllBankPaperModel(800)
	t.AddRow("800 (all-bank)", all.K(), fmt.Sprintf("%.2g", all.AttackIterations()),
		security.FormatDuration(all.AttackSeconds()))
	return t
}

// Table5 reproduces the storage analysis.
func Table5() *stats.Table {
	cfg := config.Default()
	t := stats.NewTable("Structure", "Entry-Size(bits)", "Entries", "Cost(KB)")
	for _, r := range power.StorageTable(cfg, power.PaperStorageParams()) {
		if r.Structure == "Total" {
			t.AddRow(r.Structure, "", "", r.KB)
			continue
		}
		if r.Entries == 0 {
			t.AddRow(r.Structure, "-", "-", r.KB)
			continue
		}
		t.AddRow(r.Structure, r.EntryBits, r.Entries, r.KB)
	}
	t.AddRow("Per rank", "", "", power.PerRankKB(cfg, power.PaperStorageParams()))
	return t
}

// Table6Result holds the measured power overheads.
type Table6Result struct {
	DRAMOverheadPercent float64
	SRAMPowerMW         float64
}

// Table6 measures the DRAM power overhead of RRS (row-swap transfers) on
// the experiment workloads and the SRAM power of the RRS structures.
func Table6(s Scale) (Table6Result, *stats.Table, error) {
	pairs, err := runAll(s.workloads(), func(w trace.Workload) (normPair, error) {
		norm, base, mit, err := s.normalizedSpec(s.spec(service.MitRRS, 0, w))
		return normPair{norm: norm, base: base, mit: mit}, err
	})
	if err != nil {
		return Table6Result{}, nil, err
	}
	var overheads []float64
	for _, p := range pairs {
		// Runs are time-bounded, so the two configurations complete
		// different amounts of work; compare energy per instruction.
		if p.base.Instructions == 0 || p.mit.Instructions == 0 {
			continue
		}
		basePer := p.base.Energy.TotalMJ() / float64(p.base.Instructions)
		rrsPer := p.mit.Energy.TotalMJ() / float64(p.mit.Instructions)
		overheads = append(overheads, (rrsPer/basePer-1)*100)
	}
	cfg := config.Default()
	// Per-rank lookup rate: every access consults the RIT; assume the
	// paper's bus near saturation for the upper bound.
	sram := power.DefaultSRAMModel().PowerMW(power.PerRankKB(cfg, power.PaperStorageParams()), 4e8)
	res := Table6Result{
		DRAMOverheadPercent: stats.Mean(overheads),
		SRAMPowerMW:         sram,
	}
	t := stats.NewTable("Type of Power Overhead", "Average")
	t.AddRow("DRAM Power Overhead (Row-Swap)", fmt.Sprintf("%.2f%%", res.DRAMOverheadPercent))
	t.AddRow("SRAM Power Overhead (RRS Structures)", fmt.Sprintf("%.0f mW", res.SRAMPowerMW))
	return res, t, nil
}

// Table7Row is one defense/attack cell of the Table 7 comparison.
type Table7Row struct {
	Defense  string
	Attack   string
	Defended bool
	Flips    int
}

// Table7 reruns the victim-focused vs RRS comparison: classic double-sided
// and Half-Double attacks against idealized victim-focused mitigation and
// RRS. The attack substrate runs at the attack-test scale (T_RH scaled so
// the disturbance model's margins match full scale).
func Table7() ([]Table7Row, *stats.Table) {
	cfg := attackScaleConfig()
	alpha2 := attack.Alpha2For(cfg)

	var rows []Table7Row
	t := stats.NewTable("Defense", "Classic (double-sided)", "Complex (Half-Double)")
	for _, d := range []struct {
		name string
		mit  mitigationFactory
	}{
		{"Victim-Focused (ideal)", idealFactory},
		{"RRS", attackRRSFactory},
	} {
		var cells []string
		for _, mk := range []func() attack.Pattern{
			func() attack.Pattern { return attack.NewDoubleSided(100) },
			func() attack.Pattern { return attack.NewHalfDouble(100) },
		} {
			p := mk()
			ctl, fm := attack.NewSystem(cfg, 0, alpha2, d.mit)
			res := attack.Run(ctl, fm, p, attack.Options{Epochs: 3})
			rows = append(rows, Table7Row{Defense: d.name, Attack: p.Name(),
				Defended: res.Defended(), Flips: res.Flips})
			if res.Defended() {
				cells = append(cells, "mitigated")
			} else {
				cells = append(cells, fmt.Sprintf("BIT FLIPS (%d)", res.Flips))
			}
		}
		t.AddRow(d.name, cells[0], cells[1])
	}
	return rows, t
}
