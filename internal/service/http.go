package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// API paths served by Handler.
//
//	POST   /v1/jobs          submit a Spec        → 201 JobView (200 on cache hit)
//	GET    /v1/jobs          list jobs            → 200 {"jobs":[JobView...]}
//	GET    /v1/jobs/{id}     job status           → 200 JobView
//	GET    /v1/jobs/{id}/result                   → 200 ResultEnvelope | 202 while active
//	DELETE /v1/jobs/{id}     cancel active / delete terminal → 200 JobView
//	POST   /v1/sweeps        submit a SweepSpec   → 201 SweepView (200 when coalesced)
//	GET    /v1/sweeps        list sweeps          → 200 {"sweeps":[SweepView...]}
//	GET    /v1/sweeps/{id}   aggregated progress  → 200 SweepView (with children)
//	GET    /v1/sweeps/{id}/results                → 200 SweepResultsEnvelope | 202 while active
//	DELETE /v1/sweeps/{id}   cancel active / delete terminal → 200 SweepView
//	GET    /v1/results/{hash} result by content hash → 200 ResultEnvelope | 404
//	GET    /healthz          liveness             → 200 {"status":"ok",...}
//	GET    /readyz           readiness            → 200, or 503 while draining/overloaded
//	GET    /metrics          Prometheus text (or JSON with ?format=json)
const apiPrefix = "/v1/jobs"

// maxSpecBytes bounds POST /v1/jobs request bodies. A Spec is a few
// hundred bytes of scalars and workload names; 1 MiB is generous, and
// the bound turns an attacker streaming an endless body into a 413
// instead of an unbounded io.ReadAll allocation.
const maxSpecBytes = 1 << 20

// retryAfterSeconds is the hint attached to 429 (queue full) and 202
// (result pending) responses so well-behaved clients back off without
// guessing a cadence.
const retryAfterSeconds = 1

// ResultEnvelope wraps a finished job's numbers for GET .../result.
// sim.Result serializes without its Mitigation field (tagged json:"-"),
// so the payload is purely numeric.
type ResultEnvelope struct {
	ID       string     `json:"id"`
	Hash     string     `json:"hash"`
	CacheHit bool       `json:"cache_hit"`
	Result   sim.Result `json:"result"`
}

// errorBody is every non-2xx payload.
type errorBody struct {
	Error string `json:"error"`
}

// Handler serves the job API over m.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+apiPrefix, func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	})
	mux.HandleFunc("GET "+apiPrefix, func(w http.ResponseWriter, r *http.Request) {
		handleList(m, w, r)
	})
	mux.HandleFunc("GET "+apiPrefix+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleGet(m, w, r)
	})
	mux.HandleFunc("GET "+apiPrefix+"/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleResult(m, w, r)
	})
	mux.HandleFunc("DELETE "+apiPrefix+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleDelete(m, w, r)
	})
	mux.HandleFunc("POST "+sweepPrefix, func(w http.ResponseWriter, r *http.Request) {
		handleSubmitSweep(m, w, r)
	})
	mux.HandleFunc("GET "+sweepPrefix, func(w http.ResponseWriter, r *http.Request) {
		handleListSweeps(m, w, r)
	})
	mux.HandleFunc("GET "+sweepPrefix+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleGetSweep(m, w, r)
	})
	mux.HandleFunc("GET "+sweepPrefix+"/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		handleSweepResults(m, w, r)
	})
	mux.HandleFunc("DELETE "+sweepPrefix+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleDeleteSweep(m, w, r)
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		handleResultByHash(m, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"workers": m.opts.Workers,
			"queue":   m.queue.Len(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		handleReady(m, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(m.Metrics(), w, r)
	})
	return recoverMiddleware(m.Metrics(), mux)
}

// RecoverMiddleware exposes the panic-containment middleware to the
// fleet layer, whose handler wraps Handler with routing logic of its
// own and needs the same blast-radius guarantee.
func RecoverMiddleware(met *Metrics, next http.Handler) http.Handler {
	return recoverMiddleware(met, next)
}

// WriteJSON writes v as an indented JSON response with the given
// status. Exported for the fleet handler.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError writes err as the canonical JSON error body. Exported for
// the fleet handler.
func WriteError(w http.ResponseWriter, status int, err error) { writeError(w, status, err) }

// recoverMiddleware contains a handler panic to its own request: the
// client gets a 500 with a JSON error and the process keeps serving.
func recoverMiddleware(met *Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				met.Inc("rrs_http_panics_total", 1)
				// If the handler already wrote headers this is a no-op
				// on the status line, but the connection still closes
				// cleanly instead of taking the server down.
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	spec, ok := ReadSpec(w, r)
	if !ok {
		return
	}
	RespondSubmit(m, w, spec)
}

// handleReady serves GET /readyz: 503 while the manager drains (or has
// closed) or while admission control is shedding, 200 otherwise. The
// split from /healthz is what lets a load balancer — or a fleet peer's
// failure detector — stop routing to a draining node that is still
// alive and finishing its backlog.
func handleReady(m *Manager, w http.ResponseWriter, r *http.Request) {
	backlog := m.queue.Len()
	switch {
	case m.Draining():
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "queue": backlog,
		})
	case m.opts.AdmissionWatermark > 0 && backlog >= m.opts.AdmissionWatermark:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "overloaded", "queue": backlog,
			"watermark": m.opts.AdmissionWatermark,
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "queue": backlog,
		})
	}
}

// ReadSpec decodes a submission body, enforcing the size bound and
// strict field checking. On failure it writes the error response and
// reports ok=false. Exported for the fleet handler, which must decode
// the spec itself to route by content hash before deciding which node's
// manager the submission reaches.
func ReadSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("spec exceeds %d bytes", tooBig.Limit))
			return Spec{}, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return Spec{}, false
	}
	return spec, true
}

// RespondSubmit submits spec to m and writes the canonical HTTP
// response: 201 on acceptance, 200 on a cache hit, 429 + Retry-After on
// backpressure (full queue or shed by admission control), 503 on
// drain/shutdown. Shared by the plain handler and the fleet layer so a
// forwarded submission answers byte-identically to a local one.
func RespondSubmit(m *Manager, w http.ResponseWriter, spec Spec) {
	j, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v := j.Snapshot()
	status := http.StatusCreated
	if v.CacheHit {
		status = http.StatusOK // answered, not created
	}
	writeJSON(w, status, v)
}

func handleList(m *Manager, w http.ResponseWriter, r *http.Request) {
	stateFilter := State(strings.ToLower(r.URL.Query().Get("state")))
	views := []JobView{}
	for _, j := range m.List() {
		v := j.Snapshot()
		if stateFilter != "" && v.State != stateFilter {
			continue
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func handleGet(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func handleResult(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	v := j.Snapshot()
	switch v.State {
	case StateQueued, StateRunning:
		// Not ready: tell pollers to come back, carrying progress.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusAccepted, v)
	case StateDone:
		res, _ := j.Result()
		writeJSON(w, http.StatusOK, ResultEnvelope{
			ID: v.ID, Hash: v.Hash, CacheHit: v.CacheHit, Result: res,
		})
	case StateCancelled:
		writeError(w, http.StatusGone,
			fmt.Errorf("job %s was cancelled: %s", v.ID, v.Error))
	default: // failed
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("job %s failed: %s", v.ID, v.Error))
	}
}

func handleDelete(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	if cancelled, err := m.Cancel(id); !cancelled {
		if errors.Is(err, ErrNotFound) {
			// The job vanished between Get and Cancel (concurrent DELETE).
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		// Already terminal: DELETE retires the record.
		if err := m.Remove(id); err != nil {
			if errors.Is(err, ErrNotFound) {
				writeError(w, http.StatusNotFound, ErrNotFound)
				return
			}
			writeError(w, http.StatusConflict, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func handleMetrics(met *Metrics, w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "application/json") {
		format = "json"
	}
	if format == "json" {
		writeJSON(w, http.StatusOK, met.JSON())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	met.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
