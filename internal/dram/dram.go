// Package dram models a DDR4 memory system at the granularity the RRS
// paper's evaluation needs: per-bank row-buffer state and activate timing,
// per-channel shared data bus, rank-level refresh windows, per-row
// activation counts within a refresh epoch, and a sparse per-row content
// tag that lets tests verify row-swap data movement end to end.
//
// The model is event-driven rather than cycle-stepped: the memory
// controller (package memctrl) reserves bank, bus and refresh-free time
// spans in request-arrival order, which reproduces FCFS scheduling with
// bank-level parallelism. All times are in memory-bus cycles (1.6 GHz).
package dram

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/invariant"
)

// NoRow marks a closed row buffer.
const NoRow = -1

// BankID identifies one bank in the system.
type BankID struct {
	Channel int
	Rank    int
	Bank    int
}

// String implements fmt.Stringer.
func (b BankID) String() string {
	return fmt.Sprintf("ch%d.rk%d.bk%d", b.Channel, b.Rank, b.Bank)
}

// Address is a fully decoded DRAM coordinate for one cache line.
type Address struct {
	BankID
	Row int
	Col int
}

// ActListener observes every row activation (including those caused by
// mitigations: victim refreshes and swap transfers). The Row Hammer fault
// model and RRS trackers subscribe here.
type ActListener interface {
	OnActivate(bank BankID, row int, now int64)
}

// Bank holds one bank's simulation state.
type Bank struct {
	// OpenRow is the row in the row buffer, or NoRow.
	OpenRow int
	// ReadyAt is the earliest bus cycle at which the next row command
	// (ACT/PRE) may start, enforcing tRC between activations.
	ReadyAt int64
	// LastRefSlot is the index of the last tREFI window that closed the
	// row buffer (refresh closes open rows).
	LastRefSlot int64

	// Acts counts activations in the current epoch per row; only rows in
	// dirty have nonzero counts.
	acts  []int32
	dirty []int32

	// Per-row 64-bit data tags verify that swaps move data. The store is
	// two-tier: rows below the system's dense bound live in a flat
	// row-indexed slice guarded by a written bitset (content/written,
	// allocated on the bank's first write, so content-free runs pay
	// nothing), and rows past the bound — which exist only in geometries
	// far larger than Table 2 — spill to the sparse overflow map. Rows
	// never written hold their identity tag in both tiers. The dense tier
	// keeps RowContent map-free and allocation-free: it is on the
	// per-access path via memctrl reads and every swap transfer.
	content  []uint64
	written  []uint64 // bitset over content
	overflow map[int]uint64

	// Stats for the power model (cumulative, not reset per epoch).
	StatActs   int64
	StatReads  int64
	StatWrites int64
}

// System is the full DRAM device state.
type System struct {
	cfg        config.Config
	banks      []Bank  // index: ((channel*ranks)+rank)*banks + bank
	busFree    []int64 // per channel: first cycle the data bus is free
	blocked    []int64 // per channel: blocked until (swap transfers)
	denseRows  int     // rows per bank covered by the dense content tier
	listeners  []ActListener
	epochHooks []func()

	// eng, when non-nil, receives swap-conservation violations: each
	// SwapRows/CycleRows re-reads the involved rows after the transfer
	// and compares against the contents captured before it. swapChecks
	// tallies those verifications; tearNextSwap is the fault-injection
	// hook that skips one write so the check provably fires.
	eng          *invariant.Engine
	swapChecks   int64
	tearNextSwap bool
}

// maxDenseContentRows bounds the dense content tier per bank (8 MB of
// tags at the bound). Table 2's 128 Ki rows/bank sits fully inside it;
// only far larger experimental geometries ever reach the overflow map.
const maxDenseContentRows = 1 << 20

// New creates a DRAM system for the given configuration. The error wraps
// invariant.ErrBadGeometry when the configuration fails validation.
func New(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("dram: %w: %v", invariant.ErrBadGeometry, err)
	}
	n := cfg.Channels * cfg.Ranks * cfg.Banks
	s := &System{
		cfg:     cfg,
		banks:   make([]Bank, n),
		busFree: make([]int64, cfg.Channels),
		blocked: make([]int64, cfg.Channels),
	}
	s.denseRows = cfg.RowsPerBank
	if s.denseRows > maxDenseContentRows {
		s.denseRows = maxDenseContentRows
	}
	for i := range s.banks {
		s.banks[i].OpenRow = NoRow
		s.banks[i].acts = make([]int32, cfg.RowsPerBank)
	}
	return s, nil
}

// MustNew is New for callers with statically valid configurations (tests,
// benchmarks); it panics on error.
func MustNew(cfg config.Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the system configuration.
func (s *System) Config() config.Config { return s.cfg }

// Subscribe registers an activation listener.
func (s *System) Subscribe(l ActListener) { s.listeners = append(s.listeners, l) }

// SubscribeEpoch registers a hook invoked by ResetEpoch, after the
// activation counters clear. The fault model uses this to model the
// rolling refresh restoring every row's charge once per epoch.
func (s *System) SubscribeEpoch(fn func()) { s.epochHooks = append(s.epochHooks, fn) }

func (s *System) bankIndex(id BankID) int {
	return (id.Channel*s.cfg.Ranks+id.Rank)*s.cfg.Banks + id.Bank
}

// BankState returns the bank's mutable state.
func (s *System) BankState(id BankID) *Bank { return &s.banks[s.bankIndex(id)] }

// EachBank calls fn for every bank.
func (s *System) EachBank(fn func(id BankID, b *Bank)) {
	for c := 0; c < s.cfg.Channels; c++ {
		for r := 0; r < s.cfg.Ranks; r++ {
			for k := 0; k < s.cfg.Banks; k++ {
				id := BankID{Channel: c, Rank: r, Bank: k}
				fn(id, s.BankState(id))
			}
		}
	}
}

// Decode maps a cache-line address (line index, not byte address) to DRAM
// coordinates. Layout from low to high bits: column within row, channel,
// bank, rank, row — spreading consecutive lines across a row, then
// channels, then banks, so sequential streams exploit parallelism.
func (s *System) Decode(line uint64) Address {
	linesPerRow := uint64(s.cfg.RowBytes / s.cfg.LineBytes)
	col := int(line % linesPerRow)
	line /= linesPerRow
	ch := int(line % uint64(s.cfg.Channels))
	line /= uint64(s.cfg.Channels)
	bank := int(line % uint64(s.cfg.Banks))
	line /= uint64(s.cfg.Banks)
	rank := int(line % uint64(s.cfg.Ranks))
	line /= uint64(s.cfg.Ranks)
	row := int(line % uint64(s.cfg.RowsPerBank))
	return Address{BankID: BankID{Channel: ch, Rank: rank, Bank: bank}, Row: row, Col: col}
}

// Encode is the inverse of Decode, returning the line index for an address.
func (s *System) Encode(a Address) uint64 {
	linesPerRow := uint64(s.cfg.RowBytes / s.cfg.LineBytes)
	v := uint64(a.Row)
	v = v*uint64(s.cfg.Ranks) + uint64(a.Rank)
	v = v*uint64(s.cfg.Banks) + uint64(a.Bank)
	v = v*uint64(s.cfg.Channels) + uint64(a.Channel)
	v = v*linesPerRow + uint64(a.Col)
	return v
}

// refSlot returns the refresh window index covering time t.
func (s *System) refSlot(t int64) int64 { return t / int64(s.cfg.TREFI) }

// SkipRefresh pushes t past any refresh window it falls into. Each tREFI
// period begins with tRFC cycles of refresh during which the rank is
// unavailable.
func (s *System) SkipRefresh(t int64) int64 {
	slot := s.refSlot(t)
	start := slot * int64(s.cfg.TREFI)
	if t < start+int64(s.cfg.TRFC) {
		return start + int64(s.cfg.TRFC)
	}
	return t
}

// BlockChannel makes the channel unavailable until cycle until (used for
// swap transfers, which occupy the shared data bus).
func (s *System) BlockChannel(ch int, until int64) {
	if until > s.blocked[ch] {
		s.blocked[ch] = until
	}
}

// ChannelBlockedUntil returns the channel-block horizon.
func (s *System) ChannelBlockedUntil(ch int) int64 { return s.blocked[ch] }

// BusFreeAt returns the next free cycle of the channel's data bus.
func (s *System) BusFreeAt(ch int) int64 { return s.busFree[ch] }

// ReserveBus allocates the data bus for one line transfer starting no
// earlier than earliest, returning the cycle the transfer starts.
func (s *System) ReserveBus(ch int, earliest int64) int64 {
	start := earliest
	if s.busFree[ch] > start {
		start = s.busFree[ch]
	}
	s.busFree[ch] = start + int64(s.cfg.TBurst)
	return start
}

// Activate records an activation of row in bank at time now: it opens the
// row buffer, counts the activation for the epoch and statistics, and
// notifies listeners. Timing reservations are the caller's job.
func (s *System) Activate(id BankID, row int, now int64) {
	b := s.BankState(id)
	b.OpenRow = row
	if b.acts[row] == 0 {
		b.dirty = append(b.dirty, int32(row))
	}
	b.acts[row]++
	b.StatActs++
	for _, l := range s.listeners {
		l.OnActivate(id, row, now)
	}
}

// ActCount returns the number of activations row has received in the
// current epoch.
func (s *System) ActCount(id BankID, row int) int {
	return int(s.BankState(id).acts[row])
}

// RowsWithActsAtLeast counts rows in the bank with at least n activations
// this epoch (the paper's ACT-800+ statistic uses n = 800).
func (s *System) RowsWithActsAtLeast(id BankID, n int) int {
	b := s.BankState(id)
	count := 0
	for _, r := range b.dirty {
		if int(b.acts[r]) >= n {
			count++
		}
	}
	return count
}

// RefreshAll models a preemptive refresh of the entire DRAM (the response
// the paper's footnote 2 proposes when an attack on RRS is detected): all
// cells' charge is restored, so charge-restoration hooks fire, but the
// controller-side per-epoch activation bookkeeping is untouched.
func (s *System) RefreshAll() {
	for _, fn := range s.epochHooks {
		fn()
	}
}

// ResetEpoch clears per-epoch activation counts for all banks (the rolling
// refresh has covered every row once per epoch).
func (s *System) ResetEpoch() {
	for i := range s.banks {
		b := &s.banks[i]
		for _, r := range b.dirty {
			b.acts[r] = 0
		}
		b.dirty = b.dirty[:0]
	}
	for _, fn := range s.epochHooks {
		fn()
	}
}

// RowContent returns the data tag stored in the physical row. Rows never
// written hold their identity tag (a function of the bank and row id), so
// swap verification does not need to pre-populate memory. The dense-tier
// path performs no map lookups and no allocations.
func (s *System) RowContent(id BankID, row int) uint64 {
	b := s.BankState(id)
	if uint(row) < uint(len(b.content)) {
		if b.written[uint(row)>>6]&(1<<(uint(row)&63)) != 0 {
			return b.content[row]
		}
		return identityTag(id, row)
	}
	if row >= s.denseRows {
		if v, ok := b.overflow[row]; ok {
			return v
		}
	}
	// Dense tier not yet allocated (bank never written) or overflow miss.
	return identityTag(id, row)
}

// SetRowContent overwrites the physical row's data tag. The bank's dense
// tier is allocated on its first write.
func (s *System) SetRowContent(id BankID, row int, v uint64) {
	b := s.BankState(id)
	if row < s.denseRows {
		if b.content == nil {
			b.content = make([]uint64, s.denseRows)
			b.written = make([]uint64, (s.denseRows+63)/64)
		}
		b.content[row] = v
		b.written[uint(row)>>6] |= 1 << (uint(row) & 63)
		return
	}
	if b.overflow == nil {
		b.overflow = make(map[int]uint64)
	}
	b.overflow[row] = v
}

// SwapRows exchanges the contents of two physical rows in one bank (the
// swap-buffer data path of Figure 4: row X -> buffer 1, row Y -> buffer 2,
// buffer 1 -> row Y, buffer 2 -> row X). Both rows are activated twice
// (once to read, once to write), which the fault model observes.
func (s *System) SwapRows(id BankID, rowX, rowY int, now int64) {
	x := s.RowContent(id, rowX)
	y := s.RowContent(id, rowY)
	s.SetRowContent(id, rowX, y)
	if s.tearNextSwap {
		s.tearNextSwap = false
	} else {
		s.SetRowContent(id, rowY, x)
	}
	// Read and write activations for both rows.
	s.Activate(id, rowX, now)
	s.Activate(id, rowY, now)
	s.Activate(id, rowX, now)
	s.Activate(id, rowY, now)
	// The paper closes the row buffer after a swap so the destination
	// cannot be inferred from row-buffer timing.
	s.BankState(id).OpenRow = NoRow
	if s.eng != nil {
		s.swapChecks++
		if got := s.RowContent(id, rowX); got != y {
			s.eng.Report(invariant.Violatedf("dram/swap-conservation",
				"%v: after swap, row %d holds %#x, expected row %d's prior content %#x", id, rowX, got, rowY, y))
		}
		if got := s.RowContent(id, rowY); got != x {
			s.eng.Report(invariant.Violatedf("dram/swap-conservation",
				"%v: after swap, row %d holds %#x, expected row %d's prior content %#x", id, rowY, got, rowX, x))
		}
	}
}

// CycleRows rotates the contents of the given physical rows: row[i]'s data
// moves to row[i+1], and the last row's data to row[0]. Like SwapRows, each
// involved row is activated twice (one read stream, one write stream). RRS
// re-swaps use a 4-row cycle so that dissolving <X,M> into <X,A> and <M,B>
// costs two swap operations' worth of transfers (the paper's 2.9 us) and
// touches each involved physical row only twice.
func (s *System) CycleRows(id BankID, rows []int, now int64) {
	if len(rows) < 2 {
		return
	}
	var before []uint64
	if s.eng != nil {
		before = make([]uint64, len(rows))
		for i, r := range rows {
			before[i] = s.RowContent(id, r)
		}
	}
	last := s.RowContent(id, rows[len(rows)-1])
	for i := len(rows) - 1; i > 0; i-- {
		s.SetRowContent(id, rows[i], s.RowContent(id, rows[i-1]))
	}
	s.SetRowContent(id, rows[0], last)
	for _, r := range rows {
		s.Activate(id, r, now)
		s.Activate(id, r, now)
	}
	s.BankState(id).OpenRow = NoRow
	if s.eng != nil {
		s.swapChecks++
		for i, r := range rows {
			want := before[(i+len(rows)-1)%len(rows)]
			if got := s.RowContent(id, r); got != want {
				s.eng.Report(invariant.Violatedf("dram/swap-conservation",
					"%v: after %d-row cycle, row %d holds %#x, expected %#x", id, len(rows), r, got, want))
			}
		}
	}
}

func identityTag(id BankID, row int) uint64 {
	return uint64(id.Channel)<<48 | uint64(id.Rank)<<40 |
		uint64(id.Bank)<<32 | uint64(uint32(row))
}
