package power

import (
	"math"
	"testing"

	"repro/internal/config"
)

func TestMergeShards(t *testing.T) {
	cfg := config.Default()
	e := DefaultDRAMEnergy()
	elapsed := int64(cfg.TREFI) * 1000

	// Per-shard refresh/background figures are garbage by construction
	// (each shard models a 1-rank slice); the merge must ignore them and
	// recompute from the full topology.
	parts := []Breakdown{
		{ActMJ: 1, ReadMJ: 2, WriteMJ: 3, RefreshMJ: 99, BackgroundMJ: 99},
		{ActMJ: 0.5, ReadMJ: 0.25, WriteMJ: 0.75, RefreshMJ: 99, BackgroundMJ: 99},
	}
	got := e.MergeShards(parts, cfg, elapsed)

	if got.ActMJ != 1.5 || got.ReadMJ != 2.25 || got.WriteMJ != 3.75 {
		t.Fatalf("event energies = %v/%v/%v, want 1.5/2.25/3.75",
			got.ActMJ, got.ReadMJ, got.WriteMJ)
	}

	seconds := float64(elapsed) / (config.BusGHz * 1e9)
	ranks := float64(cfg.Channels * cfg.Ranks)
	wantRefresh := 1000 * ranks * e.RefreshNJ * 1e-6
	wantBackground := e.BackgroundMW * seconds * ranks
	if math.Abs(got.RefreshMJ-wantRefresh) > 1e-9 {
		t.Fatalf("RefreshMJ = %v, want %v", got.RefreshMJ, wantRefresh)
	}
	if math.Abs(got.BackgroundMJ-wantBackground) > 1e-9 {
		t.Fatalf("BackgroundMJ = %v, want %v", got.BackgroundMJ, wantBackground)
	}
	wantPower := got.TotalMJ() / seconds
	if math.Abs(got.AvgPowerMW-wantPower) > 1e-9 {
		t.Fatalf("AvgPowerMW = %v, want %v", got.AvgPowerMW, wantPower)
	}

	// Zero elapsed time: no division by zero, no background energy.
	zero := e.MergeShards(parts, cfg, 0)
	if zero.AvgPowerMW != 0 || zero.BackgroundMJ != 0 || zero.RefreshMJ != 0 {
		t.Fatalf("zero-time merge = %+v, want zero refresh/background/power", zero)
	}
}
