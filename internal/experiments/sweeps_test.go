package experiments

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// managerSweeper backs Scale.Sweeper with an in-process manager — the
// same SubmitSweep path POST /v1/sweeps drives, minus the transport.
func managerSweeper(t *testing.T, m *service.Manager, sweeps *atomic.Int64) func(service.SweepSpec) (map[string]sim.Result, error) {
	return func(ss service.SweepSpec) (map[string]sim.Result, error) {
		sweeps.Add(1)
		sw, _, err := m.SubmitSweep(ss)
		if err != nil {
			return nil, err
		}
		select {
		case <-sw.Done():
		case <-time.After(2 * time.Minute):
			t.Fatalf("sweep %s wedged", sw.ID())
		}
		return m.SweepResults(sw), nil
	}
}

func sweepManager(t *testing.T) *service.Manager {
	t.Helper()
	m := service.NewManager(service.Options{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

// TestFigure5SweepPathMatchesLocal proves the tentpole's byte-identical
// claim for a figure: routing the grid through one server-side sweep
// reproduces the per-point local run exactly — same rows, same rendered
// table — with every point covered by the single sweep (the Runner
// fallback never fires).
func TestFigure5SweepPathMatchesLocal(t *testing.T) {
	localRows, localTable, err := Figure5(tinyScale())
	if err != nil {
		t.Fatal(err)
	}

	s := tinyScale()
	var sweeps atomic.Int64
	s.Sweeper = managerSweeper(t, sweepManager(t), &sweeps)
	s.Runner = func(spec service.Spec) (sim.Result, error) {
		t.Errorf("point %s fell back to the per-point path", spec.Hash()[:12])
		return sim.Result{}, nil
	}
	sweepRows, sweepTable, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweeps.Load(); got != 1 {
		t.Errorf("figure submitted %d sweeps, want 1", got)
	}
	if !reflect.DeepEqual(localRows, sweepRows) {
		t.Errorf("rows diverge:\nlocal %+v\nsweep %+v", localRows, sweepRows)
	}
	if localTable.String() != sweepTable.String() {
		t.Errorf("tables diverge:\nlocal:\n%s\nsweep:\n%s", localTable, sweepTable)
	}
}

// TestShootoutSweepPathMatchesLocal is the same byte-identical check for
// the shootout's perf leg: baseline plus the mitigation subset go up as
// one sweep, and the rendered table matches the client-side loop's.
func TestShootoutSweepPathMatchesLocal(t *testing.T) {
	mits := []string{service.MitRRS, service.MitSRS}
	localRows, localTable, err := Shootout(tinyScale(), mits, false)
	if err != nil {
		t.Fatal(err)
	}

	s := tinyScale()
	var sweeps atomic.Int64
	s.Sweeper = managerSweeper(t, sweepManager(t), &sweeps)
	s.Runner = func(spec service.Spec) (sim.Result, error) {
		t.Errorf("point %s fell back to the per-point path", spec.Hash()[:12])
		return sim.Result{}, nil
	}
	sweepRows, sweepTable, err := Shootout(s, mits, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweeps.Load(); got != 1 {
		t.Errorf("shootout submitted %d sweeps, want 1", got)
	}
	if !reflect.DeepEqual(localRows, sweepRows) {
		t.Errorf("rows diverge:\nlocal %+v\nsweep %+v", localRows, sweepRows)
	}
	if localTable.String() != sweepTable.String() {
		t.Errorf("tables diverge:\nlocal:\n%s\nsweep:\n%s", localTable, sweepTable)
	}
}
