// Package sim wires the full system together — trace-driven cores, memory
// controller, DRAM and a Row Hammer mitigation — and runs workloads to
// completion, producing the statistics the paper's performance figures are
// built from (IPC, row-swaps per epoch, rows with 800+ activations, DRAM
// energy).
//
// The synthetic traces are post-LLC streams (their MPKI is the LLC
// miss rate), so the cores talk straight to the memory controller; the
// cache package is still available for filtering raw traces offline.
package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/trace"
)

// ErrStepBudget reports a run stopped by Options.MaxSteps.
var ErrStepBudget = errors.New("sim: step budget exhausted")

// ErrDeadline reports a run stopped by Options.Deadline.
var ErrDeadline = errors.New("sim: wall-clock deadline exceeded")

// llcHitBusCycles is the LLC hit latency in memory-bus cycles (~19 ns).
const llcHitBusCycles = 15

// Options configures one simulation run.
type Options struct {
	// Config is the system configuration (config.Default for Table 2).
	Config config.Config
	// Workloads holds one workload per core; a single entry is
	// replicated across all cores (the paper's rate mode).
	Workloads []trace.Workload
	// Mitigation builds the Row Hammer defense over the fresh DRAM
	// system; nil runs the unprotected baseline.
	Mitigation func(*dram.System) memctrl.Mitigation
	// InstructionsPerCore is each core's budget (the paper runs 1 B; the
	// default here is 1 M for tractable experiment sweeps).
	InstructionsPerCore int64
	// Seed drives the synthetic traces.
	Seed uint64
	// HotRowThreshold is the per-epoch activation count defining a "hot"
	// row for statistics; 0 derives T_RH/6 (the paper's 800).
	HotRowThreshold int
	// HotShare overrides the generator's hot-access share (0 = default).
	HotShare float64
	// CycleLimit optionally stops every core once its clock passes this
	// bus cycle, bounding the run to a fixed number of epochs regardless
	// of the instruction budget.
	CycleLimit int64
	// Readers, when non-nil, feeds each core from the given trace reader
	// (exactly one per core, e.g. rrs-tracegen files via
	// trace.NewFileReader) instead of synthesizing from Workloads.
	// Workloads must still name the benchmark (for reporting); addresses
	// are used as-is, with no per-core offsetting. Run rejects a list
	// shorter than the core count: a shared Reader is stateful, and two
	// cores draining it would each see an arbitrary interleaved subset of
	// the trace.
	Readers []trace.Reader
	// Context, when non-nil, makes the run interruptible: the core loop
	// polls it every checkInterval accesses and Run returns a wrapped
	// ctx.Err() once it is cancelled (rrs-serve cancellation, Ctrl-C in
	// the CLIs, per-job timeouts).
	Context context.Context
	// Progress, when non-nil, is called every checkInterval accesses —
	// and once more on completion — with the work done so far and the
	// run's total, in bus cycles for cycle-bounded runs and in retired
	// instructions otherwise. It runs on the simulation goroutine and
	// must be cheap; done never exceeds total.
	Progress func(done, total int64)
	// Paranoid enables the runtime self-verification layer: shadow
	// models on every RIT and tracker, swap-conservation verification in
	// the DRAM model, and the structural check catalog run on a cadence.
	// The first invariant.Violation fails the run; a clean run reports
	// its check counters in Result.Invariants. Setting RRS_PARANOID=1 in
	// the environment turns it on for every run (the `make paranoid`
	// switch). Statistics are bit-identical either way — the checks only
	// observe.
	Paranoid bool
	// MaxSteps, when positive, bounds the run to this many memory
	// accesses; the run fails with ErrStepBudget the moment the budget
	// is consumed — exactly, not at the next checkInterval poll point.
	// A guard against runaway specs, independent of Paranoid.
	MaxSteps int64
	// Deadline, when positive, bounds the run's wall-clock time;
	// exceeding it fails the run with ErrDeadline.
	Deadline time.Duration
	// Events, when non-nil, enables the observability layer: an event
	// recorder is attached to the memory controller and (for RRS runs)
	// the mitigation, and Result.Timeline carries the recorded event
	// stream, component histograms and per-epoch samples. Statistics are
	// bit-identical either way — the recorder only observes. A negative
	// Events.RingSize keeps the histograms and samples but drops the
	// per-event stream (the job service's shape).
	Events *obs.Config
	// Workers selects the execution mode. 0 (the default) is the
	// sequential reference path: one goroutine interleaves every core
	// over the shared memory system, bit-identical to all historical
	// goldens. A positive value enables the bank-sharded parallel mode:
	// the system is partitioned into G = min(Cores, total banks)
	// independent shards — each owning a disjoint set of banks, its
	// round-robin share of the cores, and its own mitigation state — and
	// up to Workers shards run concurrently. G is fixed by the
	// configuration, never by Workers, so any Workers >= 1 produces
	// bit-identical statistics; Workers only caps goroutine concurrency.
	// The parallel mode models a bank-partitioned system (no cross-shard
	// bus contention), so its results differ from the sequential path by
	// construction and are pinned by their own golden. See DESIGN.md §12.
	Workers int

	// shard carries the parallel mode's per-shard identity; only
	// runParallel sets it. Nil means a standalone (full-system) run.
	shard *shardLayout
}

// shardLayout tells a shard run which global cores it owns, so per-core
// trace seeds and hot-row splits match the full-system assignment.
type shardLayout struct {
	// globalCores maps each local core index to its full-system index.
	globalCores []int
	// totalCores is the full system's core count.
	totalCores int
}

// envParanoid reports whether RRS_PARANOID=1 forces paranoid mode on.
var envParanoid = sync.OnceValue(func() bool {
	return os.Getenv("RRS_PARANOID") == "1"
})

// checkInterval is how many memory accesses pass between cancellation
// polls and progress callbacks (~tens of microseconds of wall time).
const checkInterval = 8192

// Result reports a finished run.
type Result struct {
	// IPC is the mean per-core instructions per CPU cycle.
	IPC float64
	// Instructions and Cycles (bus) aggregate the run.
	Instructions int64
	Cycles       int64
	// Accesses is the number of memory (post-LLC) accesses.
	Accesses int64
	// MPKI is measured LLC misses per kilo-instruction.
	MPKI float64
	// MemStats is the controller's statistics snapshot.
	MemStats memctrl.Stats
	// HotRowsPerEpoch averages, over completed epochs, the number of
	// rows system-wide whose activations reached HotRowThreshold.
	HotRowsPerEpoch float64
	// SwapsPerEpoch averages RRS swaps per completed epoch (0 for other
	// mitigations) — Figure 5's metric.
	SwapsPerEpoch float64
	// Epochs is the number of completed epochs.
	Epochs int64
	// Energy is the DRAM energy breakdown.
	Energy power.Breakdown
	// Mitigation exposes the defense for caller-specific queries. It is
	// excluded from JSON: the rrs-serve result payload carries only the
	// numeric fields, not the live hardware model.
	Mitigation memctrl.Mitigation `json:"-"`
	// Invariants is the paranoid mode's check accounting; nil when the
	// run was not paranoid, so non-paranoid results (and their JSON and
	// golden-test forms) are unchanged.
	Invariants *invariant.Summary `json:"invariants,omitempty"`
	// Timeline is the observability recording; nil unless Options.Events
	// was set, so results without it (and their JSON and golden-test
	// forms) are unchanged.
	Timeline *obs.Timeline `json:"timeline,omitempty"`
}

// catalogCadence is how many checkInterval poll points pass between full
// structural-catalog sweeps in paranoid mode (the shadows check
// continuously in between); the catalog also runs once at the end.
const catalogCadence = 64

// paranoidMitigation is implemented by mitigations that own their
// paranoid wiring: EnableParanoid registers the defense's structural
// checks (plus the shared DRAM catalog) on the engine, and Err exposes
// the cheap latched-violation poll. core.RRS and the whole mitigation
// zoo implement it.
type paranoidMitigation interface {
	EnableParanoid(*invariant.Engine)
	Err() error
}

// observableMitigation is implemented by mitigations that can emit
// events into an obs.Recorder.
type observableMitigation interface {
	EnableObs(*obs.Recorder)
}

// runGuards bundles the per-run safety rails polled every checkInterval
// accesses: step budget, wall-clock deadline, and the paranoid engine.
type runGuards struct {
	eng      *invariant.Engine
	mit      paranoidMitigation
	maxSteps int64
	deadline time.Time
	polls    int64
}

func (g *runGuards) poll(accesses int64) error {
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return ErrDeadline
	}
	if g.eng == nil {
		return nil
	}
	// The shadows and swap checks latch violations asynchronously; fail
	// fast on the first. The full structural catalog is costlier (it
	// sweeps tables and memos), so it runs on a sparser cadence.
	if g.mit != nil {
		if err := g.mit.Err(); err != nil {
			return err
		}
	} else if err := g.eng.Err(); err != nil {
		return err
	}
	g.polls++
	if g.polls%catalogCadence == 0 {
		return g.eng.RunAll()
	}
	return nil
}

// runSeries is the raw per-epoch data a run produced, alongside the
// averaged Result fields. The parallel merge needs the series (summing
// averages across shards with different epoch counts loses information);
// sequential callers discard it.
type runSeries struct {
	// hotRows is the system-wide hot-row count sampled at each completed
	// epoch boundary.
	hotRows []int64
	// swaps is the RRS swap count per completed epoch; nil for other
	// mitigations.
	swaps []int64
	// epochSwaps is the in-progress (uncompleted) epoch's swap count.
	epochSwaps int64
}

// Run executes the simulation to completion.
func Run(opts Options) (Result, error) {
	if opts.Workers > 0 {
		return runParallel(opts)
	}
	res, _, err := runSeq(opts)
	return res, err
}

// runSeq is the sequential engine: one goroutine, every core interleaved
// over one shared memory system. Both the reference mode and each
// parallel shard run through it.
func runSeq(opts Options) (Result, runSeries, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return Result{}, runSeries{}, err
	}
	if len(opts.Workloads) == 0 {
		return Result{}, runSeries{}, fmt.Errorf("sim: no workloads")
	}
	if opts.Readers != nil && len(opts.Readers) < cfg.Cores {
		return Result{}, runSeries{}, fmt.Errorf("sim: %d readers for %d cores; Readers must supply one per core",
			len(opts.Readers), cfg.Cores)
	}
	if opts.InstructionsPerCore <= 0 {
		opts.InstructionsPerCore = 1_000_000
	}
	hotThreshold := opts.HotRowThreshold
	if hotThreshold == 0 {
		hotThreshold = cfg.RowHammerThreshold / 6
	}

	sys, err := dram.New(cfg)
	if err != nil {
		return Result{}, runSeries{}, err
	}
	var mit memctrl.Mitigation = memctrl.None{}
	if opts.Mitigation != nil {
		if m := opts.Mitigation(sys); m != nil {
			mit = m
		}
	}
	ctl := memctrl.New(sys, mit)

	var rec *obs.Recorder
	if opts.Events != nil {
		rec = obs.NewRecorder(*opts.Events)
		ctl.SetRecorder(rec)
		if o, ok := mit.(observableMitigation); ok {
			o.EnableObs(rec)
		}
	}

	paranoid := opts.Paranoid || envParanoid()
	var guards *runGuards
	if paranoid || opts.MaxSteps > 0 || opts.Deadline > 0 {
		guards = &runGuards{maxSteps: opts.MaxSteps}
		if opts.Deadline > 0 {
			guards.deadline = time.Now().Add(opts.Deadline)
		}
		if paranoid {
			guards.eng = invariant.NewEngine()
			if pm, ok := mit.(paranoidMitigation); ok {
				pm.EnableParanoid(guards.eng)
				guards.mit = pm
			} else {
				sys.EnableParanoid(guards.eng)
				guards.eng.Register("dram/structure", sys.CheckInvariants)
			}
		}
	}

	// Per-epoch hot-row sampling.
	var hotRowSamples []int64
	ctl.SetEpochHook(func(int64) {
		var rows int64
		sys.EachBank(func(id dram.BankID, _ *dram.Bank) {
			rows += int64(sys.RowsWithActsAtLeast(id, hotThreshold))
		})
		hotRowSamples = append(hotRowSamples, rows)
	})

	// Rate mode: each core gets its own copy of the workload in a
	// disjoint slice of the physical address space, and the workload's
	// system-wide hot-row count is split across the copies.
	totalLines := uint64(cfg.MemoryBytes()) / uint64(cfg.LineBytes)
	cores := make([]*cpu.Core, cfg.Cores)
	for i := range cores {
		var rd trace.Reader
		if opts.Readers != nil {
			rd = opts.Readers[i]
		} else {
			// A parallel shard seeds and splits by the full-system core
			// index, so each global core's trace stream is independent of
			// how cores landed on shards.
			gi, nCores := i, cfg.Cores
			if opts.shard != nil {
				gi, nCores = opts.shard.globalCores[i], opts.shard.totalCores
			}
			w := opts.Workloads[i%len(opts.Workloads)]
			w.HotRows = splitHotRows(w.HotRows, nCores, gi)
			gen := trace.NewGenerator(w, trace.GeneratorParams{
				LineBytes: cfg.LineBytes,
				RowBytes:  cfg.RowBytes,
				HotShare:  opts.HotShare,
				Seed:      trace.PerCoreSeed(opts.Seed, gi),
			})
			offset := uint64(i) * (totalLines / uint64(cfg.Cores))
			rd = &offsetReader{r: gen, offset: offset, mod: totalLines}
		}
		cores[i] = cpu.New(i, cfg, rd, opts.InstructionsPerCore)
		cores[i].Limit = opts.CycleLimit
	}

	var res Result
	res.Mitigation = mit

	// Total work for progress reporting: bus cycles when the run is
	// time-bounded, retired instructions otherwise.
	var progressTotal int64
	if opts.Progress != nil {
		if opts.CycleLimit > 0 {
			progressTotal = opts.CycleLimit
		} else {
			progressTotal = opts.InstructionsPerCore * int64(len(cores))
		}
	}
	report := func(done int64) {
		if opts.Progress == nil {
			return
		}
		if done > progressTotal {
			done = progressTotal
		}
		opts.Progress(done, progressTotal)
	}

	// The step budget is enforced exactly, per access — not at the
	// sparse checkInterval poll points, which would overshoot budgets
	// below (or not a multiple of) the interval by up to interval-1.
	var maxSteps int64
	if guards != nil {
		maxSteps = guards.maxSteps
	}

	// Cache per-core next-issue times: a core's value changes only when
	// that core issues or completes, so each iteration re-queries just
	// the core that issued instead of every core.
	nextTimes := make([]int64, len(cores))
	havePending := make([]bool, len(cores))
	for i, c := range cores {
		nextTimes[i], havePending[i] = c.NextIssueTime()
	}
	for {
		// Pick the core with the earliest next access.
		nextIdx := -1
		var nextT int64
		for i := range cores {
			if !havePending[i] {
				continue
			}
			if nextIdx < 0 || nextTimes[i] < nextT {
				nextIdx, nextT = i, nextTimes[i]
			}
		}
		if nextIdx < 0 {
			break
		}
		next := cores[nextIdx]
		if res.Accesses%checkInterval == 0 && res.Accesses > 0 {
			if opts.Context != nil {
				if err := opts.Context.Err(); err != nil {
					return Result{}, runSeries{}, fmt.Errorf("sim: run interrupted: %w", err)
				}
			}
			if guards != nil {
				if err := guards.poll(res.Accesses); err != nil {
					return Result{}, runSeries{}, err
				}
			}
			if opts.Progress != nil {
				if opts.CycleLimit > 0 {
					report(nextT)
				} else {
					var insts int64
					for _, c := range cores {
						insts += c.Instructions()
					}
					report(insts)
				}
			}
		}
		rec, at := next.Issue()
		res.Accesses++
		done := ctl.Access(rec.Line, rec.Write, at)
		if !rec.Write {
			// Loads occupy the ROB until data returns (plus the LLC fill
			// hop); stores are posted.
			next.Complete(next.Pos(), done+llcHitBusCycles)
		}
		nextTimes[nextIdx], havePending[nextIdx] = next.NextIssueTime()
		if maxSteps > 0 && res.Accesses >= maxSteps {
			return Result{}, runSeries{}, fmt.Errorf("%w after %d accesses", ErrStepBudget, res.Accesses)
		}
	}

	// Close the run: find the global end time and flush epochs.
	var end int64
	var ipcSum float64
	for _, c := range cores {
		f := c.FinishTime()
		if f > end {
			end = f
		}
		res.Instructions += c.Instructions()
	}
	for _, c := range cores {
		cpuCycles := float64(c.FinishTime()) * config.CPUCyclesPerBusCycle
		if cpuCycles > 0 {
			ipcSum += float64(c.Instructions()) / cpuCycles
		}
	}
	ctl.AdvanceTo(end)
	res.Cycles = end
	res.IPC = ipcSum / float64(len(cores))
	res.MemStats = ctl.Stats()
	res.Epochs = res.MemStats.Epochs
	if res.Instructions > 0 {
		res.MPKI = float64(res.Accesses) / float64(res.Instructions) * 1000
	}
	series := runSeries{hotRows: hotRowSamples}
	if len(hotRowSamples) > 0 {
		var sum int64
		for _, v := range hotRowSamples {
			sum += v
		}
		res.HotRowsPerEpoch = float64(sum) / float64(len(hotRowSamples))
	}
	if r, ok := mit.(*core.RRS); ok {
		st := r.Stats()
		series.swaps = st.SwapsPerEpoch
		series.epochSwaps = st.EpochSwaps
		if n := len(st.SwapsPerEpoch); n > 0 {
			var sum int64
			for _, v := range st.SwapsPerEpoch {
				sum += v
			}
			res.SwapsPerEpoch = float64(sum) / float64(n)
		} else {
			// No completed epoch: report the in-progress count.
			res.SwapsPerEpoch = float64(st.EpochSwaps)
		}
	}
	res.Energy = power.DefaultDRAMEnergy().Measure(sys, end)
	if guards != nil && guards.eng != nil {
		// Final catalog sweep, then fail the run on any latched violation.
		if err := guards.eng.RunAll(); err != nil {
			return Result{}, runSeries{}, err
		}
		if guards.mit != nil {
			if err := guards.mit.Err(); err != nil {
				return Result{}, runSeries{}, err
			}
		}
		s := guards.eng.Summary()
		res.Invariants = &s
	}
	if rec != nil {
		res.Timeline = rec.Timeline()
	}
	report(progressTotal)
	return res, series, nil
}

// splitHotRows divides a system-wide hot-row target across cores: core i
// of n gets the i-th share (earlier cores take the remainder).
func splitHotRows(total, cores, i int) int {
	share := total / cores
	if i < total%cores {
		share++
	}
	return share
}

// offsetReader relocates a core's trace into its own address-space slice.
type offsetReader struct {
	r      trace.Reader
	offset uint64
	mod    uint64
}

// Next implements trace.Reader.
func (o *offsetReader) Next() (trace.Record, bool) {
	rec, ok := o.r.Next()
	if !ok {
		// Do not rewrite the zero record at EOF: the offset/mod arithmetic
		// would fabricate a non-zero line for a record that does not exist.
		return trace.Record{}, false
	}
	rec.Line = (rec.Line + o.offset) % o.mod
	return rec, ok
}

// NormalizedPerformance returns mitigated IPC over baseline IPC for the
// same options (the paper's Figures 6, 10 and 11 metric).
func NormalizedPerformance(opts Options, mitigation func(*dram.System) memctrl.Mitigation) (float64, Result, Result, error) {
	base := opts
	base.Mitigation = nil
	baseRes, err := Run(base)
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	mitOpts := opts
	mitOpts.Mitigation = mitigation
	mitRes, err := Run(mitOpts)
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	if baseRes.IPC == 0 {
		return 0, baseRes, mitRes, fmt.Errorf("sim: baseline IPC is zero")
	}
	return mitRes.IPC / baseRes.IPC, baseRes, mitRes, nil
}
