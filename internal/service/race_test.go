package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestDeleteWhileRunningHTTPRace hammers DELETE on a job that is
// mid-simulation. The first DELETE cancels; concurrent and subsequent
// ones race Cancel/Remove against the worker finalizing the job. Every
// response must be 200 (cancelled or retired) or 404 (already removed
// by a concurrent DELETE) — never a 409 from the Get/Cancel/Remove
// window — and the job must end terminal. Run under -race.
func TestDeleteWhileRunningHTTPRace(t *testing.T) {
	started := make(chan struct{})
	srv, m := newTestServer(t, Options{Workers: 1},
		func(ctx context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			close(started)
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		})

	j, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	const deleters = 16
	statuses := make(chan int, deleters)
	var wg sync.WaitGroup
	for i := 0; i < deleters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+apiPrefix+"/"+j.ID(), nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("delete: %v", err)
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK && code != http.StatusNotFound {
			t.Fatalf("DELETE returned %d; want 200 or 404", code)
		}
	}
	v := waitDone(t, j)
	if !v.State.terminal() {
		t.Fatalf("job state %s after DELETE storm; want terminal", v.State)
	}
}

// TestCancelRemoveRaceManager races Cancel, Remove, Snapshot and List
// against a pool of short-lived jobs, exercising the job-table and
// per-job locking under -race. Outcomes are unconstrained (each call may
// legitimately win or lose its race); the invariant is that every job
// reaches a terminal state and no call panics or deadlocks.
func TestCancelRemoveRaceManager(t *testing.T) {
	m := stubManager(t, Options{Workers: 4, QueueDepth: 64},
		func(ctx context.Context, _ Spec, progress func(int64, int64)) (sim.Result, error) {
			progress(1, 2)
			select {
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			case <-time.After(time.Millisecond):
				progress(2, 2)
				return sim.Result{IPC: 1}, nil
			}
		})

	const n = 24
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := m.Submit(uniqueSpec(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			m.Cancel(id)
			m.Remove(id)
		}(j.ID())
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				j.Snapshot()
				m.List()
			}
		}(j)
	}
	wg.Wait()
	for _, j := range jobs {
		v := waitDone(t, j)
		if !v.State.terminal() {
			t.Fatalf("job %s state %s; want terminal", v.ID, v.State)
		}
		if v.Progress > 1 {
			t.Fatalf("job %s progress %v > 1", v.ID, v.Progress)
		}
	}
}

// TestCacheConcurrentEviction drives the LRU result cache from many
// goroutines with a working set larger than its capacity, so every Put
// races eviction against Gets promoting entries. Under -race this
// verifies the mutex covers the list+map pair; the posterior checks
// verify capacity is never exceeded and hits return the value stored
// under that key.
func TestCacheConcurrentEviction(t *testing.T) {
	const capacity = 4
	c := newResultCache(capacity)
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*7 + i) % len(keys)
				if i%3 == 0 {
					c.Put(keys[k], sim.Result{Accesses: int64(k)})
				} else if res, ok := c.Get(keys[k]); ok && res.Accesses != int64(k) {
					t.Errorf("cache returned Accesses=%d under %s", res.Accesses, keys[k])
				}
				if n := c.Len(); n > capacity {
					t.Errorf("cache holds %d entries; capacity %d", n, capacity)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries after storm; capacity %d", n, capacity)
	}
}

// TestCacheEvictionUnderConcurrentSubmit runs the full submit path with
// a tiny cache so completions evict each other while cache-hit submits
// read concurrently.
func TestCacheEvictionUnderConcurrentSubmit(t *testing.T) {
	m := stubManager(t, Options{Workers: 4, QueueDepth: 128, CacheEntries: 2},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				j, err := m.Submit(uniqueSpec(uint64(i%6 + 1)))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				v := waitDone(t, j)
				if v.State != StateDone {
					t.Errorf("job %s state %s: %s", v.ID, v.State, v.Error)
				}
			}
		}(g)
	}
	wg.Wait()
}
