package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// sweepOf builds a valid sweep over seeds of the test spec shape.
func sweepOf(seeds ...uint64) SweepSpec {
	return SweepSpec{
		Base: Spec{Workloads: []string{"bzip2"}, Mitigation: MitRRS, Scale: 16, Epochs: 1},
		Axes: SweepAxes{Seeds: seeds},
	}
}

func waitSweep(t *testing.T, m *Manager, sw *Sweep) SweepView {
	t.Helper()
	select {
	case <-sw.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("sweep %s did not finish: %+v", sw.ID(), m.snapshotSweep(sw, true))
	}
	return m.snapshotSweep(sw, true)
}

func TestSweepExpandDedupsNormalizedChildren(t *testing.T) {
	ss := SweepSpec{
		Base: Spec{Scale: 16, Epochs: 1, Seed: 7},
		Axes: SweepAxes{
			Mitigations: []string{MitNone, MitRRS, MitBlockHammer},
			Blacklists:  []uint32{512, 1024},
			Workloads:   []string{"hmmer", "bzip2"},
		},
	}
	if got := ss.Axes.points(); got != 12 {
		t.Fatalf("points = %d, want 12 before dedup", got)
	}
	specs, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Normalization zeroes Blacklist for non-blockhammer children, so the
	// 2 blacklist values collapse for none and rrs: 2+2+4 children.
	if len(specs) != 8 {
		t.Fatalf("expanded to %d children, want 8:\n%+v", len(specs), specs)
	}
	seen := make(map[string]bool)
	for _, sp := range specs {
		if len(sp.Workloads) != 1 {
			t.Errorf("child %v is not single-workload", sp.Workloads)
		}
		if sp.Mitigation != MitBlockHammer && sp.Blacklist != 0 {
			t.Errorf("child %s kept blacklist %d", sp.Mitigation, sp.Blacklist)
		}
		h := sp.Hash()
		if seen[h] {
			t.Errorf("duplicate child hash %s", h)
		}
		seen[h] = true
	}
	// Expansion is deterministic: same spec, same children, same order.
	again, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specHashes(specs), specHashes(again)) {
		t.Error("two expansions of the same sweep disagree on child order")
	}
}

func TestSweepExpandRejectsOversizedProduct(t *testing.T) {
	seeds := make([]uint64, maxSweepChildren+1)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	if _, err := sweepOf(seeds...).Expand(); err == nil {
		t.Fatalf("%d-child sweep accepted, want refusal", maxSweepChildren+1)
	}
}

// TestSweepPointsSaturatesOnOverflow: six 2048-entry axes multiply to
// 2^66, which wraps a plain int to 0 and would slip past the
// maxSweepChildren guard — points must saturate instead, and Expand
// must refuse the sweep without iterating the product.
func TestSweepPointsSaturatesOnOverflow(t *testing.T) {
	axes := SweepAxes{
		Mitigations:         make([]string, 2048),
		Blacklists:          make([]uint32, 2048),
		RowHammerThresholds: make([]int, 2048),
		Scales:              make([]int, 2048),
		Seeds:               make([]uint64, 2048),
		Workloads:           make([]string, 2048),
	}
	if got := axes.points(); got != maxSweepChildren+1 {
		t.Fatalf("points = %d, want saturation at %d", got, maxSweepChildren+1)
	}
	done := make(chan error, 1)
	go func() {
		_, err := (SweepSpec{Base: uniqueSpec(1), Axes: axes}).Expand()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("overflowing sweep accepted, want refusal")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Expand iterated an overflowed product instead of refusing up front")
	}
}

// TestCancelSweepNeverLeavesAnUncancelledChild races CancelSweep
// against the feeder. Children only ever finish by cancellation, so if
// the feeder links a child the cancel snapshot missed and nobody
// cancels it, the watcher — and this test — hangs on that child.
func TestCancelSweepNeverLeavesAnUncancelledChild(t *testing.T) {
	m := stubManager(t, Options{Workers: 2, CacheEntries: -1},
		func(ctx context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		})
	for i := 0; i < 50; i++ {
		base := uint64(4 * i)
		sw, created, err := m.SubmitSweep(sweepOf(base+1, base+2, base+3, base+4))
		if err != nil {
			t.Fatal(err)
		}
		if !created {
			t.Fatalf("iteration %d coalesced onto a prior sweep", i)
		}
		go m.CancelSweep(sw.ID())
		select {
		case <-sw.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("cancelled sweep %s never finished: %+v",
				sw.ID(), m.snapshotSweep(sw, true))
		}
	}
}

func TestSweepExpandRejectsInvalidChild(t *testing.T) {
	ss := sweepOf(1)
	ss.Axes.Workloads = []string{"doom"}
	if _, err := ss.Expand(); err == nil {
		t.Fatal("sweep with unknown workload accepted")
	}
}

func TestSweepRunsAggregatesAndCachesResubmission(t *testing.T) {
	var runs sync.Map
	m := stubManager(t, Options{Workers: 4},
		func(_ context.Context, spec Spec, progress func(int64, int64)) (sim.Result, error) {
			runs.Store(spec.Seed, true)
			progress(1, 1)
			return sim.Result{IPC: float64(spec.Seed), Epochs: 1, Accesses: 10}, nil
		})

	ss := sweepOf(1, 2, 3, 4)
	sw, created, err := m.SubmitSweep(ss)
	if err != nil || !created {
		t.Fatalf("SubmitSweep = (%v, %v)", created, err)
	}
	v := waitSweep(t, m, sw)
	if v.State != StateDone || v.Total != 4 || v.Done != 4 || v.CacheHits != 0 {
		t.Fatalf("first pass = %+v", v)
	}
	if v.Progress != 1 {
		t.Errorf("progress = %v, want 1", v.Progress)
	}
	if v.Stats == nil || v.Stats.Results != 4 {
		t.Fatalf("stats = %+v, want 4 results", v.Stats)
	}
	if v.Stats.MeanIPC != 2.5 || v.Stats.TotalEpochs != 4 || v.Stats.TotalAccesses != 40 {
		t.Errorf("aggregates = %+v", v.Stats)
	}
	results := m.SweepResults(sw)
	specs, _ := ss.Expand()
	for i, sp := range specs {
		res, ok := results[sp.Hash()]
		if !ok || res.IPC != float64(sp.Seed) {
			t.Errorf("child %d result = (%+v, %v)", i, res, ok)
		}
	}

	// Resubmitting the finished sweep starts a fresh parent whose
	// children are all answered from the result cache: nothing re-runs.
	runs.Range(func(k, _ any) bool { runs.Delete(k); return true })
	sw2, created2, err := m.SubmitSweep(ss)
	if err != nil || !created2 {
		t.Fatalf("resubmit = (%v, %v)", created2, err)
	}
	if sw2.ID() == sw.ID() {
		t.Fatal("resubmit after completion reused the finished sweep")
	}
	v2 := waitSweep(t, m, sw2)
	if v2.State != StateDone || v2.CacheHits != 4 {
		t.Fatalf("resubmitted sweep = state %s, %d cache hits, want done/4", v2.State, v2.CacheHits)
	}
	runs.Range(func(k, _ any) bool {
		t.Errorf("resubmission re-ran seed %v", k)
		return true
	})
	if got := m.met.JSON().Counters["rrs_sweep_children_cached_total"]; got != 4 {
		t.Errorf("rrs_sweep_children_cached_total = %d, want 4", got)
	}
	// Aggregates over cached results are bit-identical to the first run.
	if !reflect.DeepEqual(v.Stats, v2.Stats) {
		t.Errorf("cached aggregate drifted:\nfirst  %+v\nsecond %+v", v.Stats, v2.Stats)
	}
}

func TestSweepSubmissionsCoalesceWhileRunning(t *testing.T) {
	release := make(chan struct{})
	m := stubManager(t, Options{Workers: 1},
		func(ctx context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			}
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})

	ss := sweepOf(1, 2)
	sw, created, err := m.SubmitSweep(ss)
	if err != nil || !created {
		t.Fatalf("SubmitSweep = (%v, %v)", created, err)
	}
	dup, created2, err := m.SubmitSweep(ss)
	if err != nil {
		t.Fatal(err)
	}
	if created2 || dup != sw {
		t.Fatalf("concurrent duplicate got its own sweep (%s vs %s)", dup.ID(), sw.ID())
	}
	if got := m.met.JSON().Counters["rrs_sweeps_coalesced_total"]; got != 1 {
		t.Errorf("rrs_sweeps_coalesced_total = %d, want 1", got)
	}
	close(release)
	if v := waitSweep(t, m, sw); v.State != StateDone {
		t.Fatalf("sweep = %s (%s)", v.State, v.Error)
	}
}

func TestSweepCancelStopsChildrenAndRetires(t *testing.T) {
	started := make(chan struct{}, 4)
	m := stubManager(t, Options{Workers: 1},
		func(ctx context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		})

	sw, _, err := m.SubmitSweep(sweepOf(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if ok, err := m.CancelSweep(sw.ID()); !ok || err != nil {
		t.Fatalf("CancelSweep = (%v, %v)", ok, err)
	}
	v := waitSweep(t, m, sw)
	if v.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	// Cancelling a terminal sweep is a no-op; removal retires it.
	if ok, err := m.CancelSweep(sw.ID()); ok || err != nil {
		t.Fatalf("second cancel = (%v, %v), want (false, nil)", ok, err)
	}
	if err := m.RemoveSweep(sw.ID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.GetSweep(sw.ID()); ok {
		t.Error("removed sweep still listed")
	}
	if _, err := m.CancelSweep(sw.ID()); err == nil {
		t.Error("cancel of removed sweep did not report ErrSweepNotFound")
	}
}

func TestSweepResumesFromJournalAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	gate := make(chan struct{})
	m1, j1, _ := journalManager(t, path, Options{Workers: 1},
		func(ctx context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			if spec.Seed >= 3 {
				select {
				case <-gate:
				case <-ctx.Done():
					return sim.Result{}, ctx.Err()
				}
			}
			return sim.Result{IPC: float64(spec.Seed), Epochs: 1}, nil
		})
	defer close(gate)

	ss := sweepOf(1, 2, 3, 4)
	sw1, _, err := m1.SubmitSweep(ss)
	if err != nil {
		t.Fatal(err)
	}
	// Let the first two children finish; the third wedges on the gate.
	deadline := time.Now().Add(10 * time.Second)
	for m1.snapshotSweep(sw1, false).Done < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached 2 done children: %+v", m1.snapshotSweep(sw1, true))
		}
		time.Sleep(time.Millisecond)
	}

	// kill -9: the journal stops recording first, so the cancellations
	// the (short-fused, force-cancelling) shutdown forces are never
	// journaled — exactly like a crash.
	j1.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	m1.Shutdown(sctx)
	scancel()

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.PendingSweeps != 1 {
		t.Fatalf("replay = %d pending sweeps, want 1", rep.PendingSweeps)
	}
	if rep.Pending != 2 || rep.Results != 2 {
		t.Fatalf("replay = %d pending, %d results; want 2/2", rep.Pending, rep.Results)
	}

	var mu sync.Mutex
	var reran []uint64
	m2 := stubManager(t, Options{Workers: 2, Journal: j2},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			mu.Lock()
			reran = append(reran, spec.Seed)
			mu.Unlock()
			return sim.Result{IPC: float64(spec.Seed), Epochs: 1}, nil
		})
	if err := m2.Restore(rep); err != nil {
		t.Fatal(err)
	}
	sweeps := m2.ListSweeps()
	if len(sweeps) != 1 || sweeps[0].ID() != sw1.ID() {
		t.Fatalf("restored sweeps = %v", sweeps)
	}
	v := waitSweep(t, m2, sweeps[0])
	if v.State != StateDone || v.Done != 4 {
		t.Fatalf("resumed sweep = %+v", v)
	}
	// Exactly-once: the children that finished before the crash are
	// served from the replayed cache, only the unfinished pair runs.
	mu.Lock()
	defer mu.Unlock()
	if len(reran) != 2 {
		t.Fatalf("resume re-ran seeds %v, want exactly the 2 unfinished", reran)
	}
	for _, seed := range reran {
		if seed < 3 {
			t.Errorf("resume re-ran already-completed seed %d", seed)
		}
	}
	if v.CacheHits != 2 {
		t.Errorf("resumed sweep cache hits = %d, want 2", v.CacheHits)
	}

	// The resumed aggregate is bit-identical to an uninterrupted run.
	ref := stubManager(t, Options{Workers: 2},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			return sim.Result{IPC: float64(spec.Seed), Epochs: 1}, nil
		})
	refSw, _, err := ref.SubmitSweep(ss)
	if err != nil {
		t.Fatal(err)
	}
	refV := waitSweep(t, ref, refSw)
	if !reflect.DeepEqual(v.Stats, refV.Stats) {
		t.Errorf("resumed aggregate drifted:\nresumed   %+v\nreference %+v", v.Stats, refV.Stats)
	}
}

func TestSweepTerminalStateSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	m1, j1, _ := journalManager(t, path, Options{Workers: 2}, instantRun)
	sw, _, err := m1.SubmitSweep(sweepOf(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, m1, sw)
	shutdown(t, m1)
	j1.Close()

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.PendingSweeps != 0 || len(rep.Sweeps) != 1 {
		t.Fatalf("replay = %d sweeps, %d pending; want 1/0", len(rep.Sweeps), rep.PendingSweeps)
	}
	m2 := stubManager(t, Options{Workers: 1, Journal: j2},
		func(context.Context, Spec, func(int64, int64)) (sim.Result, error) {
			t.Error("terminal sweep re-ran a child after restart")
			return sim.Result{}, nil
		})
	if err := m2.Restore(rep); err != nil {
		t.Fatal(err)
	}
	sw2, ok := m2.GetSweep(sw.ID())
	if !ok {
		t.Fatal("terminal sweep lost across restart")
	}
	v := m2.snapshotSweep(sw2, true)
	if v.State != StateDone || v.Done != 2 {
		t.Fatalf("restored terminal sweep = %+v", v)
	}
	if len(m2.SweepResults(sw2)) != 2 {
		t.Error("restored terminal sweep lost its child results")
	}
}

// TestListOrderIsDeterministic is the regression for the map-iteration
// listing bug: two jobs restored with the same sequence number (two
// fleet nodes journaling independently) must list in a stable order,
// id-tie-broken, on every call.
func TestListOrderIsDeterministic(t *testing.T) {
	m := stubManager(t, Options{Workers: 1}, instantRun)
	res := sim.Result{IPC: 1}
	rep := &Replayed{Jobs: []ReplayedJob{
		{ID: "b.job-000001", Seq: 1, Spec: uniqueSpec(1), State: StateDone, Result: &res},
		{ID: "a.job-000001", Seq: 1, Spec: uniqueSpec(2), State: StateDone, Result: &res},
		{ID: "a.job-000002", Seq: 2, Spec: uniqueSpec(3), State: StateDone, Result: &res},
	}}
	if err := m.Restore(rep); err != nil {
		t.Fatal(err)
	}
	want := []string{"a.job-000001", "b.job-000001", "a.job-000002"}
	for round := 0; round < 5; round++ {
		var got []string
		for _, j := range m.List() {
			got = append(got, j.ID())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: List order = %v, want %v", round, got, want)
		}
	}
}

// TestSweepSmoke is the make sweep-smoke backing: a tiny real-engine
// sweep over HTTP, submitted twice; the second pass must be answered
// entirely from the result cache.
func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations; skipped in -short")
	}
	m := NewManager(Options{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL)
	client.PollInterval = 10 * time.Millisecond

	ss := SweepSpec{
		Base: Spec{Workloads: []string{"hmmer"}, Scale: 64, Epochs: 1, Seed: 0xEC0},
		Axes: SweepAxes{Mitigations: []string{MitNone, MitRRS}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	first, err := client.RunSweep(ctx, ss)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("first pass returned %d results, want 2", len(first))
	}
	for h, res := range first {
		if res.IPC <= 0 {
			t.Errorf("child %s IPC = %v", h, res.IPC)
		}
	}
	second, err := client.RunSweep(ctx, ss)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("second pass results differ from the first")
	}
	counters := m.met.JSON().Counters
	if got := counters["rrs_sweep_children_cached_total"]; got != 2 {
		t.Errorf("rrs_sweep_children_cached_total = %d, want 2 (second pass all cached)", got)
	}
	fmt.Printf("sweep-smoke: %d children, %d served from cache on resubmit\n",
		len(first), counters["rrs_sweep_children_cached_total"])
}

func TestSweepHTTPLifecycle(t *testing.T) {
	srv, m := newTestServer(t, Options{Workers: 2}, instantRun)
	client := NewClient(srv.URL)
	client.PollInterval = 2 * time.Millisecond

	ss := sweepOf(5, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := client.RunSweep(ctx, ss)
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := ss.Expand()
	if len(got) != len(specs) {
		t.Fatalf("RunSweep returned %d results, want %d", len(got), len(specs))
	}
	for _, sp := range specs {
		if res, ok := got[sp.Hash()]; !ok || res.IPC != float64(sp.Seed) {
			t.Errorf("child seed %d result = (%+v, %v)", sp.Seed, res, ok)
		}
	}

	// The children are individually addressable by content hash.
	res, ok, err := client.ResultByHash(ctx, specs[0].Hash())
	if err != nil || !ok || res.IPC != float64(specs[0].Seed) {
		t.Fatalf("ResultByHash = (%+v, %v, %v)", res, ok, err)
	}
	if _, ok, err := client.ResultByHash(ctx, "deadbeef"); err != nil || ok {
		t.Fatalf("unknown hash = (ok=%v, err=%v), want miss without error", ok, err)
	}

	// The sweep shows up in the listing; DELETE retires it.
	sweeps := m.ListSweeps()
	if len(sweeps) != 1 {
		t.Fatalf("ListSweeps = %d entries, want 1", len(sweeps))
	}
	id := sweeps[0].ID()
	if v, err := client.Sweep(ctx, id); err != nil || v.State != StateDone || v.Total != len(specs) {
		t.Fatalf("Sweep(%s) = (%+v, %v)", id, v, err)
	}
	if err := client.CancelSweep(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Sweep(ctx, id); err == nil {
		t.Error("retired sweep still answers GET")
	}
}

func TestSweepHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1}, instantRun)
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{"bad json", http.MethodPost, "/v1/sweeps", `{"base":`,
			http.StatusBadRequest, "decoding sweep spec"},
		{"unknown field", http.MethodPost, "/v1/sweeps", `{"bse":{}}`,
			http.StatusBadRequest, "unknown field"},
		{"invalid child", http.MethodPost, "/v1/sweeps",
			`{"base":{"workloads":["doom"],"scale":16,"epochs":1}}`,
			http.StatusBadRequest, "unknown workload"},
		{"get missing", http.MethodGet, "/v1/sweeps/sweep-999999", "",
			http.StatusNotFound, "no such sweep"},
		{"results missing", http.MethodGet, "/v1/sweeps/sweep-999999/results", "",
			http.StatusNotFound, "no such sweep"},
		{"delete missing", http.MethodDelete, "/v1/sweeps/sweep-999999", "",
			http.StatusNotFound, "no such sweep"},
		{"result by hash missing", http.MethodGet, "/v1/results/deadbeef", "",
			http.StatusNotFound, "no result"},
		{"list", http.MethodGet, "/v1/sweeps", "", http.StatusOK, `"sweeps"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path,
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s",
					resp.StatusCode, tc.wantStatus, raw)
			}
			if !strings.Contains(string(raw), tc.wantSubstr) {
				t.Errorf("body missing %q:\n%s", tc.wantSubstr, raw)
			}
		})
	}
}
