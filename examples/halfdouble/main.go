// Half-Double demo: the paper's Figure 1 as a running experiment.
//
// The classical double-sided attack flips bits on an unprotected system;
// victim-focused mitigation (Graphene-style tracker + neighbour refresh)
// stops it; the Half-Double attack then defeats the victim-focused
// mitigation by weaponizing its own refreshes — and Randomized Row-Swap
// stops every pattern because it breaks the spatial connection between
// aggressor and victim rows.
//
//	go run ./examples/halfdouble
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
)

func main() {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 2400 // scaled epoch: 2400 activations
	cfg.RowHammerThreshold = 240
	alpha2 := attack.Alpha2For(cfg)

	defenses := []struct {
		name string
		mit  func(*dram.System) memctrl.Mitigation
	}{
		{"no defense", nil},
		{"victim-focused (Graphene-style)", func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewGraphene(sys,
				mitigation.DefaultGrapheneThreshold(cfg.RowHammerThreshold), 1, 7)
		}},
		{"randomized row-swap (RRS)", func(sys *dram.System) memctrl.Mitigation {
			r, err := core.New(sys, core.DefaultParams(sys.Config()))
			if err != nil {
				panic(err)
			}
			return r
		}},
	}
	patterns := []func() attack.Pattern{
		func() attack.Pattern { return attack.NewDoubleSided(100) },
		func() attack.Pattern { return attack.NewHalfDouble(100) },
	}

	fmt.Println("Attacking victim row 100 for 3 refresh epochs per cell:")
	fmt.Println()
	fmt.Printf("%-34s %-18s %s\n", "defense", "double-sided", "half-double")
	fmt.Printf("%-34s %-18s %s\n", "-------", "------------", "-----------")
	for _, d := range defenses {
		cells := make([]string, 0, 2)
		for _, mk := range patterns {
			ctl, fm := attack.NewSystem(cfg, 0, alpha2, d.mit)
			res := attack.Run(ctl, fm, mk(), attack.Options{Epochs: 3})
			if res.Defended() {
				cells = append(cells, "defended")
			} else {
				cells = append(cells, fmt.Sprintf("%d FLIPS", res.Flips))
			}
		}
		fmt.Printf("%-34s %-18s %s\n", d.name, cells[0], cells[1])
	}

	fmt.Println()
	fmt.Println("The half-double column is the paper's motivation: victim-focused")
	fmt.Println("mitigation refreshes the aggressor's neighbours, and those refresh")
	fmt.Println("activations hammer the row two away — only the aggressor-focused")
	fmt.Println("random swap removes the aggressor from the neighbourhood entirely.")
}
