// Package resilience is the shared failure policy of the serving layer:
// it decides which errors are worth retrying, how long to wait between
// attempts, and when a deadline makes another attempt pointless. The
// client (HTTP retries, result polling) and the server (automatic re-runs
// of transiently failed jobs) share this one vocabulary so that "transient"
// means the same thing on both sides of the wire.
//
// The model is deliberately simple:
//
//   - An error is transient (a retry may succeed: connection resets,
//     overload, injected chaos) or permanent (a retry reproduces it:
//     validation failures, deterministic simulation errors). Unknown
//     errors default to permanent — retrying a deterministic failure
//     only multiplies load — except for network-shaped errors, which are
//     transient by nature.
//   - Delays grow exponentially and are drawn with full jitter
//     (uniform in [0, cap]), the AWS-style scheme that de-correlates
//     synchronized retry storms.
//   - A server can attach an explicit hint (Retry-After) to an error;
//     the hint overrides the computed backoff for that attempt.
package resilience

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"time"
)

// Policy shapes a retry loop. The zero value is usable: Defaults fills
// in 4 attempts, 100 ms base, 5 s cap, multiplier 2.
type Policy struct {
	// MaxAttempts bounds the total number of tries (first call
	// included). 0 means the default (4); negative means retry until the
	// context expires.
	MaxAttempts int
	// BaseDelay is the backoff cap for the first retry (default 100 ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 5 s).
	MaxDelay time.Duration
	// Multiplier grows the cap per attempt (default 2).
	Multiplier float64

	// Rand supplies jitter; nil uses the global source. Tests inject a
	// seeded source for deterministic schedules.
	Rand *rand.Rand
	// Sleep replaces time-based waiting (tests). nil sleeps on a timer,
	// honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Defaults returns p with zero fields replaced by the stock policy.
func (p Policy) Defaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// Delay draws the wait before retry number attempt (0-based: the delay
// after the first failure is Delay(0)). Full jitter: uniform in
// [0, min(MaxDelay, BaseDelay·Multiplier^attempt)], never zero.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.Defaults()
	cap := float64(p.BaseDelay)
	for i := 0; i < attempt && cap < float64(p.MaxDelay); i++ {
		cap *= p.Multiplier
	}
	if cap > float64(p.MaxDelay) {
		cap = float64(p.MaxDelay)
	}
	var f float64
	if p.Rand != nil {
		f = p.Rand.Float64()
	} else {
		f = rand.Float64()
	}
	d := time.Duration(f * cap)
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// sleep waits d, returning early with ctx.Err() on cancellation.
func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// classified wraps an error with an explicit transience verdict.
type classified struct {
	err       error
	transient bool
}

func (c *classified) Error() string   { return c.err.Error() }
func (c *classified) Unwrap() error   { return c.err }
func (c *classified) Transient() bool { return c.transient }

// MarkTransient tags err as retryable. Fault injectors and servers use
// it to make their verdict explicit instead of relying on inference.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: true}
}

// MarkPermanent tags err as not worth retrying, overriding inference
// (e.g. a net.Error that is known to be a misconfiguration).
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: false}
}

// IsTransient reports whether a retry of the failed operation could
// succeed. Explicit marks win; context expiry is never transient (the
// caller's deadline governs); network-shaped errors are transient;
// everything else is permanent.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var c interface{ Transient() bool }
	if errors.As(err, &c) {
		return c.Transient()
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	// A connection torn down mid-response surfaces as an unexpected EOF.
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	return false
}

// TransientStatus reports whether an HTTP status code signals a
// condition a retry may outlive: overload (429), and server-side
// failures (5xx) other than 501 Not Implemented.
func TransientStatus(code int) bool {
	if code == 429 {
		return true
	}
	return code >= 500 && code != 501
}

// hinted carries a server-provided minimum wait (Retry-After).
type hinted struct {
	err   error
	after time.Duration
}

func (h *hinted) Error() string             { return h.err.Error() }
func (h *hinted) Unwrap() error             { return h.err }
func (h *hinted) Transient() bool           { return true }
func (h *hinted) RetryAfter() time.Duration { return h.after }

// WithRetryAfter tags a transient error with the server's requested
// minimum wait before the next attempt.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &hinted{err: err, after: after}
}

// RetryAfter extracts a server wait hint, if any.
func RetryAfter(err error) (time.Duration, bool) {
	var h interface{ RetryAfter() time.Duration }
	if errors.As(err, &h) {
		if d := h.RetryAfter(); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// Do runs fn until it succeeds, fails permanently, exhausts
// p.MaxAttempts, or ctx expires. Between attempts it sleeps a
// full-jitter backoff — or the error's Retry-After hint, when larger —
// and it gives up early when the context's deadline cannot outlive the
// wait. The returned error is the last attempt's, wrapped with the
// context's error when the loop was cut short.
func Do(ctx context.Context, p Policy, fn func(ctx context.Context) error) error {
	p = p.Defaults()
	var err error
	for attempt := 0; ; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		err = fn(ctx)
		if err == nil || !IsTransient(err) {
			return err
		}
		if p.MaxAttempts > 0 && attempt+1 >= p.MaxAttempts {
			return err
		}
		d := p.Delay(attempt)
		if hint, ok := RetryAfter(err); ok && hint > d {
			d = hint
		}
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < d {
			// Sleeping past the deadline cannot help; report the real
			// failure rather than a bare context error.
			return err
		}
		if serr := p.sleep(ctx, d); serr != nil {
			return errors.Join(serr, err)
		}
	}
}
