package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/power"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/tracker"
)

// ShootoutMitigations is the full defense zoo the shootout compares, in
// presentation order: the paper's four baselines plus RRS and its four
// successors.
func ShootoutMitigations() []string {
	return []string{
		service.MitRRS, service.MitPARA, service.MitGraphene,
		service.MitIdeal, service.MitBlockHammer, service.MitSRS,
		service.MitRubix, service.MitMINT, service.MitPrIDE,
		service.MitDAPPER,
	}
}

// shootoutAttacks names the attack legs of the shootout, in column order.
var shootoutAttacks = []string{"double-sided", "half-double", "juggling"}

// ShootoutRow is one defense's line of the cross-mitigation comparison.
type ShootoutRow struct {
	// Mitigation is the defense's service name.
	Mitigation string
	// NormPerf is geomean IPC normalized to the unprotected baseline
	// across the scale's workloads.
	NormPerf float64
	// Flips maps attack name to bit-flip count.
	Flips map[string]int
	// NearMisses sums, over the attack legs, how often a victim crossed
	// half the flip threshold.
	NearMisses int64
	// SRAMKBPerBank is the analytic per-bank SRAM cost at full scale.
	SRAMKBPerBank float64
}

// Defended reports whether the defense survived every attack leg.
func (r ShootoutRow) Defended() bool {
	for _, f := range r.Flips {
		if f > 0 {
			return false
		}
	}
	return true
}

// shootoutParanoid is the paranoid wiring the zoo defenses and core.RRS
// share (the same contract sim.Run discovers by type assertion).
type shootoutParanoid interface {
	EnableParanoid(*invariant.Engine)
	Err() error
}

// Shootout runs the cross-defense comparison: every mitigation under the
// same workloads (perf leg, normalized to the unprotected baseline) and
// the same attack patterns (security leg at the attack scale), plus the
// analytic SRAM cost, in one table. mitigations of nil runs the full zoo
// (ShootoutMitigations). With paranoid set, both legs run under the
// invariant engine and any violation fails the experiment.
func Shootout(s Scale, mitigations []string, paranoid bool) ([]ShootoutRow, *stats.Table, error) {
	if len(mitigations) == 0 {
		mitigations = ShootoutMitigations()
	}
	for _, name := range mitigations {
		if _, err := service.MitigationFactory(name, max(1, s.Factor), 0); err != nil {
			return nil, nil, err
		}
	}

	// Perf leg: one unprotected baseline per workload, shared by every
	// defense. The whole leg — baseline plus the zoo — is a single sweep
	// when a Sweeper is configured (runSpec still routes through the
	// Runner's cache when serving point by point).
	ws := s.workloads()
	type perfKey struct{ mit, workload string }
	baseSpec := s.spec(service.MitNone, 0)
	baseSpec.Paranoid = paranoid
	run, err := s.sweepRunner(baseSpec, service.SweepAxes{
		Mitigations: append([]string{service.MitNone}, mitigations...),
		Workloads:   workloadNames(ws),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("shootout sweep: %w", err)
	}
	baseIPC := make(map[string]float64, len(ws))
	for _, w := range ws {
		spec := s.spec(service.MitNone, 0, w)
		spec.Paranoid = paranoid
		res, err := run(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("shootout baseline: %w", err)
		}
		if res.IPC == 0 {
			return nil, nil, fmt.Errorf("shootout: baseline IPC is zero for %s", w.Name)
		}
		baseIPC[w.Name] = res.IPC
	}
	perf := make(map[perfKey]float64, len(mitigations)*len(ws))
	for _, name := range mitigations {
		for _, w := range ws {
			spec := s.spec(name, 0, w)
			spec.Paranoid = paranoid
			res, err := run(spec)
			if err != nil {
				return nil, nil, fmt.Errorf("shootout %s: %w", name, err)
			}
			perf[perfKey{name, w.Name}] = res.IPC / baseIPC[w.Name]
		}
	}

	// Security leg: the three attack patterns at the attack scale.
	var rows []ShootoutRow
	for _, name := range mitigations {
		row := ShootoutRow{
			Mitigation:    name,
			Flips:         make(map[string]int, len(shootoutAttacks)),
			SRAMKBPerBank: sramKBPerBank(name),
		}
		var norms []float64
		for _, w := range ws {
			norms = append(norms, perf[perfKey{name, w.Name}])
		}
		row.NormPerf = stats.GeoMean(norms)
		for _, att := range shootoutAttacks {
			res, near, err := runShootoutAttack(name, att, paranoid)
			if err != nil {
				return nil, nil, fmt.Errorf("shootout %s vs %s: %w", name, att, err)
			}
			row.Flips[att] = res.Flips
			row.NearMisses += near
		}
		rows = append(rows, row)
	}

	t := stats.NewTable("Mitigation", "Norm. perf",
		"Double-sided", "Half-Double", "Juggling", "Near-misses", "SRAM KB/bank")
	for _, r := range rows {
		cells := make([]string, len(shootoutAttacks))
		for i, att := range shootoutAttacks {
			if f := r.Flips[att]; f > 0 {
				cells[i] = fmt.Sprintf("BIT FLIPS (%d)", f)
			} else {
				cells[i] = "mitigated"
			}
		}
		t.AddRow(r.Mitigation, fmt.Sprintf("%.3f", r.NormPerf),
			cells[0], cells[1], cells[2], r.NearMisses,
			fmt.Sprintf("%.3f", r.SRAMKBPerBank))
	}
	return rows, t, nil
}

// runShootoutAttack runs one defense/attack cell at the attack scale,
// optionally under the invariant engine, and returns the attack result
// plus the fault model's near-miss count.
func runShootoutAttack(mit, att string, paranoid bool) (attack.Result, int64, error) {
	cfg := attackScaleConfig()
	ctl, fm := attack.NewSystem(cfg, 0, attack.Alpha2For(cfg), attackFactoryFor(mit))

	var eng *invariant.Engine
	if paranoid {
		eng = invariant.NewEngine()
		if pm, ok := ctl.Mitigation().(shootoutParanoid); ok {
			pm.EnableParanoid(eng)
		} else {
			ctl.System().EnableParanoid(eng)
			eng.Register("dram/structure", ctl.System().CheckInvariants)
		}
	}

	var p attack.Pattern
	bank := dram.BankID{}
	switch att {
	case "double-sided":
		p = attack.NewDoubleSided(100)
	case "half-double":
		p = attack.NewHalfDouble(100)
	case "juggling":
		p = attack.NewJuggling(100, attack.OccupantOracle(ctl, bank))
	default:
		return attack.Result{}, 0, fmt.Errorf("unknown attack %q", att)
	}

	res := attack.Run(ctl, fm, p, attack.Options{Bank: bank, Epochs: 3})
	if eng != nil {
		if err := eng.RunAll(); err != nil {
			return attack.Result{}, 0, err
		}
		if err := eng.Err(); err != nil {
			return attack.Result{}, 0, err
		}
	}
	return res, fm.NearMisses(), nil
}

// attackFactoryFor builds the defense for the attack substrate. The swap
// defenses use their unscaled (full-cost) parameters, matching the other
// attack experiments: the attack config already rescales T_RH, and the
// swap-cost/epoch proportion is not what the security leg measures.
func attackFactoryFor(name string) mitigationFactory {
	switch name {
	case service.MitNone:
		return noFactory
	case service.MitRRS, service.MitRRSCAM:
		return attackRRSFactory
	case service.MitPARA:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewPARA(sys,
				mitigation.DefaultPARAProbability(sys.Config().RowHammerThreshold), 7)
		}
	case service.MitGraphene:
		return grapheneFactory
	case service.MitIdeal:
		return idealFactory
	case service.MitBlockHammer:
		return attackBlockHammerFactory
	case service.MitSRS:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewSRS(sys, mitigation.DefaultSRSParams(sys.Config()))
		}
	case service.MitRubix:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewRubix(sys,
				mitigation.DefaultPARAProbability(sys.Config().RowHammerThreshold), 11)
		}
	case service.MitMINT:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewMINT(sys, 13)
		}
	case service.MitPrIDE:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewPrIDE(sys,
				mitigation.DefaultPrIDEProbability(sys.Config()), 17)
		}
	case service.MitDAPPER:
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewDAPPER(sys,
				mitigation.DefaultPrIDEProbability(sys.Config()), 19)
		}
	default:
		panic(fmt.Sprintf("experiments: no attack factory for %q", name))
	}
}

// sramKBPerBank is the shootout's analytic per-bank SRAM cost at the
// full-scale configuration (DESIGN.md §11 derives each formula).
func sramKBPerBank(name string) float64 {
	cfg := config.Default()
	rowBits := storageBits(cfg.RowsPerBank)
	trh := cfg.RowHammerThreshold
	switch name {
	case service.MitRRS, service.MitRRSCAM:
		// The paper's Table 5 geometry: RIT + tracker + swap buffers.
		tbl := power.StorageTable(cfg, power.PaperStorageParams())
		return tbl[len(tbl)-1].KB
	case service.MitSRS:
		// One unified table: ACT_max/T entries of (valid + lock + logical
		// row + physical row + counter).
		t := trh / 6
		entries := tracker.EntriesFor(cfg.ACTMax(), t)
		entryBits := 2 + 2*rowBits + storageBits(t)
		return float64(entries*entryBits) / 8 / 1024
	case service.MitRubix:
		// Two 64-bit mapping keys per bank; no per-row state.
		return 16.0 / 1024
	case service.MitMINT:
		// One sampled-row register, the activation index and the sampled
		// index (the paper's "1 counter" tracker).
		w := int(int64(cfg.TREFI) / int64(cfg.TRC))
		return float64(rowBits+2*storageBits(w)) / 8 / 1024
	case service.MitPrIDE, service.MitDAPPER:
		// The fixed aggressor FIFO plus head/occupancy indices.
		return float64(prideSRAMEntries*rowBits+2*storageBits(prideSRAMEntries)) / 8 / 1024
	case service.MitGraphene:
		// Misra-Gries CAM sized for the Graphene threshold: entries of
		// (valid + row + counter) plus the spill counter.
		t := int(mitigation.DefaultGrapheneThreshold(trh))
		entries := tracker.EntriesFor(cfg.ACTMax(), t)
		entryBits := 1 + rowBits + storageBits(t)
		return float64(entries*entryBits+storageBits(t)) / 8 / 1024
	case service.MitIdeal:
		// A full counter per row — the cost that makes "ideal" unbuildable.
		return float64(cfg.RowsPerBank*storageBits(trh)) / 8 / 1024
	case service.MitBlockHammer:
		// The counting Bloom filter pair (active + shadow generation).
		p := mitigation.DefaultBlockHammerParams()
		return float64(2*p.Counters*storageBits(int(p.BlacklistThreshold))) / 8 / 1024
	case service.MitPARA, service.MitNone:
		return 0
	default:
		return 0
	}
}

// prideSRAMEntries mirrors the pride queue depth for the storage model
// (the implementation constant is unexported by design).
const prideSRAMEntries = 8

// storageBits returns ceil(log2(n)) for n > 1 (field width for values
// in [0, n)).
func storageBits(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
