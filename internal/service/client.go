package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/resilience"
	"repro/internal/sim"
)

// Client talks to a running rrs-serve. It is safe for concurrent use —
// cmd/rrs-experiments fans a whole figure sweep through one Client.
//
// The client is built for an unreliable network and a restartable
// server: transient failures (connection errors, 5xx, 429) are retried
// with full-jitter exponential backoff, Retry-After hints are honored,
// result polls are jittered so sweep fan-outs do not synchronize, and a
// retried POST after a dropped response is idempotent — the server
// coalesces submissions by spec content hash, so the retry lands on the
// same job instead of double-running the simulation.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval is the base result-polling cadence (default 250 ms);
	// actual polls are jittered around it and back off toward
	// maxPollBackoff× under sustained pending responses.
	PollInterval time.Duration
	// Retry shapes the transient-failure retry loop for every request.
	Retry resilience.Policy
}

// maxPollBackoff caps how far the pending-result poll interval grows, as
// a multiple of PollInterval.
const maxPollBackoff = 8

// maxResubmits bounds how many times Run re-submits a spec whose job
// vanished server-side (a restart that lost the record, or a concurrent
// DELETE) before giving up.
const maxResubmits = 5

// ClientOption customizes NewClient.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport — how tests drive the client
// through a fault-injecting chaos RoundTripper.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetryPolicy overrides the default retry policy.
func WithRetryPolicy(p resilience.Policy) ClientOption {
	return func(c *Client) { c.Retry = p }
}

// NewClient targets a server base URL such as "http://localhost:8080".
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx server response. It classifies itself for the
// retry loop: 429 and 5xx (minus 501) are transient, everything else is
// permanent.
type APIError struct {
	Status  int
	Message string
	// After is the server's Retry-After hint, when present.
	After time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("service client: server returned %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("service client: server returned %d", e.Status)
}

// Transient reports whether a retry may outlive the failure.
func (e *APIError) Transient() bool { return resilience.TransientStatus(e.Status) }

// RetryAfter surfaces the server's wait hint to the retry loop.
func (e *APIError) RetryAfter() time.Duration { return e.After }

// Health checks GET /healthz (with transient-failure retries, so it
// doubles as a wait-for-server-up probe).
func (c *Client) Health(ctx context.Context) error {
	err := resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, _, _, err := c.roundTrip(ctx, http.MethodGet, "/healthz", nil)
		return err
	})
	if err != nil {
		return fmt.Errorf("service client: %s health: %w", c.base, err)
	}
	return nil
}

// Ready checks GET /readyz with a single probe — no retries, because a
// readiness probe wants the instantaneous verdict: a draining or
// overloaded node answers 503 and the prober must see that, not a
// smoothed-over success. Returns nil only for a 200.
func (c *Client) Ready(ctx context.Context) error {
	_, _, _, err := c.roundTrip(ctx, http.MethodGet, "/readyz", nil)
	if err != nil {
		return fmt.Errorf("service client: %s ready: %w", c.base, err)
	}
	return nil
}

// Submit POSTs spec and returns the accepted job's view. Retried
// transparently on transient failures: the spec content hash makes the
// resubmission idempotent server-side.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobView{}, err
	}
	var v JobView
	err = resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, raw, _, err := c.roundTrip(ctx, http.MethodPost, apiPrefix, body)
		if err != nil {
			return err
		}
		return json.Unmarshal(raw, &v)
	})
	if err != nil {
		return JobView{}, err
	}
	return v, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, raw, _, err := c.roundTrip(ctx, http.MethodGet, apiPrefix+"/"+id, nil)
		if err != nil {
			return err
		}
		return json.Unmarshal(raw, &v)
	})
	if err != nil {
		return JobView{}, err
	}
	return v, nil
}

// Cancel DELETEs a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, _, _, err := c.roundTrip(ctx, http.MethodDelete, apiPrefix+"/"+id, nil)
		return err
	})
}

// Result polls GET /v1/jobs/{id}/result until the job finishes, ctx is
// cancelled, or the server reports a terminal failure. Transient
// transport failures during a poll are retried; pending responses back
// off with jitter (honoring Retry-After) so a fleet of pollers spreads
// out instead of beating in phase.
func (c *Client) Result(ctx context.Context, id string) (sim.Result, error) {
	base := c.PollInterval
	useHint := base <= 0 // an explicit PollInterval overrides server hints
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	wait := base
	for {
		var env ResultEnvelope
		var hint time.Duration
		pending := false
		err := resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
			status, raw, after, err := c.roundTrip(ctx, http.MethodGet,
				apiPrefix+"/"+id+"/result", nil)
			if err != nil {
				return err
			}
			if status == http.StatusAccepted {
				pending, hint = true, after
				return nil
			}
			pending = false
			if uerr := json.Unmarshal(raw, &env); uerr != nil {
				return fmt.Errorf("service client: decoding result: %w", uerr)
			}
			return nil
		})
		if err != nil {
			return sim.Result{}, err
		}
		if !pending {
			return env.Result, nil
		}
		// Jittered backoff between pending polls: uniform in
		// [wait/2, wait), at least the server's hint, growing toward the
		// cap while the job stays pending.
		d := wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		if useHint && hint > d {
			d = hint
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return sim.Result{}, ctx.Err()
		case <-t.C:
		}
		if wait < maxPollBackoff*base {
			wait = wait * 3 / 2
		}
	}
}

// ResultByHash fetches a held result by spec content hash
// (GET /v1/results/{hash}). ok=false when no node holds it; the error
// is non-nil only for failures other than a plain 404.
func (c *Client) ResultByHash(ctx context.Context, hash string) (res sim.Result, ok bool, err error) {
	var env ResultEnvelope
	err = resilience.Do(ctx, c.Retry, func(ctx context.Context) error {
		_, raw, _, err := c.roundTrip(ctx, http.MethodGet, "/v1/results/"+hash, nil)
		if err != nil {
			return err
		}
		return json.Unmarshal(raw, &env)
	})
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		return sim.Result{}, false, nil
	}
	if err != nil {
		return sim.Result{}, false, err
	}
	return env.Result, true, nil
}

// Run submits spec and waits for its result — the drop-in remote
// equivalent of sim.Run for named-mitigation jobs. If the job record
// vanishes mid-poll (a server restart whose journal did not cover it, or
// a concurrent DELETE), Run first checks the result store by content
// hash — on a fleet the computation may have finished and be held by a
// surviving replica even though the owner's job record died with it —
// and only re-submits when no node holds the result.
func (c *Client) Run(ctx context.Context, spec Spec) (sim.Result, error) {
	var lastErr error
	hash := spec.Hash()
	for attempt := 0; attempt <= maxResubmits; attempt++ {
		if attempt > 0 {
			// Recovering from a lost job record: the work may already be
			// done fleet-wide. A hash lookup is read-only and cannot
			// re-queue finished work the way a blind re-POST can.
			if res, ok, err := c.ResultByHash(ctx, hash); err == nil && ok {
				return res, nil
			} else if ctx.Err() != nil {
				return sim.Result{}, ctx.Err()
			}
		}
		v, err := c.Submit(ctx, spec)
		if err != nil {
			return sim.Result{}, err
		}
		res, err := c.Result(ctx, v.ID)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			lastErr = err
			continue // the job is gone; check the result store, then resubmit
		}
		return res, err
	}
	return sim.Result{}, fmt.Errorf("service client: job lost %d times: %w",
		maxResubmits+1, lastErr)
}

// parseRetryAfter interprets a Retry-After header value. RFC 9110
// allows two forms — delta-seconds ("3") and an HTTP-date ("Tue, 03 Jun
// 2025 17:00:00 GMT") — and proxies rewrite one into the other, so the
// client must honor both; a date in the past (or skewed clocks) yields
// zero rather than a negative wait.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// roundTrip performs one HTTP exchange, returning the status, body and
// Retry-After hint on 2xx and a classified error otherwise.
// Connection-level failures come back as-is (net errors classify as
// transient); non-2xx statuses become *APIError carrying the hint.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (int, []byte, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, 0, resilience.MarkTransient(
			fmt.Errorf("service client: reading response: %w", err))
	}
	after := parseRetryAfter(resp.Header.Get("Retry-After"))
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp.StatusCode, raw, after, nil
	}
	apiErr := &APIError{Status: resp.StatusCode, After: after}
	var e errorBody
	if json.Unmarshal(raw, &e) == nil {
		apiErr.Message = e.Error
	}
	return resp.StatusCode, raw, after, apiErr
}
