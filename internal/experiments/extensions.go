package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ProbabilisticRow compares the tracked and state-less RRS variants on one
// workload (the paper's footnote 1 ablation).
type ProbabilisticRow struct {
	Variant       string
	SwapsPerEpoch float64
	Normalized    float64
}

// TrackerVsProbabilistic quantifies footnote 1: the state-less variant's
// swap count scales with total activations rather than with the number of
// hot rows, making it unsuitable at low Row Hammer thresholds.
func TrackerVsProbabilistic(s Scale, workload string) ([]ProbabilisticRow, *stats.Table, error) {
	w, ok := trace.ByName(workload)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", workload)
	}
	variants := []struct {
		label string
		prob  float64
	}{
		{"Misra-Gries tracker", 0},
		// Matching PARA-grade protection needs p ~ 12/T_RH per ACT.
		{"state-less (p=12/T_RH)", 12.0 / float64(s.Config().RowHammerThreshold)},
	}
	var rows []ProbabilisticRow
	t := stats.NewTable("Variant", "Swaps/epoch", "Normalized perf")
	for _, v := range variants {
		prob := v.prob
		factory := func(sys *dram.System) memctrl.Mitigation {
			p := core.ScaledParams(sys.Config())
			p.SwapProbability = prob
			r, err := core.New(sys, p)
			if err != nil {
				panic(err)
			}
			return r
		}
		norm, _, mitRes, err := sim.NormalizedPerformance(s.options(w), factory)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, ProbabilisticRow{Variant: v.label,
			SwapsPerEpoch: mitRes.SwapsPerEpoch, Normalized: norm})
		t.AddRow(v.label, mitRes.SwapsPerEpoch, norm)
	}
	return rows, t, nil
}

// DetectionResult reports the footnote-2 attack-detection experiment.
type DetectionResult struct {
	AttackDetections int64
	AttackFlips      int
	BenignDetections int64
}

// AttackDetection runs the footnote-2 detector. The detector's guarantee
// is not early pattern classification — it is catching the rare dangerous
// event (a physical location accumulating repeated swaps, the
// balls-in-a-bucket step an attack must climb) long before the k = 6 swaps
// a bit flip needs, at the cost of occasional benign false positives whose
// response (one preemptive refresh, ~2.8 ms) is cheap.
//
// The attack runs on a deliberately small bank so the birthday event is
// observable within a few epochs; the benign comparison runs the same
// detector on the standard attack-scale bank where hot rows swap about
// once per epoch each.
func AttackDetection(epochs int) (DetectionResult, *stats.Table) {
	detectingRRS := func(sys *dram.System) memctrl.Mitigation {
		p := core.DefaultParams(sys.Config())
		p.DetectionThreshold = 2
		r, err := core.New(sys, p)
		if err != nil {
			panic(err)
		}
		return r
	}

	// Attack run: shrunken randomization space (256 rows).
	acfg := attackScaleConfig()
	acfg.RowsPerBank = 256
	ctl, fm := attack.NewSystem(acfg, 0, attack.Alpha2For(acfg), detectingRRS)
	chase := attack.NewRandomChase(acfg.RowHammerThreshold/6, acfg.RowsPerBank, 0xDE7)
	res := attack.Run(ctl, fm, chase, attack.Options{Epochs: epochs})
	attackDet := ctl.Mitigation().(*core.RRS).Stats().AttacksDetected

	// Benign run: a few hot rows on the standard bank, each swapping
	// roughly once per epoch.
	bcfg := attackScaleConfig()
	ctl2, fm2 := attack.NewSystem(bcfg, 0, attack.Alpha2For(bcfg), detectingRRS)
	benign := attack.NewManySided(10, 4)
	attack.Run(ctl2, fm2, benign, attack.Options{Epochs: epochs})
	benignDet := ctl2.Mitigation().(*core.RRS).Stats().AttacksDetected

	out := DetectionResult{
		AttackDetections: attackDet,
		AttackFlips:      res.Flips,
		BenignDetections: benignDet,
	}
	t := stats.NewTable("Scenario", "Detections", "Bit flips")
	t.AddRow("random-chase attack (256-row bank)", attackDet, res.Flips)
	t.AddRow("benign hot rows (4096-row bank)", benignDet, fm2.FlipCount())
	return out, t
}

// MixedWorkloads measures RRS normalized performance on the paper's six
// mixed (multi-programmed) workloads: each core runs a different benchmark
// from the Table 3 catalog.
func MixedWorkloads(s Scale, count int) ([]Figure6Row, *stats.Table, error) {
	mixes := trace.Mixes(s.Config().Cores)
	if count > 0 && count < len(mixes) {
		mixes = mixes[:count]
	}
	var rows []Figure6Row
	t := stats.NewTable("Mix", "RRS normalized perf")
	var norms []float64
	for _, m := range mixes {
		norm, _, _, err := s.normalizedSpec(s.spec(service.MitRRS, 0, m.Workloads...))
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Figure6Row{Workload: m.Name, Normalized: norm})
		t.AddRow(m.Name, norm)
		norms = append(norms, norm)
	}
	t.AddRow("GEOMEAN", stats.GeoMean(norms))
	return rows, t, nil
}

// RowCloneRow is one swap-cost variant's attacker impact.
type RowCloneRow struct {
	Variant          string
	AttackerSlowdown float64
	Defended         bool
}

// RowCloneAblation quantifies Section 8.1's remark that in-DRAM bulk copy
// (RowClone) would shrink RRS's only overhead under attack — the channel
// time of swap transfers. It measures the attacker's slowdown with the
// swap-buffer data path versus a 10x faster RowClone-style path.
func RowCloneAblation(epochs int) ([]RowCloneRow, *stats.Table) {
	cfg := attackScaleConfig()
	alpha2 := attack.Alpha2For(cfg)

	base := func(sys *dram.System) memctrl.Mitigation { return nil }
	bres := runWith(cfg, alpha2, base, epochs)

	variants := []struct {
		label string
		div   int64
	}{
		{"swap buffers (paper)", 1},
		{"RowClone-accelerated (10x)", 10},
	}
	var rows []RowCloneRow
	t := stats.NewTable("Swap data path", "Attacker slowdown", "Defended")
	for _, v := range variants {
		div := v.div
		factory := func(sys *dram.System) memctrl.Mitigation {
			p := core.DefaultParams(sys.Config())
			pp, err := p.Finalize(sys.Config())
			if err != nil {
				panic(err)
			}
			pp.SwapOpCycles = max(1, pp.SwapOpCycles/div)
			r, err := core.New(sys, pp)
			if err != nil {
				panic(err)
			}
			return r
		}
		res := runWith(cfg, alpha2, factory, epochs)
		slow := 1.0
		if res.AccessRate > 0 {
			slow = bres.AccessRate / res.AccessRate
		}
		rows = append(rows, RowCloneRow{Variant: v.label,
			AttackerSlowdown: slow, Defended: res.Defended()})
		t.AddRow(v.label, fmt.Sprintf("%.2fx", slow), res.Defended())
	}
	return rows, t
}

// runWith runs the standard double-sided attack against a mitigation.
func runWith(cfg config.Config, alpha2 float64, mit mitigationFactory, epochs int) attack.Result {
	ctl, fm := attack.NewSystem(cfg, 0, alpha2, mit)
	return attack.Run(ctl, fm, attack.NewDoubleSided(100), attack.Options{Epochs: epochs})
}
