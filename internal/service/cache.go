package service

import (
	"container/list"
	"sync"

	"repro/internal/sim"
)

// resultCache is a content-addressed LRU of finished simulation results,
// keyed by Spec.Hash. The engine is deterministic, so a hit is exactly
// the result a worker would recompute — sweeps that revisit a
// configuration (Figure 10's threshold sweep, resubmitted experiment
// runs) pay for each distinct point once.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // hash -> element holding *cacheEntry
}

type cacheEntry struct {
	key string
	res sim.Result
}

// newResultCache holds up to capacity results; capacity <= 0 disables
// caching (every Get misses, Put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key and promotes it to
// most-recently-used.
func (c *resultCache) Get(key string) (sim.Result, bool) {
	if c.cap <= 0 {
		return sim.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return sim.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting the least-recently-used entry past
// capacity. The stored result must already have its Mitigation field
// cleared (the manager does this): cached entries outlive the run and
// must not pin the simulated hardware model.
func (c *resultCache) Put(key string, res sim.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the cached hashes, most recently used first — the
// cache-only half of Manager.DoneHashes.
func (c *resultCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}
