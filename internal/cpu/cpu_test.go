package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// sliceReader replays a fixed record list.
type sliceReader struct {
	recs []trace.Record
	i    int
}

func (s *sliceReader) Next() (trace.Record, bool) {
	if s.i >= len(s.recs) {
		return trace.Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

func cfg() config.Config { return config.Default() }

func TestIssueTimesFollowFetchRate(t *testing.T) {
	// Gap of 799 + 1 access = 800 instructions at 8 inst/bus-cycle = 100
	// bus cycles apart.
	r := &sliceReader{recs: []trace.Record{
		{Gap: 799, Line: 1},
		{Gap: 799, Line: 2},
	}}
	c := New(0, cfg(), r, 0)
	_, t0 := c.Issue()
	c.Complete(c.Pos(), t0+10)
	_, t1 := c.Issue()
	if t0 != 100 {
		t.Fatalf("first issue at %d, want 100", t0)
	}
	if t1 != 200 {
		t.Fatalf("second issue at %d, want 200", t1)
	}
}

func TestROBBackPressure(t *testing.T) {
	// A load with a huge completion time, followed by an access more than
	// ROBSize instructions later: fetch must stall until the load returns.
	r := &sliceReader{recs: []trace.Record{
		{Gap: 0, Line: 1},
		{Gap: 500, Line: 2}, // 501 instructions later > 192 ROB
	}}
	c := New(0, cfg(), r, 0)
	_, t0 := c.Issue()
	c.Complete(c.Pos(), t0+100000)
	_, t1 := c.Issue()
	if t1 < t0+100000 {
		t.Fatalf("second access at %d ignored ROB stall (load done at %d)", t1, t0+100000)
	}
	if c.StallCycles == 0 {
		t.Fatal("stall cycles not recorded")
	}
}

func TestNoStallWithinROBWindow(t *testing.T) {
	// Second access within the ROB window: issues at fetch rate even
	// though the first load is still outstanding.
	r := &sliceReader{recs: []trace.Record{
		{Gap: 0, Line: 1},
		{Gap: 50, Line: 2}, // 51 instructions later < 192
	}}
	c := New(0, cfg(), r, 0)
	_, t0 := c.Issue()
	c.Complete(c.Pos(), t0+100000)
	_, t1 := c.Issue()
	if t1 >= t0+100000 {
		t.Fatal("MLP lost: second access waited for first load")
	}
}

func TestBudgetStopsCore(t *testing.T) {
	r := &sliceReader{recs: []trace.Record{
		{Gap: 10, Line: 1},
		{Gap: 10, Line: 2},
		{Gap: 10, Line: 3},
	}}
	c := New(0, cfg(), r, 25)
	c.Issue()
	if c.Done() {
		t.Fatal("done too early")
	}
	c.Issue() // pos = 22 -> not yet
	c.Issue() // pos = 33 >= 25 -> done
	if !c.Done() {
		t.Fatal("budget not enforced")
	}
	if _, ok := c.NextIssueTime(); ok {
		t.Fatal("core issues after done")
	}
}

func TestTraceEndStopsIssuing(t *testing.T) {
	r := &sliceReader{recs: []trace.Record{{Gap: 0, Line: 1}}}
	c := New(0, cfg(), r, 0)
	c.Issue()
	if _, ok := c.NextIssueTime(); ok {
		t.Fatal("core issues past end of trace")
	}
}

func TestFinishTimeCoversOutstandingLoadsAndBudget(t *testing.T) {
	r := &sliceReader{recs: []trace.Record{{Gap: 0, Line: 1}}}
	c := New(0, cfg(), r, 801)
	_, t0 := c.Issue()
	c.Complete(c.Pos(), t0+5000)
	f := c.FinishTime()
	// Must wait for the load (t0+5000) plus 800 remaining instructions
	// at 8 per bus cycle = 100 cycles.
	if f != t0+5000+100 {
		t.Fatalf("finish = %d, want %d", f, t0+5000+100)
	}
}

func TestInstructionsCounted(t *testing.T) {
	r := &sliceReader{recs: []trace.Record{
		{Gap: 9, Line: 1},
		{Gap: 19, Line: 2},
	}}
	c := New(0, cfg(), r, 0)
	c.Issue()
	c.Issue()
	if c.Instructions() != 30 {
		t.Fatalf("instructions = %d, want 30", c.Instructions())
	}
}

func TestCycleLimitStopsCore(t *testing.T) {
	r := &sliceReader{recs: []trace.Record{
		{Gap: 799, Line: 1},
		{Gap: 7999, Line: 2}, // would issue at bus cycle 1100
	}}
	c := New(0, cfg(), r, 1<<40) // effectively unbounded budget
	c.Limit = 500
	if _, ok := c.NextIssueTime(); !ok {
		t.Fatal("first access within limit rejected")
	}
	c.Issue() // at cycle 100
	if _, ok := c.NextIssueTime(); ok {
		t.Fatal("access beyond the cycle limit issued")
	}
	if !c.Done() {
		t.Fatal("core not done after limit")
	}
	if f := c.FinishTime(); f != 500 {
		t.Fatalf("FinishTime = %d, want the limit (500)", f)
	}
}

func TestFinishTimeWithoutLimitExtrapolatesBudget(t *testing.T) {
	r := &sliceReader{recs: []trace.Record{{Gap: 0, Line: 1}}}
	c := New(0, cfg(), r, 8001)
	_, t0 := c.Issue()
	// 8000 remaining instructions at 8/bus-cycle = 1000 cycles.
	if f := c.FinishTime(); f != t0+1000 {
		t.Fatalf("FinishTime = %d, want %d", f, t0+1000)
	}
}
