package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/trace"
)

// testScale is the epoch-shrink factor used by sim tests (4 ms epochs).
const testScale = 16

func testConfig() config.Config { return config.Default().Scaled(testScale) }

func rrsFactory(sys *dram.System) memctrl.Mitigation {
	// ScaledParams keeps the swap cost's share of the (shrunken) epoch
	// equal to full scale.
	r, err := core.New(sys, core.ScaledParams(sys.Config()))
	if err != nil {
		panic(err)
	}
	return r
}

func run(t *testing.T, name string, epochs int, mit func(*dram.System) memctrl.Mitigation) Result {
	t.Helper()
	w, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	cfg := testConfig()
	res, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          int64(epochs) * cfg.EpochCycles,
		Seed:                3,
		Mitigation:          mit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineRunSane(t *testing.T) {
	res := run(t, "bzip2", 1, nil)
	if res.IPC <= 0 || res.IPC > 4 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	// Measured MPKI tracks the workload's specification (5.57).
	if res.MPKI < 4.5 || res.MPKI > 6.5 {
		t.Fatalf("MPKI = %v, want ~5.57", res.MPKI)
	}
	if res.Epochs != 1 {
		t.Fatalf("Epochs = %d, want 1", res.Epochs)
	}
	if res.Accesses == 0 || res.Instructions == 0 {
		t.Fatal("nothing simulated")
	}
	if res.Energy.TotalMJ() <= 0 {
		t.Fatal("no energy measured")
	}
}

func TestCycleLimitRespected(t *testing.T) {
	cfg := testConfig()
	res := run(t, "gcc", 1, nil)
	// The run must end within a small overhang of the cycle limit
	// (outstanding loads may drain past it).
	if res.Cycles < cfg.EpochCycles || res.Cycles > cfg.EpochCycles+cfg.EpochCycles/10 {
		t.Fatalf("cycles = %d, limit %d", res.Cycles, cfg.EpochCycles)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, "gcc", 1, nil)
	b := run(t, "gcc", 1, nil)
	if a.IPC != b.IPC || a.Accesses != b.Accesses || a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestHotWorkloadProducesHotRows(t *testing.T) {
	// hmmer: 1675 hot rows at full scale; the scaled run must report a
	// substantial hot-row count, far above a cold workload's.
	hot := run(t, "hmmer", 1, nil)
	cold := run(t, "mcf", 1, nil)
	if hot.HotRowsPerEpoch < 100 {
		t.Fatalf("hmmer hot rows = %v, want hundreds", hot.HotRowsPerEpoch)
	}
	if cold.HotRowsPerEpoch > hot.HotRowsPerEpoch/10 {
		t.Fatalf("mcf hot rows = %v vs hmmer %v — ordering lost",
			cold.HotRowsPerEpoch, hot.HotRowsPerEpoch)
	}
}

func TestRRSSwapsTrackHotRows(t *testing.T) {
	hot := run(t, "hmmer", 1, rrsFactory)
	cold := run(t, "mcf", 1, rrsFactory)
	if hot.SwapsPerEpoch < 50 {
		t.Fatalf("hmmer swaps/epoch = %v, want many", hot.SwapsPerEpoch)
	}
	if cold.SwapsPerEpoch > 20 {
		t.Fatalf("mcf swaps/epoch = %v, want few", cold.SwapsPerEpoch)
	}
}

func TestRRSSlowdownSmall(t *testing.T) {
	// The paper's headline: ~0.4% average slowdown, worst case 7.6%.
	for _, name := range []string{"bzip2", "mcf"} {
		base := run(t, name, 1, nil)
		rrs := run(t, name, 1, rrsFactory)
		norm := rrs.IPC / base.IPC
		if norm < 0.85 || norm > 1.02 {
			t.Errorf("%s: normalized perf = %.4f, want within [0.85, 1.02]", name, norm)
		}
	}
}

func TestBlockHammerSlowsHotWorkloadMore(t *testing.T) {
	bh := func(sys *dram.System) memctrl.Mitigation {
		p := mitigation.DefaultBlockHammerParams()
		p.BlacklistThreshold = 512 / testScale
		return mitigation.NewBlockHammer(sys, p)
	}
	base := run(t, "hmmer", 1, nil)
	slowed := run(t, "hmmer", 1, bh)
	rrs := run(t, "hmmer", 1, rrsFactory)
	bhNorm := slowed.IPC / base.IPC
	rrsNorm := rrs.IPC / base.IPC
	if bhNorm > rrsNorm {
		t.Fatalf("BlockHammer (%.4f) outperformed RRS (%.4f) on a hot workload",
			bhNorm, rrsNorm)
	}
}

func TestNormalizedPerformanceHelper(t *testing.T) {
	w, _ := trace.ByName("gcc")
	cfg := testConfig()
	opts := Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                3,
	}
	norm, base, rrs, err := NormalizedPerformance(opts, rrsFactory)
	if err != nil {
		t.Fatal(err)
	}
	if norm <= 0 || norm > 1.05 {
		t.Fatalf("normalized = %v", norm)
	}
	if base.IPC == 0 || rrs.IPC == 0 {
		t.Fatal("missing results")
	}
}

func TestSplitHotRows(t *testing.T) {
	total := 0
	for i := 0; i < 8; i++ {
		total += splitHotRows(1675, 8, i)
	}
	if total != 1675 {
		t.Fatalf("split sums to %d", total)
	}
	// 1 hot row: only core 0.
	if splitHotRows(1, 8, 0) != 1 || splitHotRows(1, 8, 1) != 0 {
		t.Fatal("single hot row misdistributed")
	}
}

func TestOffsetReaderWraps(t *testing.T) {
	inner := &fixedReader{recs: []trace.Record{{Line: 90}, {Line: 5}}}
	o := &offsetReader{r: inner, offset: 20, mod: 100}
	r1, _ := o.Next()
	r2, _ := o.Next()
	if r1.Line != 10 { // (90+20)%100
		t.Fatalf("wrapped line = %d", r1.Line)
	}
	if r2.Line != 25 {
		t.Fatalf("offset line = %d", r2.Line)
	}
}

type fixedReader struct {
	recs []trace.Record
	i    int
}

func (f *fixedReader) Next() (trace.Record, bool) {
	if f.i >= len(f.recs) {
		return trace.Record{}, false
	}
	r := f.recs[f.i]
	f.i++
	return r, true
}

func TestNoWorkloadsError(t *testing.T) {
	if _, err := Run(Options{Config: testConfig()}); err == nil {
		t.Fatal("expected error for empty workload list")
	}
}

func TestInvalidConfigError(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 0
	w, _ := trace.ByName("gcc")
	if _, err := Run(Options{Config: cfg, Workloads: []trace.Workload{w}}); err == nil {
		t.Fatal("expected error for invalid config")
	}
}

func TestReadersOverrideReplaysTrace(t *testing.T) {
	cfg := testConfig()
	w, _ := trace.ByName("gcc")
	// Record a synthetic stream, then replay it through the simulator.
	var recs []trace.Record
	gen := trace.NewGenerator(w, trace.GeneratorParams{
		LineBytes: cfg.LineBytes, RowBytes: cfg.RowBytes, Seed: 4,
	})
	for i := 0; i < 5000; i++ {
		r, _ := gen.Next()
		recs = append(recs, r)
	}
	readers := make([]trace.Reader, cfg.Cores)
	for i := range readers {
		rs := make([]trace.Record, len(recs))
		copy(rs, recs)
		readers[i] = &fixedReader{recs: rs}
	}
	res, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		Readers:             readers,
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All cores share the recorded addresses; the run completes and
	// reports the replayed access count (bounded by the record supply).
	if res.Accesses == 0 || res.Accesses > int64(len(recs)*cfg.Cores) {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
}

func TestProgressInstructionBudgetNeverExceedsTotal(t *testing.T) {
	// Regression test for the Progress contract in instruction-bounded
	// runs: a core's retired-instruction count overshoots its budget by up
	// to one trace gap (the budget check runs after pos jumps past it), and
	// budgets essentially never divide checkInterval evenly — the reported
	// done value must still be clamped to total on every callback,
	// including the completion callback.
	w, _ := trace.ByName("mcf") // high MPKI: many accesses per instruction
	cfg := testConfig()
	const budget = 100_001 // deliberately not a multiple of checkInterval
	total := int64(budget) * int64(cfg.Cores)
	var calls int
	var last int64 = -1
	res, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: budget,
		Seed:                7,
		Progress: func(done, tot int64) {
			calls++
			if tot != total {
				t.Fatalf("progress total = %d, want %d", tot, total)
			}
			if done > tot {
				t.Fatalf("progress done %d exceeds total %d", done, tot)
			}
			if done < last {
				t.Fatalf("progress went backwards: %d after %d", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress hook never called")
	}
	if last != total {
		t.Fatalf("final progress = %d, want %d (complete)", last, total)
	}
	// The overshoot that motivates the clamp must actually occur.
	if res.Instructions <= total {
		t.Fatalf("instructions = %d, want > %d (gap overshoot)", res.Instructions, total)
	}
}

func TestReadersShorterThanCoresRejected(t *testing.T) {
	cfg := testConfig()
	w, _ := trace.ByName("gcc")
	_, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		Readers:             []trace.Reader{&fixedReader{}}, // 1 reader, 8 cores
		InstructionsPerCore: 1000,
	})
	if err == nil {
		t.Fatal("expected error for fewer readers than cores")
	}
}

func TestPerCoreStreamsDistinct(t *testing.T) {
	// Rate mode replicates one workload across cores; the per-core streams
	// must not be identical (correlated cores would hammer the same rows in
	// lockstep). Compare the first lines each core generates, before the
	// address-space offset is applied.
	w, _ := trace.ByName("bzip2")
	cfg := testConfig()
	seen := make(map[string]int)
	for i := 0; i < cfg.Cores; i++ {
		gen := trace.NewGenerator(w, trace.GeneratorParams{
			LineBytes: cfg.LineBytes,
			RowBytes:  cfg.RowBytes,
			Seed:      trace.PerCoreSeed(3, i),
		})
		var sig []byte
		for k := 0; k < 64; k++ {
			r, _ := gen.Next()
			sig = append(sig, byte(r.Line), byte(r.Line>>8), byte(r.Line>>16), byte(r.Gap))
		}
		if prev, dup := seen[string(sig)]; dup {
			t.Fatalf("cores %d and %d generate identical streams", prev, i)
		}
		seen[string(sig)] = i
	}
}

func TestContextCancelsRun(t *testing.T) {
	w, _ := trace.ByName("bzip2")
	cfg := testConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := false
	_, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          int64(4) * cfg.EpochCycles,
		Seed:                3,
		Context:             ctx,
		// Cancel from inside the run, once it is demonstrably underway.
		Progress: func(done, total int64) {
			if !cancelled && done > 0 {
				cancelled = true
				cancel()
			}
		},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under cancelled context = %v, want context.Canceled", err)
	}
}

func TestProgressMonotonicAndComplete(t *testing.T) {
	w, _ := trace.ByName("gcc")
	cfg := testConfig()
	limit := cfg.EpochCycles
	var calls int
	var last int64 = -1
	res, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          limit,
		Seed:                3,
		Progress: func(done, total int64) {
			calls++
			if total != limit {
				t.Fatalf("progress total = %d, want %d", total, limit)
			}
			if done < last {
				t.Fatalf("progress went backwards: %d after %d", done, last)
			}
			if done > total {
				t.Fatalf("progress done %d exceeds total %d", done, total)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress hook never called")
	}
	if last != limit {
		t.Fatalf("final progress = %d, want %d (complete)", last, limit)
	}
	if res.IPC <= 0 {
		t.Fatal("run produced no work")
	}
}
