package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// journalManager builds a stub manager journaling to path.
func journalManager(t *testing.T, path string, opts Options,
	fn func(ctx context.Context, spec Spec, progress func(done, total int64)) (sim.Result, error)) (*Manager, *Journal, *Replayed) {
	t.Helper()
	j, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	opts.Journal = j
	m := stubManager(t, opts, fn)
	t.Cleanup(func() { j.Close() })
	return m, j, rep
}

func TestJournalMissingFileReplaysEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(rep.Jobs) != 0 || rep.Pending != 0 || rep.Results != 0 || rep.Dropped != 0 {
		t.Fatalf("empty journal replayed %+v", rep)
	}
}

func TestJournalDoneJobsSurviveRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	m1, j1, _ := journalManager(t, path, Options{Workers: 2}, instantRun)

	specs := []Spec{uniqueSpec(1), uniqueSpec(2), uniqueSpec(3)}
	ids := make([]string, len(specs))
	for i, s := range specs {
		j, err := m1.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID()
		if v := waitDone(t, j); v.State != StateDone {
			t.Fatalf("job %s: %s (%s)", v.ID, v.State, v.Error)
		}
	}
	shutdown(t, m1)
	j1.Close()

	// Restart: the replay carries terminal jobs with results.
	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rep.Jobs) != 3 || rep.Results != 3 || rep.Pending != 0 {
		t.Fatalf("replay = %d jobs, %d results, %d pending; want 3/3/0",
			len(rep.Jobs), rep.Results, rep.Pending)
	}

	m2 := stubManager(t, Options{Workers: 1, Journal: j2},
		func(context.Context, Spec, func(int64, int64)) (sim.Result, error) {
			t.Error("restored manager ran a simulation; results should come from the journal")
			return sim.Result{}, nil
		})
	if err := m2.Restore(rep); err != nil {
		t.Fatal(err)
	}

	// Original job ids answer with their original results…
	for i, id := range ids {
		job, ok := m2.Get(id)
		if !ok {
			t.Fatalf("restored manager lost job %s", id)
		}
		v := job.Snapshot()
		if v.State != StateDone {
			t.Fatalf("restored job %s state = %s", id, v.State)
		}
		res, ok := job.Result()
		if !ok || res.IPC != float64(specs[i].Seed) {
			t.Fatalf("restored job %s result = (%+v, %v)", id, res, ok)
		}
	}
	// …and resubmissions are cache hits, not recomputations.
	j, err := m2.Submit(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, j); !v.CacheHit {
		t.Error("resubmission after restart missed the replayed cache")
	}
}

func TestJournalPendingJobsReenqueuedAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	release := make(chan struct{})
	m1, j1, _ := journalManager(t, path, Options{Workers: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			<-release
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		j, err := m1.Submit(uniqueSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	// Simulate kill -9: stop journaling first, so the in-memory shutdown
	// below cannot write terminal states the dead process never reached.
	j1.Close()
	close(release)
	shutdown(t, m1)

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.Pending != 3 || len(rep.Jobs) != 3 {
		t.Fatalf("replay = %d jobs, %d pending; want 3/3", len(rep.Jobs), rep.Pending)
	}

	m2 := stubManager(t, Options{Workers: 2, Journal: j2},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	if err := m2.Restore(rep); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		job, ok := m2.Get(id)
		if !ok {
			t.Fatalf("pending job %s not restored", id)
		}
		v := waitDone(t, job)
		if v.State != StateDone || v.ID != id {
			t.Fatalf("replayed job = %+v, want done under original id %s", v, id)
		}
		res, _ := job.Result()
		if res.IPC != float64(i+1) {
			t.Fatalf("replayed job %s IPC = %v, want %d", id, res.IPC, i+1)
		}
	}
	// New submissions continue the id sequence past the replayed ones.
	j4, err := m2.Submit(uniqueSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID() <= ids[len(ids)-1] {
		t.Errorf("post-restore id %s does not extend replayed sequence ending %s",
			j4.ID(), ids[len(ids)-1])
	}
	waitDone(t, j4)
}

func TestJournalTornFinalLineDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	m1, j1, _ := journalManager(t, path, Options{Workers: 1}, instantRun)
	j, err := m1.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	shutdown(t, m1)
	j1.Close()

	// Simulate a crash mid-append: a torn, unparseable final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"accepted","id":"job-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 torn line", rep.Dropped)
	}
	if len(rep.Jobs) != 1 || rep.Results != 1 {
		t.Errorf("replay = %d jobs, %d results; the intact record must survive",
			len(rep.Jobs), rep.Results)
	}
}

func TestJournalCompactionDropsRemovedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	m1, j1, _ := journalManager(t, path, Options{Workers: 1}, instantRun)
	keep, err := m1.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, keep)
	gone, err := m1.Submit(uniqueSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, gone)
	if err := m1.Remove(gone.ID()); err != nil {
		t.Fatal(err)
	}
	shutdown(t, m1)
	j1.Close()

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != keep.ID() {
		t.Fatalf("replay kept %d jobs; want only %s", len(rep.Jobs), keep.ID())
	}
	// The compacted file itself no longer mentions the removed job.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), gone.ID()) {
		t.Errorf("compacted journal still mentions removed job %s:\n%s", gone.ID(), raw)
	}
	// Idempotence: a second replay of the compacted file is identical.
	j3, rep2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(rep2.Jobs) != 1 || rep2.Results != rep.Results || rep2.Pending != rep.Pending {
		t.Errorf("second replay %+v differs from first %+v", rep2, rep)
	}
}

func TestJournalCancelledJobsNotReenqueued(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	release := make(chan struct{})
	m1, j1, _ := journalManager(t, path, Options{Workers: 1},
		func(_ context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			<-release
			return sim.Result{}, nil
		})
	blocker, err := m1.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m1.Submit(uniqueSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := m1.Cancel(queued.ID()); !ok || err != nil {
		t.Fatalf("Cancel = (%v, %v)", ok, err)
	}
	waitDone(t, queued)
	close(release)
	waitDone(t, blocker)
	shutdown(t, m1)
	j1.Close()

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.Pending != 0 {
		t.Fatalf("Pending = %d; a cancelled job must not be re-enqueued", rep.Pending)
	}
	m2 := stubManager(t, Options{Workers: 1, Journal: j2}, instantRun)
	if err := m2.Restore(rep); err != nil {
		t.Fatal(err)
	}
	job, ok := m2.Get(queued.ID())
	if !ok {
		t.Fatalf("cancelled job %s not restored", queued.ID())
	}
	if v := job.Snapshot(); v.State != StateCancelled {
		t.Errorf("restored state = %s, want cancelled", v.State)
	}
}

func TestJournalInvalidReplayedSpecFailsJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	// Hand-write a pending job whose workload no longer exists.
	line := `{"type":"accepted","id":"job-000001","seq":1,"hash":"deadbeef",` +
		`"spec":{"workloads":["no-such-workload"]},"submitted_at":"2026-01-02T03:04:05Z"}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	j, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rep.Pending != 1 {
		t.Fatalf("Pending = %d, want 1", rep.Pending)
	}
	m := stubManager(t, Options{Workers: 1, Journal: j}, instantRun)
	if err := m.Restore(rep); err != nil {
		t.Fatal(err)
	}
	job, ok := m.Get("job-000001")
	if !ok {
		t.Fatal("stale job not restored at all")
	}
	v := waitDone(t, job)
	if v.State != StateFailed || !strings.Contains(v.Error, "unknown workload") {
		t.Fatalf("stale spec replayed to %s (%s); want failed with a validation error",
			v.State, v.Error)
	}
}

func TestJournalClosedAppendsAreNoOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err) // double close is safe
	}
	if err := j.append(journalRecord{Type: recRemoved, ID: "job-000009"}); err != nil {
		t.Fatalf("append after close = %v, want silent no-op", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Errorf("closed journal still wrote: %q", raw)
	}
}

// shutdown drains m with a generous deadline.
func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestJournalTornLineWithStaleCompactionTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	gate := make(chan struct{})
	m1, j1, _ := journalManager(t, path, Options{Workers: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			if spec.Seed >= 3 {
				<-gate
			}
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	for seed := uint64(1); seed <= 2; seed++ {
		j, err := m1.Submit(uniqueSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	pending, err := m1.Submit(uniqueSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	// kill -9 while seed 3 runs: the journal closes first, so its
	// terminal record (written during manager teardown) is lost and the
	// job must replay as pending.
	j1.Close()
	close(gate)
	shutdown(t, m1)

	// The crash also tore the final append AND interrupted a previous
	// compaction, leaving a half-written .compact-* temp alongside the
	// journal. Replay must survive both: drop the torn line, ignore the
	// stale temp (compaction writes to a fresh temp and renames
	// atomically, so leftovers are inert).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"accepted","id":"job-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	stale := filepath.Join(dir, "jobs.journal.compact-stale1")
	if err := os.WriteFile(stale, []byte(`{"type":"accepted","id":"ghost-1",`), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 1 || len(rep.Jobs) != 3 || rep.Pending != 1 || rep.Results != 2 {
		t.Fatalf("replay = %d jobs, %d pending, %d results, %d dropped; want 3/1/2/1",
			len(rep.Jobs), rep.Pending, rep.Results, rep.Dropped)
	}
	for _, rj := range rep.Jobs {
		if rj.ID == "ghost-1" {
			t.Fatalf("stale compaction temp leaked into the replay")
		}
	}

	// Restore surfaces the replay in the metrics an operator audits
	// after a crash.
	opts := Options{Workers: 1, Journal: j2}
	m2 := stubManager(t, opts, instantRun)
	if err := m2.Restore(rep); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	counters := m2.Metrics().JSON().Counters
	for name, want := range map[string]int64{
		"rrs_journal_compactions_total":   1,
		"rrs_journal_torn_lines_total":    1,
		"rrs_journal_replayed_jobs_total": 3,
		"rrs_jobs_restored_total":         3,
	} {
		if counters[name] != want {
			t.Errorf("%s = %d, want %d", name, counters[name], want)
		}
	}
	// The pending job finishes under its original id on the new manager.
	j3, ok := m2.Get(pending.ID())
	if !ok {
		t.Fatalf("pending job %s not restored", pending.ID())
	}
	if v := waitDone(t, j3); v.State != StateDone {
		t.Fatalf("replayed job %s: %s (%s)", v.ID, v.State, v.Error)
	}
	j2.Close()
}

func TestDrainRequeuesUnfinishedJobs(t *testing.T) {
	// The SIGTERM regression this guards: a drain that runs out of time
	// must hand unfinished accepted jobs to the next process via the
	// journal — the old Shutdown path cancelled them with terminal
	// records, silently losing accepted work.
	path := filepath.Join(t.TempDir(), "jobs.journal")
	gate := make(chan struct{})
	m1, j1, _ := journalManager(t, path, Options{Workers: 1},
		func(ctx context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			}
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	running, err := m1.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m1.Submit(uniqueSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m1.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want deadline exceeded with the gate held", err)
	}
	if _, err := m1.Submit(uniqueSpec(3)); !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain = %v, want refusal", err)
	}
	if got := m1.Metrics().JSON().Counters["rrs_jobs_requeued_total"]; got != 2 {
		t.Fatalf("rrs_jobs_requeued_total = %d, want 2 withheld terminal records", got)
	}
	close(gate)
	j1.Close()

	// Restart: both jobs replay as pending under their original ids and
	// complete. Nothing was lost, nothing runs twice (each id maps to
	// one job with one terminal state).
	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.Pending != 2 || len(rep.Jobs) != 2 {
		t.Fatalf("replay = %d jobs, %d pending; want both drained jobs pending", len(rep.Jobs), rep.Pending)
	}
	m2 := stubManager(t, Options{Workers: 1, Journal: j2}, instantRun)
	if err := m2.Restore(rep); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for _, id := range []string{running.ID(), queued.ID()} {
		j, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across the drain", id)
		}
		if v := waitDone(t, j); v.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
		}
	}
}

func TestDrainCompletesJobsWhenBudgetAllows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	m1, j1, _ := journalManager(t, path, Options{Workers: 1}, instantRun)
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		j, err := m1.Submit(uniqueSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Drain(ctx); err != nil {
		t.Fatalf("Drain with a generous budget: %v", err)
	}
	for _, id := range ids {
		j, ok := m1.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v := j.Snapshot(); v.State != StateDone {
			t.Fatalf("job %s: %s, want done before the drain returned", id, v.State)
		}
	}
	j1.Close()

	// The journal carries them as terminal: a restart re-serves results,
	// re-enqueues nothing.
	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if rep.Pending != 0 || rep.Results != 3 {
		t.Fatalf("replay = %d pending, %d results; want 0/3", rep.Pending, rep.Results)
	}
}
