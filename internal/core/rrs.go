// Package core implements Randomized Row-Swap (RRS), the RRS paper's
// primary contribution: an aggressor-focused Row Hammer mitigation that
// swaps a row with a randomly chosen row in the same bank every T_RRS
// activations, breaking the spatial correlation between aggressor and
// victim rows.
//
// Each bank owns a Hot-Row Tracker (Misra-Gries, package tracker) and a
// Row Indirection Table (package rit). On every memory access the RIT is
// consulted to find the row's current physical location; on every
// activation the HRT counts the logical row, and each time the count
// crosses a multiple of T_RRS the row is swapped with a fresh random row —
// one that is neither tracked by the HRT nor already swapped in the RIT,
// which guarantees the destination has fewer than T_RRS activations in the
// current epoch (Invariant 2 of the paper).
package core

import (
	"fmt"

	"repro/internal/cat"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/prince"
	"repro/internal/rit"
	"repro/internal/tracker"
)

// demandWays is the per-set demand capacity the paper's CAT geometries
// target; 6 extra ways make conflicts astronomically rare (Figure 9).
const (
	demandWays = 14
	extraWays  = 6
)

// Params configures RRS.
type Params struct {
	// SwapThreshold is T_RRS: activations between swaps of a row. The
	// paper derives T_RRS = T_RH/6 = 800 from its security analysis.
	SwapThreshold int64
	// TrackerEntries is the Misra-Gries capacity per bank; 0 derives
	// ACT_max / T_RRS (1700 at full scale).
	TrackerEntries int
	// RITTuples is the RIT capacity per bank in tuples; 0 derives
	// 2 * TrackerEntries (3400 at full scale).
	RITTuples int
	// UseCAMTracker selects the reference CAM tracker instead of the
	// scalable CAT-backed tracker (for the ablation study).
	UseCAMTracker bool
	// SwapOpCycles is the bus-cycle cost of one row-swap operation
	// (four row streams through the swap buffers, ~1.46 us); 0 derives it
	// from the configuration.
	SwapOpCycles int64
	// SwapProbability, when positive, selects the state-less variant the
	// paper's footnote 1 sketches: each activation triggers a swap with
	// this probability and no tracker is used. Unsuitable at low Row
	// Hammer thresholds — the TrackerVsProbabilistic ablation shows the
	// swap-rate blow-up.
	SwapProbability float64
	// DetectionThreshold, when positive, enables the footnote-2 attack
	// detector: a physical location absorbing this many swap events
	// within one epoch flags an attack and triggers a preemptive refresh
	// of the entire DRAM. Benign workloads essentially never trip it
	// (the default 3 has a false-positive rate of ~0.015 per epoch at
	// paper scale); attacks trip it within seconds, years before the
	// k = 6 swaps a bit flip requires.
	DetectionThreshold int
	// Seed drives all randomization (hash keys and swap destinations).
	Seed uint64
}

// DefaultParams derives the paper's parameters from the system
// configuration: T_RRS = T_RH / 6 and structures sized for the bank's
// maximum activation rate.
func DefaultParams(cfg config.Config) Params {
	t := int64(cfg.RowHammerThreshold / 6)
	if t < 1 {
		t = 1
	}
	return Params{SwapThreshold: t, Seed: 0x5252535f52525321} // "RRS_RRS!"
}

// ScaledParams returns the paper's parameters adjusted for a shrunken
// epoch: the swap-operation cost scales with cfg's epoch relative to the
// full 64 ms epoch, so the fraction of an epoch spent on swap transfers —
// what the performance results depend on — matches full scale. Use this
// instead of DefaultParams when cfg came from config.Default().Scaled(n).
func ScaledParams(cfg config.Config) Params {
	p := DefaultParams(cfg)
	fullCfg := config.Default()
	full, _ := DefaultParams(fullCfg).Finalize(fullCfg)
	p.SwapOpCycles = full.SwapOpCycles * cfg.EpochCycles / fullCfg.EpochCycles
	if p.SwapOpCycles < 1 {
		p.SwapOpCycles = 1
	}
	return p
}

// Finalize fills derived fields (tracker entries, RIT tuples, swap cost)
// from the configuration, returning the effective parameters.
func (p Params) Finalize(cfg config.Config) (Params, error) {
	if p.SwapThreshold <= 0 {
		return p, fmt.Errorf("core: SwapThreshold must be positive, got %d", p.SwapThreshold)
	}
	if p.TrackerEntries == 0 {
		p.TrackerEntries = tracker.EntriesFor(cfg.ACTMax(), int(p.SwapThreshold))
	}
	if p.RITTuples == 0 {
		p.RITTuples = 2 * p.TrackerEntries
	}
	if p.SwapOpCycles == 0 {
		// One swap = 4 row streams (X->buf1, Y->buf2, buf1->Y, buf2->X),
		// each an activation plus a burst per line.
		linesPerRow := int64(cfg.RowBytes / cfg.LineBytes)
		p.SwapOpCycles = 4 * (int64(cfg.TRC) + linesPerRow*int64(cfg.TBurst))
	}
	return p, nil
}

// geometry returns a CAT spec with >= entries slots at the paper's
// demand/extra way split: sets is the power of two that brings demand ways
// per set near demandWays.
func geometry(entries int) cat.Spec {
	sets := 1
	for 2*sets*demandWays < entries {
		sets *= 2
	}
	ways := (entries + 2*sets - 1) / (2 * sets)
	return cat.Spec{Sets: sets, Ways: ways + extraWays}
}

// Stats aggregates RRS activity across all banks.
type Stats struct {
	// Swaps counts swap events (a row crossing a multiple of T_RRS and
	// being relocated).
	Swaps int64
	// Reswaps counts swap events whose row was already swapped.
	Reswaps int64
	// SwapOps counts physical row-swap operations, including un-swaps for
	// RIT evictions (each costs ~1.46 us of channel time).
	SwapOps int64
	// EvictionUnswaps counts lazy RIT evictions (un-swap of a stale tuple).
	EvictionUnswaps int64
	// DestRerolls counts swap-destination re-generations because the
	// first random pick was resident in the HRT or RIT (paper: < 1%).
	DestRerolls int64
	// SkippedSwaps counts swaps abandoned because no destination could be
	// found or the RIT was full of locked entries (does not occur at
	// paper sizing).
	SkippedSwaps int64
	// AttacksDetected counts footnote-2 detector firings (each triggers a
	// preemptive refresh of the whole DRAM).
	AttacksDetected int64
	// BlockCycles is total channel-block time spent on swap transfers.
	BlockCycles int64
	// EpochSwaps is the number of swap events in the current epoch.
	EpochSwaps int64
	// SwapsPerEpoch records completed epochs' swap counts.
	SwapsPerEpoch []int64
}

// bankUnit is the per-bank RRS hardware.
type bankUnit struct {
	// hrt is nil in the probabilistic (footnote 1) variant.
	hrt tracker.Tracker
	rit *rit.RIT
	rng *prince.CTR
	// bank is the flat bank index stamped on observability events.
	bank int32
	// swapMarks counts swap events per physical location this epoch for
	// the footnote-2 attack detector (nil when detection is off).
	swapMarks map[uint64]int16
}

// RRS implements memctrl.Mitigation.
type RRS struct {
	cfg    config.Config
	sys    *dram.System
	params Params
	units  []bankUnit
	stats  Stats
	// ritPenalty is the per-access RIT lookup latency in bus cycles.
	ritPenalty int64
	// cycleBuf is scratch for the reswap 4-row cycle, reused so the hot
	// path performs no allocations (CycleRows does not retain the slice).
	cycleBuf [4]int
	// eng is the paranoid-mode invariant engine (nil when disabled); err
	// latches the first structural error the mitigation itself hit.
	eng *invariant.Engine
	err error
	// rec is the observability recorder (nil when disabled); the same
	// one-nil-test discipline as eng keeps the disabled path free.
	rec *obs.Recorder
}

var _ memctrl.Mitigation = (*RRS)(nil)

// New creates an RRS mitigation over sys. Pass DefaultParams(cfg) for the
// paper's configuration.
func New(sys *dram.System, params Params) (*RRS, error) {
	cfg := sys.Config()
	params, err := params.Finalize(cfg)
	if err != nil {
		return nil, err
	}
	nBanks := cfg.Channels * cfg.Ranks * cfg.Banks
	r := &RRS{
		cfg:        cfg,
		sys:        sys,
		params:     params,
		units:      make([]bankUnit, nBanks),
		ritPenalty: int64(float64(cfg.RITLatencyCPUCycles)/config.CPUCyclesPerBusCycle + 0.5),
	}
	trackerSpec := geometry(params.TrackerEntries)
	ritSpec := geometry(2 * params.RITTuples)
	seeds := prince.Seeded(params.Seed)
	for i := range r.units {
		var hrt tracker.Tracker
		switch {
		case params.SwapProbability > 0:
			// Probabilistic variant: no tracker.
		case params.UseCAMTracker:
			cam, err := tracker.NewCAM(params.TrackerEntries, params.SwapThreshold)
			if err != nil {
				return nil, err
			}
			hrt = cam
		default:
			ct, err := tracker.NewCAT(trackerSpec, params.TrackerEntries, params.SwapThreshold, seeds.Next())
			if err != nil {
				return nil, err
			}
			hrt = ct
		}
		rt, err := rit.New(ritSpec, params.RITTuples, seeds.Next())
		if err != nil {
			return nil, err
		}
		r.units[i] = bankUnit{
			hrt:  hrt,
			rit:  rt,
			rng:  prince.NewCTR(seeds.Next(), seeds.Next()),
			bank: int32(i),
		}
		if params.DetectionThreshold > 0 {
			r.units[i].swapMarks = make(map[uint64]int16)
		}
	}
	return r, nil
}

// EnableObs attaches an event recorder: the swap engine records swap /
// re-swap / un-swap / channel-block / epoch events, and the per-bank RIT
// and tracker structures record their own churn through the same
// recorder. Call before the run starts; nil detaches.
func (r *RRS) EnableObs(rec *obs.Recorder) {
	r.rec = rec
	for i := range r.units {
		u := &r.units[i]
		u.rit.SetObs(rec, u.bank)
		if t, ok := u.hrt.(tracker.ObsTarget); ok {
			t.SetObs(rec, u.bank)
		}
	}
}

// Params returns the finalized parameters.
func (r *RRS) Params() Params { return r.params }

// Stats returns a snapshot of RRS statistics.
func (r *RRS) Stats() Stats {
	s := r.stats
	s.SwapsPerEpoch = append([]int64(nil), r.stats.SwapsPerEpoch...)
	return s
}

func (r *RRS) unit(id dram.BankID) *bankUnit {
	return &r.units[(id.Channel*r.cfg.Ranks+id.Rank)*r.cfg.Banks+id.Bank]
}

// Tracker exposes a bank's hot-row tracker (for tests and experiments).
// It is nil in the probabilistic variant.
func (r *RRS) Tracker(id dram.BankID) tracker.Tracker { return r.unit(id).hrt }

// RIT exposes a bank's row-indirection table (for tests and experiments).
func (r *RRS) RIT(id dram.BankID) *rit.RIT { return r.unit(id).rit }

// Remap implements memctrl.Mitigation: the per-access RIT lookup.
func (r *RRS) Remap(id dram.BankID, row int) int {
	return int(r.unit(id).rit.Remap(uint64(row)))
}

// ActivateDelay implements memctrl.Mitigation; RRS never delays
// activations (unlike BlockHammer).
func (r *RRS) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation: the RIT lookup latency
// added to every access (4 CPU cycles in the paper).
func (r *RRS) AccessPenalty() int64 { return r.ritPenalty }

// OnEpoch implements memctrl.Mitigation: reset every tracker and unlock
// RIT entries so stale tuples drain lazily.
func (r *RRS) OnEpoch(now int64) {
	if rec := r.rec; rec != nil {
		// Sample occupancy at the boundary, before trackers reset.
		rec.SetNow(now)
		epoch := int64(len(r.stats.SwapsPerEpoch))
		var ritTotal, hrtTotal int64
		for i := range r.units {
			u := &r.units[i]
			tuples := int64(u.rit.Tuples())
			rec.Observe(obs.HistRITOcc, tuples)
			ritTotal += tuples
			if u.hrt != nil {
				rows := int64(u.hrt.Len())
				rec.Observe(obs.HistHRTOcc, rows)
				hrtTotal += rows
			}
		}
		rec.Sample(obs.EpochSample{
			Epoch:       epoch,
			At:          now,
			Swaps:       r.stats.EpochSwaps,
			RITTuples:   ritTotal,
			HRTRows:     hrtTotal,
			BlockCycles: r.stats.BlockCycles,
		})
	}
	for i := range r.units {
		if r.units[i].hrt != nil {
			r.units[i].hrt.Reset()
		}
		r.units[i].rit.ClearLocks()
		r.units[i].resetDetection()
	}
	r.stats.SwapsPerEpoch = append(r.stats.SwapsPerEpoch, r.stats.EpochSwaps)
	r.stats.EpochSwaps = 0
}

// OnActivate implements memctrl.Mitigation: count the logical row in the
// HRT and, when its estimated count crosses a multiple of T_RRS, swap it
// with a fresh random row in the bank.
func (r *RRS) OnActivate(id dram.BankID, row, physRow int, now int64) memctrl.ActResult {
	u := r.unit(id)
	var trigger bool
	if u.hrt != nil {
		trigger = u.hrt.Observe(uint64(row))
	} else {
		trigger = r.probabilisticTrigger(u)
	}
	if !trigger {
		return memctrl.ActResult{Headroom: r.headroom(u, uint64(row))}
	}
	ops := r.swap(u, id, uint64(row), now)
	if ops == 0 {
		return memctrl.ActResult{Headroom: r.headroom(u, uint64(row))}
	}
	block := ops * r.params.SwapOpCycles
	r.stats.BlockCycles += block
	if rec := r.rec; rec != nil {
		rec.Record(obs.KindChannelBlocked, u.bank, uint64(row), uint64(ops), now, block)
		rec.Observe(obs.HistSwapBlock, block)
	}
	return memctrl.ActResult{ChannelBlock: block, Headroom: r.headroom(u, uint64(row))}
}

// headroom returns how many further consecutive activations of row are
// guaranteed inert: a tracked row with estimated count c cannot cross
// the next multiple of T_RRS for another T_RRS - 1 - (c mod T_RRS)
// activations, and non-triggering activations have no other effect. The
// probabilistic variant draws per activation, so it grants none.
func (r *RRS) headroom(u *bankUnit, row uint64) int64 {
	if u.hrt == nil {
		return 0
	}
	c, ok := u.hrt.Count(row)
	if !ok {
		return 0
	}
	return r.params.SwapThreshold - 1 - c%r.params.SwapThreshold
}

// OnActivateN implements memctrl.Batcher: deliver a deferred burst of n
// same-row activations as one bulk tracker update. The controller only
// defers activations inside granted headroom, so none of them can
// trigger a swap.
func (r *RRS) OnActivateN(id dram.BankID, row, _ int, _ int64, n int64) {
	if n <= 0 {
		return
	}
	u := r.unit(id)
	if u.hrt == nil {
		return
	}
	if fired := u.hrt.ObserveN(uint64(row), n); fired != 0 {
		panic("core: deferred activation burst crossed the swap threshold")
	}
}

// swap relocates logical row and returns the number of row-swap operations
// performed (0 if the swap had to be skipped).
func (r *RRS) swap(u *bankUnit, id dram.BankID, row uint64, now int64) int64 {
	// The physical location that has just absorbed T_RRS activations.
	r.observeDetection(u, u.rit.Remap(row))
	if partner, swapped := u.rit.Lookup(row); swapped {
		return r.reswap(u, id, row, partner, now)
	}
	dest, ok := r.pickDestination(u, row, 0)
	if !ok {
		r.stats.SkippedSwaps++
		return 0
	}
	ev, ok, err := u.rit.Install(row, dest)
	if err != nil {
		r.fail(err)
		r.stats.SkippedSwaps++
		return 0
	}
	var ops int64
	if ev.Happened {
		// The evicted stale tuple's rows are un-swapped (restored home).
		r.sys.SwapRows(id, int(ev.X), int(ev.Y), now)
		r.stats.EvictionUnswaps++
		ops++
		if rec := r.rec; rec != nil {
			rec.Record(obs.KindUnswap, u.bank, ev.X, ev.Y, now, 0)
		}
	}
	if !ok {
		r.stats.SkippedSwaps++
		return ops
	}
	r.sys.SwapRows(id, int(row), int(dest), now)
	ops++
	r.stats.Swaps++
	r.stats.EpochSwaps++
	if rec := r.rec; rec != nil {
		rec.Record(obs.KindSwap, u.bank, row, dest, now, 0)
	}
	return ops
}

// reswap handles a swap request for a row that is already swapped: the
// tuple <row,partner> dissolves and both rows move to fresh random
// destinations (<row,A> and <partner,B>), so the physical location that
// absorbed the previous T_RRS activations receives a cold, random
// occupant. The data movement is a fused 4-row cycle — loc(partner) ->
// loc(A) -> loc(row) -> loc(B) -> loc(partner) — which costs two swap
// operations' worth of streams (the paper's ~2.9 us) and activates each
// involved physical row only twice.
func (r *RRS) reswap(u *bankUnit, id dram.BankID, row, partner uint64, now int64) int64 {
	destA, okA := r.pickDestination(u, row, partner)
	if !okA {
		r.stats.SkippedSwaps++
		return 0
	}
	destB, okB := r.pickDestination(u, partner, row)
	if !okB || destB == destA {
		r.stats.SkippedSwaps++
		return 0
	}

	// Update the RIT first; data moves only once both tuples are in.
	u.rit.Remove(row)
	var ops int64
	ev, ok, err := u.rit.Install(row, destA)
	if err != nil {
		r.fail(err)
		r.restoreTuple(u, id, row, partner, now)
		r.stats.SkippedSwaps++
		return 0
	}
	if ev.Happened {
		r.sys.SwapRows(id, int(ev.X), int(ev.Y), now)
		r.stats.EvictionUnswaps++
		ops++
		if rec := r.rec; rec != nil {
			rec.Record(obs.KindUnswap, u.bank, ev.X, ev.Y, now, 0)
		}
	}
	if !ok {
		r.restoreTuple(u, id, row, partner, now)
		r.stats.SkippedSwaps++
		return ops
	}
	ev, ok, err = u.rit.Install(partner, destB)
	if err != nil {
		r.fail(err)
		u.rit.Remove(row) // undo <row,destA>
		r.restoreTuple(u, id, row, partner, now)
		r.stats.SkippedSwaps++
		return ops
	}
	if ev.Happened {
		r.sys.SwapRows(id, int(ev.X), int(ev.Y), now)
		r.stats.EvictionUnswaps++
		ops++
		if rec := r.rec; rec != nil {
			rec.Record(obs.KindUnswap, u.bank, ev.X, ev.Y, now, 0)
		}
	}
	if !ok {
		u.rit.Remove(row) // undo <row,destA>
		r.restoreTuple(u, id, row, partner, now)
		r.stats.SkippedSwaps++
		return ops
	}

	r.cycleBuf = [4]int{int(partner), int(destA), int(row), int(destB)}
	r.sys.CycleRows(id, r.cycleBuf[:], now)
	ops += 2
	r.stats.Swaps++
	r.stats.Reswaps++
	r.stats.EpochSwaps++
	if rec := r.rec; rec != nil {
		rec.Record(obs.KindReswap, u.bank, row, partner, now, 0)
	}
	return ops
}

// restoreTuple re-registers <row,partner> after a failed re-swap so the
// mapping matches the unchanged physical layout. If even that fails (a CAT
// conflict, ~1e30 installs at paper sizing), the rows are physically
// swapped home instead so data stays consistent.
func (r *RRS) restoreTuple(u *bankUnit, id dram.BankID, row, partner uint64, now int64) {
	_, ok, err := u.rit.Install(row, partner)
	if err != nil {
		r.fail(err)
	}
	if !ok || err != nil {
		r.sys.SwapRows(id, int(row), int(partner), now)
	}
}

// pickDestination draws a uniform random row of the bank that is not the
// source, not tracked by the HRT, and not already swapped in the RIT —
// guaranteeing it has fewer than T_RRS activations this epoch. More than
// one re-roll happens with probability < 1% at paper scale.
func (r *RRS) pickDestination(u *bankUnit, row, alsoExclude uint64) (uint64, bool) {
	n := uint64(r.cfg.RowsPerBank)
	for try := 0; try < 64; try++ {
		d := u.rng.Uint64n(n)
		if d == row || d == alsoExclude || (u.hrt != nil && u.hrt.Contains(d)) || u.rit.Contains(d) {
			if try == 0 {
				r.stats.DestRerolls++
			}
			continue
		}
		return d, true
	}
	return 0, false
}
