// Package memctrl implements the memory controller: address decode,
// FCFS scheduling with bank-level parallelism, refresh windows, and the
// mitigation hooks where Row Hammer defenses plug in (the RRS paper puts
// the HRT and RIT inside the memory controller).
//
// Requests must be submitted in non-decreasing arrival-time order; the
// controller reserves bank, bus and refresh-free spans greedily in that
// order, which reproduces USIMM's FCFS arbitration (the oldest request
// gets the earliest feasible slot; younger requests to other banks may
// still proceed in parallel).
package memctrl

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/obs"
)

// ActResult tells the controller what a mitigation did in response to an
// activation.
type ActResult struct {
	// ChannelBlock is how many bus cycles the whole channel is busy with
	// mitigation data transfers (RRS row-swaps occupy the shared bus).
	ChannelBlock int64
	// BankBlock is how many bus cycles this bank alone is busy
	// (victim-refresh activations in victim-focused mitigation).
	BankBlock int64
	// Headroom is a promise the mitigation makes to the controller: the
	// next Headroom activations of this same (bank, logical row, physical
	// row) are guaranteed to be inert — no trigger, no blocking, no state
	// change other than the activation count — provided they are reported
	// in order, before any other activation in the same bank, via the
	// Batcher extension. The controller uses it to consult the mitigation
	// once per same-row activation burst instead of once per activation.
	// Mitigations that cannot make the promise leave it 0. It is only
	// honored for mitigations implementing Batcher.
	Headroom int64
}

// Mitigation is the hook interface for Row Hammer defenses. The
// no-mitigation baseline is the zero-behaviour None type.
type Mitigation interface {
	// Remap translates a logical row to its current physical row in the
	// bank (the RIT lookup done on every access). Defenses without
	// indirection return the row unchanged.
	Remap(bank dram.BankID, row int) int
	// ActivateDelay returns how many bus cycles the pending activation of
	// the logical row must be delayed (BlockHammer throttling); 0 for
	// defenses that never delay.
	ActivateDelay(bank dram.BankID, row int, now int64) int64
	// OnActivate runs after an activation of physRow caused by an access
	// to logical row, and returns any blocking the mitigation performed.
	OnActivate(bank dram.BankID, row, physRow int, now int64) ActResult
	// AccessPenalty is added to the latency of every memory access (the
	// RIT lookup latency, 4 CPU cycles = 2 bus cycles in the paper).
	AccessPenalty() int64
	// OnEpoch is called once per refresh epoch boundary.
	OnEpoch(now int64)
}

// Batcher is an optional Mitigation extension for activation-burst
// batching. When the mitigation implements it, the controller withholds
// up to ActResult.Headroom consecutive same-row activation notifications
// per bank and later delivers them in one OnActivateN call — always
// before any other activation in that bank is reported and before any
// epoch boundary, so the mitigation observes the exact same activation
// sequence, just run-length encoded.
type Batcher interface {
	// OnActivateN reports n deferred activations of (bank, row, physRow),
	// all within previously granted headroom (so none of them triggers).
	OnActivateN(bank dram.BankID, row, physRow int, now int64, n int64)
}

// noneHeadroom is the unbounded headroom the None baseline grants (it
// has no per-activation behavior at all).
const noneHeadroom = int64(1) << 62

// None is the baseline without any Row Hammer mitigation.
type None struct{}

// Remap implements Mitigation.
func (None) Remap(_ dram.BankID, row int) int { return row }

// ActivateDelay implements Mitigation.
func (None) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// OnActivate implements Mitigation.
func (None) OnActivate(dram.BankID, int, int, int64) ActResult {
	return ActResult{Headroom: noneHeadroom}
}

// OnActivateN implements Batcher.
func (None) OnActivateN(dram.BankID, int, int, int64, int64) {}

// AccessPenalty implements Mitigation.
func (None) AccessPenalty() int64 { return 0 }

// OnEpoch implements Mitigation.
func (None) OnEpoch(int64) {}

// Stats aggregates controller activity.
type Stats struct {
	Reads        int64
	Writes       int64
	RowHits      int64
	RowMisses    int64 // row buffer closed
	RowConflicts int64 // different row open
	TotalLatency int64 // sum of (completion - arrival) over accesses
	ActDelayed   int64 // cycles of BlockHammer-style activation delay
	Epochs       int64
}

// pendingActs is one bank's deferred activation-burst state.
type pendingActs struct {
	id       dram.BankID
	row      int
	physRow  int
	n        int64 // deferred activations not yet delivered
	headroom int64 // remaining activations covered by the grant
	lastAt   int64 // time of the most recent deferred activation
}

// Controller is the memory controller for one DRAM system.
type Controller struct {
	sys *dram.System
	cfg config.Config
	mit Mitigation

	// batcher is non-nil when mit supports activation-burst batching;
	// pend then holds one deferred-burst slot per bank.
	batcher Batcher
	pend    []pendingActs

	epochSlot int64
	stats     Stats
	epochHook func(now int64)

	// rec is the observability recorder (nil when disabled). The
	// controller stamps its clock as simulated time advances, records
	// epoch-boundary events, and feeds the stall/access histograms; every
	// hook is behind one nil test so the disabled path stays free.
	rec *obs.Recorder
}

// New creates a controller over sys using mitigation mit (use None for the
// baseline).
func New(sys *dram.System, mit Mitigation) *Controller {
	c := &Controller{sys: sys, cfg: sys.Config(), mit: mit}
	if b, ok := mit.(Batcher); ok {
		c.batcher = b
		c.pend = make([]pendingActs, c.cfg.Channels*c.cfg.Ranks*c.cfg.Banks)
	}
	return c
}

// SetRecorder attaches an observability recorder; nil detaches. The
// controller owns the recorder's clock: it is set to each activation
// time before mitigation hooks run and to each boundary before OnEpoch,
// so components without a time argument can stamp events via RecordNow.
func (c *Controller) SetRecorder(rec *obs.Recorder) { c.rec = rec }

// Stats returns a snapshot of controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// System returns the underlying DRAM system.
func (c *Controller) System() *dram.System { return c.sys }

// Mitigation returns the installed mitigation.
func (c *Controller) Mitigation() Mitigation { return c.mit }

// AdvanceTo fires epoch boundaries up to time now. Access calls this
// automatically; simulations call it at the end of a run to close the
// final epoch.
func (c *Controller) AdvanceTo(now int64) {
	slot := now / c.cfg.EpochCycles
	if c.epochSlot >= slot {
		return
	}
	// Deferred activation bursts belong to the closing epoch; deliver
	// them before the mitigation resets its trackers.
	c.Flush()
	for c.epochSlot < slot {
		c.epochSlot++
		boundary := c.epochSlot * c.cfg.EpochCycles
		if c.epochHook != nil {
			c.epochHook(boundary)
		}
		if rec := c.rec; rec != nil {
			rec.SetNow(boundary)
			rec.Record(obs.KindEpoch, -1, uint64(c.stats.Epochs), 0, boundary, 0)
		}
		c.mit.OnEpoch(boundary)
		c.sys.ResetEpoch()
		c.stats.Epochs++
	}
}

// Flush delivers all deferred activation notifications to the
// mitigation. The controller flushes automatically whenever ordering
// requires it (a different activation in the same bank, an epoch
// boundary); call it manually before inspecting mitigation-internal
// state (e.g., tracker counts) mid-run.
func (c *Controller) Flush() {
	for i := range c.pend {
		c.flushPending(&c.pend[i])
	}
}

func (c *Controller) flushPending(p *pendingActs) {
	if p.n > 0 {
		if rec := c.rec; rec != nil {
			rec.SetNow(p.lastAt)
		}
		c.batcher.OnActivateN(p.id, p.row, p.physRow, p.lastAt, p.n)
		p.n = 0
	}
	p.headroom = 0
}

// SetEpochHook installs a function invoked at every epoch boundary before
// the mitigation's OnEpoch and the DRAM counter reset — the point where
// per-epoch statistics (e.g., rows with 800+ activations) are sampled.
func (c *Controller) SetEpochHook(fn func(now int64)) { c.epochHook = fn }

// Access performs a read or write of the cache line at the given arrival
// time (bus cycles) and returns its completion time. Arrival times must be
// non-decreasing across calls.
func (c *Controller) Access(line uint64, write bool, arrival int64) int64 {
	c.AdvanceTo(arrival)

	addr := c.sys.Decode(line)
	physRow := c.mit.Remap(addr.BankID, addr.Row)
	b := c.sys.BankState(addr.BankID)

	start := arrival
	if blocked := c.sys.ChannelBlockedUntil(addr.Channel); blocked > start {
		start = blocked
	}
	start = c.sys.SkipRefresh(start)
	if rec := c.rec; rec != nil && start > arrival {
		rec.Observe(obs.HistStall, start-arrival)
	}
	// Channel blocking and refresh windows can push the first DRAM
	// command past the next epoch boundary; deliver the boundary before
	// the command so the mitigation never observes an activation
	// timestamped inside an epoch whose OnEpoch has not fired.
	c.AdvanceTo(start)

	// A refresh window that has elapsed since the bank's last command
	// closes the row buffer.
	slot := start / int64(c.cfg.TREFI)
	if slot != b.LastRefSlot {
		b.OpenRow = dram.NoRow
		b.LastRefSlot = slot
	}

	var dataReady int64
	switch {
	case b.OpenRow == physRow:
		// Row hit: a column command, not gated by tRC.
		c.stats.RowHits++
		dataReady = start + int64(c.cfg.TCAS)
	case b.OpenRow == dram.NoRow:
		c.stats.RowMisses++
		dataReady = c.activate(addr.BankID, b, addr.Row, physRow, start)
	default:
		c.stats.RowConflicts++
		dataReady = c.activate(addr.BankID, b, addr.Row, physRow, start+int64(c.cfg.TRP))
	}
	if c.cfg.ClosedPage {
		// Auto-precharge after the column access: the next access to the
		// bank always activates, but never pays the conflict precharge.
		b.OpenRow = dram.NoRow
	}

	busStart := c.sys.ReserveBus(addr.Channel, dataReady)
	completion := busStart + int64(c.cfg.TBurst) + c.mit.AccessPenalty()

	if write {
		c.stats.Writes++
		b.StatWrites++
		// Writes update the logical row's content tag so swap-correctness
		// tests can observe data flowing through the indirection.
	} else {
		c.stats.Reads++
		b.StatReads++
	}
	c.stats.TotalLatency += completion - arrival
	if rec := c.rec; rec != nil {
		rec.Observe(obs.HistAccess, completion-arrival)
	}
	return completion
}

// activate performs the ACT for (bank, physRow) no earlier than start and
// returns when column data can be ready. It runs the mitigation hooks:
// activation delay first (throttling), then post-activation actions.
func (c *Controller) activate(id dram.BankID, b *dram.Bank, row, physRow int, start int64) int64 {
	// tRC gates activate-to-activate spacing in the bank.
	if b.ReadyAt > start {
		start = b.ReadyAt
	}
	actAt := start
	if d := c.mit.ActivateDelay(id, row, start); d > 0 {
		c.stats.ActDelayed += d
		actAt = c.sys.SkipRefresh(start + d)
	}
	// tRC gating and mitigation throttling can push the activation past
	// the next epoch boundary in turn; fire any boundary the delay
	// crossed so DRAM counters reset and trackers clear before the
	// activation is recorded against the new epoch.
	c.AdvanceTo(actAt)
	if rec := c.rec; rec != nil {
		// The clock feeds RecordNow in the mitigation's RIT/tracker hooks.
		rec.SetNow(actAt)
	}
	c.sys.Activate(id, physRow, actAt)
	// A throttled (deprioritized) activation waits without holding the
	// bank: BlockHammer's scheduler services other rows during the delay,
	// so the bank becomes available tRC after the undelayed slot. The
	// throttled request itself completes from its delayed activation.
	b.ReadyAt = start + int64(c.cfg.TRC)

	if c.batcher != nil {
		p := &c.pend[(id.Channel*c.cfg.Ranks+id.Rank)*c.cfg.Banks+id.Bank]
		if p.headroom > 0 && p.row == row && p.physRow == physRow {
			// Within granted headroom: the notification is inert, so
			// just extend the pending burst.
			p.n++
			p.headroom--
			p.lastAt = actAt
			return actAt + int64(c.cfg.TRCD) + int64(c.cfg.TCAS)
		}
		// A different row (or exhausted grant): deliver the pending burst
		// first so the mitigation sees activations in order.
		c.flushPending(p)
		res := c.mit.OnActivate(id, row, physRow, actAt)
		*p = pendingActs{id: id, row: row, physRow: physRow, headroom: res.Headroom, lastAt: actAt}
		if res.BankBlock > 0 {
			b.ReadyAt += res.BankBlock
		}
		if res.ChannelBlock > 0 {
			c.sys.BlockChannel(id.Channel, actAt+res.ChannelBlock)
		}
		return actAt + int64(c.cfg.TRCD) + int64(c.cfg.TCAS)
	}

	res := c.mit.OnActivate(id, row, physRow, actAt)
	if res.BankBlock > 0 {
		b.ReadyAt += res.BankBlock
	}
	if res.ChannelBlock > 0 {
		c.sys.BlockChannel(id.Channel, actAt+res.ChannelBlock)
	}
	return actAt + int64(c.cfg.TRCD) + int64(c.cfg.TCAS)
}

// WriteLine stores a content tag into the *logical* row containing the
// line, going through the mitigation's remap — the way tests verify that
// swapped data stays reachable.
func (c *Controller) WriteLine(line uint64, tag uint64) {
	addr := c.sys.Decode(line)
	phys := c.mit.Remap(addr.BankID, addr.Row)
	c.sys.SetRowContent(addr.BankID, phys, tag)
}

// ReadLine loads the content tag of the logical row containing the line.
func (c *Controller) ReadLine(line uint64) uint64 {
	addr := c.sys.Decode(line)
	phys := c.mit.Remap(addr.BankID, addr.Row)
	return c.sys.RowContent(addr.BankID, phys)
}
