// Command rrs-serve exposes the simulation engine as an HTTP job
// service: submitted specs are queued FIFO, executed by a worker pool,
// answered from a content-addressed result cache on re-submission, and
// observable through per-job status and a Prometheus/JSON metrics
// endpoint.
//
// Usage:
//
//	rrs-serve -addr :8080 -workers 8 -queue-depth 128 -cache-entries 512 -journal jobs.journal
//
// With -journal, accepted specs and terminal states are written to an
// append-only JSONL write-ahead log. On startup the journal is replayed:
// finished results repopulate the cache, and jobs that never reached a
// terminal state are re-enqueued under their original ids — a kill -9
// mid-sweep loses no accepted work. Transiently failed runs are retried
// automatically up to -job-retries times, and a panic inside a
// simulation marks only that job failed (rrs_worker_panics_total); the
// process keeps serving.
//
// With -debug-addr, a second listener serves net/http/pprof profiles
// and expvar counters (for operators only — never expose it publicly):
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://localhost:6060/debug/pprof/heap
//	curl -s localhost:6060/debug/vars
//
// Walkthrough:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workloads":["bzip2"],"mitigation":"rrs","scale":16,"epochs":2}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM starts a graceful shutdown: intake stops, queued jobs
// are cancelled, running jobs drain within -drain-timeout.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

// main delegates to run so every exit path unwinds through the defers —
// in particular the journal close/fsync. The previous shape called
// os.Exit (via fatalf) directly from the middle of main, so an early
// ListenAndServe failure skipped `defer journal.Close()` and left the
// WAL without its final fsync.
func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "", "listen address for the pprof/expvar debug server (empty disables; keep it private)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 64, "max queued jobs before 429s")
		cacheEntries = flag.Int("cache-entries", 256, "result cache capacity (-1 disables)")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job run limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for running jobs")
		jobRetries   = flag.Int("job-retries", 2, "automatic retries for transiently failed runs (-1 disables)")
		journalPath  = flag.String("journal", "", "durable job journal path (JSONL WAL; empty disables durability)")
		paranoid     = flag.Bool("paranoid", false, "force every job to run with the self-verification layer (stats unchanged; results gain an invariant summary)")
		simWorkers   = flag.Int("sim-workers", 0, "default per-simulation goroutine count for specs that leave workers unset (0 = sequential engine; positive enables the bank-sharded parallel mode)")
	)
	flag.Parse()

	var journal *service.Journal
	var replayed *service.Replayed
	if *journalPath != "" {
		var err error
		journal, replayed, err = service.OpenJournal(*journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
	}

	mgr := service.NewManager(service.Options{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		CacheEntries:      *cacheEntries,
		DefaultTimeout:    *jobTimeout,
		JobRetries:        *jobRetries,
		Journal:           journal,
		ForceParanoid:     *paranoid,
		DefaultSimWorkers: *simWorkers,
	})
	if replayed != nil {
		if err := mgr.Restore(replayed); err != nil {
			fmt.Fprintf(os.Stderr, "rrs-serve: journal replay: %v\n", err)
		}
		fmt.Fprintf(os.Stderr,
			"rrs-serve: journal %s replayed: %d jobs (%d re-enqueued, %d cached results, %d corrupt lines dropped)\n",
			*journalPath, len(replayed.Jobs), replayed.Pending, replayed.Results, replayed.Dropped)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.Handler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rrs-serve: listening on %s\n", *addr)

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "rrs-serve: debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "rrs-serve: pprof/expvar on %s/debug\n", *debugAddr)
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rrs-serve: shutting down, draining running jobs...")
	case err := <-errc:
		return err
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-serve: http shutdown: %v\n", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "rrs-serve: debug shutdown: %v\n", err)
		}
	}
	if err := mgr.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-serve: job drain incomplete: %v\n", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// debugMux serves the standard Go debug surfaces on a dedicated mux —
// registered explicitly rather than via the net/http/pprof and expvar
// side effects on DefaultServeMux, so the job API listener never
// exposes them.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
