// Package fleet turns a set of rrs-serve processes into one logical
// job service: any node accepts any submission, ownership is decided by
// rendezvous hashing over the spec content hash and the live peer set,
// non-owners forward to the owner with retry/backoff, and a health-gated
// failure detector shrinks the ring so work re-routes when a node dies.
// Idle nodes steal queued work from backed-up peers, and every node
// consults the whole fleet's result caches before re-running a spec.
//
// The design leans on two properties the single-node service already
// has: submissions are idempotent (content-hash coalescing), and the
// engine is deterministic (a re-run after a lost node is byte-identical).
// Together they make the fleet's failover story simple — when a job's
// home node dies mid-poll, the client's existing "404 ⇒ resubmit the
// spec" recovery re-routes the work to the next owner, and exactly-once
// *delivery* holds without any consensus protocol.
package fleet

import "sort"

// Peer identifies one fleet member: a short stable ID — it prefixes the
// node's job ids, which is how any node routes a poll to a job's home —
// and the base URL peers reach it at.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// score is the rendezvous (highest-random-weight) weight of placing a
// spec hash on a peer: FNV-1a over the peer id, a separator, and the
// hash. Every node computes identical scores from identical inputs, so
// the fleet agrees on ownership with no coordination, and removing a
// peer only moves the keys that peer owned.
func score(peerID, hash string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(peerID); i++ {
		h ^= uint64(peerID[i])
		h *= prime
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= prime
	for i := 0; i < len(hash); i++ {
		h ^= uint64(hash[i])
		h *= prime
	}
	return h
}

// Owner returns the rendezvous owner of hash among peers — rank[0].
// Exposed so tooling and tests can predict placement with the same
// arithmetic the fleet routes by. ok is false for an empty peer set.
func Owner(hash string, peers []Peer) (Peer, bool) {
	if len(peers) == 0 {
		return Peer{}, false
	}
	return rank(hash, peers)[0], true
}

// rank orders peers for a spec content hash by descending rendezvous
// score: rank(...)[0] is the owner, and the rest is the failover order
// a forwarder walks when the owner is unreachable. Ties (only possible
// with duplicate ids) break by id so the order is total.
func rank(hash string, peers []Peer) []Peer {
	out := append([]Peer(nil), peers...)
	sort.Slice(out, func(a, b int) bool {
		sa, sb := score(out[a].ID, hash), score(out[b].ID, hash)
		if sa != sb {
			return sa > sb
		}
		return out[a].ID < out[b].ID
	})
	return out
}
