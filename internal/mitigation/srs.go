package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/prince"
	"repro/internal/tracker"
)

// SRS models Scalable/Secure Row-Swap (arXiv 2212.12613), the successor
// that fixes RRS's two published weaknesses:
//
//   - Juggling attack: RRS keys its Misra-Gries tracker on *logical* row
//     ids, so every swap installs a fresh, untracked occupant into the hot
//     physical slot and the slot's neighbours accumulate disturbance
//     without bound. SRS keys the tracker on the *physical slot*, so the
//     count survives occupant churn, and every trigger both relocates the
//     occupant and refreshes the slot's immediate neighbours — bounding a
//     victim's disturbance at roughly two swap thresholds regardless of
//     how the attacker chases occupants.
//   - SRAM scaling: RRS keeps a tracker plus two RIT tables; SRS unifies
//     swap state into one structure (modeled here as a per-bank
//     permutation pair with a slot-keyed tracker), cutting the per-bank
//     SRAM cost by ~3x (see the shootout's storage model and DESIGN.md
//     §11).
//
// Simplifications versus the paper, documented in DESIGN.md §11: the
// unified table is modeled as an unbounded logical<->physical permutation
// (no eviction/unswap machinery — the analytic SRAM model charges the
// paper's bounded unified table), and swaps move whole rows through the
// same ~1.46 us channel-blocking transfer RRS uses.
type SRS struct {
	verifier
	observer
	sys    *dram.System
	cfg    config.Config
	params SRSParams
	units  []srsUnit
	stat   SRSStats
	// ritPenalty is the per-access indirection lookup cost, identical to
	// RRS's RIT latency.
	ritPenalty int64
}

// srsUnit is one bank's SRS hardware.
type srsUnit struct {
	// hrt counts activations per *physical slot* (the defining difference
	// from RRS's logical-row tracker).
	hrt tracker.Tracker
	// perm maps logical row -> physical row; inv is its inverse.
	perm []int32
	inv  []int32
	rng  *prince.CTR
	bank int32
}

// SRSStats counts SRS activity.
type SRSStats struct {
	// Swaps is the number of occupant relocations.
	Swaps int64
	// Refreshes is the number of neighbour refresh activations.
	Refreshes int64
	// DestRerolls counts swap-destination re-generations.
	DestRerolls int64
	// SkippedSwaps counts triggers that found no destination.
	SkippedSwaps int64
	// BlockCycles is total channel-block time spent on swap transfers.
	BlockCycles int64
}

// SRSParams configures SRS.
type SRSParams struct {
	// SwapThreshold is activations of one physical slot between
	// mitigations (the paper keeps RRS's T_RH/6 derivation).
	SwapThreshold int64
	// TrackerEntries is the slot tracker's Misra-Gries capacity per bank;
	// 0 derives ACT_max / SwapThreshold.
	TrackerEntries int
	// SwapOpCycles is the bus-cycle cost of one row-swap transfer; 0
	// derives the four-row-stream cost from the configuration.
	SwapOpCycles int64
	// Seed drives destination selection.
	Seed uint64
}

// DefaultSRSParams derives the paper's parameters from the configuration.
func DefaultSRSParams(cfg config.Config) SRSParams {
	t := int64(cfg.RowHammerThreshold / 6)
	if t < 1 {
		t = 1
	}
	return SRSParams{SwapThreshold: t, Seed: 0x5253_5253}
}

// ScaledSRSParams adjusts the swap-transfer cost for a shrunken epoch the
// same way core.ScaledParams does for RRS, so the fraction of an epoch
// spent on swaps matches full scale.
func ScaledSRSParams(cfg config.Config) SRSParams {
	p := DefaultSRSParams(cfg)
	full := config.Default()
	p.SwapOpCycles = swapOpCycles(full) * cfg.EpochCycles / full.EpochCycles
	if p.SwapOpCycles < 1 {
		p.SwapOpCycles = 1
	}
	return p
}

// swapOpCycles is the four-row-stream swap transfer cost (the same
// derivation core.Params.Finalize uses).
func swapOpCycles(cfg config.Config) int64 {
	linesPerRow := int64(cfg.RowBytes / cfg.LineBytes)
	return 4 * (int64(cfg.TRC) + linesPerRow*int64(cfg.TBurst))
}

// NewSRS creates the mitigation over sys.
func NewSRS(sys *dram.System, p SRSParams) *SRS {
	cfg := sys.Config()
	if p.SwapThreshold <= 0 {
		panic("mitigation: SRS SwapThreshold must be positive")
	}
	if p.TrackerEntries == 0 {
		p.TrackerEntries = tracker.EntriesFor(cfg.ACTMax(), int(p.SwapThreshold))
	}
	if p.SwapOpCycles == 0 {
		p.SwapOpCycles = swapOpCycles(cfg)
	}
	nBanks := cfg.Channels * cfg.Ranks * cfg.Banks
	s := &SRS{
		sys:        sys,
		cfg:        cfg,
		params:     p,
		units:      make([]srsUnit, nBanks),
		ritPenalty: int64(float64(cfg.RITLatencyCPUCycles)/config.CPUCyclesPerBusCycle + 0.5),
	}
	seeds := prince.Seeded(p.Seed)
	for i := range s.units {
		cam, err := tracker.NewCAM(p.TrackerEntries, p.SwapThreshold)
		if err != nil {
			// EntriesFor guarantees entries >= 1; threshold checked above.
			panic(err)
		}
		u := &s.units[i]
		u.hrt = cam
		u.rng = prince.NewCTR(seeds.Next(), seeds.Next())
		u.bank = int32(i)
		u.perm = make([]int32, cfg.RowsPerBank)
		u.inv = make([]int32, cfg.RowsPerBank)
		for r := range u.perm {
			u.perm[r] = int32(r)
			u.inv[r] = int32(r)
		}
	}
	return s
}

// Params returns the finalized parameters.
func (s *SRS) Params() SRSParams { return s.params }

// Stats returns a snapshot of SRS activity.
func (s *SRS) Stats() SRSStats { return s.stat }

func (s *SRS) unit(id dram.BankID) *srsUnit {
	return &s.units[bankIndex(s.cfg, id)]
}

// Remap implements memctrl.Mitigation: the unified-table lookup.
func (s *SRS) Remap(id dram.BankID, row int) int {
	return int(s.unit(id).perm[row])
}

// Occupant returns the logical row currently resident in the physical
// slot — the attack package's white-box oracle (attack.OccupantFinder).
func (s *SRS) Occupant(id dram.BankID, physRow int) int {
	return int(s.unit(id).inv[physRow])
}

// ActivateDelay implements memctrl.Mitigation; SRS never throttles.
func (s *SRS) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation: the indirection lookup.
func (s *SRS) AccessPenalty() int64 { return s.ritPenalty }

// OnEpoch implements memctrl.Mitigation: slot counters reset with the
// refresh window; the permutation persists (data stays where it is).
func (s *SRS) OnEpoch(int64) {
	for i := range s.units {
		s.units[i].hrt.Reset()
	}
}

// OnActivate implements memctrl.Mitigation: count the *physical slot*
// and, on each threshold crossing, relocate the slot's occupant to a
// random cold slot and refresh the slot's neighbours.
func (s *SRS) OnActivate(id dram.BankID, row, physRow int, now int64) memctrl.ActResult {
	u := s.unit(id)
	if !u.hrt.Observe(uint64(physRow)) {
		return memctrl.ActResult{Headroom: s.headroom(u, uint64(physRow))}
	}
	// The slot has absorbed SwapThreshold activations: refresh its
	// neighbours (they carry the accumulated disturbance) and move the
	// occupant away so continued pressure lands on a cold neighbourhood.
	n := refreshPair(s.sys, id, physRow, now)
	s.stat.Refreshes += int64(n)
	s.recordRefresh(u.bank, physRow, n, now)
	res := memctrl.ActResult{BankBlock: victimRefreshCost(s.cfg, n)}

	dest, ok := s.pickDestination(u, physRow)
	if !ok {
		s.stat.SkippedSwaps++
		res.Headroom = s.headroom(u, uint64(physRow))
		return res
	}
	destPhys := int(u.perm[dest])
	s.sys.SwapRows(id, physRow, destPhys, now)
	occ := u.inv[physRow]
	u.perm[occ], u.perm[dest] = int32(destPhys), int32(physRow)
	u.inv[physRow], u.inv[destPhys] = int32(dest), occ
	s.stat.Swaps++
	s.stat.BlockCycles += s.params.SwapOpCycles
	if rec := s.rec; rec != nil {
		rec.Record(obs.KindSwap, u.bank, uint64(occ), uint64(destPhys), now, 0)
		rec.Record(obs.KindChannelBlocked, u.bank, uint64(physRow), 1, now, s.params.SwapOpCycles)
		rec.Observe(obs.HistSwapBlock, s.params.SwapOpCycles)
	}
	res.ChannelBlock = s.params.SwapOpCycles
	res.Headroom = s.headroom(u, uint64(physRow))
	return res
}

// headroom mirrors RRS's grant: a slot with estimated count c cannot
// cross the next multiple of SwapThreshold for another T-1-(c mod T)
// activations, and non-triggering activations are inert.
func (s *SRS) headroom(u *srsUnit, slot uint64) int64 {
	c, ok := u.hrt.Count(slot)
	if !ok {
		return 0
	}
	return s.params.SwapThreshold - 1 - c%s.params.SwapThreshold
}

// OnActivateN implements memctrl.Batcher: a deferred same-row burst hits
// the same physical slot, so one bulk tracker update replays it.
func (s *SRS) OnActivateN(id dram.BankID, _, physRow int, _ int64, n int64) {
	if n <= 0 {
		return
	}
	u := s.unit(id)
	if fired := u.hrt.ObserveN(uint64(physRow), n); fired != 0 {
		panic("mitigation: SRS deferred burst crossed the swap threshold")
	}
}

// pickDestination draws a random logical row whose physical slot is cold:
// not the triggering slot and not tracked as hot. More than one re-roll
// is rare at paper sizing (the tracker holds ACT_max/T of the bank's
// rows).
func (s *SRS) pickDestination(u *srsUnit, physRow int) (int, bool) {
	n := uint64(s.cfg.RowsPerBank)
	for try := 0; try < 64; try++ {
		d := int(u.rng.Uint64n(n))
		dp := uint64(u.perm[d])
		if int(dp) == physRow || u.hrt.Contains(dp) {
			if try == 0 {
				s.stat.DestRerolls++
			}
			continue
		}
		return d, true
	}
	return 0, false
}

// EnableParanoid attaches the runtime self-verification layer: the shared
// DRAM checks plus SRS's own structural catalog — the permutation pair
// must remain mutually inverse, and the slot trackers must pass their
// Misra-Gries structure checks.
func (s *SRS) EnableParanoid(eng *invariant.Engine) {
	s.attach(eng, s.sys)
	eng.Register("srs/permutation", s.CheckInvariants)
	eng.Register("srs/tracker", func() error {
		for i := range s.units {
			if sc, ok := s.units[i].hrt.(tracker.SelfChecker); ok {
				if err := sc.CheckInvariants(); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// CheckInvariants verifies that every bank's perm/inv pair is a mutually
// inverse permutation — the unified table's structural invariant.
func (s *SRS) CheckInvariants() error {
	for i := range s.units {
		u := &s.units[i]
		for r, p := range u.perm {
			if p < 0 || int(p) >= len(u.inv) {
				return invariant.Violatedf("srs/permutation",
					"bank %d: perm[%d] = %d out of range", i, r, p)
			}
			if int(u.inv[p]) != r {
				return invariant.Violatedf("srs/permutation",
					"bank %d: inv[perm[%d]=%d] = %d, want %d", i, r, p, u.inv[p], r)
			}
		}
	}
	return nil
}
