package core

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// --- Probabilistic variant (footnote 1) ---

func newProbRRS(t *testing.T, cfg config.Config, p float64) (*RRS, *dram.System) {
	t.Helper()
	sys := dram.MustNew(cfg)
	params := DefaultParams(cfg)
	params.SwapProbability = p
	r, err := New(sys, params)
	if err != nil {
		t.Fatal(err)
	}
	return r, sys
}

func TestProbabilisticHasNoTracker(t *testing.T) {
	r, _ := newProbRRS(t, testConfig(), 0.01)
	if r.Tracker(dram.BankID{}) != nil {
		t.Fatal("probabilistic variant allocated a tracker")
	}
}

func TestProbabilisticSwapsAtExpectedRate(t *testing.T) {
	cfg := testConfig()
	r, _ := newProbRRS(t, cfg, 0.02)
	id := dram.BankID{}
	rng := prince.Seeded(3)
	const acts = 10000
	for i := 0; i < acts; i++ {
		row := rng.Intn(cfg.RowsPerBank)
		r.OnActivate(id, row, r.Remap(id, row), int64(i))
		if i%800 == 799 {
			r.OnEpoch(int64(i))
		}
	}
	swaps := r.Stats().Swaps
	// Expected ~200 swaps (2% of 10000); allow wide statistical margin.
	if swaps < 100 || swaps > 320 {
		t.Fatalf("swaps = %d, want ~200 at p=0.02", swaps)
	}
}

func TestProbabilisticDataIntegrity(t *testing.T) {
	cfg := testConfig()
	cfg.RowsPerBank = 1024
	r, sys := newProbRRS(t, cfg, 0.05)
	id := dram.BankID{}
	for row := 0; row < cfg.RowsPerBank; row++ {
		sys.SetRowContent(id, r.Remap(id, row), uint64(0x9000+row))
	}
	rng := prince.Seeded(8)
	for i := 0; i < 5000; i++ {
		row := rng.Intn(cfg.RowsPerBank)
		r.OnActivate(id, row, r.Remap(id, row), int64(i))
		if i%800 == 799 {
			r.OnEpoch(int64(i))
		}
	}
	if r.Stats().Swaps < 50 {
		t.Fatalf("too few swaps (%d) to exercise the variant", r.Stats().Swaps)
	}
	for row := 0; row < cfg.RowsPerBank; row++ {
		if got := sys.RowContent(id, r.Remap(id, row)); got != uint64(0x9000+row) {
			t.Fatalf("row %d corrupted: %#x", row, got)
		}
	}
}

// TestProbabilisticSwapRateBlowUp is the footnote-1 argument: to match the
// tracker's security at low thresholds, the state-less variant needs a
// swap probability around 12/T_RH per activation, and its swap count then
// scales with *total* activations instead of with the number of hot rows.
func TestProbabilisticSwapRateBlowUp(t *testing.T) {
	cfg := testConfig() // T_RH=48 -> T_RRS=8
	id := dram.BankID{}
	rng := prince.Seeded(4)
	// A benign-ish pattern: activations spread over many rows, none hot.
	pattern := make([]int, 4000)
	for i := range pattern {
		pattern[i] = rng.Intn(cfg.RowsPerBank)
	}

	tracked, _ := newRRS(t, cfg)
	for i, row := range pattern {
		tracked.OnActivate(id, row, tracked.Remap(id, row), int64(i))
		if i%800 == 799 {
			tracked.OnEpoch(int64(i))
		}
	}

	prob, _ := newProbRRS(t, cfg, 12.0/float64(cfg.RowHammerThreshold))
	for i, row := range pattern {
		prob.OnActivate(id, row, prob.Remap(id, row), int64(i))
		if i%800 == 799 {
			prob.OnEpoch(int64(i))
		}
	}

	ts, ps := tracked.Stats().Swaps, prob.Stats().Swaps
	if ps < 10*ts+10 {
		t.Fatalf("probabilistic swaps (%d) not far above tracked (%d)", ps, ts)
	}
}

// --- Attack detection (footnote 2) ---

func TestDetectionOffByDefault(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	if r.Params().DetectionThreshold != 0 {
		t.Fatal("detection enabled by default")
	}
}

func TestDetectionFiresUnderChaseAttack(t *testing.T) {
	// Small bank so the birthday collision is frequent; threshold 2.
	cfg := config.Default()
	cfg.RowsPerBank = 256
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240

	sys := dram.MustNew(cfg)
	fm := attack.NewFaultModel(sys, 0, attack.Alpha2For(cfg))
	params := DefaultParams(cfg)
	params.DetectionThreshold = 2
	r, err := New(sys, params)
	if err != nil {
		t.Fatal(err)
	}
	ctl := memctrl.New(sys, r)

	p := attack.NewRandomChase(int(r.Params().SwapThreshold), cfg.RowsPerBank, 77)
	res := attack.Run(ctl, fm, p, attack.Options{Epochs: 6})
	if r.Stats().AttacksDetected == 0 {
		t.Fatal("chase attack never detected")
	}
	if !res.Defended() {
		t.Fatalf("flips despite detection: %d", res.Flips)
	}
}

func TestDetectionQuietOnBenignPattern(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	params := DefaultParams(cfg)
	params.DetectionThreshold = 3
	r, err := New(sys, params)
	if err != nil {
		t.Fatal(err)
	}
	id := dram.BankID{}
	rng := prince.Seeded(6)
	// Benign-hot pattern: a handful of hot rows get swapped about once
	// per epoch each — never twice the same physical location.
	for i := 0; i < 8000; i++ {
		var row int
		if rng.Intn(2) == 0 {
			row = rng.Intn(8)
		} else {
			row = rng.Intn(cfg.RowsPerBank)
		}
		r.OnActivate(id, row, r.Remap(id, row), int64(i))
		if i%800 == 799 {
			r.OnEpoch(int64(i))
		}
	}
	if r.Stats().Swaps < 20 {
		t.Fatalf("setup: too few swaps (%d)", r.Stats().Swaps)
	}
	if got := r.Stats().AttacksDetected; got != 0 {
		t.Fatalf("false positives: %d detections on a benign pattern", got)
	}
}

func TestDetectionResetsAtEpoch(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	params := DefaultParams(cfg)
	params.DetectionThreshold = 2
	r, err := New(sys, params)
	if err != nil {
		t.Fatal(err)
	}
	id := dram.BankID{}
	// One swap of row 5 this epoch (one mark on location 5)...
	for i := 0; i < 8; i++ {
		r.OnActivate(id, 5, r.Remap(id, 5), int64(i))
	}
	r.OnEpoch(100)
	// ...then in the next epoch, a swap whose pre-swap location is 5
	// again must NOT fire the detector (marks were cleared). Row 5 is now
	// elsewhere; hammer whatever logical row maps to physical 5.
	logical := -1
	for row := 0; row < cfg.RowsPerBank; row++ {
		if r.Remap(id, row) == 5 {
			logical = row
			break
		}
	}
	if logical < 0 {
		t.Skip("no logical row maps to physical 5 after the swap")
	}
	for i := 0; i < 8; i++ {
		r.OnActivate(id, logical, r.Remap(id, logical), int64(200+i))
	}
	if r.Stats().AttacksDetected != 0 {
		t.Fatal("detector fired across an epoch boundary")
	}
}

// TestDetectionWipesDisturbance verifies the response: the preemptive
// refresh restores every victim's charge.
func TestDetectionWipesDisturbance(t *testing.T) {
	cfg := config.Default()
	cfg.RowsPerBank = 256
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240

	sys := dram.MustNew(cfg)
	fm := attack.NewFaultModel(sys, 0, -1)
	params := DefaultParams(cfg)
	params.DetectionThreshold = 2
	r, err := New(sys, params)
	if err != nil {
		t.Fatal(err)
	}

	id := dram.BankID{}
	// Accumulate disturbance on a victim, then force two swap marks on
	// one location to fire the detector.
	for i := 0; i < 30; i++ {
		sys.Activate(id, 100, int64(i))
	}
	if fm.Disturbance(id, 101) == 0 {
		t.Fatal("setup: no disturbance")
	}
	loc := uint64(7)
	u := r.unit(id)
	r.observeDetection(u, loc)
	r.observeDetection(u, loc)
	if r.Stats().AttacksDetected != 1 {
		t.Fatalf("detections = %d", r.Stats().AttacksDetected)
	}
	if got := fm.Disturbance(id, 101); got != 0 {
		t.Fatalf("disturbance %v survived the preemptive refresh", got)
	}
}
