package cat

import (
	"testing"
	"testing/quick"

	"repro/internal/prince"
)

func newSmall(t *testing.T) *Table[int] {
	t.Helper()
	return New[int](Spec{Sets: 8, Ways: 4}, 1)
}

func TestLookupMissingReturnsNil(t *testing.T) {
	tab := newSmall(t)
	if tab.Lookup(42) != nil {
		t.Fatal("lookup on empty table returned entry")
	}
}

func TestInstallThenLookup(t *testing.T) {
	tab := newSmall(t)
	p := tab.Install(42, 7)
	if p == nil || *p != 7 {
		t.Fatalf("install returned %v", p)
	}
	if got := tab.Lookup(42); got == nil || *got != 7 {
		t.Fatalf("lookup after install = %v", got)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestInPlaceMutation(t *testing.T) {
	tab := newSmall(t)
	tab.Install(1, 10)
	*tab.Lookup(1) = 99
	if got := *tab.Lookup(1); got != 99 {
		t.Fatalf("after mutation, value = %d, want 99", got)
	}
}

func TestDelete(t *testing.T) {
	tab := newSmall(t)
	tab.Install(5, 1)
	if !tab.Delete(5) {
		t.Fatal("Delete returned false for present key")
	}
	if tab.Delete(5) {
		t.Fatal("Delete returned true for absent key")
	}
	if tab.Lookup(5) != nil {
		t.Fatal("entry still visible after delete")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tab.Len())
	}
}

func TestDuplicateInstallPanics(t *testing.T) {
	tab := newSmall(t)
	tab.Install(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate install")
		}
	}()
	tab.Install(3, 2)
}

func TestInstallManyNoConflictWithExtraWays(t *testing.T) {
	// 2 tables x 64 sets x 20 ways = 2560 slots; installing the paper's
	// tracker capacity (1700) must never conflict.
	tab := New[int](Spec{Sets: 64, Ways: 20}, 7)
	for i := 0; i < 1700; i++ {
		if tab.Install(uint64(i), i) == nil {
			t.Fatalf("conflict at install %d", i)
		}
	}
	if tab.Conflicts() != 0 {
		t.Fatalf("conflicts = %d, want 0", tab.Conflicts())
	}
	for i := 0; i < 1700; i++ {
		if v := tab.Lookup(uint64(i)); v == nil || *v != i {
			t.Fatalf("key %d lost or corrupted: %v", i, v)
		}
	}
}

func TestLenTracksInstallsAndDeletes(t *testing.T) {
	tab := New[int](Spec{Sets: 32, Ways: 8}, 3)
	for i := 0; i < 100; i++ {
		tab.Install(uint64(i), i)
	}
	for i := 0; i < 100; i += 2 {
		tab.Delete(uint64(i))
	}
	if tab.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tab.Len())
	}
}

func TestForEachVisitsAll(t *testing.T) {
	tab := New[int](Spec{Sets: 16, Ways: 8}, 5)
	want := map[uint64]int{}
	for i := 0; i < 60; i++ {
		tab.Install(uint64(i)*3, i)
		want[uint64(i)*3] = i
	}
	got := map[uint64]int{}
	tab.ForEach(func(k uint64, v *int) bool {
		got[k] = *v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %d want %d", k, got[k], v)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	tab := New[int](Spec{Sets: 16, Ways: 8}, 5)
	for i := 0; i < 60; i++ {
		tab.Install(uint64(i), i)
	}
	visits := 0
	tab.ForEach(func(k uint64, v *int) bool {
		visits++
		return visits < 10
	})
	if visits != 10 {
		t.Fatalf("visits = %d, want 10", visits)
	}
}

func TestRandomEntryRespectsPredicate(t *testing.T) {
	tab := New[int](Spec{Sets: 16, Ways: 8}, 5)
	for i := 0; i < 100; i++ {
		tab.Install(uint64(i), i)
	}
	rng := prince.Seeded(11)
	for trial := 0; trial < 50; trial++ {
		k, v, ok := tab.RandomEntry(rng, func(_ uint64, v *int) bool { return *v%2 == 1 })
		if !ok {
			t.Fatal("no qualifying entry found")
		}
		if *v%2 != 1 || k != uint64(*v) {
			t.Fatalf("predicate violated: key=%d val=%d", k, *v)
		}
	}
}

func TestRandomEntryNoQualifier(t *testing.T) {
	tab := New[int](Spec{Sets: 16, Ways: 8}, 5)
	for i := 0; i < 10; i++ {
		tab.Install(uint64(i), i)
	}
	_, _, ok := tab.RandomEntry(prince.Seeded(1), func(uint64, *int) bool { return false })
	if ok {
		t.Fatal("RandomEntry returned ok with impossible predicate")
	}
}

func TestRandomEntryEmptyTable(t *testing.T) {
	tab := newSmall(t)
	if _, _, ok := tab.RandomEntry(prince.Seeded(1), nil); ok {
		t.Fatal("RandomEntry on empty table returned ok")
	}
}

func TestRandomEntryUniformish(t *testing.T) {
	tab := New[int](Spec{Sets: 8, Ways: 8}, 5)
	const n = 16
	for i := 0; i < n; i++ {
		tab.Install(uint64(i), i)
	}
	rng := prince.Seeded(17)
	counts := make([]int, n)
	const draws = n * 400
	for i := 0; i < draws; i++ {
		k, _, ok := tab.RandomEntry(rng, nil)
		if !ok {
			t.Fatal("no entry")
		}
		counts[k]++
	}
	for i, c := range counts {
		if c < draws/n/3 || c > draws/n*3 {
			t.Errorf("key %d drawn %d times, expected about %d", i, c, draws/n)
		}
	}
}

func TestPropertyInstallDeleteConsistency(t *testing.T) {
	// Random interleavings of installs and deletes keep Lookup consistent
	// with a map oracle.
	f := func(ops []uint16, seed uint64) bool {
		tab := New[uint64](Spec{Sets: 16, Ways: 8}, seed)
		oracle := make(map[uint64]uint64)
		for _, op := range ops {
			key := uint64(op % 97)
			if _, present := oracle[key]; present {
				tab.Delete(key)
				delete(oracle, key)
			} else if len(oracle) < 100 {
				if tab.Install(key, key*3) == nil {
					return false // conflict at trivial load
				}
				oracle[key] = key * 3
			}
			if tab.Len() != len(oracle) {
				return false
			}
		}
		for k, v := range oracle {
			p := tab.Lookup(k)
			if p == nil || *p != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSetLoadAccounting(t *testing.T) {
	tab := New[int](Spec{Sets: 4, Ways: 4}, 9)
	total := 0
	for i := 0; i < 12; i++ {
		tab.Install(uint64(i)*131, i)
	}
	for ti := 0; ti < 2; ti++ {
		for s := 0; s < 4; s++ {
			load := tab.SetLoad(ti, s)
			if load < 0 || load > 4 {
				t.Fatalf("impossible load %d", load)
			}
			total += load
		}
	}
	if total != 12 {
		t.Fatalf("sum of set loads = %d, want 12", total)
	}
}

func TestConflictAndRelocation(t *testing.T) {
	// A tiny CAT (1 set per table, 2 ways) conflicts quickly; relocation
	// cannot help since both tables have a single set. Install must return
	// nil rather than evict silently.
	tab := New[int](Spec{Sets: 1, Ways: 2}, 3)
	installed := 0
	for i := 0; i < 10; i++ {
		if tab.Install(uint64(i), i) != nil {
			installed++
		}
	}
	if installed != 4 {
		t.Fatalf("installed %d entries into 4 slots", installed)
	}
	if tab.Conflicts() == 0 {
		t.Fatal("expected conflicts on overfull tiny CAT")
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](Spec{Sets: 0, Ways: 4}, 1)
}

func TestConflictExperimentMoreExtraWaysLastLonger(t *testing.T) {
	base := ConflictExperiment{
		Sets:        16,
		DemandWays:  6,
		MaxInstalls: 200000,
		Trials:      3,
		Seed:        42,
	}
	e1 := base
	e1.ExtraWays = 1
	r1 := e1.Run()
	e2 := base
	e2.ExtraWays = 2
	r2 := e2.Run()
	if r1.Conflicted == 0 {
		t.Skip("no conflict observed for 1 extra way at this scale")
	}
	if r2.Conflicted > 0 && r2.MeanInstalls < r1.MeanInstalls {
		t.Fatalf("2 extra ways conflicted sooner (%v) than 1 (%v)",
			r2.MeanInstalls, r1.MeanInstalls)
	}
}

func TestConflictExperimentDeterministic(t *testing.T) {
	e := ConflictExperiment{
		Sets: 8, DemandWays: 4, ExtraWays: 1,
		MaxInstalls: 50000, Trials: 2, Seed: 7,
	}
	a, b := e.Run(), e.Run()
	if a != b {
		t.Fatalf("experiment not deterministic: %+v vs %+v", a, b)
	}
}

func TestExtrapolateInstalls(t *testing.T) {
	measured := map[int]float64{1: 1e3, 2: 1e5}
	out := ExtrapolateInstalls(measured, 1, 4)
	// c = 5 - 2*3 = -1; E=3 -> 2*5-1 = 9; E=4 -> 2*9-1 = 17.
	if got := out[3]; got != 9 {
		t.Fatalf("E=3 log10 = %v, want 9", got)
	}
	if got := out[4]; got != 17 {
		t.Fatalf("E=4 log10 = %v, want 17", got)
	}
}

func TestExtrapolateInstallsSinglePoint(t *testing.T) {
	out := ExtrapolateInstalls(map[int]float64{2: 1e4}, 2, 4)
	if out[3] != 8 || out[4] != 16 {
		t.Fatalf("single-point extrapolation wrong: %v", out)
	}
}

func TestExtrapolateInstallsEmpty(t *testing.T) {
	if out := ExtrapolateInstalls(nil, 1, 3); len(out) != 0 {
		t.Fatalf("expected empty result, got %v", out)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tab := New[int](Spec{Sets: 256, Ways: 20}, 1)
	for i := 0; i < 3400; i++ {
		tab.Install(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(uint64(i % 3400))
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	tab := New[int](Spec{Sets: 256, Ways: 20}, 1)
	for i := 0; i < 3400; i++ {
		tab.Install(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(uint64(i%3400) + (1 << 20))
	}
}
