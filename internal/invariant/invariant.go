// Package invariant is the self-verification layer of the simulation
// core: a typed error taxonomy for structural failures, and an engine
// that runs a catalog of cheap, toggleable runtime checks over the
// mitigation pipeline's state.
//
// The RRS paper's security argument rests on structural properties the
// hardware maintains by construction — the RIT's dual-entry involution,
// the Misra-Gries count bounds, CAT occupancy accounting, swap-buffer
// data conservation. The software reproduction re-derives several of
// those properties through redundant state (presence bitsets, dense
// slices, memoized set indexes, cached minima) that can silently drift.
// This package makes the properties machine-checked: each structure
// package exports a CheckInvariants method (and, where drift is only
// visible differentially, a map-based shadow model), and the engine runs
// them on a cadence during paranoid-mode simulations, latching the first
// Violation so a run fails with a diagnosable report instead of
// continuing on corrupt state.
//
// The catalog of checks registered by a paranoid sim.Run (see DESIGN.md
// "Invariant catalog" for the paper justification and cost of each):
//
//   - rit/structure: involution (<X,Y> implies <Y,X>), lock-bit parity,
//     tuple-count and capacity accounting, presence-bitset agreement.
//   - rit/shadow: map-based reference RIT mirrors installs, removals and
//     evictions; every Remap answer is cross-checked (first divergence
//     is reported, naming the row and both answers).
//   - tracker/structure: CAT SetMin exactness and cached-global-minimum
//     agreement, relocation-counter sync, presence-bitset agreement,
//     Misra-Gries count lower bound (no estimate below the spill
//     counter); CAM slot/index agreement and cached-minimum exactness.
//   - tracker/shadow: map-based Misra-Gries reference replays every
//     observation and cross-checks counts, spill, triggers, installs
//     and evictions at the first mismatch.
//   - cat/structure: two-table occupancy (invalid-way counters vs valid
//     slots), size accounting, slot-placement consistency (every key
//     sits in a set its hashes select), set-index memo integrity, no
//     duplicate keys.
//   - dram/structure: dense-slice/overflow-map disjointness, activation
//     count/dirty-list agreement, content/written tier sizing.
//   - dram/swap-conservation: every SwapRows/CycleRows is re-read after
//     the transfer and compared against the contents captured before it
//     (the ~2.9 us swap+unswap window of Figure 4 must conserve row
//     data).
//
// Package invariant has no dependencies inside the repository, so every
// structure package can use its error types without import cycles.
package invariant

import (
	"errors"
	"fmt"
)

// ErrBadGeometry is the taxonomy root for construction-time structural
// errors: a CAT spec with non-positive sets or ways, a RIT capacity its
// geometry cannot hold, a DRAM configuration that fails validation.
// Constructors wrap it so callers can classify with errors.Is.
var ErrBadGeometry = errors.New("bad geometry")

// Violation is the typed error reporting a broken runtime invariant. It
// names the catalog entry that failed, so an operator (or the fault
// injection suite) can tell exactly which guarantee broke, and carries a
// human-readable detail of the observed state.
type Violation struct {
	// Invariant is the catalog name, e.g. "rit/involution".
	Invariant string
	// Detail describes the first observed mismatch.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant violation [%s]: %s", v.Invariant, v.Detail)
}

// Violatedf builds a Violation for the named invariant.
func Violatedf(invariant, format string, args ...any) *Violation {
	return &Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
}

// AsViolation unwraps err to a *Violation, or nil.
func AsViolation(err error) *Violation {
	var v *Violation
	if errors.As(err, &v) {
		return v
	}
	return nil
}
