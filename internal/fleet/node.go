package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// Options configures one fleet node. Self must appear in Peers; every
// node of a fleet is started with the same roster (order irrelevant)
// and decides ownership locally from it.
type Options struct {
	// Self is this node's roster entry. Its ID becomes the job-id
	// prefix (service.Options.NodeID).
	Self Peer
	// Peers is the full fleet roster, Self included.
	Peers []Peer
	// Service configures the node's local manager. Run is wrapped with
	// the fleet-wide cache fan-out (nil falls through to the built-in
	// engine), NodeID is forced to Self.ID, and a nil Metrics gets a
	// fresh registry shared with the fleet counters.
	Service service.Options
	// HTTPClient carries all peer traffic — forwards, probes, proxies,
	// steals. Tests inject fault-injecting or retargeting transports
	// here. nil uses a 30 s-timeout default client.
	HTTPClient *http.Client
	// Retry shapes forward/donate retry loops (resilience defaults
	// apply to the zero value).
	Retry resilience.Policy

	// ProbeInterval is the failure-detector cadence (default 500 ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2 s).
	ProbeTimeout time.Duration
	// Rise and Fall are the hysteresis thresholds: consecutive probe
	// successes to rejoin the ring and failures to leave it (defaults
	// 2 and 3).
	Rise, Fall int

	// FanoutTimeout bounds the fleet-wide cache lookup before a run
	// (default 1 s). The lookup is best-effort: a miss or timeout just
	// runs the simulation.
	FanoutTimeout time.Duration
	// FanoutPeerTimeout bounds each individual peer fetch inside the
	// fan-out (default 250 ms, capped at FanoutTimeout), so one hung
	// peer burns its own slice of the budget instead of stalling every
	// cold submit for the full FanoutTimeout.
	FanoutPeerTimeout time.Duration

	// ReplicationQueue bounds the asynchronous result-replication queue
	// (default 128; negative disables replication). When the queue is
	// full new results are dropped from replication — never from the
	// local cache/journal — and counted in rrs_fleet_replica_drops_total;
	// the repair loop re-establishes their replicas later.
	ReplicationQueue int
	// RepairInterval is the anti-entropy cadence (default 30 s; negative
	// disables the loop). Each tick verifies a batch of locally held
	// results still have a live replica, re-pushing any that do not.
	RepairInterval time.Duration
	// RepairBatch is how many held results one repair tick checks
	// (default 16) — the loop is deliberately low-rate.
	RepairBatch int

	// StealInterval is the idle-node work-stealing cadence (default
	// 250 ms; negative disables stealing).
	StealInterval time.Duration
	// StealThreshold is the minimum backlog a victim must have before
	// it lends work (default 2 — stealing a lone queued job usually
	// loses the race with the victim's own workers).
	StealThreshold int
	// LeaseTimeout is how long a stolen job may stay out before the
	// victim reclaims and requeues it (default 30 s). It bounds the
	// damage of a thief dying mid-run.
	LeaseTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.Rise <= 0 {
		o.Rise = 2
	}
	if o.Fall <= 0 {
		o.Fall = 3
	}
	if o.FanoutTimeout <= 0 {
		o.FanoutTimeout = time.Second
	}
	if o.FanoutPeerTimeout <= 0 {
		o.FanoutPeerTimeout = 250 * time.Millisecond
	}
	if o.FanoutPeerTimeout > o.FanoutTimeout {
		o.FanoutPeerTimeout = o.FanoutTimeout
	}
	if o.ReplicationQueue == 0 {
		o.ReplicationQueue = 128
	}
	if o.RepairInterval == 0 {
		o.RepairInterval = 30 * time.Second
	}
	if o.RepairBatch <= 0 {
		o.RepairBatch = 16
	}
	if o.StealInterval == 0 {
		o.StealInterval = 250 * time.Millisecond
	}
	if o.StealThreshold <= 0 {
		o.StealThreshold = 2
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	return o
}

// internalPrefix mounts the unrouted local service API. Peer traffic
// (forwarded submits, proxied polls, probes) targets it so a forwarded
// request is handled by the receiving node, never re-forwarded — loop
// prevention is structural, not a header convention.
const internalPrefix = "/v1/fleet/local"

// lease tracks one job lent to a thief.
type lease struct {
	job     *service.Job
	thief   string
	expires time.Time
}

// Node is one fleet member: a local manager plus the peer layer —
// ring routing, failure detection, gossiped membership, forwarding,
// stealing, cache fan-out, result replication and anti-entropy repair.
type Node struct {
	opts  Options
	self  Peer
	mem   *membership
	mgr   *service.Manager
	local http.Handler // the plain single-node API over mgr
	met   *service.Metrics
	det   *detector
	hc    *http.Client

	// clients are retrying service.Clients per remote peer, targeting
	// the peer's internal (unrouted) API surface. Built lazily because
	// membership is dynamic: a peer learned through gossip gets a
	// client on first use, and a peer that rejoined on a new address
	// gets a fresh one.
	clientsMu sync.Mutex
	clients   map[string]clientEntry

	// repq is the bounded replication queue; nil when replication is
	// disabled. Workers enqueue non-blocking, the replicator goroutine
	// (Start) drains it.
	repq chan replicaTask

	mu        sync.Mutex
	lent      map[string]*lease
	stealIdx  int
	repairIdx int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type clientEntry struct {
	url string
	c   *service.Client
}

// New builds a node and its manager. The caller owns journal replay
// (node.Manager().Restore) and must Start the background loops once
// the node's listener is up.
func New(opts Options) (*Node, error) {
	opts = opts.withDefaults()
	if opts.Self.ID == "" || opts.Self.URL == "" {
		return nil, fmt.Errorf("fleet: Self needs an ID and a URL")
	}
	seen := make(map[string]bool, len(opts.Peers))
	selfInRoster := false
	for _, p := range opts.Peers {
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("fleet: peer %+v needs an ID and a URL", p)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("fleet: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		if p.ID == opts.Self.ID {
			selfInRoster = true
		}
	}
	if !selfInRoster {
		return nil, fmt.Errorf("fleet: Self %q not in the peer roster", opts.Self.ID)
	}

	n := &Node{
		opts:    opts,
		self:    opts.Self,
		mem:     newMembership(opts.Self.ID, opts.Peers),
		hc:      opts.HTTPClient,
		clients: make(map[string]clientEntry, len(opts.Peers)),
		lent:    make(map[string]*lease),
		stop:    make(chan struct{}),
	}
	if opts.ReplicationQueue > 0 {
		n.repq = make(chan replicaTask, opts.ReplicationQueue)
	}

	so := opts.Service
	so.NodeID = opts.Self.ID
	if so.Metrics == nil {
		so.Metrics = service.NewMetrics()
	}
	n.met = so.Metrics
	inner := so.Run
	if inner == nil {
		inner = service.RunSpec
	}
	so.Run = n.fanoutRun(inner)
	// Sweep children route to their ring owner by their own content hash
	// (falling back to so.Run locally), so one sweep spreads fleet-wide.
	so.RunChild = n.childRun(so.Run)
	// Every locally computed result (including accepted steal donations)
	// feeds the replication queue the moment it enters the cache.
	userOnResult := so.OnResult
	so.OnResult = func(hash string, res sim.Result) {
		if userOnResult != nil {
			userOnResult(hash, res)
		}
		n.enqueueReplica(hash, res)
	}
	n.registerMetrics()
	n.mgr = service.NewManager(so)
	n.local = service.Handler(n.mgr)

	n.det = newDetector(n.mem.remotes(), opts.Rise, opts.Fall, opts.ProbeTimeout,
		n.probePeer, func(p Peer, routable bool) {
			n.met.Inc("rrs_fleet_peer_flaps_total", 1)
		})
	return n, nil
}

func (n *Node) registerMetrics() {
	for name, help := range map[string]string{
		"rrs_fleet_forwards_total":              "Submissions forwarded to their ring owner.",
		"rrs_fleet_forward_failovers_total":     "Forward attempts moved to the next-ranked peer after the preferred owner failed.",
		"rrs_fleet_local_fallbacks_total":       "Submissions run locally because every remote candidate failed.",
		"rrs_fleet_proxied_total":               "Job status/result/cancel requests proxied to the job's home node.",
		"rrs_fleet_proxy_misses_total":          "Proxied requests whose home node was unreachable (answered 404 so the client resubmits).",
		"rrs_fleet_cache_fanout_checks_total":   "Runs that asked the fleet's caches before simulating.",
		"rrs_fleet_cache_fanout_hits_total":     "Runs answered by a peer's result cache instead of simulating.",
		"rrs_fleet_steals_total":                "Jobs this node stole from a peer and completed.",
		"rrs_fleet_steal_failures_total":        "Stolen runs that failed locally (the victim's lease reclaims the job).",
		"rrs_fleet_lent_total":                  "Queued jobs lent to a thief peer.",
		"rrs_fleet_donations_accepted_total":    "Stolen results donated back and accepted.",
		"rrs_fleet_donations_stale_total":       "Donations dropped because the job already had a terminal state or was re-running.",
		"rrs_fleet_reclaims_total":              "Stolen-job leases that expired and requeued locally.",
		"rrs_fleet_peer_flaps_total":            "Peer routability transitions (either direction) after hysteresis.",
		"rrs_fleet_replicated_total":            "Results pushed to their ring successor (completion-time replication plus repair).",
		"rrs_fleet_replicas_received_total":     "Replica payloads accepted into the local result cache.",
		"rrs_fleet_replica_failures_total":      "Replica pushes that failed after retries (the repair loop retries later).",
		"rrs_fleet_replica_drops_total":         "Results dropped from the full replication queue (repair re-establishes their copies).",
		"rrs_fleet_repair_checks_total":         "Held results whose successor replica the anti-entropy loop verified.",
		"rrs_fleet_repair_replicated_total":     "Missing replicas re-pushed by the anti-entropy loop.",
		"rrs_fleet_membership_updates_total":    "Gossip exchanges that changed the local membership table.",
		"rrs_fleet_joins_total":                 "Successful -join handshakes performed by this node.",
		"rrs_fleet_no_owner_total":              "Submissions refused 503 because the live set was empty.",
		"rrs_fleet_sweep_children_routed_total": "Sweep children executed on their remote ring owner.",
		"rrs_fleet_sweep_children_local_total":  "Sweep children executed locally (self-owned or every remote candidate failed).",
		"rrs_fleet_sweep_child_failovers_total": "Sweep-child placements moved to the next-ranked peer after the owner failed.",
	} {
		n.met.Counter(name, help)
	}
	n.met.Gauge("rrs_fleet_peers", "Alive membership rows, self included (tombstoned members excluded).",
		func() float64 { return float64(n.mem.alive()) })
	n.met.Gauge("rrs_fleet_membership_version", "Local membership-table mutation counter.",
		func() float64 { return float64(n.mem.currentVersion()) })
	n.met.Gauge("rrs_fleet_replica_lag", "Results awaiting replication in the queue.",
		func() float64 { return float64(len(n.repq)) })
	n.met.Gauge("rrs_fleet_peers_live", "Routable peers, self included unless draining.",
		func() float64 { return float64(len(n.liveSet())) })
	n.met.Gauge("rrs_fleet_lent", "Jobs currently lent to thief peers.",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(len(n.lent))
		})
}

// Manager exposes the node's local manager (journal restore, tests).
func (n *Node) Manager() *service.Manager { return n.mgr }

// Start launches the background loops: failure-detector probes (which
// carry the membership gossip), the idle work-stealing loop, the lease
// reaper, the replicator, and the anti-entropy repair loop.
func (n *Node) Start() {
	n.loop(n.opts.ProbeInterval, func(ctx context.Context) { n.det.ProbeOnce(ctx) })
	if n.opts.StealInterval > 0 {
		n.loop(n.opts.StealInterval, func(ctx context.Context) { n.StealOnce(ctx) })
	}
	n.loop(reaperInterval(n.opts.LeaseTimeout), func(context.Context) { n.reapLeases() })
	if n.repq != nil {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.replicator()
		}()
	}
	if n.opts.RepairInterval > 0 {
		n.loop(n.opts.RepairInterval, func(ctx context.Context) { n.RepairOnce(ctx) })
	}
}

func reaperInterval(lease time.Duration) time.Duration {
	if iv := lease / 4; iv < time.Second {
		return iv
	}
	return time.Second
}

// loop runs fn every interval until Close.
func (n *Node) loop(interval time.Duration, fn func(ctx context.Context)) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-n.stop
			cancel()
		}()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				fn(ctx)
			}
		}
	}()
}

// Close stops the background loops. It does not touch the manager —
// pair it with Drain or the manager's Shutdown.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// StartDrain flips the node into drain mode: /readyz answers 503 (so
// peers' failure detectors pull this node from their rings within a
// probe round), Submit refuses new work, the steal loop goes idle, and
// the membership row is tombstoned — the leave is permanent and spreads
// through gossip, unlike a crash, which the detector merely routes
// around.
func (n *Node) StartDrain() {
	n.mgr.StartDrain()
	if n.mem.leave() {
		n.met.Inc("rrs_fleet_membership_updates_total", 1)
	}
}

// Drain gracefully winds the node down: stop accepting, give accepted
// jobs until ctx to finish, journal-requeue the rest (see
// service.Manager.Drain), flush pending replicas so finished results
// keep their successor copy, and stop the peer loops.
func (n *Node) Drain(ctx context.Context) error {
	n.StartDrain()
	err := n.mgr.Drain(ctx)
	n.FlushReplicas(ctx)
	n.Close()
	return err
}

// ProbeOnce drives one synchronous failure-detector round — how tests
// advance the detector deterministically. Each probe piggybacks a
// membership gossip exchange, so driving probes also spreads the table.
func (n *Node) ProbeOnce(ctx context.Context) { n.det.ProbeOnce(ctx) }

// probePeer is one failure-detector probe, and the fleet's gossip
// transport: a membership-table exchange proves liveness (a draining
// peer still answers it, which is how tombstones spread), then a
// single-attempt readiness check decides routability.
func (n *Node) probePeer(ctx context.Context, p Peer) error {
	if err := n.gossipExchange(ctx, p.URL); err != nil {
		return err
	}
	c := service.NewClient(p.URL,
		service.WithHTTPClient(n.hc),
		service.WithRetryPolicy(resilience.Policy{MaxAttempts: 1}))
	return c.Ready(ctx)
}

// gossipPayload is the POST /v1/fleet/gossip request and response body.
type gossipPayload struct {
	From    string   `json:"from,omitempty"`
	Members []Member `json:"members"`
}

// gossipExchange runs one push-pull round with the peer at base: send
// our table, absorb theirs from the response. Both directions converge
// under the Member merge rule.
func (n *Node) gossipExchange(ctx context.Context, base string) error {
	body, err := json.Marshal(gossipPayload{From: n.self.ID, Members: n.Members()})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/fleet/gossip", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: gossip with %s: status %d", base, resp.StatusCode)
	}
	var in gossipPayload
	if err := json.NewDecoder(resp.Body).Decode(&in); err != nil {
		return err
	}
	n.absorb(in.Members)
	return nil
}

// absorb merges a gossiped table and reacts to what it says about us:
// if the merged view shows self tombstoned or listed under a stale URL
// while we are alive and not draining, we re-announce with a higher
// epoch — that is the whole rejoin protocol, and it also covers a node
// restarted after a drain or rebooted on a new address under the same
// ID. Any table change recomputes the probed peer set, and therefore
// ring ownership.
func (n *Node) absorb(rows []Member) {
	changed := n.mem.merge(rows)
	if row, ok := n.mem.member(n.self.ID); !n.mgr.Draining() &&
		(!ok || row.Left || row.Peer.URL != n.self.URL) {
		if n.mem.announce(n.self) {
			changed = true
		}
	}
	if changed {
		n.met.Inc("rrs_fleet_membership_updates_total", 1)
		n.applyMembership()
	}
}

// applyMembership points the failure detector at the current alive
// remote set. Ring ownership follows automatically: liveSet() ranks
// over det.Routable(), which SetPeers just updated.
func (n *Node) applyMembership() {
	n.det.SetPeers(n.mem.remotes())
}

// Join introduces this node to a running fleet: exchange tables with
// each seed URL (retried), then push once more so an epoch-bumped
// re-announcement — the rejoin-under-same-ID case — reaches a live peer
// before the first probe round. At least one seed must answer.
func (n *Node) Join(ctx context.Context, seeds []string) error {
	var joined bool
	var lastErr error
	for _, seed := range seeds {
		err := resilience.Do(ctx, n.opts.Retry, func(ctx context.Context) error {
			return resilience.MarkTransient(n.gossipExchange(ctx, seed))
		})
		if err != nil {
			lastErr = err
			continue
		}
		joined = true
	}
	if !joined {
		return fmt.Errorf("fleet: join failed against every seed: %w", lastErr)
	}
	for _, seed := range seeds {
		n.gossipExchange(ctx, seed) // best-effort second push
	}
	n.met.Inc("rrs_fleet_joins_total", 1)
	return nil
}

// Members exposes the membership table (GET /v1/fleet/members, tests,
// the chaos soak's placement oracle).
func (n *Node) Members() []Member { return n.mem.snapshot() }

// liveSet is the ring: routable remote peers plus self unless
// draining.
func (n *Node) liveSet() []Peer {
	live := n.det.Routable()
	if !n.mgr.Draining() {
		live = append(live, n.self)
	}
	return live
}

// peerByID resolves an alive membership row (self and tombstones
// excluded). A job id whose prefix is unknown or departed falls back to
// the local handler, whose 404 triggers the client's resubmit recovery.
func (n *Node) peerByID(id string) (Peer, bool) {
	row, ok := n.mem.member(id)
	if !ok || row.Left || id == n.self.ID {
		return Peer{}, false
	}
	return row.Peer, true
}

// clientFor returns the retrying client for a peer's internal API,
// building one on first use and replacing it if the peer moved to a new
// URL — both routine events under dynamic membership.
func (n *Node) clientFor(p Peer) *service.Client {
	n.clientsMu.Lock()
	defer n.clientsMu.Unlock()
	if e, ok := n.clients[p.ID]; ok && e.url == p.URL {
		return e.c
	}
	c := service.NewClient(p.URL+internalPrefix,
		service.WithHTTPClient(n.hc),
		service.WithRetryPolicy(n.opts.Retry))
	// Fleet-internal polling runs node-to-node on the same network as
	// the ring probes; the public client's 250 ms default (and the
	// server's 1 s Retry-After hint, which an unset interval honors)
	// would dominate the latency of every routed sweep child.
	c.PollInterval = 20 * time.Millisecond
	n.clients[p.ID] = clientEntry{url: p.URL, c: c}
	return c
}

// fanoutRun wraps the manager's executor with the fleet-wide cache
// lookup: before simulating, ask every routable peer's result cache for
// the spec's content hash; any hit is returned as this job's result
// (and enters the local cache through the normal completion path).
func (n *Node) fanoutRun(inner service.RunFunc) service.RunFunc {
	return func(ctx context.Context, spec service.Spec, progress func(done, total int64)) (sim.Result, error) {
		if res, ok := n.peerCached(ctx, spec.Hash()); ok {
			n.met.Inc("rrs_fleet_cache_fanout_hits_total", 1)
			if progress != nil {
				progress(1, 1)
			}
			return res, nil
		}
		return inner(ctx, spec, progress)
	}
}

// cacheEnvelope is the GET /v1/fleet/cache/{hash} payload.
type cacheEnvelope struct {
	Hash   string     `json:"hash"`
	Result sim.Result `json:"result"`
}

// peerCached fans a cache lookup out to the routable peers — the
// detector has already dropped dead ones — and returns the first hit.
// Each fetch gets its own FanoutPeerTimeout slice of the FanoutTimeout
// budget, so one hung peer times out alone instead of pinning every
// cold submit to the full fan-out deadline. Best-effort: errors and
// timeouts are misses.
func (n *Node) peerCached(ctx context.Context, hash string) (sim.Result, bool) {
	peers := n.det.Routable()
	if len(peers) == 0 {
		return sim.Result{}, false
	}
	n.met.Inc("rrs_fleet_cache_fanout_checks_total", 1)
	fctx, cancel := context.WithTimeout(ctx, n.opts.FanoutTimeout)
	defer cancel()
	type answer struct {
		res sim.Result
		ok  bool
	}
	ch := make(chan answer, len(peers))
	for _, p := range peers {
		go func(p Peer) {
			pctx, pcancel := context.WithTimeout(fctx, n.opts.FanoutPeerTimeout)
			defer pcancel()
			res, ok := n.fetchCached(pctx, p, hash)
			ch <- answer{res, ok}
		}(p)
	}
	for range peers {
		if a := <-ch; a.ok {
			return a.res, true
		}
	}
	return sim.Result{}, false
}

func (n *Node) fetchCached(ctx context.Context, p Peer, hash string) (sim.Result, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.URL+"/v1/fleet/cache/"+hash, nil)
	if err != nil {
		return sim.Result{}, false
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return sim.Result{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sim.Result{}, false
	}
	var env cacheEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return sim.Result{}, false
	}
	return env.Result, true
}
