package cat

import (
	"repro/internal/invariant"
)

// CheckInvariants verifies the table's structural invariants and returns
// a typed *invariant.Violation describing the first mismatch:
//
//   - cat/occupancy: per-set invalid-way counters equal the number of
//     invalid slots in that set, and no key is stored twice.
//   - cat/placement: every valid slot's key hashes to the set holding it
//     (recomputed from the raw hashes, bypassing the memo).
//   - cat/size: the size counter equals the number of valid slots.
//   - cat/memo: every populated set-index memo entry agrees with a fresh
//     evaluation of both hash functions and sits in the memo slot its
//     key's low bits select.
//
// Cost is O(slots + memo); the paranoid engine runs it on a cadence.
func (t *Table[V]) CheckInvariants() error {
	seen := make(map[uint64]struct{}, t.size)
	total := 0
	for ti := 0; ti < 2; ti++ {
		for s := 0; s < t.spec.Sets; s++ {
			valid := 0
			ss := t.setSlots(ti, s)
			for i := range ss {
				if !ss[i].valid {
					continue
				}
				valid++
				key := ss[i].key
				if _, dup := seen[key]; dup {
					return invariant.Violatedf("cat/occupancy",
						"key %#x stored in more than one slot", key)
				}
				seen[key] = struct{}{}
				if want := t.setIndex(ti, key); want != s {
					return invariant.Violatedf("cat/placement",
						"key %#x sits in table %d set %d but hashes to set %d",
						key, ti, s, want)
				}
			}
			if inv := t.invalid[ti][s]; inv != t.spec.Ways-valid {
				return invariant.Violatedf("cat/occupancy",
					"table %d set %d: invalid-way counter %d, actual invalid ways %d",
					ti, s, inv, t.spec.Ways-valid)
			}
			total += valid
		}
	}
	if total != t.size {
		return invariant.Violatedf("cat/size",
			"size counter %d, valid slots %d", t.size, total)
	}
	for i := range t.idxCache {
		e := &t.idxCache[i]
		if e.s0 < 0 {
			continue
		}
		if int(e.key&(1<<idxCacheBits-1)) != i {
			return invariant.Violatedf("cat/memo",
				"memo slot %d holds key %#x whose low bits select slot %d",
				i, e.key, e.key&(1<<idxCacheBits-1))
		}
		s0 := int(t.hash[0].Sum(e.key) % uint64(t.spec.Sets))
		s1 := int(t.hash[1].Sum(e.key) % uint64(t.spec.Sets))
		if int(e.s0) != s0 || int(e.s1) != s1 {
			return invariant.Violatedf("cat/memo",
				"memo for key %#x caches sets (%d,%d), hashes give (%d,%d)",
				e.key, e.s0, e.s1, s0, s1)
		}
	}
	return nil
}

// --- Test-only state corruption hooks ---
//
// The fault-injection suite (internal/invariant) uses these narrow
// mutators to flip bits in the table's redundant state and prove the
// checker detects every corruption class. They exist for tests only and
// must never be called by production code.

// CorruptMemoForTest overwrites the set-index memo entry for key (which
// must currently be cached) with the given candidate sets.
func (t *Table[V]) CorruptMemoForTest(key uint64, s0, s1 int32) bool {
	e := &t.idxCache[key&(1<<idxCacheBits-1)]
	if e.s0 < 0 || e.key != key {
		return false
	}
	e.s0, e.s1 = s0, s1
	return true
}

// CorruptInvalidCountForTest skews one set's invalid-way counter.
func (t *Table[V]) CorruptInvalidCountForTest(ti, s, delta int) {
	t.invalid[ti][s] += delta
}

// CorruptSizeForTest skews the size counter.
func (t *Table[V]) CorruptSizeForTest(delta int) { t.size += delta }

// CorruptKeyForTest rewrites the stored key of oldKey's slot to newKey
// without touching any index, reporting whether oldKey was present.
func (t *Table[V]) CorruptKeyForTest(oldKey, newKey uint64) bool {
	for ti := 0; ti < 2; ti++ {
		for i := range t.slots[ti] {
			if t.slots[ti][i].valid && t.slots[ti][i].key == oldKey {
				t.slots[ti][i].key = newKey
				return true
			}
		}
	}
	return false
}

// DropEntryForTest clears the valid bit of key's slot without updating
// the invalid-way counter or size, reporting whether key was present.
func (t *Table[V]) DropEntryForTest(key uint64) bool {
	for ti := 0; ti < 2; ti++ {
		for i := range t.slots[ti] {
			if t.slots[ti][i].valid && t.slots[ti][i].key == key {
				t.slots[ti][i].valid = false
				return true
			}
		}
	}
	return false
}
