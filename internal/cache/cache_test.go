package cache

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	c := New(64<<10, 4, 64)
	if r := c.Access(1234, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(1234, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction: 2-way cache with 2 sets (256 B / 2 ways / 64 B).
	c := New(256, 2, 64)
	// Three lines in the same set (set = addr & 1): 0, 2, 4.
	c.Access(0, false)
	c.Access(2, false)
	c.Access(0, false) // make line 2 the LRU
	c.Access(4, false) // evicts 2
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("MRU line evicted")
	}
	if r := c.Access(2, false); r.Hit {
		t.Fatal("LRU line survived")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(256, 2, 64)
	c.Access(0, true) // dirty
	c.Access(2, false)
	c.Access(4, false) // evicts 0 (LRU, dirty)
	var wb Result
	found := false
	for _, line := range []uint64{6, 8} {
		r := c.Access(line, false)
		if r.Writeback {
			wb = r
			found = true
			break
		}
	}
	// The eviction of line 0 happened at the access of 4 or later.
	_ = wb
	if !found && c.Writebacks() == 0 {
		t.Fatal("dirty line never wrote back")
	}
}

func TestWritebackAddressReconstruction(t *testing.T) {
	c := New(256, 2, 64)               // 2 sets
	const victim = 0x1234 & ^uint64(1) // even set
	c.Access(victim, true)
	// Fill the same set with clean lines until the victim evicts.
	for i := uint64(1); ; i++ {
		addr := victim + i*2 // same set (stride 2 keeps set parity)
		r := c.Access(addr, false)
		if r.Writeback {
			if r.VictimLine != victim {
				t.Fatalf("writeback address %#x, want %#x", r.VictimLine, victim)
			}
			return
		}
		if i > 10 {
			t.Fatal("victim never evicted")
		}
	}
}

func TestWritebackOnlyOnceUnlessRedirtied(t *testing.T) {
	c := New(256, 2, 64)
	c.Access(0, true)
	c.Access(2, false)
	c.Access(4, false) // 0 evicted dirty
	before := c.Writebacks()
	if before != 1 {
		t.Fatalf("writebacks = %d, want 1", before)
	}
	c.Access(0, false) // re-fetched clean
	c.Access(2, false)
	c.Access(6, false) // evicts clean line: no writeback
	if c.Writebacks() != 1 {
		t.Fatalf("clean eviction wrote back: %d", c.Writebacks())
	}
}

func TestPropertyNoFalseHits(t *testing.T) {
	// A small cache against a map oracle: a hit implies the line was
	// accessed before and not evicted since — weaker check: any hit line
	// must have been accessed at least once before.
	f := func(addrs []uint16) bool {
		c := New(1024, 2, 64)
		seen := map[uint64]bool{}
		for _, a := range addrs {
			line := uint64(a % 512)
			r := c.Access(line, false)
			if r.Hit && !seen[line] {
				return false
			}
			seen[line] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFullyUsedCapacity(t *testing.T) {
	// Working set equal to capacity must fit: second pass all hits.
	c := New(64<<10, 16, 64)
	lines := 64 << 10 / 64
	for i := 0; i < lines; i++ {
		c.Access(uint64(i), false)
	}
	for i := 0; i < lines; i++ {
		if r := c.Access(uint64(i), false); !r.Hit {
			t.Fatalf("line %d missed on second pass", i)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100, 3, 64) // non power-of-two sets
}

func BenchmarkAccess(b *testing.B) {
	c := New(8<<20, 16, 64)
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%200000), i%3 == 0)
	}
}
