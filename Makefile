# Convenience targets for the randrowswap-go reproduction.

GO ?= go

.PHONY: all build test test-short bench vet experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per table/figure of the paper.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every table and figure (writes to stdout; ~20 min single-core).
experiments:
	$(GO) run ./cmd/rrs-experiments -exp all -scale 16 -epochs 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/halfdouble
	$(GO) run ./examples/secanalysis
	$(GO) run ./examples/blockhammer

clean:
	$(GO) clean ./...
