package experiments

import (
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The sweep-backed execution path. Each figure (and the shootout's perf
// leg) describes its whole grid as one service.SweepSpec — a base job
// plus axes — and pre-executes it through Scale.Sweeper when one is
// configured. The figure's own loops are untouched: they run in the
// same order over the same specs and merely look each point up by
// content hash in the sweep's result map. Since a sweep child and a
// directly submitted job normalize and hash identically, the two paths
// produce byte-identical tables — the sweep just replaces N
// submit+poll round trips with one.

// workloadNames projects a workload list onto the sweep's Workloads
// axis.
func workloadNames(ws []trace.Workload) []string {
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// sweepRunner pre-executes one sweep covering axes over base and
// returns a drop-in replacement for runSpec: points the sweep covered
// are answered from its result map by content hash, anything else (or
// a server-side miss) falls back to the per-point path. With no
// Sweeper configured it returns s.runSpec unchanged.
func (s Scale) sweepRunner(base service.Spec, axes service.SweepAxes) (func(service.Spec) (sim.Result, error), error) {
	if s.Sweeper == nil {
		return s.runSpec, nil
	}
	got, err := s.Sweeper(service.SweepSpec{Base: base, Axes: axes})
	if err != nil {
		return nil, err
	}
	return func(spec service.Spec) (sim.Result, error) {
		if res, ok := got[spec.Hash()]; ok {
			return res, nil
		}
		return s.runSpec(spec)
	}, nil
}
