package tracker

import (
	"math"

	"repro/internal/cat"
)

// CAT is the paper's scalable Misra-Gries tracker (Section 6.4): entries
// live in a Collision Avoidance Table, and each set carries a SetMin
// counter tracking the minimum access count in that set. The spill counter
// is compared against the SetMin counters (128 of them for the default
// 2x64-set geometry) instead of a fully associative counter search.
type CAT struct {
	threshold int64
	capacity  int
	spill     int64

	tab *cat.Table[int64] // row -> estimated count
	// setMin[ti][s] is the minimum count in set s of table ti, or
	// math.MaxInt64 when the set is empty.
	setMin [2][]int64
}

var _ Tracker = (*CAT)(nil)

// NewCAT creates a scalable tracker with the given CAT geometry, entry
// capacity and swap threshold. The geometry must have at least capacity
// slots; the paper uses 2x64 sets x 20 ways (2560 slots) for 1700 entries,
// i.e., 14 demand ways and 6 extra ways per set.
func NewCAT(spec cat.Spec, capacity int, threshold int64, seed uint64) *CAT {
	if capacity <= 0 || threshold <= 0 {
		panic("tracker: capacity and threshold must be positive")
	}
	if spec.Slots() < capacity {
		panic("tracker: CAT geometry smaller than tracker capacity")
	}
	t := &CAT{
		threshold: threshold,
		capacity:  capacity,
		tab:       cat.New[int64](spec, seed),
	}
	for ti := 0; ti < 2; ti++ {
		t.setMin[ti] = make([]int64, spec.Sets)
		for s := range t.setMin[ti] {
			t.setMin[ti][s] = math.MaxInt64
		}
	}
	return t
}

// recomputeSetMin rescans one set's counters.
func (t *CAT) recomputeSetMin(ti, s int) {
	min := int64(math.MaxInt64)
	t.tab.ForEachInSet(ti, s, func(_ uint64, v *int64) bool {
		if *v < min {
			min = *v
		}
		return true
	})
	t.setMin[ti][s] = min
}

// touch updates the SetMin counters of both candidate sets of row.
func (t *CAT) touch(row uint64) {
	s0, s1 := t.tab.SetsOf(row)
	t.recomputeSetMin(0, s0)
	t.recomputeSetMin(1, s1)
}

// globalMin scans the SetMin counters (the hardware does this in the
// shadow of the memory access; see the paper).
func (t *CAT) globalMin() int64 {
	min := int64(math.MaxInt64)
	for ti := 0; ti < 2; ti++ {
		for _, m := range t.setMin[ti] {
			if m < min {
				min = m
			}
		}
	}
	return min
}

// Observe implements Tracker.
func (t *CAT) Observe(row uint64) bool {
	if p := t.tab.Lookup(row); p != nil {
		prev := *p
		*p = prev + 1
		t.touch(row)
		return crossedMultiple(prev, prev+1, t.threshold)
	}
	// Installs never trigger (see the CAM implementation's comment: an
	// untracked row's true count is bounded by the spill counter < T).
	if t.tab.Len() < t.capacity {
		t.install(row, t.spill+1)
		return false
	}
	min := t.globalMin()
	if min > t.spill {
		t.spill++
		return false
	}
	// Replace an entry holding the minimum count: find a set whose SetMin
	// equals the global minimum and evict a minimum entry from it.
	victim, found := t.findMinEntry(min)
	if found {
		t.tab.Delete(victim)
		t.touch(victim)
	}
	t.install(row, t.spill+1)
	return false
}

// findMinEntry locates some entry whose count equals min.
func (t *CAT) findMinEntry(min int64) (row uint64, found bool) {
	for ti := 0; ti < 2 && !found; ti++ {
		for s, m := range t.setMin[ti] {
			if m != min {
				continue
			}
			t.tab.ForEachInSet(ti, s, func(key uint64, v *int64) bool {
				if *v == min {
					row, found = key, true
					return false
				}
				return true
			})
			if found {
				return row, true
			}
		}
	}
	return row, found
}

// install adds row at the given count; a CAT conflict (astronomically rare
// with 6 extra ways) falls back to dropping the install, which only makes
// the tracker more conservative about the spill bound on the next miss.
func (t *CAT) install(row uint64, cnt int64) {
	if t.tab.Install(row, cnt) != nil {
		t.touch(row)
	}
}

// Contains implements Tracker.
func (t *CAT) Contains(row uint64) bool { return t.tab.Contains(row) }

// Count implements Tracker.
func (t *CAT) Count(row uint64) (int64, bool) {
	if p := t.tab.Lookup(row); p != nil {
		return *p, true
	}
	return 0, false
}

// Spill implements Tracker.
func (t *CAT) Spill() int64 { return t.spill }

// Len implements Tracker.
func (t *CAT) Len() int { return t.tab.Len() }

// Capacity implements Tracker.
func (t *CAT) Capacity() int { return t.capacity }

// Threshold implements Tracker.
func (t *CAT) Threshold() int64 { return t.threshold }

// Reset implements Tracker. The hash keys stay fixed (as in hardware,
// where they are set at boot); only valid bits and counters clear.
func (t *CAT) Reset() {
	t.spill = 0
	t.tab.Clear()
	for ti := 0; ti < 2; ti++ {
		for s := range t.setMin[ti] {
			t.setMin[ti][s] = math.MaxInt64
		}
	}
}
