package tracker

import (
	"testing"

	"repro/internal/prince"
)

// TestObserveAllocFree pins the hot-path contract for both tracker
// implementations: Observe — hits, spill advances and evictions alike —
// performs no allocations in steady state (the CAM's candidate queue and
// the CAT's tables are preallocated at construction).
func TestObserveAllocFree(t *testing.T) {
	for name, tr := range both(64, 100) {
		t.Run(name, func(t *testing.T) {
			rng := prince.Seeded(9)
			rows := make([]uint64, 1024)
			for i := range rows {
				rows[i] = uint64(rng.Intn(4096))
			}
			for _, r := range rows {
				tr.Observe(r)
			}
			i := 0
			if avg := testing.AllocsPerRun(2000, func() {
				tr.Observe(rows[i%len(rows)])
				i++
			}); avg != 0 {
				t.Fatalf("Observe allocates %.2f allocs/run, want 0", avg)
			}
		})
	}
}
