package rit

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cat"
	"repro/internal/invariant"
)

// mustNew and mustInstall are shims for tests whose arguments are valid
// by construction.
func mustNew(spec cat.Spec, capacityTuples int, seed uint64) *RIT {
	r, err := New(spec, capacityTuples, seed)
	if err != nil {
		panic(err)
	}
	return r
}

func mustInstall(r *RIT, x, y uint64) (Eviction, bool) {
	ev, ok, err := r.Install(x, y)
	if err != nil {
		panic(err)
	}
	return ev, ok
}

func newSmall() *RIT {
	return mustNew(cat.Spec{Sets: 16, Ways: 10}, 64, 7)
}

func TestRemapIdentityWhenEmpty(t *testing.T) {
	r := newSmall()
	if got := r.Remap(42); got != 42 {
		t.Fatalf("Remap(42) = %d on empty RIT", got)
	}
}

func TestInstallRemapsBothDirections(t *testing.T) {
	r := newSmall()
	if _, ok := mustInstall(r, 3, 9); !ok {
		t.Fatal("install failed")
	}
	if got := r.Remap(3); got != 9 {
		t.Fatalf("Remap(3) = %d, want 9", got)
	}
	if got := r.Remap(9); got != 3 {
		t.Fatalf("Remap(9) = %d, want 3", got)
	}
	if r.Tuples() != 1 {
		t.Fatalf("Tuples = %d", r.Tuples())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLookup(t *testing.T) {
	r := newSmall()
	r.Install(3, 9)
	if p, ok := r.Lookup(3); !ok || p != 9 {
		t.Fatalf("Lookup(3) = %d,%v", p, ok)
	}
	if _, ok := r.Lookup(4); ok {
		t.Fatal("Lookup(4) found a tuple")
	}
}

func TestContains(t *testing.T) {
	r := newSmall()
	r.Install(3, 9)
	if !r.Contains(3) || !r.Contains(9) {
		t.Fatal("Contains must cover both tuple members")
	}
	if r.Contains(4) {
		t.Fatal("Contains(4) true")
	}
}

func TestRemove(t *testing.T) {
	r := newSmall()
	r.Install(3, 9)
	p, ok := r.Remove(9) // remove by either member
	if !ok || p != 3 {
		t.Fatalf("Remove(9) = %d,%v", p, ok)
	}
	if r.Contains(3) || r.Contains(9) {
		t.Fatal("entries linger after Remove")
	}
	if r.Tuples() != 0 {
		t.Fatalf("Tuples = %d", r.Tuples())
	}
	if _, ok := r.Remove(3); ok {
		t.Fatal("Remove of absent row succeeded")
	}
}

func TestInstallSelfSwapError(t *testing.T) {
	r := newSmall()
	if _, _, err := r.Install(5, 5); !errors.Is(err, ErrSelfSwap) {
		t.Fatalf("Install(5,5) err = %v, want ErrSelfSwap", err)
	}
}

func TestInstallOverExistingError(t *testing.T) {
	r := newSmall()
	r.Install(3, 9)
	if _, _, err := r.Install(9, 12); !errors.Is(err, ErrOccupied) {
		t.Fatalf("Install over live row err = %v, want ErrOccupied", err)
	}
	// The failed install must not have disturbed the existing tuple.
	if got := r.Remap(9); got != 3 {
		t.Fatalf("Remap(9) = %d after rejected install, want 3", got)
	}
}

func TestLockedTuplesNotEvicted(t *testing.T) {
	r := mustNew(cat.Spec{Sets: 16, Ways: 10}, 4, 7)
	for i := uint64(0); i < 4; i++ {
		if _, ok := mustInstall(r, i*2, i*2+1); !ok {
			t.Fatalf("install %d failed", i)
		}
	}
	// At capacity with everything locked: install must fail, not evict.
	if _, ok := mustInstall(r, 100, 101); ok {
		t.Fatal("install evicted a locked tuple")
	}
	if r.Tuples() != 4 {
		t.Fatalf("Tuples = %d", r.Tuples())
	}
}

func TestLazyEvictionAfterClearLocks(t *testing.T) {
	r := mustNew(cat.Spec{Sets: 16, Ways: 10}, 4, 7)
	for i := uint64(0); i < 4; i++ {
		r.Install(i*2, i*2+1)
	}
	r.ClearLocks()
	ev, ok := mustInstall(r, 100, 101)
	if !ok {
		t.Fatal("install after ClearLocks failed")
	}
	if !ev.Happened {
		t.Fatal("install at capacity did not evict")
	}
	ex, ey := ev.X, ev.Y
	lo, hi := ex, ey
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi != lo+1 || lo%2 != 0 || lo >= 8 {
		t.Fatalf("evicted unexpected tuple <%d,%d>", ex, ey)
	}
	if r.Contains(ex) || r.Contains(ey) {
		t.Fatal("evicted tuple still present")
	}
	if r.Tuples() != 4 {
		t.Fatalf("Tuples = %d, want 4", r.Tuples())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewlyInstalledStaysLockedAcrossEvictions(t *testing.T) {
	r := mustNew(cat.Spec{Sets: 16, Ways: 10}, 4, 7)
	for i := uint64(0); i < 4; i++ {
		r.Install(i*2, i*2+1)
	}
	r.ClearLocks()
	// Install 3 new (locked) tuples; each evicts an old one. The new ones
	// must survive.
	for i := uint64(0); i < 3; i++ {
		if _, ok := mustInstall(r, 100+i*2, 101+i*2); !ok {
			t.Fatalf("install %d failed", i)
		}
	}
	for i := uint64(0); i < 3; i++ {
		if !r.Contains(100 + i*2) {
			t.Fatalf("new tuple %d was evicted", i)
		}
	}
	if got := r.LockedTuples(); got != 3 {
		t.Fatalf("LockedTuples = %d, want 3", got)
	}
}

func TestEvictRandomUnlockedEmpty(t *testing.T) {
	r := newSmall()
	if _, _, ok := r.EvictRandomUnlocked(); ok {
		t.Fatal("eviction from empty RIT succeeded")
	}
}

func TestForEachTupleVisitsEachOnce(t *testing.T) {
	r := newSmall()
	want := map[[2]uint64]bool{}
	for i := uint64(0); i < 10; i++ {
		r.Install(i, 100+i)
		want[[2]uint64{i, 100 + i}] = true
	}
	got := map[[2]uint64]bool{}
	r.ForEachTuple(func(x, y uint64, locked bool) bool {
		if !locked {
			t.Fatalf("tuple <%d,%d> not locked", x, y)
		}
		if got[[2]uint64{x, y}] {
			t.Fatalf("tuple <%d,%d> visited twice", x, y)
		}
		got[[2]uint64{x, y}] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d tuples, want %d", len(got), len(want))
	}
}

func TestCapacityTooBigForGeometryError(t *testing.T) {
	if _, err := New(cat.Spec{Sets: 1, Ways: 2}, 100, 1); !errors.Is(err, invariant.ErrBadGeometry) {
		t.Fatalf("err = %v, want ErrBadGeometry", err)
	}
}

// TestPropertyInvolutionMaintained drives random install/remove/clear
// sequences and checks the involution invariant plus remap consistency
// against a map oracle.
func TestPropertyInvolutionMaintained(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		r := mustNew(cat.Spec{Sets: 16, Ways: 10}, 32, seed)
		oracle := map[uint64]uint64{}
		for _, op := range ops {
			x := uint64(op % 50)
			y := uint64(op%49) + 50
			switch op % 3 {
			case 0: // install if both free and capacity spare
				if _, inX := oracle[x]; inX {
					continue
				}
				if _, inY := oracle[y]; inY {
					continue
				}
				if len(oracle)/2 >= 32 {
					continue
				}
				if _, ok := mustInstall(r, x, y); ok {
					oracle[x], oracle[y] = y, x
				}
			case 1: // remove
				if p, ok := r.Remove(x); ok {
					if oracle[x] != p {
						return false
					}
					delete(oracle, x)
					delete(oracle, p)
				} else if _, present := oracle[x]; present {
					return false
				}
			case 2:
				r.ClearLocks()
			}
			if err := r.CheckInvariants(); err != nil {
				return false
			}
			if r.Tuples() != len(oracle)/2 {
				return false
			}
		}
		for k, v := range oracle {
			if r.Remap(k) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPaperGeometryHoldsFullCapacity(t *testing.T) {
	// Paper configuration: 3400 tuples in 2 x 256 sets x 20 ways.
	r := mustNew(cat.Spec{Sets: 256, Ways: 20}, 3400, 3)
	for i := 0; i < 3400; i++ {
		x := uint64(i)
		y := uint64(100000 + i)
		if _, ok := mustInstall(r, x, y); !ok {
			t.Fatalf("install %d failed in paper geometry", i)
		}
	}
	if r.Tuples() != 3400 {
		t.Fatalf("Tuples = %d", r.Tuples())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRemapHit(b *testing.B) {
	r := mustNew(cat.Spec{Sets: 256, Ways: 20}, 3400, 3)
	for i := 0; i < 3400; i++ {
		r.Install(uint64(i), uint64(100000+i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Remap(uint64(i % 3400))
	}
}

func BenchmarkRemapMiss(b *testing.B) {
	r := mustNew(cat.Spec{Sets: 256, Ways: 20}, 3400, 3)
	for i := 0; i < 3400; i++ {
		r.Install(uint64(i), uint64(100000+i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Remap(uint64(50000 + i%1000))
	}
}
