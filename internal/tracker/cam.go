package tracker

// CAM is the reference Misra-Gries tracker: a fully associative
// (content-addressable) table as used by Graphene. It keeps a histogram of
// counter values plus a rolling minimum so that the "is the minimum counter
// equal to the spill counter" test and minimum-entry replacement are O(1)
// amortized.
type CAM struct {
	threshold int64
	capacity  int
	spill     int64

	counts map[uint64]int64 // row -> estimated count
	hist   map[int64]int    // count value -> number of entries with it
	minVal int64            // min counter value over entries (valid if len>0)

	// anyAtMin caches one row id at the minimum count; rebuilt lazily.
	minScratch []uint64
}

var _ Tracker = (*CAM)(nil)

// NewCAM creates a reference tracker with the given entry capacity and
// swap threshold.
func NewCAM(capacity int, threshold int64) *CAM {
	if capacity <= 0 || threshold <= 0 {
		panic("tracker: capacity and threshold must be positive")
	}
	return &CAM{
		threshold: threshold,
		capacity:  capacity,
		counts:    make(map[uint64]int64, capacity),
		hist:      make(map[int64]int),
	}
}

// Observe implements Tracker.
func (c *CAM) Observe(row uint64) bool {
	if cnt, ok := c.counts[row]; ok {
		c.bump(row, cnt, cnt+1)
		return crossedMultiple(cnt, cnt+1, c.threshold)
	}
	// Installs never trigger: a row not in the table has a true count of
	// at most the spill counter, which the Misra-Gries sizing bounds by
	// W/(N+1) < T — so a freshly installed row cannot already have T true
	// activations. (Its estimate may start at spill+1 and cross a
	// multiple late by up to spill; the security analysis absorbs that
	// slack, and triggering on installs instead would cause swap storms
	// on flat access patterns once the spill counter saturates.)
	if len(c.counts) < c.capacity {
		c.insert(row, c.spill+1)
		return false
	}
	if c.minVal > c.spill {
		c.spill++
		return false
	}
	// minVal == spill (minVal < spill is impossible; see invariant below):
	// replace one minimum entry with the new row at count spill+1.
	victim := c.findMin()
	c.remove(victim, c.minVal)
	c.insert(row, c.spill+1)
	return false
}

// insert adds row with the given count and updates the histogram/min.
func (c *CAM) insert(row uint64, cnt int64) {
	c.counts[row] = cnt
	c.hist[cnt]++
	if len(c.counts) == 1 || cnt < c.minVal {
		c.minVal = cnt
	}
}

// remove drops row (which must have count cnt).
func (c *CAM) remove(row uint64, cnt int64) {
	delete(c.counts, row)
	c.hist[cnt]--
	if c.hist[cnt] == 0 {
		delete(c.hist, cnt)
		if cnt == c.minVal {
			c.advanceMin()
		}
	}
}

// bump moves row from count prev to count next.
func (c *CAM) bump(row uint64, prev, next int64) {
	c.counts[row] = next
	c.hist[prev]--
	c.hist[next]++
	if c.hist[prev] == 0 {
		delete(c.hist, prev)
		if prev == c.minVal {
			c.advanceMin()
		}
	}
}

// advanceMin walks minVal forward to the next populated histogram bucket.
// Counts only grow by one per observation, so the walk is O(1) amortized.
func (c *CAM) advanceMin() {
	if len(c.counts) == 0 {
		c.minVal = 0
		return
	}
	for c.hist[c.minVal] == 0 {
		c.minVal++
	}
}

// findMin returns some row with the minimum count. A scratch list of
// minimum-count candidates is rebuilt by scanning at most once per minimum
// value, so consecutive replacements at the same minimum are O(1).
func (c *CAM) findMin() uint64 {
	for len(c.minScratch) > 0 {
		row := c.minScratch[len(c.minScratch)-1]
		c.minScratch = c.minScratch[:len(c.minScratch)-1]
		if cnt, ok := c.counts[row]; ok && cnt == c.minVal {
			return row
		}
	}
	for row, cnt := range c.counts {
		if cnt == c.minVal {
			c.minScratch = append(c.minScratch, row)
		}
	}
	if len(c.minScratch) == 0 {
		panic("tracker: histogram out of sync with entries")
	}
	row := c.minScratch[len(c.minScratch)-1]
	c.minScratch = c.minScratch[:len(c.minScratch)-1]
	return row
}

// Contains implements Tracker.
func (c *CAM) Contains(row uint64) bool {
	_, ok := c.counts[row]
	return ok
}

// Count implements Tracker.
func (c *CAM) Count(row uint64) (int64, bool) {
	cnt, ok := c.counts[row]
	return cnt, ok
}

// Spill implements Tracker.
func (c *CAM) Spill() int64 { return c.spill }

// Len implements Tracker.
func (c *CAM) Len() int { return len(c.counts) }

// Capacity implements Tracker.
func (c *CAM) Capacity() int { return c.capacity }

// Threshold implements Tracker.
func (c *CAM) Threshold() int64 { return c.threshold }

// Reset implements Tracker.
func (c *CAM) Reset() {
	c.spill = 0
	c.minVal = 0
	c.minScratch = c.minScratch[:0]
	clear(c.counts)
	clear(c.hist)
}
