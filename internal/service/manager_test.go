package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// stubManager builds a manager whose runJob is replaced by fn, so
// scheduling behaviour is observable without real simulations. The
// substitution happens before any Submit, and the queue's mutex orders
// it before every worker read.
func stubManager(t *testing.T, opts Options,
	fn func(ctx context.Context, spec Spec, progress func(done, total int64)) (sim.Result, error)) *Manager {
	t.Helper()
	m := NewManager(opts)
	m.runJob = fn
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

// uniqueSpec returns a valid spec whose seed makes its hash unique.
func uniqueSpec(seed uint64) Spec {
	return Spec{Workloads: []string{"bzip2"}, Mitigation: MitRRS, Scale: 16, Epochs: 1, Seed: seed}
}

func waitDone(t *testing.T, j *Job) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Snapshot()
}

func TestFIFOCompletionOrder(t *testing.T) {
	// One worker, more jobs than workers: completions must follow
	// submission order exactly.
	var mu sync.Mutex
	var order []uint64
	m := stubManager(t, Options{Workers: 1, QueueDepth: 32},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			mu.Lock()
			order = append(order, spec.Seed)
			mu.Unlock()
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})

	const n = 8
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		j, err := m.Submit(uniqueSpec(uint64(i + 1)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for _, j := range jobs {
		v := waitDone(t, j)
		if v.State != StateDone {
			t.Fatalf("job %s state = %s (%s)", v.ID, v.State, v.Error)
		}
		if v.Progress != 1 {
			t.Errorf("job %s progress = %v, want 1", v.ID, v.Progress)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, seed := range order {
		if seed != uint64(i+1) {
			t.Fatalf("completion order %v is not FIFO", order)
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	m := stubManager(t, Options{Workers: 1},
		func(ctx context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			close(started)
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		})
	j, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if ok, err := m.Cancel(j.ID()); !ok || err != nil {
		t.Fatalf("Cancel = (%v, %v)", ok, err)
	}
	v := waitDone(t, j)
	if v.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	release := make(chan struct{})
	var runs sync.Map
	m := stubManager(t, Options{Workers: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			runs.Store(spec.Seed, true)
			<-release
			return sim.Result{}, nil
		})
	blocker, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(uniqueSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := m.Cancel(queued.ID()); !ok || err != nil {
		t.Fatalf("Cancel = (%v, %v)", ok, err)
	}
	if v := waitDone(t, queued); v.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", v.State)
	}
	close(release)
	waitDone(t, blocker)
	if _, ran := runs.Load(uint64(2)); ran {
		t.Error("cancelled queued job was still executed")
	}
}

func TestQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := stubManager(t, Options{Workers: 1, QueueDepth: 1},
		func(context.Context, Spec, func(int64, int64)) (sim.Result, error) {
			<-release
			return sim.Result{}, nil
		})
	if _, err := m.Submit(uniqueSpec(1)); err != nil { // claimed by the worker
		t.Fatal(err)
	}
	// Give the worker a moment to pop job 1 off the queue.
	deadline := time.Now().Add(2 * time.Second)
	for m.queue.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(uniqueSpec(2)); err != nil { // fills the queue
		t.Fatal(err)
	}
	_, err := m.Submit(uniqueSpec(3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit error = %v, want ErrQueueFull", err)
	}
	if got := m.Metrics().JSON().Counters["rrs_jobs_rejected_total"]; got != 1 {
		t.Errorf("rrs_jobs_rejected_total = %d, want 1", got)
	}
}

func TestJobTimeoutFails(t *testing.T) {
	m := stubManager(t, Options{Workers: 1, DefaultTimeout: 20 * time.Millisecond},
		func(ctx context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		})
	j, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, j)
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if v.Error == "" {
		t.Error("timeout produced no error message")
	}
}

func TestShutdownDrainsRunningCancelsQueued(t *testing.T) {
	started := make(chan struct{})
	m := NewManager(Options{Workers: 1})
	m.runJob = func(_ context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
		close(started)
		time.Sleep(50 * time.Millisecond)
		return sim.Result{IPC: 1}, nil
	}
	running, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker owns job 1; job 2 will sit in the queue
	queued, err := m.Submit(uniqueSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if v := running.Snapshot(); v.State != StateDone {
		t.Errorf("running job drained to %s, want done", v.State)
	}
	if v := queued.Snapshot(); v.State != StateCancelled {
		t.Errorf("queued job ended %s, want cancelled", v.State)
	}
	if _, err := m.Submit(uniqueSpec(3)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown = %v, want ErrClosed", err)
	}
}

func TestConcurrentSubmitListScrape(t *testing.T) {
	// Hammer the manager from many goroutines while scraping; run with
	// -race this is the service's main concurrency check.
	m := stubManager(t, Options{Workers: 4, QueueDepth: 256},
		func(_ context.Context, spec Spec, progress func(int64, int64)) (sim.Result, error) {
			progress(1, 2)
			progress(2, 2)
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	const n = 64
	var wg sync.WaitGroup
	jobs := make(chan *Job, n)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				j, err := m.Submit(uniqueSpec(uint64(g*100 + i + 1)))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobs <- j
			}
		}(g)
	}
	stop := make(chan struct{})
	observers := make(chan struct{})
	go func() { // concurrent observers
		defer close(observers)
		for {
			select {
			case <-stop:
				return
			default:
				m.List()
				m.Metrics().JSON()
			}
		}
	}()
	wg.Wait()
	for i := 0; i < n; i++ {
		waitDone(t, <-jobs)
	}
	close(stop)
	<-observers
	if got := m.Metrics().JSON().Counters["rrs_jobs_done_total"]; got != n {
		t.Errorf("rrs_jobs_done_total = %d, want %d", got, n)
	}
}

// TestCacheDeterminism runs a real (tiny) simulation twice and checks
// the second submission is answered from the cache with an identical
// result and no second run.
func TestCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	m := NewManager(Options{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	spec := Spec{Workloads: []string{"bzip2"}, Mitigation: MitRRS,
		Scale: 256, Epochs: 1, Cores: 2, Seed: 3}

	j1, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v1 := waitDone(t, j1)
	if v1.State != StateDone {
		t.Fatalf("first run %s: %s", v1.State, v1.Error)
	}
	if v1.CacheHit {
		t.Fatal("first run claims a cache hit")
	}

	j2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v2 := waitDone(t, j2)
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("second run state=%s cacheHit=%v, want instant cache hit", v2.State, v2.CacheHit)
	}

	r1, _ := j1.Result()
	r2, _ := j2.Result()
	if r1.IPC != r2.IPC || r1.Instructions != r2.Instructions ||
		r1.Accesses != r2.Accesses || r1.Cycles != r2.Cycles ||
		r1.MemStats != r2.MemStats || r1.SwapsPerEpoch != r2.SwapsPerEpoch {
		t.Errorf("cached result differs from computed result:\n%+v\n%+v", r1, r2)
	}

	counters := m.Metrics().JSON().Counters
	if counters["rrs_runs_started_total"] != 1 {
		t.Errorf("rrs_runs_started_total = %d, want 1 (cache must absorb the resubmission)",
			counters["rrs_runs_started_total"])
	}
	if counters["rrs_cache_hits_total"] != 1 {
		t.Errorf("rrs_cache_hits_total = %d, want 1", counters["rrs_cache_hits_total"])
	}
}

// TestForceParanoid: a server with ForceParanoid runs every job
// self-verifying, hashes it under the paranoid spec (so paranoid and
// plain submissions of the same knobs coalesce onto one job), and
// surfaces the mode in the job view.
func TestForceParanoid(t *testing.T) {
	var mu sync.Mutex
	var ran []Spec
	m := stubManager(t, Options{Workers: 1, ForceParanoid: true},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			mu.Lock()
			ran = append(ran, spec)
			mu.Unlock()
			return sim.Result{}, nil
		})

	plain := uniqueSpec(1)
	j, err := m.Submit(plain)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, j)
	if v.State != StateDone {
		t.Fatalf("job state %s: %s", v.State, v.Error)
	}
	if !v.Paranoid || !v.Spec.Paranoid {
		t.Fatalf("forced job view not marked paranoid: %+v", v)
	}
	forced := plain
	forced.Paranoid = true
	if j.Hash() != forced.Normalize().Hash() {
		t.Error("forced job hashed under the non-paranoid spec")
	}

	// An explicit paranoid submission of the same knobs is the same job:
	// answered from the cache, no second run.
	j2, err := m.Submit(forced)
	if err != nil {
		t.Fatal(err)
	}
	v2 := waitDone(t, j2)
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("paranoid resubmission state=%s cacheHit=%v, want cache hit", v2.State, v2.CacheHit)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 1 || !ran[0].Paranoid {
		t.Fatalf("ran %d specs (%+v), want exactly one paranoid run", len(ran), ran)
	}
}
