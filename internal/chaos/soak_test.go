package chaos

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// retarget rewrites every request onto the current backend URL, so one
// client survives the backend being torn down and restarted at a new
// address — the httptest analogue of a service DNS name outliving a
// process restart.
type retarget struct {
	mu     sync.Mutex
	target *url.URL
}

func (rt *retarget) set(t *testing.T, raw string) {
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatalf("retarget: %v", err)
	}
	rt.mu.Lock()
	rt.target = u
	rt.mu.Unlock()
}

func (rt *retarget) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	u := rt.target
	rt.mu.Unlock()
	r2 := req.Clone(req.Context())
	r2.URL.Scheme = u.Scheme
	r2.URL.Host = u.Host
	return http.DefaultTransport.RoundTrip(r2)
}

const poisonSeed = 666

// TestChaosSoakSweepSurvivesRestartAndPanic is the end-to-end soak the
// robustness work is accountable to: a 20-job sweep driven through a
// fault-injecting transport (drops, 5xx, latency) against a server whose
// workers flake transiently, with a simulated kill -9 and journal-replay
// restart mid-sweep. Every result must be delivered exactly once with
// the right payload, and a deterministically panicking spec must fail
// alone while the server keeps serving.
func TestChaosSoakSweepSurvivesRestartAndPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	path := filepath.Join(t.TempDir(), "jobs.journal")

	// Worker-side chaos: half the specs fail their first two runs with a
	// transient error (the manager's bounded retry must absorb them), and
	// the poison spec panics on every run. The wrapper is shared across
	// the restart, standing in for a deterministic engine: a spec that
	// already burned its injected failures stays fixed when replayed.
	exec := func(_ context.Context, spec service.Spec, progress func(int64, int64)) (sim.Result, error) {
		time.Sleep(40 * time.Millisecond)
		if progress != nil {
			progress(1, 1)
		}
		return sim.Result{IPC: float64(spec.Seed)}, nil
	}
	flaky := &FlakyRuns{
		Rate:         0.5,
		FailAttempts: 2,
		Seed:         17,
		PanicOn:      func(s service.Spec) bool { return s.Seed == poisonSeed },
	}
	newManager := func(j *service.Journal) *service.Manager {
		return service.NewManager(service.Options{
			Workers:    2,
			QueueDepth: 64,
			JobRetries: 3,
			Journal:    j,
			Run:        flaky.Wrap(exec),
		})
	}

	j1, rep0, err := service.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep0.Jobs) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(rep0.Jobs))
	}
	m1 := newManager(j1)
	srv1 := httptest.NewServer(service.Handler(m1))

	// Network-side chaos: ≥10% of requests are dropped or answered with a
	// synthetic 503, and some are delayed, all on a seeded schedule.
	rt := &retarget{}
	rt.set(t, srv1.URL)
	faults := NewTransport(Faults{
		Seed:      23,
		DropRate:  0.10,
		FailRate:  0.05,
		DelayRate: 0.15,
		MaxDelay:  2 * time.Millisecond,
	}, rt)
	client := service.NewClient("http://rrs-soak.invalid",
		service.WithHTTPClient(&http.Client{Transport: faults}),
		service.WithRetryPolicy(resilience.Policy{
			MaxAttempts: -1, // ride out the restart window
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		}))
	client.PollInterval = 5 * time.Millisecond

	const sweep = 20
	type outcome struct {
		seed uint64
		res  sim.Result
		err  error
	}
	results := make(chan outcome, sweep)
	for seed := uint64(1); seed <= sweep; seed++ {
		go func(seed uint64) {
			res, err := client.Run(ctx, chaosSpec(seed))
			results <- outcome{seed: seed, res: res, err: err}
		}(seed)
	}

	var m2 *service.Manager
	var pendingAtCrash int
	got := make(map[uint64]float64, sweep)
	for len(got) < sweep {
		select {
		case <-ctx.Done():
			t.Fatalf("soak timed out with %d/%d results; chaos stats: %v",
				len(got), sweep, statsLine(faults, flaky))
		case o := <-results:
			if o.err != nil {
				t.Fatalf("seed %d: %v", o.seed, o.err)
			}
			if _, dup := got[o.seed]; dup {
				t.Fatalf("seed %d delivered twice", o.seed)
			}
			got[o.seed] = o.res.IPC
		}

		if len(got) == 3 && m2 == nil {
			// kill -9: the journal stops cold, THEN the server vanishes.
			// The dying manager's in-memory wind-down below must not leak
			// terminal states the dead process never persisted.
			j1.Close()
			srv1.CloseClientConnections()
			srv1.Close()
			sctx, scancel := context.WithTimeout(context.Background(), 20*time.Second)
			m1.Shutdown(sctx)
			scancel()

			j2, rep, err := service.OpenJournal(path)
			if err != nil {
				t.Fatalf("reopening journal: %v", err)
			}
			defer j2.Close()
			pendingAtCrash = rep.Pending
			m2 = newManager(j2)
			if err := m2.Restore(rep); err != nil {
				t.Fatalf("restore: %v", err)
			}
			srv2 := httptest.NewServer(service.Handler(m2))
			defer srv2.Close()
			defer shutdownManager(t, m2)
			rt.set(t, srv2.URL)
		}
	}

	for seed := uint64(1); seed <= sweep; seed++ {
		if ipc, ok := got[seed]; !ok || ipc != float64(seed) {
			t.Errorf("seed %d: result (%v, %v), want IPC %d", seed, ipc, ok, seed)
		}
	}
	if pendingAtCrash == 0 {
		t.Error("restart replayed no pending jobs; the crash window closed before the sweep reached the server")
	}

	// The chaos actually happened: the wire faulted and workers flaked.
	reqs, dropped, failed, _ := faults.Stats()
	if dropped+failed == 0 {
		t.Errorf("no network faults injected across %d requests", reqs)
	}
	if injected, _ := flaky.Stats(); injected == 0 {
		t.Error("no worker-side transient failures injected")
	}

	// Poison: an injected worker panic fails its own job — visible to the
	// client as a terminal error, not a crash — and the server keeps
	// serving afterwards.
	_, err = client.Run(ctx, chaosSpec(poisonSeed))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("poison spec returned %v, want a worker-panic failure", err)
	}
	if n := m2.Metrics().JSON().Counters["rrs_worker_panics_total"]; n != 1 {
		t.Errorf("rrs_worker_panics_total = %d, want 1 (panics must not be retried)", n)
	}
	if err := client.Health(ctx); err != nil {
		t.Fatalf("server unhealthy after worker panic: %v", err)
	}
	if _, err := client.Run(ctx, chaosSpec(sweep+1)); err != nil {
		t.Fatalf("post-panic job failed: %v", err)
	}
}

func statsLine(tr *Transport, f *FlakyRuns) string {
	reqs, dropped, failed, delayed := tr.Stats()
	injected, panics := f.Stats()
	return strings.Join([]string{
		"requests=" + itoa(reqs), "dropped=" + itoa(dropped),
		"failed=" + itoa(failed), "delayed=" + itoa(delayed),
		"injected=" + itoa(injected), "panics=" + itoa(panics),
	}, " ")
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func shutdownManager(t *testing.T, m *service.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
