package dram

import (
	"repro/internal/invariant"
)

// EnableParanoid attaches the invariant engine: every subsequent
// SwapRows/CycleRows re-reads the involved rows after the transfer and
// reports a "dram/swap-conservation" violation on any lost or duplicated
// content. The per-swap check tally is registered with eng.
func (s *System) EnableParanoid(eng *invariant.Engine) {
	s.eng = eng
	eng.RegisterCounter("dram/swap-conservation", func() int64 { return s.swapChecks })
}

// CheckInvariants verifies the system's redundant bank state and returns
// a typed *invariant.Violation for the first breach:
//
//   - dram/structure: every dirty-list entry names a distinct row with a
//     nonzero activation count (the epoch-reset fast path clears exactly
//     the dirty rows, so a zero-count or duplicated entry means counts
//     would leak across epochs); the overflow map holds only rows past
//     the dense content bound; allocated dense tiers are sized to the
//     bound.
//
// Cost is O(dirty + overflow) per bank — never O(RowsPerBank).
func (s *System) CheckInvariants() error {
	for i := range s.banks {
		b := &s.banks[i]
		seen := make(map[int32]struct{}, len(b.dirty))
		for _, r := range b.dirty {
			if int(r) >= len(b.acts) {
				return invariant.Violatedf("dram/structure",
					"bank %d: dirty list names row %d beyond the bank's %d rows", i, r, len(b.acts))
			}
			if b.acts[r] == 0 {
				return invariant.Violatedf("dram/structure",
					"bank %d: dirty list names row %d, which has zero activations", i, r)
			}
			if _, dup := seen[r]; dup {
				return invariant.Violatedf("dram/structure",
					"bank %d: row %d appears twice in the dirty list", i, r)
			}
			seen[r] = struct{}{}
		}
		for r := range b.overflow {
			if r < s.denseRows {
				return invariant.Violatedf("dram/structure",
					"bank %d: overflow map holds row %d, inside the dense tier (bound %d)", i, r, s.denseRows)
			}
		}
		if b.content != nil && (len(b.content) != s.denseRows || len(b.written) != (s.denseRows+63)/64) {
			return invariant.Violatedf("dram/structure",
				"bank %d: dense tier sized %d/%d words, bound is %d rows", i, len(b.content), len(b.written), s.denseRows)
		}
	}
	return nil
}

// --- Test-only state corruption hooks ---
//
// Narrow mutators for the fault-injection suite; never called by
// production code.

// TearNextSwapForTest makes the next SwapRows skip its second write, so
// one row's content is silently lost — the fault the swap-conservation
// check exists to catch.
func (s *System) TearNextSwapForTest() { s.tearNextSwap = true }

// CorruptDirtyForTest appends row to the bank's dirty list without
// touching its activation count.
func (s *System) CorruptDirtyForTest(id BankID, row int) {
	b := s.BankState(id)
	b.dirty = append(b.dirty, int32(row))
}

// CorruptOverflowForTest plants a content tag for row in the bank's
// overflow map regardless of the dense bound.
func (s *System) CorruptOverflowForTest(id BankID, row int, v uint64) {
	b := s.BankState(id)
	if b.overflow == nil {
		b.overflow = make(map[int]uint64)
	}
	b.overflow[row] = v
}
