package sim

import (
	"fmt"
	"sync"

	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/trace"
)

// shardPlan is the deterministic decomposition of a configuration into
// independent sub-simulations. It depends only on the configuration —
// never on Options.Workers — so every worker count computes the same
// shards and hence the same statistics.
type shardPlan struct {
	// count is G, the number of shards.
	count int
	// bankBase[g] is shard g's first flat bank index in the full
	// system's channel-major order; bankCount[g] is its chunk size.
	bankBase, bankCount []int
	// cores[g] lists shard g's global core indices (round-robin).
	cores [][]int
}

// planShards decomposes cfg into G = min(Cores, total banks) shards:
// banks in contiguous channel-major chunks, cores round-robin so uneven
// counts stay balanced.
func planShards(cores, totalBanks int) shardPlan {
	g := cores
	if totalBanks < g {
		g = totalBanks
	}
	p := shardPlan{
		count:     g,
		bankBase:  make([]int, g),
		bankCount: make([]int, g),
		cores:     make([][]int, g),
	}
	base := 0
	for s := 0; s < g; s++ {
		p.bankBase[s] = base
		p.bankCount[s] = splitHotRows(totalBanks, g, s)
		base += p.bankCount[s]
		for c := s; c < cores; c += g {
			p.cores[s] = append(p.cores[s], c)
		}
	}
	return p
}

// progressAgg folds per-shard progress callbacks into one monotonic
// stream for the caller. Unlike the sequential path, callbacks arrive
// from shard goroutines; the aggregator serializes them under a mutex,
// so the caller's Progress still never runs concurrently with itself.
type progressAgg struct {
	mu           sync.Mutex
	done         []int64
	total        int64
	best         int64
	cycleBounded bool
	fn           func(done, total int64)
}

func (p *progressAgg) update(shard int, d int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done[shard] = d
	var agg int64
	if p.cycleBounded {
		// The run ends when the slowest shard reaches the cycle limit.
		agg = p.done[0]
		for _, v := range p.done[1:] {
			if v < agg {
				agg = v
			}
		}
	} else {
		for _, v := range p.done {
			agg += v
		}
	}
	if agg > p.total {
		agg = p.total
	}
	// Keep the reported stream monotonic even though shard callbacks
	// interleave arbitrarily.
	if agg < p.best {
		return
	}
	p.best = agg
	p.fn(agg, p.total)
}

// runParallel executes the bank-sharded parallel mode: G independent
// sub-simulations (disjoint banks, disjoint cores, private mitigation
// state) run on a pool of Options.Workers goroutines and their results
// are merged in shard order. See DESIGN.md §12 for the architecture and
// the argument why G is fixed by the configuration.
func runParallel(opts Options) (Result, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(opts.Workloads) == 0 {
		return Result{}, fmt.Errorf("sim: no workloads")
	}
	if opts.Readers != nil && len(opts.Readers) < cfg.Cores {
		return Result{}, fmt.Errorf("sim: %d readers for %d cores; Readers must supply one per core",
			len(opts.Readers), cfg.Cores)
	}

	totalBanks := cfg.Channels * cfg.Ranks * cfg.Banks
	plan := planShards(cfg.Cores, totalBanks)

	var agg *progressAgg
	if opts.Progress != nil {
		agg = &progressAgg{
			done:         make([]int64, plan.count),
			cycleBounded: opts.CycleLimit > 0,
			fn:           opts.Progress,
		}
		if opts.CycleLimit > 0 {
			agg.total = opts.CycleLimit
		} else {
			ipc := opts.InstructionsPerCore
			if ipc <= 0 {
				ipc = 1_000_000
			}
			agg.total = ipc * int64(cfg.Cores)
		}
	}

	shardOpts := make([]Options, plan.count)
	for g := range shardOpts {
		so := opts
		so.Workers = 0
		so.Progress = nil
		so.shard = &shardLayout{globalCores: plan.cores[g], totalCores: cfg.Cores}

		// The shard's sub-system: one channel, one rank, its bank chunk,
		// its share of the cores. Timing, epoch length and thresholds are
		// inherited, so per-bank behavior matches the full system.
		sub := cfg
		sub.Channels, sub.Ranks = 1, 1
		sub.Banks = plan.bankCount[g]
		sub.Cores = len(plan.cores[g])
		so.Config = sub

		// One workload (and reader) per local core, in global-core order,
		// so runSeq's i%len(Workloads) picks the same benchmark the
		// sequential path would assign that global core.
		so.Workloads = make([]trace.Workload, sub.Cores)
		if opts.Readers != nil {
			so.Readers = make([]trace.Reader, sub.Cores)
		}
		for j, gi := range plan.cores[g] {
			so.Workloads[j] = opts.Workloads[gi%len(opts.Workloads)]
			if opts.Readers != nil {
				so.Readers[j] = opts.Readers[gi]
			}
		}

		// The step budget splits across shards (earlier shards take the
		// remainder); every shard keeps at least 1 so a tiny budget still
		// stops every shard.
		if opts.MaxSteps > 0 {
			share := int64(splitHotRows(int(opts.MaxSteps), plan.count, g))
			if share < 1 {
				share = 1
			}
			so.MaxSteps = share
		}
		if agg != nil {
			shard := g
			so.Progress = func(done, _ int64) { agg.update(shard, done) }
		}
		shardOpts[g] = so
	}

	// Worker pool: shard indices drain through a channel; results land in
	// shard-indexed slots so the merge below is order-deterministic no
	// matter how the pool schedules.
	workers := opts.Workers
	if workers > plan.count {
		workers = plan.count
	}
	results := make([]Result, plan.count)
	serieses := make([]runSeries, plan.count)
	errs := make([]error, plan.count)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				results[g], serieses[g], errs[g] = runSeq(shardOpts[g])
			}
		}()
	}
	for g := 0; g < plan.count; g++ {
		work <- g
	}
	close(work)
	wg.Wait()

	// The lowest-index shard's error wins, deterministically.
	for g, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("sim: shard %d: %w", g, err)
		}
	}
	return mergeShardResults(opts, plan, results, serieses), nil
}

// mergeShardResults folds per-shard results in shard-index order into
// one full-system Result. Counters sum; Cycles is the slowest shard; IPC
// weights each shard by its core count; per-epoch series align by epoch
// index; refresh and background energy are recomputed for the full
// topology. Result.Mitigation is nil — there is no single mitigation
// instance in parallel mode.
func mergeShardResults(opts Options, plan shardPlan, results []Result, serieses []runSeries) Result {
	cfg := opts.Config
	var res Result
	var ipcWeighted float64
	energyParts := make([]power.Breakdown, len(results))
	for g, r := range results {
		res.Instructions += r.Instructions
		res.Accesses += r.Accesses
		if r.Cycles > res.Cycles {
			res.Cycles = r.Cycles
		}
		ipcWeighted += r.IPC * float64(len(plan.cores[g]))

		res.MemStats.Reads += r.MemStats.Reads
		res.MemStats.Writes += r.MemStats.Writes
		res.MemStats.RowHits += r.MemStats.RowHits
		res.MemStats.RowMisses += r.MemStats.RowMisses
		res.MemStats.RowConflicts += r.MemStats.RowConflicts
		res.MemStats.TotalLatency += r.MemStats.TotalLatency
		res.MemStats.ActDelayed += r.MemStats.ActDelayed
		if r.MemStats.Epochs > res.MemStats.Epochs {
			res.MemStats.Epochs = r.MemStats.Epochs
		}
		energyParts[g] = r.Energy
	}
	res.IPC = ipcWeighted / float64(cfg.Cores)
	res.Epochs = res.MemStats.Epochs
	if res.Instructions > 0 {
		res.MPKI = float64(res.Accesses) / float64(res.Instructions) * 1000
	}

	// Per-epoch series: epoch e's system-wide value is the sum of every
	// shard's sample for e; shards that stopped earlier contribute
	// nothing to later epochs. The divisor is the deepest shard's epoch
	// count, matching the sequential definition "average over completed
	// epochs".
	var hotSum, swapSum, epochSwaps int64
	var hotEpochs, swapEpochs int
	for _, s := range serieses {
		for _, v := range s.hotRows {
			hotSum += v
		}
		if len(s.hotRows) > hotEpochs {
			hotEpochs = len(s.hotRows)
		}
		for _, v := range s.swaps {
			swapSum += v
		}
		if len(s.swaps) > swapEpochs {
			swapEpochs = len(s.swaps)
		}
		epochSwaps += s.epochSwaps
	}
	if hotEpochs > 0 {
		res.HotRowsPerEpoch = float64(hotSum) / float64(hotEpochs)
	}
	if swapEpochs > 0 {
		res.SwapsPerEpoch = float64(swapSum) / float64(swapEpochs)
	} else {
		res.SwapsPerEpoch = float64(epochSwaps)
	}

	res.Energy = power.DefaultDRAMEnergy().MergeShards(energyParts, cfg, res.Cycles)

	if opts.Paranoid || envParanoid() {
		parts := make([]invariant.Summary, 0, len(results))
		for _, r := range results {
			if r.Invariants != nil {
				parts = append(parts, *r.Invariants)
			}
		}
		merged := invariant.MergeSummaries(parts)
		res.Invariants = &merged
	}
	if opts.Events != nil {
		parts := make([]*obs.Timeline, len(results))
		for g, r := range results {
			r.Timeline.OffsetBanks(int32(plan.bankBase[g]))
			parts[g] = r.Timeline
		}
		res.Timeline = obs.MergeTimelines(parts)
	}
	return res
}
