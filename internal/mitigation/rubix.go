package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// Rubix models the randomized-mapping defense of arXiv 2308.14907: a
// static keyed permutation of the line/row address space installed at
// boot, so that rows adjacent in the attacker's logical view land in
// unrelated physical slots. The attacker can still hammer — physical
// adjacency exists wherever data is stored — so Rubix (like the paper)
// pairs the scrambled map with a lightweight probabilistic refresh of
// the physical neighbours, at PARA's rate for the configured threshold.
//
// Simplifications versus the paper, documented in DESIGN.md §11: the
// permutation is modeled per-bank at row granularity (the paper encrypts
// line addresses; at the simulator's row-level fault model the two
// collapse), and there is no periodic re-keying within a run.
type Rubix struct {
	verifier
	observer
	sys  *dram.System
	cfg  config.Config
	prob float64
	rng  *prince.CTR
	// perm maps logical row -> physical row per bank; inv is its inverse.
	perm [][]int32
	inv  [][]int32
	// keyPenalty is the per-access address-scrambling latency, modeled
	// like the RIT lookup.
	keyPenalty int64
	stat       VictimStats
}

// NewRubix builds the boot-time permutation from seed and refreshes
// physical neighbours with probability prob per activation.
func NewRubix(sys *dram.System, prob float64, seed uint64) *Rubix {
	if prob < 0 || prob > 1 {
		panic("mitigation: Rubix probability out of range")
	}
	cfg := sys.Config()
	nBanks := cfg.Channels * cfg.Ranks * cfg.Banks
	r := &Rubix{
		sys:        sys,
		cfg:        cfg,
		prob:       prob,
		rng:        prince.Seeded(seed),
		perm:       make([][]int32, nBanks),
		inv:        make([][]int32, nBanks),
		keyPenalty: int64(float64(cfg.RITLatencyCPUCycles)/config.CPUCyclesPerBusCycle + 0.5),
	}
	keys := prince.Seeded(seed ^ 0x5275_6269_78)
	for b := range r.perm {
		perm := make([]int32, cfg.RowsPerBank)
		for i := range perm {
			perm[i] = int32(i)
		}
		// Fisher-Yates with a per-bank keyed generator: the installed map
		// is uniform over permutations and reproducible from the seed.
		rng := prince.NewCTR(keys.Next(), keys.Next())
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		inv := make([]int32, cfg.RowsPerBank)
		for l, p := range perm {
			inv[p] = int32(l)
		}
		r.perm[b], r.inv[b] = perm, inv
	}
	return r
}

// Stats returns refresh activity counts.
func (r *Rubix) Stats() VictimStats { return r.stat }

// Remap implements memctrl.Mitigation: the keyed scramble.
func (r *Rubix) Remap(id dram.BankID, row int) int {
	return int(r.perm[bankIndex(r.cfg, id)][row])
}

// Occupant returns the logical row mapped onto the physical slot
// (attack.OccupantFinder); for Rubix the map is static.
func (r *Rubix) Occupant(id dram.BankID, physRow int) int {
	return int(r.inv[bankIndex(r.cfg, id)][physRow])
}

// ActivateDelay implements memctrl.Mitigation; Rubix never throttles.
func (r *Rubix) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation: the address-scrambler
// latency on every access.
func (r *Rubix) AccessPenalty() int64 { return r.keyPenalty }

// OnEpoch implements memctrl.Mitigation; the static map carries no
// windowed state.
func (r *Rubix) OnEpoch(int64) {}

// OnActivate implements memctrl.Mitigation: probabilistically refresh the
// *physical* neighbours of the activated slot. Headroom is zero — a
// probabilistic defense provides no deterministic inertness window.
func (r *Rubix) OnActivate(id dram.BankID, row, physRow int, now int64) memctrl.ActResult {
	if r.rng.Float64() >= r.prob {
		return memctrl.ActResult{}
	}
	n := refreshPair(r.sys, id, physRow, now)
	r.stat.Mitigations++
	r.stat.Refreshes += int64(n)
	r.recordRefresh(int32(bankIndex(r.cfg, id)), physRow, n, now)
	return memctrl.ActResult{BankBlock: victimRefreshCost(r.cfg, n)}
}

// EnableParanoid attaches the shared DRAM checks plus Rubix's structural
// catalog: the boot-time map must remain a bijection.
func (r *Rubix) EnableParanoid(eng *invariant.Engine) {
	r.attach(eng, r.sys)
	eng.Register("rubix/permutation", r.CheckInvariants)
}

// CheckInvariants verifies every bank's perm/inv pair is mutually
// inverse. The map is immutable after construction, so a violation means
// memory corruption, not a logic race.
func (r *Rubix) CheckInvariants() error {
	for b := range r.perm {
		perm, inv := r.perm[b], r.inv[b]
		for l, p := range perm {
			if p < 0 || int(p) >= len(inv) {
				return invariant.Violatedf("rubix/permutation",
					"bank %d: perm[%d] = %d out of range", b, l, p)
			}
			if int(inv[p]) != l {
				return invariant.Violatedf("rubix/permutation",
					"bank %d: inv[perm[%d]=%d] = %d, want %d", b, l, p, inv[p], l)
			}
		}
	}
	return nil
}
