//go:build !race

package chaos

const raceEnabled = false
