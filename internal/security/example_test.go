package security_test

import (
	"fmt"

	"repro/internal/security"
)

// ExamplePaperModel reproduces the headline of the paper's Table 4: with
// the chosen swap threshold T = 800 (k = 6), the optimal attacker needs
// years of continuous hammering for one bit flip.
func ExamplePaperModel() {
	m := security.PaperModel(800)
	fmt.Printf("k = %d swaps needed on one row\n", m.K())
	fmt.Printf("attack time: %s\n", security.FormatDuration(m.AttackSeconds()))
	// Output:
	// k = 6 swaps needed on one row
	// attack time: 3.8 years
}

// ExampleDutyCycle shows the paper's duty-cycle figures: a single-bank
// attack leaves the bank 92.5% available; attacking all 8 banks of a
// channel serializes their swaps on the shared bus.
func ExampleDutyCycle() {
	single := security.DutyCycle(800, 45e-9, 2.9e-6, 1)
	all := security.DutyCycle(800, 45e-9, 2.9e-6, 8)
	fmt.Printf("single-bank: %.3f\n", single)
	fmt.Printf("all-bank:    %.3f\n", all)
	// Output:
	// single-bank: 0.925
	// all-bank:    0.608
}
