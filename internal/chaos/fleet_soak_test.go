package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// hostmap is a virtual-host transport for a whole fleet: every request
// to http://<host>/ is rewritten onto that host's current backend URL.
// Setting a host's backend to "" simulates the machine being off the
// network (connection refused), and re-pointing it models a process
// restarting on the same DNS name — which is exactly how a fleet roster
// outlives its members.
type hostmap struct {
	mu      sync.Mutex
	targets map[string]string
}

func newHostmap() *hostmap { return &hostmap{targets: make(map[string]string)} }

func (h *hostmap) set(host, base string) {
	h.mu.Lock()
	h.targets[host] = base
	h.mu.Unlock()
}

func (h *hostmap) RoundTrip(req *http.Request) (*http.Response, error) {
	h.mu.Lock()
	base := h.targets[req.URL.Host]
	h.mu.Unlock()
	if base == "" {
		return nil, fmt.Errorf("chaos: host %s is down", req.URL.Host)
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, err
	}
	r2 := req.Clone(req.Context())
	r2.URL.Scheme = u.Scheme
	r2.URL.Host = u.Host
	return http.DefaultTransport.RoundTrip(r2)
}

// fleetNode bundles one member's process-level pieces, mirroring what
// cmd/rrs-serve wires together: journal, manager, fleet node, listener.
type fleetNode struct {
	self    fleet.Peer
	journal *service.Journal
	replay  *service.Replayed
	node    *fleet.Node
	mgr     *service.Manager
	srv     *httptest.Server
}

// bootFleetNode is one process start: replay the journal, join the
// roster, listen, and point the node's virtual host at the listener.
// mod tweaks the options before fleet.New (nil keeps the stock shape).
func bootFleetNode(t *testing.T, hm *hostmap, roster []fleet.Peer, self fleet.Peer, jpath string, mod func(o *fleet.Options)) *fleetNode {
	t.Helper()
	j, rep, err := service.OpenJournal(jpath)
	if err != nil {
		t.Fatalf("%s: journal: %v", self.ID, err)
	}
	opts := fleet.Options{
		Self:    self,
		Peers:   roster,
		Service: service.Options{Workers: 1, QueueDepth: 64, Journal: j},
		HTTPClient: &http.Client{
			Transport: hm,
			Timeout:   10 * time.Second,
		},
		Retry:         resilience.Policy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Rise:          1,
		Fall:          2,
		StealInterval: 100 * time.Millisecond,
		LeaseTimeout:  10 * time.Second,
	}
	if mod != nil {
		mod(&opts)
	}
	node, err := fleet.New(opts)
	if err != nil {
		t.Fatalf("%s: fleet.New: %v", self.ID, err)
	}
	mgr := node.Manager()
	if err := mgr.Restore(rep); err != nil {
		t.Fatalf("%s: restore: %v", self.ID, err)
	}
	srv := httptest.NewServer(node.Handler())
	hm.set(hostOf(t, self.URL), srv.URL)
	node.Start()
	return &fleetNode{self: self, journal: j, replay: rep, node: node, mgr: mgr, srv: srv}
}

// kill is kill -9: the WAL stops cold first, then the listener vanishes
// and the host drops off the network. The dying process's in-memory
// wind-down below must not leak terminal states it never persisted.
func (n *fleetNode) kill(t *testing.T, hm *hostmap) {
	t.Helper()
	n.journal.Close()
	n.srv.CloseClientConnections()
	n.srv.Close()
	hm.set(hostOf(t, n.self.URL), "")
	n.node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n.mgr.Shutdown(ctx)
}

func (n *fleetNode) stop(t *testing.T) {
	t.Helper()
	n.node.Close()
	n.srv.Close()
	shutdownManager(t, n.mgr)
	n.journal.Close()
}

func hostOf(t *testing.T, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatalf("hostOf(%q): %v", raw, err)
	}
	return u.Host
}

func fleetSpec(seed uint64) service.Spec {
	return service.Spec{Workloads: []string{"bzip2"}, Mitigation: service.MitRRS,
		Scale: 16, Epochs: 1, Seed: seed}
}

func fleetCounter(n *fleetNode, name string) int64 {
	return n.mgr.Metrics().JSON().Counters[name]
}

// TestFleetSoakKillMinusNine is the fleet-mode companion to the
// single-node soak: a 9-job sweep of real simulations driven through
// three fleet members via a light fault-injecting transport, with one
// member kill -9'd mid-sweep and restarted from its journal on the same
// roster name. Every seed must be delivered exactly once, bit-identical
// to a reference service.RunSpec run, and the fleet-wide result cache
// must answer a node that never ran a spec from a peer that did.
func TestFleetSoakKillMinusNine(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sweep, budget := uint64(9), 150*time.Second
	if raceEnabled {
		sweep, budget = 6, 8*time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	// Reference results from the plain engine: the fleet must reproduce
	// these byte-for-byte regardless of which nodes ran what, how often
	// a job re-ran after the crash, or who answered from cache.
	ref := make(map[uint64][]byte, sweep)
	for seed := uint64(1); seed <= sweep; seed++ {
		res, err := service.RunSpec(ctx, fleetSpec(seed), nil)
		if err != nil {
			t.Fatalf("reference seed %d: %v", seed, err)
		}
		// The manager folds each run's timeline into its metrics and
		// serves the result without it; normalize the reference the same
		// way so the comparison is over the simulation payload.
		res.Timeline = nil
		ref[seed] = mustJSON(t, res)
	}

	dir := t.TempDir()
	roster := []fleet.Peer{
		{ID: "n1", URL: "http://n1.rrs-fleet.invalid"},
		{ID: "n2", URL: "http://n2.rrs-fleet.invalid"},
		{ID: "n3", URL: "http://n3.rrs-fleet.invalid"},
	}
	hm := newHostmap()
	// Replication off: this soak pins the pre-replication failover story —
	// a killed node's work is genuinely re-run and must still be delivered
	// exactly once, bit-identical. The replica soak covers the
	// zero-re-run path.
	noReplicas := func(o *fleet.Options) {
		o.ReplicationQueue = -1
		o.RepairInterval = -1
	}
	nodes := make([]*fleetNode, len(roster))
	for i, p := range roster {
		nodes[i] = bootFleetNode(t, hm, roster, p,
			filepath.Join(dir, p.ID+".journal"), noReplicas)
		if len(nodes[i].replay.Jobs) != 0 {
			t.Fatalf("%s: fresh journal replayed %d jobs", p.ID, len(nodes[i].replay.Jobs))
		}
	}

	// Clients pin to one entry node each and ride out the crash window
	// on unbounded retries; the wire between them and the fleet drops
	// and 503s a slice of requests on a seeded schedule.
	faults := NewTransport(Faults{
		Seed:      31,
		DropRate:  0.05,
		FailRate:  0.05,
		DelayRate: 0.10,
		MaxDelay:  2 * time.Millisecond,
	}, hm)
	clients := make([]*service.Client, len(roster))
	for i, p := range roster {
		clients[i] = service.NewClient(p.URL,
			service.WithHTTPClient(&http.Client{Transport: faults}),
			service.WithRetryPolicy(resilience.Policy{
				MaxAttempts: -1,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
			}))
		clients[i].PollInterval = 10 * time.Millisecond
	}

	type outcome struct {
		seed uint64
		res  sim.Result
		err  error
	}
	results := make(chan outcome, sweep)
	for seed := uint64(1); seed <= sweep; seed++ {
		go func(seed uint64) {
			res, err := clients[int(seed)%len(clients)].Run(ctx, fleetSpec(seed))
			results <- outcome{seed: seed, res: res, err: err}
		}(seed)
	}

	var jobsAtCrash, pendingAtCrash int
	killed := false
	got := make(map[uint64][]byte, sweep)
	for uint64(len(got)) < sweep {
		select {
		case <-ctx.Done():
			t.Fatalf("fleet soak timed out with %d/%d results", len(got), sweep)
		case o := <-results:
			if o.err != nil {
				t.Fatalf("seed %d: %v", o.seed, o.err)
			}
			if _, dup := got[o.seed]; dup {
				t.Fatalf("seed %d delivered twice", o.seed)
			}
			got[o.seed] = mustJSON(t, o.res)
		}

		if len(got) == 2 && !killed {
			killed = true
			// kill -9 n1 mid-sweep, then restart it from its journal on
			// the same roster name. While it is dark, the survivors'
			// failure detectors shrink the ring around it, proxied polls
			// for its jobs 404 into the clients' resubmit recovery, and
			// after the restart its journal replays every accepted job
			// that never reached a terminal record.
			nodes[0].kill(t, hm)
			// Keep n1 dark until both survivors' failure detectors have
			// evicted it — the sweep must visibly run on a shrunken ring
			// before the replacement process comes up.
			evicted := time.Now().Add(30 * time.Second)
			for fleetCounter(nodes[1], "rrs_fleet_peer_flaps_total") == 0 ||
				fleetCounter(nodes[2], "rrs_fleet_peer_flaps_total") == 0 {
				if time.Now().After(evicted) {
					t.Fatal("survivors never evicted the killed node")
				}
				time.Sleep(5 * time.Millisecond)
			}
			nodes[0] = bootFleetNode(t, hm, roster, roster[0],
				filepath.Join(dir, roster[0].ID+".journal"), noReplicas)
			jobsAtCrash = len(nodes[0].replay.Jobs)
			pendingAtCrash = nodes[0].replay.Pending
		}
	}
	for _, n := range nodes {
		defer n.stop(t)
	}

	for seed := uint64(1); seed <= sweep; seed++ {
		if !bytes.Equal(got[seed], ref[seed]) {
			t.Errorf("seed %d: fleet result diverged from reference\n fleet: %s\n   ref: %s",
				seed, got[seed], ref[seed])
		}
	}
	if !killed {
		t.Fatal("crash window never opened")
	}
	if jobsAtCrash == 0 {
		t.Error("restarted node replayed no journal records; the crash predates any accepted work")
	}
	t.Logf("n1 journal at crash: %d jobs, %d pending", jobsAtCrash, pendingAtCrash)

	// The fleet actually fleeted: submissions crossed nodes and the
	// survivors saw n1's death (and rebirth) as routability flips.
	var forwards, proxied, flaps int64
	for _, n := range nodes {
		forwards += fleetCounter(n, "rrs_fleet_forwards_total")
		proxied += fleetCounter(n, "rrs_fleet_proxied_total")
	}
	for _, n := range nodes[1:] {
		flaps += fleetCounter(n, "rrs_fleet_peer_flaps_total")
	}
	if forwards == 0 {
		t.Error("no submissions were forwarded to their ring owner")
	}
	if proxied == 0 {
		t.Error("no job polls were proxied to their home node")
	}
	if flaps == 0 {
		t.Error("survivors never saw n1 flap despite the kill/restart")
	}

	// Fleet-wide cache: run a fresh spec on n2 only (through its local,
	// unrouted API), then submit the same spec to n3's local API. n3 has
	// never run it, so its pre-run fan-out must find n2's cached result
	// instead of simulating again.
	localSpec := fleetSpec(100)
	local2 := service.NewClient(roster[1].URL+"/v1/fleet/local",
		service.WithHTTPClient(&http.Client{Transport: hm}))
	local3 := service.NewClient(roster[2].URL+"/v1/fleet/local",
		service.WithHTTPClient(&http.Client{Transport: hm}))
	local2.PollInterval = 10 * time.Millisecond
	local3.PollInterval = 10 * time.Millisecond
	first, err := local2.Run(ctx, localSpec)
	if err != nil {
		t.Fatalf("priming run on n2: %v", err)
	}
	hitsBefore := fleetCounter(nodes[2], "rrs_fleet_cache_fanout_hits_total")
	second, err := local3.Run(ctx, localSpec)
	if err != nil {
		t.Fatalf("cached run on n3: %v", err)
	}
	if !bytes.Equal(mustJSON(t, first), mustJSON(t, second)) {
		t.Error("n3's fleet-cache answer differs from n2's original result")
	}
	if hits := fleetCounter(nodes[2], "rrs_fleet_cache_fanout_hits_total"); hits != hitsBefore+1 {
		t.Errorf("n3 fan-out hits = %d, want %d (one hit for the primed spec)",
			hits, hitsBefore+1)
	}

	reqs, dropped, failed, _ := faults.Stats()
	if dropped+failed == 0 {
		t.Errorf("no network faults injected across %d client requests", reqs)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}
