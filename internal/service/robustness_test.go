package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/resilience"
	"repro/internal/sim"
)

func counter(m *Manager, name string) int64 {
	return m.Metrics().JSON().Counters[name]
}

func TestWorkerPanicIsolatesJob(t *testing.T) {
	m := stubManager(t, Options{Workers: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			if spec.Seed == 666 {
				panic("engine bug")
			}
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	poison, err := m.Submit(uniqueSpec(666))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, poison)
	if v.State != StateFailed || !strings.Contains(v.Error, "panic") {
		t.Fatalf("poison job = %s (%s), want failed with a panic message", v.State, v.Error)
	}
	if v.Attempts != 1 {
		t.Errorf("poison attempts = %d; panics must not be retried", v.Attempts)
	}
	if n := counter(m, "rrs_worker_panics_total"); n != 1 {
		t.Errorf("rrs_worker_panics_total = %d, want 1", n)
	}
	// The worker that recovered the panic keeps serving.
	after, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, after); v.State != StateDone {
		t.Fatalf("job after panic = %s (%s)", v.State, v.Error)
	}
}

func TestTransientFailureRetriedToSuccess(t *testing.T) {
	runs := 0
	m := stubManager(t, Options{Workers: 1, JobRetries: 2},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			runs++
			if runs <= 2 {
				return sim.Result{}, resilience.MarkTransient(errors.New("blip"))
			}
			return sim.Result{IPC: 7}, nil
		})
	j, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, j)
	if v.State != StateDone {
		t.Fatalf("job = %s (%s), want done after retries", v.State, v.Error)
	}
	if v.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two transient failures + success)", v.Attempts)
	}
	if n := counter(m, "rrs_job_retries_total"); n != 2 {
		t.Errorf("rrs_job_retries_total = %d, want 2", n)
	}
}

func TestTransientFailureExhaustsRetryBudget(t *testing.T) {
	m := stubManager(t, Options{Workers: 1, JobRetries: 1},
		func(context.Context, Spec, func(int64, int64)) (sim.Result, error) {
			return sim.Result{}, resilience.MarkTransient(errors.New("always down"))
		})
	j, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, j)
	if v.State != StateFailed || !strings.Contains(v.Error, "always down") {
		t.Fatalf("job = %s (%s), want failed with the last error", v.State, v.Error)
	}
	if v.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (first run + one retry)", v.Attempts)
	}
}

func TestPermanentFailureNotRetried(t *testing.T) {
	m := stubManager(t, Options{Workers: 1, JobRetries: 3},
		func(context.Context, Spec, func(int64, int64)) (sim.Result, error) {
			return sim.Result{}, errors.New("deterministic engine error")
		})
	j, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, j)
	if v.State != StateFailed || v.Attempts != 1 {
		t.Fatalf("job = %s after %d attempts, want failed first try", v.State, v.Attempts)
	}
	if n := counter(m, "rrs_job_retries_total"); n != 0 {
		t.Errorf("rrs_job_retries_total = %d, want 0", n)
	}
}

func TestSubmitCoalescesOntoInflightJob(t *testing.T) {
	release := make(chan struct{})
	m := stubManager(t, Options{Workers: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			<-release
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	first, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	// A retried POST after a dropped response lands here: same hash while
	// the job is still in flight must return the same job, not a second
	// simulation.
	second, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("duplicate submit created a new job: %s vs %s", first.ID(), second.ID())
	}
	if n := counter(m, "rrs_jobs_coalesced_total"); n != 1 {
		t.Errorf("rrs_jobs_coalesced_total = %d, want 1", n)
	}
	close(release)
	waitDone(t, first)

	// Once the job is terminal its result is served by the cache instead;
	// the inflight entry must be gone, so this is a cache-hit job.
	third, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if third == first {
		t.Fatal("terminal job still coalescing new submissions")
	}
	if v := waitDone(t, third); !v.CacheHit {
		t.Errorf("post-completion resubmit = %+v, want a cache hit", v)
	}
}

func TestRunSyncReturnsResultWhenCancelRacesCompletion(t *testing.T) {
	m := stubManager(t, Options{Workers: 1}, instantRun)
	spec := uniqueSpec(1)
	if _, err := m.RunSync(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	// The job is now a cache hit: born done. A context that expires at
	// the same moment must still deliver the finished result — the
	// shutdown-race fix re-checks Done() after Cancel instead of
	// discarding a completed simulation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 50; i++ { // exercise both select arms
		res, err := m.RunSync(ctx, spec)
		if err != nil {
			t.Fatalf("iteration %d: RunSync dropped a completed result: %v", i, err)
		}
		if res.IPC != float64(spec.Seed) {
			t.Fatalf("iteration %d: IPC = %v", i, res.IPC)
		}
	}
}

func TestSubmitOversizeBodyRejected(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1}, instantRun)
	big := append([]byte(`{"workloads":["`), bytes.Repeat([]byte("a"), maxSpecBytes)...)
	big = append(big, []byte(`"]}`)...)
	resp, err := http.Post(srv.URL+apiPrefix, "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "exceeds") {
		t.Errorf("body %q does not name the limit", raw)
	}
}

func TestBackpressureCarriesRetryAfter(t *testing.T) {
	// started is buffered for every job this test enqueues: once release
	// is closed, the worker may claim the still-queued second job before
	// shutdown closes the queue, and an unbuffered send would wedge the
	// stub — ignoring its context — past Shutdown's force-cancel.
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	srv, _ := newTestServer(t, Options{Workers: 1, QueueDepth: 1},
		func(_ context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			started <- struct{}{}
			<-release
			return sim.Result{}, nil
		})
	defer close(release)

	post := func(seed uint64) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"workloads":["bzip2"],"scale":16,"epochs":1,"seed":%d}`, seed)
		resp, err := http.Post(srv.URL+apiPrefix, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := post(1) // claimed by the only worker…
	defer first.Body.Close()
	<-started
	second := post(2) // …fills the depth-1 queue…
	defer second.Body.Close()
	third := post(3) // …so this one must be shed with a wait hint.
	defer third.Body.Close()
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", third.StatusCode)
	}
	if third.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After hint")
	}

	// A pending result poll gets the same courtesy on its 202.
	var v JobView
	if err := json.NewDecoder(first.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + apiPrefix + "/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("result status = %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("202 carries no Retry-After hint")
	}
}

func TestRecoverMiddlewareContainsHandlerPanic(t *testing.T) {
	met := NewMetrics()
	met.Counter("rrs_http_panics_total", "")
	h := recoverMiddleware(met, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("body %q does not report the contained panic", rec.Body.String())
	}
	if n := met.JSON().Counters["rrs_http_panics_total"]; n != 1 {
		t.Errorf("rrs_http_panics_total = %d, want 1", n)
	}
}
