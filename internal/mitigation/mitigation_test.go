package mitigation

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

func testConfig() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 800 // ACT_max = 800
	cfg.RowHammerThreshold = 48
	return cfg
}

func TestDefaultPARAProbability(t *testing.T) {
	if p := DefaultPARAProbability(4800); p <= 0 || p > 0.01 {
		t.Fatalf("p = %v for T_RH 4800", p)
	}
	if p := DefaultPARAProbability(4); p != 1 {
		t.Fatalf("p = %v for tiny T_RH, want clamped to 1", p)
	}
	if p := DefaultPARAProbability(0); p != 1 {
		t.Fatalf("p = %v for zero T_RH", p)
	}
}

func TestPARARefreshesNeighbors(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewPARA(sys, 1.0, 1) // always refresh
	id := dram.BankID{}
	res := m.OnActivate(id, 100, 100, 0)
	if res.BankBlock == 0 {
		t.Fatal("no bank time charged")
	}
	if sys.ActCount(id, 99) != 1 || sys.ActCount(id, 101) != 1 {
		t.Fatalf("neighbours not refreshed: %d/%d",
			sys.ActCount(id, 99), sys.ActCount(id, 101))
	}
	if m.Stats().Mitigations != 1 || m.Stats().Refreshes != 2 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestPARAProbabilityZeroNeverFires(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewPARA(sys, 0, 1)
	id := dram.BankID{}
	for i := 0; i < 1000; i++ {
		if res := m.OnActivate(id, 100, 100, int64(i)); res.BankBlock != 0 {
			t.Fatal("PARA fired at p=0")
		}
	}
}

func TestPARAEdgeRowClamped(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewPARA(sys, 1.0, 1)
	id := dram.BankID{}
	m.OnActivate(id, 0, 0, 0) // row 0: only +1 neighbour exists
	if m.Stats().Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", m.Stats().Refreshes)
	}
}

func TestGrapheneRefreshAtThreshold(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewGraphene(sys, 8, 1, 1)
	id := dram.BankID{}
	for i := 0; i < 7; i++ {
		if res := m.OnActivate(id, 100, 100, int64(i)); res.BankBlock != 0 {
			t.Fatalf("fired at activation %d", i)
		}
	}
	res := m.OnActivate(id, 100, 100, 7)
	if res.BankBlock == 0 {
		t.Fatal("did not fire at threshold")
	}
	if sys.ActCount(id, 99) != 1 || sys.ActCount(id, 101) != 1 {
		t.Fatal("neighbours not refreshed")
	}
	// Aggressor's own count untouched by the mitigation (the controller
	// counts the aggressor's ACTs, not the mitigation).
	if sys.ActCount(id, 100) != 0 {
		t.Fatalf("aggressor count = %d", sys.ActCount(id, 100))
	}
}

func TestGrapheneBlastRadiusTwo(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewGraphene(sys, 4, 2, 1)
	id := dram.BankID{}
	for i := 0; i < 4; i++ {
		m.OnActivate(id, 100, 100, int64(i))
	}
	for _, v := range []int{98, 99, 101, 102} {
		if sys.ActCount(id, v) != 1 {
			t.Fatalf("row %d not refreshed", v)
		}
	}
	if m.Stats().Refreshes != 4 {
		t.Fatalf("refreshes = %d", m.Stats().Refreshes)
	}
}

func TestGrapheneFiresAtEveryMultiple(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewGraphene(sys, 8, 1, 1)
	id := dram.BankID{}
	for i := 0; i < 24; i++ {
		m.OnActivate(id, 100, 100, int64(i))
	}
	if m.Stats().Mitigations != 3 {
		t.Fatalf("mitigations = %d, want 3", m.Stats().Mitigations)
	}
}

func TestGrapheneEpochReset(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewGraphene(sys, 8, 1, 1)
	id := dram.BankID{}
	for i := 0; i < 7; i++ {
		m.OnActivate(id, 100, 100, int64(i))
	}
	m.OnEpoch(100)
	// Seven more activations: without reset this would cross the
	// threshold; with reset it must not.
	for i := 0; i < 7; i++ {
		m.OnActivate(id, 100, 100, int64(100+i))
	}
	if m.Stats().Mitigations != 0 {
		t.Fatalf("mitigations = %d after reset", m.Stats().Mitigations)
	}
}

func TestIdealRefreshesExactly(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewIdeal(sys, 8)
	id := dram.BankID{}
	for i := 0; i < 17; i++ {
		m.OnActivate(id, 100, 100, int64(i))
	}
	if m.Stats().Mitigations != 2 {
		t.Fatalf("mitigations = %d, want 2", m.Stats().Mitigations)
	}
	if sys.ActCount(id, 99) != 2 {
		t.Fatalf("victim refreshes = %d", sys.ActCount(id, 99))
	}
}

func TestIdealFreeHasNoCost(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewIdeal(sys, 1) // fire every activation
	id := dram.BankID{}
	if res := m.OnActivate(id, 100, 100, 0); res.BankBlock != 0 {
		t.Fatal("idealized mitigation charged bank time")
	}
	m.Free = false
	if res := m.OnActivate(id, 100, 100, 1); res.BankBlock == 0 {
		t.Fatal("non-free mitigation charged nothing")
	}
}

func TestBlockHammerBlacklistsHotRow(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	p := DefaultBlockHammerParams()
	p.BlacklistThreshold = 8
	b := NewBlockHammer(sys, p)
	id := dram.BankID{}

	// Below threshold: no delay.
	now := int64(0)
	for i := 0; i < 8; i++ {
		if d := b.ActivateDelay(id, 100, now); d != 0 {
			t.Fatalf("delayed before blacklisting (act %d)", i)
		}
		b.OnActivate(id, 100, 100, now)
		now += int64(cfg.TRC)
	}
	// Now blacklisted: back-to-back ACTs must be spaced tDelay apart.
	d := b.ActivateDelay(id, 100, now)
	if d == 0 {
		t.Fatal("no delay after crossing blacklist threshold")
	}
	if want := b.TDelay() - int64(cfg.TRC); d != want {
		t.Fatalf("delay = %d, want %d", d, want)
	}
	if b.Stats().BlacklistedActs == 0 || b.Stats().DelayCycles == 0 {
		t.Fatalf("stats %+v", b.Stats())
	}
}

func TestBlockHammerColdRowsUndisturbed(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	p := DefaultBlockHammerParams()
	p.BlacklistThreshold = 8
	b := NewBlockHammer(sys, p)
	id := dram.BankID{}
	// Hammer row 100 past the threshold.
	for i := 0; i < 20; i++ {
		b.OnActivate(id, 100, 100, int64(i))
	}
	// A different row (unless it aliases, which 3 hashes into 1024
	// counters makes essentially impossible for one hot row) is free.
	if d := b.ActivateDelay(id, 2222, 1000); d != 0 {
		t.Fatalf("cold row delayed by %d", d)
	}
}

func TestBlockHammerTDelayMagnitude(t *testing.T) {
	// At full scale, T_RH=4.8K and N_BL=512: tDelay = 64ms/1887 ~ 34us,
	// the paper's "approximately 20 microseconds" regime (tens of us).
	cfg := config.Default()
	sys := dram.MustNew(cfg)
	b := NewBlockHammer(sys, DefaultBlockHammerParams())
	us := float64(b.TDelay()) / (config.BusGHz * 1e3)
	if us < 15 || us > 50 {
		t.Fatalf("tDelay = %.1f us, want 15-50 us", us)
	}
}

func TestBlockHammerEpochClearsBlacklist(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	p := DefaultBlockHammerParams()
	p.BlacklistThreshold = 8
	b := NewBlockHammer(sys, p)
	id := dram.BankID{}
	for i := 0; i < 20; i++ {
		b.OnActivate(id, 100, 100, int64(i))
	}
	b.OnEpoch(100)
	if d := b.ActivateDelay(id, 100, 101); d != 0 {
		t.Fatalf("row still blacklisted after epoch: delay %d", d)
	}
}

func TestBlockHammerNeverBlocksOrRemaps(t *testing.T) {
	sys := dram.MustNew(testConfig())
	b := NewBlockHammer(sys, DefaultBlockHammerParams())
	id := dram.BankID{}
	if b.Remap(id, 7) != 7 {
		t.Fatal("BlockHammer remapped")
	}
	if res := b.OnActivate(id, 7, 7, 0); res != (memctrl.ActResult{}) {
		t.Fatal("BlockHammer blocked")
	}
}

func TestBlockHammerInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlockHammer(dram.MustNew(testConfig()), BlockHammerParams{})
}

// TestVictimRefreshDisturbsAtDistanceTwo verifies the Half-Double enabling
// mechanism: a victim refresh is an activation, so listeners (the fault
// model) see activity on the aggressor's neighbours.
func TestVictimRefreshDisturbsAtDistanceTwo(t *testing.T) {
	sys := dram.MustNew(testConfig())
	m := NewGraphene(sys, 4, 1, 1)
	seen := map[int]int{}
	sys.Subscribe(listenerFunc(func(_ dram.BankID, row int, _ int64) {
		seen[row]++
	}))
	id := dram.BankID{}
	for i := 0; i < 4; i++ {
		m.OnActivate(id, 100, 100, int64(i))
	}
	if seen[99] != 1 || seen[101] != 1 {
		t.Fatalf("refresh activations not observable: %v", seen)
	}
}

type listenerFunc func(dram.BankID, int, int64)

func (f listenerFunc) OnActivate(id dram.BankID, row int, now int64) { f(id, row, now) }
