package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// A sweep is the server-side form of a whole experiment: one SweepSpec
// names a base job plus axes over Spec fields (mitigation, tracker
// size, workloads, seeds, thresholds), and the manager expands it into
// child jobs deduplicated by content hash. Children are ordinary jobs —
// they coalesce with concurrent submissions, hit the result cache, are
// journaled, and (under internal/fleet) route to their ring owner by
// their own hash — so resubmitting a finished sweep is answered almost
// entirely from cache, and a kill -9 mid-sweep resumes from the
// completed children after journal replay re-expands the parent.

// ErrSweepNotFound is returned for unknown sweep ids.
var ErrSweepNotFound = errors.New("service: no such sweep")

// maxSweepChildren bounds one sweep's expansion: past it the submission
// is refused outright (HTTP 400) instead of flooding the job table.
const maxSweepChildren = 4096

// SweepAxes are the swept Spec fields. Each non-empty axis replaces its
// base field once per value; empty axes keep the base value. The
// expansion is the cartesian product of the non-empty axes, in the
// field order below with workloads innermost, so child order — and
// therefore aggregation order — is deterministic.
type SweepAxes struct {
	// Mitigations sweeps Spec.Mitigation (see MitigationNames).
	Mitigations []string `json:"mitigations,omitempty"`
	// Blacklists sweeps Spec.Blacklist, the BlockHammer tracker size.
	// Children whose mitigation is not "blockhammer" normalize the value
	// away and collapse into one job per remaining point.
	Blacklists []uint32 `json:"blacklists,omitempty"`
	// RowHammerThresholds sweeps Spec.RowHammerThreshold (Figure 10).
	RowHammerThresholds []int `json:"row_hammer_thresholds,omitempty"`
	// Scales sweeps Spec.Scale, the epoch shrink factor.
	Scales []int `json:"scales,omitempty"`
	// Seeds sweeps Spec.Seed, the synthetic-trace (attack-pattern) seed.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Workloads sweeps the workload: each entry becomes a single-workload
	// child (mixes belong in Base.Workloads with this axis empty).
	Workloads []string `json:"workloads,omitempty"`
}

// points multiplies the axis lengths (empty axes count 1). The product
// saturates at maxSweepChildren+1: lengths are >= 1 so it only grows,
// and capping inside the loop keeps a pathological request (six long
// axes fit well under the 1MB body bound) from overflowing int, wrapping
// past the expansion guard, and flooding Expand.
func (a SweepAxes) points() int {
	n := 1
	for _, l := range []int{len(a.Mitigations), len(a.Blacklists),
		len(a.RowHammerThresholds), len(a.Scales), len(a.Seeds), len(a.Workloads)} {
		if l > 0 {
			n *= l
			if n > maxSweepChildren {
				return maxSweepChildren + 1
			}
		}
	}
	return n
}

// SweepSpec declares one server-side parameter sweep: a base Spec plus
// the axes swept over it.
type SweepSpec struct {
	Base Spec      `json:"base"`
	Axes SweepAxes `json:"axes"`
}

// Hash is the sweep's content address: a hex SHA-256 of the
// hash-normalized base (TimeoutSeconds masked, Workers clamped to
// mode, like Spec.Hash) plus the axes. Retried POSTs of the same sweep
// coalesce onto the running parent by this hash.
func (ss SweepSpec) Hash() string {
	n := ss
	b := ss.Base.Normalize()
	b.TimeoutSeconds = 0
	if b.Workers > 1 {
		b.Workers = 1
	}
	n.Base = b
	buf, err := json.Marshal(n)
	if err != nil {
		panic(fmt.Sprintf("service: hashing sweep: %v", err))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// Expand returns the sweep's child specs: the cartesian product of the
// axes over the base, normalized and deduplicated by content hash in
// first-occurrence order. Expansion is deterministic — replaying the
// same SweepSpec after a crash reproduces the same children in the
// same order, which is what makes journaled sweeps resumable.
func (ss SweepSpec) Expand() ([]Spec, error) {
	if ss.Axes.points() > maxSweepChildren {
		// points saturates at maxSweepChildren+1, so the true size may be
		// far larger — report only the bound.
		return nil, fmt.Errorf("service: sweep expands to more than %d children",
			maxSweepChildren)
	}
	// orDefault shapes each axis as "sweep these values" or "keep base".
	mits := ss.Axes.Mitigations
	if len(mits) == 0 {
		mits = []string{ss.Base.Mitigation}
	}
	blacklists := ss.Axes.Blacklists
	if len(blacklists) == 0 {
		blacklists = []uint32{ss.Base.Blacklist}
	}
	trhs := ss.Axes.RowHammerThresholds
	if len(trhs) == 0 {
		trhs = []int{ss.Base.RowHammerThreshold}
	}
	scales := ss.Axes.Scales
	if len(scales) == 0 {
		scales = []int{ss.Base.Scale}
	}
	seeds := ss.Axes.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{ss.Base.Seed}
	}

	var specs []Spec
	seen := make(map[string]bool)
	add := func(child Spec) error {
		child = child.Normalize()
		h := child.Hash()
		if seen[h] {
			return nil
		}
		if err := child.Validate(); err != nil {
			return fmt.Errorf("service: sweep child %w", err)
		}
		seen[h] = true
		specs = append(specs, child)
		return nil
	}
	for _, mit := range mits {
		for _, bl := range blacklists {
			for _, trh := range trhs {
				for _, scale := range scales {
					for _, seed := range seeds {
						child := ss.Base
						child.Mitigation = mit
						child.Blacklist = bl
						child.RowHammerThreshold = trh
						child.Scale = scale
						child.Seed = seed
						if len(ss.Axes.Workloads) == 0 {
							if err := add(child); err != nil {
								return nil, err
							}
							continue
						}
						for _, w := range ss.Axes.Workloads {
							child.Workloads = []string{w}
							if err := add(child); err != nil {
								return nil, err
							}
						}
					}
				}
			}
		}
	}
	return specs, nil
}

// Validate reports why the sweep cannot run: an over-sized expansion or
// any child spec the job validator rejects.
func (ss SweepSpec) Validate() error {
	_, err := ss.Expand()
	return err
}

// Sweep is one tracked parameter sweep. The feeder/watcher goroutine
// (Manager.runSweep) owns submission and finalization; every mutable
// field is guarded by mu.
type Sweep struct {
	mu sync.Mutex

	id   string
	seq  uint64
	spec SweepSpec
	hash string

	// specs/hashes are the deterministic expansion; children is the
	// linked prefix (grows as the feeder gets each child accepted).
	specs    []Spec
	hashes   []string
	children []*Job

	state     State
	err       string
	cancelled bool
	cacheHits int // children answered from the result cache at link time

	submitted time.Time
	finished  time.Time
	done      chan struct{} // closed on reaching a terminal state
}

// ID returns the sweep's server-assigned identifier.
func (s *Sweep) ID() string { return s.id }

// Hash returns the sweep spec's content hash.
func (s *Sweep) Hash() string { return s.hash }

// Done returns a channel closed when the sweep reaches a terminal state.
func (s *Sweep) Done() <-chan struct{} { return s.done }

func (s *Sweep) isCancelled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cancelled
}

// SweepChildView is one child's line of a sweep status.
type SweepChildView struct {
	// ID is empty until the feeder has the child accepted (backpressure
	// can hold later children back while earlier ones already run).
	ID       string  `json:"id,omitempty"`
	Hash     string  `json:"hash"`
	State    State   `json:"state"`
	Progress float64 `json:"progress"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// SweepStats are aggregates rolled up over the done children, in
// expansion order — deterministic for a given sweep spec, so two runs
// of the same sweep (or a crash-resumed one) aggregate bit-identically.
type SweepStats struct {
	Results           int     `json:"results"`
	GeomeanIPC        float64 `json:"geomean_ipc,omitempty"`
	MeanIPC           float64 `json:"mean_ipc,omitempty"`
	MeanSwapsPerEpoch float64 `json:"mean_swaps_per_epoch,omitempty"`
	TotalEpochs       int64   `json:"total_epochs,omitempty"`
	TotalAccesses     int64   `json:"total_accesses,omitempty"`
}

// SweepView is the JSON projection of a sweep.
type SweepView struct {
	ID    string `json:"id"`
	Hash  string `json:"hash"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Total is the expanded (deduplicated) child count; Linked of them
	// have been accepted as jobs so far.
	Total  int `json:"total"`
	Linked int `json:"linked"`
	// Per-state child counts (unlinked children count as queued).
	Done      int `json:"done"`
	Failed    int `json:"failed,omitempty"`
	Cancelled int `json:"cancelled,omitempty"`
	Running   int `json:"running,omitempty"`
	Queued    int `json:"queued,omitempty"`
	// CacheHits counts children answered from the result cache the
	// moment they were submitted — the "re-runs are nearly free" number.
	CacheHits int `json:"cache_hits"`
	// Progress is mean child progress in [0,1].
	Progress  float64          `json:"progress"`
	Stats     *SweepStats      `json:"stats,omitempty"`
	Children  []SweepChildView `json:"children,omitempty"`
	Spec      SweepSpec        `json:"spec"`
	Submitted string           `json:"submitted_at"`
	Finished  string           `json:"finished_at,omitempty"`
}

// Snapshot returns a consistent view. withChildren adds the per-child
// lines (GET /v1/sweeps/{id}); the list endpoint omits them. Children
// the feeder has not linked (or that predate a restart) are resolved
// through the manager's result store by hash, so a restored sweep still
// reports its durable children as done.
func (m *Manager) snapshotSweep(s *Sweep, withChildren bool) SweepView {
	s.mu.Lock()
	v := SweepView{
		ID:        s.id,
		Hash:      s.hash,
		State:     s.state,
		Error:     s.err,
		Total:     len(s.specs),
		Linked:    len(s.children),
		CacheHits: s.cacheHits,
		Spec:      s.spec,
		Submitted: s.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !s.finished.IsZero() {
		v.Finished = s.finished.UTC().Format(time.RFC3339Nano)
	}
	children := append([]*Job(nil), s.children...)
	hashes := s.hashes
	s.mu.Unlock()

	var progress float64
	var results []sim.Result
	childViews := make([]SweepChildView, 0, len(hashes))
	for i, h := range hashes {
		cv := SweepChildView{Hash: h, State: StateQueued}
		var res sim.Result
		haveRes := false
		if i < len(children) {
			jv := children[i].Snapshot()
			cv.ID, cv.State, cv.Progress = jv.ID, jv.State, jv.Progress
			cv.CacheHit, cv.Error = jv.CacheHit, jv.Error
			if jv.State == StateDone {
				res, haveRes = children[i].Result()
			}
		} else if r, ok := m.ResultByHash(h); ok {
			// Not linked (yet), but the result is already held — a
			// restored sweep's durable child, or a concurrent submitter's.
			cv.State, cv.Progress, cv.CacheHit = StateDone, 1, true
			res, haveRes = r, true
		}
		switch cv.State {
		case StateDone:
			v.Done++
		case StateFailed:
			v.Failed++
		case StateCancelled:
			v.Cancelled++
		case StateRunning:
			v.Running++
		default:
			v.Queued++
		}
		progress += cv.Progress
		if haveRes {
			results = append(results, res)
		}
		childViews = append(childViews, cv)
	}
	if len(hashes) > 0 {
		v.Progress = progress / float64(len(hashes))
	}
	v.Stats = rollupStats(results)
	if withChildren {
		v.Children = childViews
	}
	return v
}

// rollupStats aggregates done-child results (nil when none are done).
func rollupStats(results []sim.Result) *SweepStats {
	if len(results) == 0 {
		return nil
	}
	st := &SweepStats{Results: len(results)}
	var ipcs []float64
	var ipcSum, swapSum float64
	for _, r := range results {
		if r.IPC > 0 {
			ipcs = append(ipcs, r.IPC)
		}
		ipcSum += r.IPC
		swapSum += r.SwapsPerEpoch
		st.TotalEpochs += int64(r.Epochs)
		st.TotalAccesses += r.Accesses
	}
	st.MeanIPC = ipcSum / float64(len(results))
	st.MeanSwapsPerEpoch = swapSum / float64(len(results))
	if len(ipcs) > 0 {
		st.GeomeanIPC = stats.GeoMean(ipcs)
	}
	return st
}

func (m *Manager) registerSweepMetrics() {
	for name, help := range map[string]string{
		"rrs_sweeps_submitted_total":         "Sweeps accepted by POST /v1/sweeps or SubmitSweep.",
		"rrs_sweeps_coalesced_total":         "Sweep submissions answered by an already-running sweep with the same spec hash.",
		"rrs_sweeps_done_total":              "Sweeps whose children all finished with a result.",
		"rrs_sweeps_failed_total":            "Sweeps with at least one failed or cancelled child.",
		"rrs_sweeps_cancelled_total":         "Sweeps cancelled before completing.",
		"rrs_sweeps_restored_total":          "Sweeps reconstructed from the journal at startup.",
		"rrs_sweep_children_total":           "Child jobs expanded from accepted sweeps (after hash dedup).",
		"rrs_sweep_children_cached_total":    "Sweep children answered from the result cache at submission.",
		"rrs_sweep_children_coalesced_total": "Sweep children answered by an already queued or running job.",
	} {
		m.met.Counter(name, help)
	}
	m.met.Gauge("rrs_sweeps_active", "Sweeps currently expanding or waiting on children.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.sweepInflight))
		})
}

// SubmitSweep validates and expands ss, journals the parent, and starts
// the feeder/watcher goroutine that submits each child (with
// backpressure: a sweep may be far larger than the queue) and finalizes
// the aggregate once every child is terminal. A hash equal to a running
// sweep's coalesces onto it (created=false) — the retried-POST
// idempotency children already have, lifted to the parent. A hash equal
// to a finished sweep's starts a new sweep whose children are answered
// from the result cache.
func (m *Manager) SubmitSweep(ss SweepSpec) (sw *Sweep, created bool, err error) {
	if m.opts.ForceParanoid {
		ss.Base.Paranoid = true
	}
	if m.opts.DefaultSimWorkers > 0 && ss.Base.Workers == 0 {
		ss.Base.Workers = m.opts.DefaultSimWorkers
	}
	specs, err := ss.Expand()
	if err != nil {
		return nil, false, err
	}
	hash := ss.Hash()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, ErrClosed
	}
	if m.draining {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	if prior, ok := m.sweepInflight[hash]; ok {
		m.mu.Unlock()
		m.met.Inc("rrs_sweeps_coalesced_total", 1)
		return prior, false, nil
	}
	m.sweepSeq++
	id := fmt.Sprintf("sweep-%06d", m.sweepSeq)
	if m.opts.NodeID != "" {
		id = m.opts.NodeID + "." + id
	}
	sw = &Sweep{
		id:        id,
		seq:       m.sweepSeq,
		spec:      ss,
		hash:      hash,
		specs:     specs,
		hashes:    specHashes(specs),
		state:     StateRunning,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	m.sweeps[sw.id] = sw
	m.sweepInflight[hash] = sw
	m.mu.Unlock()

	m.met.Inc("rrs_sweeps_submitted_total", 1)
	m.met.Inc("rrs_sweep_children_total", int64(len(specs)))
	m.journal(sweepAcceptedRecord(sw))
	m.sweepWG.Add(1)
	go m.runSweep(sw)
	return sw, true, nil
}

func specHashes(specs []Spec) []string {
	hs := make([]string, len(specs))
	for i, sp := range specs {
		hs[i] = sp.Hash()
	}
	return hs
}

// runSweep is the per-sweep feeder and watcher. The feed half submits
// each child, retrying queue backpressure — the journaled parent makes
// abandoning on shutdown safe, replay resumes the expansion. The watch
// half waits for every linked child's terminal state and finalizes.
func (m *Manager) runSweep(sw *Sweep) {
	defer m.sweepWG.Done()
feed:
	for _, spec := range sw.specs {
		for {
			if sw.isCancelled() {
				break feed
			}
			j, err := m.submitSweepChild(spec)
			if err == nil {
				sw.mu.Lock()
				sw.children = append(sw.children, j)
				cancelled := sw.cancelled
				sw.mu.Unlock()
				if cancelled {
					// CancelSweep may have snapshotted the children before
					// this link and missed the job we just submitted; cancel
					// it here so a cancelled sweep never runs an extra child.
					m.Cancel(j.ID())
					break feed
				}
				if v := j.Snapshot(); v.CacheHit {
					sw.mu.Lock()
					sw.cacheHits++
					sw.mu.Unlock()
					m.met.Inc("rrs_sweep_children_cached_total", 1)
				}
				break
			}
			switch {
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
				// The queue is smaller than the sweep; wait for workers
				// to make room rather than dropping the child.
				time.Sleep(2 * time.Millisecond)
			case errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
				// Process going down. Leave the sweep unfinished: its
				// accepted record has no terminal line, so the next
				// startup's replay re-expands and resumes it.
				return
			default:
				// A child this build refuses (possible only for a journal
				// from a different build, since Expand validated at
				// submission). Fail the sweep rather than loop forever.
				sw.mu.Lock()
				if sw.err == "" {
					sw.err = fmt.Sprintf("child %s: %v", spec.Hash()[:12], err)
				}
				sw.mu.Unlock()
				break feed
			}
		}
	}
	sw.mu.Lock()
	children := append([]*Job(nil), sw.children...)
	sw.mu.Unlock()
	for _, j := range children {
		<-j.Done()
	}
	m.finishSweep(sw)
}

// submitSweepChild submits one expanded child, counting coalesced
// acceptances, and marks fresh jobs as sweep children so they run
// through Options.RunChild (the fleet's by-hash routing seam).
func (m *Manager) submitSweepChild(spec Spec) (*Job, error) {
	j, coalesced, err := m.submit(spec, true)
	if err != nil {
		return nil, err
	}
	if coalesced {
		m.met.Inc("rrs_sweep_children_coalesced_total", 1)
	}
	return j, nil
}

// finishSweep derives the sweep's terminal state from its children and
// journals it — withheld during a drain, like job terminals, so the
// next startup resumes the sweep instead of trusting a state reached by
// drain-cancelled children.
func (m *Manager) finishSweep(sw *Sweep) {
	state := StateDone
	var errMsg string
	sw.mu.Lock()
	cancelled := sw.cancelled
	errMsg = sw.err
	children := append([]*Job(nil), sw.children...)
	total := len(sw.specs)
	sw.mu.Unlock()

	if errMsg != "" || len(children) < total {
		state = StateFailed
	}
	for _, j := range children {
		v := j.Snapshot()
		if v.State != StateDone && state == StateDone {
			state = StateFailed
			if errMsg == "" {
				errMsg = fmt.Sprintf("child %s %s: %s", v.ID, v.State, v.Error)
			}
		}
	}
	if cancelled {
		state, errMsg = StateCancelled, "cancelled by request"
	}

	sw.mu.Lock()
	if sw.state.terminal() {
		sw.mu.Unlock()
		return
	}
	sw.state = state
	sw.err = errMsg
	sw.finished = time.Now()
	sw.mu.Unlock()

	m.mu.Lock()
	if m.sweepInflight[sw.hash] == sw {
		delete(m.sweepInflight, sw.hash)
	}
	draining := m.draining
	m.mu.Unlock()
	if !draining {
		m.journal(sweepTerminalRecord(sw))
	}
	switch state {
	case StateDone:
		m.met.Inc("rrs_sweeps_done_total", 1)
	case StateCancelled:
		m.met.Inc("rrs_sweeps_cancelled_total", 1)
	default:
		m.met.Inc("rrs_sweeps_failed_total", 1)
	}
	close(sw.done)
}

// GetSweep returns a sweep by id.
func (m *Manager) GetSweep(id string) (*Sweep, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sw, ok := m.sweeps[id]
	return sw, ok
}

// ListSweeps returns all tracked sweeps in deterministic submission
// order (seq, then id — the same tie-break as Manager.List).
func (m *Manager) ListSweeps() []*Sweep {
	m.mu.Lock()
	sweeps := make([]*Sweep, 0, len(m.sweeps))
	for _, sw := range m.sweeps {
		sweeps = append(sweeps, sw)
	}
	m.mu.Unlock()
	sortBySeqThenID(sweeps, func(s *Sweep) (uint64, string) { return s.seq, s.id })
	return sweeps
}

// CancelSweep stops a running sweep: the feeder stops expanding and
// every linked child is cancelled (including for submitters that
// coalesced onto those children). Cancelling a terminal sweep reports
// ok=false.
func (m *Manager) CancelSweep(id string) (ok bool, err error) {
	sw, found := m.GetSweep(id)
	if !found {
		return false, ErrSweepNotFound
	}
	sw.mu.Lock()
	if sw.state.terminal() {
		sw.mu.Unlock()
		return false, nil
	}
	sw.cancelled = true
	children := append([]*Job(nil), sw.children...)
	sw.mu.Unlock()
	for _, j := range children {
		m.Cancel(j.ID())
	}
	return true, nil
}

// RemoveSweep deletes a terminal sweep's record. The children's job
// records stay — they are independently addressable and removable.
func (m *Manager) RemoveSweep(id string) error {
	sw, found := m.GetSweep(id)
	if !found {
		return ErrSweepNotFound
	}
	sw.mu.Lock()
	state := sw.state
	sw.mu.Unlock()
	if !state.terminal() {
		return fmt.Errorf("service: sweep %s is %s; cancel it first", id, state)
	}
	m.mu.Lock()
	delete(m.sweeps, id)
	m.mu.Unlock()
	m.journal(journalRecord{Type: recSweepRemoved, ID: id})
	return nil
}

// SweepResults collects the results of a sweep's done children, keyed
// by child content hash — one payload instead of a poll per child. The
// lookup goes through the manager's result store, so it also serves
// restored sweeps whose children completed before a restart.
func (m *Manager) SweepResults(sw *Sweep) map[string]sim.Result {
	sw.mu.Lock()
	hashes := sw.hashes
	sw.mu.Unlock()
	out := make(map[string]sim.Result, len(hashes))
	for _, h := range hashes {
		if res, ok := m.ResultByHash(h); ok {
			out[h] = res
		}
	}
	return out
}

// restoreSweep rebuilds one journaled sweep at startup. Terminal sweeps
// come back as static records; pending ones re-expand and resume —
// children that finished before the crash are answered from the
// replayed result cache (cache hits), only unfinished ones run.
func (m *Manager) restoreSweep(rs *ReplayedSweep) error {
	specs, err := rs.Spec.Expand()
	if err != nil {
		return fmt.Errorf("service: sweep %s replay: %w", rs.ID, err)
	}
	sw := &Sweep{
		id:        rs.ID,
		seq:       rs.Seq,
		spec:      rs.Spec,
		hash:      rs.Hash,
		specs:     specs,
		hashes:    specHashes(specs),
		state:     StateRunning,
		err:       rs.Error,
		submitted: rs.Submitted,
		finished:  rs.Finished,
		done:      make(chan struct{}),
	}
	if sw.hash == "" {
		sw.hash = rs.Spec.Hash()
	}
	terminal := rs.State.terminal()
	if terminal {
		sw.state = rs.State
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if _, exists := m.sweeps[sw.id]; exists {
		m.mu.Unlock()
		return fmt.Errorf("service: journal sweep %s collides with a live sweep", sw.id)
	}
	m.sweeps[sw.id] = sw
	if sw.seq > m.sweepSeq {
		m.sweepSeq = sw.seq
	}
	if !terminal {
		if _, dup := m.sweepInflight[sw.hash]; !dup {
			m.sweepInflight[sw.hash] = sw
		}
	}
	m.mu.Unlock()
	m.met.Inc("rrs_sweeps_restored_total", 1)

	if terminal {
		close(sw.done)
		return nil
	}
	m.sweepWG.Add(1)
	go m.runSweep(sw)
	return nil
}
