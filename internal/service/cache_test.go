package service

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	put := func(key string, ipc float64) { c.Put(key, sim.Result{IPC: ipc}) }

	put("a", 1)
	put("b", 2)
	if _, ok := c.Get("a"); !ok { // promotes a over b
		t.Fatal("a evicted prematurely")
	}
	put("c", 3) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for key, want := range map[string]float64{"a": 1, "c": 3} {
		res, ok := c.Get(key)
		if !ok || res.IPC != want {
			t.Errorf("Get(%q) = (%v, %v), want IPC %v", key, res.IPC, ok, want)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}

	// Overwriting an existing key must not grow the cache.
	put("a", 10)
	if res, _ := c.Get("a"); res.IPC != 10 {
		t.Error("Put did not update existing entry")
	}
	if c.Len() != 2 {
		t.Errorf("Len after overwrite = %d, want 2", c.Len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("a", sim.Result{IPC: 1})
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestResultCacheEvictionOrderUnderChurn(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), sim.Result{IPC: float64(i)})
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
	for i := 92; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("recent key k%d missing", i)
		}
	}
	if _, ok := c.Get("k50"); ok {
		t.Error("old key survived eviction")
	}
}
