package service

import (
	"strings"
	"testing"
)

func TestMetricsPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("rrs_test_total", "A test counter.")
	m.Inc("rrs_test_total", 3)
	m.Gauge("rrs_test_depth", "A test gauge.", func() float64 { return 7.5 })
	m.ObserveLatency(0.003) // bucket le=0.005
	m.ObserveLatency(0.3)   // bucket le=0.5
	m.ObserveLatency(1000)  // +Inf

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP rrs_test_total A test counter.",
		"# TYPE rrs_test_total counter",
		"rrs_test_total 3",
		"# TYPE rrs_test_depth gauge",
		"rrs_test_depth 7.5",
		"# TYPE rrs_job_run_seconds histogram",
		`rrs_job_run_seconds_bucket{le="0.005"} 1`,
		`rrs_job_run_seconds_bucket{le="0.5"} 2`,
		`rrs_job_run_seconds_bucket{le="+Inf"} 3`,
		"rrs_job_run_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: le="600" carries everything finite.
	if !strings.Contains(out, `rrs_job_run_seconds_bucket{le="600"} 2`) {
		t.Errorf("cumulative bucket broken:\n%s", out)
	}
}

func TestMetricsJSONView(t *testing.T) {
	m := NewMetrics()
	m.Inc("rrs_test_total", 2)
	m.Gauge("rrs_depth", "", func() float64 { return 4 })
	m.ObserveLatency(0.02)

	v := m.JSON()
	if v.Counters["rrs_test_total"] != 2 {
		t.Errorf("counter = %d, want 2", v.Counters["rrs_test_total"])
	}
	if v.Gauges["rrs_depth"] != 4 {
		t.Errorf("gauge = %v, want 4", v.Gauges["rrs_depth"])
	}
	if v.Latency.Count != 1 || v.Latency.Sum != 0.02 {
		t.Errorf("latency = %+v", v.Latency)
	}
	var total int64
	for _, b := range v.Latency.Buckets {
		total += b.Count
	}
	if total != 1 {
		t.Errorf("bucket counts sum to %d, want 1", total)
	}
	if len(v.Latency.Buckets) != len(latencyBuckets)+1 {
		t.Errorf("bucket count = %d, want %d", len(v.Latency.Buckets), len(latencyBuckets)+1)
	}
}
