package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// BlockHammer is the delay-based aggressor-focused baseline (Yağlıkçı et
// al., HPCA 2021): per-bank counting Bloom filters estimate each row's
// activation count; rows whose estimate crosses the blacklisting threshold
// N_BL have their subsequent activations spaced out so that no row can
// reach T_RH activations within the refresh window.
//
// Simplifications versus the original (documented in DESIGN.md): a single
// Bloom filter cleared at each epoch stands in for the original's dual
// rotating filters, and the row-activation history buffer is modeled as a
// per-row last-activation timestamp. Both preserve the throttling
// behaviour that drives the paper's Figure 11 comparison: rows mapping to
// hot filter entries get every activation delayed by tDelay ≈
// window/(T_RH - N_BL), ~20 us at T_RH = 4.8K.
type BlockHammer struct {
	sys *dram.System
	cfg config.Config

	counters  [][]uint32 // per bank: m counters
	hashes    []*prince.Hash64
	m         int
	blacklist uint32
	tDelay    int64

	lastAct []map[int]int64 // per bank: blacklisted row -> last ACT time

	stat BlockHammerStats
}

// BlockHammerStats counts throttling activity.
type BlockHammerStats struct {
	// BlacklistedActs is the number of activations that hit a blacklisted
	// filter estimate.
	BlacklistedActs int64
	// DelayCycles is the total imposed delay.
	DelayCycles int64
}

// BlockHammerParams configures the defense.
type BlockHammerParams struct {
	// BlacklistThreshold is N_BL (the paper's Figure 11 uses 512 and 1K).
	BlacklistThreshold uint32
	// Counters is the number of Bloom filter counters per bank.
	Counters int
	// Hashes is the number of hash functions.
	Hashes int
	// Seed keys the hash functions.
	Seed uint64
}

// DefaultBlockHammerParams returns the configuration used for the paper's
// comparison at N_BL = 512.
func DefaultBlockHammerParams() BlockHammerParams {
	return BlockHammerParams{BlacklistThreshold: 512, Counters: 1024, Hashes: 3, Seed: 0xb10cc4a3}
}

// NewBlockHammer creates the mitigation over sys.
func NewBlockHammer(sys *dram.System, p BlockHammerParams) *BlockHammer {
	cfg := sys.Config()
	if p.Counters <= 0 || p.Hashes <= 0 || p.BlacklistThreshold == 0 {
		panic("mitigation: invalid BlockHammer parameters")
	}
	nBanks := cfg.Channels * cfg.Ranks * cfg.Banks
	b := &BlockHammer{
		sys:       sys,
		cfg:       cfg,
		counters:  make([][]uint32, nBanks),
		hashes:    make([]*prince.Hash64, p.Hashes),
		m:         p.Counters,
		blacklist: p.BlacklistThreshold,
		lastAct:   make([]map[int]int64, nBanks),
	}
	for i := range b.counters {
		b.counters[i] = make([]uint32, p.Counters)
		b.lastAct[i] = make(map[int]int64)
	}
	kg := prince.Seeded(p.Seed)
	for i := range b.hashes {
		b.hashes[i] = prince.NewHash64(kg.Next(), kg.Next())
	}
	// After blacklisting at N_BL estimated activations, the row may
	// receive at most T_RH/2 - N_BL - 1 more ACTs per window, one per
	// tDelay — the /2 margin covers double-sided attacks where a victim
	// accumulates disturbance from two throttled aggressors at once.
	budget := int64(cfg.RowHammerThreshold)/2 - int64(p.BlacklistThreshold) - 1
	if budget < 1 {
		budget = 1
	}
	b.tDelay = cfg.EpochCycles / budget
	return b
}

// Stats returns throttling counters.
func (b *BlockHammer) Stats() BlockHammerStats { return b.stat }

// TDelay returns the enforced activation spacing for blacklisted rows, in
// bus cycles.
func (b *BlockHammer) TDelay() int64 { return b.tDelay }

// estimate returns the Bloom filter's activation estimate for row.
func (b *BlockHammer) estimate(bank int, row int) uint32 {
	min := uint32(1<<32 - 1)
	for _, h := range b.hashes {
		c := b.counters[bank][h.Sum(uint64(row))%uint64(b.m)]
		if c < min {
			min = c
		}
	}
	return min
}

// Remap implements memctrl.Mitigation (identity: no indirection).
func (b *BlockHammer) Remap(_ dram.BankID, row int) int { return row }

// AccessPenalty implements memctrl.Mitigation.
func (b *BlockHammer) AccessPenalty() int64 { return 0 }

// ActivateDelay implements memctrl.Mitigation: blacklisted rows are
// spaced tDelay apart.
func (b *BlockHammer) ActivateDelay(id dram.BankID, row int, now int64) int64 {
	bank := bankIndex(b.cfg, id)
	if b.estimate(bank, row) < b.blacklist {
		return 0
	}
	b.stat.BlacklistedActs++
	last, seen := b.lastAct[bank][row]
	if !seen {
		return 0
	}
	earliest := last + b.tDelay
	if earliest <= now {
		return 0
	}
	d := earliest - now
	b.stat.DelayCycles += d
	return d
}

// OnActivate implements memctrl.Mitigation: count the row in the filter
// (conservative update: only the minimal counters increment, reducing
// false positives) and remember blacklisted rows' activation times.
func (b *BlockHammer) OnActivate(id dram.BankID, row, _ int, now int64) memctrl.ActResult {
	bank := bankIndex(b.cfg, id)
	min := b.estimate(bank, row)
	for _, h := range b.hashes {
		idx := h.Sum(uint64(row)) % uint64(b.m)
		if b.counters[bank][idx] == min {
			b.counters[bank][idx]++
		}
	}
	if min+1 >= b.blacklist {
		b.lastAct[bank][row] = now
	}
	return memctrl.ActResult{}
}

// OnEpoch implements memctrl.Mitigation: clear filters and history.
func (b *BlockHammer) OnEpoch(int64) {
	for i := range b.counters {
		clear(b.counters[i])
		clear(b.lastAct[i])
	}
}
