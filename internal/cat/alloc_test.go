package cat

import "testing"

// TestLookupAllocFree pins the hot-path contract: Lookup (hit and miss,
// through the set-index memo) performs no allocations.
func TestLookupAllocFree(t *testing.T) {
	tab := New[int64](Spec{Sets: 64, Ways: 20}, 5)
	for i := uint64(0); i < 1700; i++ {
		if tab.Install(i, int64(i)) == nil {
			t.Fatalf("install %d failed", i)
		}
	}
	var sink int64
	if avg := testing.AllocsPerRun(500, func() {
		if p := tab.Lookup(7); p != nil {
			sink += *p
		}
		if p := tab.Lookup(900_000); p != nil {
			sink += *p
		}
	}); avg != 0 {
		t.Fatalf("Lookup allocates %.2f allocs/run, want 0 (sink %d)", avg, sink)
	}
}
