package core_test

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
)

// Example shows the RRS life cycle on a scaled system: hammering a row
// T_RRS times triggers a randomized swap, the row's data moves with it,
// and the indirection stays transparent.
func Example() {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 800 // scaled epoch
	cfg.RowHammerThreshold = 48            // T_RRS = 8

	sys := dram.MustNew(cfg)
	rrs, err := core.New(sys, core.DefaultParams(cfg))
	if err != nil {
		panic(err)
	}

	bank := dram.BankID{}
	sys.SetRowContent(bank, 100, 0xCAFE)

	// Hammer logical row 100 exactly T_RRS times.
	for i := 0; i < int(rrs.Params().SwapThreshold); i++ {
		rrs.OnActivate(bank, 100, rrs.Remap(bank, 100), int64(i))
	}

	phys := rrs.Remap(bank, 100)
	fmt.Printf("swapped away: %v\n", phys != 100)
	fmt.Printf("data followed: %v\n", sys.RowContent(bank, phys) == 0xCAFE)
	fmt.Printf("swaps recorded: %d\n", rrs.Stats().Swaps)
	// Output:
	// swapped away: true
	// data followed: true
	// swaps recorded: 1
}

// ExampleDefaultParams shows the paper's derived design point for the
// LPDDR4-new threshold of 4.8K.
func ExampleDefaultParams() {
	cfg := config.Default()
	p, _ := core.DefaultParams(cfg).Finalize(cfg)
	fmt.Printf("T_RRS = %d\n", p.SwapThreshold)
	fmt.Printf("tracker entries = %d\n", p.TrackerEntries)
	fmt.Printf("RIT tuples = %d\n", p.RITTuples)
	// Output:
	// T_RRS = 800
	// tracker entries = 1699
	// RIT tuples = 3398
}
