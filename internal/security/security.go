// Package security implements the RRS paper's security analysis
// (Section 5): the statistical model of the optimal attack against
// Randomized Row-Swap, reproducing Table 4 (attack iterations and time to
// a successful Row Hammer flip as a function of the swap threshold), the
// duty-cycle model, and a Monte Carlo cross-check of the buckets-and-balls
// formula.
//
// The optimal attacker repeatedly picks a uniformly random row in a bank
// and activates it exactly T times, forcing a swap, hoping that some
// physical location accumulates k = T_RH/T swaps' worth of activations
// within one refresh window (the birthday-paradox style attack of
// Figure 7). Each T-activation burst is a ball thrown into one of N
// buckets (rows); a successful attack needs k balls in one bucket within
// an iteration (64 ms).
package security

import (
	"fmt"
	"math"

	"repro/internal/prince"
)

// EpochSeconds is the refresh window the analysis is parameterized in.
const EpochSeconds = 0.064

// Model holds the parameters of the Section 5.3 analysis.
type Model struct {
	// RowsPerBank is N, the randomization space (128K in the paper).
	RowsPerBank int
	// ACTMax is A, the maximum activations per bank per 64 ms (1.36M).
	ACTMax int
	// DutyCycle is D, the fraction of the window the bank can spend on
	// activations given swap overheads (0.925 single-bank, 0.55 all-bank).
	DutyCycle float64
	// SwapThreshold is T (T_RRS).
	SwapThreshold int
	// RowHammerThreshold is T_RH; k = T_RH / T swaps must land on one
	// physical row for a flip.
	RowHammerThreshold int
	// Banks under simultaneous attack (1 for the single-bank attack; the
	// success probability scales with Banks * N).
	Banks int
}

// PaperModel returns the paper's default single-bank model for a given
// swap threshold: N = 128K, A = 1.36M, D = 0.925, T_RH = 4.8K.
func PaperModel(swapThreshold int) Model {
	return Model{
		RowsPerBank:        128 << 10,
		ACTMax:             1360000,
		DutyCycle:          0.925,
		SwapThreshold:      swapThreshold,
		RowHammerThreshold: 4800,
		Banks:              1,
	}
}

// AllBankPaperModel returns the paper's 16-bank attack variant (D = 0.55).
func AllBankPaperModel(swapThreshold int) Model {
	m := PaperModel(swapThreshold)
	m.DutyCycle = 0.55
	m.Banks = 16
	return m
}

// K returns the number of swaps required on one physical row for a flip.
func (m Model) K() int { return m.RowHammerThreshold / m.SwapThreshold }

// Balls returns B = A*D/T, the number of T-activation bursts (balls) the
// attacker throws per iteration.
func (m Model) Balls() float64 {
	return float64(m.ACTMax) * m.DutyCycle / float64(m.SwapThreshold)
}

// lnChoose returns ln(C(n, k)) via the log-gamma function.
func lnChoose(n float64, k int) float64 {
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(n+1) - lg(float64(k)+1) - lg(n-float64(k)+1)
}

// LnProbKSwaps returns ln of the probability that a specific row receives
// exactly k balls in one iteration (Equation 1): C(B,k) p^k (1-p)^(B-k)
// with p = 1/N.
func (m Model) LnProbKSwaps(k int) float64 {
	b := m.Balls()
	if float64(k) > b {
		return math.Inf(-1)
	}
	p := 1.0 / float64(m.RowsPerBank)
	return lnChoose(b, k) + float64(k)*math.Log(p) + (b-float64(k))*math.Log1p(-p)
}

// ExpectedRowsWithKSwaps returns N_k = N * p_{k,T} (scaled by the number
// of attacked banks).
func (m Model) ExpectedRowsWithKSwaps(k int) float64 {
	n := float64(m.RowsPerBank) * float64(max(1, m.Banks))
	return n * math.Exp(m.LnProbKSwaps(k))
}

// AttackIterations returns AT_iter (Equation 3): the expected number of
// 64 ms iterations before some row accumulates k = T_RH/T swaps.
func (m Model) AttackIterations() float64 {
	return 1.0 / m.ExpectedRowsWithKSwaps(m.K())
}

// AttackSeconds returns AT_time in seconds.
func (m Model) AttackSeconds() float64 {
	return m.AttackIterations() * EpochSeconds
}

// FormatDuration renders an attack time in the paper's style ("6.9 days",
// "3.8 years").
func FormatDuration(seconds float64) string {
	switch {
	case math.IsInf(seconds, 1):
		return "never"
	case seconds < 120:
		return fmt.Sprintf("%.1f seconds", seconds)
	case seconds < 2*3600:
		return fmt.Sprintf("%.1f minutes", seconds/60)
	case seconds < 2*86400:
		return fmt.Sprintf("%.1f hours", seconds/3600)
	case seconds < 2*365.25*86400:
		return fmt.Sprintf("%.1f days", seconds/86400)
	default:
		return fmt.Sprintf("%.1f years", seconds/(365.25*86400))
	}
}

// DutyCycle models the fraction of a refresh window available for
// activations when the attacker forces one swap every T activations:
// hammering T rows costs T*tRC and each swap blocks the bank's channel for
// swapSeconds, multiplied by the banks sharing the channel under attack.
func DutyCycle(swapThreshold int, tRCSeconds, swapSeconds float64, banksPerChannelAttacked int) float64 {
	hammer := float64(swapThreshold) * tRCSeconds
	block := swapSeconds * float64(max(1, banksPerChannelAttacked))
	return hammer / (hammer + block)
}

// MonteCarloProbK estimates, by simulation, the probability that a
// specific bucket receives at least k balls when b balls land uniformly in
// n buckets — a cross-check of LnProbKSwaps at scales where the event is
// observable. It returns the fraction of (bucket, trial) pairs with >= k
// balls, i.e., the per-row probability.
func MonteCarloProbK(n int, b int, k int, trials int, seed uint64) float64 {
	rng := prince.Seeded(seed)
	counts := make([]int, n)
	hits := 0
	for t := 0; t < trials; t++ {
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < b; i++ {
			counts[rng.Intn(n)]++
		}
		for _, c := range counts {
			if c >= k {
				hits++
			}
		}
	}
	return float64(hits) / (float64(n) * float64(trials))
}

// ProbAtLeastK returns the analytic tail probability P(X >= k) for one
// bucket, summing Equation 1 over k' >= k until terms vanish.
func (m Model) ProbAtLeastK(k int) float64 {
	sum := 0.0
	for kk := k; kk < k+64; kk++ {
		term := math.Exp(m.LnProbKSwaps(kk))
		sum += term
		if term < sum*1e-12 {
			break
		}
	}
	return sum
}

// Table1Row is one row of the paper's Table 1 (Row Hammer threshold over
// DRAM generations).
type Table1Row struct {
	Generation string
	Threshold  string
}

// Table1 returns the paper's Table 1 data.
func Table1() []Table1Row {
	return []Table1Row{
		{"DDR3 (old)", "139K"},
		{"DDR3 (new)", "22.4K"},
		{"DDR4 (old)", "17.5K"},
		{"DDR4 (new)", "10K"},
		{"LPDDR4 (old)", "16.8K"},
		{"LPDDR4 (new)", "4.8K - 9K"},
	}
}
