// Command rrs-attack launches Row Hammer attack patterns against a chosen
// defense and reports whether bit flips occurred.
//
// Usage:
//
//	rrs-attack -pattern halfdouble -defense graphene
//	rrs-attack -pattern chase -defense rrs -epochs 10
//	rrs-attack -pattern doublesided -defense none
//
// Patterns: singlesided, doublesided, manysided, halfdouble, chase.
// Defenses: none, para, graphene, graphene2 (blast radius 2), ideal, rrs,
// blockhammer.
//
// The system runs at the attack scale (T_RH = 240, 2400 activations per
// epoch) where the disturbance model's security margins are proportional
// to the paper's full-scale parameters.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
)

func main() {
	var (
		pattern = flag.String("pattern", "doublesided", "attack pattern")
		defense = flag.String("defense", "rrs", "defense under attack")
		epochs  = flag.Int("epochs", 3, "attack duration in refresh epochs")
		victim  = flag.Int("victim", 100, "victim row for targeted patterns")
		seed    = flag.Uint64("seed", 7, "random seed for the chase pattern")
	)
	flag.Parse()

	cfg := attackConfig()
	p, err := makePattern(*pattern, cfg, *victim, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	mit, err := makeDefense(*defense)
	if err != nil {
		fatalf("%v", err)
	}

	ctl, fm := attack.NewSystem(cfg, 0, attack.Alpha2For(cfg), mit)
	res := attack.Run(ctl, fm, p, attack.Options{Epochs: *epochs})

	fmt.Printf("pattern:  %s (victim row %d)\n", res.Pattern, *victim)
	fmt.Printf("defense:  %s\n", *defense)
	fmt.Printf("duration: %d epochs, %d attacker accesses\n", *epochs, res.Accesses)
	fmt.Printf("attacker access rate: %.5f/cycle\n\n", res.AccessRate)
	if res.Defended() {
		fmt.Println("RESULT: defended — no bit flips")
	} else {
		fmt.Printf("RESULT: DEFEATED — %d bit flip(s), first at cycle %d\n",
			res.Flips, res.FirstFlipTime)
		for i, f := range fm.Flips() {
			if i >= 10 {
				fmt.Printf("  ... and %d more\n", len(fm.Flips())-10)
				break
			}
			fmt.Printf("  %s\n", f)
		}
	}
	if r, ok := ctl.Mitigation().(*core.RRS); ok {
		st := r.Stats()
		fmt.Printf("\nRRS activity: %d swaps (%d re-swaps), %d eviction un-swaps\n",
			st.Swaps, st.Reswaps, st.EvictionUnswaps)
	}
}

func attackConfig() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240
	return cfg
}

func makePattern(name string, cfg config.Config, victim int, seed uint64) (attack.Pattern, error) {
	switch name {
	case "singlesided":
		return attack.NewSingleSided(victim, cfg.RowsPerBank), nil
	case "doublesided":
		return attack.NewDoubleSided(victim), nil
	case "manysided":
		return attack.NewManySided(victim, 8), nil
	case "halfdouble":
		return attack.NewHalfDouble(victim), nil
	case "chase":
		return attack.NewRandomChase(cfg.RowHammerThreshold/6, cfg.RowsPerBank, seed), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

func makeDefense(name string) (func(*dram.System) memctrl.Mitigation, error) {
	switch name {
	case "none":
		return nil, nil
	case "para":
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewPARA(sys,
				mitigation.DefaultPARAProbability(sys.Config().RowHammerThreshold), 7)
		}, nil
	case "graphene", "graphene2":
		radius := 1
		if name == "graphene2" {
			radius = 2
		}
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewGraphene(sys,
				mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold), radius, 7)
		}, nil
	case "ideal":
		return func(sys *dram.System) memctrl.Mitigation {
			return mitigation.NewIdeal(sys,
				mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold))
		}, nil
	case "rrs":
		return func(sys *dram.System) memctrl.Mitigation {
			r, err := core.New(sys, core.DefaultParams(sys.Config()))
			if err != nil {
				panic(err)
			}
			return r
		}, nil
	case "blockhammer":
		return func(sys *dram.System) memctrl.Mitigation {
			p := mitigation.DefaultBlockHammerParams()
			p.BlacklistThreshold = 60
			return mitigation.NewBlockHammer(sys, p)
		}, nil
	default:
		return nil, fmt.Errorf("unknown defense %q", name)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rrs-attack: "+format+"\n", args...)
	os.Exit(1)
}
