package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Gap: 0, Line: 42, Write: false},
		{Gap: 1000, Line: 1 << 40, Write: true},
		{Gap: 4294967295, Line: 0, Write: false},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	r := NewFileReader(&buf)
	for i, want := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record")
	}
	if r.Err() != io.EOF {
		t.Fatalf("Err = %v, want EOF", r.Err())
	}
}

// TestFileReaderTornTrailingRecord truncates a trace mid-record at every
// possible offset and checks the reader reports ErrTornTrace — not a
// clean EOF — so a writer killed mid-flush cannot silently shorten a
// workload.
func TestFileReaderTornTrailingRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(Record{Gap: uint32(i), Line: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	const recordBytes = 13
	for cut := 1; cut < recordBytes; cut++ {
		r := NewFileReader(bytes.NewReader(full[:2*recordBytes+cut]))
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
		}
		if n != 2 {
			t.Fatalf("cut %d: read %d whole records, want 2", cut, n)
		}
		if err := r.Err(); !errors.Is(err, ErrTornTrace) {
			t.Fatalf("cut %d: Err = %v, want ErrTornTrace", cut, err)
		}
		if errors.Is(r.Err(), io.EOF) {
			t.Fatalf("cut %d: torn trace must not read as a clean EOF", cut)
		}
	}
	// A zero-byte tail is a clean end, not a torn record.
	r := NewFileReader(bytes.NewReader(full[:2*recordBytes]))
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() != io.EOF {
		t.Fatalf("record-aligned end: Err = %v, want EOF", r.Err())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	w := Table3Workloads()[0]
	p := GeneratorParams{Seed: 7}
	a, b := NewGenerator(w, p), NewGenerator(w, p)
	for i := 0; i < 500; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("divergence at %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestGeneratorFootprintBound(t *testing.T) {
	w := Workload{Name: "x", FootprintBytes: 1 << 20, MPKI: 10}
	g := NewGenerator(w, GeneratorParams{Seed: 1})
	span := uint64(1<<20) / 64
	for i := 0; i < 5000; i++ {
		r, _ := g.Next()
		if r.Line >= span {
			t.Fatalf("line %d outside footprint %d", r.Line, span)
		}
	}
}

func TestGeneratorMPKICalibration(t *testing.T) {
	// Mean instruction gap should track 1000/MPKI.
	w := Workload{Name: "x", FootprintBytes: 1 << 24, MPKI: 5}
	g := NewGenerator(w, GeneratorParams{Seed: 3})
	var insts, accesses int64
	for i := 0; i < 20000; i++ {
		r, _ := g.Next()
		insts += int64(r.Gap) + 1
		accesses++
	}
	mpki := float64(accesses) / float64(insts) * 1000
	if mpki < 3.5 || mpki > 6.5 {
		t.Fatalf("generated MPKI = %.2f, want ~5", mpki)
	}
}

func TestGeneratorHotRowsConcentration(t *testing.T) {
	w := Workload{Name: "x", FootprintBytes: 1 << 28, MPKI: 20, HotRows: 4}
	g := NewGenerator(w, GeneratorParams{Seed: 5, HotShare: 0.5})
	rowCounts := map[uint64]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		r, _ := g.Next()
		rowCounts[r.Line/128]++ // 8KB rows of 64B lines
	}
	hot := 0
	for _, c := range rowCounts {
		if c > draws/100 {
			hot++
		}
	}
	if hot != w.HotRows {
		t.Fatalf("found %d hot rows, want %d", hot, w.HotRows)
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	w := Workload{Name: "x", FootprintBytes: 1 << 24, MPKI: 10, WriteFraction: 0.3}
	g := NewGenerator(w, GeneratorParams{Seed: 9})
	writes := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		r, _ := g.Next()
		if r.Write {
			writes++
		}
	}
	frac := float64(writes) / draws
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("write fraction = %.3f, want ~0.3", frac)
	}
}

func TestTable3CatalogMatchesPaper(t *testing.T) {
	ws := Table3Workloads()
	if len(ws) != 28 {
		t.Fatalf("Table 3 has %d workloads, want 28", len(ws))
	}
	if ws[0].Name != "hmmer" || ws[0].HotRows != 1675 {
		t.Fatalf("first row %+v", ws[0])
	}
	if ws[27].Name != "comm3" || ws[27].HotRows != 1 {
		t.Fatalf("last row %+v", ws[27])
	}
	// Hot-row counts are in the paper's descending order.
	for i := 1; i < len(ws); i++ {
		if ws[i].HotRows > ws[i-1].HotRows {
			t.Fatalf("hot rows not descending at %s", ws[i].Name)
		}
	}
	// mcf has the highest MPKI (107.81).
	var mcf Workload
	for _, w := range ws {
		if w.Name == "mcf" {
			mcf = w
		}
	}
	if mcf.MPKI != 107.81 {
		t.Fatalf("mcf MPKI = %v", mcf.MPKI)
	}
}

func TestSeventyEightWorkloads(t *testing.T) {
	n := len(AllWorkloads()) + len(Mixes(8))
	if n != 78 {
		t.Fatalf("workload set has %d entries, want 78", n)
	}
}

func TestMixesHaveOneWorkloadPerCore(t *testing.T) {
	for _, m := range Mixes(8) {
		if len(m.Workloads) != 8 {
			t.Fatalf("mix %s has %d workloads", m.Name, len(m.Workloads))
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("bzip2"); !ok || w.MPKI != 5.57 {
		t.Fatalf("ByName(bzip2) = %+v, %v", w, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("found nonexistent workload")
	}
}

func TestDistinctWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range AllWorkloads() {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestPerCoreSeedDistinct(t *testing.T) {
	// All (base, core) pairs in realistic ranges must map to distinct
	// seeds: a collision would give two cores of a rate-mode run (or the
	// same core across two seeds) identical access streams.
	seen := map[uint64]string{}
	for base := uint64(0); base < 64; base++ {
		for core := 0; core < 64; core++ {
			s := PerCoreSeed(base, core)
			id := fmt.Sprintf("base=%d core=%d", base, core)
			if prev, dup := seen[s]; dup {
				t.Fatalf("PerCoreSeed collision: %s and %s both map to %#x", prev, id, s)
			}
			seen[s] = id
		}
	}
	// Core 0 must not degenerate to the base seed itself.
	if PerCoreSeed(42, 0) == 42 {
		t.Fatal("PerCoreSeed(base, 0) returned base unchanged")
	}
}

func TestPerCoreSeedStreamsDecorrelated(t *testing.T) {
	// Generators seeded per-core from one run seed must emit different
	// streams; the old raw-state-offset scheme is gone, but this pins the
	// contract for whatever derivation replaces it.
	w, _ := ByName("mcf")
	var prev []Record
	for core := 0; core < 4; core++ {
		gen := NewGenerator(w, GeneratorParams{Seed: PerCoreSeed(9, core)})
		cur := make([]Record, 32)
		for i := range cur {
			cur[i], _ = gen.Next()
		}
		if prev != nil {
			same := true
			for i := range cur {
				if cur[i] != prev[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("cores %d and %d emit identical streams", core-1, core)
			}
		}
		prev = cur
	}
}
