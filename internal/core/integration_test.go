package core

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// TestEndToEndDataIntegrityUnderAttack is the full-stack correctness
// property: software writes data through the memory controller, an
// attacker hammers the same bank hard enough to force many swaps,
// re-swaps and RIT evictions across several epochs — and every logical
// line still reads back its own data.
func TestEndToEndDataIntegrityUnderAttack(t *testing.T) {
	cfg := config.Default()
	cfg.RowsPerBank = 2 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240

	sys := dram.MustNew(cfg)
	r, err := New(sys, DefaultParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ctl := memctrl.New(sys, r)

	// Software view: tag 200 logical rows through the controller.
	lines := make([]uint64, 200)
	for i := range lines {
		lines[i] = sys.Encode(dram.Address{Row: i * 7 % cfg.RowsPerBank})
		ctl.WriteLine(lines[i], uint64(0xD000+i))
	}

	// Attacker view: chase random rows in the same bank for 4 epochs
	// (T_RRS activations per row, forcing a swap each time).
	chase := attack.NewRandomChase(int(r.Params().SwapThreshold), cfg.RowsPerBank, 13)
	now := int64(0)
	deadline := 4 * cfg.EpochCycles
	for now < deadline {
		row := chase.NextRow()
		now = ctl.Access(sys.Encode(dram.Address{Row: row}), false, now)
	}
	if r.Stats().Swaps < 50 {
		t.Fatalf("only %d swaps; attack too weak to exercise the stack", r.Stats().Swaps)
	}

	for i, line := range lines {
		if got := ctl.ReadLine(line); got != uint64(0xD000+i) {
			t.Fatalf("line %d reads %#x, want %#x (after %d swaps)",
				i, got, 0xD000+i, r.Stats().Swaps)
		}
	}
	// Every bank's RIT still satisfies the involution invariant.
	sys.EachBank(func(id dram.BankID, _ *dram.Bank) {
		if err := r.RIT(id).CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", id, err)
		}
	})
}

// TestSkippedSwapGraceful drives RRS on a bank so small that swap
// destinations run out; the mitigation must degrade gracefully (skip the
// swap, count it) rather than corrupt state.
func TestSkippedSwapGraceful(t *testing.T) {
	cfg := config.Default()
	cfg.RowsPerBank = 32 // tiny: HRT+RIT residency can cover the bank
	cfg.EpochCycles = int64(cfg.TRC) * 800
	cfg.RowHammerThreshold = 48

	sys := dram.MustNew(cfg)
	r, err := New(sys, DefaultParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	id := dram.BankID{}
	rng := prince.Seeded(2)
	for i := 0; i < 6000; i++ {
		row := rng.Intn(cfg.RowsPerBank)
		r.OnActivate(id, row, r.Remap(id, row), int64(i))
	}
	st := r.Stats()
	if st.SkippedSwaps == 0 {
		t.Skip("no skips at this seed; nothing to verify")
	}
	if err := r.RIT(id).CheckInvariants(); err != nil {
		t.Fatalf("state corrupted after skips: %v", err)
	}
}

// TestRRSWithFaultModelNeverFlipsBenign runs a benign-hot pattern with the
// fault model attached: RRS's own swap transfers must not cause flips.
func TestRRSWithFaultModelNeverFlipsBenign(t *testing.T) {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240

	sys := dram.MustNew(cfg)
	fm := attack.NewFaultModel(sys, 0, attack.Alpha2For(cfg))
	r, err := New(sys, DefaultParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ctl := memctrl.New(sys, r)

	rng := prince.Seeded(21)
	now := int64(0)
	deadline := 3 * cfg.EpochCycles
	for now < deadline {
		// A benign-hot mix: 16 hot rows plus background traffic.
		var row int
		if rng.Intn(2) == 0 {
			row = rng.Intn(16) * 5
		} else {
			row = rng.Intn(cfg.RowsPerBank)
		}
		now = ctl.Access(sys.Encode(dram.Address{Row: row}), false, now)
	}
	if r.Stats().Swaps == 0 {
		t.Fatal("no swaps; pattern too cold")
	}
	if fm.FlipCount() != 0 {
		t.Fatalf("benign pattern flipped %d bits under RRS: %v",
			fm.FlipCount(), fm.Flips())
	}
}
