// Security-analysis example: explore the trade-off that sets T_RRS = 800.
//
// It reproduces Table 4's reasoning for a configurable Row Hammer
// threshold: how long the optimal random-chase attacker needs to land
// k = T_RH/T swaps on one physical row, how that shifts if DRAM gets more
// vulnerable, and what the swap rate costs benign workloads.
//
//	go run ./examples/secanalysis
//	go run ./examples/secanalysis -trh 2400
package main

import (
	"flag"
	"fmt"

	"repro/internal/security"
	"repro/internal/stats"
)

func main() {
	trh := flag.Int("trh", 4800, "Row Hammer threshold to design for")
	flag.Parse()

	fmt.Printf("Designing RRS for T_RH = %d (LPDDR4-new class)\n\n", *trh)

	// Sweep the candidate swap thresholds, as the paper does in Table 4.
	t := stats.NewTable("T (swap threshold)", "k", "swaps/64ms under attack",
		"expected attack time", "verdict")
	for k := 4; k <= 8; k++ {
		T := *trh / k
		m := security.PaperModel(T)
		m.RowHammerThreshold = *trh
		secs := m.AttackSeconds()
		verdict := "too weak"
		switch {
		case secs > 10*365.25*86400:
			verdict = "very strong"
		case secs > 365.25*86400:
			verdict = "strong (> 1 year)"
		case secs > 86400:
			verdict = "days only"
		}
		t.AddRow(T, k, fmt.Sprintf("%.0f", m.Balls()),
			security.FormatDuration(secs), verdict)
	}
	fmt.Print(t.String())

	// The paper picks the smallest k whose attack time exceeds a year.
	chosen := 0
	for k := 4; k <= 12; k++ {
		m := security.PaperModel(*trh / k)
		m.RowHammerThreshold = *trh
		if m.AttackSeconds() > 365.25*86400 {
			chosen = k
			break
		}
	}
	if chosen == 0 {
		fmt.Println("\nNo k up to 12 reaches a year of security at this T_RH.")
		return
	}
	T := *trh / chosen
	fmt.Printf("\nChosen design point: T_RRS = %d (k = %d)\n", T, chosen)
	fmt.Printf("  tracker entries per bank:  %d\n", 1360000/T)
	fmt.Printf("  RIT tuples per bank:       %d\n", 2*1360000/T)
	fmt.Printf("  duty cycle under attack:   %.3f (single bank), %.3f (all banks)\n",
		security.DutyCycle(T, 45e-9, 2.9e-6, 1),
		security.DutyCycle(T, 45e-9, 2.9e-6, 8))

	m := security.PaperModel(T)
	m.RowHammerThreshold = *trh
	fmt.Printf("  expected time to first flip under continuous attack: %s\n",
		security.FormatDuration(m.AttackSeconds()))
}
