// Command rrs-loadgen measures a serving fleet's capacity: closed-loop
// clients submit real (small) simulation jobs and wait for results,
// ramping concurrency level by level, and the run is published as a
// JSON report with throughput, latency percentiles and fleet counters.
//
// Two ways to point it at a fleet:
//
//	rrs-loadgen -targets http://h1:8080,http://h2:8080 -levels 1,2,4,8
//	rrs-loadgen -local 3 -levels 1,2,4 -out BENCH_PR8.fleet.json
//
// -local N spins up an N-node in-process fleet (real engine, loopback
// HTTP) so a laptop or CI box can benchmark the fleet path with no
// deployment. Each client is closed-loop — it submits, waits for the
// result, and only then submits again — so offered load equals
// concurrency and the system is never driven past its capacity into
// meaningless queue growth.
//
// Every request uses a unique seed by default, defeating the result
// cache and measuring true simulation capacity. -cache-fraction mixes
// in repeated specs to show the fleet-wide cache path instead.
//
// -slo-p99 asserts a latency objective: if any level's p99 exceeds it,
// the report is still written but the exit status is 1 — CI-friendly
// capacity regression guarding.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/resilience"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// report is the published benchmark artifact.
type report struct {
	GeneratedAt   string           `json:"generated_at"`
	Targets       []string         `json:"targets"`
	LocalNodes    int              `json:"local_nodes,omitempty"`
	Workload      service.Spec     `json:"workload_template"`
	JobsPerClient int              `json:"jobs_per_client"`
	CacheFraction float64          `json:"cache_fraction"`
	SLOP99Millis  float64          `json:"slo_p99_ms,omitempty"`
	Levels        []levelReport    `json:"levels"`
	FleetCounters map[string]int64 `json:"fleet_counters,omitempty"`
	SLOViolated   bool             `json:"slo_violated"`
}

type levelReport struct {
	Clients     int     `json:"clients"`
	Jobs        int     `json:"jobs"`
	Errors      int     `json:"errors"`
	Seconds     float64 `json:"seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50Millis   float64 `json:"p50_ms"`
	P90Millis   float64 `json:"p90_ms"`
	P99Millis   float64 `json:"p99_ms"`
	MaxMillis   float64 `json:"max_ms"`
	SLOExceeded bool    `json:"slo_exceeded,omitempty"`
}

func run() error {
	var (
		targetsFlag = flag.String("targets", "", "comma-separated fleet node base URLs")
		localNodes  = flag.Int("local", 0, "spin up an in-process fleet of N nodes instead of -targets")
		levelsFlag  = flag.String("levels", "1,2,4", "comma-separated closed-loop client counts, ramped in order")
		jobsPer     = flag.Int("jobs-per-client", 8, "jobs each client completes per level")
		workload    = flag.String("workload", "bzip2", "workload trace for the benchmark spec")
		mitigation  = flag.String("mitigation", "rrs", "mitigation for the benchmark spec")
		scale       = flag.Int("scale", 16, "memory scale divisor for the benchmark spec")
		epochs      = flag.Int("epochs", 1, "epochs per benchmark job")
		cacheFrac   = flag.Float64("cache-fraction", 0, "fraction of jobs reusing one hot spec (0 = all unique, cache-defeating)")
		sloP99      = flag.Duration("slo-p99", 0, "fail (exit 1) if any level's p99 end-to-end latency exceeds this (0 disables)")
		out         = flag.String("out", "", "write the JSON report here ('-' or empty = stdout)")
		timeout     = flag.Duration("timeout", 10*time.Minute, "whole-run budget")
	)
	flag.Parse()

	levels, err := parseLevels(*levelsFlag)
	if err != nil {
		return err
	}

	var targets []string
	if *localNodes > 0 {
		stop, urls, err := startLocalFleet(*localNodes)
		if err != nil {
			return err
		}
		defer stop()
		targets = urls
		fmt.Fprintf(os.Stderr, "rrs-loadgen: local fleet of %d nodes up\n", *localNodes)
	} else {
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			return fmt.Errorf("need -targets or -local")
		}
	}

	template := service.Spec{
		Workloads:  []string{*workload},
		Mitigation: *mitigation,
		Scale:      *scale,
		Epochs:     *epochs,
	}
	if err := template.Validate(); err != nil {
		return fmt.Errorf("benchmark spec: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	rep := report{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Targets:       targets,
		LocalNodes:    *localNodes,
		Workload:      template,
		JobsPerClient: *jobsPer,
		CacheFraction: *cacheFrac,
	}
	if *sloP99 > 0 {
		rep.SLOP99Millis = float64(sloP99.Milliseconds())
	}

	var seedCounter atomic.Uint64
	seedCounter.Store(1)
	for _, clients := range levels {
		lr := runLevel(ctx, targets, template, clients, *jobsPer, *cacheFrac, &seedCounter)
		if *sloP99 > 0 && lr.P99Millis > float64(sloP99.Milliseconds()) {
			lr.SLOExceeded = true
			rep.SLOViolated = true
		}
		rep.Levels = append(rep.Levels, lr)
		fmt.Fprintf(os.Stderr,
			"rrs-loadgen: %2d clients: %6.2f jobs/s, p50 %.0fms p99 %.0fms (%d jobs, %d errors)\n",
			lr.Clients, lr.JobsPerSec, lr.P50Millis, lr.P99Millis, lr.Jobs, lr.Errors)
	}

	rep.FleetCounters = scrapeFleetCounters(ctx, targets)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	if rep.SLOViolated {
		return fmt.Errorf("p99 SLO %s violated (see report)", *sloP99)
	}
	return nil
}

// runLevel drives one closed-loop concurrency level to completion.
func runLevel(ctx context.Context, targets []string, template service.Spec,
	clients, jobsPer int, cacheFrac float64, seeds *atomic.Uint64) levelReport {
	var mu sync.Mutex
	var latencies []time.Duration
	errs := 0

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client pins a target round-robin by index — in a fleet
			// any node accepts any job, so spreading the entry points
			// exercises forwarding rather than hammering one node.
			client := service.NewClient(targets[c%len(targets)])
			client.PollInterval = 10 * time.Millisecond
			for i := 0; i < jobsPer; i++ {
				spec := template
				// The hot spec (seed 0 stays fixed) models dashboard-style
				// repeated queries; unique seeds model fresh work.
				if cacheFrac > 0 && float64(i%jobsPer) < cacheFrac*float64(jobsPer) {
					spec.Seed = 1
				} else {
					spec.Seed = seeds.Add(1)
				}
				t0 := time.Now()
				_, err := client.Run(ctx, spec)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					latencies = append(latencies, d)
				}
				mu.Unlock()
				if ctx.Err() != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lr := levelReport{
		Clients: clients,
		Jobs:    len(latencies),
		Errors:  errs,
		Seconds: elapsed.Seconds(),
	}
	if elapsed > 0 {
		lr.JobsPerSec = float64(len(latencies)) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(latencies)-1))
			return float64(latencies[idx].Microseconds()) / 1000
		}
		lr.P50Millis = pct(0.50)
		lr.P90Millis = pct(0.90)
		lr.P99Millis = pct(0.99)
		lr.MaxMillis = float64(latencies[len(latencies)-1].Microseconds()) / 1000
	}
	return lr
}

// scrapeFleetCounters sums the fleet-interesting counters across every
// reachable target's /metrics endpoint.
func scrapeFleetCounters(ctx context.Context, targets []string) map[string]int64 {
	interesting := []string{
		"rrs_jobs_done_total", "rrs_jobs_shed_total", "rrs_cache_hits_total",
		"rrs_fleet_forwards_total", "rrs_fleet_forward_failovers_total",
		"rrs_fleet_proxied_total", "rrs_fleet_cache_fanout_hits_total",
		"rrs_fleet_steals_total", "rrs_fleet_donations_accepted_total",
		"rrs_fleet_replicated_total", "rrs_fleet_replicas_received_total",
		"rrs_fleet_repair_replicated_total",
	}
	sums := map[string]int64{}
	hc := &http.Client{Timeout: 5 * time.Second}
	for _, t := range targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t+"/metrics?format=json", nil)
		if err != nil {
			continue
		}
		resp, err := hc.Do(req)
		if err != nil {
			continue
		}
		var view service.JSONView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, name := range interesting {
			if v, ok := view.Counters[name]; ok {
				sums[name] += v
			}
		}
	}
	return sums
}

// startLocalFleet brings up n fleet nodes with the real engine on
// loopback listeners and returns their URLs plus a teardown.
func startLocalFleet(n int) (stop func(), urls []string, err error) {
	swaps := make([]*swapHandler, n)
	srvs := make([]*httptest.Server, n)
	roster := make([]fleet.Peer, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		srvs[i] = httptest.NewServer(swaps[i])
		roster[i] = fleet.Peer{ID: fmt.Sprintf("n%d", i+1), URL: srvs[i].URL}
	}
	nodes := make([]*fleet.Node, n)
	for i := range nodes {
		nodes[i], err = fleet.New(fleet.Options{
			Self:  roster[i],
			Peers: roster,
			Service: service.Options{
				Workers:    1, // one real simulation at a time per node
				QueueDepth: 256,
			},
			Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond},
		})
		if err != nil {
			break
		}
		swaps[i].h.Store(nodes[i].Handler())
		nodes[i].Start()
	}
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, node := range nodes {
			if node != nil {
				node.Close()
				node.Manager().Shutdown(ctx)
			}
		}
		for _, s := range srvs {
			s.Close()
		}
	}
	if err != nil {
		stop()
		return nil, nil, err
	}
	return stop, urls2(roster), nil
}

func urls2(roster []fleet.Peer) []string {
	out := make([]string, len(roster))
	for i, p := range roster {
		out[i] = p.URL
	}
	return out
}

// parseLevels parses the -levels ramp ("1,2,4") into client counts.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-levels entry %q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-levels is empty")
	}
	return out, nil
}

// swapHandler breaks the server/node construction cycle: listeners (and
// so URLs) must exist before the nodes that need the roster.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}
