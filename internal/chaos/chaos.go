// Package chaos is deterministic fault injection for the serving layer.
// It supplies the two failure surfaces a real fleet exposes — the
// network between client and server, and the worker executing a job —
// as seeded, repeatable wrappers:
//
//   - Transport is an http.RoundTripper that drops connections, injects
//     synthetic 5xx responses, and adds jittered latency at configured
//     rates, driven by one seeded PRNG so a failing schedule replays
//     exactly under `go test -race -run Chaos`.
//   - FlakyRuns wraps a job-execution function with per-spec transient
//     failures (classified for the manager's retry policy) and targeted
//     panics, exercising panic isolation and automatic retries without a
//     single nondeterministic branch.
//
// Nothing here is imported by production code; the packages under test
// take the interfaces (http.RoundTripper, service.Options.Run) and the
// chaos wrappers slot in from tests.
package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// Faults configures a Transport. Rates are probabilities in [0, 1],
// evaluated per request in the order drop → fail → delay.
type Faults struct {
	// Seed drives every probabilistic decision; equal seeds give equal
	// fault schedules.
	Seed uint64
	// DropRate is the chance a request never reaches the server: the
	// round trip returns a connection-refused-shaped error.
	DropRate float64
	// FailRate is the chance the server's answer is replaced by a
	// synthetic 503 (the request is NOT forwarded — like a proxy
	// shedding load before the backend).
	FailRate float64
	// DelayRate is the chance a request is delayed by a uniform draw in
	// (0, MaxDelay] before being forwarded.
	DelayRate float64
	// MaxDelay bounds injected latency (default 10 ms when DelayRate > 0).
	MaxDelay time.Duration
}

// Transport injects Faults in front of an inner http.RoundTripper. It is
// safe for concurrent use; the seeded PRNG is mutex-serialized so the
// fault sequence is a deterministic function of request order.
type Transport struct {
	// Inner performs real round trips (default http.DefaultTransport).
	// Tests that restart a backend swap the target by making Inner a
	// rewriting transport.
	Inner http.RoundTripper

	faults Faults

	mu       sync.Mutex
	rng      *rand.Rand
	requests int64
	dropped  int64
	failed   int64
	delayed  int64
}

// NewTransport builds a fault-injecting transport.
func NewTransport(f Faults, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if f.MaxDelay <= 0 {
		f.MaxDelay = 10 * time.Millisecond
	}
	return &Transport{
		Inner:  inner,
		faults: f,
		rng:    rand.New(rand.NewSource(int64(f.Seed))),
	}
}

// droppedError is the connection-level failure Transport fabricates. It
// classifies as transient so retry loops treat it like a real outage.
type droppedError struct{ op string }

func (e *droppedError) Error() string   { return "chaos: connection dropped during " + e.op }
func (e *droppedError) Transient() bool { return true }

// RoundTrip applies the fault schedule, then defers to Inner.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.requests++
	drop := t.rng.Float64() < t.faults.DropRate
	fail := !drop && t.rng.Float64() < t.faults.FailRate
	var delay time.Duration
	if !drop && !fail && t.faults.DelayRate > 0 && t.rng.Float64() < t.faults.DelayRate {
		delay = time.Duration(1 + t.rng.Int63n(int64(t.faults.MaxDelay)))
	}
	switch {
	case drop:
		t.dropped++
	case fail:
		t.failed++
	case delay > 0:
		t.delayed++
	}
	t.mu.Unlock()

	if drop {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &droppedError{op: req.Method + " " + req.URL.Path}
	}
	if fail {
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"chaos: injected 503"}`)),
			Request: req,
		}, nil
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	return t.Inner.RoundTrip(req)
}

// Stats reports how many requests were seen and faulted.
func (t *Transport) Stats() (requests, dropped, failed, delayed int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests, t.dropped, t.failed, t.delayed
}

// RunFunc is the manager's job-execution hook (service.Options.Run).
type RunFunc = service.RunFunc

// FlakyRuns injects worker-side faults into a RunFunc. Failure decisions
// are per spec hash: a spec's first FailAttempts runs fail with a
// transient error (so the manager's bounded retry is guaranteed to
// recover it — no probabilistic tail of permanently unlucky jobs), and
// specs selected by PanicOn panic on every run, modeling a deterministic
// engine bug.
type FlakyRuns struct {
	// Rate is the fraction of distinct specs whose first FailAttempts
	// runs fail transiently, chosen by a seeded hash of the spec.
	Rate float64
	// FailAttempts is how many leading attempts of a selected spec fail
	// (default 1).
	FailAttempts int
	// Seed decorrelates spec selection across tests.
	Seed uint64
	// PanicOn, when non-nil, marks specs whose runs always panic.
	PanicOn func(spec service.Spec) bool

	mu       sync.Mutex
	attempts map[string]int
	injected int64
	panics   int64
}

// Wrap returns inner with the configured faults applied in front.
func (f *FlakyRuns) Wrap(inner RunFunc) RunFunc {
	if f.FailAttempts <= 0 {
		f.FailAttempts = 1
	}
	return func(ctx context.Context, spec service.Spec,
		progress func(done, total int64)) (sim.Result, error) {
		if f.PanicOn != nil && f.PanicOn(spec) {
			f.mu.Lock()
			f.panics++
			f.mu.Unlock()
			panic("chaos: injected worker panic")
		}
		hash := spec.Hash()
		f.mu.Lock()
		if f.attempts == nil {
			f.attempts = make(map[string]int)
		}
		attempt := f.attempts[hash]
		f.attempts[hash] = attempt + 1
		flaky := selected(hash, f.Seed, f.Rate)
		inject := flaky && attempt < f.FailAttempts
		if inject {
			f.injected++
		}
		f.mu.Unlock()
		if inject {
			return sim.Result{}, resilience.MarkTransient(
				fmt.Errorf("chaos: injected transient failure (attempt %d)", attempt+1))
		}
		return inner(ctx, spec, progress)
	}
}

// Stats reports injected transient failures and panics so far.
func (f *FlakyRuns) Stats() (injected, panics int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected, f.panics
}

// selected deterministically maps a spec hash to [0,1) and compares it
// to rate. FNV-style fold of the hex hash mixed with the seed.
func selected(hash string, seed uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(hash); i++ {
		h ^= uint64(hash[i])
		h *= 0x100000001b3
	}
	return float64(h>>11)/float64(1<<53) < rate
}
