package memctrl

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dram"
)

func testConfig() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 1 << 10
	return cfg
}

func newCtl(mit Mitigation) (*Controller, config.Config) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	if mit == nil {
		mit = None{}
	}
	return New(sys, mit), cfg
}

// lineFor builds a line address for bank 0/row r/column c.
func lineFor(c *Controller, row, col int) uint64 {
	return c.System().Encode(dram.Address{Row: row, Col: col})
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10 // stay clear of the first refresh window
	missDone := c.Access(lineFor(c, 1, 0), false, base)
	missLat := missDone - base

	// Second access to the same row, after the bus is free: row hit.
	arrival := missDone + 10
	hitDone := c.Access(lineFor(c, 1, 1), false, arrival)
	hitLat := hitDone - arrival

	if hitLat >= missLat {
		t.Fatalf("row hit latency %d not below miss latency %d", hitLat, missLat)
	}
	st := c.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRowConflictSlowerThanMiss(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10
	done := c.Access(lineFor(c, 1, 0), false, base)

	// Conflicting row in the same bank, far enough in the future that
	// tRC has elapsed, so only the precharge penalty differs.
	arrival := done + int64(cfg.TRC)
	confDone := c.Access(lineFor(c, 2, 0), false, arrival)
	confLat := confDone - arrival
	missLat := int64(cfg.TRCD + cfg.TCAS + cfg.TBurst)
	if confLat != missLat+int64(cfg.TRP) {
		t.Fatalf("conflict latency %d, want %d", confLat, missLat+int64(cfg.TRP))
	}
	if c.Stats().RowConflicts != 1 {
		t.Fatalf("stats: %+v", c.Stats())
	}
}

func TestBankTRCEnforcedBetweenActivations(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10
	c.Access(lineFor(c, 1, 0), false, base)
	// Immediate conflicting access: the new ACT cannot start until tRC
	// after the first ACT (the precharge overlaps the tRC window).
	done := c.Access(lineFor(c, 2, 0), false, base+1)
	earliest := base + int64(cfg.TRC) + int64(cfg.TRCD+cfg.TCAS+cfg.TBurst)
	if done < earliest {
		t.Fatalf("second ACT finished at %d, before tRC allows (%d)", done, earliest)
	}
}

func TestBusContentionAcrossBanks(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10
	// Two accesses to different banks, same channel, same arrival: data
	// transfers must serialize on the bus.
	l0 := c.System().Encode(dram.Address{BankID: dram.BankID{Bank: 0}, Row: 1})
	l1 := c.System().Encode(dram.Address{BankID: dram.BankID{Bank: 1}, Row: 1})
	d0 := c.Access(l0, false, base)
	d1 := c.Access(l1, false, base)
	if d1 < d0+int64(cfg.TBurst) {
		t.Fatalf("transfers overlap on the bus: %d then %d", d0, d1)
	}
}

func TestDifferentChannelsIndependent(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10
	l0 := c.System().Encode(dram.Address{BankID: dram.BankID{Channel: 0}, Row: 1})
	l1 := c.System().Encode(dram.Address{BankID: dram.BankID{Channel: 1}, Row: 1})
	d0 := c.Access(l0, false, base)
	d1 := c.Access(l1, false, base)
	if d0 != d1 {
		t.Fatalf("parallel channels should complete together: %d vs %d", d0, d1)
	}
}

func TestRefreshDelaysAccess(t *testing.T) {
	c, cfg := newCtl(nil)
	// Arrival inside the first refresh window is served after tRFC.
	done := c.Access(lineFor(c, 1, 0), false, 0)
	minDone := int64(cfg.TRFC) + int64(cfg.TRCD+cfg.TCAS+cfg.TBurst)
	if done < minDone {
		t.Fatalf("access during refresh finished at %d, want >= %d", done, minDone)
	}
}

func TestRefreshClosesRowBuffer(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10
	c.Access(lineFor(c, 1, 0), false, base)
	// Next access to the same row but after a full refresh interval:
	// treated as a miss, not a hit.
	c.Access(lineFor(c, 1, 1), false, base+int64(cfg.TREFI))
	st := c.Stats()
	if st.RowHits != 0 || st.RowMisses != 2 {
		t.Fatalf("stats after refresh: %+v", st)
	}
}

func TestReadWriteCounters(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10
	c.Access(lineFor(c, 1, 0), false, base)
	c.Access(lineFor(c, 1, 1), true, base+100)
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// penaltyMit adds a fixed access penalty.
type penaltyMit struct {
	None
	penalty int64
}

func (p penaltyMit) AccessPenalty() int64 { return p.penalty }

func TestAccessPenaltyAdded(t *testing.T) {
	cfg := testConfig()
	base := int64(cfg.TRFC) + 10

	plain, _ := newCtl(nil)
	slow, _ := newCtl(penaltyMit{penalty: 2})

	d0 := plain.Access(lineFor(plain, 1, 0), false, base)
	d1 := slow.Access(lineFor(slow, 1, 0), false, base)
	if d1 != d0+2 {
		t.Fatalf("penalty not applied: %d vs %d", d0, d1)
	}
}

// delayMit delays every activation by a fixed amount.
type delayMit struct {
	None
	delay int64
}

func (d delayMit) ActivateDelay(dram.BankID, int, int64) int64 { return d.delay }

func TestActivateDelayApplied(t *testing.T) {
	cfg := testConfig()
	base := int64(cfg.TRFC) + 10

	plain, _ := newCtl(nil)
	throttled, _ := newCtl(delayMit{delay: 50})

	d0 := plain.Access(lineFor(plain, 1, 0), false, base)
	d1 := throttled.Access(lineFor(throttled, 1, 0), false, base)
	if d1 != d0+50 {
		t.Fatalf("delay not applied: %d vs %d", d0, d1)
	}
	if throttled.Stats().ActDelayed != 50 {
		t.Fatalf("ActDelayed = %d", throttled.Stats().ActDelayed)
	}
}

func TestActivateDelayNotAppliedOnRowHit(t *testing.T) {
	cfg := testConfig()
	base := int64(cfg.TRFC) + 10
	throttled, _ := newCtl(delayMit{delay: 50})
	d0 := throttled.Access(lineFor(throttled, 1, 0), false, base)
	arrival := d0 + 10
	d1 := throttled.Access(lineFor(throttled, 1, 1), false, arrival)
	if d1-arrival != int64(cfg.TCAS+cfg.TBurst) {
		t.Fatalf("row hit latency %d includes activation delay", d1-arrival)
	}
}

// blockMit blocks the channel on every activation.
type blockMit struct {
	None
	block int64
}

func (b blockMit) OnActivate(dram.BankID, int, int, int64) ActResult {
	return ActResult{ChannelBlock: b.block}
}

func TestChannelBlockDelaysLaterAccess(t *testing.T) {
	cfg := testConfig()
	base := int64(cfg.TRFC) + 10
	c, _ := newCtl(blockMit{block: 1000})
	c.Access(lineFor(c, 1, 0), false, base) // triggers a 1000-cycle block
	// An access to a different bank in the same channel must wait.
	l := c.System().Encode(dram.Address{BankID: dram.BankID{Bank: 5}, Row: 1})
	done := c.Access(l, false, base+1)
	if done < base+1000 {
		t.Fatalf("access completed at %d despite channel block to %d", done, base+1000)
	}
}

// remapMit redirects one row.
type remapMit struct {
	None
	from, to int
}

func (r remapMit) Remap(_ dram.BankID, row int) int {
	if row == r.from {
		return r.to
	}
	if row == r.to {
		return r.from
	}
	return row
}

func TestRemapRedirectsActivation(t *testing.T) {
	cfg := testConfig()
	base := int64(cfg.TRFC) + 10
	c, _ := newCtl(remapMit{from: 1, to: 9})
	c.Access(lineFor(c, 1, 0), false, base)
	sys := c.System()
	if got := sys.ActCount(dram.BankID{}, 9); got != 1 {
		t.Fatalf("physical row 9 activations = %d, want 1", got)
	}
	if got := sys.ActCount(dram.BankID{}, 1); got != 0 {
		t.Fatalf("physical row 1 activations = %d, want 0", got)
	}
}

func TestWriteLineReadLineThroughRemap(t *testing.T) {
	c, _ := newCtl(remapMit{from: 1, to: 9})
	line := lineFor(c, 1, 0)
	c.WriteLine(line, 0x1234)
	if got := c.ReadLine(line); got != 0x1234 {
		t.Fatalf("ReadLine = %#x, want 0x1234", got)
	}
	// The data physically lives in row 9.
	if got := c.System().RowContent(dram.BankID{}, 9); got != 0x1234 {
		t.Fatalf("physical row 9 content = %#x", got)
	}
}

// epochMit records epoch callbacks.
type epochMit struct {
	None
	epochs []int64
}

func (e *epochMit) OnEpoch(now int64) { e.epochs = append(e.epochs, now) }

func TestEpochBoundariesFire(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	mit := &epochMit{}
	c := New(sys, mit)

	id := dram.BankID{}
	sys.Activate(id, 3, 0)
	if sys.ActCount(id, 3) != 1 {
		t.Fatal("setup failed")
	}
	c.Access(lineFor(c, 1, 0), false, cfg.EpochCycles*2+100)
	if len(mit.epochs) != 2 {
		t.Fatalf("fired %d epochs, want 2", len(mit.epochs))
	}
	if mit.epochs[0] != cfg.EpochCycles || mit.epochs[1] != 2*cfg.EpochCycles {
		t.Fatalf("epoch times %v", mit.epochs)
	}
	if sys.ActCount(id, 3) != 0 {
		t.Fatal("epoch boundary did not reset activation counts")
	}
	if c.Stats().Epochs != 2 {
		t.Fatalf("Epochs stat = %d", c.Stats().Epochs)
	}
}

// orderMit records the interleaving of epoch and activation callbacks
// and applies a fixed activation delay, so tests can prove a boundary
// crossed mid-access is delivered before the activation that crossed it.
type orderMit struct {
	None
	delay  int64
	block  int64
	events []orderEvent
}

type orderEvent struct {
	kind string // "epoch" or "act"
	at   int64
}

func (o *orderMit) ActivateDelay(dram.BankID, int, int64) int64 { return o.delay }

func (o *orderMit) OnEpoch(now int64) {
	o.events = append(o.events, orderEvent{"epoch", now})
}

func (o *orderMit) OnActivate(_ dram.BankID, _, _ int, now int64) ActResult {
	o.events = append(o.events, orderEvent{"act", now})
	return ActResult{ChannelBlock: o.block}
}

// TestEpochDeliveredBeforeDelayedActivation: an access arriving inside
// epoch N whose activation is throttled past the N/N+1 boundary must see
// OnEpoch fire before OnActivate — otherwise the mitigation observes an
// activation timestamped inside an epoch whose trackers have not reset.
func TestEpochDeliveredBeforeDelayedActivation(t *testing.T) {
	cfg := testConfig()
	mit := &orderMit{delay: 400}
	sys := dram.MustNew(cfg)
	c := New(sys, mit)

	// Arrive 100 cycles before the first boundary; the 400-cycle
	// throttle pushes the activation into epoch 1.
	arrival := cfg.EpochCycles - 100
	c.Access(lineFor(c, 1, 0), false, arrival)

	want := []orderEvent{
		{"epoch", cfg.EpochCycles},
		{"act", arrival + mit.delay},
	}
	if len(mit.events) != len(want) {
		t.Fatalf("events = %+v, want %+v", mit.events, want)
	}
	for i := range want {
		if mit.events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, mit.events[i], want[i])
		}
	}
	// The boundary also reset the epoch's DRAM activation counters
	// before the activation landed, so the new epoch holds exactly one.
	if got := sys.ActCount(dram.BankID{}, 1); got != 1 {
		t.Fatalf("new epoch activation count = %d, want 1", got)
	}
	if c.Stats().Epochs != 1 {
		t.Fatalf("Epochs stat = %d, want 1", c.Stats().Epochs)
	}
}

// TestEpochDeliveredBeforeBlockedAccess: a swap-style channel block that
// straddles a boundary delays the next access's first DRAM command into
// the new epoch; the boundary must be delivered before that command's
// activation is reported.
func TestEpochDeliveredBeforeBlockedAccess(t *testing.T) {
	cfg := testConfig()
	mit := &orderMit{block: 2000}
	c := New(dram.MustNew(cfg), mit)

	// First access triggers a 2000-cycle channel block ending inside
	// epoch 1; the second access arrives before the boundary but cannot
	// start until the block clears.
	c.Access(lineFor(c, 1, 0), false, cfg.EpochCycles-1000)
	c.Access(lineFor(c, 2, 0), false, cfg.EpochCycles-900)

	var kinds []string
	for _, e := range mit.events {
		kinds = append(kinds, e.kind)
	}
	want := []string{"act", "epoch", "act"}
	if len(kinds) != len(want) {
		t.Fatalf("callback order %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("callback order %v, want %v", kinds, want)
		}
	}
	if second := mit.events[2]; second.at <= cfg.EpochCycles {
		t.Fatalf("blocked activation at %d should land past the boundary %d",
			second.at, cfg.EpochCycles)
	}
}

func TestAdvanceToIdempotent(t *testing.T) {
	cfg := testConfig()
	mit := &epochMit{}
	c := New(dram.MustNew(cfg), mit)
	c.AdvanceTo(cfg.EpochCycles + 1)
	c.AdvanceTo(cfg.EpochCycles + 2)
	if len(mit.epochs) != 1 {
		t.Fatalf("fired %d epochs, want 1", len(mit.epochs))
	}
}

func TestTotalLatencyAccumulates(t *testing.T) {
	c, cfg := newCtl(nil)
	base := int64(cfg.TRFC) + 10
	d := c.Access(lineFor(c, 1, 0), false, base)
	if got := c.Stats().TotalLatency; got != d-base {
		t.Fatalf("TotalLatency = %d, want %d", got, d-base)
	}
}

func TestNoneMitigationIsTransparent(t *testing.T) {
	var m None
	if m.Remap(dram.BankID{}, 5) != 5 {
		t.Fatal("None.Remap changed the row")
	}
	if m.ActivateDelay(dram.BankID{}, 5, 0) != 0 {
		t.Fatal("None delays")
	}
	if res := m.OnActivate(dram.BankID{}, 5, 5, 0); res.ChannelBlock != 0 || res.BankBlock != 0 {
		t.Fatal("None acts")
	}
	if res := m.OnActivate(dram.BankID{}, 5, 5, 0); res.Headroom <= 0 {
		t.Fatal("None grants no batching headroom")
	}
	if m.AccessPenalty() != 0 {
		t.Fatal("None penalizes")
	}
}

// TestPropertyPerBankActivationSpacing drives random same-bank traffic and
// verifies no two activations of the bank are closer than tRC.
func TestPropertyPerBankActivationSpacing(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	var actTimes []int64
	sys.Subscribe(listenerFunc(func(_ dram.BankID, _ int, now int64) {
		actTimes = append(actTimes, now)
	}))
	c := New(sys, None{})

	now := int64(cfg.TRFC) + 1
	seed := uint64(12345)
	for i := 0; i < 500; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		row := int(seed>>33) % 64
		now = c.Access(lineFor(c, row, 0), false, now)
	}
	for i := 1; i < len(actTimes); i++ {
		if gap := actTimes[i] - actTimes[i-1]; gap < int64(cfg.TRC) {
			t.Fatalf("ACTs %d and %d only %d cycles apart (tRC=%d)",
				i-1, i, gap, cfg.TRC)
		}
	}
	if len(actTimes) < 400 {
		t.Fatalf("only %d activations; pattern not conflict-heavy", len(actTimes))
	}
}

type listenerFunc func(dram.BankID, int, int64)

func (f listenerFunc) OnActivate(id dram.BankID, row int, now int64) { f(id, row, now) }

func TestClosedPagePolicy(t *testing.T) {
	cfg := testConfig()
	cfg.ClosedPage = true
	c := New(dram.MustNew(cfg), None{})
	base := int64(cfg.TRFC) + 10
	d0 := c.Access(lineFor(c, 1, 0), false, base)
	// Same row again: closed-page never hits...
	c.Access(lineFor(c, 1, 1), false, d0+int64(cfg.TRC))
	// ...and a different row never pays the conflict precharge.
	arrival := d0 + 10*int64(cfg.TRC)
	d2 := c.Access(lineFor(c, 2, 0), false, arrival)
	if lat := d2 - arrival; lat != int64(cfg.TRCD+cfg.TCAS+cfg.TBurst) {
		t.Fatalf("closed-page activate latency %d, want %d",
			lat, cfg.TRCD+cfg.TCAS+cfg.TBurst)
	}
	st := c.Stats()
	if st.RowHits != 0 || st.RowConflicts != 0 || st.RowMisses != 3 {
		t.Fatalf("closed-page stats: %+v", st)
	}
}
