package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/sim"
)

// Client talks to a running rrs-serve. It is safe for concurrent use —
// cmd/rrs-experiments fans a whole figure sweep through one Client.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval is the result-polling cadence (default 250 ms).
	PollInterval time.Duration
}

// NewClient targets a server base URL such as "http://localhost:8080".
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("service client: %s unreachable: %w", c.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service client: healthz returned %s", resp.Status)
	}
	return nil
}

// Submit POSTs spec and returns the accepted job's view.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobView{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+apiPrefix, bytes.NewReader(body))
	if err != nil {
		return JobView{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var v JobView
	if err := c.do(req, http.StatusCreated, http.StatusOK, &v); err != nil {
		return JobView{}, err
	}
	return v, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+apiPrefix+"/"+id, nil)
	if err != nil {
		return JobView{}, err
	}
	var v JobView
	if err := c.do(req, http.StatusOK, 0, &v); err != nil {
		return JobView{}, err
	}
	return v, nil
}

// Cancel DELETEs a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+apiPrefix+"/"+id, nil)
	if err != nil {
		return err
	}
	var v JobView
	return c.do(req, http.StatusOK, 0, &v)
}

// Result polls GET /v1/jobs/{id}/result until the job finishes, ctx is
// cancelled, or the server reports a terminal failure.
func (c *Client) Result(ctx context.Context, id string) (sim.Result, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.base+apiPrefix+"/"+id+"/result", nil)
		if err != nil {
			return sim.Result{}, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return sim.Result{}, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return sim.Result{}, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var env ResultEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				return sim.Result{}, fmt.Errorf("service client: decoding result: %w", err)
			}
			return env.Result, nil
		case http.StatusAccepted:
			select {
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			case <-time.After(interval):
			}
		default:
			return sim.Result{}, apiError(resp.StatusCode, body)
		}
	}
}

// Run submits spec and waits for its result — the drop-in remote
// equivalent of sim.Run for named-mitigation jobs.
func (c *Client) Run(ctx context.Context, spec Spec) (sim.Result, error) {
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return sim.Result{}, err
	}
	return c.Result(ctx, v.ID)
}

// do executes req expecting one of two success codes (okAlt 0 = only
// ok), decoding the JSON body into out.
func (c *Client) do(req *http.Request, ok, okAlt int, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != ok && (okAlt == 0 || resp.StatusCode != okAlt) {
		return apiError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

func apiError(status int, body []byte) error {
	var e errorBody
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("service client: server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("service client: server returned %d", status)
}
