package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// testConfig builds a scaled-down system: T_RH = 48 so T_RRS = 8, an epoch
// of 800 activations, 4K rows per bank.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 800 // ACT_max = 800
	cfg.RowHammerThreshold = 48            // T_RRS = 8
	return cfg
}

func newRRS(t *testing.T, cfg config.Config) (*RRS, *dram.System) {
	t.Helper()
	sys := dram.MustNew(cfg)
	r, err := New(sys, DefaultParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return r, sys
}

func TestDefaultParamsPaperValues(t *testing.T) {
	cfg := config.Default()
	p, err := DefaultParams(cfg).Finalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.SwapThreshold != 800 {
		t.Errorf("SwapThreshold = %d, want 800", p.SwapThreshold)
	}
	// ACT_max = 64ms x (1 - tRFC/tREFI) / 45ns ~ 1.36M, the paper's
	// figure; entries land at the paper's 1700.
	if p.TrackerEntries < 1650 || p.TrackerEntries > 1750 {
		t.Errorf("TrackerEntries = %d, want about 1700", p.TrackerEntries)
	}
	if p.RITTuples != 2*p.TrackerEntries {
		t.Errorf("RITTuples = %d, want %d", p.RITTuples, 2*p.TrackerEntries)
	}
	// One swap op is about 1.46 us = ~2300 bus cycles at 1.6 GHz.
	if p.SwapOpCycles < 2200 || p.SwapOpCycles > 2500 {
		t.Errorf("SwapOpCycles = %d, want about 2336", p.SwapOpCycles)
	}
}

func TestGeometryPaperShapes(t *testing.T) {
	// 1700 tracker entries -> 64 sets x 20 ways; 6800 RIT entries ->
	// 256 sets x 20 ways (the paper's Table 5 geometries).
	g := geometry(1700)
	if g.Sets != 64 || g.Ways != 20 {
		t.Errorf("geometry(1700) = %+v, want 64x20", g)
	}
	g = geometry(6800)
	if g.Sets != 256 || g.Ways != 20 {
		t.Errorf("geometry(6800) = %+v, want 256x20", g)
	}
}

func TestNoSwapBelowThreshold(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	id := dram.BankID{}
	for i := 0; i < 7; i++ { // T_RRS = 8
		res := r.OnActivate(id, 5, 5, int64(i))
		if res.ChannelBlock != 0 {
			t.Fatalf("activation %d triggered a swap", i)
		}
	}
	if r.Stats().Swaps != 0 {
		t.Fatalf("Swaps = %d", r.Stats().Swaps)
	}
	if got := r.Remap(id, 5); got != 5 {
		t.Fatalf("row remapped to %d without a swap", got)
	}
}

func TestSwapAtThreshold(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	id := dram.BankID{}
	var blocked int64
	for i := 0; i < 8; i++ {
		res := r.OnActivate(id, 5, 5, int64(i))
		blocked += res.ChannelBlock
	}
	st := r.Stats()
	if st.Swaps != 1 {
		t.Fatalf("Swaps = %d, want 1", st.Swaps)
	}
	if blocked < r.Params().SwapOpCycles {
		t.Fatalf("channel blocked %d cycles, want >= %d", blocked, r.Params().SwapOpCycles)
	}
	if got := r.Remap(id, 5); got == 5 {
		t.Fatal("row not remapped after swap")
	}
	// The swap is recorded in this bank's RIT as a locked tuple.
	if r.RIT(id).Tuples() != 1 {
		t.Fatalf("RIT tuples = %d", r.RIT(id).Tuples())
	}
	if r.RIT(id).LockedTuples() != 1 {
		t.Fatal("fresh swap tuple not locked")
	}
}

func TestSwapMovesData(t *testing.T) {
	r, sys := newRRS(t, testConfig())
	id := dram.BankID{}
	sys.SetRowContent(id, 5, 0xDEAD)
	for i := 0; i < 8; i++ {
		r.OnActivate(id, 5, r.Remap(id, 5), int64(i))
	}
	phys := r.Remap(id, 5)
	if phys == 5 {
		t.Fatal("no remap")
	}
	if got := sys.RowContent(id, phys); got != 0xDEAD {
		t.Fatalf("data at new location = %#x, want 0xDEAD", got)
	}
}

func TestDestinationExclusion(t *testing.T) {
	// Invariant 2: the destination is never a row resident in HRT or RIT.
	cfg := testConfig()
	cfg.RowsPerBank = 64 // small bank makes collisions likely
	r, _ := newRRS(t, cfg)
	id := dram.BankID{}
	rng := prince.Seeded(3)
	for i := 0; i < 3000; i++ {
		row := rng.Intn(cfg.RowsPerBank)
		phys := r.Remap(id, row)
		res := r.OnActivate(id, row, phys, int64(i))
		_ = res
	}
	if r.Stats().Swaps == 0 {
		t.Fatal("no swaps triggered")
	}
	if err := r.RIT(id).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReswapRelocatesBothRows(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	id := dram.BankID{}
	// First 8 ACTs swap row 5 with some partner P.
	for i := 0; i < 8; i++ {
		r.OnActivate(id, 5, r.Remap(id, 5), int64(i))
	}
	partner := r.Remap(id, 5)
	// Next 8 ACTs of the same logical row trigger a re-swap.
	for i := 8; i < 16; i++ {
		r.OnActivate(id, 5, r.Remap(id, 5), int64(i))
	}
	st := r.Stats()
	if st.Reswaps != 1 {
		t.Fatalf("Reswaps = %d, want 1", st.Reswaps)
	}
	newPhys := r.Remap(id, 5)
	if newPhys == int(partner) || newPhys == 5 {
		t.Fatalf("re-swap left row at %d (old partner %d)", newPhys, partner)
	}
	// The old partner row must also have been relocated: its logical id
	// no longer maps home.
	if got := r.Remap(id, int(partner)); got == int(partner) {
		t.Fatal("old partner returned home; its hammered location got no cold occupant")
	}
	if err := r.RIT(id).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReswapPreservesData(t *testing.T) {
	r, sys := newRRS(t, testConfig())
	id := dram.BankID{}
	sys.SetRowContent(id, 5, 0xAAA)
	for i := 0; i < 16; i++ { // swap then re-swap
		r.OnActivate(id, 5, r.Remap(id, 5), int64(i))
	}
	if got := sys.RowContent(id, r.Remap(id, 5)); got != 0xAAA {
		t.Fatalf("row 5 data = %#x after re-swap, want 0xAAA", got)
	}
}

// TestDataIntegrityUnderHeavyswapping is the end-to-end correctness
// property: after thousands of swaps, re-swaps and evictions, every
// logical row still reads its own data through the indirection.
func TestDataIntegrityUnderHeavySwapping(t *testing.T) {
	cfg := testConfig()
	cfg.RowsPerBank = 4096
	r, sys := newRRS(t, cfg)
	id := dram.BankID{}

	// Tag every logical row with its own id.
	for row := 0; row < cfg.RowsPerBank; row++ {
		sys.SetRowContent(id, r.Remap(id, row), uint64(0x10000+row))
	}
	rng := prince.Seeded(77)
	now := int64(0)
	for i := 0; i < 20000; i++ {
		// Half the traffic hits 16 hot rows so swaps and re-swaps fire.
		var row int
		if rng.Intn(2) == 0 {
			row = rng.Intn(16)
		} else {
			row = rng.Intn(cfg.RowsPerBank)
		}
		r.OnActivate(id, row, r.Remap(id, row), now)
		now++
		if now%2000 == 0 { // several epoch boundaries
			r.OnEpoch(now)
		}
	}
	if r.Stats().Swaps < 100 {
		t.Fatalf("only %d swaps; test not exercising swap paths", r.Stats().Swaps)
	}
	for row := 0; row < cfg.RowsPerBank; row++ {
		got := sys.RowContent(id, r.Remap(id, row))
		if got != uint64(0x10000+row) {
			t.Fatalf("logical row %d reads %#x, want %#x", row, got, 0x10000+row)
		}
	}
	if err := r.RIT(id).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEpochResetsTrackerAndUnlocks(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	id := dram.BankID{}
	for i := 0; i < 8; i++ {
		r.OnActivate(id, 5, r.Remap(id, 5), int64(i))
	}
	if r.Tracker(id).Len() == 0 {
		t.Fatal("tracker empty before epoch")
	}
	r.OnEpoch(1000)
	if r.Tracker(id).Len() != 0 {
		t.Fatal("tracker not reset at epoch")
	}
	if r.RIT(id).LockedTuples() != 0 {
		t.Fatal("RIT locks not cleared at epoch")
	}
	// The tuple itself survives (lazy drain, not bulk reset).
	if r.RIT(id).Tuples() != 1 {
		t.Fatalf("RIT tuples = %d after epoch, want 1", r.RIT(id).Tuples())
	}
	st := r.Stats()
	if len(st.SwapsPerEpoch) != 1 || st.SwapsPerEpoch[0] != 1 {
		t.Fatalf("SwapsPerEpoch = %v", st.SwapsPerEpoch)
	}
	if st.EpochSwaps != 0 {
		t.Fatalf("EpochSwaps = %d after boundary", st.EpochSwaps)
	}
}

func TestBanksIndependent(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	a := dram.BankID{Channel: 0, Bank: 0}
	b := dram.BankID{Channel: 1, Bank: 3}
	for i := 0; i < 8; i++ {
		r.OnActivate(a, 5, r.Remap(a, 5), int64(i))
	}
	if r.Remap(a, 5) == 5 {
		t.Fatal("bank a not swapped")
	}
	if r.Remap(b, 5) != 5 {
		t.Fatal("bank b affected by bank a's swap")
	}
	if r.Tracker(b).Len() != 0 {
		t.Fatal("bank b tracker polluted")
	}
}

func TestAccessPenaltyIsRITLatency(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	// 4 CPU cycles at 2 CPU cycles per bus cycle = 2 bus cycles.
	if got := r.AccessPenalty(); got != 2 {
		t.Fatalf("AccessPenalty = %d, want 2", got)
	}
}

func TestActivateDelayAlwaysZero(t *testing.T) {
	r, _ := newRRS(t, testConfig())
	if r.ActivateDelay(dram.BankID{}, 5, 0) != 0 {
		t.Fatal("RRS must never delay activations")
	}
}

func TestInvalidThresholdRejected(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	_, err := New(sys, Params{SwapThreshold: 0})
	if err == nil {
		t.Fatal("expected error for zero threshold")
	}
}

func TestCAMTrackerVariant(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	p := DefaultParams(cfg)
	p.UseCAMTracker = true
	r, err := New(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	id := dram.BankID{}
	for i := 0; i < 8; i++ {
		r.OnActivate(id, 5, r.Remap(id, 5), int64(i))
	}
	if r.Stats().Swaps != 1 {
		t.Fatalf("CAM variant Swaps = %d, want 1", r.Stats().Swaps)
	}
}

// TestThroughController exercises RRS behind the real memory controller:
// hammering one row via Access must trigger swaps and block the channel.
func TestThroughController(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	r, err := New(sys, DefaultParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ctl := memctrl.New(sys, r)

	aggressor := sys.Encode(dram.Address{Row: 100})
	other := sys.Encode(dram.Address{Row: 200})
	now := int64(cfg.TRFC) + 1
	for i := 0; i < 40; i++ {
		// Alternate rows to force activations (classic hammer pattern).
		now = ctl.Access(aggressor, false, now)
		now = ctl.Access(other, false, now)
	}
	if r.Stats().Swaps < 2 {
		t.Fatalf("Swaps = %d through controller, want >= 2", r.Stats().Swaps)
	}
	// Physical activations followed the remap: the aggressor's current
	// physical row differs from 100.
	if got := r.Remap(dram.BankID{}, 100); got == 100 {
		t.Fatal("aggressor not relocated")
	}
}

// TestInvariant2DestinationCold: at the moment of a swap, the destination
// physical row has fewer than T_RRS activations this epoch.
func TestInvariant2DestinationCold(t *testing.T) {
	cfg := testConfig()
	cfg.RowsPerBank = 4096 // bank rows must dwarf HRT+RIT residency
	sys := dram.MustNew(cfg)
	r, err := New(sys, DefaultParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	id := dram.BankID{}
	rng := prince.Seeded(5)
	threshold := int(r.Params().SwapThreshold)
	for i := 0; i < 4000; i++ {
		// Concentrate on 32 hot rows half the time to force swaps.
		var row int
		if rng.Intn(2) == 0 {
			row = rng.Intn(32)
		} else {
			row = rng.Intn(cfg.RowsPerBank)
		}
		before := r.Stats().Swaps
		phys := r.Remap(id, row)
		if i > 0 && i%800 == 0 {
			// Epoch boundary at the physical activation rate (ACT_max =
			// 800): the RIT/HRT sizing guarantee assumes it.
			r.OnEpoch(int64(i))
			sys.ResetEpoch()
		}
		r.OnActivate(id, row, phys, int64(i))
		if r.Stats().Swaps > before {
			// A swap happened: its destination (the row's new physical
			// location) must have had < T_RRS prior activations. SwapRows
			// added 2 activations of its own to each side.
			newPhys := r.Remap(id, row)
			acts := sys.ActCount(id, newPhys)
			if acts-2 >= threshold {
				t.Fatalf("swap destination %d had %d activations (T=%d)",
					newPhys, acts-2, threshold)
			}
		}
	}
	if r.Stats().Swaps == 0 {
		t.Fatal("no swaps exercised")
	}
	if r.Stats().SkippedSwaps != 0 {
		t.Fatalf("%d swaps skipped at healthy sizing", r.Stats().SkippedSwaps)
	}
}

func BenchmarkOnActivateNoSwap(b *testing.B) {
	cfg := config.Default()
	cfg.RowsPerBank = 8 << 10
	sys := dram.MustNew(cfg)
	r, err := New(sys, DefaultParams(cfg))
	if err != nil {
		b.Fatal(err)
	}
	id := dram.BankID{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.OnActivate(id, i%4096, i%4096, int64(i))
	}
}
