// Package attack provides the Row Hammer fault model and the attack
// patterns the RRS paper discusses: classic single- and double-sided
// hammering, many-sided patterns, the Half-Double attack that defeats
// victim-focused mitigation, and the random-chase strategy that is optimal
// against RRS (Figure 7).
package attack

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dram"
)

// FaultModel turns physical row activations into bit-flip events. It
// encodes the paper's core assumption — a row flips bits in a neighbour
// only after accumulating at least T_RH activations' worth of disturbance
// within one refresh epoch — plus the second-order coupling that makes
// Half-Double possible:
//
//   - An activation of row r restores r's own charge (activation implies
//     a refresh of the activated row) and disturbs r±1 by 1 unit and r±2
//     by Alpha2 units.
//   - A victim row flips when its accumulated disturbance reaches T_RH.
//   - The rolling refresh restores every row once per epoch (modeled at
//     the epoch boundary).
//
// Because victim refreshes issued by victim-focused mitigations are real
// activations, they restore the victim but disturb the victim's own
// neighbours — the amplification channel Half-Double exploits.
type FaultModel struct {
	cfg config.Config
	// TRH is the disturbance a victim must accumulate to flip.
	TRH float64
	// Alpha2 is the distance-2 coupling strength relative to distance-1.
	// The default 0.01 places the pure-distance-2 flip threshold at
	// 100*T_RH and reproduces the Half-Double activation budget
	// (~300K-900K activations at T_RH = 4.8K).
	Alpha2 float64

	dist  [][]float32
	dirty [][]int32
	flips []Flip
	// nearMisses counts victims whose disturbance crossed half the flip
	// threshold from below — the shootout's "how close did it get" signal
	// for defenses that show zero flips.
	nearMisses int64
	// peak is the highest disturbance ever accumulated by any victim,
	// including values later cleared by a flip or refresh.
	peak float64
}

// NearMissFraction is the fraction of TRH a victim must accumulate to
// count as a near miss.
const NearMissFraction = 0.5

// DefaultAlpha2 is the distance-2 disturbance coupling, calibrated at the
// paper's full-scale parameters (T_RH = 4.8K, ACT_max = 1.36M): it places
// the pure distance-2 flip budget near the Half-Double attack's reported
// several-hundred-K activations.
const DefaultAlpha2 = 0.01

// DoubleSidedFactor converts the per-aggressor Row Hammer threshold into a
// summed-disturbance flip threshold. T_RH is measured per aggressor row
// under double-sided hammering (two aggressors of T_RH activations each
// flip the victim), so the victim's accumulated disturbance at the flip
// point is 2*T_RH; the extra 10% absorbs second-order contributions.
const DoubleSidedFactor = 2.2

// Alpha2For returns a distance-2 coupling rescaled for a shrunken test
// configuration so the Half-Double activation budget keeps the same
// proportion of an epoch as at full scale: alpha2 scales with
// T_RH / ACT_max.
func Alpha2For(cfg config.Config) float64 {
	const fullRatio = 4800.0 / 1.42e6 // T_RH / ACT_max at paper scale
	ratio := float64(cfg.RowHammerThreshold) / float64(cfg.ACTMax())
	return DefaultAlpha2 * ratio / fullRatio
}

// Flip records one bit-flip event.
type Flip struct {
	Bank dram.BankID
	Row  int
	Time int64
}

// String implements fmt.Stringer.
func (f Flip) String() string {
	return fmt.Sprintf("flip@%v.row%d t=%d", f.Bank, f.Row, f.Time)
}

// NewFaultModel creates a fault model for sys and subscribes it to
// activations and epoch resets. trh is the summed-disturbance flip
// threshold; 0 uses DoubleSidedFactor times the configuration's
// per-aggressor RowHammerThreshold. alpha2 of 0 uses DefaultAlpha2 (pass a
// negative value to disable distance-2 coupling entirely).
func NewFaultModel(sys *dram.System, trh float64, alpha2 float64) *FaultModel {
	cfg := sys.Config()
	if trh == 0 {
		trh = DoubleSidedFactor * float64(cfg.RowHammerThreshold)
	}
	if alpha2 == 0 {
		alpha2 = DefaultAlpha2
	}
	if alpha2 < 0 {
		alpha2 = 0
	}
	n := cfg.Channels * cfg.Ranks * cfg.Banks
	m := &FaultModel{
		cfg:    cfg,
		TRH:    trh,
		Alpha2: alpha2,
		dist:   make([][]float32, n),
		dirty:  make([][]int32, n),
	}
	for i := range m.dist {
		m.dist[i] = make([]float32, cfg.RowsPerBank)
	}
	sys.Subscribe(m)
	sys.SubscribeEpoch(m.resetEpoch)
	return m
}

func (m *FaultModel) bankIndex(id dram.BankID) int {
	return (id.Channel*m.cfg.Ranks+id.Rank)*m.cfg.Banks + id.Bank
}

// OnActivate implements dram.ActListener.
func (m *FaultModel) OnActivate(id dram.BankID, row int, now int64) {
	bi := m.bankIndex(id)
	d := m.dist[bi]
	// Activation restores the activated row's charge.
	d[row] = 0
	m.disturb(id, bi, row-1, 1, now)
	m.disturb(id, bi, row+1, 1, now)
	if m.Alpha2 > 0 {
		m.disturb(id, bi, row-2, float32(m.Alpha2), now)
		m.disturb(id, bi, row+2, float32(m.Alpha2), now)
	}
}

func (m *FaultModel) disturb(id dram.BankID, bi, victim int, amount float32, now int64) {
	if victim < 0 || victim >= m.cfg.RowsPerBank {
		return
	}
	d := m.dist[bi]
	if d[victim] == 0 {
		m.dirty[bi] = append(m.dirty[bi], int32(victim))
	}
	prev := float64(d[victim])
	d[victim] += amount
	cur := float64(d[victim])
	if cur > m.peak {
		m.peak = cur
	}
	if half := m.TRH * NearMissFraction; prev < half && cur >= half {
		m.nearMisses++
	}
	if cur >= m.TRH {
		m.flips = append(m.flips, Flip{Bank: id, Row: victim, Time: now})
		d[victim] = 0
	}
}

// resetEpoch models the rolling refresh restoring every row once per
// epoch.
func (m *FaultModel) resetEpoch() {
	for bi := range m.dist {
		d := m.dist[bi]
		for _, r := range m.dirty[bi] {
			d[r] = 0
		}
		m.dirty[bi] = m.dirty[bi][:0]
	}
}

// Flips returns all recorded bit-flip events.
func (m *FaultModel) Flips() []Flip { return append([]Flip(nil), m.flips...) }

// FlipCount returns the number of bit-flip events so far.
func (m *FaultModel) FlipCount() int { return len(m.flips) }

// NearMisses returns how many times a victim's disturbance crossed
// NearMissFraction of the flip threshold from below. A defense with zero
// flips but many near misses is operating at the edge of its guarantee.
func (m *FaultModel) NearMisses() int64 { return m.nearMisses }

// PeakDisturbance returns the highest disturbance any victim ever
// accumulated, as a fraction of the flip threshold (1.0 means a flip
// occurred).
func (m *FaultModel) PeakDisturbance() float64 { return m.peak / m.TRH }

// Disturbance returns the victim row's accumulated disturbance (tests).
func (m *FaultModel) Disturbance(id dram.BankID, row int) float64 {
	return float64(m.dist[m.bankIndex(id)][row])
}

// MaxDisturbance returns the highest current disturbance in the bank and
// the row holding it.
func (m *FaultModel) MaxDisturbance(id dram.BankID) (row int, d float64) {
	bi := m.bankIndex(id)
	for _, r := range m.dirty[bi] {
		if v := float64(m.dist[bi][r]); v > d {
			row, d = int(r), v
		}
	}
	return row, d
}
