package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// okTransport answers every request 200 without a network.
type okTransport struct{}

func (okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		Status: "200 OK", StatusCode: http.StatusOK,
		Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  http.Header{},
		Body:    io.NopCloser(strings.NewReader("{}")),
		Request: req,
	}, nil
}

// outcomes drives n GETs through t and encodes each result as a rune.
func outcomes(t *testing.T, rt *Transport, n int) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodGet, "http://chaos.test/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := rt.RoundTrip(req)
		switch {
		case err != nil:
			sb.WriteByte('d') // dropped
		case resp.StatusCode == http.StatusServiceUnavailable:
			sb.WriteByte('f') // injected failure
			resp.Body.Close()
		default:
			sb.WriteByte('.')
			resp.Body.Close()
		}
	}
	return sb.String()
}

func TestChaosTransportDeterministicSchedule(t *testing.T) {
	f := Faults{Seed: 99, DropRate: 0.2, FailRate: 0.1}
	a := outcomes(t, NewTransport(f, okTransport{}), 500)
	b := outcomes(t, NewTransport(f, okTransport{}), 500)
	if a != b {
		t.Fatal("equal seeds produced different fault schedules")
	}
	f.Seed = 100
	if c := outcomes(t, NewTransport(f, okTransport{}), 500); c == a {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestChaosTransportRates(t *testing.T) {
	rt := NewTransport(Faults{Seed: 7, DropRate: 0.2, FailRate: 0.1}, okTransport{})
	const n = 4000
	s := outcomes(t, rt, n)
	drops := strings.Count(s, "d")
	fails := strings.Count(s, "f")
	if got := float64(drops) / n; got < 0.15 || got > 0.25 {
		t.Errorf("drop rate = %.3f, want ≈ 0.2", got)
	}
	// FailRate applies to requests that survive the drop roll (~80%).
	if got := float64(fails) / n; got < 0.05 || got > 0.12 {
		t.Errorf("fail rate = %.3f, want ≈ 0.08", got)
	}
	requests, dropped, failed, _ := rt.Stats()
	if requests != n || dropped != int64(drops) || failed != int64(fails) {
		t.Errorf("Stats() = (%d,%d,%d), observed (%d,%d,%d)",
			requests, dropped, failed, n, drops, fails)
	}
}

func TestChaosTransportFaultsAreTransient(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	// DropRate 1: every round trip fails with a connection-shaped error
	// that the retry layer must classify as transient.
	hc := &http.Client{Transport: NewTransport(Faults{Seed: 1, DropRate: 1},
		http.DefaultTransport)}
	_, err := hc.Get(backend.URL)
	if err == nil {
		t.Fatal("dropped request returned no error")
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("dropped-connection error %v is not transient", err)
	}
}

func TestChaosTransportDelayHonorsContext(t *testing.T) {
	rt := NewTransport(Faults{Seed: 3, DelayRate: 1, MaxDelay: time.Hour}, okTransport{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://chaos.test/x", nil)
	start := time.Now()
	_, err := rt.RoundTrip(req)
	if err == nil {
		t.Fatal("hour-long injected delay beat a 20ms context")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
}

func chaosSpec(seed uint64) service.Spec {
	return service.Spec{Workloads: []string{"bzip2"}, Scale: 16, Epochs: 1, Seed: seed}
}

func TestChaosFlakyRunsGuaranteedRecovery(t *testing.T) {
	inner := func(_ context.Context, spec service.Spec, _ func(int64, int64)) (sim.Result, error) {
		return sim.Result{IPC: float64(spec.Seed)}, nil
	}
	f := &FlakyRuns{Rate: 1, FailAttempts: 2, Seed: 5}
	run := f.Wrap(inner)
	spec := chaosSpec(1)
	for attempt := 0; attempt < 2; attempt++ {
		_, err := run(context.Background(), spec, nil)
		if err == nil {
			t.Fatalf("attempt %d: expected injected failure", attempt+1)
		}
		if !resilience.IsTransient(err) {
			t.Fatalf("injected failure %v is not transient", err)
		}
	}
	res, err := run(context.Background(), spec, nil)
	if err != nil || res.IPC != 1 {
		t.Fatalf("attempt 3 = (%v, %v), want the real result", res.IPC, err)
	}
	if injected, _ := f.Stats(); injected != 2 {
		t.Errorf("injected = %d, want 2", injected)
	}
}

func TestChaosFlakyRunsSelectionFraction(t *testing.T) {
	f := &FlakyRuns{Rate: 0.3, Seed: 11}
	run := f.Wrap(func(context.Context, service.Spec, func(int64, int64)) (sim.Result, error) {
		return sim.Result{}, nil
	})
	const n = 1000
	faulted := 0
	for i := 0; i < n; i++ {
		if _, err := run(context.Background(), chaosSpec(uint64(i)), nil); err != nil {
			faulted++
		}
	}
	if got := float64(faulted) / n; got < 0.22 || got > 0.38 {
		t.Errorf("faulted fraction = %.3f, want ≈ 0.3", got)
	}
}

func TestChaosFlakyRunsPanicOn(t *testing.T) {
	f := &FlakyRuns{PanicOn: func(s service.Spec) bool { return s.Seed == 666 }}
	run := f.Wrap(func(context.Context, service.Spec, func(int64, int64)) (sim.Result, error) {
		return sim.Result{}, nil
	})
	if _, err := run(context.Background(), chaosSpec(1), nil); err != nil {
		t.Fatalf("unselected spec failed: %v", err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("selected spec did not panic")
		}
		if _, panics := f.Stats(); panics != 1 {
			t.Errorf("panics = %d, want 1", panics)
		}
	}()
	run(context.Background(), chaosSpec(666), nil)
}

// Ensure the doc'd claim holds: the package is usable from a plain
// http.Client without extra plumbing.
func ExampleNewTransport() {
	hc := &http.Client{Transport: NewTransport(Faults{Seed: 1}, http.DefaultTransport)}
	_ = hc
	fmt.Println("ok")
	// Output: ok
}
