package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// paranoidOptions builds a short RRS run, optionally self-verifying.
func paranoidOptions(t *testing.T, paranoid bool) Options {
	t.Helper()
	w, ok := trace.ByName("hmmer")
	if !ok {
		t.Fatal("workload hmmer missing from catalog")
	}
	cfg := testConfig()
	return Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                3,
		Mitigation:          rrsFactory,
		Paranoid:            paranoid,
	}
}

// TestParanoidRunCleanAndBitIdentical is the equivalence guarantee of
// the self-verification layer: a paranoid run of the full RRS stack
// reports zero invariant violations, actually exercises the catalog
// (non-zero check counts for the structural sweeps and shadow oracles),
// and computes statistics bit-identical to the same run with checks off.
func TestParanoidRunCleanAndBitIdentical(t *testing.T) {
	plain, err := Run(paranoidOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	// envParanoid is read once per process, so t.Setenv can't isolate
	// this assertion; under RRS_PARANOID=1 (make paranoid) every run is
	// checked and the nil-summary contract is exercised by the regular
	// CI job instead.
	if plain.Invariants != nil {
		if envParanoid() {
			plain.Invariants = nil
		} else {
			t.Fatal("non-paranoid run carries an invariant summary")
		}
	}

	checked, err := Run(paranoidOptions(t, true))
	if err != nil {
		t.Fatal(err)
	}
	inv := checked.Invariants
	if inv == nil {
		t.Fatal("paranoid run carries no invariant summary")
	}
	if inv.Violations != 0 || inv.FirstViolation != "" {
		t.Fatalf("paranoid run reports violations: %d (%s)", inv.Violations, inv.FirstViolation)
	}
	if inv.Checks == 0 {
		t.Fatal("paranoid run executed zero invariant checks")
	}
	for _, name := range []string{"rit/structure", "rit/shadow", "tracker/shadow", "dram/swap-conservation"} {
		if inv.PerCheck[name] == 0 {
			t.Errorf("catalog entry %s never ran (per-check: %v)", name, inv.PerCheck)
		}
	}

	plain.Mitigation, checked.Mitigation = nil, nil
	checked.Invariants = nil
	if !reflect.DeepEqual(plain, checked) {
		t.Fatalf("paranoid mode changed the statistics\nplain:   %+v\nchecked: %+v", plain, checked)
	}
}

// TestMaxStepsBudget aborts a run after a fixed number of accesses with
// the typed sentinel, whether or not paranoid checks are on.
func TestMaxStepsBudget(t *testing.T) {
	for _, paranoid := range []bool{false, true} {
		opts := paranoidOptions(t, paranoid)
		opts.MaxSteps = 5000
		if _, err := Run(opts); !errors.Is(err, ErrStepBudget) {
			t.Fatalf("paranoid=%v: err = %v, want ErrStepBudget", paranoid, err)
		}
	}
}

// TestMaxStepsBudgetExact: the budget is enforced per access, so a
// budget far below the checkInterval poll cadence (8192) aborts after
// exactly that many accesses instead of overshooting to the next poll.
func TestMaxStepsBudgetExact(t *testing.T) {
	opts := paranoidOptions(t, false)
	opts.MaxSteps = 100
	_, err := Run(opts)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
	if want := "after 100 accesses"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %q, want it to report %q (budget must not overshoot)", err, want)
	}
}

// TestDeadlineGuard aborts a run on wall-clock expiry with the typed
// sentinel.
func TestDeadlineGuard(t *testing.T) {
	opts := paranoidOptions(t, false)
	opts.Deadline = 1 // 1ns: expires at the first poll
	if _, err := Run(opts); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
