package prince

// CTR is PRINCE in counter mode: a cryptographically strong 64-bit PRNG as
// used by the RRS hardware for random swap destinations. It is
// deterministic given the key and starting counter, which keeps experiments
// reproducible.
//
// CTR is not safe for concurrent use; give each goroutine its own instance.
type CTR struct {
	c   *Cipher
	ctr uint64
}

// NewCTR returns a CTR generator over a PRINCE cipher keyed with (k0, k1),
// starting at counter 0.
func NewCTR(k0, k1 uint64) *CTR {
	return &CTR{c: New(k0, k1)}
}

// Seeded returns a CTR generator derived from a single 64-bit seed. The two
// key halves are expanded with splitmix64 so that nearby seeds give
// unrelated keys.
func Seeded(seed uint64) *CTR {
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return z ^ z>>31
	}
	return NewCTR(next(), next())
}

// Next returns the next 64 random bits.
func (g *CTR) Next() uint64 {
	v := g.c.Encrypt(g.ctr)
	g.ctr++
	return v
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Rejection sampling keeps the distribution exactly uniform, matching the
// security analysis (the buckets-and-balls model assumes uniform bucket
// choice).
func (g *CTR) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prince: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return g.Next() & (n - 1)
	}
	// Reject values in the final partial range.
	limit := -n % n // (2^64 - n) mod n == 2^64 mod n
	for {
		v := g.Next()
		if v >= limit {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *CTR) Intn(n int) int {
	if n <= 0 {
		panic("prince: Intn with n <= 0")
	}
	return int(g.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (g *CTR) Float64() float64 {
	return float64(g.Next()>>11) / (1 << 53)
}

// Hash64 is a keyed low-latency hash built from a single PRINCE encryption,
// as used for CAT set indexing (different keys give independent hashes).
type Hash64 struct {
	c *Cipher
}

// NewHash64 creates a keyed hash.
func NewHash64(k0, k1 uint64) *Hash64 {
	return &Hash64{c: New(k0, k1)}
}

// Sum maps x to a pseudo-random 64-bit value.
func (h *Hash64) Sum(x uint64) uint64 {
	return h.c.Encrypt(x)
}
