package experiments

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestRunAllBoundsGoroutines is the regression test for the eager-spawn
// bug: runAll used to start one goroutine per workload before acquiring
// the semaphore, so a wide sweep ballooned to len(ws) goroutines at
// once. The fix acquires before spawning, so goroutine growth is capped
// by the semaphore even while every running fn is blocked.
func TestRunAllBoundsGoroutines(t *testing.T) {
	const n = 64
	cap := max(1, runtime.GOMAXPROCS(0))
	if n <= cap {
		t.Skipf("GOMAXPROCS %d too large to observe throttling with %d workloads", cap, n)
	}
	ws := make([]trace.Workload, n)
	for i := range ws {
		ws[i] = trace.Workload{Name: "fake"}
	}

	var started atomic.Int64
	release := make(chan struct{})
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := runAll(ws, func(trace.Workload) (int, error) {
			started.Add(1)
			<-release
			return 0, nil
		})
		if err != nil {
			t.Errorf("runAll: %v", err)
		}
	}()

	// Wait until the semaphore is saturated: cap workers are inside fn.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < int64(cap) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers started", started.Load(), cap)
		}
		time.Sleep(time.Millisecond)
	}

	// With all workers blocked, only the cap'd worker goroutines (plus
	// the submitting one) may exist — not one per workload.
	if got, limit := runtime.NumGoroutine(), baseline+cap+4; got > limit {
		t.Errorf("%d goroutines while %d workloads pend (baseline %d, cap %d); eager spawn regressed",
			got, n, baseline, cap)
	}

	close(release)
	wg.Wait()
	if got := started.Load(); got != n {
		t.Errorf("ran %d workloads, want %d", got, n)
	}
}

// TestRunAllAggregatesErrors pins the error contract: every failing
// workload is named, and successes still run to completion.
func TestRunAllAggregatesErrors(t *testing.T) {
	ws := []trace.Workload{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	boom := errors.New("boom")
	_, err := runAll(ws, func(w trace.Workload) (int, error) {
		if w.Name != "b" {
			return 0, boom
		}
		return 1, nil
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	for _, name := range []string{"workload a", "workload c"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name %q", err, name)
		}
	}
	if strings.Contains(err.Error(), "workload b") {
		t.Errorf("error %q blames the successful workload", err)
	}
}
