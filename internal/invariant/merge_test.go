package invariant

import (
	"reflect"
	"testing"
)

func TestMergeSummaries(t *testing.T) {
	parts := []Summary{
		{Checks: 10, PerCheck: map[string]int64{"rit/structure": 6, "rit/shadow": 4}},
		{Checks: 5, PerCheck: map[string]int64{"rit/structure": 5},
			Violations: 1, FirstViolation: "shard1 boom"},
		{Checks: 3, Violations: 1, FirstViolation: "shard2 boom"},
	}
	got := MergeSummaries(parts)
	want := Summary{
		Checks:         18,
		PerCheck:       map[string]int64{"rit/structure": 11, "rit/shadow": 4},
		Violations:     2,
		FirstViolation: "shard1 boom", // lowest shard index wins, deterministically
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %+v, want %+v", got, want)
	}

	empty := MergeSummaries(nil)
	if empty.Checks != 0 || empty.PerCheck != nil || empty.Violations != 0 {
		t.Fatalf("empty merge = %+v, want zero value", empty)
	}
}
