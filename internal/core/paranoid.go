package core

import (
	"repro/internal/invariant"
	"repro/internal/tracker"
)

// EnableParanoid attaches the runtime self-verification layer to the
// mitigation: every bank's tracker is wrapped in the differential
// Misra-Gries oracle (tracker.Shadow), every RIT gets its map-based
// reference model, the DRAM system verifies swap conservation, and the
// full structural check catalog is registered with eng. Call it on a
// freshly constructed RRS, before any activations — the shadow models
// start empty.
//
// Structural checks loop over all banks under one catalog name per
// family, so the engine's cadence cost scales with live state, not bank
// count times catalog size.
func (r *RRS) EnableParanoid(eng *invariant.Engine) {
	r.eng = eng
	r.sys.EnableParanoid(eng)
	for i := range r.units {
		u := &r.units[i]
		if u.hrt != nil {
			u.hrt = tracker.NewShadow(u.hrt, eng)
		}
		u.rit.EnableShadow(eng)
	}
	eng.Register("rit/structure", func() error {
		for i := range r.units {
			if err := r.units[i].rit.CheckInvariants(); err != nil {
				return err
			}
		}
		return nil
	})
	eng.Register("rit/shadow", func() error {
		for i := range r.units {
			if err := r.units[i].rit.VerifyShadow(); err != nil {
				return err
			}
		}
		return nil
	})
	eng.Register("tracker/structure", func() error {
		for i := range r.units {
			if sc, ok := r.units[i].hrt.(tracker.SelfChecker); ok {
				if err := sc.CheckInvariants(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	eng.Register("tracker/shadow", func() error {
		for i := range r.units {
			if sh, ok := r.units[i].hrt.(*tracker.Shadow); ok {
				if err := sh.Verify(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	eng.Register("dram/structure", r.sys.CheckInvariants)
}

// fail latches the first structural error the mitigation hit (a typed
// RIT install error) and forwards it to the invariant engine if one is
// attached.
func (r *RRS) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	if r.eng != nil {
		r.eng.Report(err)
	}
}

// Err returns the first structural error the mitigation or its invariant
// engine latched, or nil. The simulation loop polls it so a violation
// fails the run with a diagnosable report instead of continuing on
// corrupt state.
func (r *RRS) Err() error {
	if r.err != nil {
		return r.err
	}
	if r.eng != nil {
		return r.eng.Err()
	}
	return nil
}
