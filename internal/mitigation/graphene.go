package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/tracker"
)

// Graphene is the representative victim-focused mitigation: a per-bank
// Misra-Gries tracker (exactly the HRT machinery RRS reuses), but the
// mitigating action refreshes the aggressor's immediate neighbours instead
// of swapping the aggressor away. It stops classic Row Hammer yet keeps
// the aggressor next to its victims — the weakness Half-Double exploits.
type Graphene struct {
	sys   *dram.System
	cfg   config.Config
	units []tracker.Tracker
	stat  VictimStats
	// BlastRadius is how many neighbours on each side get refreshed
	// (1 in the original; 2 in the "refresh two neighbours" variant the
	// paper argues is still insufficient).
	blastRadius int
}

// DefaultGrapheneThreshold returns the victim-refresh threshold for a
// given Row Hammer threshold: T_RH/4, accounting for double-sided attacks
// (each victim has two aggressors) with 2x margin.
func DefaultGrapheneThreshold(trh int) int64 {
	t := int64(trh / 4)
	if t < 1 {
		t = 1
	}
	return t
}

// NewGraphene creates the tracker+victim-refresh mitigation. threshold is
// the per-row activation count between refreshes of its neighbours;
// blastRadius is the refresh distance (1 refreshes r±1).
func NewGraphene(sys *dram.System, threshold int64, blastRadius int, seed uint64) *Graphene {
	cfg := sys.Config()
	entries := tracker.EntriesFor(cfg.ACTMax(), int(threshold))
	n := cfg.Channels * cfg.Ranks * cfg.Banks
	g := &Graphene{sys: sys, cfg: cfg, units: make([]tracker.Tracker, n), blastRadius: blastRadius}
	for i := range g.units {
		u, err := tracker.NewCAM(entries, threshold)
		if err != nil {
			// EntriesFor guarantees entries >= 1 and rejects threshold <= 0.
			panic(err)
		}
		g.units[i] = u
	}
	return g
}

// Stats returns mitigation counters.
func (m *Graphene) Stats() VictimStats { return m.stat }

// Remap implements memctrl.Mitigation (identity: no indirection).
func (m *Graphene) Remap(_ dram.BankID, row int) int { return row }

// ActivateDelay implements memctrl.Mitigation.
func (m *Graphene) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation.
func (m *Graphene) AccessPenalty() int64 { return 0 }

// OnEpoch implements memctrl.Mitigation.
func (m *Graphene) OnEpoch(int64) {
	for _, u := range m.units {
		u.Reset()
	}
}

// OnActivate implements memctrl.Mitigation.
func (m *Graphene) OnActivate(id dram.BankID, row, physRow int, now int64) memctrl.ActResult {
	u := m.units[bankIndex(m.cfg, id)]
	if !u.Observe(uint64(row)) {
		return memctrl.ActResult{}
	}
	m.stat.Mitigations++
	dists := make([]int, 0, 2*m.blastRadius)
	for d := 1; d <= m.blastRadius; d++ {
		dists = append(dists, -d, +d)
	}
	n := refreshNeighbors(m.sys, id, physRow, now, dists...)
	m.stat.Refreshes += int64(n)
	return memctrl.ActResult{BankBlock: victimRefreshCost(m.cfg, n)}
}
