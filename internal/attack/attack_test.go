package attack

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
)

// testConfig scales the system so one epoch holds 2400 activations and
// T_RH = 240 (T_RRS = 40). The scale preserves the full-scale design's
// proportions where it matters for security margins: ACT_max grows with
// T_RH squared so that swap-transfer disturbance keeps the same share of
// the flip budget as at paper scale.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240
	return cfg
}

// testAlpha2 rescales the distance-2 coupling for the shrunken epoch.
func testAlpha2() float64 { return Alpha2For(testConfig()) }

// Mitigation factories for the defense matrix.
func noDefense(*dram.System) memctrl.Mitigation { return nil }

func grapheneDefense(sys *dram.System) memctrl.Mitigation {
	return mitigation.NewGraphene(sys,
		mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold), 1, 7)
}

func idealDefense(sys *dram.System) memctrl.Mitigation {
	return mitigation.NewIdeal(sys,
		mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold))
}

func paraDefense(sys *dram.System) memctrl.Mitigation {
	return mitigation.NewPARA(sys,
		mitigation.DefaultPARAProbability(sys.Config().RowHammerThreshold), 7)
}

func rrsDefense(sys *dram.System) memctrl.Mitigation {
	r, err := core.New(sys, core.DefaultParams(sys.Config()))
	if err != nil {
		panic(err)
	}
	return r
}

func blockhammerDefense(sys *dram.System) memctrl.Mitigation {
	p := mitigation.DefaultBlockHammerParams()
	p.BlacklistThreshold = 60 // scaled with T_RH = 240
	return mitigation.NewBlockHammer(sys, p)
}

// --- Fault model unit tests ---

func TestFaultModelDistanceOneAccumulates(t *testing.T) {
	sys := dram.MustNew(testConfig())
	fm := NewFaultModel(sys, 48, -1)
	id := dram.BankID{}
	for i := 0; i < 10; i++ {
		sys.Activate(id, 100, int64(i))
	}
	if got := fm.Disturbance(id, 99); got != 10 {
		t.Fatalf("disturbance(99) = %v, want 10", got)
	}
	if got := fm.Disturbance(id, 101); got != 10 {
		t.Fatalf("disturbance(101) = %v, want 10", got)
	}
	if got := fm.Disturbance(id, 98); got != 0 {
		t.Fatalf("disturbance(98) = %v with alpha2 disabled", got)
	}
}

func TestFaultModelActivationRestoresOwnRow(t *testing.T) {
	sys := dram.MustNew(testConfig())
	fm := NewFaultModel(sys, 48, -1)
	id := dram.BankID{}
	for i := 0; i < 10; i++ {
		sys.Activate(id, 100, int64(i))
	}
	sys.Activate(id, 99, 11) // victim activated: restored
	if got := fm.Disturbance(id, 99); got != 0 {
		t.Fatalf("disturbance(99) = %v after its own activation", got)
	}
	// But 101 keeps its accumulation.
	if got := fm.Disturbance(id, 101); got != 10 {
		t.Fatalf("disturbance(101) = %v", got)
	}
}

func TestFaultModelDistanceTwoCoupling(t *testing.T) {
	sys := dram.MustNew(testConfig())
	fm := NewFaultModel(sys, 48, 0.01)
	id := dram.BankID{}
	for i := 0; i < 100; i++ {
		sys.Activate(id, 100, int64(i))
	}
	if got := fm.Disturbance(id, 102); got < 0.99 || got > 1.01 {
		t.Fatalf("disturbance(102) = %v, want ~1", got)
	}
}

func TestFaultModelFlipAtThreshold(t *testing.T) {
	sys := dram.MustNew(testConfig())
	fm := NewFaultModel(sys, 48, -1)
	id := dram.BankID{}
	for i := 0; i < 48; i++ {
		sys.Activate(id, 100, int64(i))
	}
	if fm.FlipCount() != 2 { // rows 99 and 101 both flip
		t.Fatalf("flips = %d, want 2", fm.FlipCount())
	}
	flips := fm.Flips()
	rows := map[int]bool{flips[0].Row: true, flips[1].Row: true}
	if !rows[99] || !rows[101] {
		t.Fatalf("unexpected flip rows: %v", flips)
	}
	// Disturbance resets after a flip.
	if got := fm.Disturbance(id, 99); got != 0 {
		t.Fatalf("disturbance after flip = %v", got)
	}
}

func TestFaultModelEpochResetPreventsSlowAccumulation(t *testing.T) {
	sys := dram.MustNew(testConfig())
	fm := NewFaultModel(sys, 48, -1)
	id := dram.BankID{}
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 30; i++ { // below threshold per epoch
			sys.Activate(id, 100, int64(epoch*100+i))
		}
		sys.ResetEpoch()
	}
	if fm.FlipCount() != 0 {
		t.Fatalf("flips = %d; refresh should prevent cross-epoch buildup", fm.FlipCount())
	}
}

func TestFaultModelEdgeRows(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	fm := NewFaultModel(sys, 48, 0.01)
	id := dram.BankID{}
	// Rows at both edges must not fault on out-of-range neighbours.
	sys.Activate(id, 0, 0)
	sys.Activate(id, cfg.RowsPerBank-1, 1)
	if fm.FlipCount() != 0 {
		t.Fatal("unexpected flips")
	}
}

func TestFaultModelDefaultThresholdFromConfig(t *testing.T) {
	cfg := testConfig()
	sys := dram.MustNew(cfg)
	fm := NewFaultModel(sys, 0, 0)
	if want := DoubleSidedFactor * float64(cfg.RowHammerThreshold); fm.TRH != want {
		t.Fatalf("TRH = %v, want %v", fm.TRH, want)
	}
	if fm.Alpha2 != DefaultAlpha2 {
		t.Fatalf("Alpha2 = %v", fm.Alpha2)
	}
}

// --- Pattern unit tests ---

func TestSingleSidedAlternates(t *testing.T) {
	p := NewSingleSided(100, 4096)
	a, b := p.NextRow(), p.NextRow()
	if a != 100 || b == 100 {
		t.Fatalf("sequence %d,%d", a, b)
	}
	if c := p.NextRow(); c != 100 {
		t.Fatalf("third access %d, want aggressor", c)
	}
}

func TestDoubleSidedSandwichesVictim(t *testing.T) {
	p := NewDoubleSided(100)
	seen := map[int]bool{p.NextRow(): true, p.NextRow(): true}
	if !seen[99] || !seen[101] {
		t.Fatalf("rows %v", seen)
	}
}

func TestHalfDoubleUsesDistanceTwo(t *testing.T) {
	p := NewHalfDouble(100)
	seen := map[int]bool{p.NextRow(): true, p.NextRow(): true}
	if !seen[98] || !seen[102] {
		t.Fatalf("rows %v", seen)
	}
}

func TestManySidedRotates(t *testing.T) {
	p := NewManySided(10, 3)
	got := []int{p.NextRow(), p.NextRow(), p.NextRow(), p.NextRow()}
	want := []int{10, 12, 14, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestRandomChaseSpendsTPerRow(t *testing.T) {
	p := NewRandomChase(8, 4096, 1)
	counts := map[int]int{}
	var order []int
	for i := 0; i < 64; i++ { // 32 aggressor picks interleaved with dummies
		r := p.NextRow()
		if i%2 == 0 { // odd calls are dummies
			counts[r]++
			if len(order) == 0 || order[len(order)-1] != r {
				order = append(order, r)
			}
		}
	}
	if len(order) != 4 {
		t.Fatalf("chased %d rows in 32 aggressor ACTs at T=8, want 4", len(order))
	}
	for _, r := range order {
		if counts[r] != 8 {
			t.Fatalf("row %d activated %d times, want 8", r, counts[r])
		}
	}
}

// --- End-to-end defense matrix (Figure 1 / Table 7) ---

func TestNoDefenseDoubleSidedFlips(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), noDefense)
	res := Run(ctl, fm, NewDoubleSided(100), Options{Epochs: 1})
	if res.Defended() {
		t.Fatal("double-sided attack caused no flips without a defense")
	}
	if res.FirstFlipTime < 0 {
		t.Fatal("first flip time unset")
	}
}

func TestNoDefenseSingleSidedFlips(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), noDefense)
	res := Run(ctl, fm, NewSingleSided(100, testConfig().RowsPerBank), Options{Epochs: 1})
	if res.Defended() {
		t.Fatal("single-sided attack caused no flips without a defense")
	}
}

func TestGrapheneDefendsClassicPatterns(t *testing.T) {
	for _, mk := range []func() Pattern{
		func() Pattern { return NewSingleSided(100, testConfig().RowsPerBank) },
		func() Pattern { return NewDoubleSided(100) },
		func() Pattern { return NewManySided(100, 8) },
	} {
		p := mk()
		ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), grapheneDefense)
		res := Run(ctl, fm, p, Options{Epochs: 3})
		if !res.Defended() {
			t.Errorf("Graphene failed against %s: %d flips", p.Name(), res.Flips)
		}
	}
}

// TestGrapheneLosesToHalfDouble is the paper's central motivation
// (Figure 1c): the victim-focused mitigation's own refreshes hammer the
// distance-two victim.
func TestGrapheneLosesToHalfDouble(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), grapheneDefense)
	res := Run(ctl, fm, NewHalfDouble(100), Options{Epochs: 3})
	if res.Defended() {
		t.Fatal("Half-Double did not defeat victim-focused mitigation")
	}
	// The flipped row is the distance-two victim itself.
	sawVictim := false
	for _, f := range fm.Flips() {
		if f.Row == 100 {
			sawVictim = true
		}
	}
	if !sawVictim {
		t.Fatalf("flips did not hit the distance-2 victim: %v", fm.Flips())
	}
}

func TestIdealVFMLosesToHalfDouble(t *testing.T) {
	// Even idealized (perfect, free) victim-focused tracking loses to
	// Half-Double — Table 7's point.
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), idealDefense)
	res := Run(ctl, fm, NewHalfDouble(100), Options{Epochs: 3})
	if res.Defended() {
		t.Fatal("Half-Double did not defeat idealized victim-focused mitigation")
	}
}

func TestIdealVFMDefendsDoubleSided(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), idealDefense)
	res := Run(ctl, fm, NewDoubleSided(100), Options{Epochs: 3})
	if !res.Defended() {
		t.Fatalf("ideal VFM failed double-sided: %d flips", res.Flips)
	}
}

func TestRRSDefendsAllPatterns(t *testing.T) {
	cfg := testConfig()
	for _, mk := range []func() Pattern{
		func() Pattern { return NewSingleSided(100, cfg.RowsPerBank) },
		func() Pattern { return NewDoubleSided(100) },
		func() Pattern { return NewHalfDouble(100) },
		func() Pattern { return NewManySided(100, 8) },
		func() Pattern { return NewRandomChase(40, cfg.RowsPerBank, 99) },
	} {
		p := mk()
		ctl, fm := NewSystem(cfg, 0, testAlpha2(), rrsDefense)
		res := Run(ctl, fm, p, Options{Epochs: 3})
		if !res.Defended() {
			t.Errorf("RRS failed against %s: %d flips (first at %d)",
				p.Name(), res.Flips, res.FirstFlipTime)
		}
	}
}

func TestPARADefendsDoubleSided(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), paraDefense)
	res := Run(ctl, fm, NewDoubleSided(100), Options{Epochs: 3})
	if !res.Defended() {
		t.Fatalf("PARA failed double-sided: %d flips", res.Flips)
	}
}

func TestBlockHammerDefendsDoubleSided(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), blockhammerDefense)
	res := Run(ctl, fm, NewDoubleSided(100), Options{Epochs: 3})
	if !res.Defended() {
		t.Fatalf("BlockHammer failed double-sided: %d flips", res.Flips)
	}
}

// TestDoSComparison reproduces the Section 8.1 denial-of-service analysis:
// under attack, BlockHammer throttles the attacker's activation stream by
// orders of magnitude while RRS costs only a small factor.
func TestDoSComparison(t *testing.T) {
	cfg := testConfig()
	rate := func(mit func(*dram.System) memctrl.Mitigation) float64 {
		ctl, fm := NewSystem(cfg, 0, testAlpha2(), mit)
		res := Run(ctl, fm, NewDoubleSided(100), Options{Epochs: 2})
		return res.AccessRate
	}
	base := rate(noDefense)
	rrs := rate(rrsDefense)
	bh := rate(blockhammerDefense)

	rrsSlow := base / rrs
	bhSlow := base / bh
	if rrsSlow > 5 {
		t.Errorf("RRS slows the attacker %.1fx, want a small factor (~2-3x)", rrsSlow)
	}
	if bhSlow < 8 {
		t.Errorf("BlockHammer slows the attacker only %.1fx, want an order of magnitude", bhSlow)
	}
	if bhSlow < rrsSlow {
		t.Error("BlockHammer throttles less than RRS — DoS comparison inverted")
	}
}

// TestRandomChaseLongRun gives the optimal anti-RRS attacker many epochs;
// the expected time to success at these parameters is astronomically
// larger (Table 4 analysis), so no flips may occur.
func TestRandomChaseLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long attack run skipped in -short")
	}
	cfg := testConfig()
	ctl, fm := NewSystem(cfg, 0, testAlpha2(), rrsDefense)
	res := Run(ctl, fm, NewRandomChase(40, cfg.RowsPerBank, 4242), Options{Epochs: 20})
	if !res.Defended() {
		t.Fatalf("random chase broke RRS in %d epochs: %d flips", 20, res.Flips)
	}
}

func TestRunRespectsMaxAccesses(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), noDefense)
	res := Run(ctl, fm, NewDoubleSided(100), Options{Epochs: 10, MaxAccesses: 50})
	if res.Accesses != 50 {
		t.Fatalf("accesses = %d, want 50", res.Accesses)
	}
}

func TestRunStopAtFirstFlip(t *testing.T) {
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), noDefense)
	res := Run(ctl, fm, NewDoubleSided(100), Options{Epochs: 10, StopAtFirstFlip: true})
	if res.Flips != 1 {
		t.Fatalf("flips = %d, want exactly 1 with StopAtFirstFlip", res.Flips)
	}
}

// TestAllBankAttackCrushesDutyCycle reproduces the Section 5.3.2 argument:
// attacking every bank multiplies the swap traffic sharing each channel's
// bus, so the per-bank activation rate drops well below the single-bank
// attack's — the all-bank attack is slower, not 16x faster.
func TestAllBankAttackCrushesDutyCycle(t *testing.T) {
	cfg := testConfig()

	single, fm1 := NewSystem(cfg, 0, testAlpha2(), rrsDefense)
	sres := Run(single, fm1, NewDoubleSided(100), Options{Epochs: 2})

	all, fm2 := NewSystem(cfg, 0, testAlpha2(), rrsDefense)
	ares := Run(all, fm2, nil, Options{
		Epochs:     2,
		NewPattern: func() Pattern { return NewDoubleSided(100) },
	})

	nBanks := float64(cfg.Channels * cfg.Ranks * cfg.Banks)
	perBankAll := ares.AccessRate / nBanks
	if perBankAll >= sres.AccessRate {
		t.Fatalf("all-bank per-bank rate %.6f not below single-bank %.6f",
			perBankAll, sres.AccessRate)
	}
	if !sres.Defended() || !ares.Defended() {
		t.Fatal("RRS failed under bank-parallel attack")
	}
}

func TestBlacksmithNonUniformFrequencies(t *testing.T) {
	p := NewBlacksmith(100, 6, 3)
	counts := map[int]int{}
	for i := 0; i < 6000; i++ {
		counts[p.NextRow()]++
	}
	if len(counts) < 4 {
		t.Fatalf("only %d distinct aggressors", len(counts))
	}
	var min, max int
	for _, c := range counts {
		if min == 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 2*min {
		t.Fatalf("frequencies too uniform: min %d max %d", min, max)
	}
}

func TestRRSDefendsBlacksmith(t *testing.T) {
	cfg := testConfig()
	ctl, fm := NewSystem(cfg, 0, testAlpha2(), rrsDefense)
	res := Run(ctl, fm, NewBlacksmith(100, 8, 7), Options{Epochs: 3})
	if !res.Defended() {
		t.Fatalf("Blacksmith-style pattern broke RRS: %d flips", res.Flips)
	}
}

func TestGrapheneDefendsBlacksmith(t *testing.T) {
	// Misra-Gries bounds counts regardless of access pattern shape, so
	// frequency fuzzing gains nothing against a correctly sized tracker.
	ctl, fm := NewSystem(testConfig(), 0, testAlpha2(), grapheneDefense)
	res := Run(ctl, fm, NewBlacksmith(100, 8, 7), Options{Epochs: 3})
	if !res.Defended() {
		t.Fatalf("Blacksmith-style pattern broke Graphene: %d flips", res.Flips)
	}
}
