package service

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestMetricsPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("rrs_test_total", "A test counter.")
	m.Inc("rrs_test_total", 3)
	m.Gauge("rrs_test_depth", "A test gauge.", func() float64 { return 7.5 })
	m.ObserveLatency(0.003) // bucket le=0.005
	m.ObserveLatency(0.3)   // bucket le=0.5
	m.ObserveLatency(1000)  // +Inf

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP rrs_test_total A test counter.",
		"# TYPE rrs_test_total counter",
		"rrs_test_total 3",
		"# TYPE rrs_test_depth gauge",
		"rrs_test_depth 7.5",
		"# TYPE rrs_job_run_seconds histogram",
		`rrs_job_run_seconds_bucket{le="0.005"} 1`,
		`rrs_job_run_seconds_bucket{le="0.5"} 2`,
		`rrs_job_run_seconds_bucket{le="+Inf"} 3`,
		"rrs_job_run_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: le="600" carries everything finite.
	if !strings.Contains(out, `rrs_job_run_seconds_bucket{le="600"} 2`) {
		t.Errorf("cumulative bucket broken:\n%s", out)
	}
}

func TestMetricsJSONView(t *testing.T) {
	m := NewMetrics()
	m.Inc("rrs_test_total", 2)
	m.Gauge("rrs_depth", "", func() float64 { return 4 })
	m.ObserveLatency(0.02)

	v := m.JSON()
	if v.Counters["rrs_test_total"] != 2 {
		t.Errorf("counter = %d, want 2", v.Counters["rrs_test_total"])
	}
	if v.Gauges["rrs_depth"] != 4 {
		t.Errorf("gauge = %v, want 4", v.Gauges["rrs_depth"])
	}
	if v.Latency.Count != 1 || v.Latency.Sum != 0.02 {
		t.Errorf("latency = %+v", v.Latency)
	}
	var total int64
	for _, b := range v.Latency.Buckets {
		total += b.Count
	}
	if total != 1 {
		t.Errorf("bucket counts sum to %d, want 1", total)
	}
	if len(v.Latency.Buckets) != len(latencyBuckets)+1 {
		t.Errorf("bucket count = %d, want %d", len(v.Latency.Buckets), len(latencyBuckets)+1)
	}
}

// TestObserveLatencyRejectsPoison is the regression test for NaN/negative
// ingestion: a single NaN used to poison latencySum (and every scrape
// after it) forever, and negative durations — possible under clock steps
// on hosts without monotonic reads — dragged the sum backwards.
func TestObserveLatencyRejectsPoison(t *testing.T) {
	m := NewMetrics()
	m.ObserveLatency(math.NaN())
	m.ObserveLatency(math.Inf(1))
	m.ObserveLatency(math.Inf(-1))
	m.ObserveLatency(-5) // clamps to 0, still counted
	m.ObserveLatency(0.3)

	v := m.JSON()
	if v.Latency.Count != 2 {
		t.Errorf("count = %d, want 2 (NaN/±Inf dropped, negative kept)", v.Latency.Count)
	}
	if v.Latency.Sum != 0.3 {
		t.Errorf("sum = %v, want 0.3", v.Latency.Sum)
	}
	if math.IsNaN(v.Latency.Sum) {
		t.Fatal("latencySum poisoned by NaN")
	}
	// The clamped negative lands in the smallest bucket.
	if got := v.Latency.Buckets[0].Count; got != 1 {
		t.Errorf("smallest bucket = %d, want 1 (clamped negative)", got)
	}

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Errorf("exposition renders NaN:\n%s", sb.String())
	}
}

// TestLatencyBucketBoundaryInclusive pins Prometheus `le` semantics: a
// sample exactly equal to a bucket's upper bound belongs in that bucket,
// not the next one.
func TestLatencyBucketBoundaryInclusive(t *testing.T) {
	m := NewMetrics()
	m.ObserveLatency(0.005) // exactly the first bound
	m.ObserveLatency(0.5)   // exactly a middle bound
	m.ObserveLatency(600)   // exactly the last finite bound

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rrs_job_run_seconds_bucket{le="0.005"} 1`,
		`rrs_job_run_seconds_bucket{le="0.5"} 2`,
		`rrs_job_run_seconds_bucket{le="600"} 3`,
		`rrs_job_run_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestLatencyHistogramCumulativeMonotone checks the rendered bucket
// series is non-decreasing in le order and that +Inf equals _count — the
// two structural invariants Prometheus clients assume of a histogram.
func TestLatencyHistogramCumulativeMonotone(t *testing.T) {
	m := NewMetrics()
	for _, s := range []float64{0.001, 0.05, 0.05, 0.7, 3, 45, 200, 1e9} {
		m.ObserveLatency(s)
	}

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`rrs_job_run_seconds_bucket\{le="([^"]+)"\} (\d+)`)
	matches := re.FindAllStringSubmatch(sb.String(), -1)
	if len(matches) != len(latencyBuckets)+1 {
		t.Fatalf("rendered %d buckets, want %d", len(matches), len(latencyBuckets)+1)
	}
	prev := int64(-1)
	var last int64
	for _, mt := range matches {
		n, err := strconv.ParseInt(mt[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Errorf("bucket le=%s count %d < previous %d: not cumulative", mt[1], n, prev)
		}
		prev, last = n, n
	}
	if matches[len(matches)-1][1] != "+Inf" {
		t.Errorf("last bucket is le=%q, want +Inf", matches[len(matches)-1][1])
	}
	if got := m.JSON().Latency.Count; last != got {
		t.Errorf("+Inf bucket %d != count %d", last, got)
	}
}
