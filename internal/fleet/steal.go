package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// Work stealing evens load without a scheduler: an idle node polls
// backed-up peers, borrows one queued job at a time, runs it through its
// own manager (sharing the local cache and worker pool), and donates the
// result back. The victim keeps the job record — the client keeps
// polling the same id on the same node — and guards the loan with a
// lease: a thief that dies mid-run simply never donates, the lease
// expires, and the job requeues locally. Duplicate outcomes (a donation
// racing the reclaimed job's local run) resolve in CompleteExternal,
// which drops everything after the first terminal state; the engine's
// determinism makes whichever copy wins bit-identical to the loser.

// stealRequest asks a peer to lend one queued job.
type stealRequest struct {
	Thief string `json:"thief"`
}

// stealGrant lends one job: the victim's job id (for the donation) and
// the spec to run.
type stealGrant struct {
	ID   string       `json:"id"`
	Spec service.Spec `json:"spec"`
}

// donation returns a stolen job's outcome. OK=false reports a failed
// run so the victim can requeue immediately instead of waiting out the
// lease.
type donation struct {
	ID     string     `json:"id"`
	OK     bool       `json:"ok"`
	Result sim.Result `json:"result"`
	Error  string     `json:"error,omitempty"`
}

// donationReply acknowledges a donation.
type donationReply struct {
	Accepted bool `json:"accepted"`
}

// StealOnce makes one work-stealing attempt: if this node is idle (no
// backlog, spare workers) it walks the routable peers from a rotating
// start, borrows the first job offered, runs it and donates the result.
// Reports whether a job was stolen and completed. Exposed so tests and
// the background loop share one deterministic entry point.
func (n *Node) StealOnce(ctx context.Context) bool {
	if n.mgr.Draining() {
		return false
	}
	backlog, busy, workers := n.mgr.Load()
	if backlog > 0 || busy >= workers {
		return false // we have our own work; stealing would just queue it
	}
	peers := n.det.Routable()
	if len(peers) == 0 {
		return false
	}
	n.mu.Lock()
	start := n.stealIdx
	n.stealIdx++
	n.mu.Unlock()
	for i := range peers {
		p := peers[(start+i)%len(peers)]
		grant, ok := n.requestSteal(ctx, p)
		if !ok {
			continue
		}
		n.runStolen(ctx, p, grant)
		return true
	}
	return false
}

// requestSteal asks one peer for work. A single attempt, no retries:
// the steal loop ticks again soon, and a peer with nothing to lend
// answers 204.
func (n *Node) requestSteal(ctx context.Context, p Peer) (stealGrant, bool) {
	body, err := json.Marshal(stealRequest{Thief: n.self.ID})
	if err != nil {
		return stealGrant{}, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.URL+"/v1/fleet/steal", bytes.NewReader(body))
	if err != nil {
		return stealGrant{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return stealGrant{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return stealGrant{}, false
	}
	var g stealGrant
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		return stealGrant{}, false
	}
	return g, true
}

// runStolen executes a borrowed job locally and donates the outcome.
// RunSync routes through this node's own manager, so the result also
// lands in the local cache — the next fan-out for the same spec hits
// here even if the victim is gone by then.
func (n *Node) runStolen(ctx context.Context, victim Peer, g stealGrant) {
	res, err := n.mgr.RunSync(ctx, g.Spec)
	d := donation{ID: g.ID, OK: err == nil, Result: res}
	if err != nil {
		n.met.Inc("rrs_fleet_steal_failures_total", 1)
		d.Error = err.Error()
	} else {
		n.met.Inc("rrs_fleet_steals_total", 1)
	}
	n.donate(ctx, victim, d)
}

// donate posts a stolen job's outcome back to its home node, with
// retries — losing a donation costs a whole re-run after the lease
// expires, so it is worth a few attempts. If the victim stays
// unreachable its lease reclaims the job; exactly-once holds either
// way.
func (n *Node) donate(ctx context.Context, victim Peer, d donation) {
	body, err := json.Marshal(d)
	if err != nil {
		return
	}
	resilience.Do(ctx, n.opts.Retry, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			victim.URL+"/v1/fleet/donate", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("fleet: donate to %s: status %d", victim.ID, resp.StatusCode)
			if resilience.TransientStatus(resp.StatusCode) {
				return resilience.MarkTransient(err)
			}
			return err
		}
		return nil
	})
}

// handleSteal is the victim side: lend the oldest queued job if the
// backlog justifies it, 204 otherwise. The job record stays — only the
// right to execute moves.
func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		service.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding steal request: %w", err))
		return
	}
	if req.Thief == "" {
		service.WriteError(w, http.StatusBadRequest, errors.New("steal request needs a thief id"))
		return
	}
	backlog, _, _ := n.mgr.Load()
	if backlog < n.opts.StealThreshold {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j, ok := n.mgr.StealQueued()
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	n.mu.Lock()
	n.lent[j.ID()] = &lease{
		job:     j,
		thief:   req.Thief,
		expires: time.Now().Add(n.opts.LeaseTimeout),
	}
	n.mu.Unlock()
	n.met.Inc("rrs_fleet_lent_total", 1)
	service.WriteJSON(w, http.StatusOK, stealGrant{ID: j.ID(), Spec: j.Snapshot().Spec})
}

// handleDonate is the victim side of the return path: resolve the lease
// and either complete the job with the thief's result or requeue it.
func (n *Node) handleDonate(w http.ResponseWriter, r *http.Request) {
	var d donation
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		service.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding donation: %w", err))
		return
	}
	n.mu.Lock()
	l, ok := n.lent[d.ID]
	if ok {
		delete(n.lent, d.ID)
	}
	n.mu.Unlock()
	if !ok {
		// No lease: it expired (the job requeued locally) or this is a
		// duplicate donation. Either way the result is surplus.
		n.met.Inc("rrs_fleet_donations_stale_total", 1)
		service.WriteJSON(w, http.StatusOK, donationReply{Accepted: false})
		return
	}
	if !d.OK {
		// The thief's run failed; give the job back to local workers.
		n.mgr.RequeueStolen(l.job)
		service.WriteJSON(w, http.StatusOK, donationReply{Accepted: false})
		return
	}
	accepted := n.mgr.CompleteExternal(l.job, d.Result)
	if accepted {
		n.met.Inc("rrs_fleet_donations_accepted_total", 1)
	} else {
		n.met.Inc("rrs_fleet_donations_stale_total", 1)
	}
	service.WriteJSON(w, http.StatusOK, donationReply{Accepted: accepted})
}

// reapLeases requeues jobs whose thief went quiet past the lease.
func (n *Node) reapLeases() {
	now := time.Now()
	var expired []*lease
	n.mu.Lock()
	for id, l := range n.lent {
		if now.After(l.expires) {
			delete(n.lent, id)
			expired = append(expired, l)
		}
	}
	n.mu.Unlock()
	for _, l := range expired {
		n.met.Inc("rrs_fleet_reclaims_total", 1)
		n.mgr.RequeueStolen(l.job)
	}
}
