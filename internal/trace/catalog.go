package trace

import "fmt"

// gb converts gigabytes to bytes.
func gb(v float64) int64 { return int64(v * (1 << 30)) }

// Table3Workloads returns the 28 workloads the paper details in Table 3 —
// those that encounter at least one row with 800+ activations per 64 ms —
// with the reported footprint, MPKI and hot-row counts.
func Table3Workloads() []Workload {
	return []Workload{
		{Name: "hmmer", Suite: "SPEC2006", FootprintBytes: gb(0.01), MPKI: 0.84, HotRows: 1675, WriteFraction: 0.3},
		{Name: "bzip2", Suite: "SPEC2006", FootprintBytes: gb(2.41), MPKI: 5.57, HotRows: 1150, WriteFraction: 0.35},
		{Name: "h264", Suite: "SPEC2006", FootprintBytes: gb(0.05), MPKI: 0.52, HotRows: 1136, WriteFraction: 0.3},
		{Name: "calculix", Suite: "SPEC2006", FootprintBytes: gb(0.16), MPKI: 1.12, HotRows: 932, WriteFraction: 0.25},
		{Name: "gcc", Suite: "SPEC2006", FootprintBytes: gb(0.09), MPKI: 4.42, HotRows: 818, WriteFraction: 0.35},
		{Name: "zeusmp", Suite: "SPEC2006", FootprintBytes: gb(0.55), MPKI: 2.00, HotRows: 405, WriteFraction: 0.3},
		{Name: "astar", Suite: "SPEC2006", FootprintBytes: gb(0.04), MPKI: 1.04, HotRows: 352, WriteFraction: 0.3},
		{Name: "sphinx", Suite: "SPEC2006", FootprintBytes: gb(0.13), MPKI: 12.90, HotRows: 242, WriteFraction: 0.2},
		{Name: "mummer", Suite: "BIOBENCH", FootprintBytes: gb(2.17), MPKI: 19.13, HotRows: 192, WriteFraction: 0.25},
		{Name: "ferret", Suite: "PARSEC", FootprintBytes: gb(0.79), MPKI: 5.67, HotRows: 132, WriteFraction: 0.3},
		{Name: "gobmk", Suite: "SPEC2006", FootprintBytes: gb(0.2), MPKI: 1.17, HotRows: 79, WriteFraction: 0.3},
		{Name: "blender_17", Suite: "SPEC2017", FootprintBytes: gb(0.24), MPKI: 1.53, HotRows: 53, WriteFraction: 0.3},
		{Name: "freq", Suite: "PARSEC", FootprintBytes: gb(0.59), MPKI: 2.89, HotRows: 44, WriteFraction: 0.3},
		{Name: "stream", Suite: "PARSEC", FootprintBytes: gb(0.63), MPKI: 3.48, HotRows: 41, WriteFraction: 0.4},
		{Name: "gcc_17", Suite: "SPEC2017", FootprintBytes: gb(0.36), MPKI: 0.55, HotRows: 38, WriteFraction: 0.35},
		{Name: "swapt", Suite: "PARSEC", FootprintBytes: gb(0.76), MPKI: 3.52, HotRows: 37, WriteFraction: 0.3},
		{Name: "black", Suite: "PARSEC", FootprintBytes: gb(0.55), MPKI: 3.08, HotRows: 37, WriteFraction: 0.3},
		{Name: "comm1", Suite: "COMMERCIAL", FootprintBytes: gb(1.55), MPKI: 5.93, HotRows: 19, WriteFraction: 0.35},
		{Name: "xz_17", Suite: "SPEC2017", FootprintBytes: gb(0.64), MPKI: 5.12, HotRows: 12, WriteFraction: 0.35},
		{Name: "comm2", Suite: "COMMERCIAL", FootprintBytes: gb(3.37), MPKI: 6.14, HotRows: 8, WriteFraction: 0.35},
		{Name: "omnetpp_17", Suite: "SPEC2017", FootprintBytes: gb(1.55), MPKI: 9.81, HotRows: 7, WriteFraction: 0.3},
		{Name: "fluid", Suite: "PARSEC", FootprintBytes: gb(0.99), MPKI: 2.70, HotRows: 7, WriteFraction: 0.3},
		{Name: "omnetpp", Suite: "SPEC2006", FootprintBytes: gb(1.1), MPKI: 17.24, HotRows: 5, WriteFraction: 0.3},
		{Name: "face", Suite: "PARSEC", FootprintBytes: gb(1.1), MPKI: 7.18, HotRows: 3, WriteFraction: 0.3},
		{Name: "mcf", Suite: "SPEC2006", FootprintBytes: gb(7.71), MPKI: 107.81, HotRows: 2, WriteFraction: 0.3},
		{Name: "gromacs", Suite: "SPEC2006", FootprintBytes: gb(0.06), MPKI: 0.58, HotRows: 1, WriteFraction: 0.3},
		{Name: "comm5", Suite: "COMMERCIAL", FootprintBytes: gb(0.67), MPKI: 1.48, HotRows: 1, WriteFraction: 0.35},
		{Name: "comm3", Suite: "COMMERCIAL", FootprintBytes: gb(1.77), MPKI: 2.84, HotRows: 1, WriteFraction: 0.35},
	}
}

// OtherWorkloads returns stand-ins for the remaining 44 single-program
// workloads of the paper's 78 ("the other 50 workloads do not encounter
// row-swap", which includes the 6 mixes): spread over the same suites with
// varied footprints and MPKIs but no hot rows.
func OtherWorkloads() []Workload {
	suites := []string{"SPEC2006", "SPEC2017", "GAP", "BIOBENCH", "PARSEC", "COMMERCIAL"}
	mpkis := []float64{0.3, 0.8, 1.6, 2.5, 4.1, 6.3, 9.7, 14.2, 21.0, 33.5, 51.0}
	foot := []float64{0.03, 0.12, 0.4, 0.9, 1.8, 3.5, 6.2, 9.8}
	var out []Workload
	for i := 0; i < 44; i++ {
		out = append(out, Workload{
			Name:           fmt.Sprintf("%s_syn%02d", suites[i%len(suites)], i),
			Suite:          suites[i%len(suites)],
			FootprintBytes: gb(foot[i%len(foot)]),
			MPKI:           mpkis[i%len(mpkis)],
			HotRows:        0,
			WriteFraction:  0.3,
		})
	}
	return out
}

// Mix describes a multi-programmed workload: one entry per core.
type Mix struct {
	Name      string
	Workloads []Workload
}

// Mixes returns the paper's 6 mixed workloads as random combinations of
// catalog entries (deterministic selection).
func Mixes(cores int) []Mix {
	base := Table3Workloads()
	var out []Mix
	for m := 0; m < 6; m++ {
		mix := Mix{Name: fmt.Sprintf("mix%d", m+1)}
		for c := 0; c < cores; c++ {
			mix.Workloads = append(mix.Workloads, base[(m*7+c*3)%len(base)])
		}
		out = append(out, mix)
	}
	return out
}

// AllWorkloads returns the full 72 single-program workloads (28 detailed +
// 44 stand-ins). With the 6 mixes this forms the paper's 78-workload set.
func AllWorkloads() []Workload {
	return append(Table3Workloads(), OtherWorkloads()...)
}

// ByName finds a workload in the catalog.
func ByName(name string) (Workload, bool) {
	for _, w := range AllWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
