// Quickstart: build a DDR4 memory system protected by Randomized Row-Swap,
// run a benign workload through it, and print what RRS did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. Start from the paper's Table 2 system and shrink the refresh
	//    epoch 16x so the demo finishes in seconds (the Row Hammer
	//    threshold and swap cost scale along; relative results hold).
	cfg := config.Default().Scaled(16)
	fmt.Printf("System: %s\n", cfg)

	// 2. Pick a workload from the Table 3 catalog. bzip2 is a good demo:
	//    it continuously hammers a working set slightly larger than the
	//    LLC, so RRS actually has rows to swap.
	w, _ := trace.ByName("bzip2")
	fmt.Printf("Workload: %s\n\n", w)

	// 3. Attach RRS to the memory controller. DefaultParams derives the
	//    paper's design point: T_RRS = T_RH/6, a 1700-entry Misra-Gries
	//    tracker and a 3400-tuple row indirection table per bank.
	rrsFactory := func(sys *dram.System) memctrl.Mitigation {
		r, err := core.New(sys, core.ScaledParams(sys.Config()))
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	// 4. Run one epoch with and without RRS and compare.
	opts := sim.Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                42,
	}
	base, err := sim.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Mitigation = rrsFactory
	protected, err := sim.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	rrs := protected.Mitigation.(*core.RRS)
	st := rrs.Stats()
	fmt.Printf("Baseline IPC:       %.4f\n", base.IPC)
	fmt.Printf("RRS IPC:            %.4f (normalized %.4f)\n",
		protected.IPC, protected.IPC/base.IPC)
	fmt.Printf("Row swaps:          %.0f per epoch (%d re-swaps)\n",
		protected.SwapsPerEpoch, st.Reswaps)
	fmt.Printf("Channel block time: %d cycles (%.2f%% of the run)\n",
		st.BlockCycles, 100*float64(st.BlockCycles)/float64(protected.Cycles))
	fmt.Printf("Hot rows (ACT-800+ equivalent): %.0f per epoch\n\n", protected.HotRowsPerEpoch)

	// 5. The indirection is invisible to software: data written through
	//    the controller reads back identically even for swapped rows.
	id := dram.BankID{}
	row := someSwappedRow(rrs, cfg)
	if row >= 0 {
		fmt.Printf("Logical row %d currently lives in physical row %d — "+
			"the swap is transparent to software.\n", row, rrs.Remap(id, row))
	}
	fmt.Println("Done.")
}

// someSwappedRow finds a row the RRS unit of bank 0 has remapped.
func someSwappedRow(r *core.RRS, cfg config.Config) int {
	id := dram.BankID{}
	for row := 0; row < cfg.RowsPerBank; row++ {
		if r.Remap(id, row) != row {
			return row
		}
	}
	return -1
}
