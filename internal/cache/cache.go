// Package cache implements the shared last-level cache in front of the
// memory system: set-associative with LRU replacement and dirty-line
// writebacks, matching the paper's 8 MB / 16-way / 64 B configuration.
// Trace accesses are filtered through it, so only LLC misses (and
// writebacks) reach the memory controller — the MPKI that Table 3 reports.
package cache

import "fmt"

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative cache operating on line addresses (byte
// address / line size). It is not safe for concurrent use.
type Cache struct {
	sets    []line // sets*ways, set-major
	ways    int
	setBits uint
	setMask uint64
	tick    uint64

	hits       int64
	misses     int64
	writebacks int64
}

// New creates a cache of sizeBytes with the given associativity and line
// size. sizeBytes/(ways*lineBytes) must be a power of two.
func New(sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("cache: sizes must be positive")
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets not a power of two", sets))
	}
	setBits := uint(0)
	for 1<<setBits < sets {
		setBits++
	}
	return &Cache{
		sets:    make([]line, sets*ways),
		ways:    ways,
		setBits: setBits,
		setMask: uint64(sets - 1),
	}
}

// Result describes one access outcome.
type Result struct {
	Hit bool
	// Writeback is set when a dirty victim must be written to memory;
	// VictimLine is its line address.
	Writeback  bool
	VictimLine uint64
}

// Access looks up the line address, filling on miss. write marks the line
// dirty.
func (c *Cache) Access(lineAddr uint64, write bool) Result {
	c.tick++
	set := int(lineAddr & c.setMask)
	tag := lineAddr >> c.setBits
	ss := c.sets[set*c.ways : (set+1)*c.ways]

	for i := range ss {
		if ss[i].valid && ss[i].tag == tag {
			c.hits++
			ss[i].lru = c.tick
			if write {
				ss[i].dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.misses++
	// Choose victim: first invalid, else LRU.
	vi := 0
	for i := range ss {
		if !ss[i].valid {
			vi = i
			break
		}
		if ss[i].lru < ss[vi].lru {
			vi = i
		}
	}
	res := Result{}
	if ss[vi].valid && ss[vi].dirty {
		res.Writeback = true
		res.VictimLine = c.reconstruct(ss[vi].tag, uint64(set))
		c.writebacks++
	}
	ss[vi] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return res
}

// reconstruct rebuilds a line address from tag and set index.
func (c *Cache) reconstruct(tag, set uint64) uint64 {
	return tag<<c.setBits | set
}

// Hits returns the hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() int64 { return c.misses }

// Writebacks returns the dirty-eviction count.
func (c *Cache) Writebacks() int64 { return c.writebacks }
