// Package repro is a from-scratch Go reproduction of "Randomized Row-Swap:
// Mitigating Row Hammer by Breaking Spatial Correlation between Aggressor
// and Victim Rows" (Saileshwar, Wang, Qureshi, Nair — ASPLOS 2022).
//
// The library is organized bottom-up:
//
//   - internal/prince — the PRINCE low-latency cipher (randomness source)
//   - internal/cat — the Collision Avoidance Table (scalable storage)
//   - internal/tracker — Misra-Gries hot-row trackers (CAM and CAT-backed)
//   - internal/rit — the Row Indirection Table
//   - internal/core — Randomized Row-Swap itself
//   - internal/dram, internal/memctrl — the DDR4 memory-system simulator
//   - internal/cpu, internal/cache, internal/trace — cores and workloads
//   - internal/mitigation — PARA, Graphene-style, ideal VFM, BlockHammer
//   - internal/attack — Row Hammer fault model and attack patterns
//   - internal/security — the Table 4 buckets-and-balls analysis
//   - internal/power — DRAM energy and SRAM power/storage models
//   - internal/sim, internal/experiments — harnesses regenerating every
//     table and figure of the paper's evaluation
//   - internal/service — a queued, cached, observable simulation job
//     service (HTTP API + client) served by cmd/rrs-serve
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each table and figure:
//
//	go test -bench=BenchmarkFigure6 -benchtime=1x
package repro
