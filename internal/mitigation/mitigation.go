// Package mitigation implements the Row Hammer defenses the RRS paper
// compares against:
//
//   - PARA: stateless probabilistic victim refresh (Kim et al., ISCA 2014).
//   - Graphene: Misra-Gries tracking with victim refresh (MICRO 2020) —
//     the representative *victim-focused* mitigation.
//   - Ideal: victim refresh with perfect per-row counters (Table 7's
//     "idealized tracking").
//   - BlockHammer: counting-Bloom-filter blacklisting with activation
//     throttling (HPCA 2021) — the other *aggressor-focused* mitigation.
//
// All implement memctrl.Mitigation. Victim refreshes are modeled as real
// activations of the neighbouring physical rows: an activation restores
// the charge of the row it targets while disturbing that row's own
// neighbours — exactly the mechanism the Half-Double attack exploits.
package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// refreshNeighbors activates the rows at the given distances from row,
// clamped to the bank. It returns the number of activations performed so
// callers can charge bank time.
func refreshNeighbors(sys *dram.System, id dram.BankID, row int, now int64, distances ...int) int {
	n := 0
	rows := sys.Config().RowsPerBank
	for _, d := range distances {
		v := row + d
		if v < 0 || v >= rows {
			continue
		}
		sys.Activate(id, v, now)
		n++
	}
	return n
}

// victimRefreshCost returns the bank-block cycles for n refresh
// activations (each occupies the bank for a full row cycle).
func victimRefreshCost(cfg config.Config, n int) int64 {
	return int64(n) * int64(cfg.TRC)
}

// bankIndex flattens a BankID for per-bank state slices.
func bankIndex(cfg config.Config, id dram.BankID) int {
	return (id.Channel*cfg.Ranks+id.Rank)*cfg.Banks + id.Bank
}

// VictimStats counts victim-refresh activity, shared by the victim-focused
// mitigations.
type VictimStats struct {
	// Mitigations is the number of times the defense fired.
	Mitigations int64
	// Refreshes is the number of neighbor-row refresh activations issued.
	Refreshes int64
}

var _ memctrl.Mitigation = (*PARA)(nil)
var _ memctrl.Mitigation = (*Graphene)(nil)
var _ memctrl.Mitigation = (*Ideal)(nil)
var _ memctrl.Mitigation = (*BlockHammer)(nil)
