package security

import (
	"math"
	"strings"
	"testing"
)

// TestTable4PaperValues reproduces Table 4: attack iterations for the
// three candidate swap thresholds. The paper reports 9.3e6 (T=960),
// 1.9e9 (T=800) and 3.8e11 (T=685); we accept 25% tolerance for the
// rounding in the paper's intermediate values.
func TestTable4PaperValues(t *testing.T) {
	cases := []struct {
		threshold int
		wantIter  float64
	}{
		{960, 9.3e6},
		{800, 1.9e9},
		{685, 3.8e11},
	}
	for _, c := range cases {
		m := PaperModel(c.threshold)
		got := m.AttackIterations()
		if got < c.wantIter*0.75 || got > c.wantIter*1.35 {
			t.Errorf("T=%d: AT_iter = %.3g, paper %.3g", c.threshold, got, c.wantIter)
		}
	}
}

func TestTable4AttackTimes(t *testing.T) {
	// T=800 -> ~3.8 years; T=960 -> ~6.9 days.
	if got := PaperModel(800).AttackSeconds() / (365.25 * 86400); got < 2.8 || got > 5 {
		t.Errorf("T=800 attack time = %.2f years, paper 3.8", got)
	}
	if got := PaperModel(960).AttackSeconds() / 86400; got < 5 || got > 9 {
		t.Errorf("T=960 attack time = %.2f days, paper 6.9", got)
	}
}

func TestAllBankAttackSlower(t *testing.T) {
	// The paper: the all-bank attack takes longer (5.1 vs 3.8 years at
	// k=6) because the extra swaps crush the duty cycle.
	single := PaperModel(800).AttackSeconds()
	all := AllBankPaperModel(800).AttackSeconds()
	if all <= single {
		t.Fatalf("all-bank attack faster (%.3g s) than single-bank (%.3g s)", all, single)
	}
	years := all / (365.25 * 86400)
	if years < 3.5 || years > 7.5 {
		t.Errorf("all-bank attack time = %.2f years, paper 5.1", years)
	}
}

func TestSmallerThresholdStrongerSecurity(t *testing.T) {
	prev := 0.0
	for _, T := range []int{960, 800, 685, 600} {
		m := PaperModel(T)
		it := m.AttackIterations()
		if it <= prev {
			t.Fatalf("T=%d gives %.3g iterations, not more than larger T", T, it)
		}
		prev = it
	}
}

func TestK(t *testing.T) {
	if k := PaperModel(800).K(); k != 6 {
		t.Fatalf("K = %d, want 6", k)
	}
	if k := PaperModel(960).K(); k != 5 {
		t.Fatalf("K = %d, want 5", k)
	}
}

func TestBalls(t *testing.T) {
	b := PaperModel(800).Balls()
	// 1.36M * 0.925 / 800 ~ 1573.
	if b < 1500 || b > 1650 {
		t.Fatalf("Balls = %v, want ~1573", b)
	}
}

func TestLnProbMonotoneInK(t *testing.T) {
	m := PaperModel(800)
	for k := 1; k < 8; k++ {
		if m.LnProbKSwaps(k+1) >= m.LnProbKSwaps(k) {
			t.Fatalf("P(k=%d) not smaller than P(k=%d)", k+1, k)
		}
	}
}

func TestLnProbImpossibleK(t *testing.T) {
	m := PaperModel(800)
	if !math.IsInf(m.LnProbKSwaps(int(m.Balls())+10), -1) {
		t.Fatal("more swaps than balls should be impossible")
	}
}

// TestMonteCarloMatchesAnalytic cross-validates the binomial formula
// against simulation at a scale where the event is frequent.
func TestMonteCarloMatchesAnalytic(t *testing.T) {
	const n, b, k, trials = 256, 512, 5, 400
	m := Model{
		RowsPerBank:        n,
		ACTMax:             b, // with T=1, D=1: Balls() == b
		DutyCycle:          1,
		SwapThreshold:      1,
		RowHammerThreshold: k,
		Banks:              1,
	}
	analytic := m.ProbAtLeastK(k)
	mc := MonteCarloProbK(n, b, k, trials, 42)
	if mc == 0 {
		t.Fatal("Monte Carlo observed no events; scale is wrong")
	}
	ratio := mc / analytic
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("MC %.4g vs analytic %.4g (ratio %.2f)", mc, analytic, ratio)
	}
}

func TestDutyCyclePaperValues(t *testing.T) {
	// Single bank: 800 ACTs cost 36 us, one swap 2.9 us -> D ~ 0.925.
	d := DutyCycle(800, 45e-9, 2.9e-6, 1)
	if d < 0.91 || d > 0.94 {
		t.Fatalf("single-bank duty cycle = %.3f, paper 0.925", d)
	}
	// All-bank: 8 banks per channel share the blocked bus -> D ~ 0.55.
	d = DutyCycle(800, 45e-9, 2.9e-6, 8)
	if d < 0.5 || d > 0.66 {
		t.Fatalf("all-bank duty cycle = %.3f, paper 0.55", d)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{30, "seconds"},
		{600, "minutes"},
		{7200, "hours"},
		{6.9 * 86400, "6.9 days"},
		{3.8 * 365.25 * 86400, "3.8 years"},
		{math.Inf(1), "never"},
	}
	for _, c := range cases {
		got := FormatDuration(c.sec)
		if !strings.Contains(got, c.want) {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}

func TestTable1HasAllGenerations(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(rows))
	}
	if rows[5].Generation != "LPDDR4 (new)" || !strings.Contains(rows[5].Threshold, "4.8K") {
		t.Fatalf("last row %+v", rows[5])
	}
}

func TestExpectedRowsScalesWithBanks(t *testing.T) {
	single := PaperModel(800)
	multi := single
	multi.Banks = 16
	if multi.ExpectedRowsWithKSwaps(6) != 16*single.ExpectedRowsWithKSwaps(6) {
		t.Fatal("bank scaling broken")
	}
}
