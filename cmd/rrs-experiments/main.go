// Command rrs-experiments regenerates the tables and figures of the RRS
// paper's evaluation. Each experiment prints a text table whose rows match
// the paper's.
//
// Usage:
//
//	rrs-experiments -exp all
//	rrs-experiments -exp fig6 -scale 16 -epochs 2 -workloads hmmer,bzip2
//	rrs-experiments -exp table4
//	rrs-experiments -exp fig10 -server http://localhost:8080
//
// With -server, each figure's whole grid is submitted as one server-side
// sweep (POST /v1/sweeps) to a running rrs-serve: the server expands the
// axes into child jobs deduplicated by content hash, and repeated sweeps
// (and the baseline runs shared between figures) are answered from its
// result cache. Points outside a sweep's axes fall back to individual
// job submissions.
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 fig5 fig6
// fig7 fig9 fig10 fig11 dos ablation probabilistic detection mixes rowclone
// shootout all.
//
// The shootout compares the whole mitigation zoo (RRS and the paper's
// baselines plus the successor defenses SRS, Rubix, MINT, PrIDE and
// DAPPER) under the same workloads and attack patterns:
//
//	rrs-experiments -shootout -scale 64 -epochs 1 -workloads hmmer -paranoid
//	rrs-experiments -exp shootout -mitigations rrs,srs,mint
//
// Simulation-backed experiments run at a reduced scale (-scale divides the
// 64 ms epoch; the Row Hammer threshold and swap cost scale with it, which
// preserves relative results — see DESIGN.md section 6).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// csvDir, when nonempty, receives one CSV file per experiment.
var csvDir string

// shootoutMits is the -mitigations subset (nil = full zoo);
// shootoutParanoid mirrors -paranoid for the shootout runner.
var (
	shootoutMits     []string
	shootoutParanoid bool
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (table1..table7, fig5..fig11, dos, ablation, all)")
		csv       = flag.String("csv", "", "also write each experiment's table as CSV into this directory")
		scale     = flag.Int("scale", 16, "epoch shrink factor for simulation-backed experiments")
		epochs    = flag.Int("epochs", 2, "simulated epochs per run")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: the 28 Table 3 workloads)")
		seed      = flag.Uint64("seed", 0xEC0, "trace seed")
		server    = flag.String("server", "", "base URL of a running rrs-serve (e.g. http://localhost:8080); simulation sweeps are submitted as jobs and share the server's result cache instead of computing locally")

		shootout    = flag.Bool("shootout", false, "shorthand for -exp shootout: the cross-defense comparison")
		mitigations = flag.String("mitigations", "", "comma-separated mitigation subset for the shootout (default: the full zoo)")
		paranoid    = flag.Bool("paranoid", false, "run shootout legs under the invariant engine; any violation fails the experiment")
	)
	flag.Parse()
	if *shootout {
		*exp = "shootout"
	}
	shootoutMits = nil
	if *mitigations != "" {
		for _, name := range strings.Split(*mitigations, ",") {
			shootoutMits = append(shootoutMits, strings.TrimSpace(name))
		}
	}
	shootoutParanoid = *paranoid
	csvDir = *csv
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	s := experiments.Scale{Factor: *scale, Epochs: *epochs, Seed: *seed}
	if *server != "" {
		client := service.NewClient(*server)
		if err := client.Health(context.Background()); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rrs-experiments: offloading sweeps to %s\n", *server)
		s.Runner = func(spec service.Spec) (sim.Result, error) {
			return client.Run(context.Background(), spec)
		}
		// Whole figures go up as one POST /v1/sweeps each; the server
		// expands, dedups and spreads the children (fleet mode routes them
		// by content hash). Runner stays wired for the few points outside
		// a sweep's axes.
		s.Sweeper = func(ss service.SweepSpec) (map[string]sim.Result, error) {
			return client.RunSweep(context.Background(), ss)
		}
	}
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			w, ok := trace.ByName(strings.TrimSpace(name))
			if !ok {
				fatalf("unknown workload %q", name)
			}
			s.Workloads = append(s.Workloads, w)
		}
	}

	runners := map[string]func(experiments.Scale) error{
		"table1": func(experiments.Scale) error {
			return show("Table 1: Row Hammer threshold over time", experiments.Table1(), nil)
		},
		"table2": func(experiments.Scale) error {
			return show("Table 2: Baseline system configuration", experiments.Table2(), nil)
		},
		"table3": runTable3,
		"table4": func(experiments.Scale) error {
			return show("Table 4: Attack iterations and time vs T", experiments.Table4(), nil)
		},
		"table5": func(experiments.Scale) error {
			return show("Table 5: Storage overhead per bank", experiments.Table5(), nil)
		},
		"table6":        runTable6,
		"table7":        runTable7,
		"fig5":          runFigure5,
		"fig6":          runFigure6,
		"fig7":          runFigure7,
		"fig9":          runFigure9,
		"fig10":         runFigure10,
		"fig11":         runFigure11,
		"dos":           runDoS,
		"ablation":      runAblation,
		"probabilistic": runProbabilistic,
		"detection":     runDetection,
		"mixes":         runMixes,
		"rowclone":      runRowClone,
		"shootout":      runShootout,
	}

	if *exp == "all" {
		order := []string{"table1", "table2", "table3", "fig5", "fig6", "table4",
			"fig7", "fig9", "table5", "table6", "fig10", "fig11", "table7", "dos",
			"ablation", "probabilistic", "detection", "mixes", "rowclone"}
		for _, name := range order {
			sc := s
			if len(sc.Workloads) == 0 && (name == "fig10" || name == "fig11" || name == "table6") {
				// The multi-configuration sweeps cost several runs per
				// workload; default them to a representative subset
				// spanning the hot-row and MPKI ranges.
				sc.Workloads = representativeWorkloads()
			}
			if err := runners[name](sc); err != nil {
				fatalf("%s: %v", name, err)
			}
		}
		return
	}
	runner, ok := runners[*exp]
	if !ok {
		fatalf("unknown experiment %q", *exp)
	}
	if err := runner(s); err != nil {
		fatalf("%s: %v", *exp, err)
	}
}

// representativeWorkloads spans Table 3's hot-row and MPKI ranges.
func representativeWorkloads() []trace.Workload {
	var out []trace.Workload
	for _, name := range []string{"hmmer", "bzip2", "gcc", "sphinx", "mummer",
		"stream", "omnetpp", "mcf"} {
		w, _ := trace.ByName(name)
		out = append(out, w)
	}
	return out
}

func show(title string, table *stats.Table, err error) error {
	if err != nil {
		return err
	}
	fmt.Printf("== %s ==\n%s\n", title, table.String())
	if csvDir != "" {
		slug := strings.ToLower(title)
		if i := strings.IndexAny(slug, ":("); i > 0 {
			slug = slug[:i]
		}
		slug = strings.TrimSpace(slug)
		slug = strings.ReplaceAll(slug, " ", "-")
		path := filepath.Join(csvDir, slug+".csv")
		if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return nil
}

func runTable3(s experiments.Scale) error {
	_, t, err := experiments.Table3(s)
	if err != nil {
		return err
	}
	return show("Table 3: Workload characteristics (measured at scale)", t, nil)
}

func runTable6(s experiments.Scale) error {
	_, t, err := experiments.Table6(s)
	if err != nil {
		return err
	}
	return show("Table 6: Extra power consumption of RRS", t, nil)
}

func runTable7(experiments.Scale) error {
	_, t := experiments.Table7()
	return show("Table 7: RRS vs victim-focused mitigation under attack", t, nil)
}

func runFigure5(s experiments.Scale) error {
	_, t, err := experiments.Figure5(s)
	if err != nil {
		return err
	}
	return show("Figure 5: Row-swaps per epoch", t, nil)
}

func runFigure6(s experiments.Scale) error {
	_, t, err := experiments.Figure6(s)
	if err != nil {
		return err
	}
	return show("Figure 6: Performance of RRS normalized to baseline", t, nil)
}

func runFigure7(experiments.Scale) error {
	_, t := experiments.Figure7(3)
	return show("Figure 7: Optimal attacker strategy vs RRS", t, nil)
}

func runFigure9(experiments.Scale) error {
	_, t := experiments.Figure9(experiments.DefaultFigure9Options())
	return show("Figure 9: CAT installs before a conflict", t, nil)
}

func runFigure10(s experiments.Scale) error {
	_, t, err := experiments.Figure10(s)
	if err != nil {
		return err
	}
	return show("Figure 10: RRS performance across RH thresholds", t, nil)
}

func runFigure11(s experiments.Scale) error {
	_, t, err := experiments.Figure11(s)
	if err != nil {
		return err
	}
	return show("Figure 11: S-curve, RRS vs BlockHammer", t, nil)
}

func runDoS(experiments.Scale) error {
	_, t := experiments.DoS(2)
	return show("Section 8.1: Denial-of-service comparison", t, nil)
}

func runAblation(s experiments.Scale) error {
	_, t, err := experiments.TrackerAblation(s, "hmmer")
	if err != nil {
		return err
	}
	return show("Ablation: CAM vs CAT tracker", t, nil)
}

func runRowClone(experiments.Scale) error {
	_, t := experiments.RowCloneAblation(2)
	return show("Extension (Section 8.1): RowClone-accelerated swaps under attack", t, nil)
}

// runShootout runs the cross-defense comparison. It is not part of -exp
// all: the full zoo costs a run per defense per workload plus three
// attack legs each, so it is invoked explicitly (use -workloads and
// -scale to bound it).
func runShootout(s experiments.Scale) error {
	if len(s.Workloads) == 0 {
		s.Workloads = representativeWorkloads()[:4]
	}
	_, t, err := experiments.Shootout(s, shootoutMits, shootoutParanoid)
	if err != nil {
		return err
	}
	return show("Shootout: mitigation zoo under common workloads and attacks", t, nil)
}

func runMixes(s experiments.Scale) error {
	_, t, err := experiments.MixedWorkloads(s, 0)
	if err != nil {
		return err
	}
	return show("Mixed workloads: RRS normalized performance", t, nil)
}

func runProbabilistic(s experiments.Scale) error {
	_, t, err := experiments.TrackerVsProbabilistic(s, "mcf")
	if err != nil {
		return err
	}
	return show("Extension (footnote 1): tracked vs state-less RRS on mcf", t, nil)
}

func runDetection(experiments.Scale) error {
	_, t := experiments.AttackDetection(6)
	return show("Extension (footnote 2): swap-based attack detection", t, nil)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rrs-experiments: "+format+"\n", args...)
	os.Exit(1)
}
