package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2) {
		t.Fatalf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Fatalf("GeoMean with zero = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between points.
	if got := Percentile([]float64{0, 10}, 50); !almostEqual(got, 5) {
		t.Errorf("P50 of {0,10} = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []int64{5, 10, 11, 100, 1000} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Buckets() != 3 {
		t.Fatalf("Buckets = %d", h.Buckets())
	}
	if h.Count(0) != 2 || h.Count(1) != 2 || h.Count(2) != 1 {
		t.Fatalf("counts %d/%d/%d", h.Count(0), h.Count(1), h.Count(2))
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(10, 10)
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta", 42)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Fatalf("cells missing:\n%s", out)
	}
	if tab.Rows() != 2 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("short", "x")
	tab.AddRow("a-much-longer-cell", "y")
	lines := strings.Split(strings.TrimRight(tab.String(), "\n"), "\n")
	// Column b starts at the same offset on every row.
	idx := strings.Index(lines[2], "x")
	if strings.Index(lines[3], "y") != idx {
		t.Fatalf("columns misaligned:\n%s", tab.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{1234.5, "1234"}, // %.0f rounds half to even
		{1.2345, "1.234"},
		{0.01, "0.0100"},
		{1e-7, "1.000e-07"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("reads", 3)
	c.Add("writes", 1)
	c.Add("reads", 2)
	if c.Get("reads") != 5 || c.Get("writes") != 1 {
		t.Fatalf("counters %d/%d", c.Get("reads"), c.Get("writes"))
	}
	if c.Get("absent") != 0 {
		t.Fatal("absent counter nonzero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Fatalf("names %v", names)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("plain", 1)
	tab.AddRow("with,comma", `say "hi"`)
	got := tab.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}
