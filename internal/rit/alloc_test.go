package rit

import (
	"testing"

	"repro/internal/cat"
)

// TestRemapAllocFree pins the hot-path contract: Remap — on the bitset
// fast path for unswapped rows, and through the table for swapped ones —
// performs no allocations once the table is populated.
func TestRemapAllocFree(t *testing.T) {
	r := mustNew(cat.Spec{Sets: 256, Ways: 20}, 3400, 3)
	for i := 0; i < 3400; i++ {
		if _, ok := mustInstall(r, uint64(2*i), uint64(100000+2*i)); !ok {
			t.Fatalf("install %d failed", i)
		}
	}
	var sink uint64
	if avg := testing.AllocsPerRun(500, func() {
		sink += r.Remap(1)     // unswapped: bit-probe fast path
		sink += r.Remap(0)     // swapped: table hit
		sink += r.Remap(50001) // unswapped, beyond installed range
	}); avg != 0 {
		t.Fatalf("Remap allocates %.2f allocs/run, want 0 (sink %d)", avg, sink)
	}
}
