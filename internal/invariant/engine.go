package invariant

// Engine owns the runtime check catalog for one simulation run. Structure
// packages register named structural checks (run in catalog order on every
// RunAll) and counter sources (hot-path checkers — shadows, the swap
// conservation verifier — that tally their own executions); violations
// detected asynchronously on the hot path are latched via Report. The
// first violation wins: once latched, the engine keeps returning it and
// ignores later ones, so the report always names the earliest detected
// corruption rather than a cascade effect.
//
// Engine is not safe for concurrent use; it lives on the simulation
// goroutine, like the structures it checks.
type Engine struct {
	checks   []check
	counters []counter
	runs     map[string]int64
	total    int64
	first    error
}

type check struct {
	name string
	fn   func() error
}

type counter struct {
	name string
	fn   func() int64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{runs: make(map[string]int64)}
}

// Register adds a structural check under a catalog name. fn must be
// side-effect free and return nil or an error (normally a *Violation)
// describing the first mismatch it found.
func (e *Engine) Register(name string, fn func() error) {
	e.checks = append(e.checks, check{name: name, fn: fn})
}

// RegisterCounter adds a tally source for a hot-path checker, so its
// per-event checks show up in the Summary next to the catalog checks.
func (e *Engine) RegisterCounter(name string, fn func() int64) {
	e.counters = append(e.counters, counter{name: name, fn: fn})
}

// Report latches an asynchronously detected violation (shadow-model
// divergence, swap-conservation failure). The first report wins.
func (e *Engine) Report(err error) {
	if err != nil && e.first == nil {
		e.first = err
	}
}

// Err returns the first latched violation, or nil.
func (e *Engine) Err() error { return e.first }

// RunAll executes every registered structural check in catalog order,
// counting each execution, and returns the first failure (also latching
// it). A previously latched violation is returned without re-running.
func (e *Engine) RunAll() error {
	if e.first != nil {
		return e.first
	}
	for _, c := range e.checks {
		e.runs[c.name]++
		e.total++
		if err := c.fn(); err != nil {
			e.Report(err)
			return err
		}
	}
	return nil
}

// Summary is the checked-invariant accounting a paranoid run reports in
// its Result. PerCheck counts executions per catalog entry (structural
// checks count RunAll passes; counter sources report their own tallies).
type Summary struct {
	// Checks is the total number of invariant checks executed, hot-path
	// checks included.
	Checks int64 `json:"checks"`
	// PerCheck breaks Checks down by catalog name.
	PerCheck map[string]int64 `json:"per_check,omitempty"`
	// Violations is 0 or 1: the engine stops at the first violation.
	Violations int `json:"violations"`
	// FirstViolation is the latched violation's message, if any.
	FirstViolation string `json:"first_violation,omitempty"`
}

// Summary collects the engine's accounting.
func (e *Engine) Summary() Summary {
	s := Summary{Checks: e.total, PerCheck: make(map[string]int64, len(e.runs)+len(e.counters))}
	for name, n := range e.runs {
		s.PerCheck[name] += n
	}
	for _, c := range e.counters {
		n := c.fn()
		s.PerCheck[c.name] += n
		s.Checks += n
	}
	if e.first != nil {
		s.Violations = 1
		s.FirstViolation = e.first.Error()
	}
	return s
}
