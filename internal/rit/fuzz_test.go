package rit

import (
	"testing"

	"repro/internal/cat"
)

// FuzzInvolution drives arbitrary operation sequences against the RIT and
// checks the involution invariant after every step. Run with
// `go test -fuzz=FuzzInvolution ./internal/rit` for continuous fuzzing;
// the seed corpus below runs as part of the normal test suite.
func FuzzInvolution(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint64(1))
	f.Add([]byte{10, 20, 30, 10, 20, 30, 99, 99}, uint64(7))
	f.Add([]byte{255, 254, 253, 0, 0, 0, 128, 64, 32}, uint64(42))

	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		r := mustNew(cat.Spec{Sets: 8, Ways: 8}, 16, seed)
		oracle := map[uint64]uint64{}
		for i, op := range ops {
			x := uint64(op % 20)
			y := uint64(op%19) + 20
			switch i % 4 {
			case 0, 1:
				_, inX := oracle[x]
				_, inY := oracle[y]
				if inX || inY || len(oracle)/2 >= 16 {
					break
				}
				if _, ok := mustInstall(r, x, y); ok {
					oracle[x], oracle[y] = y, x
				}
			case 2:
				if p, ok := r.Remove(x); ok {
					if oracle[x] != p {
						t.Fatalf("op %d: Remove(%d) = %d, oracle %d", i, x, p, oracle[x])
					}
					delete(oracle, x)
					delete(oracle, p)
				}
			case 3:
				r.ClearLocks()
				if x%3 == 0 {
					if ex, ey, ok := r.EvictRandomUnlocked(); ok {
						delete(oracle, ex)
						delete(oracle, ey)
					}
				}
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if r.Tuples() != len(oracle)/2 {
				t.Fatalf("op %d: %d tuples, oracle %d", i, r.Tuples(), len(oracle)/2)
			}
		}
		for k, v := range oracle {
			if got := r.Remap(k); got != v {
				t.Fatalf("Remap(%d) = %d, oracle %d", k, got, v)
			}
		}
	})
}
