// Package mitigation implements the Row Hammer defenses the RRS paper
// compares against, plus the successor-defense zoo:
//
//   - PARA: stateless probabilistic victim refresh (Kim et al., ISCA 2014).
//   - Graphene: Misra-Gries tracking with victim refresh (MICRO 2020) —
//     the representative *victim-focused* mitigation.
//   - Ideal: victim refresh with perfect per-row counters (Table 7's
//     "idealized tracking").
//   - BlockHammer: counting-Bloom-filter blacklisting with activation
//     throttling (HPCA 2021) — the other *aggressor-focused* mitigation.
//   - SRS: Scalable/Secure Row-Swap (arXiv 2212.12613) — swap tracking
//     keyed by *physical slot* in one unified structure, closing RRS's
//     juggling-attack exposure at a fraction of the SRAM.
//   - Rubix: randomized line-to-row mapping (arXiv 2308.14907) — a static
//     keyed permutation that destroys aggressor/victim adjacency, backed
//     by PARA-grade probabilistic refresh.
//   - MINT: minimalist in-DRAM tracker (arXiv 2407.16038) — one uniformly
//     sampled activation per tREFI window, refreshed at the boundary.
//   - PrIDE / DAPPER: probabilistic tracker management (arXiv 2404.16256 /
//     2501.18857) — a sampled FIFO of aggressors serviced once per tREFI,
//     with drop (PrIDE) or random-replacement (DAPPER) overflow policy.
//
// All implement memctrl.Mitigation. Victim refreshes are modeled as real
// activations of the neighbouring physical rows: an activation restores
// the charge of the row it targets while disturbing that row's own
// neighbours — exactly the mechanism the Half-Double attack exploits.
package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/obs"
)

// refreshNeighbors activates the rows at the given distances from row,
// clamped to the bank. It returns the number of activations performed so
// callers can charge bank time.
func refreshNeighbors(sys *dram.System, id dram.BankID, row int, now int64, distances ...int) int {
	n := 0
	rows := sys.Config().RowsPerBank
	for _, d := range distances {
		v := row + d
		if v < 0 || v >= rows {
			continue
		}
		sys.Activate(id, v, now)
		n++
	}
	return n
}

// refreshPair activates row-1 and row+1 (clamped to the bank) and returns
// the number of activations performed. It is the non-variadic twin of
// refreshNeighbors for the zoo defenses' hot paths, which carry 0
// allocs/op pins: no distance slice is ever materialized.
func refreshPair(sys *dram.System, id dram.BankID, row int, now int64) int {
	n := 0
	if row-1 >= 0 {
		sys.Activate(id, row-1, now)
		n++
	}
	if row+1 < sys.Config().RowsPerBank {
		sys.Activate(id, row+1, now)
		n++
	}
	return n
}

// victimRefreshCost returns the bank-block cycles for n refresh
// activations (each occupies the bank for a full row cycle).
func victimRefreshCost(cfg config.Config, n int) int64 {
	return int64(n) * int64(cfg.TRC)
}

// bankIndex flattens a BankID for per-bank state slices.
func bankIndex(cfg config.Config, id dram.BankID) int {
	return (id.Channel*cfg.Ranks+id.Rank)*cfg.Banks + id.Bank
}

// VictimStats counts victim-refresh activity, shared by the victim-focused
// mitigations.
type VictimStats struct {
	// Mitigations is the number of times the defense fired.
	Mitigations int64
	// Refreshes is the number of neighbor-row refresh activations issued.
	Refreshes int64
}

// verifier is the paranoid-mode plumbing every zoo defense embeds: it
// holds the run's invariant engine and exposes the Err poll the
// simulation loop uses. attach mirrors what sim.Run does for RRS — the
// DRAM swap-conservation verifier plus the structural DRAM catalog — so
// a zoo run under -paranoid covers the memory model and the defense's
// own checks through one engine.
type verifier struct {
	eng *invariant.Engine
}

// attach wires the shared DRAM checks and remembers the engine; the
// defense's EnableParanoid registers its own structural checks on top.
func (v *verifier) attach(eng *invariant.Engine, sys *dram.System) {
	v.eng = eng
	sys.EnableParanoid(eng)
	eng.Register("dram/structure", sys.CheckInvariants)
}

// Err returns the first violation the engine latched, or nil. It
// implements the sim loop's paranoid poll for the zoo defenses.
func (v *verifier) Err() error {
	if v.eng == nil {
		return nil
	}
	return v.eng.Err()
}

// observer is the observability plumbing the zoo defenses embed: one nil
// test on the hot path, like the core package's recorder discipline.
type observer struct {
	rec *obs.Recorder
}

// EnableObs attaches an event recorder; nil detaches.
func (o *observer) EnableObs(rec *obs.Recorder) { o.rec = rec }

// recordRefresh emits the victim-refresh event for physical row phys.
func (o *observer) recordRefresh(bank int32, phys int, n int, now int64) {
	if rec := o.rec; rec != nil {
		rec.Record(obs.KindVictimRefresh, bank, uint64(phys), uint64(n), now, 0)
	}
}

var _ memctrl.Mitigation = (*PARA)(nil)
var _ memctrl.Mitigation = (*Graphene)(nil)
var _ memctrl.Mitigation = (*Ideal)(nil)
var _ memctrl.Mitigation = (*BlockHammer)(nil)
var _ memctrl.Mitigation = (*SRS)(nil)
var _ memctrl.Batcher = (*SRS)(nil)
var _ memctrl.Mitigation = (*Rubix)(nil)
var _ memctrl.Mitigation = (*MINT)(nil)
var _ memctrl.Mitigation = (*PrIDE)(nil)
