package dram

import "testing"

// TestHotPathAllocFree pins the flat-storage contract: per-access DRAM
// operations (activate, row-content read/write of dense rows) perform no
// allocations in steady state. The dense content array and the per-epoch
// activation ledger are materialized by the warm-up pass; afterwards the
// access path must never touch the heap.
func TestHotPathAllocFree(t *testing.T) {
	s := MustNew(testConfig())
	id := BankID{}
	for r := 0; r < 1<<10; r++ {
		s.SetRowContent(id, r, uint64(r))
		s.Activate(id, r, int64(r))
	}
	var sink uint64
	if avg := testing.AllocsPerRun(200, func() {
		for r := 0; r < 64; r++ {
			s.Activate(id, r, 2000)
			sink += s.RowContent(id, r)
			s.SetRowContent(id, r, sink)
		}
	}); avg != 0 {
		t.Fatalf("DRAM access path allocates %.2f allocs/run, want 0", avg)
	}
}
