package tracker

import (
	"fmt"
	"math"

	"repro/internal/cat"
	"repro/internal/invariant"
	"repro/internal/obs"
)

// CAT is the paper's scalable Misra-Gries tracker (Section 6.4): entries
// live in a Collision Avoidance Table, and each set carries a SetMin
// counter tracking the minimum access count in that set. The spill counter
// is compared against the SetMin counters (128 of them for the default
// 2x64-set geometry) instead of a fully associative counter search.
//
// SetMin counters are maintained incrementally: a counter bump rescans a
// set only when the bumped entry held that set's minimum, and installs and
// deletes adjust only the one set they touch. A cached global minimum with
// a dirty flag replaces the per-miss scan of all SetMin counters. Both are
// exactness-preserving, so tracker decisions are bit-identical to the
// rescan-everything formulation. The one event the single-set bookkeeping
// cannot see — a cuckoo relocation inside the CAT moving some third entry
// between sets — is detected via the table's relocation counter and
// answered with a full SetMin rebuild.
type CAT struct {
	threshold int64
	capacity  int
	spill     int64

	tab *cat.Table[int64] // row -> estimated count
	// setMin[ti][s] is the minimum count in set s of table ti, or
	// math.MaxInt64 when the set is empty.
	setMin [2][]int64

	// gmin caches the minimum over all SetMin counters; it is stale only
	// when gminDirty is set (a set holding the global minimum increased).
	gmin      int64
	gminDirty bool

	// relocs is the last observed tab.Relocations(), to detect cuckoo
	// moves during installs.
	relocs int

	// present is an exact membership bitset over small row ids (bit row
	// set iff row is tracked). Most activations are of untracked rows —
	// at most `capacity` of a bank's rows are tracked — so the miss path
	// answers from one bit probe instead of two keyed-hash set scans.
	// Rows >= maxBitsetRows are counted in bigRows and always take the
	// table lookup.
	present []uint64
	bigRows int

	// Eviction log for the differential oracle (EvictionReporter);
	// recording is off until logEvictions is armed.
	logEvictions bool
	evictions    uint64
	lastEvicted  uint64

	// rec, when non-nil, receives insert/evict/crossing events (ObsTarget).
	rec     *obs.Recorder
	obsBank int32
}

// SetObs implements ObsTarget.
func (t *CAT) SetObs(rec *obs.Recorder, bank int32) {
	t.rec = rec
	t.obsBank = bank
}

// maxBitsetRows bounds the presence bitset at 512 KiB so adversarial
// 64-bit row ids (fuzzers, tests) cannot balloon it.
const maxBitsetRows = 1 << 22

func (t *CAT) mightContain(row uint64) bool {
	if row < maxBitsetRows {
		w := row >> 6
		return w < uint64(len(t.present)) && t.present[w]&(1<<(row&63)) != 0
	}
	return t.bigRows > 0
}

func (t *CAT) addPresent(row uint64) {
	if row >= maxBitsetRows {
		t.bigRows++
		return
	}
	w := row >> 6
	if w >= uint64(len(t.present)) {
		grown := make([]uint64, 2*(w+1))
		copy(grown, t.present)
		t.present = grown
	}
	t.present[w] |= 1 << (row & 63)
}

func (t *CAT) removePresent(row uint64) {
	if row >= maxBitsetRows {
		t.bigRows--
		return
	}
	if w := row >> 6; w < uint64(len(t.present)) {
		t.present[w] &^= 1 << (row & 63)
	}
}

var (
	_ Tracker          = (*CAT)(nil)
	_ EvictionReporter = (*CAT)(nil)
)

// NewCAT creates a scalable tracker with the given CAT geometry, entry
// capacity and swap threshold. The geometry must have at least capacity
// slots; the paper uses 2x64 sets x 20 ways (2560 slots) for 1700 entries,
// i.e., 14 demand ways and 6 extra ways per set. The error wraps
// invariant.ErrBadGeometry.
func NewCAT(spec cat.Spec, capacity int, threshold int64, seed uint64) (*CAT, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("tracker: %w: %v", invariant.ErrBadGeometry, err)
	}
	if capacity <= 0 || threshold <= 0 {
		return nil, fmt.Errorf("tracker: %w: capacity %d and threshold %d must be positive",
			invariant.ErrBadGeometry, capacity, threshold)
	}
	if spec.Slots() < capacity {
		return nil, fmt.Errorf("tracker: %w: CAT geometry (%d slots) smaller than tracker capacity %d",
			invariant.ErrBadGeometry, spec.Slots(), capacity)
	}
	t := &CAT{
		threshold: threshold,
		capacity:  capacity,
		tab:       cat.New[int64](spec, seed),
		gmin:      math.MaxInt64,
	}
	for ti := 0; ti < 2; ti++ {
		t.setMin[ti] = make([]int64, spec.Sets)
		for s := range t.setMin[ti] {
			t.setMin[ti][s] = math.MaxInt64
		}
	}
	return t, nil
}

// recomputeSetMin rescans one set's counters and folds the change into
// the cached global minimum.
func (t *CAT) recomputeSetMin(ti, s int) {
	min := int64(math.MaxInt64)
	t.tab.ForEachInSet(ti, s, func(_ uint64, v *int64) bool {
		if *v < min {
			min = *v
		}
		return true
	})
	old := t.setMin[ti][s]
	t.setMin[ti][s] = min
	if t.gminDirty {
		return
	}
	switch {
	case min < t.gmin:
		t.gmin = min
	case min > old && old == t.gmin:
		// The set that (possibly alone) held the global minimum moved up;
		// recompute lazily on the next globalMin call.
		t.gminDirty = true
	}
}

// recomputeAllSetMin rebuilds every SetMin counter and the global
// minimum. Only needed after a cuckoo relocation inside the CAT, which is
// astronomically rare with the paper's 6 extra ways.
func (t *CAT) recomputeAllSetMin() {
	t.gmin = math.MaxInt64
	for ti := 0; ti < 2; ti++ {
		for s := range t.setMin[ti] {
			min := int64(math.MaxInt64)
			t.tab.ForEachInSet(ti, s, func(_ uint64, v *int64) bool {
				if *v < min {
					min = *v
				}
				return true
			})
			t.setMin[ti][s] = min
			if min < t.gmin {
				t.gmin = min
			}
		}
	}
	t.gminDirty = false
}

// globalMin returns the minimum over the SetMin counters (the hardware
// scans them in the shadow of the memory access; see the paper).
func (t *CAT) globalMin() int64 {
	if t.gminDirty {
		min := int64(math.MaxInt64)
		for ti := 0; ti < 2; ti++ {
			for _, m := range t.setMin[ti] {
				if m < min {
					min = m
				}
			}
		}
		t.gmin = min
		t.gminDirty = false
	}
	return t.gmin
}

// Observe implements Tracker.
func (t *CAT) Observe(row uint64) bool {
	if t.mightContain(row) {
		if ti, s, p := t.tab.LookupPos(row); p != nil {
			prev := *p
			*p = prev + 1
			// Only the holding set's minimum can change, and only if
			// this entry sat at it.
			if prev == t.setMin[ti][s] {
				t.recomputeSetMin(ti, s)
			}
			crossed := crossedMultiple(prev, prev+1, t.threshold)
			if crossed && t.rec != nil {
				t.rec.RecordNow(obs.KindHRTCross, t.obsBank, row, uint64(prev+1))
			}
			return crossed
		}
	}
	// Installs never trigger (see the CAM implementation's comment: an
	// untracked row's true count is bounded by the spill counter < T).
	if t.tab.Len() < t.capacity {
		t.install(row, t.spill+1)
		if t.rec != nil {
			t.rec.RecordNow(obs.KindHRTInsert, t.obsBank, row, uint64(t.spill+1))
		}
		return false
	}
	min := t.globalMin()
	if min > t.spill {
		t.spill++
		return false
	}
	// Replace an entry holding the minimum count: find a set whose SetMin
	// equals the global minimum and evict a minimum entry from it.
	victim, found := t.findMinEntry(min)
	if found {
		if vti, vs, ok := t.tab.DeletePos(victim); ok {
			if t.logEvictions {
				t.lastEvicted = victim
				t.evictions++
			}
			if t.rec != nil {
				t.rec.RecordNow(obs.KindHRTEvict, t.obsBank, victim, uint64(min))
			}
			t.removePresent(victim)
			t.recomputeSetMin(vti, vs)
		}
	}
	t.install(row, t.spill+1)
	if t.rec != nil {
		t.rec.RecordNow(obs.KindHRTInsert, t.obsBank, row, uint64(t.spill+1))
	}
	return false
}

// ObserveN implements Tracker: n counter bumps collapse into one
// addition for a tracked row (recomputeSetMin is an exact rescan, so the
// single-bump bookkeeping carries over); untracked rows fall back to n
// single observations.
func (t *CAT) ObserveN(row uint64, n int64) int {
	if n <= 0 {
		return 0
	}
	if t.mightContain(row) {
		if ti, s, p := t.tab.LookupPos(row); p != nil {
			prev := *p
			*p = prev + n
			if prev == t.setMin[ti][s] {
				t.recomputeSetMin(ti, s)
			}
			fired := int((prev+n)/t.threshold - prev/t.threshold)
			if fired > 0 && t.rec != nil {
				// The burst collapses into one event at the final count.
				t.rec.RecordNow(obs.KindHRTCross, t.obsBank, row, uint64(prev+n))
			}
			return fired
		}
	}
	fired := 0
	for i := int64(0); i < n; i++ {
		if t.Observe(row) {
			fired++
		}
	}
	return fired
}

// findMinEntry locates some entry whose count equals min.
func (t *CAT) findMinEntry(min int64) (row uint64, found bool) {
	for ti := 0; ti < 2 && !found; ti++ {
		for s, m := range t.setMin[ti] {
			if m != min {
				continue
			}
			t.tab.ForEachInSet(ti, s, func(key uint64, v *int64) bool {
				if *v == min {
					row, found = key, true
					return false
				}
				return true
			})
			if found {
				return row, true
			}
		}
	}
	return row, found
}

// install adds row at the given count; a CAT conflict (astronomically rare
// with 6 extra ways) falls back to dropping the install, which only makes
// the tracker more conservative about the spill bound on the next miss.
func (t *CAT) install(row uint64, cnt int64) {
	ti, s, vp := t.tab.InstallPos(row, cnt)
	if vp != nil {
		t.addPresent(row)
	}
	if r := t.tab.Relocations(); r != t.relocs {
		// A cuckoo move shifted a third entry between sets; the
		// incremental bookkeeping cannot attribute it, so rebuild.
		t.relocs = r
		t.recomputeAllSetMin()
		return
	}
	if vp == nil {
		return
	}
	if cnt < t.setMin[ti][s] {
		t.setMin[ti][s] = cnt
		if !t.gminDirty && cnt < t.gmin {
			t.gmin = cnt
		}
	}
}

// EnableEvictionLog implements EvictionReporter.
func (t *CAT) EnableEvictionLog() { t.logEvictions = true }

// Evictions implements EvictionReporter (monotonic across Reset).
func (t *CAT) Evictions() uint64 { return t.evictions }

// LastEvicted implements EvictionReporter.
func (t *CAT) LastEvicted() uint64 { return t.lastEvicted }

// Contains implements Tracker.
func (t *CAT) Contains(row uint64) bool {
	return t.mightContain(row) && t.tab.Contains(row)
}

// Count implements Tracker.
func (t *CAT) Count(row uint64) (int64, bool) {
	if !t.mightContain(row) {
		return 0, false
	}
	if p := t.tab.Lookup(row); p != nil {
		return *p, true
	}
	return 0, false
}

// Spill implements Tracker.
func (t *CAT) Spill() int64 { return t.spill }

// Len implements Tracker.
func (t *CAT) Len() int { return t.tab.Len() }

// Capacity implements Tracker.
func (t *CAT) Capacity() int { return t.capacity }

// Threshold implements Tracker.
func (t *CAT) Threshold() int64 { return t.threshold }

// Reset implements Tracker. The hash keys stay fixed (as in hardware,
// where they are set at boot); only valid bits and counters clear.
func (t *CAT) Reset() {
	t.spill = 0
	t.tab.Clear()
	for ti := 0; ti < 2; ti++ {
		for s := range t.setMin[ti] {
			t.setMin[ti][s] = math.MaxInt64
		}
	}
	t.gmin = math.MaxInt64
	t.gminDirty = false
	clear(t.present)
	t.bigRows = 0
}
