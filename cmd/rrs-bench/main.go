// Command rrs-bench records the repository's performance trajectory. It
// runs a pinned set of representative simulations (baseline, RRS and
// BlockHammer at fixed seeds, scales and budgets) plus microbenchmarks of
// the per-access hot path (DRAM activate/content, tracker observe, RIT
// remap, full controller access), and emits a JSON report:
//
//	rrs-bench -out BENCH_PR2.json                 # full set
//	rrs-bench -quick                              # CI smoke subset
//	rrs-bench -baseline BENCH_PR1.json ...        # speedup vs a prior report
//	rrs-bench -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The profile flags capture the benchmark run itself (`make profile`
// wraps them): inspect with `go tool pprof cpu.pprof`.
//
// The report carries ns/op and allocs/op for the microbenchmarks and
// wall-clock throughput (simulated cycles per second, accesses per
// second) plus the paper-figure statistics (IPC, MPKI, hot rows, swaps)
// for each pinned simulation. Statistics are checked against the pins
// file (-pins): the engine is deterministic, so any drift — even in the
// last bit of a float — means behaviour changed, and rrs-bench exits
// non-zero. Regenerate pins with -write-pins only alongside an
// intentional behavioural change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/cat"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/rit"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tracker"
)

// benchSeed pins every randomized component of the benchmark set.
const benchSeed = 0xBE

// pinnedSims is the fixed simulation set. Order matters: -quick runs the
// first quickSims entries, so the subset's pins stay comparable across
// modes.
var pinnedSims = []simCase{
	{Name: "baseline-hmmer", Spec: service.Spec{
		Workloads: []string{"hmmer"}, Mitigation: service.MitNone,
		Scale: 16, Epochs: 1, Seed: benchSeed}},
	{Name: "rrs-hmmer", Spec: service.Spec{
		Workloads: []string{"hmmer"}, Mitigation: service.MitRRS,
		Scale: 16, Epochs: 1, Seed: benchSeed}},
	{Name: "rrs-mcf", Spec: service.Spec{
		Workloads: []string{"mcf"}, Mitigation: service.MitRRS,
		Scale: 16, Epochs: 1, Seed: benchSeed}},
	{Name: "blockhammer-hmmer", Spec: service.Spec{
		Workloads: []string{"hmmer"}, Mitigation: service.MitBlockHammer,
		Scale: 16, Epochs: 1, Seed: benchSeed}},
}

const quickSims = 2

type simCase struct {
	Name string       `json:"name"`
	Spec service.Spec `json:"spec"`
}

// simStats are the deterministic outputs of one pinned simulation — the
// fields the pins file freezes. Wall-clock throughput lives outside, in
// simReport, because it varies run to run.
type simStats struct {
	IPC             float64 `json:"ipc"`
	MPKI            float64 `json:"mpki"`
	Instructions    int64   `json:"instructions"`
	Cycles          int64   `json:"cycles"`
	Accesses        int64   `json:"accesses"`
	Epochs          int64   `json:"epochs"`
	HotRowsPerEpoch float64 `json:"hot_rows_per_epoch"`
	SwapsPerEpoch   float64 `json:"swaps_per_epoch"`
}

type simReport struct {
	Name            string       `json:"name"`
	Spec            service.Spec `json:"spec"`
	WallSeconds     float64      `json:"wall_seconds"`
	SimCyclesPerSec float64      `json:"sim_cycles_per_sec"`
	AccessesPerSec  float64      `json:"accesses_per_sec"`
	Stats           simStats     `json:"stats"`
}

type microReport struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Tool      string        `json:"tool"`
	GoVersion string        `json:"go_version"`
	Mode      string        `json:"mode"`
	Sims      []simReport   `json:"sims"`
	Micro     []microReport `json:"micro"`
	// Baseline summarizes the prior report -baseline pointed at;
	// SpeedupVsBaseline is the geometric mean of per-sim
	// sim_cycles_per_sec ratios against it.
	Baseline          map[string]float64 `json:"baseline_sim_cycles_per_sec,omitempty"`
	SpeedupVsBaseline float64            `json:"speedup_vs_baseline,omitempty"`
}

type pinsFile struct {
	Sims map[string]simStats `json:"sims"`
}

func main() {
	quick := flag.Bool("quick", false, "run the CI smoke subset (fewer sims)")
	reps := flag.Int("reps", 3, "repetitions per pinned sim; wall time is the fastest")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	pins := flag.String("pins", "", "pins file to check deterministic stats against")
	writePins := flag.Bool("write-pins", false, "rewrite the pins file from this run instead of checking")
	workers := flag.Int("workers", 0, "run the pinned sims in the bank-sharded parallel mode with this many goroutines (0 = sequential); parallel stats pin under name+\"+par\" and are identical for every positive count")
	baseline := flag.String("baseline", "", "prior rrs-bench report to compute speedup against")
	minSpeedup := flag.Float64("min-speedup", 0, "fail if the geomean speedup vs -baseline is below this (e.g. 0.98 tolerates a 2% regression)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the benchmark run to this file")
	flag.Parse()

	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		cpuFile = f
	}

	sims := pinnedSims
	mode := "full"
	if *quick {
		sims = pinnedSims[:quickSims]
		mode = "quick"
	}
	if *workers > 0 {
		// The parallel mode computes different (own-golden) statistics, so
		// its cases pin under distinct names; throughput comparisons
		// between worker counts match because the names don't embed the
		// count (any positive count is bit-identical).
		par := make([]simCase, len(sims))
		for i, c := range sims {
			c.Name += "+par"
			c.Spec.Workers = *workers
			par[i] = c
		}
		sims = par
		mode += "+par"
	}

	rep := report{Tool: "rrs-bench", GoVersion: runtime.Version(), Mode: mode}

	if *quick && *reps == 3 {
		*reps = 1
	}
	for _, c := range sims {
		fmt.Fprintf(os.Stderr, "sim %-20s", c.Name)
		r, err := runSimReps(c, *reps)
		if err != nil {
			fatalf("sim %s: %v", c.Name, err)
		}
		fmt.Fprintf(os.Stderr, " %6.2fs  %.3g sim-cycles/s  IPC %.4f\n",
			r.WallSeconds, r.SimCyclesPerSec, r.Stats.IPC)
		rep.Sims = append(rep.Sims, r)
	}

	for _, m := range microBenches() {
		fmt.Fprintf(os.Stderr, "micro %-22s", m.name)
		res := testing.Benchmark(m.fn)
		mr := microReport{
			Name:        m.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, " %10.1f ns/op %4d allocs/op\n", mr.NsPerOp, mr.AllocsPerOp)
		rep.Micro = append(rep.Micro, mr)
	}

	// Profiles are finalized here, covering exactly the sim and micro
	// loops — fatalf below (drift/baseline failures) must not lose them.
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		fmt.Fprintf(os.Stderr, "CPU profile written to %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("memprofile: %v", err)
		}
		fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProfile)
	}

	if *baseline != "" {
		if err := applyBaseline(&rep, *baseline); err != nil {
			fatalf("baseline: %v", err)
		}
		if *minSpeedup > 0 && rep.SpeedupVsBaseline < *minSpeedup {
			fatalf("speedup %.3fx vs %s is below the -min-speedup floor %.3fx",
				rep.SpeedupVsBaseline, *baseline, *minSpeedup)
		}
	} else if *minSpeedup > 0 {
		fatalf("-min-speedup needs -baseline")
	}

	if *pins != "" {
		if *writePins {
			if err := savePins(*pins, rep); err != nil {
				fatalf("writing pins: %v", err)
			}
			fmt.Fprintf(os.Stderr, "pins written to %s\n", *pins)
		} else if err := checkPins(*pins, rep); err != nil {
			fatalf("drift check failed: %v", err)
		} else {
			fmt.Fprintln(os.Stderr, "drift check: all pinned statistics reproduced exactly")
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rrs-bench: "+format+"\n", args...)
	os.Exit(1)
}

// runSimReps runs c reps times, keeping the fastest wall time (throughput
// is a max-performance measurement) and insisting the deterministic
// statistics agree across repetitions — a free determinism check on every
// bench run.
func runSimReps(c simCase, reps int) (simReport, error) {
	if reps < 1 {
		reps = 1
	}
	best, err := runSim(c)
	if err != nil {
		return simReport{}, err
	}
	for i := 1; i < reps; i++ {
		r, err := runSim(c)
		if err != nil {
			return simReport{}, err
		}
		if r.Stats != best.Stats {
			return simReport{}, fmt.Errorf(
				"nondeterministic engine: rep %d stats %+v differ from rep 0 %+v",
				i, r.Stats, best.Stats)
		}
		if r.WallSeconds < best.WallSeconds {
			best = r
		}
	}
	return best, nil
}

func runSim(c simCase) (simReport, error) {
	opts, err := c.Spec.Options()
	if err != nil {
		return simReport{}, err
	}
	start := time.Now()
	res, err := sim.Run(opts)
	if err != nil {
		return simReport{}, err
	}
	wall := time.Since(start).Seconds()
	return simReport{
		Name:            c.Name,
		Spec:            c.Spec.Normalize(),
		WallSeconds:     wall,
		SimCyclesPerSec: float64(res.Cycles) / wall,
		AccessesPerSec:  float64(res.Accesses) / wall,
		Stats: simStats{
			IPC:             res.IPC,
			MPKI:            res.MPKI,
			Instructions:    res.Instructions,
			Cycles:          res.Cycles,
			Accesses:        res.Accesses,
			Epochs:          res.Epochs,
			HotRowsPerEpoch: res.HotRowsPerEpoch,
			SwapsPerEpoch:   res.SwapsPerEpoch,
		},
	}, nil
}

func applyBaseline(rep *report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseRate := map[string]float64{}
	for _, s := range base.Sims {
		baseRate[s.Name] = s.SimCyclesPerSec
	}
	rep.Baseline = map[string]float64{}
	logSum, n := 0.0, 0
	for _, s := range rep.Sims {
		b, ok := baseRate[s.Name]
		if !ok || b <= 0 {
			continue
		}
		rep.Baseline[s.Name] = b
		logSum += math.Log(s.SimCyclesPerSec / b)
		n++
	}
	if n == 0 {
		return fmt.Errorf("%s shares no sims with this run", path)
	}
	rep.SpeedupVsBaseline = math.Exp(logSum / float64(n))
	fmt.Fprintf(os.Stderr, "speedup vs %s: %.3fx (geomean over %d sims)\n",
		path, rep.SpeedupVsBaseline, n)
	return nil
}

func savePins(path string, rep report) error {
	pf := pinsFile{Sims: map[string]simStats{}}
	// Preserve pins for sims outside this run (quick mode must not drop
	// the full set's entries).
	if data, err := os.ReadFile(path); err == nil {
		json.Unmarshal(data, &pf)
		if pf.Sims == nil {
			pf.Sims = map[string]simStats{}
		}
	}
	for _, s := range rep.Sims {
		pf.Sims[s.Name] = s.Stats
	}
	enc, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

func checkPins(path string, rep report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading pins (generate with -write-pins): %w", err)
	}
	var pf pinsFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	for _, s := range rep.Sims {
		want, ok := pf.Sims[s.Name]
		if !ok {
			return fmt.Errorf("sim %s has no pin in %s", s.Name, path)
		}
		if s.Stats != want {
			return fmt.Errorf("sim %s drifted from pinned statistics:\n  got  %+v\n  want %+v",
				s.Name, s.Stats, want)
		}
	}
	return nil
}

// --- microbenchmarks of the per-access hot path ---

type micro struct {
	name string
	fn   func(b *testing.B)
}

func microBenches() []micro {
	return []micro{
		{"dram-activate", benchDRAMActivate},
		{"dram-row-content", benchDRAMRowContent},
		{"tracker-cam-observe", benchCAMObserve},
		{"tracker-cat-observe", benchCATObserve},
		{"rit-remap", benchRITRemap},
		{"memctrl-access-rrs", benchMemctrlAccess},
	}
}

// benchRows keeps the benchmark working set larger than tracker capacity
// so eviction paths are exercised, but small against a bank.
const benchRows = 4096

// splitmix is the trace generator's PRNG, reused so benchmark address
// streams are pinned without pulling rand into the hot loop.
func splitmixNext(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func benchDRAMActivate(b *testing.B) {
	sys := dram.MustNew(config.Default())
	id := dram.BankID{}
	s := uint64(benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		row := int(splitmixNext(&s) % benchRows)
		sys.Activate(id, row, now)
		now += 22
	}
}

func benchDRAMRowContent(b *testing.B) {
	sys := dram.MustNew(config.Default())
	id := dram.BankID{}
	s := uint64(benchSeed)
	for i := 0; i < benchRows/2; i++ {
		sys.SetRowContent(id, i, uint64(i)|1<<63)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		row := int(splitmixNext(&s) % benchRows)
		sink ^= sys.RowContent(id, row)
	}
	_ = sink
}

func benchCAMObserve(b *testing.B) {
	cam, err := tracker.NewCAM(128, 1<<62)
	if err != nil {
		b.Fatal(err)
	}
	s := uint64(benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam.Observe(splitmixNext(&s) % benchRows)
	}
}

func benchCATObserve(b *testing.B) {
	// The paper's tracker geometry: 2 tables x 64 sets x (14+6) ways.
	ct, err := tracker.NewCAT(cat.Spec{Sets: 64, Ways: 20}, 2*64*14, 1<<62, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	s := uint64(benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Observe(splitmixNext(&s) % benchRows)
	}
}

func benchRITRemap(b *testing.B) {
	// The paper's RIT geometry: 2 tables x 256 sets x 20 ways, 3.4K
	// tuples; half-full so Remap sees both hits and misses.
	r, err := rit.New(cat.Spec{Sets: 256, Ways: 20}, 3400, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	s := uint64(benchSeed)
	for installed := 0; installed < 1700; {
		x := splitmixNext(&s) % benchRows
		y := benchRows + splitmixNext(&s)%benchRows
		if r.Contains(x) || r.Contains(y) {
			continue
		}
		if _, ok, err := r.Install(x, y); err != nil {
			b.Fatal(err)
		} else if ok {
			installed++
		}
	}
	s = benchSeed
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Remap(splitmixNext(&s) % (2 * benchRows))
	}
	_ = sink
}

func benchMemctrlAccess(b *testing.B) {
	cfg := config.Default().Scaled(32)
	sys := dram.MustNew(cfg)
	factory, err := service.MitigationFactory(service.MitRRS, 32, 0)
	if err != nil {
		b.Fatal(err)
	}
	var mit memctrl.Mitigation = memctrl.None{}
	if m := factory(sys); m != nil {
		mit = m
	}
	ctl := memctrl.New(sys, mit)
	s := uint64(benchSeed)
	lines := uint64(cfg.MemoryBytes()) / uint64(cfg.LineBytes)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		line := splitmixNext(&s) % lines
		done := ctl.Access(line, i%16 == 0, now)
		if done > now {
			now = done
		}
	}
}
