package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// State is a job's lifecycle stage. Transitions: queued → running →
// done | failed | cancelled; a queued job may also go straight to
// cancelled (DELETE before a worker claims it), a cache hit is born
// done, and a transiently failed run may loop running → queued up to the
// retry bound before settling.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether no further transition can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("service: no such job")

// Job is one tracked simulation. All mutable fields are guarded by mu;
// readers use Snapshot.
type Job struct {
	mu sync.Mutex

	id   string
	seq  uint64 // submission order, for stable listings
	spec Spec   // normalized
	hash string

	state    State
	progress float64 // 0..1, driven by the sim progress hook
	cacheHit bool
	child    bool // expanded from a sweep: runs through Options.RunChild
	attempts int  // completed run attempts (retries = attempts - 1)
	err      string
	result   *sim.Result

	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel context.CancelFunc // non-nil while cancellable
	done   chan struct{}      // closed on reaching a terminal state
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Hash returns the job's spec content hash.
func (j *Job) Hash() string { return j.hash }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished result. ok is false unless the job is
// done.
func (j *Job) Result() (sim.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return sim.Result{}, false
	}
	return *j.result, true
}

// JobView is the JSON projection of a job.
type JobView struct {
	ID       string  `json:"id"`
	Hash     string  `json:"hash"`
	State    State   `json:"state"`
	Progress float64 `json:"progress"`
	CacheHit bool    `json:"cache_hit"`
	// Attempts counts runs of this job so far (0 while it has never been
	// claimed; 2+ means automatic retries after transient failures).
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Paranoid mirrors Spec.Paranoid at the top level so dashboards can
	// tell self-verifying runs apart without digging into the spec.
	Paranoid  bool   `json:"paranoid,omitempty"`
	Spec      Spec   `json:"spec"`
	Submitted string `json:"submitted_at"`
	Started   string `json:"started_at,omitempty"`
	Finished  string `json:"finished_at,omitempty"`
	// RunSeconds is wall-clock simulation time for finished jobs.
	RunSeconds float64 `json:"run_seconds,omitempty"`
	// Phase is the human-readable stage of the job ("queued",
	// "simulating", "cached", "done", "failed", "cancelled").
	Phase string `json:"phase,omitempty"`
	// Epoch and TotalEpochs report simulated-epoch progress for
	// epoch-bounded runs (Spec.Epochs > 0). Such runs are cycle-bounded,
	// and epochs are fixed-length cycle spans, so the cycle-based
	// progress fraction maps linearly onto completed epochs.
	Epoch       int64 `json:"epoch,omitempty"`
	TotalEpochs int64 `json:"total_epochs,omitempty"`
}

// Snapshot returns a consistent copy for serialization.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Hash:      j.hash,
		State:     j.state,
		Progress:  j.progress,
		CacheHit:  j.cacheHit,
		Attempts:  j.attempts,
		Error:     j.err,
		Paranoid:  j.spec.Paranoid,
		Spec:      j.spec,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			v.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	switch {
	case j.state == StateRunning:
		v.Phase = "simulating"
	case j.cacheHit:
		v.Phase = "cached"
	default:
		v.Phase = string(j.state)
	}
	if n := int64(j.spec.Epochs); n > 0 {
		v.TotalEpochs = n
		v.Epoch = int64(j.progress * float64(n))
		if v.Epoch > n {
			v.Epoch = n
		}
	}
	return v
}

// Options sizes the manager.
type Options struct {
	// Workers is the worker-pool size (default GOMAXPROCS — each
	// simulation is single-threaded, so one worker per scheduler slot
	// saturates the host without oversubscribing it).
	Workers int
	// QueueDepth bounds the backlog of accepted-but-unstarted jobs
	// (default 64); past it, Submit fails fast with ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (default
	// 256; 0 keeps the default, negative disables caching).
	CacheEntries int
	// DefaultTimeout bounds each job's run unless its spec says
	// otherwise (0 = no limit).
	DefaultTimeout time.Duration
	// JobRetries bounds automatic re-runs of a job whose run failed
	// transiently (resilience.IsTransient). Deterministic simulation
	// errors, timeouts and panics are never retried. Default 2;
	// negative disables retries.
	JobRetries int
	// Journal, when non-nil, receives an append-only record of accepted
	// specs and terminal states, making accepted work durable across
	// process crashes (see OpenJournal / Restore).
	Journal *Journal
	// ForceParanoid turns on Spec.Paranoid for every submitted job, so an
	// operator can run a whole server in self-verifying mode without
	// clients opting in. Forcing happens before hashing: a forced job
	// caches under the paranoid spec, and submissions that already asked
	// for paranoid coalesce with it.
	ForceParanoid bool
	// DefaultSimWorkers, when positive, sets Spec.Workers for every
	// submitted job that left it 0 — an operator switch that runs the
	// whole server in the bank-sharded parallel mode (see
	// sim.Options.Workers). Like ForceParanoid it applies before
	// hashing: parallel results cache under the parallel mode's hash,
	// never shadowing sequential ones. Distinct from Options.Workers,
	// the job pool size: one sets goroutines per simulation, the other
	// simulations in flight.
	DefaultSimWorkers int
	// NodeID, when non-empty, prefixes job ids ("node1.job-000001"
	// instead of "job-000001") so ids are globally unique across a fleet
	// and carry their home node — internal/fleet routes status and
	// result polls by this prefix. Single-node deployments leave it
	// empty and keep the bare id format.
	NodeID string
	// AdmissionWatermark sheds load before the queue is hard-full: once
	// the backlog has reached it, Submit refuses work that would need a
	// simulation with ErrOverloaded (HTTP 429 + Retry-After). Cache
	// hits and coalesced submissions are still answered — they cost no
	// worker. 0 disables shedding; the hard QueueDepth bound still
	// applies.
	AdmissionWatermark int
	// Run overrides the simulation executor (nil = the built-in engine).
	// Chaos tests wrap an executor with injected faults here; it is also
	// the seam for alternative backends.
	Run RunFunc
	// RunChild, when non-nil, executes jobs expanded from a sweep
	// instead of Run. The fleet layer hooks per-child rendezvous routing
	// here (children route by their own content hash, so one sweep
	// spreads across the fleet); nil runs children through Run.
	RunChild RunFunc
	// OnResult, when non-nil, observes every result this manager computes
	// (or accepts as a work-stealing donation) the moment it enters the
	// result cache, already Timeline- and Mitigation-stripped — exactly
	// the bytes a peer's cache lookup would see. The fleet layer hooks
	// result replication here. It is called from worker goroutines and
	// must not block; it is NOT called for cache hits, journal replays, or
	// results inserted via InsertCached (a replica must never re-replicate
	// from the receiving side).
	OnResult func(hash string, res sim.Result)
	// Metrics receives the service metrics (nil = a private registry).
	Metrics *Metrics
}

// Manager owns the queue, worker pool, job table and result cache.
type Manager struct {
	opts  Options
	queue *fifo
	cache *resultCache
	met   *Metrics

	mu         sync.Mutex
	jobs       map[string]*Job
	inflight   map[string]*Job // hash → queued/running job, for submit coalescing
	doneByHash map[string]*Job // hash → done job holding a result, for ResultByHash
	seq      uint64
	closed   bool
	draining bool // drain mode: intake refused, cancellations journal-requeue

	// Sweep orchestration state: the tracked sweeps, the hash →
	// running-sweep coalescing index, and the id sequence. Each running
	// sweep owns one feeder/watcher goroutine counted by sweepWG.
	sweeps        map[string]*Sweep
	sweepInflight map[string]*Sweep
	sweepSeq      uint64
	sweepWG       sync.WaitGroup

	busy    int64 // workers mid-run, under mu
	workers sync.WaitGroup

	// lastRun holds hardware-level aggregates folded from the most
	// recently completed simulation's timeline, read by gauge callbacks
	// at scrape time.
	lastRunMu sync.Mutex
	lastRun   lastRunStats

	// runJob is the simulation entry point; tests substitute a stub to
	// make scheduling behaviour observable without real simulations.
	// runChild, when non-nil, replaces it for sweep-expanded jobs.
	runJob   RunFunc
	runChild RunFunc
}

// lastRunStats are per-run occupancy/stall aggregates derived from the
// observability histograms of the last finished simulation.
type lastRunStats struct {
	ritOccMean, ritOccPeak float64
	hrtOccMean, hrtOccPeak float64
	stallMean              float64
}

// RunFunc executes one simulation on behalf of the manager. Errors it
// returns are classified by resilience.IsTransient to decide whether
// the job is retried.
type RunFunc func(ctx context.Context, spec Spec, progress func(done, total int64)) (sim.Result, error)

// NewManager builds and starts a manager; callers must Shutdown it.
func NewManager(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	switch {
	case opts.CacheEntries == 0:
		opts.CacheEntries = 256
	case opts.CacheEntries < 0:
		opts.CacheEntries = 0
	}
	switch {
	case opts.JobRetries == 0:
		opts.JobRetries = 2
	case opts.JobRetries < 0:
		opts.JobRetries = 0
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics()
	}
	m := &Manager{
		opts:          opts,
		queue:         newFIFO(opts.QueueDepth),
		cache:         newResultCache(opts.CacheEntries),
		met:           opts.Metrics,
		jobs:          make(map[string]*Job),
		inflight:      make(map[string]*Job),
		doneByHash:    make(map[string]*Job),
		sweeps:        make(map[string]*Sweep),
		sweepInflight: make(map[string]*Sweep),
		runJob:        RunSpec,
	}
	if opts.Run != nil {
		m.runJob = opts.Run
	}
	m.runChild = opts.RunChild
	m.registerMetrics()
	for i := 0; i < opts.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

// RunSpec is the production runJob: compile the spec and run the engine.
// Every run carries a histogram-only recorder (RingSize < 0 disables the
// per-event ring): the manager folds the occupancy/stall aggregates into
// its Prometheus registry and strips the timeline before the result is
// cached, so client payloads and the content-addressed cache are
// byte-identical to an unobserved run. Exported so wrappers around
// Options.Run (the fleet's cache fan-out, chaos injectors) can fall
// through to the built-in engine.
func RunSpec(ctx context.Context, spec Spec, progress func(done, total int64)) (sim.Result, error) {
	opts, err := spec.Options()
	if err != nil {
		return sim.Result{}, err
	}
	opts.Context = ctx
	opts.Progress = progress
	opts.Events = &obs.Config{RingSize: -1}
	return sim.Run(opts)
}

func (m *Manager) registerMetrics() {
	for name, help := range map[string]string{
		"rrs_jobs_submitted_total":        "Jobs accepted by POST /v1/jobs or Submit.",
		"rrs_jobs_done_total":             "Jobs that finished with a result (cache hits included).",
		"rrs_jobs_failed_total":           "Jobs that ended in error (timeouts included).",
		"rrs_jobs_cancelled_total":        "Jobs cancelled before completing.",
		"rrs_jobs_rejected_total":         "Submissions refused by a full queue.",
		"rrs_jobs_shed_total":             "Submissions shed by admission control (backlog over the watermark).",
		"rrs_jobs_requeued_total":         "Jobs whose terminal record was withheld during a drain so a restart's journal replay re-enqueues them.",
		"rrs_jobs_coalesced_total":        "Submissions answered by an already queued or running job with the same spec hash.",
		"rrs_jobs_restored_total":         "Jobs restored from the journal at startup (pending re-enqueues plus terminal records).",
		"rrs_cache_hits_total":            "Submissions answered from the result cache.",
		"rrs_cache_misses_total":          "Submissions that required a simulation.",
		"rrs_runs_started_total":          "Simulations handed to a worker.",
		"rrs_job_retries_total":           "Automatic re-runs of jobs whose run failed transiently.",
		"rrs_worker_panics_total":         "Panics recovered inside a worker's simulation run.",
		"rrs_http_panics_total":           "Panics recovered by the HTTP middleware.",
		"rrs_journal_errors_total":        "Journal append failures (the job proceeds; durability is degraded).",
		"rrs_journal_replayed_jobs_total": "Jobs reconstructed from the journal during startup replay.",
		"rrs_journal_torn_lines_total":    "Corrupt or torn journal lines dropped during replay (a kill -9 mid-append leaves at most one).",
		"rrs_journal_compactions_total":   "Journal compactions completed (one per successful startup replay).",
		"rrs_sim_epochs_total":            "Simulated epochs completed across all finished runs.",
		"rrs_sim_swaps_total":             "RRS row swaps performed across all finished runs.",
		"rrs_sim_accesses_total":          "Memory accesses simulated across all finished runs.",
		"rrs_sim_stall_cycles_total":      "Bus cycles accesses spent queued behind a busy bank or channel, summed across finished runs.",
		"rrs_sim_swap_block_cycles_total": "Bus cycles the channel was blocked by swap/reswap operations, summed across finished runs.",
	} {
		m.met.Counter(name, help)
	}
	m.met.Gauge("rrs_queue_depth", "Jobs accepted but not yet claimed by a worker.",
		func() float64 { return float64(m.queue.Len()) })
	m.met.Gauge("rrs_workers", "Size of the worker pool.",
		func() float64 { return float64(m.opts.Workers) })
	m.met.Gauge("rrs_workers_busy", "Workers currently mid-simulation.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.busy)
		})
	m.met.Gauge("rrs_worker_utilization", "Busy workers over pool size (0..1).",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.busy) / float64(m.opts.Workers)
		})
	m.met.Gauge("rrs_cache_entries", "Results currently cached.",
		func() float64 { return float64(m.cache.Len()) })
	m.registerSweepMetrics()
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		state := s
		m.met.Gauge("rrs_jobs_"+string(state),
			fmt.Sprintf("Tracked jobs in state %q.", state),
			func() float64 { return float64(m.countState(state)) })
	}
	for name, read := range map[string]struct {
		help string
		fn   func(s lastRunStats) float64
	}{
		"rrs_last_run_rit_occupancy_mean": {"Mean per-bank RIT tuple count at epoch boundaries, last finished run.",
			func(s lastRunStats) float64 { return s.ritOccMean }},
		"rrs_last_run_rit_occupancy_peak": {"Peak per-bank RIT tuple count at epoch boundaries, last finished run.",
			func(s lastRunStats) float64 { return s.ritOccPeak }},
		"rrs_last_run_hrt_occupancy_mean": {"Mean per-bank HRT row count at epoch boundaries, last finished run.",
			func(s lastRunStats) float64 { return s.hrtOccMean }},
		"rrs_last_run_hrt_occupancy_peak": {"Peak per-bank HRT row count at epoch boundaries, last finished run.",
			func(s lastRunStats) float64 { return s.hrtOccPeak }},
		"rrs_last_run_stall_cycles_mean": {"Mean queueing stall per delayed access in bus cycles, last finished run.",
			func(s lastRunStats) float64 { return s.stallMean }},
	} {
		fn := read.fn
		m.met.Gauge(name, read.help, func() float64 {
			m.lastRunMu.Lock()
			defer m.lastRunMu.Unlock()
			return fn(m.lastRun)
		})
	}
}

// foldTimeline absorbs a finished run's observability aggregates into
// the registry — counters accumulate across runs, the last-run gauges
// are replaced — so the timeline itself can be dropped before the
// result enters the cache and the job table.
func (m *Manager) foldTimeline(tl *obs.Timeline) {
	if tl == nil { // stubbed RunFunc, or a future events-off path
		return
	}
	var swaps int64
	for _, s := range tl.Samples {
		swaps += s.Swaps
	}
	m.met.Inc("rrs_sim_epochs_total", int64(len(tl.Samples)))
	m.met.Inc("rrs_sim_swaps_total", swaps)
	m.met.Inc("rrs_sim_accesses_total", tl.Histograms[obs.HistAccess.String()].Count)
	m.met.Inc("rrs_sim_stall_cycles_total", tl.Histograms[obs.HistStall.String()].Sum)
	m.met.Inc("rrs_sim_swap_block_cycles_total", tl.Histograms[obs.HistSwapBlock.String()].Sum)

	mean := func(h obs.HistView) float64 {
		if h.Count == 0 {
			return 0
		}
		return float64(h.Sum) / float64(h.Count)
	}
	rit := tl.Histograms[obs.HistRITOcc.String()]
	hrt := tl.Histograms[obs.HistHRTOcc.String()]
	stall := tl.Histograms[obs.HistStall.String()]
	m.lastRunMu.Lock()
	m.lastRun = lastRunStats{
		ritOccMean: mean(rit),
		ritOccPeak: float64(rit.Max),
		hrtOccMean: mean(hrt),
		hrtOccPeak: float64(hrt.Max),
		stallMean:  mean(stall),
	}
	m.lastRunMu.Unlock()
}

func (m *Manager) countState(s State) int {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	n := 0
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == s {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Metrics exposes the registry (for the HTTP layer).
func (m *Manager) Metrics() *Metrics { return m.met }

// journal appends rec if a journal is configured, degrading to a metric
// on failure — a full disk must not take the serving path down with it.
func (m *Manager) journal(rec journalRecord) {
	if m.opts.Journal == nil {
		return
	}
	if err := m.opts.Journal.append(rec); err != nil {
		m.met.Inc("rrs_journal_errors_total", 1)
	}
}

// Submit validates, hashes and enqueues spec. A cache hit returns a job
// already in StateDone carrying the cached result; a hash equal to a
// queued or running job's coalesces onto that job (which is what makes a
// client's retried POST after a dropped response idempotent); otherwise
// the job is queued FIFO. ErrQueueFull and ErrClosed report backpressure
// and shutdown.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	j, _, err := m.submit(spec, false)
	return j, err
}

// submit is Submit plus the sweep feeder's entry point: child marks the
// job as sweep-expanded (it runs through Options.RunChild), and the
// returned coalesced flag tells the feeder whether an existing job
// absorbed the submission.
func (m *Manager) submit(spec Spec, child bool) (j *Job, coalesced bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if m.opts.ForceParanoid {
		spec.Paranoid = true
	}
	if m.opts.DefaultSimWorkers > 0 && spec.Workers == 0 {
		spec.Workers = m.opts.DefaultSimWorkers
	}
	norm := spec.Normalize()
	hash := norm.Hash()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, ErrClosed
	}
	if m.draining {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	if prior, ok := m.inflight[hash]; ok {
		m.mu.Unlock()
		m.met.Inc("rrs_jobs_submitted_total", 1)
		m.met.Inc("rrs_jobs_coalesced_total", 1)
		return prior, true, nil
	}
	m.seq++
	id := fmt.Sprintf("job-%06d", m.seq)
	if m.opts.NodeID != "" {
		id = m.opts.NodeID + "." + id
	}
	j = &Job{
		id:        id,
		seq:       m.seq,
		spec:      norm,
		hash:      hash,
		child:     child,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.mu.Unlock()

	m.met.Inc("rrs_jobs_submitted_total", 1)

	if res, ok := m.cache.Get(j.hash); ok {
		m.met.Inc("rrs_cache_hits_total", 1)
		m.met.Inc("rrs_jobs_done_total", 1)
		j.mu.Lock()
		j.state = StateDone
		j.cacheHit = true
		j.progress = 1
		j.result = &res
		j.finished = time.Now()
		j.mu.Unlock()
		m.mu.Lock()
		m.doneByHash[j.hash] = j
		m.mu.Unlock()
		// Cache-hit jobs are not journaled: their result is already
		// durable under the record of the job that computed it.
		close(j.done)
		return j, false, nil
	}
	m.met.Inc("rrs_cache_misses_total", 1)

	if wm := m.opts.AdmissionWatermark; wm > 0 && m.queue.Len() >= wm {
		// Graceful degradation: past the watermark, refuse work that
		// would need a simulation rather than letting the backlog build
		// to the hard bound. The 429 + Retry-After this maps to tells
		// well-behaved clients (and forwarding fleet peers) to back off
		// or fail over.
		m.met.Inc("rrs_jobs_shed_total", 1)
		m.finish(j, StateCancelled, ErrOverloaded.Error())
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
		return nil, false, ErrOverloaded
	}

	if err := m.queue.Push(j); err != nil {
		if errors.Is(err, ErrQueueFull) {
			m.met.Inc("rrs_jobs_rejected_total", 1)
		}
		m.finish(j, StateCancelled, err.Error())
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
		return nil, false, err
	}
	m.mu.Lock()
	m.inflight[j.hash] = j
	m.mu.Unlock()
	m.journal(acceptedRecord(j))
	return j, false, nil
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns all tracked jobs in deterministic submission order. Seq
// alone is not a total order — journal-restored jobs can tie (an old
// log with no Seq field replays them all as 0) — so ties break by id,
// never by map-iteration order, which must not leak into GET /v1/jobs
// or into sweep aggregation.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	sortBySeqThenID(jobs, func(j *Job) (uint64, string) { return j.seq, j.id })
	return jobs
}

// sortBySeqThenID orders items by sequence number with an id tie-break,
// the listing order shared by jobs and sweeps.
func sortBySeqThenID[T any](items []T, key func(T) (uint64, string)) {
	sort.Slice(items, func(a, b int) bool {
		sa, ia := key(items[a])
		sb, ib := key(items[b])
		if sa != sb {
			return sa < sb
		}
		return ia < ib
	})
}

// Cancel stops a queued or running job. Cancelling a terminal job is a
// no-op reported via ok=false.
func (m *Manager) Cancel(id string) (ok bool, err error) {
	j, found := m.Get(id)
	if !found {
		return false, ErrNotFound
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		// The worker that eventually pops it observes the state and
		// skips; mark it terminal now so waiters unblock immediately.
		j.state = StateCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		m.retire(j)
		m.journal(terminalRecord(j))
		close(j.done)
		m.met.Inc("rrs_jobs_cancelled_total", 1)
		return true, nil
	case j.state == StateRunning && j.cancel != nil:
		cancel := j.cancel
		j.mu.Unlock()
		cancel() // the worker finalizes state when sim.Run returns
		return true, nil
	default:
		j.mu.Unlock()
		return false, nil
	}
}

// Remove deletes a terminal job's record (and is how clients acknowledge
// failures). Active jobs must be cancelled first.
func (m *Manager) Remove(id string) error {
	j, found := m.Get(id)
	if !found {
		return ErrNotFound
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if !state.terminal() {
		return fmt.Errorf("service: job %s is %s; cancel it first", id, state)
	}
	m.mu.Lock()
	delete(m.jobs, id)
	repoint := m.doneByHash[j.hash] == j
	var sameHash []*Job
	if repoint {
		// Duplicate-hash done jobs exist (a cache-hit job shares the
		// computing job's hash); keep one of the survivors indexed so
		// ResultByHash still finds the result after this removal.
		delete(m.doneByHash, j.hash)
		for _, o := range m.jobs {
			if o.hash == j.hash {
				sameHash = append(sameHash, o)
			}
		}
	}
	m.mu.Unlock()
	for _, o := range sameHash {
		o.mu.Lock()
		done := o.state == StateDone && o.result != nil
		o.mu.Unlock()
		if done {
			m.mu.Lock()
			m.doneByHash[j.hash] = o
			m.mu.Unlock()
			break
		}
	}
	m.journal(journalRecord{Type: recRemoved, ID: id})
	return nil
}

// RunSync submits spec and waits for a result, ctx expiry or shutdown —
// the path CLI sweeps use to share the server's cache and worker pool.
func (m *Manager) RunSync(ctx context.Context, spec Spec) (sim.Result, error) {
	j, err := m.Submit(spec)
	if err != nil {
		return sim.Result{}, err
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		m.Cancel(j.ID())
		// The context may have expired in the same instant the job
		// finished; a completed result beats a context error.
		select {
		case <-j.Done():
			if v := j.Snapshot(); v.State == StateDone {
				res, _ := j.Result()
				return res, nil
			}
		default:
		}
		return sim.Result{}, ctx.Err()
	}
	v := j.Snapshot()
	if v.State != StateDone {
		return sim.Result{}, fmt.Errorf("service: job %s %s: %s", j.ID(), v.State, v.Error)
	}
	res, _ := j.Result()
	return res, nil
}

// worker pops jobs until the queue closes.
func (m *Manager) worker() {
	defer m.workers.Done()
	for {
		j, ok := m.queue.Pop()
		if !ok {
			return
		}
		m.runOne(j)
	}
}

// safeRun isolates one simulation attempt: a panic in the engine (or an
// injected chaos panic) becomes this job's error instead of the whole
// process's crash. Panics are permanent — a deterministic engine panics
// deterministically, so a retry would only panic again.
func (m *Manager) safeRun(ctx context.Context, fn RunFunc, spec Spec,
	progress func(done, total int64)) (res sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.met.Inc("rrs_worker_panics_total", 1)
			err = fmt.Errorf("service: worker panic: %v", r)
		}
	}()
	return fn(ctx, spec, progress)
}

// runOne executes one claimed job through its lifecycle.
func (m *Manager) runOne(j *Job) {
	timeout := m.opts.DefaultTimeout
	if j.spec.TimeoutSeconds > 0 {
		timeout = time.Duration(j.spec.TimeoutSeconds * float64(time.Second))
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.attempts++
	j.cancel = cancel
	j.mu.Unlock()

	m.mu.Lock()
	m.busy++
	m.mu.Unlock()
	m.met.Inc("rrs_runs_started_total", 1)

	progress := func(done, total int64) {
		if total <= 0 {
			return
		}
		p := float64(done) / float64(total)
		if p > 1 {
			// Defensive: sim.Run clamps done <= total, but a job must never
			// report more than 100% even if the engine contract regresses.
			p = 1
		}
		j.mu.Lock()
		if p > j.progress {
			j.progress = p
		}
		j.mu.Unlock()
	}

	fn := m.runJob
	if j.child && m.runChild != nil {
		fn = m.runChild
	}
	res, err := m.safeRun(ctx, fn, j.spec, progress)

	m.mu.Lock()
	m.busy--
	m.mu.Unlock()

	switch {
	case err == nil:
		// Drop the live hardware model before the result outlives the
		// run in the cache and job table, and fold the observability
		// aggregates into the metrics registry so the cached result is
		// identical to an unobserved run's.
		res.Mitigation = nil
		m.foldTimeline(res.Timeline)
		res.Timeline = nil
		m.cache.Put(j.hash, res)
		if m.opts.OnResult != nil {
			m.opts.OnResult(j.hash, res)
		}
		start := j.started
		m.finish(j, StateDone, "", &res)
		m.met.Inc("rrs_jobs_done_total", 1)
		m.met.ObserveLatency(time.Since(start).Seconds())
	case errors.Is(err, context.Canceled):
		m.finish(j, StateCancelled, "cancelled by request")
		m.met.Inc("rrs_jobs_cancelled_total", 1)
	case errors.Is(err, context.DeadlineExceeded):
		m.finish(j, StateFailed, fmt.Sprintf("timed out after %s", timeout))
		m.met.Inc("rrs_jobs_failed_total", 1)
	case resilience.IsTransient(err) && m.requeue(j, err):
		// Re-enqueued for another attempt; not terminal yet.
	default:
		m.finish(j, StateFailed, err.Error())
		m.met.Inc("rrs_jobs_failed_total", 1)
	}
}

// requeue sends a transiently failed job back to the queue for another
// attempt, if the retry budget and the queue allow it. It reports false
// when the job must fail permanently instead.
func (m *Manager) requeue(j *Job, cause error) bool {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return false
	}
	j.mu.Lock()
	if j.state != StateRunning || j.attempts > m.opts.JobRetries {
		j.mu.Unlock()
		return false
	}
	j.state = StateQueued
	j.cancel = nil
	j.progress = 0
	j.mu.Unlock()
	if err := m.queue.Push(j); err != nil {
		// No queue slot for the retry: surface the original failure.
		m.finish(j, StateFailed, fmt.Sprintf("%v (retry abandoned: %v)", cause, err))
		m.met.Inc("rrs_jobs_failed_total", 1)
		return true // terminal state reached here; caller must not double-finish
	}
	m.met.Inc("rrs_job_retries_total", 1)
	return true
}

// retire drops j from the submit-coalescing index once it can no longer
// absorb duplicate submissions.
func (m *Manager) retire(j *Job) {
	m.mu.Lock()
	if m.inflight[j.hash] == j {
		delete(m.inflight, j.hash)
	}
	m.mu.Unlock()
}

// finish moves j to a terminal state exactly once.
func (m *Manager) finish(j *Job, state State, errMsg string, result ...*sim.Result) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = errMsg
	j.cancel = nil
	j.finished = time.Now()
	if state == StateDone {
		j.progress = 1
		if len(result) > 0 {
			j.result = result[0]
		}
	}
	j.mu.Unlock()
	m.retire(j)
	m.mu.Lock()
	if state == StateDone && len(result) > 0 && result[0] != nil {
		m.doneByHash[j.hash] = j
	}
	draining := m.draining
	m.mu.Unlock()
	if draining && state == StateCancelled {
		// Drain semantics: a cancellation during drain is "ran out of
		// time", not "the client gave up". Withholding the terminal
		// record leaves the accepted record unmatched, so the next
		// startup's journal replay re-enqueues the job instead of
		// losing it.
		m.met.Inc("rrs_jobs_requeued_total", 1)
	} else {
		m.journal(terminalRecord(j))
	}
	close(j.done)
}

// StartDrain flips the manager into drain mode: Submit refuses new work
// with ErrDraining (HTTP 503) and /readyz reports not-ready, while
// already-accepted jobs keep running. Call Drain to bound the wind-down.
func (m *Manager) StartDrain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Draining reports whether the manager is in drain mode or closed —
// either way it is not accepting work, which is what /readyz serves.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining || m.closed
}

// Backlog reports how many accepted jobs are waiting for a worker.
func (m *Manager) Backlog() int { return m.queue.Len() }

// Load reports the serving pressure: queued backlog, workers mid-run,
// and the pool size. The fleet's steal loop uses it to decide when this
// node is idle enough to take a peer's work.
func (m *Manager) Load() (backlog, busy, workers int) {
	m.mu.Lock()
	busy = int(m.busy)
	m.mu.Unlock()
	return m.queue.Len(), busy, m.opts.Workers
}

// CachedResult answers a content-hash lookup from the local result
// cache — the building block of fleet-wide cache hits: before running a
// job, a peer asks the rest of the fleet for the hash first.
func (m *Manager) CachedResult(hash string) (sim.Result, bool) {
	return m.cache.Get(hash)
}

// active counts jobs not yet in a terminal state.
func (m *Manager) active() int {
	n := 0
	for _, j := range m.List() {
		j.mu.Lock()
		if !j.state.terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Drain is the graceful half of shutdown: stop intake, then give the
// backlog and running jobs until ctx expires to finish. Jobs that do
// not make it are cancelled with their terminal journal record
// withheld, so the accepted records replay as pending on the next
// startup — a drain never loses accepted work, it completes it or hands
// it to the future (or, in a fleet, to the node's replacement). Returns
// ctx.Err() when the deadline cut jobs short, nil when everything
// finished.
func (m *Manager) Drain(ctx context.Context) error {
	m.StartDrain()

	// Let the workers chew through what is already accepted.
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	timedOut := false
wait:
	for m.active() > 0 {
		select {
		case <-ctx.Done():
			timedOut = true
			break wait
		case <-tick.C:
		}
	}

	// Stop the pool. Anything still queued (including jobs lent to a
	// fleet peer, which live outside the fifo) or running is cancelled
	// now — under drain mode finish() withholds their terminal records.
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	for _, j := range m.queue.Close() {
		m.finish(j, StateCancelled, "drained: will replay on restart")
		m.met.Inc("rrs_jobs_cancelled_total", 1)
	}
	for _, j := range m.List() {
		j.mu.Lock()
		terminal := j.state.terminal()
		running := j.state == StateRunning
		j.mu.Unlock()
		switch {
		case terminal:
		case running:
			m.Cancel(j.ID())
		default:
			// Queued but not in the fifo: lent to a thief that never
			// donated, or raced the queue close.
			m.finish(j, StateCancelled, "drained: will replay on restart")
			m.met.Inc("rrs_jobs_cancelled_total", 1)
		}
	}
	m.workers.Wait()
	// Sweep feeders observe ErrDraining/ErrClosed and stop; watchers
	// unblock once their children are cancelled above. Terminal sweep
	// records are withheld under drain (like job records), so the next
	// startup's replay resumes the sweeps too.
	m.sweepWG.Wait()
	if timedOut {
		return ctx.Err()
	}
	return nil
}

// StealQueued pops the oldest queued job off the run queue for remote
// execution, leaving its record — and its client-visible id — in place.
// The caller must either deliver a result via CompleteExternal or give
// the job back via RequeueStolen; a fleet node guards that obligation
// with a lease and reclaims expired ones.
func (m *Manager) StealQueued() (*Job, bool) {
	if m.Draining() {
		return nil, false
	}
	for {
		j, ok := m.queue.TryPop()
		if !ok {
			return nil, false
		}
		j.mu.Lock()
		queued := j.state == StateQueued
		j.mu.Unlock()
		if queued {
			return j, true
		}
		// Cancelled while waiting; skip it like a worker would.
	}
}

// RequeueStolen returns a stolen job to the local queue (thief gone,
// lease expired). If the queue is no longer accepting, the job is
// cancelled — under drain that withholds the terminal record, so it
// still replays on restart.
func (m *Manager) RequeueStolen(j *Job) {
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if !queued {
		return
	}
	if err := m.queue.Push(j); err != nil {
		m.finish(j, StateCancelled, fmt.Sprintf("stolen job could not requeue: %v", err))
		m.met.Inc("rrs_jobs_cancelled_total", 1)
	}
}

// CompleteExternal finishes a stolen job with a result computed
// elsewhere (a fleet thief's donation). Reports false when the job
// already reached a terminal state — a duplicate donation, or a local
// re-run that won the race — in which case the result is dropped and
// exactly-once delivery is preserved by the job's single terminal
// state.
func (m *Manager) CompleteExternal(j *Job, res sim.Result) bool {
	j.mu.Lock()
	if j.state.terminal() || j.state == StateRunning {
		j.mu.Unlock()
		return false
	}
	j.mu.Unlock()
	res.Mitigation = nil
	res.Timeline = nil
	m.cache.Put(j.hash, res)
	if m.opts.OnResult != nil {
		m.opts.OnResult(j.hash, res)
	}
	m.finish(j, StateDone, "", &res)
	m.met.Inc("rrs_jobs_done_total", 1)
	return true
}

// InsertCached stores an externally computed result in the result cache
// with no job record — the receive path of fleet result replication. The
// same stripping as local completion keeps every cached payload
// byte-identical regardless of which node computed it. OnResult is
// deliberately not invoked: a received replica must not fan back out.
func (m *Manager) InsertCached(hash string, res sim.Result) {
	res.Mitigation = nil
	res.Timeline = nil
	m.cache.Put(hash, res)
}

// DoneHashes returns every content hash this node durably holds a result
// for: done jobs (journal-backed, in submission order) followed by
// cache-only entries (received replicas, fan-out adoptions), deduplicated.
// The fleet's anti-entropy repair loop walks this set to verify each
// result still has its ring replica.
func (m *Manager) DoneHashes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, j := range m.List() {
		j.mu.Lock()
		done := j.state == StateDone && j.result != nil
		h := j.hash
		j.mu.Unlock()
		if done && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, h := range m.cache.Keys() {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// ResultByHash returns a held result by content hash, consulting the
// cache first and falling back to the done-job index — a done job's
// result can outlive its cache entry under LRU pressure, and the repair
// loop (and sweep aggregation, once per unlinked child per poll) must
// still find it without scanning the whole job table.
func (m *Manager) ResultByHash(hash string) (sim.Result, bool) {
	if res, ok := m.cache.Get(hash); ok {
		return res, true
	}
	m.mu.Lock()
	j := m.doneByHash[hash]
	m.mu.Unlock()
	if j == nil {
		return sim.Result{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone && j.result != nil {
		return *j.result, true
	}
	return sim.Result{}, false
}

// Shutdown stops intake, cancels the backlog, and waits for running
// jobs to drain (or ctx to expire, in which case they are cancelled).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	for _, j := range m.queue.Close() {
		m.finish(j, StateCancelled, "server shutting down")
		m.met.Inc("rrs_jobs_cancelled_total", 1)
	}

	drained := make(chan struct{})
	go func() {
		m.workers.Wait()
		m.sweepWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Force-cancel what is still running, then wait for the pool.
		for _, j := range m.List() {
			m.Cancel(j.ID())
		}
		<-drained
		return ctx.Err()
	}
}
