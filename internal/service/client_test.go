package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		name string
		in   string
		min  time.Duration
		max  time.Duration
	}{
		{"empty", "", 0, 0},
		{"delta seconds", "3", 3 * time.Second, 3 * time.Second},
		{"zero", "0", 0, 0},
		{"negative", "-5", 0, 0},
		{"garbage", "soon", 0, 0},
		// The RFC 9110 HTTP-date form, which proxies and standard servers
		// emit; it was silently dropped before the fix.
		{"http date ahead", time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat),
			time.Second, 3 * time.Second},
		{"http date past", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parseRetryAfter(tc.in)
			if got < tc.min || got > tc.max {
				t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]",
					tc.in, got, tc.min, tc.max)
			}
		})
	}
}

func TestClientHonorsHTTPDateRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After",
				time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	var slept time.Duration
	c := NewClient(srv.URL)
	c.Retry = resilience.Policy{
		MaxAttempts: 2,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept += d
			return nil
		},
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The backoff for the first retry caps at 100 ms; only the parsed
	// HTTP-date hint can push the wait near the server's 2 s.
	if slept < 500*time.Millisecond {
		t.Errorf("retry waited %v; the HTTP-date Retry-After hint was dropped", slept)
	}
}

// TestRunRecoversLostJobFromResultStore is the regression for the blind
// re-POST: when a job record vanishes (fleet owner died, journal missed
// it), Run must first ask the content-addressed result store before
// resubmitting — finished work is never re-queued.
func TestRunRecoversLostJobFromResultStore(t *testing.T) {
	spec := uniqueSpec(7).Normalize()
	var posts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(JobView{ID: "job-000001", State: StateQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		// The record is gone — a restart lost the id.
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"service: no such job"}`)
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("hash") != spec.Hash() {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"no result"}`)
			return
		}
		env := ResultEnvelope{Hash: spec.Hash(), CacheHit: true}
		env.Result.IPC = 42
		json.NewEncoder(w).Encode(env)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := NewClient(srv.URL)
	c.PollInterval = time.Millisecond
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 42 {
		t.Fatalf("result = %+v, want the stored IPC 42", res)
	}
	if got := posts.Load(); got != 1 {
		t.Errorf("client re-POSTed %d times for work already done; hash lookup must win", got)
	}
}
