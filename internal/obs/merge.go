package obs

import "sort"

// OffsetBanks rewrites every event's bank index by delta, leaving the
// system-wide sentinel (-1) untouched. The parallel simulation mode uses
// it to translate a shard recorder's local flat bank indices into the
// full system's flat index space before merging timelines.
func (tl *Timeline) OffsetBanks(delta int32) {
	if tl == nil || delta == 0 {
		return
	}
	for i := range tl.Events {
		if tl.Events[i].Bank >= 0 {
			tl.Events[i].Bank += delta
		}
	}
}

// MergeTimelines folds per-shard recordings into one timeline, the
// deterministic merge the parallel simulation mode performs at the end
// of a run. Events are merged chronologically with ties broken by input
// order (so a fixed shard order yields a fixed stream); histograms add
// bucket-by-bucket; epoch samples align by epoch index and sum. Nil
// parts are skipped; the result is nil only if every part is nil.
func MergeTimelines(parts []*Timeline) *Timeline {
	var live []*Timeline
	for _, p := range parts {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	out := &Timeline{}
	var events []Event
	for _, p := range live {
		out.TotalEvents += p.TotalEvents
		out.DroppedEvents += p.DroppedEvents
		events = append(events, p.Events...)
	}
	if len(events) > 0 {
		sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
		out.Events = events
	}
	for _, p := range live {
		for name, hv := range p.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistView)
			}
			out.Histograms[name] = mergeHistViews(out.Histograms[name], hv)
		}
	}
	out.Samples = mergeSamples(live)
	return out
}

// mergeHistViews adds b into a. Both views come from Hist.View, so their
// buckets are sorted by LE with identical geometry.
func mergeHistViews(a, b HistView) HistView {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	m := HistView{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   a.Min,
		Max:   a.Max,
	}
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
	m.Mean = float64(m.Sum) / float64(m.Count)
	byLE := make(map[int64]int64, len(a.Buckets)+len(b.Buckets))
	for _, bc := range a.Buckets {
		byLE[bc.LE] += bc.Count
	}
	for _, bc := range b.Buckets {
		byLE[bc.LE] += bc.Count
	}
	les := make([]int64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	for _, le := range les {
		m.Buckets = append(m.Buckets, BucketCount{LE: le, Count: byLE[le]})
	}
	return m
}

// mergeSamples aligns per-epoch samples across shards by epoch index and
// sums the mitigation-state fields. Shards that finished with fewer
// completed epochs simply contribute nothing to the later indices.
func mergeSamples(parts []*Timeline) []EpochSample {
	byEpoch := make(map[int64]EpochSample)
	for _, p := range parts {
		for _, s := range p.Samples {
			m, ok := byEpoch[s.Epoch]
			if !ok {
				byEpoch[s.Epoch] = s
				continue
			}
			m.Swaps += s.Swaps
			m.RITTuples += s.RITTuples
			m.HRTRows += s.HRTRows
			m.BlockCycles += s.BlockCycles
			if s.At > m.At {
				m.At = s.At
			}
			byEpoch[s.Epoch] = m
		}
	}
	if len(byEpoch) == 0 {
		return nil
	}
	out := make([]EpochSample, 0, len(byEpoch))
	for _, s := range byEpoch {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}
