package service

import (
	"strings"
	"testing"
)

func TestSpecHashCanonical(t *testing.T) {
	// Spelling out the defaults must not change the job's identity.
	implicit := Spec{Workloads: []string{"bzip2"}}
	explicit := Spec{
		Workloads:           []string{"bzip2"},
		Mitigation:          MitNone,
		Scale:               1,
		InstructionsPerCore: 1_000_000,
	}
	if implicit.Hash() != explicit.Hash() {
		t.Errorf("defaulted and explicit specs hash differently:\n%s\n%s",
			implicit.Hash(), explicit.Hash())
	}

	// The timeout cannot change the result, so it must not change the
	// address either.
	timed := implicit
	timed.TimeoutSeconds = 30
	if timed.Hash() != implicit.Hash() {
		t.Error("TimeoutSeconds changed the content hash")
	}

	// Every result-bearing knob must change the address.
	base := Spec{Workloads: []string{"bzip2"}, Mitigation: MitRRS, Scale: 16, Epochs: 2}
	variants := map[string]Spec{}
	v := base
	v.Seed = 7
	variants["seed"] = v
	v = base
	v.Mitigation = MitPARA
	variants["mitigation"] = v
	v = base
	v.Scale = 32
	variants["scale"] = v
	v = base
	v.Epochs = 3
	variants["epochs"] = v
	v = base
	v.Workloads = []string{"hmmer"}
	variants["workload"] = v
	v = base
	v.RowHammerThreshold = 77
	variants["trh"] = v
	v = base
	v.Cores = 2
	variants["cores"] = v
	v = base
	v.Paranoid = true
	variants["paranoid"] = v
	v = base
	v.MaxSteps = 100000
	variants["max-steps"] = v
	v = base
	v.Workers = 1
	variants["workers"] = v
	seen := map[string]string{base.Hash(): "base"}
	for name, spec := range variants {
		h := spec.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestSpecHashWorkersMode(t *testing.T) {
	// The execution mode is content; the concurrency is not. Any two
	// positive worker counts are bit-identical runs and must share one
	// cache entry, while sequential and parallel must not.
	seq := Spec{Workloads: []string{"bzip2"}}
	par2, par8 := seq, seq
	par2.Workers = 2
	par8.Workers = 8
	if par2.Hash() != par8.Hash() {
		t.Error("workers=2 and workers=8 hash differently")
	}
	if seq.Hash() == par2.Hash() {
		t.Error("sequential and parallel specs hash identically")
	}

	opts, err := par8.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 8 {
		t.Errorf("Options().Workers = %d, want the requested 8", opts.Workers)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string
	}{
		{"ok", Spec{Workloads: []string{"bzip2"}, Mitigation: MitRRS}, ""},
		{"ok blockhammer", Spec{Workloads: []string{"hmmer"}, Mitigation: MitBlockHammer, Blacklist: 1024}, ""},
		{"no workloads", Spec{}, "at least one workload"},
		{"unknown workload", Spec{Workloads: []string{"doom"}}, `unknown workload "doom"`},
		{"unknown mitigation", Spec{Workloads: []string{"bzip2"}, Mitigation: "tape"}, "unknown mitigation"},
		{"bad cores", Spec{Workloads: []string{"bzip2"}, Cores: -3}, "Cores"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSpecOptionsMirrorsCLIDefaults(t *testing.T) {
	// The spec the README curl walkthrough posts must compile to the
	// same run rrs-sim's default flags build.
	spec := Spec{Workloads: []string{"bzip2"}, Mitigation: MitRRS, Scale: 16, Epochs: 2, Seed: 1}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := opts.Config.RowHammerThreshold, 4800/16; got != want {
		t.Errorf("scaled T_RH = %d, want %d", got, want)
	}
	if opts.CycleLimit != 2*opts.Config.EpochCycles {
		t.Errorf("CycleLimit = %d, want %d", opts.CycleLimit, 2*opts.Config.EpochCycles)
	}
	if opts.InstructionsPerCore != 1<<62 {
		t.Errorf("InstructionsPerCore = %d, want effectively unlimited", opts.InstructionsPerCore)
	}
	if opts.Mitigation == nil {
		t.Error("mitigation factory missing for rrs")
	}
	if len(opts.Workloads) != 1 || opts.Workloads[0].Name != "bzip2" {
		t.Errorf("workloads = %v", opts.Workloads)
	}
}
