package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/resilience"
	"repro/internal/sim"
)

// Result replication keeps the fleet's durability invariant: every
// completed result exists on K=2 nodes — the one that computed it plus
// the first other live peer in its spec hash's rendezvous order (the
// successor while we own the hash; the current owner if ownership has
// moved away from us). The payload is the cache entry itself
// (Timeline- and Mitigation-stripped), so when the home node dies the
// existing cache fan-out finds the copy on the successor and a
// poll-404 resubmit is answered from cache instead of re-simulating.
//
// The push is asynchronous — a bounded queue fed by the manager's
// OnResult hook, drained by one replicator goroutine with
// resilience-backed retries — so replication never sits on the worker
// hot path. Whatever slips through (queue overflow, a push that fails
// every retry, a successor that later dies) is re-established by the
// anti-entropy repair loop, which slowly walks everything this node
// holds and verifies each hash's replica target still has the bytes.

// replicaTask is one queued replication: a cache entry to copy out.
type replicaTask struct {
	hash string
	res  sim.Result
}

// enqueueReplica feeds the replication queue from the manager's
// OnResult hook. Non-blocking by design: the caller is a worker
// goroutine finishing a job, and a full queue must cost a counter
// bump, not simulation throughput.
func (n *Node) enqueueReplica(hash string, res sim.Result) {
	if n.repq == nil {
		return
	}
	select {
	case n.repq <- replicaTask{hash: hash, res: res}:
	default:
		n.met.Inc("rrs_fleet_replica_drops_total", 1)
	}
}

// replicator drains the queue until Close.
func (n *Node) replicator() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-n.stop
		cancel()
	}()
	for {
		select {
		case <-n.stop:
			return
		case t := <-n.repq:
			n.pushReplica(ctx, t.hash, t.res)
		}
	}
}

// FlushReplicas synchronously drains the replication queue — the drain
// path and tests use it to guarantee every finished result has its
// copy before the process goes away. Returns when the queue is empty
// or ctx expires.
func (n *Node) FlushReplicas(ctx context.Context) error {
	if n.repq == nil {
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case t := <-n.repq:
			n.pushReplica(ctx, t.hash, t.res)
		default:
			return nil
		}
	}
}

// replicaTarget picks where hash's extra copy belongs: the first live
// peer other than self in the hash's rendezvous order. ok is false
// when there is no other live peer (single-node fleet, or everyone
// else is down) — nothing useful to do, repair will catch up once the
// ring grows.
func (n *Node) replicaTarget(hash string) (Peer, bool) {
	for _, p := range rank(hash, n.liveSet()) {
		if p.ID != n.self.ID {
			return p, true
		}
	}
	return Peer{}, false
}

// pushReplica copies one result to its replica target, retrying per
// the node's policy. Failures are counted and abandoned — the repair
// loop is the backstop, not a deeper retry stack.
func (n *Node) pushReplica(ctx context.Context, hash string, res sim.Result) bool {
	target, ok := n.replicaTarget(hash)
	if !ok {
		return false
	}
	err := resilience.Do(ctx, n.opts.Retry, func(ctx context.Context) error {
		return resilience.MarkTransient(n.sendReplica(ctx, target, hash, res))
	})
	if err != nil {
		n.met.Inc("rrs_fleet_replica_failures_total", 1)
		return false
	}
	n.met.Inc("rrs_fleet_replicated_total", 1)
	return true
}

// sendReplica is one POST /v1/fleet/replica attempt.
func (n *Node) sendReplica(ctx context.Context, p Peer, hash string, res sim.Result) error {
	body, err := json.Marshal(cacheEnvelope{Hash: hash, Result: res})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.URL+"/v1/fleet/replica", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: replica push to %s: status %d", p.ID, resp.StatusCode)
	}
	return nil
}

// peerHolds asks whether p's cache has hash, cheaply: a HEAD against
// the cache endpoint (the GET route answers HEAD with headers only).
func (n *Node) peerHolds(ctx context.Context, p Peer, hash string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead,
		p.URL+"/v1/fleet/cache/"+hash, nil)
	if err != nil {
		return false
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// RepairOnce runs one anti-entropy batch: walk up to RepairBatch of
// the results this node holds (done jobs and cache entries alike,
// cursor-advanced across calls so big sets are covered a slice at a
// time), verify the current replica target still holds each one, and
// re-push the ones it lost — the invariant-restoring move after
// ownership churn. Returns how many were checked and re-replicated;
// exposed for tests and driven by Start's repair loop in production.
func (n *Node) RepairOnce(ctx context.Context) (checked, repaired int) {
	hashes := n.mgr.DoneHashes()
	if len(hashes) == 0 {
		return 0, 0
	}
	n.mu.Lock()
	start := n.repairIdx % len(hashes)
	batch := n.opts.RepairBatch
	if batch > len(hashes) {
		batch = len(hashes)
	}
	n.repairIdx = (start + batch) % len(hashes)
	n.mu.Unlock()

	for i := 0; i < batch; i++ {
		if ctx.Err() != nil {
			return checked, repaired
		}
		hash := hashes[(start+i)%len(hashes)]
		target, ok := n.replicaTarget(hash)
		if !ok {
			continue
		}
		checked++
		n.met.Inc("rrs_fleet_repair_checks_total", 1)
		if n.peerHolds(ctx, target, hash) {
			continue
		}
		res, ok := n.mgr.ResultByHash(hash)
		if !ok {
			continue
		}
		if n.pushReplica(ctx, hash, res) {
			repaired++
			n.met.Inc("rrs_fleet_repair_replicated_total", 1)
		}
	}
	return checked, repaired
}

// handleReplica accepts a pushed replica into the local result cache.
// No job record is created and OnResult does not fire — a replica must
// never fan back out from the receiving side.
func (n *Node) handleReplica(w http.ResponseWriter, r *http.Request) {
	var env cacheEnvelope
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&env); err != nil {
		http.Error(w, "bad replica payload: "+err.Error(), http.StatusBadRequest)
		return
	}
	if env.Hash == "" {
		http.Error(w, "replica payload needs a hash", http.StatusBadRequest)
		return
	}
	n.mgr.InsertCached(env.Hash, env.Result)
	n.met.Inc("rrs_fleet_replicas_received_total", 1)
	w.WriteHeader(http.StatusNoContent)
}
