// Command rrs-tracegen materializes synthetic workload traces as binary
// files (the format package trace defines), optionally filtering a raw
// stream through the LLC model the way Pin-captured traces are filtered
// before reaching USIMM.
//
// Usage:
//
//	rrs-tracegen -workload bzip2 -records 1000000 -out bzip2.trc
//	rrs-tracegen -workload hmmer -records 500000 -llc -out hmmer.trc
//
// Files written by this tool can be replayed with rrs-sim-style harnesses
// via trace.NewFileReader.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "bzip2", "workload from the catalog")
		records  = flag.Int64("records", 1_000_000, "number of records to emit")
		out      = flag.String("out", "", "output file (default <workload>.trc)")
		llc      = flag.Bool("llc", false, "filter through the 8MB/16-way LLC model (emits misses and writebacks only)")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	w, ok := trace.ByName(*workload)
	if !ok {
		fatalf("unknown workload %q", *workload)
	}
	path := *out
	if path == "" {
		path = w.Name + ".trc"
	}

	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	tw := trace.NewWriter(bw)

	cfg := config.Default()
	gen := trace.NewGenerator(w, trace.GeneratorParams{
		LineBytes: cfg.LineBytes,
		RowBytes:  cfg.RowBytes,
		Seed:      *seed,
	})

	var llcModel *cache.Cache
	if *llc {
		llcModel = cache.New(cfg.LLCBytes, cfg.LLCWays, cfg.LineBytes)
	}

	var written, pendingGap int64
	for written < *records {
		rec, _ := gen.Next()
		if llcModel != nil {
			r := llcModel.Access(rec.Line, rec.Write)
			if r.Hit {
				// Hits fold into the instruction gap of the next miss.
				pendingGap += int64(rec.Gap) + 1
				continue
			}
			rec.Gap = saturate(int64(rec.Gap) + pendingGap)
			pendingGap = 0
			if err := tw.Write(rec); err != nil {
				fatalf("write: %v", err)
			}
			written++
			if r.Writeback && written < *records {
				if err := tw.Write(trace.Record{Line: r.VictimLine, Write: true}); err != nil {
					fatalf("write: %v", err)
				}
				written++
			}
			continue
		}
		if err := tw.Write(rec); err != nil {
			fatalf("write: %v", err)
		}
		written++
	}
	if err := bw.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
	fmt.Printf("wrote %d records to %s", written, path)
	if llcModel != nil {
		total := llcModel.Hits() + llcModel.Misses()
		fmt.Printf(" (LLC filtered: %.1f%% hit rate, %d writebacks)",
			100*float64(llcModel.Hits())/float64(total), llcModel.Writebacks())
	}
	fmt.Println()
}

func saturate(v int64) uint32 {
	if v > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rrs-tracegen: "+format+"\n", args...)
	os.Exit(1)
}
