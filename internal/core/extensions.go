package core

import "repro/internal/obs"

// This file implements the two extensions the paper sketches but does not
// evaluate:
//
//   - Footnote 1: a probabilistic, state-less variant of RRS where each
//     activation triggers a swap with probability p instead of being
//     counted by a Misra-Gries tracker. The paper argues the swap rate of
//     such a design is far higher at low Row Hammer thresholds; the
//     TrackerVsProbabilistic ablation quantifies it.
//
//   - Footnote 2: attack detection. A successful attack on RRS requires
//     repeated swaps landing on one physical location within an epoch
//     (the k-balls-in-a-bucket event of the security analysis), which
//     benign workloads essentially never produce. RRS counts swap events
//     per physical location; crossing DetectionThreshold flags an attack
//     and triggers a preemptive refresh of the whole DRAM, restoring every
//     victim's charge long before the k = 6 swaps a flip needs.

// observeDetection records that the physical location loc absorbed a swap
// event and fires the preemptive-refresh response when a location is hit
// repeatedly within one epoch.
func (r *RRS) observeDetection(u *bankUnit, loc uint64) {
	if r.params.DetectionThreshold <= 0 {
		return
	}
	u.swapMarks[loc]++
	if int(u.swapMarks[loc]) < r.params.DetectionThreshold {
		return
	}
	r.stats.AttacksDetected++
	if rec := r.rec; rec != nil {
		rec.RecordNow(obs.KindAttack, u.bank, loc, uint64(u.swapMarks[loc]))
	}
	// Preemptive refresh of the entire DRAM: every row's charge is
	// restored, so the attacker's accumulated disturbance is wiped.
	r.sys.RefreshAll()
	clear(u.swapMarks)
}

// resetDetection clears per-epoch detection state.
func (u *bankUnit) resetDetection() {
	if u.swapMarks != nil {
		clear(u.swapMarks)
	}
}

// probabilisticTrigger implements the footnote-1 variant: swap with
// probability p on each activation, no tracking.
func (r *RRS) probabilisticTrigger(u *bankUnit) bool {
	return u.rng.Float64() < r.params.SwapProbability
}
