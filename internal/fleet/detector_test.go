package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeProbe is a switchable probe target shared by detector tests.
type fakeProbe struct {
	mu   sync.Mutex
	down map[string]bool
}

func (f *fakeProbe) set(id string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down == nil {
		f.down = map[string]bool{}
	}
	f.down[id] = down
}

func (f *fakeProbe) probe(_ context.Context, p Peer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[p.ID] {
		return errors.New("injected probe failure")
	}
	return nil
}

func TestDetectorHysteresis(t *testing.T) {
	peers := testPeers(2)
	fp := &fakeProbe{}
	var flaps int
	d := newDetector(peers, 2, 3, time.Second, fp.probe,
		func(Peer, bool) { flaps++ })
	ctx := context.Background()

	routable := func() map[string]bool {
		out := map[string]bool{}
		for _, p := range d.Routable() {
			out[p.ID] = true
		}
		return out
	}

	// Optimistic start: both peers route before any probe has run.
	if r := routable(); !r["n1"] || !r["n2"] {
		t.Fatalf("peers should start routable, got %v", r)
	}

	// n1 goes down: fall=3, so two bad rounds keep it in the ring...
	fp.set("n1", true)
	d.ProbeOnce(ctx)
	d.ProbeOnce(ctx)
	if r := routable(); !r["n1"] {
		t.Fatalf("n1 dropped after only 2 failures (fall=3)")
	}
	// ...and the third evicts it.
	d.ProbeOnce(ctx)
	if r := routable(); r["n1"] || !r["n2"] {
		t.Fatalf("after 3 failures want n1 out, n2 in; got %v", r)
	}
	if flaps != 1 {
		t.Fatalf("flaps = %d, want 1", flaps)
	}

	// Recovery: rise=2, one good probe is not enough...
	fp.set("n1", false)
	d.ProbeOnce(ctx)
	if r := routable(); r["n1"] {
		t.Fatalf("n1 rejoined after only 1 success (rise=2)")
	}
	// ...two are.
	d.ProbeOnce(ctx)
	if r := routable(); !r["n1"] {
		t.Fatalf("n1 should rejoin after 2 successes")
	}
	if flaps != 2 {
		t.Fatalf("flaps = %d, want 2", flaps)
	}

	// A single dropped probe between successes resets the rise streak
	// but does not evict.
	fp.set("n2", true)
	d.ProbeOnce(ctx)
	fp.set("n2", false)
	if r := routable(); !r["n2"] {
		t.Fatalf("n2 evicted by a single dropped probe")
	}
}

func TestDetectorSnapshotStreaks(t *testing.T) {
	peers := testPeers(1)
	fp := &fakeProbe{}
	d := newDetector(peers, 2, 3, time.Second, fp.probe, nil)
	ctx := context.Background()

	fp.set("n1", true)
	d.ProbeOnce(ctx)
	d.ProbeOnce(ctx)
	snap := d.Snapshot()
	if len(snap) != 1 || !snap[0].Routable || snap[0].Streak != 2 {
		t.Fatalf("snapshot after 2 failures = %+v, want routable with failure streak 2", snap)
	}
}
