package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%d): %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", b, err)
		}
		if back != k {
			t.Fatalf("kind %d round-tripped to %d via %q", k, back, b)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("no-such-kind")); err == nil {
		t.Fatal("UnmarshalText accepted an unknown kind")
	}
}

func TestEventJSONUsesKindNames(t *testing.T) {
	e := Event{At: 42, Kind: KindRITInstall, Bank: 3, A: 10, B: 20}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if got := m["kind"]; got != "rit-install" {
		t.Fatalf("kind serialized as %v, want %q", got, "rit-install")
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Fatalf("event round-trip: got %+v want %+v", back, e)
	}
}

func TestRingKeepsNewest(t *testing.T) {
	r := NewRecorder(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		r.Record(KindSwap, 0, uint64(i), 0, int64(i), 0)
	}
	tl := r.Timeline()
	if tl.TotalEvents != 10 || tl.DroppedEvents != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", tl.TotalEvents, tl.DroppedEvents)
	}
	if len(tl.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(tl.Events))
	}
	for i, e := range tl.Events {
		if want := uint64(6 + i); e.A != want || e.At != int64(want) {
			t.Fatalf("event %d = %+v, want A=At=%d (newest in order)", i, e, want)
		}
	}
}

func TestRingExactlyFull(t *testing.T) {
	r := NewRecorder(Config{RingSize: 4})
	for i := 0; i < 4; i++ {
		r.Record(KindSwap, 0, uint64(i), 0, int64(i), 0)
	}
	tl := r.Timeline()
	if tl.DroppedEvents != 0 {
		t.Fatalf("dropped %d events from an exactly-full ring", tl.DroppedEvents)
	}
	if len(tl.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(tl.Events))
	}
	for i, e := range tl.Events {
		if e.A != uint64(i) {
			t.Fatalf("event %d = %+v, want A=%d", i, e, i)
		}
	}
}

func TestRingPartiallyFull(t *testing.T) {
	r := NewRecorder(Config{RingSize: 8})
	r.Record(KindSwap, 1, 7, 9, 100, 0)
	r.RecordNow(KindUnswap, 2, 3, 4)
	tl := r.Timeline()
	if tl.TotalEvents != 2 || tl.DroppedEvents != 0 || len(tl.Events) != 2 {
		t.Fatalf("timeline %+v, want 2 kept events", tl)
	}
	if tl.Events[0].Kind != KindSwap || tl.Events[1].Kind != KindUnswap {
		t.Fatalf("wrong order: %+v", tl.Events)
	}
}

func TestNegativeRingSizeDisablesEvents(t *testing.T) {
	r := NewRecorder(Config{RingSize: -1})
	r.Record(KindSwap, 0, 1, 2, 3, 0)
	r.Observe(HistStall, 12)
	tl := r.Timeline()
	if len(tl.Events) != 0 {
		t.Fatalf("hist-only recorder kept events: %+v", tl.Events)
	}
	if tl.TotalEvents != 1 || tl.DroppedEvents != 1 {
		t.Fatalf("total=%d dropped=%d, want 1/1", tl.TotalEvents, tl.DroppedEvents)
	}
	if tl.Histograms["stall_cycles"].Count != 1 {
		t.Fatalf("histogram missing: %+v", tl.Histograms)
	}
}

func TestRecordNowUsesClock(t *testing.T) {
	r := NewRecorder(Config{RingSize: 4})
	r.SetNow(555)
	r.RecordNow(KindHRTInsert, 1, 2, 3)
	if got := r.Timeline().Events[0].At; got != 555 {
		t.Fatalf("RecordNow stamped %d, want 555", got)
	}
	if r.Now() != 555 {
		t.Fatalf("Now() = %d, want 555", r.Now())
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	v := h.View()
	if v.Count != 7 {
		t.Fatalf("count=%d, want 7", v.Count)
	}
	if v.Min != 0 || v.Max != 100 {
		t.Fatalf("min=%d max=%d, want 0/100", v.Min, v.Max)
	}
	if v.Sum != 110 { // -5 clamps to 0
		t.Fatalf("sum=%d, want 110", v.Sum)
	}
	if want := 110.0 / 7; v.Mean != want {
		t.Fatalf("mean=%v, want %v", v.Mean, want)
	}
	// Buckets: le=0 holds {0,-5}; le=1 holds {1}; le=3 holds {2,3};
	// le=7 holds {4}; le=127 holds {100}.
	want := []BucketCount{
		{LE: 0, Count: 2},
		{LE: 1, Count: 1},
		{LE: 3, Count: 2},
		{LE: 7, Count: 1},
		{LE: 127, Count: 1},
	}
	if !reflect.DeepEqual(v.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", v.Buckets, want)
	}
}

func TestHistEmptyViewOmitted(t *testing.T) {
	r := NewRecorder(Config{RingSize: -1})
	tl := r.Timeline()
	if tl.Histograms != nil {
		t.Fatalf("empty recorder exported histograms: %+v", tl.Histograms)
	}
}

func TestEpochSamplesExported(t *testing.T) {
	r := NewRecorder(Config{RingSize: -1})
	r.Sample(EpochSample{Epoch: 0, At: 10, Swaps: 3, RITTuples: 5, HRTRows: 7, BlockCycles: 100})
	r.Sample(EpochSample{Epoch: 1, At: 20, Swaps: 1, RITTuples: 6, HRTRows: 2, BlockCycles: 140})
	tl := r.Timeline()
	if len(tl.Samples) != 2 || tl.Samples[1].Epoch != 1 || tl.Samples[1].BlockCycles != 140 {
		t.Fatalf("samples = %+v", tl.Samples)
	}
	// The exported slice must be a copy.
	tl.Samples[0].Swaps = 999
	if r.Timeline().Samples[0].Swaps != 3 {
		t.Fatal("Timeline shares the recorder's sample slice")
	}
}

// TestRecordAllocFree pins the hot-path contract: recording an event or
// a histogram sample never allocates.
func TestRecordAllocFree(t *testing.T) {
	r := NewRecorder(Config{RingSize: 1024})
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindSwap, 3, 17, 42, 1000, 2336)
		r.RecordNow(KindHRTCross, 3, 17, 8000)
		r.Observe(HistSwapBlock, 2336)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v allocs/op, want 0", allocs)
	}
}
