package chaos

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
)

// TestChaosSweepKillMidExpansionResumesExactlyOnce is the sweep
// tentpole's soak: a server-side sweep (POST /v1/sweeps) is kill -9'd
// after a known prefix of children completed, the journal is replayed
// into a fresh process, and the resumed sweep must (a) run only the
// unfinished children, (b) deliver every child exactly once, and (c)
// aggregate bit-identically to an uninterrupted run of the same sweep.
func TestChaosSweepKillMidExpansionResumesExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	path := filepath.Join(t.TempDir(), "sweep.journal")

	const (
		sweepSize   = 16
		doneAtCrash = 5
	)
	ss := service.SweepSpec{Base: chaosSpec(0)}
	for seed := uint64(1); seed <= sweepSize; seed++ {
		ss.Axes.Seeds = append(ss.Axes.Seeds, seed)
	}

	// The executor is the deterministic crash gate: seeds past the
	// allowance wedge until their context dies, so exactly doneAtCrash
	// children complete in the first process. completions counts each
	// seed's successful runs ACROSS both processes — the exactly-once
	// ledger.
	var allowed atomic.Uint64
	allowed.Store(doneAtCrash)
	var completions sync.Map
	exec := func(ctx context.Context, spec service.Spec, progress func(int64, int64)) (sim.Result, error) {
		if spec.Seed > allowed.Load() {
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		}
		if progress != nil {
			progress(1, 1)
		}
		n, _ := completions.LoadOrStore(spec.Seed, new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return sim.Result{IPC: float64(spec.Seed), Epochs: 1, Accesses: 7}, nil
	}
	newManager := func(j *service.Journal) *service.Manager {
		return service.NewManager(service.Options{
			Workers: 2, QueueDepth: 8, // queue smaller than the sweep: the feeder must ride backpressure
			Journal: j,
			Run:     exec,
		})
	}

	j1, rep0, err := service.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep0.Sweeps) != 0 {
		t.Fatalf("fresh journal replayed %d sweeps", len(rep0.Sweeps))
	}
	m1 := newManager(j1)
	srv1 := httptest.NewServer(service.Handler(m1))

	rt := &retarget{}
	rt.set(t, srv1.URL)
	faults := NewTransport(Faults{
		Seed:      29,
		DropRate:  0.05,
		FailRate:  0.05,
		DelayRate: 0.10,
		MaxDelay:  2 * time.Millisecond,
	}, rt)
	client := service.NewClient("http://rrs-sweep-soak.invalid",
		service.WithHTTPClient(&http.Client{Transport: faults}),
		service.WithRetryPolicy(resilience.Policy{
			MaxAttempts: -1, // ride out the restart window
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		}))
	client.PollInterval = 5 * time.Millisecond

	type sweepOut struct {
		results map[string]sim.Result
		err     error
	}
	outc := make(chan sweepOut, 1)
	go func() {
		res, err := client.RunSweep(ctx, ss)
		outc <- sweepOut{res, err}
	}()

	// Find the accepted sweep, then wait for the gate to hold it at
	// exactly doneAtCrash completed children.
	var sweepID string
	for sweepID == "" {
		if ctx.Err() != nil {
			t.Fatal("sweep never reached the server")
		}
		for _, sw := range m1.ListSweeps() {
			sweepID = sw.ID()
		}
		time.Sleep(time.Millisecond)
	}
	for {
		if ctx.Err() != nil {
			t.Fatalf("sweep never completed %d children", doneAtCrash)
		}
		v, err := client.Sweep(ctx, sweepID)
		if err == nil && v.Done >= doneAtCrash {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// kill -9: journal stops cold, then the process vanishes. The forced
	// shutdown cancels the wedged children, but those terminal states die
	// with the process — only the journal survives.
	j1.Close()
	srv1.CloseClientConnections()
	srv1.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	m1.Shutdown(sctx)
	scancel()

	allowed.Store(sweepSize) // the "fixed" environment after the restart
	j2, rep, err := service.OpenJournal(path)
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	defer j2.Close()
	if rep.PendingSweeps != 1 {
		t.Fatalf("replay found %d pending sweeps, want 1", rep.PendingSweeps)
	}
	if rep.Results < doneAtCrash {
		t.Fatalf("replay carried %d durable results, want >= %d", rep.Results, doneAtCrash)
	}
	m2 := newManager(j2)
	if err := m2.Restore(rep); err != nil {
		t.Fatalf("restore: %v", err)
	}
	srv2 := httptest.NewServer(service.Handler(m2))
	defer srv2.Close()
	defer shutdownManager(t, m2)
	rt.set(t, srv2.URL)

	var out sweepOut
	select {
	case out = <-outc:
	case <-ctx.Done():
		reqs, dropped, failed, _ := faults.Stats()
		t.Fatalf("sweep did not finish after the restart (requests=%d dropped=%d failed=%d)",
			reqs, dropped, failed)
	}
	if out.err != nil {
		t.Fatalf("RunSweep: %v", out.err)
	}
	if len(out.results) != sweepSize {
		t.Fatalf("delivered %d child results, want %d", len(out.results), sweepSize)
	}
	specs, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		res, ok := out.results[sp.Hash()]
		if !ok || res.IPC != float64(sp.Seed) {
			t.Errorf("seed %d: result (%+v, %v), want IPC %d", sp.Seed, res, ok, sp.Seed)
		}
	}

	// Exactly-once: every child ran in exactly one process, exactly one
	// time — the pre-crash prefix was answered from the replayed cache.
	ran := 0
	completions.Range(func(k, v any) bool {
		ran++
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("seed %v ran %d times, want exactly once", k, n)
		}
		return true
	})
	if ran != sweepSize {
		t.Errorf("%d distinct children ran, want %d", ran, sweepSize)
	}
	v, err := client.Sweep(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.StateDone || v.Done != sweepSize {
		t.Fatalf("resumed sweep = %+v", v)
	}
	// At least the pre-crash prefix comes back as cache hits (a re-enqueued
	// pending child can finish before the feeder re-reaches it and add one).
	if v.CacheHits < doneAtCrash {
		t.Errorf("resumed sweep cache hits = %d, want >= the %d pre-crash children",
			v.CacheHits, doneAtCrash)
	}
	if n := m2.Metrics().JSON().Counters["rrs_sweeps_restored_total"]; n != 1 {
		t.Errorf("rrs_sweeps_restored_total = %d, want 1", n)
	}

	// Bit-identical aggregation: an uninterrupted run of the same sweep
	// on a fresh manager rolls up to exactly the same stats.
	ref := service.NewManager(service.Options{Workers: 2, Run: exec})
	defer shutdownManager(t, ref)
	refSw, _, err := ref.SubmitSweep(ss)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-refSw.Done():
	case <-ctx.Done():
		t.Fatal("reference sweep wedged")
	}
	refResults := ref.SweepResults(refSw)
	for h, res := range out.results {
		refRes, ok := refResults[h]
		if !ok || !reflect.DeepEqual(res, refRes) {
			t.Errorf("child %s diverges from the clean run:\nresumed %+v\nclean   %+v",
				h[:12], res, refRes)
		}
	}
	if v.Stats == nil {
		t.Fatal("resumed sweep reported no aggregate stats")
	}
	refSrv := httptest.NewServer(service.Handler(ref))
	defer refSrv.Close()
	refV, err := service.NewClient(refSrv.URL).Sweep(ctx, refSw.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Stats, refV.Stats) {
		t.Errorf("aggregate stats diverge from the clean run:\nresumed %+v\nclean   %+v",
			v.Stats, refV.Stats)
	}
}
